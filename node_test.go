package pushpull_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	pushpull "github.com/p2pgossip/update"
)

// openHubNode opens a node on hub with sensible test settings.
func openHubNode(t *testing.T, hub *pushpull.Hub, addr string, seed int64, extra ...pushpull.Option) *pushpull.Node {
	t.Helper()
	opts := append([]pushpull.Option{
		pushpull.WithHub(hub, addr),
		pushpull.WithSeed(seed),
		pushpull.WithPullInterval(5 * time.Millisecond),
	}, extra...)
	n, err := pushpull.Open(opts...)
	if err != nil {
		t.Fatalf("open %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = n.Close(context.Background()) })
	return n
}

func TestOpenInvalidConfig(t *testing.T) {
	hub := pushpull.NewHub()
	cases := []struct {
		name string
		opts []pushpull.Option
	}{
		{"no transport", nil},
		{"two transports", []pushpull.Option{
			pushpull.WithHub(hub, "a"), pushpull.WithTCP("127.0.0.1:0"),
		}},
		{"negative fanout", []pushpull.Option{
			pushpull.WithHub(hub, "b"), pushpull.WithFanout(-1),
		}},
		{"nil metrics", []pushpull.Option{
			pushpull.WithHub(hub, "c"), pushpull.WithMetrics(nil),
		}},
		{"nil transport", []pushpull.Option{pushpull.WithTransport(nil)}},
		{"nil hub", []pushpull.Option{pushpull.WithHub(nil, "d")}},
		{"bad watch buffer", []pushpull.Option{
			pushpull.WithHub(hub, "e"), pushpull.WithWatchBuffer(0),
		}},
	}
	for _, tc := range cases {
		n, err := pushpull.Open(tc.opts...)
		if err == nil {
			n.Close(context.Background())
			t.Fatalf("%s: Open succeeded", tc.name)
		}
		if !errors.Is(err, pushpull.ErrInvalidConfig) {
			t.Fatalf("%s: error %v does not match ErrInvalidConfig", tc.name, err)
		}
	}
	if !errors.Is(pushpull.ErrNoTransport, pushpull.ErrInvalidConfig) {
		t.Fatal("ErrNoTransport should match ErrInvalidConfig")
	}
}

func TestPublishDeleteHonorContext(t *testing.T) {
	hub := pushpull.NewHub()
	n := openHubNode(t, hub, "ctx-node", 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Publish(ctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Publish with cancelled ctx: %v", err)
	}
	if _, err := n.Delete(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delete with cancelled ctx: %v", err)
	}
	if _, ok := n.Get("k"); ok {
		t.Fatal("cancelled Publish must not apply")
	}
	if _, err := n.Publish(context.Background(), "k", []byte("v")); err != nil {
		t.Fatalf("Publish with live ctx: %v", err)
	}
}

func TestQueryHonorsContext(t *testing.T) {
	hub := pushpull.NewHub()
	// The node's only peer is never attached, so queries can't be answered
	// and must end with the context's error.
	n := openHubNode(t, hub, "q-node", 1, pushpull.WithPeers("ghost"))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := n.Query(ctx, "missing", 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Query against silent peer: %v", err)
	}
}

func TestNodeNoPeers(t *testing.T) {
	hub := pushpull.NewHub()
	n := openHubNode(t, hub, "lonely", 1)
	ctx := context.Background()

	if err := n.Pull(ctx); !errors.Is(err, pushpull.ErrNoPeers) {
		t.Fatalf("Pull without peers: %v", err)
	}
	if _, err := n.Query(ctx, "absent", 3); !errors.Is(err, pushpull.ErrNoPeers) {
		t.Fatalf("Query miss without peers: %v", err)
	}
	// A local hit still answers.
	if _, err := n.Publish(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	out, err := n.Query(ctx, "k", 3)
	if err != nil || !out.Found || string(out.Revision.Value) != "v" {
		t.Fatalf("local-only query: out=%+v err=%v", out, err)
	}
}

func TestNodeClosed(t *testing.T) {
	hub := pushpull.NewHub()
	n := openHubNode(t, hub, "closer", 1)
	ctx := context.Background()

	if err := n.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := n.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := n.Publish(ctx, "k", nil); !errors.Is(err, pushpull.ErrClosed) {
		t.Fatalf("Publish after close: %v", err)
	}
	if _, err := n.Delete(ctx, "k"); !errors.Is(err, pushpull.ErrClosed) {
		t.Fatalf("Delete after close: %v", err)
	}
	if _, err := n.Query(ctx, "k", 1); !errors.Is(err, pushpull.ErrClosed) {
		t.Fatalf("Query after close: %v", err)
	}
	if err := n.Pull(ctx); !errors.Is(err, pushpull.ErrClosed) {
		t.Fatalf("Pull after close: %v", err)
	}
	if _, err := n.Watch(ctx, ""); !errors.Is(err, pushpull.ErrClosed) {
		t.Fatalf("Watch after close: %v", err)
	}
}

// TestWatchPushAndPull is the integration test for the Watch stream: every
// update applied via push and via pull anti-entropy is delivered, with its
// source, and tombstones are marked.
func TestWatchPushAndPull(t *testing.T) {
	hub := pushpull.NewHub()
	ctx := context.Background()
	// Publisher pushes straight to the push-receiver.
	pub := openHubNode(t, hub, "publisher", 1, pushpull.WithPeers("push-recv"))
	recv := openHubNode(t, hub, "push-recv", 2)

	recvEvents, err := recv.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	pubEvents, err := pub.Watch(ctx, "cfg/")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := pub.Publish(ctx, "cfg/rate", []byte("9000")); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Delete(ctx, "cfg/rate"); err != nil {
		t.Fatal(err)
	}

	// The publisher's own watch sees both local applies.
	for i, wantDel := range []bool{false, true} {
		ev := nextEvent(t, pubEvents)
		if ev.Source != pushpull.SourceLocal || ev.Kind != pushpull.EventApplied {
			t.Fatalf("local event %d: %+v", i, ev)
		}
		if ev.Tombstone() != wantDel {
			t.Fatalf("local event %d: tombstone=%v want %v", i, ev.Tombstone(), wantDel)
		}
	}
	// The receiver sees both via push.
	for i := 0; i < 2; i++ {
		ev := nextEvent(t, recvEvents)
		if ev.Source != pushpull.SourcePush || ev.Kind != pushpull.EventApplied {
			t.Fatalf("push event %d: %+v", i, ev)
		}
	}

	// A late joiner reconciles by pull; its watch reports pull-sourced
	// events for the same updates.
	late := openHubNode(t, hub, "late", 3)
	lateEvents, err := late.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	late.AddPeers("publisher")
	if err := late.Pull(ctx); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for seen < 2 {
		ev := nextEvent(t, lateEvents)
		if ev.Source != pushpull.SourcePull {
			t.Fatalf("late event: %+v", ev)
		}
		if ev.Kind == pushpull.EventApplied {
			seen++
		}
	}

	// Watch channels close when their context ends or the node closes.
	if err := late.Close(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-lateEvents:
		if ok {
			t.Fatal("expected closed channel after node close")
		}
	case <-time.After(time.Second):
		t.Fatal("watch channel not closed")
	}
}

// TestWatchConflict drives two isolated writers into concurrent revisions of
// one key and checks the merge surfaces as a conflict event.
func TestWatchConflict(t *testing.T) {
	hub := pushpull.NewHub()
	ctx := context.Background()
	a := openHubNode(t, hub, "writer-a", 1)
	b := openHubNode(t, hub, "writer-b", 2)

	// Independent writes to the same key: concurrent version branches.
	if _, err := a.Publish(ctx, "contact", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(ctx, "contact", []byte("from-b")); err != nil {
		t.Fatal(err)
	}

	events, err := b.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	b.AddPeers("writer-a")
	if err := b.Pull(ctx); err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, events)
	if ev.Source != pushpull.SourcePull || !ev.Conflict() {
		t.Fatalf("merge event: %+v", ev)
	}
	if ev.Branches != 2 {
		t.Fatalf("branches = %d, want 2", ev.Branches)
	}
}

// TestSnapshotRoundTrip checks Node → WriteSnapshot → fresh Node →
// snapshot restore preserves vector clocks and revisions exactly, and that
// Watch streams observe post-restore updates.
func TestSnapshotRoundTrip(t *testing.T) {
	hub := pushpull.NewHub()
	ctx := context.Background()
	orig := openHubNode(t, hub, "orig", 1)

	if _, err := orig.Publish(ctx, "alice", []byte("alice@example.org")); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Publish(ctx, "bob", []byte("bob@example.org")); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Publish(ctx, "alice", []byte("alice@new.org")); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Delete(ctx, "bob"); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := orig.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := pushpull.Open(
		pushpull.WithHub(hub, "restored"),
		pushpull.WithSeed(2),
		pushpull.WithSnapshot(&snap),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close(ctx)

	if !reflect.DeepEqual(orig.Clock(), restored.Clock()) {
		t.Fatalf("clocks differ: %v vs %v", orig.Clock(), restored.Clock())
	}
	if !orig.Store().Equal(restored.Store()) {
		t.Fatal("restored store state differs")
	}
	for _, key := range []string{"alice", "bob"} {
		a, b := orig.Store().Versions(key), restored.Store().Versions(key)
		if len(a) != len(b) {
			t.Fatalf("revisions of %q differ: %v vs %v", key, a, b)
		}
		for i := range a {
			// Stamps compare via Equal: the original carries a monotonic
			// clock reading that does not survive serialisation.
			if !reflect.DeepEqual(a[i].Version, b[i].Version) ||
				!bytes.Equal(a[i].Value, b[i].Value) ||
				a[i].Deleted != b[i].Deleted || !a[i].Stamp.Equal(b[i].Stamp) {
				t.Fatalf("revision %d of %q differs: %v vs %v", i, key, a[i], b[i])
			}
		}
	}

	// Post-restore updates flow through Watch: one created locally, one
	// pulled from the original node.
	events, err := restored.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Publish(ctx, "carol", []byte("carol@example.org")); err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, events)
	if ev.Source != pushpull.SourceLocal || ev.Update.Key != "carol" {
		t.Fatalf("post-restore local event: %+v", ev)
	}
	if _, err := orig.Publish(ctx, "dave", []byte("dave@example.org")); err != nil {
		t.Fatal(err)
	}
	restored.AddPeers("orig")
	if err := restored.Pull(ctx); err != nil {
		t.Fatal(err)
	}
	for {
		ev := nextEvent(t, events)
		if ev.Update.Key == "dave" {
			if ev.Source != pushpull.SourcePull || ev.Kind != pushpull.EventApplied {
				t.Fatalf("post-restore pull event: %+v", ev)
			}
			break
		}
	}

	// The restored writer must not reuse sequence numbers.
	u, err := restored.Publish(ctx, "erin", []byte("erin@example.org"))
	if err != nil {
		t.Fatal(err)
	}
	if u.Origin != "restored" || u.Seq == 0 {
		t.Fatalf("post-restore update: %+v", u)
	}
}

func TestNodeMetrics(t *testing.T) {
	hub := pushpull.NewHub()
	ctx := context.Background()
	reg := pushpull.NewMetrics()
	a := openHubNode(t, hub, "metrics-a", 1,
		pushpull.WithMetrics(reg), pushpull.WithPeers("metrics-b"))
	b := openHubNode(t, hub, "metrics-b", 2, pushpull.WithMetrics(reg))

	events, err := b.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Publish(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	nextEvent(t, events)

	for _, name := range []string{
		pushpull.MetricPushSent,
		pushpull.MetricPushReceived,
		pushpull.MetricApplied,
		pushpull.MetricStoreApplied,
		pushpull.MetricWatchEvents,
	} {
		if reg.Counter(name) == 0 {
			t.Fatalf("counter %s not incremented; counters: %v", name, reg.Counters())
		}
	}
}

// TestWatchSlowConsumer pins the slow-consumer contract: sends into a full
// watch buffer never block the protocol — the event is counted as dropped
// instead — and the stream stays usable once the consumer drains.
func TestWatchSlowConsumer(t *testing.T) {
	hub := pushpull.NewHub()
	ctx := context.Background()
	reg := pushpull.NewMetrics()
	n := openHubNode(t, hub, "slow", 1,
		pushpull.WithMetrics(reg), pushpull.WithWatchBuffer(1))

	events, err := n.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	// Local applies fan out synchronously, so five publishes against an
	// undrained buffer of one give exactly one delivery and four drops —
	// and none of the publishes may stall.
	for i := 0; i < 5; i++ {
		if _, err := n.Publish(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(pushpull.MetricWatchEvents); got != 1 {
		t.Fatalf("watch events = %v, want 1", got)
	}
	if got := reg.Counter(pushpull.MetricWatchDropped); got != 4 {
		t.Fatalf("watch dropped = %v, want 4", got)
	}
	// The surviving event is the oldest, not an arbitrary one.
	if ev := nextEvent(t, events); ev.Update.Key != "k0" {
		t.Fatalf("buffered event key = %q, want k0", ev.Update.Key)
	}
	// Having drained, the consumer sees new events again.
	if _, err := n.Publish(ctx, "recovered", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, events); ev.Update.Key != "recovered" {
		t.Fatalf("post-drain event key = %q, want recovered", ev.Update.Key)
	}
}

// TestWatchCancelUnderLoad cancels a watcher while a publisher hammers the
// node: the channel must close promptly, the publisher must never stall,
// and the removed watcher must stop consuming events (and counters)
// entirely.
func TestWatchCancelUnderLoad(t *testing.T) {
	hub := pushpull.NewHub()
	reg := pushpull.NewMetrics()
	n := openHubNode(t, hub, "cancel", 1,
		pushpull.WithMetrics(reg), pushpull.WithWatchBuffer(4))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := n.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := n.Publish(context.Background(), "load", []byte{byte(i)}); err != nil {
				return
			}
		}
	}()

	nextEvent(t, events) // the stream is live before we cut it
	cancel()
	deadline := time.After(5 * time.Second)
	for closed := false; !closed; {
		select {
		case _, ok := <-events:
			closed = !ok // drain buffered events until the close
		case <-deadline:
			t.Fatal("watch channel did not close after cancel")
		}
	}
	close(stop)
	wg.Wait()

	// The watcher is gone: further publishes touch neither watch counter.
	before := reg.Counter(pushpull.MetricWatchEvents) + reg.Counter(pushpull.MetricWatchDropped)
	if _, err := n.Publish(context.Background(), "after-cancel", []byte("v")); err != nil {
		t.Fatal(err)
	}
	after := reg.Counter(pushpull.MetricWatchEvents) + reg.Counter(pushpull.MetricWatchDropped)
	if after != before {
		t.Fatalf("cancelled watcher still counted: %v -> %v", before, after)
	}

	// Watch with an already-cancelled context fails up front.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := n.Watch(dead, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("Watch with cancelled ctx: %v", err)
	}
}

func nextEvent(t *testing.T, ch <-chan pushpull.Event) pushpull.Event {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed early")
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for event")
		return pushpull.Event{}
	}
}
