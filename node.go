package pushpull

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/p2pgossip/update/internal/live"
	"github.com/p2pgossip/update/internal/store"
)

// Store-level counter names reported when a Node is opened with WithMetrics;
// unlike the live.* counters these classify apply outcomes regardless of how
// the update arrived.
const (
	// MetricStoreApplied counts updates that changed the store.
	MetricStoreApplied = "store.applied"
	// MetricStoreDuplicate counts updates the store had already seen.
	MetricStoreDuplicate = "store.duplicate"
	// MetricStoreObsolete counts updates dominated by existing revisions.
	MetricStoreObsolete = "store.obsolete"
)

// Node is a lifecycle-managed handle on one live protocol replica: open it
// with Open, mutate and read through the context-aware operations, observe
// applied updates with Watch, and release everything with Close. All methods
// are safe for concurrent use.
type Node struct {
	replica   *live.Replica
	transport live.Transport
	metrics   *Metrics
	watchBuf  int
	walRec    WALRecoveryStats
	hasWAL    bool

	mu       sync.Mutex
	closed   bool
	closing  chan struct{}
	watchers map[int64]*watcher
	nextID   int64
}

// watcher is one Watch subscription: a key-prefix filter and a buffered
// delivery channel.
type watcher struct {
	prefix string
	ch     chan Event
}

// Open assembles, configures, and starts a Node. Exactly one transport
// option (WithTCP, WithHub, WithTransport) is required; every other option
// has a production-ready default (fanout 5, PF(t) = 0.9^t, partial lists,
// eager + periodic pull). Configuration problems are reported as
// ErrInvalidConfig errors.
func Open(opts ...Option) (*Node, error) {
	o := defaultNodeOptions()
	for _, opt := range opts {
		if opt != nil {
			opt(o)
		}
	}
	// Open owns a WithTransport-supplied transport from the first option
	// on, so every failure path must release it — callers can't tell how
	// far Open got.
	fail := func(err error) (*Node, error) {
		if o.given != nil {
			_ = o.given.Close()
		}
		return nil, err
	}
	if o.err != nil {
		return fail(o.err)
	}
	switch {
	case o.transports == 0:
		return nil, ErrNoTransport
	case o.transports > 1:
		return fail(fmt.Errorf("%w: %d transport options given, want exactly one", ErrInvalidConfig, o.transports))
	case o.cfg.WAL != nil && o.snapshot != nil:
		return fail(fmt.Errorf("%w: WithWAL and WithSnapshot are mutually exclusive (the WAL checkpoint is the restore path)", ErrInvalidConfig))
	}

	n := &Node{
		metrics:  o.metrics,
		watchBuf: o.watchBuffer,
		closing:  make(chan struct{}),
		watchers: make(map[int64]*watcher),
	}
	cfg := o.cfg
	cfg.Hooks.OnApply = n.onApply
	if o.metrics != nil {
		cfg.Metrics = o.metrics
	}

	tr, err := o.makeTransport()
	if err != nil {
		return nil, fmt.Errorf("pushpull: open transport: %w", err)
	}
	rep, err := live.NewReplica(cfg, tr)
	if err != nil {
		_ = tr.Close()
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	n.replica = rep
	n.transport = tr

	// Recovery runs before the store apply hook below is registered: replayed
	// records must not tick the store.* counters (the soak's conservation
	// invariant accounts restored updates separately).
	if cfg.WAL != nil {
		rec, err := rep.RecoverWAL()
		if err != nil {
			_ = tr.Close()
			return nil, fmt.Errorf("%w: recover: %v", ErrWAL, err)
		}
		n.walRec = rec
		n.hasWAL = true
	}
	if o.metrics != nil {
		reg := o.metrics
		rep.Store().SetApplyHook(func(_ Update, res store.ApplyResult, _ int) {
			switch res {
			case store.Applied:
				reg.Inc(MetricStoreApplied)
			case store.Duplicate:
				reg.Inc(MetricStoreDuplicate)
			case store.Obsolete:
				reg.Inc(MetricStoreObsolete)
			}
		})
	}
	if o.snapshot != nil {
		if err := rep.RestoreSnapshot(o.snapshot); err != nil {
			_ = tr.Close()
			return nil, fmt.Errorf("%w: restore: %v", ErrSnapshot, err)
		}
	}
	rep.AddPeers(o.peers...)
	rep.Start()
	return n, nil
}

// Addr returns the address other replicas use to reach this node.
func (n *Node) Addr() string { return n.replica.Addr() }

// Publish creates an update setting key to value, applies it locally, and
// starts pushing it to peers. It fails with ErrClosed after Close and with
// the context's error if ctx is already cancelled.
func (n *Node) Publish(ctx context.Context, key string, value []byte) (Update, error) {
	if err := n.operational(ctx, "publish"); err != nil {
		return Update{}, err
	}
	u, err := n.replica.Publish(key, value)
	if err != nil {
		return u, fmt.Errorf("%w: publish: %v", ErrWAL, err)
	}
	return u, nil
}

// Delete creates a tombstone for key, applies it locally, and starts pushing
// it to peers. It fails with ErrClosed after Close and with the context's
// error if ctx is already cancelled.
func (n *Node) Delete(ctx context.Context, key string) (Update, error) {
	if err := n.operational(ctx, "delete"); err != nil {
		return Update{}, err
	}
	u, err := n.replica.Delete(key)
	if err != nil {
		return u, fmt.Errorf("%w: delete: %v", ErrWAL, err)
	}
	return u, nil
}

// WALRecovery reports what crash recovery restored when the node was opened
// with WithWAL: checkpoint updates, replayed records, absorbed duplicates,
// and torn-tail bytes dropped. ok is false when no WAL is configured.
func (n *Node) WALRecovery() (stats WALRecoveryStats, ok bool) {
	return n.walRec, n.hasWAL
}

// Get reads the winning revision for key from the local store. The boolean
// is false if the key is absent or tombstoned.
func (n *Node) Get(key string) (Revision, bool) { return n.replica.Get(key) }

// Keys returns the sorted keys with at least one live revision.
func (n *Node) Keys() []string { return n.replica.Store().Keys() }

// Clock returns a copy of the node's vector clock over received updates.
func (n *Node) Clock() Clock { return n.replica.Store().Clock() }

// Store returns the node's underlying versioned store, for read-only
// introspection (Versions, MissingFor, UpdateCount, ...).
func (n *Node) Store() Store { return n.replica.Store() }

// Query consults k random known replicas for key (§4.4), blocking until
// their answers arrive or ctx expires, and returns the causally freshest
// revision; the local store participates as one more voice. On a node with
// no known peers it answers from the local store alone and reports ErrNoPeers
// if that also misses.
func (n *Node) Query(ctx context.Context, key string, k int) (QueryOutcome, error) {
	if err := n.operational(ctx, "query"); err != nil {
		return QueryOutcome{}, err
	}
	if n.replica.PeerCount() == 0 {
		out := QueryOutcome{}
		if rev, ok := n.replica.Get(key); ok {
			out.Found = true
			out.Revision = rev
			return out, nil
		}
		return out, fmt.Errorf("query %q: %w", key, ErrNoPeers)
	}
	return n.replica.Query(ctx, key, k)
}

// Pull performs one anti-entropy pull batch immediately, on top of the
// periodic schedule. It fails with ErrNoPeers when the node knows nobody to
// pull from.
func (n *Node) Pull(ctx context.Context) error {
	if err := n.operational(ctx, "pull"); err != nil {
		return err
	}
	if n.replica.PeerCount() == 0 {
		return fmt.Errorf("pull: %w", ErrNoPeers)
	}
	n.replica.PullNow()
	return nil
}

// AddPeers teaches the node about other replica addresses.
func (n *Node) AddPeers(addrs ...string) { n.replica.AddPeers(addrs...) }

// Peers returns a copy of the known replica addresses, sorted. (The engine
// keeps its membership view in sampling order, which is not meaningful to
// callers.)
func (n *Node) Peers() []string {
	peers := n.replica.Peers()
	sort.Strings(peers)
	return peers
}

// Watch subscribes to the node's apply stream: every update offered to the
// local store — created locally, received by push, or reconciled by pull —
// whose key starts with keyPrefix is delivered as an Event (the empty prefix
// matches everything). The channel is closed when ctx is cancelled or the
// node closes. A subscriber that falls more than the watch buffer behind
// (WithWatchBuffer, default 256) loses events, counted under
// MetricWatchDropped.
func (n *Node) Watch(ctx context.Context, keyPrefix string) (<-chan Event, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("watch: %w", ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("pushpull: watch: %w", err)
	}
	id := n.nextID
	n.nextID++
	w := &watcher{prefix: keyPrefix, ch: make(chan Event, n.watchBuf)}
	n.watchers[id] = w
	closing := n.closing
	n.mu.Unlock()

	go func() {
		select {
		case <-ctx.Done():
		case <-closing:
		}
		n.mu.Lock()
		if _, ok := n.watchers[id]; ok {
			delete(n.watchers, id)
			close(w.ch)
		}
		n.mu.Unlock()
	}()
	return w.ch, nil
}

// onApply is the live-runtime hook fanning protocol applies out to Watch
// subscribers. Sends never block: subscribers with full buffers lose the
// event instead of stalling the protocol.
func (n *Node) onApply(u store.Update, res store.ApplyResult, src Source, branches int) {
	ev := Event{Kind: eventKind(res), Update: u, Source: src, Branches: branches}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	for _, w := range n.watchers {
		if !strings.HasPrefix(u.Key, w.prefix) {
			continue
		}
		select {
		case w.ch <- ev:
			if n.metrics != nil {
				n.metrics.Inc(MetricWatchEvents)
			}
		default:
			if n.metrics != nil {
				n.metrics.Inc(MetricWatchDropped)
			}
		}
	}
}

// WriteSnapshot serialises the node's full update log to w, for restarts;
// restore it into a fresh Node with WithSnapshot (or RestoreSnapshot).
func (n *Node) WriteSnapshot(w io.Writer) error {
	if err := n.replica.WriteSnapshot(w); err != nil {
		return fmt.Errorf("%w: write: %v", ErrSnapshot, err)
	}
	return nil
}

// RestoreSnapshot replaces the node's state with a snapshot previously
// produced by WriteSnapshot on this or another node. Prefer the WithSnapshot
// option, which restores before the protocol starts; restoring a running
// node discards updates applied since it opened.
func (n *Node) RestoreSnapshot(r io.Reader) error {
	if n.isClosed() {
		return fmt.Errorf("restore: %w", ErrClosed)
	}
	if err := n.replica.RestoreSnapshot(r); err != nil {
		return fmt.Errorf("%w: restore: %v", ErrSnapshot, err)
	}
	return nil
}

// Close shuts the node down gracefully: new operations start failing with
// ErrClosed, the background puller drains, the transport closes, and every
// Watch channel is closed. Close is idempotent; if ctx expires first it
// returns the context's error while the shutdown completes in the
// background.
func (n *Node) Close(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.closing) // watcher goroutines take it from here
	n.mu.Unlock()

	done := make(chan struct{})
	go func() {
		n.replica.Stop()
		_ = n.transport.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("pushpull: close: %w", ctx.Err())
	}
}

// operational gates an operation on the node being open and the context
// still live. Package sentinels already carry the "pushpull:" prefix, so
// only foreign errors (the context's) get one added.
func (n *Node) operational(ctx context.Context, op string) error {
	if n.isClosed() {
		return fmt.Errorf("%s: %w", op, ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("pushpull: %s: %w", op, err)
	}
	return nil
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}
