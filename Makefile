# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

# The perf-trajectory file emitted by `make bench` (one per perf PR).
BENCH_PR ?= 3
BENCH_TIME ?= 300ms

.PHONY: build test race bench bench-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race . ./internal/live/... ./internal/gossip/... ./internal/engine/...

# bench runs the engine/store/wire/live hot-path benchmarks and writes the
# machine-readable trajectory file BENCH_$(BENCH_PR).json.
bench:
	go run ./cmd/benchjson -benchtime $(BENCH_TIME) -out BENCH_$(BENCH_PR).json

# bench-smoke is the CI guard: every benchmark compiles and runs once,
# race-enabled, so the perf baseline cannot rot.
bench-smoke:
	go test -race -run '^$$' -bench . -benchtime=1x \
		./internal/engine/ ./internal/store/ ./internal/wire/ ./internal/live/ .
