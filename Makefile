# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

# The perf-trajectory file emitted by `make bench` (one per perf PR).
BENCH_PR ?= 10
BENCH_TIME ?= 300ms
# bench-compare reruns the baseline's benchmarks at this benchtime; short
# keeps the CI gate fast, the 25% threshold absorbs the extra noise.
COMPARE_TIME ?= 200ms

.PHONY: build test race bench bench-smoke bench-compare scenarios daemon soak soak-durable

build:
	go build ./...

test:
	go test ./...

# The sharded store's stress/property tests and the live ingest pipeline are
# the main race surfaces; run them with real scheduler parallelism even on
# constrained runners.
race:
	GOMAXPROCS=4 go test -race . ./internal/live/... ./internal/gossip/... \
		./internal/engine/... ./internal/store/...

# bench runs the engine/store/wire/live hot-path benchmarks and writes the
# machine-readable trajectory file BENCH_$(BENCH_PR).json.
bench:
	go run ./cmd/benchjson -benchtime $(BENCH_TIME) -out BENCH_$(BENCH_PR).json

# bench-smoke is the CI guard: every benchmark compiles and runs once,
# race-enabled, so the perf baseline cannot rot.
bench-smoke:
	go test -race -run '^$$' -bench . -benchtime=1x \
		./internal/engine/ ./internal/store/ ./internal/wire/ ./internal/live/ \
		./internal/wal/ .

# bench-compare is the CI perf gate: rerun the committed baseline's
# benchmarks and fail if ns/op or allocs/op regress more than 25% anywhere.
bench-compare:
	go run ./cmd/benchjson compare -baseline BENCH_$(BENCH_PR).json \
		-benchtime $(COMPARE_TIME)

# scenarios runs the deterministic fault-injection matrix across the CI
# seeds, failing on any invariant violation.
scenarios:
	go run ./cmd/scenarios -seeds 1,2,3 -out scenario-results

# daemon builds the serving binary (HTTP client edge + /metrics over one
# live replica) into ./bin.
daemon:
	go build -o bin/pushpulld ./cmd/pushpulld

# soak is the short multi-process chaos soak CI runs: 3 real pushpulld
# processes on loopback, sustained HTTP traffic, one SIGKILL +
# restart-from-snapshot, scraped-state invariants, race-enabled. Set
# SOAK_OUT=<file> to keep the final scraped states as JSON. Drop -short
# for the full version (5 processes, 2 kill cycles, a joining member).
soak:
	go test -race -short -v -run 'TestClusterSoak$$' ./internal/cluster/

# soak-durable is the durability chaos soak: every member runs with a
# write-ahead log, a victim is SIGKILLed while a write burst is in flight,
# its WAL tail is torn, and it must recover from disk alone holding every
# write it acknowledged. Drop -short for more members and kill cycles.
soak-durable:
	go test -race -short -v -run TestClusterSoakDurable ./internal/cluster/
