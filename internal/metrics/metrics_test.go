package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	r := NewRegistry()
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %g", got)
	}
	r.Inc("a")
	r.Add("a", 2.5)
	if got := r.Counter("a"); got != 3.5 {
		t.Fatalf("a = %g", got)
	}
	all := r.Counters()
	if all["a"] != 3.5 || len(all) != 1 {
		t.Fatalf("Counters = %v", all)
	}
	// Returned map is a copy.
	all["a"] = 99
	if r.Counter("a") != 3.5 {
		t.Fatal("Counters exposed internal map")
	}
}

func TestSeries(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Series("s"); ok {
		t.Fatal("missing series reported present")
	}
	r.Observe("s", 0, 1)
	r.Observe("s", 1, 2)
	s, ok := r.Series("s")
	if !ok || s.Len() != 2 {
		t.Fatalf("series = %+v ok=%v", s, ok)
	}
	x, y := s.Last()
	if x != 1 || y != 2 {
		t.Fatalf("Last = %g,%g", x, y)
	}
	// Copy semantics.
	s.Y[0] = 42
	s2, _ := r.Series("s")
	if s2.Y[0] != 1 {
		t.Fatal("Series exposed internal slice")
	}
	var empty Series
	if x, y := empty.Last(); x != 0 || y != 0 {
		t.Fatal("empty Last should be zeros")
	}
}

func TestSeriesNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Observe("b", 0, 0)
	r.Observe("a", 0, 0)
	names := r.SeriesNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("SeriesNames = %v", names)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Inc("x")
	r.Observe("s", 1, 1)
	r.Reset()
	if r.Counter("x") != 0 {
		t.Fatal("counter survived reset")
	}
	if _, ok := r.Series("s"); ok {
		t.Fatal("series survived reset")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Inc("c")
				r.Observe("s", float64(j), float64(j))
				_ = r.Counter("c")
				_, _ = r.Series("s")
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c"); got != 8000 {
		t.Fatalf("concurrent counter = %g", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", float32(2))
	tb.AddRow("gamma-long-name", 0.3333333)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "0.3333") {
		t.Fatalf("CSV cell formatting wrong:\n%s", csv)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"}, {2, "2"}, {0, "0"}, {0.25, "0.25"}, {-1.2, "-1.2"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Fatalf("trimFloat(%g) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
