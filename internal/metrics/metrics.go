// Package metrics provides counters, per-round time series, and simple
// table rendering used by the simulation engine and the experiment harness.
//
// The package is deliberately dependency-free and allocation-conscious: the
// simulator updates counters on every message, so the hot path is a map
// lookup and an integer add. All accessors return copies so that callers can
// never alias internal state.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry collects named counters and named per-round series.
//
// A Registry is safe for concurrent use. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	series   map[string]*Series
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]float64),
		series:   make(map[string]*Series),
	}
}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Counter returns the current value of the named counter (zero if absent).
func (r *Registry) Counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a copy of all counters.
func (r *Registry) Counters() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Observe appends (x, y) to the named series, creating it if necessary.
func (r *Registry) Observe(name string, x, y float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
	}
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Series returns a copy of the named series. The second return value reports
// whether the series exists.
func (r *Registry) Series(name string) (Series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		return Series{Name: name}, false
	}
	return s.clone(), true
}

// SeriesNames returns the sorted names of all series.
func (r *Registry) SeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for k := range r.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset clears all counters and series.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]float64)
	r.series = make(map[string]*Series)
}

// Series is an ordered sequence of (X, Y) observations, e.g. round number
// versus fraction of aware peers.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

func (s *Series) clone() Series {
	out := Series{Name: s.Name}
	out.X = append([]float64(nil), s.X...)
	out.Y = append([]float64(nil), s.Y...)
	return out
}

// Len returns the number of observations in the series.
func (s Series) Len() int { return len(s.X) }

// Last returns the final (x, y) pair. It returns zeros for an empty series.
func (s Series) Last() (x, y float64) {
	if len(s.X) == 0 {
		return 0, 0
	}
	return s.X[len(s.X)-1], s.Y[len(s.Y)-1]
}

// Table renders labelled rows of numeric cells as a fixed-width text table.
// It is used by cmd/figures to print the paper's tables and figure series.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells, formatting each value with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
