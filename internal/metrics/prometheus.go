package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Exporter renders a Registry as Prometheus text exposition format
// (version 0.0.4). It reads a point-in-time copy of the counters via
// Registry.Counters — one mutex acquisition per scrape, nothing on the
// protocol hot path — and can additionally publish gauges computed at
// scrape time (store sizes, peer counts, uptime).
//
// Counter names pass through sanitizeMetricName: the registry's dotted
// names ("live.push.sent") become Prometheus-safe underscored names with
// the exporter's namespace and a _total suffix
// ("pushpull_live_push_sent_total").
type Exporter struct {
	reg       *Registry
	namespace string

	mu     sync.Mutex
	gauges []gauge
}

// gauge is one scrape-time computed value.
type gauge struct {
	name string // already namespaced + sanitized
	help string
	fn   func() float64
}

// NewExporter builds an exporter over reg. namespace prefixes every
// exported name ("pushpull" is the conventional choice); it may be empty.
// reg may be nil, in which case only gauges are exported.
func NewExporter(reg *Registry, namespace string) *Exporter {
	return &Exporter{reg: reg, namespace: sanitizeMetricName(namespace)}
}

// AddGauge registers a gauge evaluated at every scrape. The name is
// sanitized and namespaced like counter names (without the _total suffix).
// fn must be safe for concurrent use.
func (e *Exporter) AddGauge(name, help string, fn func() float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gauges = append(e.gauges, gauge{
		name: e.qualify(sanitizeMetricName(name)),
		help: help,
		fn:   fn,
	})
}

// WritePrometheus writes the full exposition: every registry counter as a
// counter metric and every registered gauge, each with # HELP / # TYPE
// headers, sorted by exported name so scrapes are diffable.
func (e *Exporter) WritePrometheus(w io.Writer) error {
	type sample struct {
		name  string
		help  string
		typ   string
		value float64
	}
	var samples []sample
	if e.reg != nil {
		for name, value := range e.reg.Counters() {
			samples = append(samples, sample{
				name:  e.qualify(sanitizeMetricName(name)) + "_total",
				help:  fmt.Sprintf("Counter %q from the pushpull metrics registry.", name),
				typ:   "counter",
				value: value,
			})
		}
	}
	e.mu.Lock()
	gauges := append([]gauge(nil), e.gauges...)
	e.mu.Unlock()
	for _, g := range gauges {
		samples = append(samples, sample{name: g.name, help: g.help, typ: "gauge", value: g.fn()})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })

	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			s.name, s.help, s.name, s.typ, s.name, formatValue(s.value)); err != nil {
			return err
		}
	}
	return nil
}

// qualify prepends the namespace to an already-sanitized name.
func (e *Exporter) qualify(name string) string {
	if e.namespace == "" {
		return name
	}
	return e.namespace + "_" + name
}

// SanitizeMetricName maps an arbitrary registry counter name to the
// Prometheus metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*: every run of
// other characters collapses to one underscore, and a leading digit gains
// an underscore prefix. The exporter and the tests that assert "/metrics
// contains counter X" must share this mapping.
func SanitizeMetricName(name string) string { return sanitizeMetricName(name) }

func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	lastUnderscore := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		digit := c >= '0' && c <= '9'
		switch {
		case alpha || (digit && b.Len() > 0):
			b.WriteByte(c)
			lastUnderscore = c == '_'
		case digit: // leading digit: prefix with an underscore
			b.WriteByte('_')
			b.WriteByte(c)
			lastUnderscore = false
		default:
			if b.Len() > 0 && !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in Go's shortest float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
