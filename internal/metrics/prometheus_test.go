package metrics

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// parsePrometheusText is a strict reference parser for the subset of the
// text exposition format the exporter emits: # HELP and # TYPE comments and
// bare `name value` samples. It fails on anything malformed — out-of-order
// headers, names outside the metric alphabet, unparsable values — so the
// exporter tests double as a format-conformance check.
func parsePrometheusText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				if fields[3] != "counter" && fields[3] != "gauge" {
					t.Fatalf("line %d: unknown type %q", ln+1, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name := fields[0]
		if !validMetricName(name) {
			t.Fatalf("line %d: invalid metric name %q", ln+1, name)
		}
		if _, ok := typed[name]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: unparsable value %q: %v", ln+1, fields[1], err)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("line %d: duplicate sample for %q", ln+1, name)
		}
		samples[name] = v
	}
	return samples
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || c == ':',
			c >= 'a' && c <= 'z',
			c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return name != ""
}

func TestExporterWritesCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Inc("live.push.sent")
	reg.Add("live.push.sent", 4)
	reg.Add("http.latency_ms.kv.get", 12.5)
	reg.Inc("store.applied")

	e := NewExporter(reg, "pushpull")
	e.AddGauge("peers", "Known peer addresses.", func() float64 { return 3 })
	e.AddGauge("store.updates", "Updates in the local log.", func() float64 { return 42 })

	var buf bytes.Buffer
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheusText(t, buf.String())

	want := map[string]float64{
		"pushpull_live_push_sent_total":         5,
		"pushpull_http_latency_ms_kv_get_total": 12.5,
		"pushpull_store_applied_total":          1,
		"pushpull_peers":                        3,
		"pushpull_store_updates":                42,
	}
	for name, value := range want {
		got, ok := samples[name]
		if !ok {
			t.Errorf("missing sample %s", name)
			continue
		}
		if got != value {
			t.Errorf("%s = %g, want %g", name, got, value)
		}
	}
	if len(samples) != len(want) {
		t.Errorf("got %d samples, want %d: %v", len(samples), len(want), samples)
	}
}

func TestExporterOutputIsSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Inc("zz.last")
	reg.Inc("aa.first")
	reg.Inc("mm.middle")
	var buf bytes.Buffer
	if err := NewExporter(reg, "p").WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, strings.Fields(line)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("samples not sorted: %v", names)
	}
}

func TestExporterNilRegistry(t *testing.T) {
	e := NewExporter(nil, "")
	e.AddGauge("up", "Always one.", func() float64 { return 1 })
	var buf bytes.Buffer
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheusText(t, buf.String())
	if samples["up"] != 1 {
		t.Errorf("up = %v, want 1", samples["up"])
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"live.push.sent":     "live_push_sent",
		"http.latency_ms":    "http_latency_ms",
		"weird--name..x":     "weird_name_x",
		"9lives":             "_9lives",
		"trailing.":          "trailing",
		"a:b":                "a:b",
		"":                   "",
		"UPPER.case":         "UPPER_case",
		"dots...everywhere!": "dots_everywhere",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExporterValueFormatting(t *testing.T) {
	for v, want := range map[float64]string{
		5:       "5",
		12.5:    "12.5",
		0:       "0",
		1e6:     "1000000",
		0.00025: "0.00025",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func ExampleExporter() {
	reg := NewRegistry()
	reg.Add("live.push.sent", 7)
	e := NewExporter(reg, "pushpull")
	var buf bytes.Buffer
	_ = e.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP pushpull_live_push_sent_total Counter "live.push.sent" from the pushpull metrics registry.
	// # TYPE pushpull_live_push_sent_total counter
	// pushpull_live_push_sent_total 7
}
