package churn

import (
	"math"
	"math/rand"
	"testing"
)

func TestBernoulliStationary(t *testing.T) {
	tests := []struct {
		name  string
		proc  Bernoulli
		want  float64
		isNaN bool
	}{
		{"paper 10%", Bernoulli{Sigma: 0.99, POn: 0.00111111}, 0.1, false},
		{"symmetric", Bernoulli{Sigma: 0.5, POn: 0.5}, 0.5, false},
		{"absorbing", Bernoulli{Sigma: 1, POn: 0}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.proc.StationaryOnline()
			if tt.isNaN {
				if !math.IsNaN(got) {
					t.Fatalf("StationaryOnline = %v, want NaN", got)
				}
				return
			}
			if math.Abs(got-tt.want) > 1e-3 {
				t.Fatalf("StationaryOnline = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBernoulliEmpirical(t *testing.T) {
	// An online population under sigma=0.9, p_on=0 should decay
	// geometrically: after k rounds ≈ 0.9^k remain.
	rng := rand.New(rand.NewSource(1))
	pop, err := NewPopulation(10000, 10000, Bernoulli{Sigma: 0.9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		pop.Step(r)
	}
	want := 10000 * math.Pow(0.9, 5)
	got := float64(pop.OnlineCount())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("after 5 rounds online = %v, want ≈ %v", got, want)
	}
}

func TestBernoulliComeOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop, err := NewPopulation(10000, 0, Bernoulli{Sigma: 1, POn: 0.25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	came := pop.Step(0)
	if len(came) != pop.OnlineCount() {
		t.Fatalf("cameOnline %d != online %d", len(came), pop.OnlineCount())
	}
	if got := float64(len(came)); math.Abs(got-2500)/2500 > 0.1 {
		t.Fatalf("came online %v, want ≈ 2500", got)
	}
}

func TestStaticNeverChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, err := NewPopulation(100, 40, Static{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if came := pop.Step(r); len(came) != 0 {
			t.Fatalf("static process brought peers online: %v", came)
		}
	}
	if pop.OnlineCount() != 40 {
		t.Fatalf("online count drifted to %d", pop.OnlineCount())
	}
}

func TestSessionsStationary(t *testing.T) {
	s := Sessions{OnMean: 10, OffMean: 90}
	if got := s.StationaryOnline(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("StationaryOnline = %v, want 0.1", got)
	}
	// Empirically the long-run fraction should approach 10%.
	rng := rand.New(rand.NewSource(4))
	pop, err := NewPopulation(5000, 500, s, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const rounds = 400
	for r := 0; r < rounds; r++ {
		pop.Step(r)
		if r >= 100 {
			sum += float64(pop.OnlineCount()) / 5000
		}
	}
	avg := sum / (rounds - 100)
	if math.Abs(avg-0.1) > 0.02 {
		t.Fatalf("long-run online fraction = %v, want ≈ 0.1", avg)
	}
}

func TestSessionsDegenerateMeans(t *testing.T) {
	// Means below 1 are clamped; OnMean=1 means "leave immediately".
	s := Sessions{OnMean: 0.5, OffMean: 1}
	rng := rand.New(rand.NewSource(5))
	st := s.Next(0, Online, rng)
	if st != Offline {
		t.Fatalf("OnMean<=1 should always go offline, got %v", st)
	}
	st = s.Next(0, Offline, rng)
	if st != Online {
		t.Fatalf("OffMean<=1 should always come online, got %v", st)
	}
}

func TestNonUniformBackbone(t *testing.T) {
	nu := NewBackbone(10, 0.3, 1.0, 1.0, 0.0, 0.0)
	if len(nu.Procs) != 10 {
		t.Fatalf("procs = %d, want 10", len(nu.Procs))
	}
	rng := rand.New(rand.NewSource(6))
	// Backbone peers (0..2) stay online; flaky peers (3..9) drop instantly.
	for i := 0; i < 3; i++ {
		if nu.Next(i, Online, rng) != Online {
			t.Fatalf("backbone peer %d went offline", i)
		}
	}
	for i := 3; i < 10; i++ {
		if nu.Next(i, Online, rng) != Offline {
			t.Fatalf("flaky peer %d stayed online", i)
		}
	}
}

func TestNonUniformEmpty(t *testing.T) {
	var nu NonUniform
	rng := rand.New(rand.NewSource(7))
	if nu.Next(0, Online, rng) != Online {
		t.Fatal("empty NonUniform should be identity")
	}
	if nu.Next(-5, Offline, rng) != Offline {
		t.Fatal("empty NonUniform should be identity for negative peer too")
	}
}

func TestNonUniformNegativePeerIndex(t *testing.T) {
	nu := NewBackbone(4, 1.0, 1.0, 1.0, 0, 0)
	rng := rand.New(rand.NewSource(8))
	// Must not panic and must map into the palette.
	_ = nu.Next(-3, Online, rng)
}

func TestCatastrophe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cat := &Catastrophe{Base: Static{}, At: 3, Fraction: 1.0}
	pop, err := NewPopulation(1000, 1000, cat, rng)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		pop.Step(r)
		if pop.OnlineCount() != 1000 {
			t.Fatalf("round %d: online = %d before catastrophe", r, pop.OnlineCount())
		}
	}
	pop.Step(3)
	if pop.OnlineCount() != 0 {
		t.Fatalf("catastrophe with fraction 1.0 left %d online", pop.OnlineCount())
	}
	pop.Step(4)
	if pop.OnlineCount() != 0 {
		t.Fatalf("static base resurrected %d peers", pop.OnlineCount())
	}
}

func TestCatastrophePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cat := &Catastrophe{Base: Static{}, At: 0, Fraction: 0.5}
	pop, err := NewPopulation(10000, 10000, cat, rng)
	if err != nil {
		t.Fatal(err)
	}
	pop.Step(0)
	got := float64(pop.OnlineCount())
	if math.Abs(got-5000)/5000 > 0.1 {
		t.Fatalf("online after 50%% catastrophe = %v, want ≈ 5000", got)
	}
}

func TestNewPopulationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tests := []struct {
		name    string
		n, on   int
		proc    Process
		withRNG bool
	}{
		{"zero size", 0, 0, Static{}, true},
		{"negative online", 10, -1, Static{}, true},
		{"online > n", 10, 11, Static{}, true},
		{"nil process", 10, 5, nil, true},
		{"nil rng", 10, 5, Static{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := rng
			if !tt.withRNG {
				r = nil
			}
			if _, err := NewPopulation(tt.n, tt.on, tt.proc, r); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestPopulationSetOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pop, err := NewPopulation(3, 0, Static{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pop.SetOnline(1, true)
	if !pop.Online(1) || pop.OnlineCount() != 1 {
		t.Fatalf("SetOnline failed: online=%v count=%d", pop.Online(1), pop.OnlineCount())
	}
	pop.SetOnline(1, true) // idempotent
	if pop.OnlineCount() != 1 {
		t.Fatalf("idempotent SetOnline changed count to %d", pop.OnlineCount())
	}
	pop.SetOnline(1, false)
	if pop.Online(1) || pop.OnlineCount() != 0 {
		t.Fatalf("SetOnline(false) failed")
	}
}

func TestOnlinePeers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pop, err := NewPopulation(5, 2, Static{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := pop.OnlinePeers(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("OnlinePeers = %v, want [0 1]", got)
	}
	// Appends to dst.
	got = pop.OnlinePeers([]int{99})
	if len(got) != 3 || got[0] != 99 {
		t.Fatalf("OnlinePeers append = %v", got)
	}
}

func TestProcessStrings(t *testing.T) {
	procs := []Process{
		Bernoulli{Sigma: 0.9, POn: 0.1},
		Static{},
		Sessions{OnMean: 5, OffMean: 20},
		NewBackbone(4, 0.5, 1, 1, 0, 0),
		&Catastrophe{Base: Static{}, At: 1, Fraction: 0.5},
	}
	for _, p := range procs {
		if p.String() == "" {
			t.Fatalf("%T has empty String()", p)
		}
	}
}
