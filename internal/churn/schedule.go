package churn

import (
	"fmt"
	"math/rand"
	"sort"
)

// RoundAware is implemented by availability processes whose behaviour depends
// on the round being computed (Catastrophe, Schedule, and wrappers around
// them). Population.Step calls BeginRound once per round before the per-peer
// Next calls.
type RoundAware interface {
	BeginRound(round int)
}

// EventSource is implemented by processes with scheduled interventions.
// Simulation drivers consult LastEventRound before declaring a quiet run
// finished: an idle network with a revival still scheduled is not done.
type EventSource interface {
	// LastEventRound returns the round of the last scheduled event, or -1
	// when there is none.
	LastEventRound() int
}

// EventKind classifies a scheduled availability event.
type EventKind int

// Scheduled event kinds.
const (
	// Knockout forces a fraction of the peers that would be online this
	// round offline — the catastrophic-failure injector of §4.1, promoted
	// from a test helper to a first-class event source.
	Knockout EventKind = iota + 1
	// Revive forces a fraction of the peers that would be offline this
	// round online — mass recovery after an outage.
	Revive
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case Knockout:
		return "knockout"
	case Revive:
		return "revive"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduled availability intervention.
type Event struct {
	// Round is when the event applies.
	Round int
	// Kind selects the intervention.
	Kind EventKind
	// Fraction of the affected peers hit, chosen by independent per-peer
	// coin flips (1 hits everyone).
	Fraction float64
}

// Schedule wraps a base Process and applies scheduled events on top of it:
// catastrophic knockouts, mass revivals, and any sequence thereof. It is the
// event source the fault-injection scenarios use for correlated availability
// faults, which the paper's independent per-peer churn model cannot express.
//
// Events at the same round apply in the order they were given, each seeing
// the state left by the previous one — a Revive followed by a Knockout at the
// same round is a restart into a storm, not a no-op.
type Schedule struct {
	base   Process
	events []Event
	round  int
}

var (
	_ Process     = (*Schedule)(nil)
	_ RoundAware  = (*Schedule)(nil)
	_ EventSource = (*Schedule)(nil)
)

// NewSchedule validates the events, orders them by round (preserving the
// given order within a round), and returns the composite process.
func NewSchedule(base Process, events ...Event) (*Schedule, error) {
	if base == nil {
		return nil, fmt.Errorf("churn: schedule needs a base process")
	}
	for i, ev := range events {
		switch {
		case ev.Round < 0:
			return nil, fmt.Errorf("churn: event %d at negative round %d", i, ev.Round)
		case ev.Fraction < 0 || ev.Fraction > 1:
			return nil, fmt.Errorf("churn: event %d fraction %g out of [0,1]", i, ev.Fraction)
		case ev.Kind != Knockout && ev.Kind != Revive:
			return nil, fmt.Errorf("churn: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Round < sorted[j].Round })
	return &Schedule{base: base, events: sorted}, nil
}

// Events returns the schedule's events in application order.
func (s *Schedule) Events() []Event { return append([]Event(nil), s.events...) }

// LastEventRound implements EventSource. The events are round-sorted, so it
// is the last entry's round; base-process events (a Schedule stacked on a
// Catastrophe) count too.
func (s *Schedule) LastEventRound() int {
	last := -1
	if len(s.events) > 0 {
		last = s.events[len(s.events)-1].Round
	}
	if es, ok := s.base.(EventSource); ok && es.LastEventRound() > last {
		last = es.LastEventRound()
	}
	return last
}

// BeginRound implements RoundAware, forwarding to the base process when it is
// round-aware too.
func (s *Schedule) BeginRound(round int) {
	s.round = round
	if ra, ok := s.base.(RoundAware); ok {
		ra.BeginRound(round)
	}
}

// Next implements Process: the base process decides first, then every event
// scheduled for the current round intervenes in order.
func (s *Schedule) Next(peer int, current State, rng *rand.Rand) State {
	next := s.base.Next(peer, current, rng)
	// The events are round-sorted; scan the (short) list for this round's
	// entries so same-round ordering follows the constructor's order.
	for _, ev := range s.events {
		if ev.Round != s.round {
			continue
		}
		switch ev.Kind {
		case Knockout:
			if next == Online && rng.Float64() < ev.Fraction {
				next = Offline
			}
		case Revive:
			if next == Offline && rng.Float64() < ev.Fraction {
				next = Online
			}
		}
	}
	return next
}

// String implements Process.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule(base=%s,events=%d)", s.base, len(s.events))
}
