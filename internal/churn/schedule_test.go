package churn

import (
	"math/rand"
	"testing"
)

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(nil); err == nil {
		t.Fatal("nil base accepted")
	}
	bad := []Event{
		{Round: -1, Kind: Knockout, Fraction: 1},
		{Round: 0, Kind: Knockout, Fraction: -0.1},
		{Round: 0, Kind: Knockout, Fraction: 1.1},
		{Round: 0, Kind: EventKind(99), Fraction: 1},
	}
	for _, ev := range bad {
		if _, err := NewSchedule(Static{}, ev); err == nil {
			t.Fatalf("event %+v accepted", ev)
		}
	}
}

// TestScheduleEventOrdering checks that events sort by round while same-round
// events keep their construction order (stable sort).
func TestScheduleEventOrdering(t *testing.T) {
	s, err := NewSchedule(Static{},
		Event{Round: 10, Kind: Revive, Fraction: 1},
		Event{Round: 5, Kind: Knockout, Fraction: 1},
		Event{Round: 10, Kind: Knockout, Fraction: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Events()
	want := []Event{
		{Round: 5, Kind: Knockout, Fraction: 1},
		{Round: 10, Kind: Revive, Fraction: 1},
		{Round: 10, Kind: Knockout, Fraction: 0.5},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestScheduleSameRoundSequence checks that same-round events apply in order,
// each seeing the previous one's outcome: Revive(1) then Knockout(1) on an
// offline peer revives it and immediately knocks it out again.
func TestScheduleSameRoundSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := NewSchedule(Static{},
		Event{Round: 3, Kind: Revive, Fraction: 1},
		Event{Round: 3, Kind: Knockout, Fraction: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginRound(3)
	if got := s.Next(0, Offline, rng); got != Offline {
		t.Fatalf("revive-then-knockout left peer %v, want offline", got)
	}

	// The reverse order ends online: knockout first (no-op on an offline
	// peer), then revive.
	s2, err := NewSchedule(Static{},
		Event{Round: 3, Kind: Knockout, Fraction: 1},
		Event{Round: 3, Kind: Revive, Fraction: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	s2.BeginRound(3)
	if got := s2.Next(0, Offline, rng); got != Online {
		t.Fatalf("knockout-then-revive left peer %v, want online", got)
	}
}

// TestScheduleRounds checks events only fire on their round.
func TestScheduleRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := NewSchedule(Static{}, Event{Round: 2, Kind: Knockout, Fraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		s.BeginRound(round)
		got := s.Next(0, Online, rng)
		want := Online
		if round == 2 {
			want = Offline
		}
		if got != want {
			t.Fatalf("round %d: state %v, want %v", round, got, want)
		}
	}
}

// TestSchedulePopulation drives a Schedule through Population.Step, checking
// the RoundAware dispatch: a full knockout at round 2 and a full revival at
// round 4 are visible in the online counts.
func TestSchedulePopulation(t *testing.T) {
	s, err := NewSchedule(Static{},
		Event{Round: 2, Kind: Knockout, Fraction: 1},
		Event{Round: 4, Kind: Revive, Fraction: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pop, err := NewPopulation(10, 10, s, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantOnline := map[int]int{1: 10, 2: 0, 3: 0, 4: 10, 5: 10}
	for round := 1; round <= 5; round++ {
		came := pop.Step(round)
		if got := pop.OnlineCount(); got != wantOnline[round] {
			t.Fatalf("round %d: %d online, want %d", round, got, wantOnline[round])
		}
		if round == 4 && len(came) != 10 {
			t.Fatalf("round 4: %d came online, want 10", len(came))
		}
	}
}

// TestScheduleForwardsBeginRound checks that a Schedule stacked on another
// round-aware process forwards BeginRound to it.
func TestScheduleForwardsBeginRound(t *testing.T) {
	inner := &Catastrophe{Base: Static{}, At: 1, Fraction: 1}
	s, err := NewSchedule(inner, Event{Round: 3, Kind: Revive, Fraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pop, err := NewPopulation(4, 4, s, rng)
	if err != nil {
		t.Fatal(err)
	}
	pop.Step(1) // inner catastrophe fires only if BeginRound reached it
	if got := pop.OnlineCount(); got != 0 {
		t.Fatalf("round 1: %d online, want 0 (catastrophe missed BeginRound)", got)
	}
	pop.Step(2)
	pop.Step(3) // schedule's own revival
	if got := pop.OnlineCount(); got != 4 {
		t.Fatalf("round 3: %d online, want 4", got)
	}
}
