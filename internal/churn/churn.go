// Package churn models the online/offline behaviour of peers.
//
// The paper assumes "peers can go offline at any time according to a random
// process" (§3) with expected online probability between 10% and 30% (§4.1).
// For the push-phase analysis the relevant per-round parameters are
//
//	σ  (sigma): probability that an online peer stays online in the next
//	           push round (the paper's p_off = 1−σ), and
//	p_on:      probability that an offline peer comes online in a round
//	           (neglected in the push analysis, exercised by the pull phase).
//
// Besides the Bernoulli per-round process the package provides session-length
// processes (geometric sessions, which in the limit reproduce the Poisson
// online model of §5.6), a non-uniform per-peer process (§8 future work) and
// a catastrophic-failure injector used by the robustness tests.
package churn

import (
	"fmt"
	"math"
	"math/rand"
)

// State is a peer's availability state.
type State bool

// Peer availability states.
const (
	Offline State = false
	Online  State = true
)

// Process decides, once per round and per peer, whether a peer changes
// availability. Implementations must be deterministic for a fixed *rand.Rand
// sequence so that simulations are reproducible.
type Process interface {
	// Next returns the peer's state for the coming round given its current
	// state. The peer index lets non-uniform processes differentiate peers.
	Next(peer int, current State, rng *rand.Rand) State
	// String describes the process for experiment logs.
	String() string
}

// Bernoulli is the paper's memoryless per-round model: an online peer stays
// online with probability Sigma; an offline peer comes online with
// probability POn.
type Bernoulli struct {
	// Sigma is the probability an online peer remains online next round.
	Sigma float64
	// POn is the probability an offline peer comes online next round.
	POn float64
}

var _ Process = Bernoulli{}

// Next implements Process.
func (b Bernoulli) Next(_ int, current State, rng *rand.Rand) State {
	if current == Online {
		return State(rng.Float64() < b.Sigma)
	}
	return State(rng.Float64() < b.POn)
}

// String implements Process.
func (b Bernoulli) String() string {
	return fmt.Sprintf("bernoulli(sigma=%g,p_on=%g)", b.Sigma, b.POn)
}

// StationaryOnline returns the long-run online fraction of the Bernoulli
// process, p_on / (p_on + 1 − σ). It returns NaN when the chain is absorbing
// in both states (σ=1 and p_on=0), where no stationary fraction is defined.
func (b Bernoulli) StationaryOnline() float64 {
	den := b.POn + (1 - b.Sigma)
	if den == 0 {
		return math.NaN()
	}
	return b.POn / den
}

// Static never changes availability. It models the paper's simplifying
// assumption σ=1, p_on=0 used in the scalability study (Fig. 5) and in
// Table 2.
type Static struct{}

var _ Process = Static{}

// Next implements Process.
func (Static) Next(_ int, current State, _ *rand.Rand) State { return current }

// String implements Process.
func (Static) String() string { return "static" }

// Sessions draws geometric session lengths: when a peer comes online it stays
// for a geometric number of rounds with mean OnMean, then goes offline for a
// geometric number of rounds with mean OffMean. With small per-round
// probabilities this discretises exponential session lengths, i.e. the
// Poisson online model the paper uses for the Gnutella analysis (§5.6).
//
// Sessions is stateless across calls because the geometric distribution is
// memoryless: staying online with probability 1−1/OnMean each round yields
// geometric sessions with the desired mean.
type Sessions struct {
	// OnMean is the mean online-session length in rounds (must be ≥ 1).
	OnMean float64
	// OffMean is the mean offline-gap length in rounds (must be ≥ 1).
	OffMean float64
}

var _ Process = Sessions{}

// Next implements Process.
func (s Sessions) Next(_ int, current State, rng *rand.Rand) State {
	if current == Online {
		stay := 1 - 1/math.Max(1, s.OnMean)
		return State(rng.Float64() < stay)
	}
	stayOff := 1 - 1/math.Max(1, s.OffMean)
	return State(rng.Float64() >= stayOff)
}

// String implements Process.
func (s Sessions) String() string {
	return fmt.Sprintf("sessions(on=%g,off=%g)", s.OnMean, s.OffMean)
}

// StationaryOnline returns the long-run online fraction OnMean/(OnMean+OffMean).
func (s Sessions) StationaryOnline() float64 {
	on := math.Max(1, s.OnMean)
	off := math.Max(1, s.OffMean)
	return on / (on + off)
}

// NonUniform assigns each peer its own Bernoulli parameters. It models the
// paper's future-work scenario (§8) of a relatively reliable backbone: a
// fraction of peers with high availability and a long tail of flaky ones.
type NonUniform struct {
	// Procs holds one Bernoulli process per peer. Peer i uses
	// Procs[i%len(Procs)], so a small palette can cover a large population.
	Procs []Bernoulli
}

var _ Process = NonUniform{}

// NewBackbone builds a NonUniform process in which a `backboneFrac` fraction
// of the population is highly available (sigmaHigh, pOnHigh) and the rest is
// flaky (sigmaLow, pOnLow). Peers are assigned deterministically by index so
// that experiments are reproducible.
func NewBackbone(n int, backboneFrac, sigmaHigh, pOnHigh, sigmaLow, pOnLow float64) NonUniform {
	if n <= 0 {
		n = 1
	}
	procs := make([]Bernoulli, n)
	cut := int(math.Round(backboneFrac * float64(n)))
	for i := range procs {
		if i < cut {
			procs[i] = Bernoulli{Sigma: sigmaHigh, POn: pOnHigh}
		} else {
			procs[i] = Bernoulli{Sigma: sigmaLow, POn: pOnLow}
		}
	}
	return NonUniform{Procs: procs}
}

// Next implements Process.
func (nu NonUniform) Next(peer int, current State, rng *rand.Rand) State {
	if len(nu.Procs) == 0 {
		return current
	}
	idx := peer % len(nu.Procs)
	if idx < 0 {
		idx += len(nu.Procs)
	}
	return nu.Procs[idx].Next(peer, current, rng)
}

// String implements Process.
func (nu NonUniform) String() string {
	return fmt.Sprintf("nonuniform(%d classes)", len(nu.Procs))
}

// Catastrophe wraps a Process and, at round At, forcibly knocks offline a
// Fraction of the population (chosen per-peer with independent coin flips).
// It is used by the failure-injection tests: the paper argues the push phase
// is robust unless "there is any kind of catastrophic failure" (§4.1), and we
// verify that the pull phase recovers afterwards. Schedule generalises it to
// arbitrary sequences of knockout and revival events.
type Catastrophe struct {
	// Base is the underlying availability process.
	Base Process
	// At is the round at which the catastrophe strikes.
	At int
	// Fraction of online peers to knock offline at round At.
	Fraction float64

	round int
}

var _ Process = (*Catastrophe)(nil)

// Next implements Process. BeginRound must be called once per round before
// the per-peer Next calls.
func (c *Catastrophe) Next(peer int, current State, rng *rand.Rand) State {
	next := c.Base.Next(peer, current, rng)
	if c.round == c.At && next == Online && rng.Float64() < c.Fraction {
		return Offline
	}
	return next
}

// BeginRound informs the process which round is being computed.
func (c *Catastrophe) BeginRound(round int) { c.round = round }

// LastEventRound implements EventSource: the catastrophe round, plus any
// events of the base process.
func (c *Catastrophe) LastEventRound() int {
	last := c.At
	if es, ok := c.Base.(EventSource); ok && es.LastEventRound() > last {
		last = es.LastEventRound()
	}
	return last
}

// String implements Process.
func (c *Catastrophe) String() string {
	return fmt.Sprintf("catastrophe(at=%d,frac=%g,base=%s)", c.At, c.Fraction, c.Base)
}

// Population tracks the availability of a set of peers and advances it one
// round at a time under a Process.
type Population struct {
	states []State
	proc   Process
	rng    *rand.Rand
	online int
}

// NewPopulation creates n peers, the first initialOnline of which start
// online (callers shuffle identities themselves if randomised placement is
// wanted; keeping it deterministic makes experiments reproducible).
func NewPopulation(n, initialOnline int, proc Process, rng *rand.Rand) (*Population, error) {
	if n <= 0 {
		return nil, fmt.Errorf("churn: population size %d must be positive", n)
	}
	if initialOnline < 0 || initialOnline > n {
		return nil, fmt.Errorf("churn: initial online %d out of range [0,%d]", initialOnline, n)
	}
	if proc == nil {
		return nil, fmt.Errorf("churn: nil process")
	}
	if rng == nil {
		return nil, fmt.Errorf("churn: nil rng")
	}
	p := &Population{
		states: make([]State, n),
		proc:   proc,
		rng:    rng,
		online: initialOnline,
	}
	for i := 0; i < initialOnline; i++ {
		p.states[i] = Online
	}
	return p, nil
}

// Len returns the population size.
func (p *Population) Len() int { return len(p.states) }

// Online reports whether peer i is online.
func (p *Population) Online(i int) bool { return bool(p.states[i]) }

// OnlineCount returns the number of online peers.
func (p *Population) OnlineCount() int { return p.online }

// OnlinePeers appends the indices of all online peers to dst and returns it.
func (p *Population) OnlinePeers(dst []int) []int {
	for i, s := range p.states {
		if s == Online {
			dst = append(dst, i)
		}
	}
	return dst
}

// SetOnline forces peer i's state (used by tests and by the live runtime to
// mirror real connectivity into a simulation).
func (p *Population) SetOnline(i int, online bool) {
	cur := p.states[i]
	next := State(online)
	if cur == next {
		return
	}
	p.states[i] = next
	if next == Online {
		p.online++
	} else {
		p.online--
	}
}

// Step advances every peer one round under the process. The round number is
// forwarded to processes that care (Catastrophe). It returns the slice of
// peers that came online this round (for the pull phase) — the returned slice
// is valid until the next Step call.
func (p *Population) Step(round int) (cameOnline []int) {
	if ra, ok := p.proc.(RoundAware); ok {
		ra.BeginRound(round)
	}
	online := 0
	for i, cur := range p.states {
		next := p.proc.Next(i, cur, p.rng)
		if next == Online {
			online++
			if cur == Offline {
				cameOnline = append(cameOnline, i)
			}
		}
		p.states[i] = next
	}
	p.online = online
	return cameOnline
}
