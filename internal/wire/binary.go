package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// This file is the hand-rolled binary envelope codec — the format the
// transports actually speak. Layout (all multi-byte integers big-endian,
// uvarint is the unsigned LEB128 of encoding/binary):
//
//	frame    = len u32 | body                    len = length of body
//	body     = ver u8 | kind u8 | from str | payload
//	str      = uvarint n | n bytes
//	blob     = uvarint n | n bytes
//	i64      = 8 bytes big-endian (two's complement)
//	hist     = uvarint n | n × 16 bytes          version identifiers
//	clock    = uvarint n | n × (str origin, uvarint count)
//	update   = str origin | uvarint seq | str key | blob value |
//	           flags u8 (bit0 = delete) | hist version | i64 stamp
//
// Per-kind payloads:
//
//	push      = update | uvarint nRF × str | uvarint t
//	pull-req  = clock
//	pull-resp = uvarint nUpd × update | uvarint nPeers × str
//	ack       = str origin | uvarint seq
//	query     = i64 qid | str key
//	queryresp = i64 qid | str key | flags u8 (bit0 found, bit1 confident) |
//	            blob value | hist version
//	snapshot  = blob snapshot | uvarint nPeers × str
//
// The leading format-version byte exists for evolution: a node seeing an
// unknown version drops the connection instead of misparsing. The decoder
// bounds every count against the bytes actually remaining, so corrupt or
// hostile input cannot force allocation beyond the (already length-bounded)
// frame it arrived in, and a frame with trailing bytes after its payload is
// rejected — exactly one envelope per frame.

// BinaryVersion is the format-version byte leading every binary envelope
// body. Bump it when the layout changes; decoders reject versions they do
// not speak.
const BinaryVersion = 1

// FrameOverhead is the fixed per-frame cost of the binary codec: the 4-byte
// length prefix, the format-version byte, and the kind byte. The rest of a
// frame is the From address and the kind-specific payload.
const FrameOverhead = 6

// flag bits of the update and query-response flag bytes.
const (
	flagDelete    = 1 << 0
	flagFound     = 1 << 0
	flagConfident = 1 << 1
)

// maxPushRound bounds the push round counter on both codec sides: rounds
// are small in practice, and sharing one bound keeps the invariant that
// everything encodable decodes.
const maxPushRound = 1 << 30

// --- Sizes -------------------------------------------------------------
//
// The size functions mirror the append functions exactly; they are exported
// so the simulator's byte accounting (internal/gossip) charges the real
// encoded size without building envelopes.

// UvarintSize returns the encoded length of x as a uvarint.
func UvarintSize(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// StringSize returns the encoded length of a str field.
func StringSize(s string) int { return UvarintSize(uint64(len(s))) + len(s) }

// BlobSize returns the encoded length of a blob field.
func BlobSize(b []byte) int { return UvarintSize(uint64(len(b))) + len(b) }

// HistorySize returns the encoded length of a version history with n
// entries.
func HistorySize(n int) int { return UvarintSize(uint64(n)) + n*version.IDSize }

// ClockSize returns the encoded length of a vector clock.
func ClockSize(c version.Clock) int {
	n := UvarintSize(uint64(len(c)))
	for origin, count := range c {
		n += StringSize(origin) + UvarintSize(count)
	}
	return n
}

// StoreUpdateSize returns the encoded length of one update record, computed
// from the store form directly.
func StoreUpdateSize(u store.Update) int {
	return StringSize(u.Origin) + UvarintSize(u.Seq) + StringSize(u.Key) +
		BlobSize(u.Value) + 1 + HistorySize(len(u.Version)) + 8
}

func updateSize(u *Update) int {
	return StringSize(u.Origin) + UvarintSize(u.Seq) + StringSize(u.Key) +
		BlobSize(u.Value) + 1 + HistorySize(len(u.Version)) + 8
}

// EncodedSize returns the total frame length — FrameOverhead plus body —
// the binary codec produces for env.
func EncodedSize(env *Envelope) int {
	n := FrameOverhead + StringSize(env.From)
	switch env.Kind {
	case KindPush:
		n += updateSize(&env.Update) + UvarintSize(uint64(len(env.RF)))
		for _, addr := range env.RF {
			n += StringSize(addr)
		}
		n += UvarintSize(uint64(env.T))
	case KindPullReq:
		n += ClockSize(env.Clock)
	case KindPullResp:
		n += UvarintSize(uint64(len(env.Updates)))
		for i := range env.Updates {
			n += updateSize(&env.Updates[i])
		}
		n += UvarintSize(uint64(len(env.KnownPeers)))
		for _, addr := range env.KnownPeers {
			n += StringSize(addr)
		}
	case KindAck:
		n += StringSize(env.UpdateRef.Origin) + UvarintSize(env.UpdateRef.Seq)
	case KindQuery:
		n += 8 + StringSize(env.Key)
	case KindQueryResp:
		n += 8 + StringSize(env.Key) + 1 + BlobSize(env.Value) +
			HistorySize(len(env.Version))
	case KindSnapshot:
		n += BlobSize(env.Snapshot) + UvarintSize(uint64(len(env.KnownPeers)))
		for _, addr := range env.KnownPeers {
			n += StringSize(addr)
		}
	}
	return n
}

// --- Encoding ----------------------------------------------------------

func appendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBlob(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendI64(dst []byte, x int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(x))
}

func appendHistory(dst []byte, h version.History) []byte {
	dst = appendUvarint(dst, uint64(len(h)))
	for i := range h {
		dst = append(dst, h[i][:]...)
	}
	return dst
}

// appendClock encodes a vector clock in sorted origin order. The sort makes
// the encoding canonical — one byte string per clock — so frames are
// reproducible and the decoder can enforce uniqueness for free.
func appendClock(dst []byte, c version.Clock) []byte {
	dst = appendUvarint(dst, uint64(len(c)))
	if len(c) == 0 {
		return dst
	}
	if len(c) == 1 {
		for origin, count := range c {
			dst = appendString(dst, origin)
			dst = appendUvarint(dst, count)
		}
		return dst
	}
	origins := make([]string, 0, len(c))
	for origin := range c {
		origins = append(origins, origin)
	}
	sort.Strings(origins)
	for _, origin := range origins {
		dst = appendString(dst, origin)
		dst = appendUvarint(dst, c[origin])
	}
	return dst
}

func appendUpdate(dst []byte, u *Update) []byte {
	dst = appendString(dst, u.Origin)
	dst = appendUvarint(dst, u.Seq)
	dst = appendString(dst, u.Key)
	dst = appendBlob(dst, u.Value)
	var flags byte
	if u.Delete {
		flags |= flagDelete
	}
	dst = append(dst, flags)
	dst = appendHistory(dst, u.Version)
	return appendI64(dst, u.Stamp)
}

// AppendBody appends the binary body (format version, kind, from, payload —
// everything but the length prefix) of env to dst.
func AppendBody(dst []byte, env *Envelope) ([]byte, error) {
	if env.Kind < KindPush || env.Kind > kindMax {
		return dst, fmt.Errorf("wire: cannot encode kind %d", int(env.Kind))
	}
	// Mirror the decoder's bound exactly: anything encodable must decode.
	if env.T < 0 || env.T > maxPushRound {
		return dst, fmt.Errorf("wire: push round %d out of range", env.T)
	}
	dst = append(dst, BinaryVersion, byte(env.Kind))
	dst = appendString(dst, env.From)
	switch env.Kind {
	case KindPush:
		dst = appendUpdate(dst, &env.Update)
		dst = appendUvarint(dst, uint64(len(env.RF)))
		for _, addr := range env.RF {
			dst = appendString(dst, addr)
		}
		dst = appendUvarint(dst, uint64(env.T))
	case KindPullReq:
		dst = appendClock(dst, env.Clock)
	case KindPullResp:
		dst = appendUvarint(dst, uint64(len(env.Updates)))
		for i := range env.Updates {
			dst = appendUpdate(dst, &env.Updates[i])
		}
		dst = appendUvarint(dst, uint64(len(env.KnownPeers)))
		for _, addr := range env.KnownPeers {
			dst = appendString(dst, addr)
		}
	case KindAck:
		dst = appendString(dst, env.UpdateRef.Origin)
		dst = appendUvarint(dst, env.UpdateRef.Seq)
	case KindQuery:
		dst = appendI64(dst, env.QID)
		dst = appendString(dst, env.Key)
	case KindQueryResp:
		dst = appendI64(dst, env.QID)
		dst = appendString(dst, env.Key)
		var flags byte
		if env.Found {
			flags |= flagFound
		}
		if env.Confident {
			flags |= flagConfident
		}
		dst = append(dst, flags)
		dst = appendBlob(dst, env.Value)
		dst = appendHistory(dst, env.Version)
	case KindSnapshot:
		dst = appendBlob(dst, env.Snapshot)
		dst = appendUvarint(dst, uint64(len(env.KnownPeers)))
		for _, addr := range env.KnownPeers {
			dst = appendString(dst, addr)
		}
	}
	return dst, nil
}

// AppendFrame appends the complete frame — length prefix plus body — of env
// to dst. Encoding a frame whose body exceeds MaxFrameBytes fails with
// ErrFrameTooLarge.
func AppendFrame(dst []byte, env *Envelope) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := AppendBody(dst, env)
	if err != nil {
		return dst[:start], err
	}
	body := len(dst) - start - 4
	if body > MaxFrameBytes {
		return dst[:start], fmt.Errorf("%w: %d bytes > %d", ErrFrameTooLarge, body, MaxFrameBytes)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// --- Decoding ----------------------------------------------------------

// errShort reports a field running past the end of the frame.
var errShort = fmt.Errorf("wire: truncated envelope body")

// binReader is a bounds-checked cursor over one frame body.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, errShort
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.data[r.off:])
	// Rejecting non-minimal encodings keeps the codec canonical: every
	// envelope has exactly one valid byte string.
	if n <= 0 || n != UvarintSize(x) {
		return 0, fmt.Errorf("wire: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return x, nil
}

// take returns the next n raw bytes, aliasing the frame buffer.
func (r *binReader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, errShort
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", errShort
	}
	b, _ := r.take(int(n))
	return string(b), nil
}

// strCached is str with a single-entry cache: when the bytes match prev the
// existing string is reused instead of allocating. A connection's frames
// repeat the same sender address, so the From field hits this on every
// frame after the first.
func (r *binReader) strCached(prev string) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", errShort
	}
	b, _ := r.take(int(n))
	if string(b) == prev { // comparison, no conversion allocation
		return prev, nil
	}
	return string(b), nil
}

// blob returns a fresh copy of a length-prefixed byte field. Values escape
// into the store and into query state, so they must not alias the reusable
// frame buffer.
func (r *binReader) blob() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, errShort
	}
	b, _ := r.take(int(n))
	if len(b) == 0 {
		return nil, nil
	}
	return append([]byte(nil), b...), nil
}

func (r *binReader) i64() (int64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

// history decodes a version history into fresh backing (histories escape
// into the store). The entry count is implicitly bounded by the frame:
// take() fails before any oversized allocation could happen.
func (r *binReader) history() (version.History, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining())/version.IDSize {
		return nil, errShort
	}
	if n == 0 {
		return nil, nil
	}
	out := make(version.History, n)
	for i := range out {
		b, _ := r.take(version.IDSize)
		copy(out[i][:], b)
	}
	return out, nil
}

// maxPreallocEntries caps count-driven pre-allocation in the decoder; a
// frame claiming more entries earns its memory incrementally, as entries
// actually parse, so allocation tracks bytes consumed rather than a
// attacker-chosen count. maxReusedEntries caps the container capacity a
// decode scratch retains between frames, so one legitimately huge frame
// (up to MaxFrameBytes) is not pinned for the connection's lifetime.
const (
	maxPreallocEntries = 4096
	maxReusedEntries   = 4096
)

// clock decodes a vector clock, reusing dst's storage when non-nil.
func (r *binReader) clock(dst version.Clock) (version.Clock, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each entry is at least 2 bytes (empty origin + 1-byte count).
	if n > uint64(r.remaining())/2 {
		return nil, errShort
	}
	var cached string
	if len(dst) == 1 {
		// Single-origin clocks (a young deployment pulling from its writer)
		// repeat the same key frame after frame; keep it across the clear.
		for k := range dst {
			cached = k
		}
	}
	if dst == nil {
		alloc := n
		if alloc > maxPreallocEntries {
			alloc = maxPreallocEntries
		}
		dst = make(version.Clock, alloc)
	} else {
		clear(dst)
	}
	prev := ""
	for i := uint64(0); i < n; i++ {
		origin, err := r.strCached(cached)
		if err != nil {
			return nil, err
		}
		// The encoder emits origins sorted and unique; enforcing that here
		// keeps the encoding canonical (decode∘encode is the identity on
		// bytes) and rejects duplicate keys.
		if i > 0 && origin <= prev {
			return nil, fmt.Errorf("wire: clock origins out of order")
		}
		prev = origin
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		dst[origin] = count
	}
	return dst, nil
}

// update decodes one update record into u. The origin and key strings of
// u's previous contents serve as single-entry caches (streams repeat both),
// so callers pass the reused struct rather than a zero one.
func (r *binReader) update(u *Update) error {
	var err error
	if u.Origin, err = r.strCached(u.Origin); err != nil {
		return err
	}
	if u.Seq, err = r.uvarint(); err != nil {
		return err
	}
	if u.Key, err = r.strCached(u.Key); err != nil {
		return err
	}
	if u.Value, err = r.blob(); err != nil {
		return err
	}
	flags, err := r.byte()
	if err != nil {
		return err
	}
	// Unknown flag bits are rejected, not ignored: accepting them would
	// break the one-encoding-per-envelope canonicality contract (the
	// re-encode clears them) and silently discard future format bits.
	if flags&^byte(flagDelete) != 0 {
		return fmt.Errorf("wire: unknown update flags %#x", flags)
	}
	u.Delete = flags&flagDelete != 0
	if u.Version, err = r.history(); err != nil {
		return err
	}
	u.Stamp, err = r.i64()
	return err
}

// strs decodes a length-prefixed string list, reusing dst's backing array.
func (r *binReader) strs(dst []string) ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each entry is at least 1 byte (empty string).
	if n > uint64(r.remaining()) {
		return nil, errShort
	}
	if uint64(cap(dst)) < n {
		alloc := n
		if alloc > maxPreallocEntries {
			alloc = maxPreallocEntries
		}
		dst = make([]string, 0, alloc)
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		dst = append(dst, s)
	}
	return dst, nil
}

// decodeScratch is the reusable decode state of one frame stream: the
// container backing arrays, the clock map, and the single-entry string
// caches. It lives outside the Envelope so reuse survives interleaved
// kinds — a real connection mixes pushes with acks and pull traffic, and
// an ack between two pushes must not throw the push containers away.
// Retention is capped at maxReusedEntries so one oversized frame does not
// stay pinned for the connection's lifetime.
type decodeScratch struct {
	rf      []string
	peers   []string
	updates []Update
	clock   version.Clock
	from    string // sender cache
	origin  string // push-update origin/key caches
	key     string
}

// harvest stores the containers a decode left in env back into the
// scratch, dropping any that grew beyond the retention cap.
func (s *decodeScratch) harvest(env *Envelope) {
	if env.RF != nil && cap(env.RF) <= maxReusedEntries {
		s.rf = env.RF
	}
	if env.KnownPeers != nil && cap(env.KnownPeers) <= maxReusedEntries {
		s.peers = env.KnownPeers
	}
	if env.Updates != nil && cap(env.Updates) <= maxReusedEntries {
		s.updates = env.Updates
	}
	if env.Clock != nil {
		if len(env.Clock) <= maxReusedEntries {
			s.clock = env.Clock
		} else {
			// The decoder filled the retained map in place; a map never
			// shrinks, so an oversized one must be dropped, not kept.
			s.clock = nil
		}
	}
	s.from = env.From
	if env.Kind == KindPush {
		s.origin, s.key = env.Update.Origin, env.Update.Key
	}
}

// DecodeBody decodes one binary envelope body (as framed by AppendFrame,
// prefix stripped) into env, which is reset first. Reusable containers —
// the RF, Updates and KnownPeers backing arrays and the Clock map — are
// taken from env's previous contents, so one-shot callers and same-kind
// loops reuse storage; streaming callers use FrameReader, whose scratch
// survives interleaved kinds. Everything that escapes the envelope
// (strings, values, version histories) is freshly allocated. Malformed
// input — unknown format version or kind, fields past the end, trailing
// bytes — is rejected without panicking, and allocation is proportional to
// the (length-bounded) frame, never to a claimed count alone.
func DecodeBody(data []byte, env *Envelope) error {
	s := decodeScratch{
		rf: env.RF, peers: env.KnownPeers, updates: env.Updates,
		clock: env.Clock, from: env.From,
		origin: env.Update.Origin, key: env.Update.Key,
	}
	return decodeBody(data, env, &s)
}

func decodeBody(data []byte, env *Envelope, s *decodeScratch) error {
	rf, updates, peers, clock := s.rf, s.updates, s.peers, s.clock
	prevFrom := s.from
	prevOrigin, prevKey := s.origin, s.key
	*env = Envelope{}
	r := binReader{data: data}
	ver, err := r.byte()
	if err != nil {
		return err
	}
	if ver != BinaryVersion {
		return fmt.Errorf("wire: unknown format version %d", ver)
	}
	kind, err := r.byte()
	if err != nil {
		return err
	}
	if Kind(kind) < KindPush || Kind(kind) > kindMax {
		return fmt.Errorf("wire: unknown kind %d", kind)
	}
	env.Kind = Kind(kind)
	if env.From, err = r.strCached(prevFrom); err != nil {
		return err
	}
	switch env.Kind {
	case KindPush:
		env.Update.Origin, env.Update.Key = prevOrigin, prevKey
		if err := r.update(&env.Update); err != nil {
			return err
		}
		if env.RF, err = r.strs(rf); err != nil {
			return err
		}
		t, err := r.uvarint()
		if err != nil {
			return err
		}
		if t > maxPushRound {
			return fmt.Errorf("wire: push round %d out of range", t)
		}
		env.T = int(t)
	case KindPullReq:
		if env.Clock, err = r.clock(clock); err != nil {
			return err
		}
	case KindPullResp:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		// Each update record is at least 14 bytes (five 1-byte empty
		// fields, the flag byte, and the 8-byte stamp).
		if n > uint64(r.remaining())/14 {
			return errShort
		}
		// Slots are reused (not just the backing array) so each slot's
		// previous origin/key strings serve as the decode caches; beyond the
		// retained capacity the slice grows one parsed entry at a time, so
		// memory tracks bytes consumed, not the claimed count.
		updates = updates[:0]
		for i := uint64(0); i < n; i++ {
			if i < uint64(cap(updates)) {
				updates = updates[:i+1]
			} else {
				updates = append(updates, Update{})
			}
			if err := r.update(&updates[i]); err != nil {
				return err
			}
		}
		env.Updates = updates
		if env.KnownPeers, err = r.strs(peers); err != nil {
			return err
		}
	case KindAck:
		if env.UpdateRef.Origin, err = r.str(); err != nil {
			return err
		}
		if env.UpdateRef.Seq, err = r.uvarint(); err != nil {
			return err
		}
	case KindQuery:
		if env.QID, err = r.i64(); err != nil {
			return err
		}
		if env.Key, err = r.str(); err != nil {
			return err
		}
	case KindQueryResp:
		if env.QID, err = r.i64(); err != nil {
			return err
		}
		if env.Key, err = r.str(); err != nil {
			return err
		}
		flags, err := r.byte()
		if err != nil {
			return err
		}
		if flags&^byte(flagFound|flagConfident) != 0 {
			return fmt.Errorf("wire: unknown query-resp flags %#x", flags)
		}
		env.Found = flags&flagFound != 0
		env.Confident = flags&flagConfident != 0
		if env.Value, err = r.blob(); err != nil {
			return err
		}
		if env.Version, err = r.history(); err != nil {
			return err
		}
	case KindSnapshot:
		if env.Snapshot, err = r.blob(); err != nil {
			return err
		}
		if env.KnownPeers, err = r.strs(peers); err != nil {
			return err
		}
	}
	if r.remaining() != 0 {
		return fmt.Errorf("wire: %d stray bytes after envelope", r.remaining())
	}
	s.harvest(env)
	return nil
}

// DecodeBinary decodes one body into a fresh envelope — the one-shot
// convenience for tests and tools; transports use FrameReader, whose
// scratch state survives interleaved kinds.
func DecodeBinary(data []byte) (Envelope, error) {
	var env Envelope
	if err := DecodeBody(data, &env); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

// EncodeBinary encodes env as one body (no length prefix) into fresh
// memory — the one-shot counterpart of DecodeBinary.
func EncodeBinary(env *Envelope) ([]byte, error) {
	return AppendBody(make([]byte, 0, EncodedSize(env)-4), env)
}
