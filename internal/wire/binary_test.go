package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// binTestEnvelopes covers every kind with populated and with zero-ish
// fields.
func binTestEnvelopes(t *testing.T) []Envelope {
	t.Helper()
	u := FromStore(sampleUpdate(t))
	del := u
	del.Delete = true
	del.Value = nil
	return []Envelope{
		{Kind: KindPush, From: "127.0.0.1:9000", Update: u,
			RF: []string{"127.0.0.1:9001", "127.0.0.1:9002"}, T: 3},
		{Kind: KindPush, From: "a", Update: del}, // no list, T=0
		{Kind: KindPullReq, From: "b", Clock: version.Clock{"x": 3, "y": 1 << 40}},
		{Kind: KindPullReq, From: "b"}, // nil clock
		{Kind: KindPullResp, From: "c", Updates: []Update{u, del},
			KnownPeers: []string{"d", ""}},
		{Kind: KindPullResp, From: "c"}, // empty response
		{Kind: KindAck, From: "d", UpdateRef: store.Ref{Origin: "origin-1", Seq: 2}},
		{Kind: KindAck, From: ""},
		{Kind: KindQuery, From: "e", QID: -1, Key: "k"},
		{Kind: KindQueryResp, From: "f", QID: 1 << 60, Key: "k", Found: true,
			Value: []byte("v"), Version: u.Version, Confident: true},
		{Kind: KindQueryResp, From: "f", QID: 0, Key: ""},
		{Kind: KindSnapshot, From: "g", Snapshot: []byte("resident-state"),
			KnownPeers: []string{"h", "i"}},
		{Kind: KindSnapshot, From: "g"}, // empty snapshot, no peers
	}
}

// normalizeEnvelope maps an envelope to the canonical form the binary codec
// can represent: nil and empty slices/maps collapse (both encode as count
// 0). Deep equality after normalisation is the codec's fidelity contract.
func normalizeEnvelope(env Envelope) Envelope {
	if len(env.RF) == 0 {
		env.RF = nil
	}
	if len(env.Clock) == 0 {
		env.Clock = nil
	}
	if len(env.KnownPeers) == 0 {
		env.KnownPeers = nil
	}
	if len(env.Value) == 0 {
		env.Value = nil
	}
	if len(env.Snapshot) == 0 {
		env.Snapshot = nil
	}
	if len(env.Version) == 0 {
		env.Version = nil
	}
	if len(env.Updates) == 0 {
		env.Updates = nil
	} else {
		updates := make([]Update, len(env.Updates))
		copy(updates, env.Updates)
		for i := range updates {
			if len(updates[i].Value) == 0 {
				updates[i].Value = nil
			}
			if len(updates[i].Version) == 0 {
				updates[i].Version = nil
			}
		}
		env.Updates = updates
	}
	return env
}

func TestBinaryRoundTripAllKinds(t *testing.T) {
	for _, env := range binTestEnvelopes(t) {
		body, err := EncodeBinary(&env)
		if err != nil {
			t.Fatalf("%s: encode: %v", env.Kind, err)
		}
		if got, want := len(body), EncodedSize(&env)-4; got != want {
			t.Fatalf("%s: body is %dB, EncodedSize-4 says %dB", env.Kind, got, want)
		}
		back, err := DecodeBinary(body)
		if err != nil {
			t.Fatalf("%s: decode: %v", env.Kind, err)
		}
		if !reflect.DeepEqual(normalizeEnvelope(back), normalizeEnvelope(env)) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", env.Kind, back, env)
		}
		// Canonical: re-encoding the decoded envelope reproduces the bytes.
		again, err := EncodeBinary(&back)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", env.Kind, err)
		}
		if !bytes.Equal(again, body) {
			t.Fatalf("%s: encoding is not canonical", env.Kind)
		}
	}
}

func TestBinaryRejectsMalformed(t *testing.T) {
	valid, err := EncodeBinary(&Envelope{
		Kind: KindPush, From: "a",
		Update: Update{Origin: "o", Seq: 1, Key: "k", Value: []byte("v"),
			Version: version.History{{1}}, Stamp: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":              {},
		"version only":       {BinaryVersion},
		"unknown version":    {99, byte(KindPush)},
		"zero kind":          {BinaryVersion, 0},
		"unknown kind":       {BinaryVersion, 200},
		"truncated body":     valid[:len(valid)-1],
		"trailing garbage":   append(append([]byte(nil), valid...), 'x'),
		"string past end":    {BinaryVersion, byte(KindQuery), 0xFF, 0xFF, 0xFF},
		"huge history count": {BinaryVersion, byte(KindQueryResp), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
	}
	for name, data := range cases {
		if _, err := DecodeBinary(data); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}
}

// TestBinaryDecodeReuseIsolation: decoding a second frame into the same
// envelope must not corrupt data the first decode handed out — values and
// version histories escape into the store and must be freshly allocated
// per decode.
func TestBinaryDecodeReuseIsolation(t *testing.T) {
	mk := func(val string, seq uint64) []byte {
		body, err := EncodeBinary(&Envelope{
			Kind: KindPullResp, From: "a",
			Updates: []Update{{
				Origin: "o", Seq: seq, Key: "k", Value: []byte(val),
				Version: version.History{{byte(seq)}},
				Stamp:   time.Unix(0, 1).UnixNano(),
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	var env Envelope
	if err := DecodeBody(mk("first", 1), &env); err != nil {
		t.Fatal(err)
	}
	first := env.Updates[0].ToStore()
	if err := DecodeBody(mk("second", 2), &env); err != nil {
		t.Fatal(err)
	}
	if string(first.Value) != "first" {
		t.Fatalf("first decode's value corrupted by reuse: %q", first.Value)
	}
	if first.Version[0] != (version.ID{1}) {
		t.Fatal("first decode's history corrupted by reuse")
	}
	if string(env.Updates[0].Value) != "second" {
		t.Fatalf("second decode = %q", env.Updates[0].Value)
	}
}

// TestBinaryKindCrossFields: fields belonging to other kinds are dropped by
// the codec (only the kind's payload travels), matching the engine's
// contract that only kind-relevant fields are meaningful.
func TestBinaryKindCrossFields(t *testing.T) {
	env := Envelope{Kind: KindAck, From: "a",
		UpdateRef: store.Ref{Origin: "o", Seq: 9},
		Key:       "leaks?", Value: []byte("leaks?"), T: 7}
	body, err := EncodeBinary(&env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != "" || back.Value != nil || back.T != 0 {
		t.Fatalf("non-ack fields travelled: %+v", back)
	}
	if back.UpdateRef != env.UpdateRef {
		t.Fatalf("ack ref = %+v", back.UpdateRef)
	}
}
