package wire

import (
	"github.com/p2pgossip/update/internal/version"
)

// Compat shims. The hot paths carry version.Clock directly on the Envelope
// (no map copy per message); these helpers survive for callers that need a
// defensive copy at the API boundary — tools, tests, and code that mutates
// the wire form after conversion.

// ClockToWire copies a version.Clock into a plain map — the old wire form.
// Compat only: Envelope.Clock carries version.Clock directly; copy only
// when the result will be mutated independently.
func ClockToWire(c version.Clock) map[string]uint64 {
	out := make(map[string]uint64, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// ClockFromWire copies a plain map back into a version.Clock.
// Compat only: Envelope.Clock carries version.Clock directly; copy only
// when the result will be mutated independently.
func ClockFromWire(m map[string]uint64) version.Clock {
	out := version.NewClock()
	for k, v := range m {
		out[k] = v
	}
	return out
}
