package wire

import (
	"fmt"

	"github.com/p2pgossip/update/internal/version"
)

func versionIDFromBytes(raw []byte) (version.ID, error) {
	var id version.ID
	if len(raw) != version.IDSize {
		return id, fmt.Errorf("wire: version id has %d bytes, want %d", len(raw), version.IDSize)
	}
	copy(id[:], raw)
	return id, nil
}

// ClockToWire converts a version.Clock to its wire form (a plain map copy).
func ClockToWire(c version.Clock) map[string]uint64 {
	out := make(map[string]uint64, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// ClockFromWire converts a wire clock back to a version.Clock.
func ClockFromWire(m map[string]uint64) version.Clock {
	out := version.NewClock()
	for k, v := range m {
		out[k] = v
	}
	return out
}
