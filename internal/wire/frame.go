package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// This file is the single definition of the streaming frame format the TCP
// transport speaks: a connection carries a sequence of frames, each a 4-byte
// big-endian length followed by exactly one gob-encoded Envelope. The gob
// encoder and decoder persist for the life of the stream, so type
// definitions travel only in the first frame; the length prefix exists to
// bound per-frame allocation against corrupt or hostile peers. Encode and
// Decode remain the standalone (one-shot) codec for tools and tests.

// MaxFrameBytes bounds a single envelope frame (16 MiB) so a corrupt or
// hostile peer cannot force unbounded allocation.
const MaxFrameBytes = 16 << 20

// ErrFrameTooLarge reports an envelope whose encoding exceeds MaxFrameBytes.
// It is deterministic for a given envelope: retrying the same envelope — on
// this or any fresh stream — fails identically, so transports should report
// it rather than redial. Match with errors.Is.
var ErrFrameTooLarge = errors.New("wire: envelope frame exceeds maximum size")

// FrameWriter renders envelopes as length-prefixed frames on one stream.
// It is not safe for concurrent use; callers serialise.
type FrameWriter struct {
	w   io.Writer
	buf bytes.Buffer
	enc *gob.Encoder
}

// NewFrameWriter starts a frame stream on w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	f := &FrameWriter{w: w}
	f.enc = gob.NewEncoder(&f.buf)
	return f
}

// WriteEnvelope writes env as exactly one frame. After any error the stream
// must be abandoned: the persistent encoder's type-dictionary state may be
// ahead of what the receiver has actually been sent.
func (f *FrameWriter) WriteEnvelope(env Envelope) error {
	f.buf.Reset()
	if err := f.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: encode envelope: %w", err)
	}
	if f.buf.Len() > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes > %d", ErrFrameTooLarge, f.buf.Len(), MaxFrameBytes)
	}
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(f.buf.Len()))
	if _, err := f.w.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := f.w.Write(f.buf.Bytes())
	return err
}

// FrameReader decodes the envelope stream produced by a FrameWriter,
// enforcing the per-frame size bound and the one-envelope-per-frame
// alignment. It is not safe for concurrent use.
type FrameReader struct {
	fr  deframer
	dec *gob.Decoder
}

// NewFrameReader starts reading a frame stream from r.
func NewFrameReader(r io.Reader) *FrameReader {
	f := &FrameReader{}
	f.fr.r = r
	f.dec = gob.NewDecoder(&f.fr)
	return f
}

// ReadEnvelope reads the next envelope. Any error — io.EOF included — means
// the stream is unusable and must be dropped: gob decoder state cannot be
// resynchronised mid-stream.
func (f *FrameReader) ReadEnvelope() (Envelope, error) {
	var env Envelope
	if err := f.dec.Decode(&env); err != nil {
		return Envelope{}, err
	}
	if f.fr.remaining != 0 {
		// The writer emits exactly one envelope per frame; leftover bytes
		// mean a confused or hostile peer.
		return Envelope{}, fmt.Errorf("wire: %d stray bytes after envelope", f.fr.remaining)
	}
	return env, nil
}

// deframer adapts the inbound length-prefixed byte stream to the io.Reader
// the persistent gob decoder consumes. It implements io.ByteReader so the
// decoder does not wrap it in its own bufio.Reader — read-ahead across frame
// boundaries would both double-buffer and blind the alignment check in
// ReadEnvelope. Callers wanting buffering pass a bufio.Reader as r.
type deframer struct {
	r         io.Reader
	remaining int
}

func (f *deframer) ReadByte() (byte, error) {
	var b [1]byte
	for {
		n, err := f.Read(b[:])
		if n == 1 {
			return b[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}

func (f *deframer) Read(p []byte) (int, error) {
	if f.remaining == 0 {
		var lenbuf [4]byte
		if _, err := io.ReadFull(f.r, lenbuf[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n == 0 || n > MaxFrameBytes {
			return 0, fmt.Errorf("wire: frame of %d bytes out of bounds", n)
		}
		f.remaining = int(n)
	}
	if len(p) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= n
	return n, err
}
