package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// This file is the streaming side of the binary codec: a connection carries
// a sequence of frames, each a 4-byte big-endian length followed by exactly
// one binary-encoded envelope body (binary.go). The length prefix bounds
// per-frame allocation against corrupt or hostile peers; the format-version
// byte inside the body handles evolution. Frame is the pooled, shareable
// encoded form a push fanout encodes once and hands to every destination's
// writer.

// MaxFrameBytes bounds a single envelope frame (16 MiB) so a corrupt or
// hostile peer cannot force unbounded allocation.
const MaxFrameBytes = 16 << 20

// ErrFrameTooLarge reports an envelope whose encoding exceeds MaxFrameBytes.
// It is deterministic for a given envelope: retrying the same envelope — on
// this or any fresh stream — fails identically, so transports should report
// it rather than redial. Match with errors.Is.
var ErrFrameTooLarge = errors.New("wire: envelope frame exceeds maximum size")

// Frame is one encoded envelope — length prefix included — shareable across
// any number of destinations and goroutines. Frames are reference-counted
// and pooled: NewFrame hands out a frame with one reference; every holder
// that passes it elsewhere Retains it first, and Release returns the buffer
// to the pool when the last reference drops. The bytes are immutable for
// the frame's lifetime.
type Frame struct {
	data []byte
	refs atomic.Int32
}

// framePool recycles Frame headers and their byte buffers. Oversized
// buffers (beyond maxPooledFrame) are dropped on release so one huge
// pull response does not pin megabytes in the pool.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

const maxPooledFrame = 64 << 10

// NewFrame encodes env as one pooled frame with a single reference.
func NewFrame(env *Envelope) (*Frame, error) {
	f := framePool.Get().(*Frame)
	data, err := AppendFrame(f.data[:0], env)
	if err != nil {
		framePool.Put(f)
		return nil, err
	}
	f.data = data
	f.refs.Store(1)
	return f, nil
}

// Bytes returns the encoded frame, length prefix included. The slice is
// valid until the caller's reference is released.
func (f *Frame) Bytes() []byte { return f.data }

// Retain adds a reference, for handing the frame to another holder.
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops one reference, recycling the frame when none remain.
func (f *Frame) Release() {
	if f.refs.Add(-1) != 0 {
		return
	}
	if cap(f.data) > maxPooledFrame {
		f.data = nil
	}
	framePool.Put(f)
}

// FrameWriter renders envelopes as length-prefixed binary frames on one
// stream — the synchronous single-stream shape, used by tests and tools;
// the TCP transport drives per-connection writer goroutines over Frames
// instead. It is not safe for concurrent use; callers serialise.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter starts a frame stream on w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// WriteEnvelope writes env as exactly one frame in one Write call.
func (f *FrameWriter) WriteEnvelope(env *Envelope) error {
	buf, err := AppendFrame(f.buf[:0], env)
	if err != nil {
		return err
	}
	f.buf = buf
	_, err = f.w.Write(f.buf)
	return err
}

// FrameReader decodes the frame stream produced by a FrameWriter or by
// Frame writes, enforcing the per-frame size bound and the
// one-envelope-per-frame alignment. It is not safe for concurrent use.
type FrameReader struct {
	r       io.Reader
	buf     []byte
	scratch decodeScratch
}

// NewFrameReader starts reading a frame stream from r. Callers wanting
// buffering pass a bufio.Reader.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadEnvelope reads the next frame into env (reusing env's container
// storage; see DecodeBody for the reuse contract). Any error — io.EOF
// included — means the stream is unusable and must be dropped: frames
// cannot be resynchronised after a bad length or body.
func (f *FrameReader) ReadEnvelope(env *Envelope) error {
	var lenbuf [4]byte
	if _, err := io.ReadFull(f.r, lenbuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n < 2 || n > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes out of bounds", n)
	}
	buf := f.buf
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if cap(buf) <= maxPooledFrame {
		// Retain modest buffers across frames; an oversized one (up to the
		// 16 MiB frame bound, remote-controlled) is used once and released,
		// so an idle connection cannot pin megabytes it was sent once.
		f.buf = buf
	} else {
		f.buf = nil
	}
	if _, err := io.ReadFull(f.r, buf); err != nil {
		return err
	}
	// The reader owns the decode scratch, so container reuse and the string
	// caches survive interleaved kinds (a stream mixing pushes, acks, and
	// pull traffic — the normal case).
	return decodeBody(buf, env, &f.scratch)
}
