package wire

import (
	"math/rand"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

func sampleUpdate(t *testing.T) store.Update {
	t.Helper()
	st := store.New()
	w, err := store.NewWriter("origin-1", st,
		func() time.Time { return time.Unix(1234, 5678) },
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	w.Put("k", []byte("first"))
	return w.Put("k", []byte("second")) // history length 2
}

func TestUpdateRoundTrip(t *testing.T) {
	u := sampleUpdate(t)
	back := FromStore(u).ToStore()
	if back.ID() != u.ID() {
		t.Fatalf("id mismatch: %s vs %s", back.ID(), u.ID())
	}
	if string(back.Value) != "second" || back.Delete != u.Delete {
		t.Fatalf("payload mismatch: %+v", back)
	}
	if back.Version.Compare(u.Version) != version.Equal {
		t.Fatalf("version mismatch: %s vs %s", back.Version, u.Version)
	}
	if !back.Stamp.Equal(u.Stamp) {
		t.Fatalf("stamp mismatch: %v vs %v", back.Stamp, u.Stamp)
	}
}

// TestFromStoreIsolatesValue pins the ownership contract: the wire form's
// value is independent of the store's immutable log entry (the history may
// alias — it is append-only and never mutated in place).
func TestFromStoreIsolatesValue(t *testing.T) {
	u := sampleUpdate(t)
	wu := FromStore(u)
	wu.Value[0] = 'X'
	if u.Value[0] == 'X' {
		t.Fatal("FromStore aliases the source value")
	}
}

func TestEnvelopeRoundTripAllKinds(t *testing.T) {
	u := FromStore(sampleUpdate(t))
	envs := []Envelope{
		{Kind: KindPush, From: "a", Update: u, RF: []string{"a", "b"}, T: 4},
		{Kind: KindPullReq, From: "b", Clock: version.Clock{"x": 3}},
		{Kind: KindPullResp, From: "c", Updates: []Update{u, u}, KnownPeers: []string{"d"}},
		{Kind: KindAck, From: "d", UpdateRef: store.Ref{Origin: "origin-1", Seq: 2}},
		{Kind: KindQuery, From: "e", QID: -9, Key: "k"},
		{Kind: KindQueryResp, From: "f", QID: -9, Key: "k", Found: true,
			Value: []byte("v"), Version: u.Version, Confident: true},
		{Kind: KindSnapshot, From: "g", Snapshot: []byte("blob"), KnownPeers: []string{"h"}},
	}
	for _, env := range envs {
		// The gob compat codec round-trips.
		raw, err := Encode(env)
		if err != nil {
			t.Fatalf("%s: encode: %v", env.Kind, err)
		}
		back, err := Decode(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", env.Kind, err)
		}
		if back.Kind != env.Kind || back.From != env.From {
			t.Fatalf("%s: header mismatch: %+v", env.Kind, back)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindPush: "push", KindPullReq: "pull-req",
		KindPullResp: "pull-resp", KindAck: "ack",
		KindQuery: "query", KindQueryResp: "query-resp",
		KindSnapshot: "snapshot",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestClockConversions(t *testing.T) {
	c := version.NewClock()
	c["a"] = 3
	c["b"] = 9
	w := ClockToWire(c)
	if len(w) != 2 || w["b"] != 9 {
		t.Fatalf("ClockToWire = %v", w)
	}
	// Mutating the wire form must not touch the original.
	w["a"] = 99
	if c["a"] != 3 {
		t.Fatal("ClockToWire aliases the clock")
	}
	back := ClockFromWire(w)
	if back.Get("a") != 99 || back.Get("b") != 9 {
		t.Fatalf("ClockFromWire = %v", back)
	}
}
