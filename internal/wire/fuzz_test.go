package wire

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// FuzzDecode ensures the gob compat decoder never panics and that every
// successfully decoded envelope re-encodes.
func FuzzDecode(f *testing.F) {
	seedEnvs := []Envelope{
		{Kind: KindPush, From: "a:1", RF: []string{"x", "y"}, T: 3},
		{Kind: KindPullReq, From: "b:2", Clock: version.Clock{"o": 9}},
		{Kind: KindAck, From: "c:3", UpdateRef: store.Ref{Origin: "o", Seq: 9}},
	}
	for _, env := range seedEnvs {
		raw, err := Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte("garbage input"))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // malformed input is rejected, never panics
		}
		if _, err := Encode(env); err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
	})
}

// fuzzSeedBodies returns binary-encoded bodies covering every kind, used to
// seed both binary fuzzers (and mirrored in the committed corpus under
// testdata/fuzz).
func fuzzSeedBodies(tb testing.TB) [][]byte {
	u := Update{Origin: "peer-1", Seq: 7, Key: "k", Value: []byte("v"),
		Version: version.History{{1, 2}}, Stamp: 1_700_000_000_000_000_000}
	envs := []Envelope{
		{Kind: KindPush, From: "peer-0", Update: u, RF: []string{"peer-2", "peer-3"}, T: 2},
		{Kind: KindPullReq, From: "peer-1", Clock: version.Clock{"peer-0": 3}},
		{Kind: KindPullResp, From: "peer-2", Updates: []Update{u}, KnownPeers: []string{"peer-4"}},
		{Kind: KindAck, From: "peer-3", UpdateRef: store.Ref{Origin: "peer-1", Seq: 7}},
		{Kind: KindQuery, From: "peer-4", QID: 42, Key: "k"},
		{Kind: KindQueryResp, From: "peer-5", QID: 42, Key: "k", Found: true,
			Value: []byte("v"), Version: u.Version, Confident: true},
		{Kind: KindSnapshot, From: "peer-6", Snapshot: []byte("snap-bytes"),
			KnownPeers: []string{"peer-7"}},
	}
	bodies := make([][]byte, 0, len(envs))
	for i := range envs {
		body, err := EncodeBinary(&envs[i])
		if err != nil {
			tb.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	return bodies
}

// FuzzBinaryDecode hardens the binary decoder: arbitrary bytes must never
// panic or allocate unboundedly, and anything that decodes must re-encode
// to the identical canonical bytes (the codec has exactly one encoding per
// envelope).
func FuzzBinaryDecode(f *testing.F) {
	for _, body := range fuzzSeedBodies(f) {
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{BinaryVersion})
	f.Add([]byte{BinaryVersion, byte(KindPush), 0})
	f.Add([]byte("garbage input"))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeBinary(data)
		if err != nil {
			return // malformed input is rejected, never panics
		}
		body, err := EncodeBinary(&env)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(body, data) {
			t.Fatalf("re-encoding is not canonical:\n in  %x\n out %x", data, body)
		}
	})
}

// FuzzBinaryEnvelope is the differential fuzzer: a structurally arbitrary
// envelope must survive the binary round trip with full field equality,
// judged by the gob reference codec on both sides.
func FuzzBinaryEnvelope(f *testing.F) {
	f.Add(int8(1), "peer-0", "peer-1", uint64(7), "k", []byte("v"),
		[]byte("0123456789abcdef"), true, int64(1_700_000_000), "peer-2", int64(42), true)
	f.Add(int8(3), "", "", uint64(0), "", []byte{}, []byte{1, 2}, false, int64(-1), "", int64(0), false)
	f.Add(int8(6), "f", "o", uint64(1)<<60, "key", []byte("value"),
		[]byte(""), false, int64(0), "x", int64(-9), true)

	f.Fuzz(func(t *testing.T, kind int8, from, origin string, seq uint64,
		key string, value, vid []byte, deleted bool, stamp int64,
		peer string, qid int64, flag bool) {
		var history version.History
		if len(vid) >= version.IDSize {
			var id version.ID
			copy(id[:], vid)
			history = version.History{id}
		}
		u := Update{Origin: origin, Seq: seq, Key: key, Value: value,
			Delete: deleted, Version: history, Stamp: stamp}
		env := Envelope{Kind: Kind(kind), From: from}
		switch env.Kind {
		case KindPush:
			env.Update = u
			env.RF = []string{peer, origin}
			env.T = int(seq % 1024)
		case KindPullReq:
			env.Clock = version.Clock{origin: seq, peer: uint64(qid)}
		case KindPullResp:
			env.Updates = []Update{u, u}
			env.KnownPeers = []string{peer}
		case KindAck:
			env.UpdateRef = store.Ref{Origin: origin, Seq: seq}
		case KindQuery:
			env.QID = qid
			env.Key = key
		case KindQueryResp:
			env.QID = qid
			env.Key = key
			env.Found = flag
			env.Value = value
			env.Version = history
			env.Confident = deleted
		case KindSnapshot:
			env.Snapshot = value
			env.KnownPeers = []string{peer}
		default:
			// Unencodable kinds must be reported, not panic.
			if _, err := EncodeBinary(&env); err == nil {
				t.Fatalf("kind %d encoded", kind)
			}
			return
		}
		body, err := EncodeBinary(&env)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := DecodeBinary(body)
		if err != nil {
			t.Fatalf("own encoding does not decode: %v", err)
		}
		// The gob reference codec round-trips the same envelope; both codecs
		// must land on the same value.
		raw, err := Encode(env)
		if err != nil {
			t.Fatalf("gob reference encode: %v", err)
		}
		ref, err := Decode(raw)
		if err != nil {
			t.Fatalf("gob reference decode: %v", err)
		}
		want := normalizeEnvelope(ref)
		if got := normalizeEnvelope(back); !reflect.DeepEqual(got, want) {
			t.Fatalf("binary round trip diverges from gob reference:\n got %+v\nwant %+v", got, want)
		}
	})
}
