package wire

import (
	"testing"
)

// FuzzDecode ensures the decoder never panics and that every successfully
// decoded envelope re-encodes.
func FuzzDecode(f *testing.F) {
	seedEnvs := []Envelope{
		{Kind: KindPush, From: "a:1", RF: []string{"x", "y"}, T: 3},
		{Kind: KindPullReq, From: "b:2", Clock: map[string]uint64{"o": 9}},
		{Kind: KindAck, From: "c:3", UpdateID: "o/9"},
	}
	for _, env := range seedEnvs {
		raw, err := Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte("garbage input"))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // malformed input is rejected, never panics
		}
		if _, err := Encode(env); err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
	})
}

// FuzzUpdateToStore ensures version conversion never panics on arbitrary
// byte shapes.
func FuzzUpdateToStore(f *testing.F) {
	f.Add("origin", uint64(1), "key", []byte("value"), []byte("0123456789abcdef"))
	f.Add("", uint64(0), "", []byte{}, []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, origin string, seq uint64, key string, value, vid []byte) {
		u := Update{
			Origin: origin, Seq: seq, Key: key, Value: value,
			Version: [][]byte{vid},
		}
		su, err := u.ToStore()
		if err != nil {
			return
		}
		if len(su.Version) != 1 {
			t.Fatal("version length changed")
		}
	})
}
