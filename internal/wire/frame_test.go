package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// TestFrameStreamRoundTrip pins the streaming frame format: several
// envelopes on one stream, each exactly one length-prefixed binary frame,
// decoded back in order into a reused envelope.
func TestFrameStreamRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	fw := NewFrameWriter(&stream)
	envs := []Envelope{
		{Kind: KindPush, From: "a:1", Update: Update{Origin: "a:1", Seq: 1, Key: "k", Value: []byte("v")}, RF: []string{"b:2"}, T: 1},
		{Kind: KindAck, From: "b:2", UpdateRef: store.Ref{Origin: "a:1", Seq: 1}},
		{Kind: KindPullReq, From: "c:3", Clock: version.Clock{"a:1": 1}},
	}
	for i := range envs {
		before := stream.Len()
		if err := fw.WriteEnvelope(&envs[i]); err != nil {
			t.Fatal(err)
		}
		if got, want := stream.Len()-before, EncodedSize(&envs[i]); got != want {
			t.Fatalf("frame %d wrote %dB, EncodedSize says %dB", i, got, want)
		}
	}

	fr := NewFrameReader(&stream)
	var got Envelope
	for i, want := range envs {
		if err := fr.ReadEnvelope(&got); err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.From != want.From {
			t.Fatalf("envelope %d = %+v, want %+v", i, got, want)
		}
	}
	if err := fr.ReadEnvelope(&got); err == nil {
		t.Fatal("read past end of stream succeeded")
	}
}

func TestFrameReaderRejectsOversizeFrame(t *testing.T) {
	var stream bytes.Buffer
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], MaxFrameBytes+1)
	stream.Write(lenbuf[:])
	stream.WriteString("x")
	var env Envelope
	if err := NewFrameReader(&stream).ReadEnvelope(&env); err == nil ||
		!strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("oversize frame err = %v", err)
	}
}

func TestFrameReaderRejectsStrayBytes(t *testing.T) {
	// One frame carrying an envelope plus trailing garbage: the reader must
	// refuse to continue the stream.
	body, err := EncodeBinary(&Envelope{Kind: KindAck, From: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(body)+3))
	stream.Write(lenbuf[:])
	stream.Write(body)
	stream.WriteString("pad")
	var env Envelope
	if err := NewFrameReader(&stream).ReadEnvelope(&env); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Fatalf("stray-byte err = %v", err)
	}
}

// TestFrameReaderRejectsTruncatedBody: a frame whose length prefix promises
// more bytes than the stream delivers must fail cleanly, not block or
// misparse.
func TestFrameReaderRejectsTruncatedBody(t *testing.T) {
	body, err := EncodeBinary(&Envelope{Kind: KindQuery, From: "a:1", QID: 7, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(body)))
	stream.Write(lenbuf[:])
	stream.Write(body[:len(body)-2]) // connection died mid-frame
	var env Envelope
	if err := NewFrameReader(&stream).ReadEnvelope(&env); err == nil {
		t.Fatal("truncated body decoded")
	}
}

// TestFrameRefcount exercises the shared-frame lifecycle: Retain/Release
// pairs recycle the frame only once the last holder lets go.
func TestFrameRefcount(t *testing.T) {
	env := Envelope{Kind: KindAck, From: "a:1", UpdateRef: store.Ref{Origin: "o", Seq: 3}}
	f, err := NewFrame(&env)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), f.Bytes()...)
	f.Retain()
	f.Release()
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatal("frame bytes changed while a reference was held")
	}
	// The frame decodes to the envelope we encoded.
	got, err := DecodeBinary(f.Bytes()[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != env.Kind || got.UpdateRef != env.UpdateRef {
		t.Fatalf("frame decoded to %+v", got)
	}
	f.Release()
}
