package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// TestFrameStreamRoundTrip pins the streaming frame format: several
// envelopes on one stream share the writer's and reader's persistent gob
// state, and later frames are smaller than the first (the type dictionary
// travels once).
func TestFrameStreamRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	fw := NewFrameWriter(&stream)
	envs := []Envelope{
		{Kind: KindPush, From: "a:1", Update: Update{Origin: "a:1", Seq: 1, Key: "k", Value: []byte("v")}, RF: []string{"b:2"}, T: 1},
		{Kind: KindAck, From: "b:2", UpdateID: "a:1/1"},
		{Kind: KindPullReq, From: "c:3", Clock: map[string]uint64{"a:1": 1}},
	}
	var sizes []int
	for _, env := range envs {
		before := stream.Len()
		if err := fw.WriteEnvelope(env); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, stream.Len()-before)
	}
	if sizes[1] >= sizes[0] {
		t.Fatalf("second frame (%dB) not smaller than first (%dB): type dictionary re-sent?",
			sizes[1], sizes[0])
	}

	fr := NewFrameReader(&stream)
	for i, want := range envs {
		got, err := fr.ReadEnvelope()
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.From != want.From {
			t.Fatalf("envelope %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := fr.ReadEnvelope(); err == nil {
		t.Fatal("read past end of stream succeeded")
	}
}

func TestFrameReaderRejectsOversizeFrame(t *testing.T) {
	var stream bytes.Buffer
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], MaxFrameBytes+1)
	stream.Write(lenbuf[:])
	stream.WriteString("x")
	if _, err := NewFrameReader(&stream).ReadEnvelope(); err == nil ||
		!strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("oversize frame err = %v", err)
	}
}

func TestFrameReaderRejectsStrayBytes(t *testing.T) {
	// One frame carrying an envelope plus trailing garbage: the reader must
	// refuse to continue the stream.
	raw, err := Encode(Envelope{Kind: KindAck, From: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(raw)+3))
	stream.Write(lenbuf[:])
	stream.Write(raw)
	stream.WriteString("pad")
	if _, err := NewFrameReader(&stream).ReadEnvelope(); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Fatalf("stray-byte err = %v", err)
	}
}
