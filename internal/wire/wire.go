// Package wire defines the transport-independent message format of the live
// (asynchronous) runtime and its codecs.
//
// The paper keeps the propagation mechanism orthogonal to the physical
// network (§1); this package is the concrete boundary: the same envelopes
// travel over in-memory channels in tests and over TCP in deployments.
//
// Two codecs exist. The hand-rolled binary codec (binary.go) is the wire
// format: length-prefixed frames, varint integers, clocks and update
// references encoded directly from their protocol types, pooled buffers, so
// a push fanout encodes its envelope once and reuses the bytes for every
// destination. The gob codec (Encode/Decode below) is the compat shim and
// differential-testing reference: it serialises the same Envelope through
// the standard library, and the fuzzers hold the binary codec to it.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// Kind discriminates envelope payloads.
type Kind int

// Envelope kinds.
const (
	// KindPush carries an update push.
	KindPush Kind = iota + 1
	// KindPullReq asks for missing updates.
	KindPullReq
	// KindPullResp ships missing updates.
	KindPullResp
	// KindAck acknowledges an update receipt.
	KindAck
	// KindQuery asks a replica for its current revision of a key (§4.4).
	KindQuery
	// KindQueryResp answers a query.
	KindQueryResp
	// KindSnapshot answers a pull request whose gap is compacted away (or
	// exceeds the snapshot threshold) with the responder's entire resident
	// state in one frame.
	KindSnapshot

	// kindMax bounds the valid kind range for the binary decoder.
	kindMax = KindSnapshot
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPush:
		return "push"
	case KindPullReq:
		return "pull-req"
	case KindPullResp:
		return "pull-resp"
	case KindAck:
		return "ack"
	case KindQuery:
		return "query"
	case KindQueryResp:
		return "query-resp"
	case KindSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Update is the wire form of store.Update. It differs only in the stamp
// representation (UnixNano rather than time.Time, so codecs never touch
// location data); version histories travel as their protocol type and are
// validated structurally by the binary decoder (16-byte identifiers).
type Update struct {
	Origin  string
	Seq     uint64
	Key     string
	Value   []byte
	Delete  bool
	Version version.History
	Stamp   int64 // UnixNano
}

// FromStore converts a store.Update to its wire form. The version history is
// aliased, not copied: histories are append-only (version.History.Append is
// copy-on-write), so a shared backing array stays valid. The value is copied
// — wire values may outlive the envelope on transport queues, and the
// store's log entries must stay immutable.
func FromStore(u store.Update) Update {
	return Update{
		Origin:  u.Origin,
		Seq:     u.Seq,
		Key:     u.Key,
		Value:   append([]byte(nil), u.Value...),
		Delete:  u.Delete,
		Version: u.Version,
		Stamp:   u.Stamp.UnixNano(),
	}
}

// ToStore converts back to a store.Update. The value and version backing is
// aliased: the binary decoder allocates both freshly per update, so the
// store adopting them shares memory with nothing that is reused.
func (u Update) ToStore() store.Update {
	return store.Update{
		Origin:  u.Origin,
		Seq:     u.Seq,
		Key:     u.Key,
		Value:   u.Value,
		Delete:  u.Delete,
		Version: u.Version,
		Stamp:   time.Unix(0, u.Stamp),
	}
}

// Envelope is one transport message.
type Envelope struct {
	// Kind selects which payload fields are meaningful.
	Kind Kind
	// From is the sender's address.
	From string
	// Update is set for KindPush.
	Update Update
	// RF is the partial flooding list (addresses) for KindPush.
	RF []string
	// T is the push round counter for KindPush.
	T int
	// Clock is the requester's vector clock for KindPullReq, carried
	// directly — the hot path pays no map copy (the old ClockToWire /
	// ClockFromWire round trip survives only as the compat shim in
	// convert.go).
	Clock version.Clock
	// Updates are the missing updates for KindPullResp.
	Updates []Update
	// KnownPeers is a membership sample piggybacked on KindPullResp and
	// KindSnapshot — the name-dropper effect applied to the pull phase, which
	// bootstraps the views of freshly joined replicas.
	KnownPeers []string
	// Snapshot is the responder's serialised resident state for KindSnapshot
	// (the shared store snapshot encoding, opaque to the wire layer).
	Snapshot []byte
	// UpdateRef identifies the acknowledged update for KindAck. The
	// comparable (origin, seq) form travels as-is; no "origin/seq" string is
	// formatted or parsed on the ack path.
	UpdateRef store.Ref
	// QID correlates KindQuery/KindQueryResp pairs.
	QID int64
	// Key is the queried key for KindQuery/KindQueryResp.
	Key string
	// Found reports whether the responder holds a live revision
	// (KindQueryResp).
	Found bool
	// Value and Version carry the responder's winning revision
	// (KindQueryResp).
	Value []byte
	// Version is the revision's history.
	Version version.History
	// Confident is false when the responder suspects it is stale.
	Confident bool
}

// Encode serialises the envelope with gob — the compat/reference codec. The
// transports speak the binary codec; this survives for tools, differential
// tests, and the fuzzers' oracle.
func Encode(env Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserialises a gob envelope produced by Encode.
func Decode(raw []byte) (Envelope, error) {
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return Envelope{}, fmt.Errorf("wire: decode: %w", err)
	}
	return env, nil
}
