// Package wire defines the transport-independent message format of the live
// (asynchronous) runtime, plus gob-based encoding helpers for the TCP
// transport.
//
// The paper keeps the propagation mechanism orthogonal to the physical
// network (§1); this package is the concrete boundary: the same envelopes
// travel over in-memory channels in tests and over TCP in deployments.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/p2pgossip/update/internal/store"
)

// Kind discriminates envelope payloads.
type Kind int

// Envelope kinds.
const (
	// KindPush carries an update push.
	KindPush Kind = iota + 1
	// KindPullReq asks for missing updates.
	KindPullReq
	// KindPullResp ships missing updates.
	KindPullResp
	// KindAck acknowledges an update receipt.
	KindAck
	// KindQuery asks a replica for its current revision of a key (§4.4).
	KindQuery
	// KindQueryResp answers a query.
	KindQueryResp
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPush:
		return "push"
	case KindPullReq:
		return "pull-req"
	case KindPullResp:
		return "pull-resp"
	case KindAck:
		return "ack"
	case KindQuery:
		return "query"
	case KindQueryResp:
		return "query-resp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Update is the wire form of store.Update. Version histories travel as raw
// byte slices to keep gob encoding simple and stable.
type Update struct {
	Origin  string
	Seq     uint64
	Key     string
	Value   []byte
	Delete  bool
	Version [][]byte
	Stamp   int64 // UnixNano
}

// FromStore converts a store.Update to its wire form.
func FromStore(u store.Update) Update {
	version := make([][]byte, len(u.Version))
	for i, id := range u.Version {
		v := id // copy array
		version[i] = v[:]
	}
	return Update{
		Origin:  u.Origin,
		Seq:     u.Seq,
		Key:     u.Key,
		Value:   append([]byte(nil), u.Value...),
		Delete:  u.Delete,
		Version: version,
		Stamp:   u.Stamp.UnixNano(),
	}
}

// ToStore converts back to a store.Update. Malformed version entries are an
// error: silently truncating them would corrupt causality.
func (u Update) ToStore() (store.Update, error) {
	out := store.Update{
		Origin: u.Origin,
		Seq:    u.Seq,
		Key:    u.Key,
		Value:  append([]byte(nil), u.Value...),
		Delete: u.Delete,
		Stamp:  time.Unix(0, u.Stamp),
	}
	for _, raw := range u.Version {
		id, err := versionIDFromBytes(raw)
		if err != nil {
			return store.Update{}, err
		}
		out.Version = append(out.Version, id)
	}
	return out, nil
}

// Envelope is one transport message.
type Envelope struct {
	// Kind selects which payload fields are meaningful.
	Kind Kind
	// From is the sender's address.
	From string
	// Update is set for KindPush.
	Update Update
	// RF is the partial flooding list (addresses) for KindPush.
	RF []string
	// T is the push round counter for KindPush.
	T int
	// Clock is the requester's vector clock for KindPullReq.
	Clock map[string]uint64
	// Updates are the missing updates for KindPullResp.
	Updates []Update
	// KnownPeers is a membership sample piggybacked on KindPullResp — the
	// name-dropper effect applied to the pull phase, which bootstraps the
	// views of freshly joined replicas.
	KnownPeers []string
	// UpdateID identifies the acknowledged update for KindAck.
	UpdateID string
	// QID correlates KindQuery/KindQueryResp pairs.
	QID int64
	// Key is the queried key for KindQuery/KindQueryResp.
	Key string
	// Found reports whether the responder holds a live revision
	// (KindQueryResp).
	Found bool
	// Value and Version carry the responder's winning revision
	// (KindQueryResp).
	Value []byte
	// Version is the revision's history, wire-encoded like Update.Version.
	Version [][]byte
	// Confident is false when the responder suspects it is stale.
	Confident bool
}

// Encode serialises the envelope with gob.
func Encode(env Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserialises an envelope.
func Decode(raw []byte) (Envelope, error) {
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return Envelope{}, fmt.Errorf("wire: decode: %w", err)
	}
	return env, nil
}
