package wire

import (
	"fmt"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// This file exports the store-form update and clock codecs for callers that
// persist protocol state rather than ship it between peers — concretely the
// write-ahead log in internal/wal. The encodings are byte-identical to the
// ones updates and clocks use inside envelopes (binary.go), so a WAL record
// body is the same bytes the update travelled as, minus the envelope
// framing. Unlike the envelope codecs these operate on store.Update
// directly and do not copy the value: a WAL append borrows the bytes only
// for the duration of the write.

// AppendStoreUpdate appends the canonical binary encoding of u to dst and
// returns the extended slice. The stamp is encoded as UnixNano, matching
// the wire form of updates inside envelopes.
func AppendStoreUpdate(dst []byte, u store.Update) []byte {
	dst = appendString(dst, u.Origin)
	dst = appendUvarint(dst, u.Seq)
	dst = appendString(dst, u.Key)
	dst = appendBlob(dst, u.Value)
	var flags byte
	if u.Delete {
		flags |= flagDelete
	}
	dst = append(dst, flags)
	dst = appendHistory(dst, u.Version)
	return appendI64(dst, u.Stamp.UnixNano())
}

// DecodeStoreUpdate decodes one update produced by AppendStoreUpdate. The
// whole buffer must be consumed: stray trailing bytes are an error, so a
// corrupted record cannot half-parse silently.
func DecodeStoreUpdate(data []byte) (store.Update, error) {
	r := binReader{data: data}
	var u Update
	if err := r.update(&u); err != nil {
		return store.Update{}, err
	}
	if r.remaining() != 0 {
		return store.Update{}, fmt.Errorf("wire: %d stray bytes after update", r.remaining())
	}
	return u.ToStore(), nil
}

// AppendClock appends the canonical binary encoding of c to dst and returns
// the extended slice. The encoding is the one clocks use inside envelopes:
// origins sorted, counts as uvarints.
func AppendClock(dst []byte, c version.Clock) []byte {
	return appendClock(dst, c)
}

// DecodeClock decodes one clock produced by AppendClock. Like
// DecodeStoreUpdate it rejects stray trailing bytes.
func DecodeClock(data []byte) (version.Clock, error) {
	r := binReader{data: data}
	c, err := r.clock(nil)
	if err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d stray bytes after clock", r.remaining())
	}
	return c, nil
}
