package wire

// Benchmarks for the envelope codec — the per-message CPU cost under any
// transport. BenchmarkEnvelopeEncode/Decode measure the binary codec the
// transports speak (buffer and envelope reuse, as the TCP paths run it);
// the Gob variants measure the compat/reference codec for comparison.

import (
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
)

func benchEnvelope() Envelope {
	u := store.Update{
		Origin: "peer-0", Seq: 42, Key: "key", Value: []byte("value-payload"),
		Stamp: time.Unix(1_700_000_000, 0),
	}
	return Envelope{
		Kind:   KindPush,
		From:   "127.0.0.1:9000",
		Update: FromStore(u),
		RF:     []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"},
		T:      2,
	}
}

func BenchmarkEnvelopeEncode(b *testing.B) {
	env := benchEnvelope()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], &env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeDecode(b *testing.B) {
	env := benchEnvelope()
	body, err := EncodeBinary(&env)
	if err != nil {
		b.Fatal(err)
	}
	var out Envelope
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeBody(body, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeEncodeGob(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeDecodeGob(b *testing.B) {
	raw, err := Encode(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
