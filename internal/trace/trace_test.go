package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndQuery(t *testing.T) {
	r := New(0)
	r.Record(Event{Round: 0, Kind: KindSend, From: 1, To: 2, Note: "push"})
	r.Record(Event{Round: 1, Kind: KindDeliver, From: 1, To: 2})
	r.Record(Event{Round: 1, Kind: KindOffline, From: 1, To: 3})
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if r.CountKind(KindSend) != 1 || r.CountKind(KindDeliver) != 1 {
		t.Fatal("CountKind wrong")
	}
	of2 := r.OfPeer(2)
	if len(of2) != 2 {
		t.Fatalf("OfPeer(2) = %d events", len(of2))
	}
	if len(r.OfPeer(9)) != 0 {
		t.Fatal("OfPeer(9) non-empty")
	}
	// Events() returns a copy.
	events[0].Round = 99
	if r.Events()[0].Round == 99 {
		t.Fatal("Events exposed internal slice")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindSend}) // must not panic
	r.SetFilter(func(Event) bool { return true })
	if r.Events() != nil || r.CountKind(KindSend) != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder returned data")
	}
	if r.OfPeer(1) != nil {
		t.Fatal("nil OfPeer returned data")
	}
}

func TestCapDropsOldest(t *testing.T) {
	r := New(10)
	for i := 0; i < 25; i++ {
		r.Record(Event{Round: i, Kind: KindSend})
	}
	events := r.Events()
	if len(events) > 10 {
		t.Fatalf("cap exceeded: %d", len(events))
	}
	if r.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
	// The newest event must survive.
	last := events[len(events)-1]
	if last.Round != 24 {
		t.Fatalf("latest event lost, tail = %d", last.Round)
	}
}

func TestFilter(t *testing.T) {
	r := New(0)
	r.SetFilter(func(e Event) bool { return e.Kind == KindDrop })
	r.Record(Event{Kind: KindSend})
	r.Record(Event{Kind: KindDrop})
	if len(r.Events()) != 1 || r.Events()[0].Kind != KindDrop {
		t.Fatalf("filter not applied: %v", r.Events())
	}
}

func TestRender(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Round: i, Kind: KindDeliver, From: 0, To: 1, Note: "x"})
	}
	out := r.Render()
	if !strings.Contains(out, "deliver") || !strings.Contains(out, "dropped by cap") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindSend: "send", KindDeliver: "deliver", KindOffline: "to-offline",
		KindDrop: "drop", KindWentOnline: "online", KindWentOffline: "offline",
		KindCustom: "custom",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
	if Kind(77).String() != "Kind(77)" {
		t.Fatal("unknown kind string")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: KindSend})
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	if got := len(r.Events()) + r.Dropped(); got != 4000 {
		t.Fatalf("recorded+dropped = %d, want 4000", got)
	}
}
