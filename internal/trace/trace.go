// Package trace records structured simulation events: message sends and
// deliveries, drops, and availability transitions. A Recorder plugs into
// the simnet engine for protocol debugging and for the event-level
// assertions in tests ("was this message dropped or delivered to an offline
// peer?") that aggregate counters cannot answer.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindSend is a message leaving a peer.
	KindSend Kind = iota + 1
	// KindDeliver is a message arriving at an online peer.
	KindDeliver
	// KindOffline is a delivery attempt to an offline peer.
	KindOffline
	// KindDrop is a message lost to injected loss.
	KindDrop
	// KindWentOnline is a peer coming online.
	KindWentOnline
	// KindWentOffline is a peer going offline.
	KindWentOffline
	// KindCustom is protocol-defined.
	KindCustom
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindOffline:
		return "to-offline"
	case KindDrop:
		return "drop"
	case KindWentOnline:
		return "online"
	case KindWentOffline:
		return "offline"
	case KindCustom:
		return "custom"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	// Round is the simulation round.
	Round int
	// Kind classifies the event.
	Kind Kind
	// From and To are peer indices (−1 when not applicable).
	From, To int
	// Note carries protocol-specific detail (e.g. the payload type).
	Note string
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("r%03d %-10s %3d→%3d %s", e.Round, e.Kind, e.From, e.To, e.Note)
}

// Recorder accumulates events up to a cap (oldest events are dropped once
// the cap is hit, so long simulations keep the tail). It is safe for
// concurrent use. A nil *Recorder is valid and records nothing, so callers
// never need nil checks.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	max     int
	dropped int
	filter  func(Event) bool
}

// New returns a Recorder keeping at most max events (≤0 means 4096).
func New(max int) *Recorder {
	if max <= 0 {
		max = 4096
	}
	return &Recorder{max: max}
}

// SetFilter installs a predicate; events it rejects are not recorded.
func (r *Recorder) SetFilter(f func(Event) bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.filter = f
}

// Record appends an event, honouring the filter and the cap.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filter != nil && !r.filter(e) {
		return
	}
	if len(r.events) >= r.max {
		// Drop the oldest half in one move to amortise the copy.
		half := len(r.events) / 2
		r.dropped += half
		r.events = append(r.events[:0], r.events[half:]...)
	}
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Dropped returns the number of events discarded by the cap.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// CountKind returns the number of recorded events of kind k.
func (r *Recorder) CountKind(k Kind) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// OfPeer returns a copy of every event involving the given peer.
func (r *Recorder) OfPeer(id int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.From == id || e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// Render prints every recorded event, one per line.
func (r *Recorder) Render() string {
	events := r.Events()
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped by cap)\n", d)
	}
	return b.String()
}
