package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/serve"
)

// daemonBin is the pushpulld binary, compiled once for the whole package.
var daemonBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "pushpulld-bin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin, err := BuildDaemon(dir)
	if err != nil {
		os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	daemonBin = bin
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// testLogWriter adapts t.Logf so daemon stderr lands in the test log.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	if msg := strings.TrimSpace(string(p)); msg != "" {
		w.t.Logf("daemon: %s", msg)
	}
	return len(p), nil
}

// soakTraffic drives numbered PUTs through the given clients round-robin,
// recording every assigned ref and the expected final value per key.
type soakTraffic struct {
	t      *testing.T
	nextID int
	refs   []serve.PutResult
	want   map[string]string
}

func newSoakTraffic(t *testing.T) *soakTraffic {
	return &soakTraffic{t: t, want: make(map[string]string)}
}

// write puts n fresh keys through the clients (each key written exactly
// once, so the final expected value is unambiguous).
func (tr *soakTraffic) write(clients []*Client, n int) {
	tr.t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("soak/k%04d", tr.nextID)
		val := fmt.Sprintf("v%d", tr.nextID)
		tr.nextID++
		ref, err := clients[i%len(clients)].Put(key, []byte(val))
		if err != nil {
			tr.t.Fatalf("put %s: %v", key, err)
		}
		tr.refs = append(tr.refs, ref)
		tr.want[key] = val
	}
}

// TestClusterSoak is the multi-process chaos soak: N real pushpulld
// processes on loopback, sustained HTTP traffic, SIGKILL + restart-from-
// scraped-snapshot on the same addresses, peer-list churn, then the
// scraped-state invariants. Short mode (CI) runs 3 processes and one kill
// cycle in ~30s; full mode runs 5 processes, two kill cycles, and a
// cold member joining mid-run.
func TestClusterSoak(t *testing.T) {
	procs, killCycles, keysPerPhase := 5, 2, 40
	if testing.Short() {
		procs, killCycles, keysPerPhase = 3, 1, 15
	}
	tmp := t.TempDir()
	base := ProcConfig{
		Seed:         1,
		PullInterval: 100 * time.Millisecond,
		Fanout:       4,
		PF:           1,
		Acks:         true,
		SnapshotPath: filepath.Join(tmp, "member.snap"),
	}
	c, err := Launch(daemonBin, procs, base, testLogWriter{t})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	tr := newSoakTraffic(t)

	// Phase 1: sustained traffic through every member.
	tr.write(c.Clients, keysPerPhase)

	// Phase 2: kill cycles. Writes to the victim stop BEFORE its snapshot
	// is scraped — updates originated between scrape and kill would reuse
	// sequence numbers after restart.
	for cycle := 0; cycle < killCycles; cycle++ {
		victim := 1 + cycle%(procs-1)
		survivors := make([]*Client, 0, procs-1)
		for i, cl := range c.Clients {
			if i != victim {
				survivors = append(survivors, cl)
			}
		}
		snapPath := filepath.Join(tmp, fmt.Sprintf("victim-%d.snap", cycle))
		if err := c.KillAndRestart(victim, snapPath); err != nil {
			t.Fatalf("kill cycle %d: %v", cycle, err)
		}
		// Traffic keeps flowing while the victim catches back up.
		tr.write(survivors, keysPerPhase)
		if !c.Clients[victim].Ready() {
			t.Fatalf("kill cycle %d: restarted member %d not ready", cycle, victim)
		}
	}

	// Phase 3 (full mode): peer churn — a cold member joins mid-run and
	// must converge from nothing through pull.
	if !testing.Short() {
		cfg := base
		cfg.Seed = base.Seed + int64(procs)
		cfg.SnapshotPath = filepath.Join(tmp, "joiner.snap")
		cfg.Peers = c.GossipAddrs()
		p, err := StartProc(daemonBin, cfg, testLogWriter{t})
		if err != nil {
			t.Fatalf("join member: %v", err)
		}
		c.Procs = append(c.Procs, p)
		c.Clients = append(c.Clients, NewClient(p.HTTPAddr))
	}

	// Peer-list churn: re-teach every member the full current view (the
	// restarts and the joiner may have shuffled who knows whom).
	all := c.GossipAddrs()
	for i, cl := range c.Clients {
		if _, err := cl.AddPeers(all); err != nil {
			t.Fatalf("rewire member %d: %v", i, err)
		}
	}

	// Phase 4: final traffic wave through everyone, then quiesce.
	tr.write(c.Clients, keysPerPhase)
	states, err := c.WaitConverged(60 * time.Second)
	if werr := writeSoakArtifact(states, tr.refs); werr != nil {
		t.Errorf("soak artifact: %v", werr)
	}
	if err != nil {
		t.Fatal(err)
	}

	// The scraped-state invariants: convergence, eventual delivery of
	// every published ref, and exactly-once application per process.
	if err := CheckAll(states, tr.refs); err != nil {
		t.Fatal(err)
	}

	// Client-visible spot check: every member serves every key's final
	// value through the edge.
	for key, want := range tr.want {
		for i, cl := range c.Clients {
			got, ok, err := cl.Get(key)
			if err != nil {
				t.Fatalf("member %d get %s: %v", i, key, err)
			}
			if !ok || string(got) != want {
				t.Fatalf("member %d: %s = %q (ok=%v), want %q", i, key, got, ok, want)
			}
		}
	}
	t.Logf("soak: %d members, %d kill cycles, %d updates, digest %.12s…",
		len(c.Clients), killCycles, states[0].UpdateCount, states[0].Digest)
}

// writeSoakArtifact dumps the final scraped states (and published refs) as
// JSON to $SOAK_OUT for CI artifact upload. No-op when the env var is
// unset.
func writeSoakArtifact(states []State, refs []serve.PutResult) error {
	path := os.Getenv("SOAK_OUT")
	if path == "" {
		return nil
	}
	doc := struct {
		States []State           `json:"states"`
		Refs   []serve.PutResult `json:"refs"`
	}{States: states, Refs: refs}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// TestKillAndRestartPreservesIdentity pins the fault injector itself: the
// restarted process must come back on the SAME addresses with the
// snapshot's updates restored.
func TestKillAndRestartPreservesIdentity(t *testing.T) {
	tmp := t.TempDir()
	c, err := Launch(daemonBin, 2, ProcConfig{
		Seed:         7,
		PullInterval: 100 * time.Millisecond,
		PF:           1,
	}, testLogWriter{t})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	if _, err := c.Clients[1].Put("id/key", []byte("held")); err != nil {
		t.Fatal(err)
	}
	httpAddr, gossipAddr := c.Procs[1].HTTPAddr, c.Procs[1].GossipAddr
	if err := c.KillAndRestart(1, filepath.Join(tmp, "id.snap")); err != nil {
		t.Fatal(err)
	}
	if c.Procs[1].HTTPAddr != httpAddr || c.Procs[1].GossipAddr != gossipAddr {
		t.Fatalf("restart moved addresses: http %s -> %s, gossip %s -> %s",
			httpAddr, c.Procs[1].HTTPAddr, gossipAddr, c.Procs[1].GossipAddr)
	}
	st, err := c.Clients[1].State()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 || st.UpdateCount != 1 {
		t.Fatalf("restored state = %+v", st)
	}
	got, ok, err := c.Clients[1].Get("id/key")
	if err != nil || !ok || string(got) != "held" {
		t.Fatalf("restored get = %q ok=%v err=%v", got, ok, err)
	}
}

func TestParseReadyLine(t *testing.T) {
	h, g, err := parseReadyLine("pushpulld ready http=127.0.0.1:8080 gossip=127.0.0.1:7946\n")
	if err != nil || h != "127.0.0.1:8080" || g != "127.0.0.1:7946" {
		t.Fatalf("parseReadyLine = %q %q %v", h, g, err)
	}
	if _, _, err := parseReadyLine("something else"); err == nil {
		t.Fatal("want error for malformed line")
	}
}
