package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/p2pgossip/update/internal/serve"
)

// State is the per-member scrape surface; re-exported so harness callers
// need not import internal/serve.
type State = serve.State

// Client speaks the internal/serve HTTP edge of one daemon.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient wraps an HTTP address ("127.0.0.1:8080") in a client.
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 10 * time.Second},
	}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

func (c *Client) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

func (c *Client) doJSON(method, path string, body []byte, into any) error {
	code, out, err := c.do(method, path, body)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("cluster: %s %s: %d %s", method, path, code, bytes.TrimSpace(out))
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(out, into)
}

// Put writes key=value through the edge and returns the assigned ref.
func (c *Client) Put(key string, value []byte) (serve.PutResult, error) {
	var res serve.PutResult
	err := c.doJSON(http.MethodPut, "/v1/kv/"+key, value, &res)
	return res, err
}

// Delete tombstones key.
func (c *Client) Delete(key string) (serve.PutResult, error) {
	var res serve.PutResult
	err := c.doJSON(http.MethodDelete, "/v1/kv/"+key, nil, &res)
	return res, err
}

// Get reads key; ok is false when the key has no live revision.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	code, out, err := c.do(http.MethodGet, "/v1/kv/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	switch code {
	case http.StatusOK:
		return out, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cluster: GET /v1/kv/%s: %d %s", key, code, bytes.TrimSpace(out))
	}
}

// Query runs a §4.4 k-replica freshest-version query through this member.
func (c *Client) Query(key string, k int) (serve.QueryResponse, error) {
	var res serve.QueryResponse
	body, err := json.Marshal(serve.QueryRequest{Key: key, K: k})
	if err != nil {
		return res, err
	}
	err = c.doJSON(http.MethodPost, "/v1/query", body, &res)
	return res, err
}

// State scrapes /v1/state.
func (c *Client) State() (State, error) {
	var st State
	err := c.doJSON(http.MethodGet, "/v1/state", nil, &st)
	return st, err
}

// Snapshot downloads the member's binary snapshot.
func (c *Client) Snapshot() ([]byte, error) {
	code, out, err := c.do(http.MethodGet, "/v1/snapshot", nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("cluster: GET /v1/snapshot: %d", code)
	}
	return out, nil
}

// AddPeers teaches the member additional gossip addresses.
func (c *Client) AddPeers(peers []string) (serve.PeersResponse, error) {
	var res serve.PeersResponse
	body, err := json.Marshal(serve.PeersRequest{Peers: peers})
	if err != nil {
		return res, err
	}
	err = c.doJSON(http.MethodPost, "/v1/peers", body, &res)
	return res, err
}

// Pull triggers one anti-entropy batch now.
func (c *Client) Pull() (bool, error) {
	var res map[string]bool
	if err := c.doJSON(http.MethodPost, "/v1/pull", nil, &res); err != nil {
		return false, err
	}
	return res["pulled"], nil
}

// Ready reports whether /readyz returns 200.
func (c *Client) Ready() bool {
	code, _, err := c.do(http.MethodGet, "/readyz", nil)
	return err == nil && code == http.StatusOK
}
