package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/serve"
)

// burstWriter hammers one member with sequential PUTs from a goroutine
// until a write fails (the member died mid-burst). Every ref it returns was
// acknowledged over HTTP — and with a WAL configured, an acknowledgement
// means the update is on disk before the response was sent.
type burstWriter struct {
	mu    sync.Mutex
	acked []serve.PutResult
	want  map[string]string
	done  chan struct{}
}

func startBurst(cl *Client, prefix string) *burstWriter {
	b := &burstWriter{want: make(map[string]string), done: make(chan struct{})}
	go func() {
		defer close(b.done)
		for i := 0; ; i++ {
			key := fmt.Sprintf("%s/k%05d", prefix, i)
			val := fmt.Sprintf("v%d", i)
			ref, err := cl.Put(key, []byte(val))
			if err != nil {
				return // the kill landed; everything acked so far is recorded
			}
			b.mu.Lock()
			b.acked = append(b.acked, ref)
			b.want[key] = val
			b.mu.Unlock()
		}
	}()
	return b
}

// wait blocks until the burst goroutine has observed the kill and returns
// the acknowledged refs.
func (b *burstWriter) wait(t *testing.T) []serve.PutResult {
	t.Helper()
	select {
	case <-b.done:
	case <-time.After(10 * time.Second):
		t.Fatal("burst writer never observed the kill")
	}
	return b.acked
}

// tornTail appends garbage to the newest WAL segment in dir, simulating a
// write torn by the crash. Recovery must drop exactly the garbage and keep
// every complete record.
func tornTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs)
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 137)
	for i := range garbage {
		garbage[i] = byte(i*31 + 7)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterSoakDurable is the durability chaos soak: every member runs
// with a write-ahead log, a victim is SIGKILLed while a write burst is in
// flight against it, its WAL tail is deliberately torn, and it must come
// back from disk alone — no snapshot scrape — holding every write it ever
// acknowledged. Traffic keeps flowing through the survivors throughout,
// and the run ends with full convergence plus the exactly-once invariants.
func TestClusterSoakDurable(t *testing.T) {
	procs, killCycles, keysPerPhase := 4, 2, 30
	if testing.Short() {
		procs, killCycles, keysPerPhase = 3, 1, 12
	}
	tmp := t.TempDir()
	base := ProcConfig{
		Seed:         11,
		PullInterval: 100 * time.Millisecond,
		Fanout:       3,
		PF:           1,
		Acks:         true,
		WALDir:       filepath.Join(tmp, "wal"),
		Fsync:        "interval",
	}
	c, err := Launch(daemonBin, procs, base, testLogWriter{t})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	tr := newSoakTraffic(t)

	// Phase 1: baseline traffic through every member.
	tr.write(c.Clients, keysPerPhase)

	// Phase 2: kill -9 mid-burst, tear the WAL tail, recover from disk.
	var acked []serve.PutResult
	for cycle := 0; cycle < killCycles; cycle++ {
		victim := 1 + cycle%(procs-1)
		survivors := make([]*Client, 0, procs-1)
		for i, cl := range c.Clients {
			if i != victim {
				survivors = append(survivors, cl)
			}
		}

		burst := startBurst(c.Clients[victim], fmt.Sprintf("burst%d", cycle))
		time.Sleep(150 * time.Millisecond) // let writes pile into the WAL
		if err := c.Procs[victim].Kill(); err != nil {
			t.Fatalf("kill cycle %d: %v", cycle, err)
		}
		cycleAcked := burst.wait(t)
		if len(cycleAcked) == 0 {
			t.Fatalf("kill cycle %d: burst acked nothing before the kill", cycle)
		}
		acked = append(acked, cycleAcked...)
		burst.mu.Lock()
		for k, v := range burst.want {
			tr.want[k] = v
		}
		burst.mu.Unlock()
		tornTail(t, fmt.Sprintf("%s.%d", base.WALDir, victim))

		// Survivors take writes while the victim is down.
		tr.write(survivors, keysPerPhase)

		if err := c.KillAndRecover(victim); err != nil {
			t.Fatalf("kill cycle %d: %v", cycle, err)
		}
		st, err := c.Clients[victim].State()
		if err != nil {
			t.Fatalf("kill cycle %d: state after recovery: %v", cycle, err)
		}
		if st.Restored == 0 {
			t.Fatalf("kill cycle %d: recovered member restored nothing", cycle)
		}
		// The acid test: before any gossip could help it, the recovered
		// member's clock must already cover every write it acknowledged.
		if err := CheckDelivery([]State{st}, cycleAcked); err != nil {
			t.Fatalf("kill cycle %d: acked write lost across kill -9: %v", cycle, err)
		}
		t.Logf("cycle %d: victim %d recovered %d updates from disk (%d acked mid-burst)",
			cycle, victim, st.Restored, len(cycleAcked))
	}
	tr.refs = append(tr.refs, acked...)

	// Rewire the peer view (restarts may have shuffled who knows whom) and
	// run a final wave through everyone.
	all := c.GossipAddrs()
	for i, cl := range c.Clients {
		if _, err := cl.AddPeers(all); err != nil {
			t.Fatalf("rewire member %d: %v", i, err)
		}
	}
	tr.write(c.Clients, keysPerPhase)

	states, err := c.WaitConverged(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAll(states, tr.refs); err != nil {
		t.Fatal(err)
	}
	for key, want := range tr.want {
		for i, cl := range c.Clients {
			got, ok, err := cl.Get(key)
			if err != nil {
				t.Fatalf("member %d get %s: %v", i, key, err)
			}
			if !ok || string(got) != want {
				t.Fatalf("member %d: %s = %q (ok=%v), want %q", i, key, got, ok, want)
			}
		}
	}
	t.Logf("durable soak: %d members, %d kill cycles, %d acked mid-burst, %d updates, digest %.12s…",
		len(c.Clients), killCycles, len(acked), states[0].UpdateCount, states[0].Digest)
}
