package cluster

import (
	"fmt"
	"sort"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/serve"
)

// The invariant checkers below are the HTTP-scraped counterparts of
// internal/scenario's in-process checks: delivery, convergence, and
// no-duplicate-application, decided purely from /v1/state documents.

// CheckDelivery verifies eventual delivery: every published ref's (origin,
// seq) is covered by every member's contiguous clock frontier.
func CheckDelivery(states []State, refs []serve.PutResult) error {
	for _, ref := range refs {
		for i, st := range states {
			if st.Clock[ref.Origin] < ref.Seq {
				return fmt.Errorf("cluster: member %d (%s) missing %s#%d (clock frontier %d)",
					i, st.Addr, ref.Origin, ref.Seq, st.Clock[ref.Origin])
			}
		}
	}
	return nil
}

// CheckConvergence verifies that every member holds byte-identical state:
// one shared digest, one shared clock, one shared update count.
func CheckConvergence(states []State) error {
	if len(states) == 0 {
		return fmt.Errorf("cluster: no states to compare")
	}
	ref := states[0]
	for i, st := range states[1:] {
		if st.Digest != ref.Digest {
			return fmt.Errorf("cluster: digest mismatch: member 0 %.12s… vs member %d %.12s…",
				ref.Digest, i+1, st.Digest)
		}
		if st.UpdateCount != ref.UpdateCount {
			return fmt.Errorf("cluster: update count mismatch: member 0 has %d, member %d has %d",
				ref.UpdateCount, i+1, st.UpdateCount)
		}
		if err := sameClock(ref.Clock, st.Clock); err != nil {
			return fmt.Errorf("cluster: clock mismatch between member 0 and member %d: %w", i+1, err)
		}
	}
	return nil
}

func sameClock(a, b map[string]uint64) error {
	origins := make(map[string]bool, len(a)+len(b))
	for o := range a {
		origins[o] = true
	}
	for o := range b {
		origins[o] = true
	}
	keys := make([]string, 0, len(origins))
	for o := range origins {
		keys = append(keys, o)
	}
	sort.Strings(keys)
	for _, o := range keys {
		if a[o] != b[o] {
			return fmt.Errorf("origin %s: %d vs %d", o, a[o], b[o])
		}
	}
	return nil
}

// CheckNoDuplicateApply verifies, per member, that every logged update was
// applied exactly once by this process: applied + obsolete counter ticks
// must equal the log growth since start (UpdateCount - Restored). A
// re-applied update would tick a counter without growing the log and break
// the equality; snapshot restores grow the log without ticking counters
// and are subtracted out via Restored.
func CheckNoDuplicateApply(states []State) error {
	for i, st := range states {
		if st.Counters == nil {
			return fmt.Errorf("cluster: member %d (%s) exposes no counters", i, st.Addr)
		}
		applied := st.Counters[pushpull.MetricStoreApplied]
		obsolete := st.Counters[pushpull.MetricStoreObsolete]
		want := float64(st.UpdateCount - st.Restored)
		if applied+obsolete != want {
			return fmt.Errorf(
				"cluster: member %d (%s): applied %.0f + obsolete %.0f != update_count %d - restored %d",
				i, st.Addr, applied, obsolete, st.UpdateCount, st.Restored)
		}
	}
	return nil
}

// CheckAll runs every invariant and returns the first failure.
func CheckAll(states []State, refs []serve.PutResult) error {
	if err := CheckConvergence(states); err != nil {
		return err
	}
	if err := CheckDelivery(states, refs); err != nil {
		return err
	}
	return CheckNoDuplicateApply(states)
}
