// Package cluster launches and torments fleets of real pushpulld
// processes: the wall-clock, multi-process counterpart of the simulated
// internal/scenario harness. Where scenario injects faults into a simnet
// and inspects peers through pointers, cluster builds the daemon binary,
// starts N OS processes on loopback, drives sustained client traffic
// through the HTTP edge, injects real faults (SIGKILL, restart-from-
// snapshot on the same address, peer-list churn), and then checks the same
// invariants — eventual delivery, clock/store convergence, no duplicate
// application — against state scraped over HTTP (/v1/state).
//
// The package is also the example substrate: examples/httpcluster uses
// BuildDaemon and Proc to run a two-daemon demo session.
package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// BuildDaemon compiles cmd/pushpulld into dir and returns the binary path.
// The go toolchain resolves the module root from this package's source
// location, so callers may run from any working directory.
func BuildDaemon(dir string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "pushpulld")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/pushpulld")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("cluster: build pushpulld: %v\n%s", err, out)
	}
	return bin, nil
}

// moduleRoot locates the repository root via `go env GOMOD`.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("cluster: go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("cluster: not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod), nil
}

// ProcConfig parameterises one daemon process. Zero values mean ephemeral
// loopback ports and the daemon's own defaults.
type ProcConfig struct {
	// HTTPAddr and GossipAddr are listen addresses; "" picks an ephemeral
	// loopback port. Restarts pass the previous concrete addresses so the
	// process comes back reachable under its old identity.
	HTTPAddr   string
	GossipAddr string
	// Peers are gossip addresses taught at startup.
	Peers []string
	// SnapshotPath, when non-empty, is restored on start (if the file
	// exists) and written on graceful shutdown.
	SnapshotPath string
	// WALDir, when non-empty, enables the daemon's write-ahead log: every
	// acknowledged write is on disk before the HTTP response, and a restart
	// recovers from this directory alone (see KillAndRecover).
	WALDir string
	// Fsync is the WAL fsync policy (always/interval/never); "" leaves the
	// daemon default.
	Fsync string
	// StrictRestore makes an unusable snapshot fatal at startup instead of
	// a warn-and-start-empty.
	StrictRestore bool
	// Seed pins the daemon's randomness; 0 draws from crypto/rand.
	Seed int64
	// PullInterval is the anti-entropy period (0 = daemon default 30s).
	PullInterval time.Duration
	// Fanout caps push targets (0 = daemon default).
	Fanout int
	// PF is the geometric forwarding base; 0 means "leave at default",
	// >= 1 forwards always.
	PF float64
	// Acks enables the §6 acknowledgement machinery.
	Acks bool
}

func (c ProcConfig) args() []string {
	httpAddr, gossipAddr := c.HTTPAddr, c.GossipAddr
	if httpAddr == "" {
		httpAddr = "127.0.0.1:0"
	}
	if gossipAddr == "" {
		gossipAddr = "127.0.0.1:0"
	}
	args := []string{"-http", httpAddr, "-gossip", gossipAddr}
	if len(c.Peers) > 0 {
		args = append(args, "-peers", strings.Join(c.Peers, ","))
	}
	if c.SnapshotPath != "" {
		args = append(args, "-snapshot", c.SnapshotPath)
	}
	if c.WALDir != "" {
		args = append(args, "-wal-dir", c.WALDir)
	}
	if c.Fsync != "" {
		args = append(args, "-fsync", c.Fsync)
	}
	if c.StrictRestore {
		args = append(args, "-strict-restore")
	}
	if c.Seed != 0 {
		args = append(args, "-seed", strconv.FormatInt(c.Seed, 10))
	}
	if c.PullInterval > 0 {
		args = append(args, "-pull-interval", c.PullInterval.String())
	}
	if c.Fanout > 0 {
		args = append(args, "-fanout", strconv.Itoa(c.Fanout))
	}
	if c.PF > 0 {
		args = append(args, "-pf", strconv.FormatFloat(c.PF, 'g', -1, 64))
	}
	if c.Acks {
		args = append(args, "-acks")
	}
	return args
}

// Proc is one running daemon process.
type Proc struct {
	// Cfg is the configuration the process was started with.
	Cfg ProcConfig
	// HTTPAddr and GossipAddr are the concrete bound addresses parsed from
	// the daemon's ready line.
	HTTPAddr   string
	GossipAddr string

	cmd  *exec.Cmd
	mu   sync.Mutex
	done chan struct{} // closed when the process has been reaped
	err  error
}

// readyTimeout bounds how long StartProc waits for the daemon's ready
// line.
const readyTimeout = 20 * time.Second

// StartProc launches one daemon and blocks until it prints its ready line.
// Remaining stdout and all stderr are copied to logw (pass io.Discard or a
// test logger).
func StartProc(bin string, cfg ProcConfig, logw io.Writer) (*Proc, error) {
	cmd := exec.Command(bin, cfg.args()...)
	cmd.Stderr = logw
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("cluster: stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: start %s: %v", bin, err)
	}
	p := &Proc{Cfg: cfg, cmd: cmd, done: make(chan struct{})}

	type ready struct {
		httpAddr, gossipAddr string
		err                  error
	}
	readyCh := make(chan ready, 1)
	go func() {
		r := bufio.NewReader(stdout)
		line, err := r.ReadString('\n')
		if err != nil {
			readyCh <- ready{err: fmt.Errorf("cluster: daemon exited before ready: %v", err)}
			return
		}
		httpAddr, gossipAddr, err := parseReadyLine(line)
		readyCh <- ready{httpAddr: httpAddr, gossipAddr: gossipAddr, err: err}
		// Keep draining so the child never blocks on a full pipe.
		_, _ = io.Copy(logw, r)
	}()
	go func() {
		err := cmd.Wait()
		p.mu.Lock()
		p.err = err
		p.mu.Unlock()
		close(p.done)
	}()

	select {
	case r := <-readyCh:
		if r.err != nil {
			_ = p.Kill()
			return nil, r.err
		}
		p.HTTPAddr, p.GossipAddr = r.httpAddr, r.gossipAddr
		return p, nil
	case <-time.After(readyTimeout):
		_ = p.Kill()
		return nil, fmt.Errorf("cluster: daemon not ready within %v", readyTimeout)
	}
}

// parseReadyLine extracts the bound addresses from
// "pushpulld ready http=H:P gossip=H:P".
func parseReadyLine(line string) (httpAddr, gossipAddr string, err error) {
	for _, f := range strings.Fields(strings.TrimSpace(line)) {
		if v, ok := strings.CutPrefix(f, "http="); ok {
			httpAddr = v
		}
		if v, ok := strings.CutPrefix(f, "gossip="); ok {
			gossipAddr = v
		}
	}
	if httpAddr == "" || gossipAddr == "" {
		return "", "", fmt.Errorf("cluster: malformed ready line %q", line)
	}
	return httpAddr, gossipAddr, nil
}

// Kill delivers SIGKILL — the chaos path: no snapshot, no drain, the
// process just stops — and reaps the child.
func (p *Proc) Kill() error {
	_ = p.cmd.Process.Kill()
	<-p.done
	return nil
}

// Stop delivers SIGTERM (graceful drain: snapshot written, listeners
// drained) and waits for exit up to the timeout, escalating to SIGKILL.
func (p *Proc) Stop(timeout time.Duration) error {
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.err
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		<-p.done
		return fmt.Errorf("cluster: %s did not drain within %v", p.HTTPAddr, timeout)
	}
}

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Cluster is a fleet of daemons plus one HTTP client per member.
type Cluster struct {
	Bin     string
	Procs   []*Proc
	Clients []*Client
	logw    io.Writer
}

// Launch starts n daemons on ephemeral loopback ports with the given base
// configuration (addresses and peers are ignored; each member gets seed
// base.Seed+i) and then teaches every member the full gossip peer list
// over HTTP. On error, already-started processes are killed.
func Launch(bin string, n int, base ProcConfig, logw io.Writer) (*Cluster, error) {
	if logw == nil {
		logw = io.Discard
	}
	c := &Cluster{Bin: bin, logw: logw}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.HTTPAddr, cfg.GossipAddr, cfg.Peers = "", "", nil
		if base.Seed != 0 {
			cfg.Seed = base.Seed + int64(i)
		}
		if base.SnapshotPath != "" {
			cfg.SnapshotPath = fmt.Sprintf("%s.%d", base.SnapshotPath, i)
		}
		if base.WALDir != "" {
			cfg.WALDir = fmt.Sprintf("%s.%d", base.WALDir, i)
		}
		p, err := StartProc(bin, cfg, logw)
		if err != nil {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: member %d: %w", i, err)
		}
		c.Procs = append(c.Procs, p)
		c.Clients = append(c.Clients, NewClient(p.HTTPAddr))
	}
	peers := c.GossipAddrs()
	for i, cl := range c.Clients {
		if _, err := cl.AddPeers(peers); err != nil {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: wire member %d: %w", i, err)
		}
	}
	return c, nil
}

// GossipAddrs returns every member's gossip address in member order.
func (c *Cluster) GossipAddrs() []string {
	addrs := make([]string, len(c.Procs))
	for i, p := range c.Procs {
		addrs[i] = p.GossipAddr
	}
	return addrs
}

// KillAndRestart scrapes member i's snapshot over HTTP, SIGKILLs the
// process, and restarts it from that snapshot on the same HTTP and gossip
// addresses with the full current peer list — the cluster-level
// crash-restart fault. Callers must have stopped directing writes at the
// member first: updates it originates between the scrape and the kill
// would be lost locally and their sequence numbers reused after restart.
// snapshotPath says where to stash the scraped snapshot.
func (c *Cluster) KillAndRestart(i int, snapshotPath string) error {
	snap, err := c.Clients[i].Snapshot()
	if err != nil {
		return fmt.Errorf("cluster: scrape snapshot of member %d: %w", i, err)
	}
	if err := os.WriteFile(snapshotPath, snap, 0o644); err != nil {
		return err
	}
	if err := c.Procs[i].Kill(); err != nil {
		return err
	}
	cfg := c.Procs[i].Cfg
	cfg.HTTPAddr = c.Procs[i].HTTPAddr
	cfg.GossipAddr = c.Procs[i].GossipAddr
	cfg.SnapshotPath = snapshotPath
	cfg.Peers = c.GossipAddrs()
	p, err := StartProc(c.Bin, cfg, c.logw)
	if err != nil {
		return fmt.Errorf("cluster: restart member %d: %w", i, err)
	}
	c.Procs[i] = p
	c.Clients[i] = NewClient(p.HTTPAddr)
	return nil
}

// KillAndRecover restarts member i from its on-disk write-ahead log alone:
// no snapshot scrape, no drain — the durability fault. If the process is
// still running it is SIGKILLed first; callers testing mid-burst kills
// deliver the SIGKILL themselves (Procs[i].Kill) while traffic is in
// flight, optionally corrupt the WAL tail, and then call this to bring the
// member back on its old addresses with the full current peer list.
func (c *Cluster) KillAndRecover(i int) error {
	old := c.Procs[i]
	if old.Cfg.WALDir == "" {
		return fmt.Errorf("cluster: member %d has no WAL directory to recover from", i)
	}
	if !old.Exited() {
		if err := old.Kill(); err != nil {
			return err
		}
	}
	cfg := old.Cfg
	cfg.HTTPAddr = old.HTTPAddr
	cfg.GossipAddr = old.GossipAddr
	cfg.Peers = c.GossipAddrs()
	p, err := StartProc(c.Bin, cfg, c.logw)
	if err != nil {
		return fmt.Errorf("cluster: recover member %d: %w", i, err)
	}
	c.Procs[i] = p
	c.Clients[i] = NewClient(p.HTTPAddr)
	return nil
}

// PullAll triggers one anti-entropy batch on every member.
func (c *Cluster) PullAll() {
	for _, cl := range c.Clients {
		_, _ = cl.Pull()
	}
}

// States scrapes /v1/state from every member.
func (c *Cluster) States() ([]State, error) {
	states := make([]State, len(c.Clients))
	for i, cl := range c.Clients {
		st, err := cl.State()
		if err != nil {
			return nil, fmt.Errorf("cluster: state of member %d: %w", i, err)
		}
		states[i] = st
	}
	return states, nil
}

// Shutdown SIGKILLs every still-running member. Use Stop on individual
// procs for graceful drains.
func (c *Cluster) Shutdown() {
	for _, p := range c.Procs {
		if p != nil && !p.Exited() {
			_ = p.Kill()
		}
	}
}

// WaitConverged polls scraped states until every member shares one digest
// and one clock, nudging anti-entropy along with explicit pulls. It
// returns the converged states.
func (c *Cluster) WaitConverged(timeout time.Duration) ([]State, error) {
	deadline := time.Now().Add(timeout)
	var last []State
	for time.Now().Before(deadline) {
		states, err := c.States()
		if err == nil {
			last = states
			if err := CheckConvergence(states); err == nil {
				return states, nil
			}
		}
		c.PullAll()
		time.Sleep(100 * time.Millisecond)
	}
	detail := "no states scraped"
	if last != nil {
		if err := CheckConvergence(last); err != nil {
			detail = err.Error()
		}
		var b bytes.Buffer
		for i, st := range last {
			fmt.Fprintf(&b, "\n  member %d: %d updates, digest %.12s…", i, st.UpdateCount, st.Digest)
		}
		detail += b.String()
	}
	return last, fmt.Errorf("cluster: not converged within %v: %s", timeout, detail)
}
