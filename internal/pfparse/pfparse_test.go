package pfparse

import (
	"math"
	"testing"

	"github.com/p2pgossip/update/internal/pf"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		spec string
		at   int
		want float64
	}{
		{"const:0.8", 5, 0.8},
		{"lin:1,0.1", 3, 0.7},
		{"geom:0.9", 2, 0.81},
		{"affine:0.8,0.7,0.2", 0, 1},
		{"ttl:3", 3, 0},
		{"ttl:3", 2, 1},
		{"haas:0.8,2", 1, 1},
		{"haas:0.8,2", 2, 0.8},
		{"adaptive:1", 9, 1},
		{"geom: 0.5", 1, 0.5}, // whitespace tolerated
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			f, err := Parse(tt.spec)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got := f.P(tt.at); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("P(%d) = %g, want %g", tt.at, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "wat:1", "const", "const:a", "const:1,2", "lin:1",
		"geom:", "haas:0.8", "affine:1,2",
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) should error", spec)
		}
	}
}

func TestParseReturnsFreshAdaptive(t *testing.T) {
	f, err := Parse("adaptive:0.9")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := f.(*pf.Adaptive)
	if !ok {
		t.Fatalf("adaptive spec returned %T", f)
	}
	if a.Base != 0.9 {
		t.Fatalf("Base = %g", a.Base)
	}
}
