package pfparse

import (
	"math"
	"testing"
)

// FuzzParse ensures the schedule parser never panics and that every parsed
// schedule yields probabilities in [0, 1] for all rounds.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"const:1", "geom:0.9", "affine:0.8,0.7,0.2", "ttl:7",
		"haas:0.8,2", "lin:1,0.1", "adaptive:1",
		"", ":", "geom:", "geom:NaN", "geom:-1", "const:1e308",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fn, err := Parse(spec)
		if err != nil {
			return
		}
		for _, round := range []int{-1, 0, 1, 10, 1000} {
			p := fn.P(round)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("Parse(%q).P(%d) = %v out of [0,1]", spec, round, p)
			}
		}
	})
}
