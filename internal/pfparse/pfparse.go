// Package pfparse parses command-line specifications of forwarding
// probability schedules, e.g. "geom:0.9" or "affine:0.8,0.7,0.2".
//
// Grammar: NAME[:ARG{,ARG}] with
//
//	const:C          PF(t) = C
//	lin:START,SLOPE  PF(t) = START − SLOPE·t
//	geom:BASE        PF(t) = BASE^t
//	affine:A,B,C     PF(t) = A·B^t + C
//	ttl:ROUNDS       PF(t) = 1 for t < ROUNDS, else 0 (Gnutella)
//	haas:P,K         GOSSIP1(P, K)
//	adaptive:BASE    self-tuning (duplicate + list feedback)
package pfparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/p2pgossip/update/internal/pf"
)

// Parse converts a schedule specification into a pf.Func.
func Parse(spec string) (pf.Func, error) {
	name, argstr, _ := strings.Cut(spec, ":")
	var args []float64
	if argstr != "" {
		for _, part := range strings.Split(argstr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("pfparse: %q: %w", spec, err)
			}
			args = append(args, v)
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("pfparse: %q needs %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "const":
		if err := need(1); err != nil {
			return nil, err
		}
		return pf.Constant{C: args[0]}, nil
	case "lin":
		if err := need(2); err != nil {
			return nil, err
		}
		return pf.Linear{Start: args[0], Slope: args[1]}, nil
	case "geom":
		if err := need(1); err != nil {
			return nil, err
		}
		return pf.Geometric{Base: args[0]}, nil
	case "affine":
		if err := need(3); err != nil {
			return nil, err
		}
		return pf.AffineGeometric{A: args[0], B: args[1], C: args[2]}, nil
	case "ttl":
		if err := need(1); err != nil {
			return nil, err
		}
		return pf.TTL{Rounds: int(args[0])}, nil
	case "haas":
		if err := need(2); err != nil {
			return nil, err
		}
		return pf.Haas{P1: args[0], K: int(args[1])}, nil
	case "adaptive":
		if err := need(1); err != nil {
			return nil, err
		}
		return pf.NewAdaptive(args[0]), nil
	default:
		return nil, fmt.Errorf("pfparse: unknown schedule %q", name)
	}
}
