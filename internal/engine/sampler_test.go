package engine

// Tests for the O(k) partitioned peer sampler: uniformity of the steady
// path, the §6 preferred/suspect behaviour under acks, the exclude-one fast
// path, the stable ordering of the ack-bookkeeping accessors, and the
// partition invariants of peerView under randomised operation sequences.

import (
	"math/rand"
	"testing"
)

// countSamples draws k peers `rounds` times and tallies per-peer frequency.
func countSamples(e *Engine[int], k, rounds int) map[int]int {
	freq := make(map[int]int)
	for i := 0; i < rounds; i++ {
		for _, id := range e.SamplePeers(k) {
			freq[id]++
		}
	}
	return freq
}

// TestSampleNearUniformWithoutAcks pins the sampler's core distribution
// guarantee: without ack preferences every known peer must be drawn with
// frequency close to rounds·k/n. The partial Fisher–Yates persistently
// reorders the view, so this also catches any bias such reordering could
// introduce across correlated draws.
func TestSampleNearUniformWithoutAcks(t *testing.T) {
	const n, k, rounds = 30, 5, 20000
	e, _ := newTestEngine(t, 0, Config[int]{Fanout: float64(k)}, nil)
	for i := 1; i <= n; i++ {
		e.Learn(i)
	}
	freq := countSamples(e, k, rounds)
	if len(freq) != n {
		t.Fatalf("only %d of %d peers ever sampled", len(freq), n)
	}
	expected := float64(rounds) * k / n
	for id, got := range freq {
		if ratio := float64(got) / expected; ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("peer %d drawn %d times, expected ≈%.0f (ratio %.3f)",
				id, got, expected, ratio)
		}
	}
	// Every draw must contain k distinct peers.
	if got := e.SamplePeers(k); len(got) != k {
		t.Fatalf("sample size %d, want %d", len(got), k)
	}
}

// TestSamplePrefersAckedAndSkipsSuspects pins the §6 behaviour on the
// partitioned view: acked peers fill the sample first (uniformly among
// themselves), suspects are never drawn, and expiry re-admits them.
func TestSamplePrefersAckedAndSkipsSuspects(t *testing.T) {
	const n = 24
	cfg := Config[int]{Fanout: 4, Acks: true, AckTimeout: 1 << 40, SuspectTTL: 100}
	e, ep := newTestEngine(t, 0, cfg, nil)
	for i := 1; i <= n; i++ {
		e.Learn(i)
	}
	acked := map[int]bool{3: true, 7: true, 11: true, 15: true, 19: true, 23: true}
	for id := range acked {
		e.Handle(id, Message[int]{Kind: KindAck})
	}
	for _, s := range []int{2, 4, 6} {
		e.suspect(s, 0)
	}

	// k below the acked count: samples must be acked-only and near-uniform
	// among the acked.
	const k, rounds = 3, 12000
	freq := countSamples(e, k, rounds)
	for id := range freq {
		if !acked[id] {
			t.Fatalf("peer %d sampled ahead of acked peers", id)
		}
	}
	expected := float64(rounds) * k / float64(len(acked))
	for id := range acked {
		got := freq[id]
		if ratio := float64(got) / expected; ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("acked peer %d drawn %d times, expected ≈%.0f", id, got, expected)
		}
	}

	// k above the acked count: all acked appear, suspects still never do.
	full := e.SamplePeers(n)
	seen := map[int]bool{}
	for _, id := range full {
		seen[id] = true
	}
	for id := range acked {
		if !seen[id] {
			t.Fatalf("acked peer %d missing from large sample %v", id, full)
		}
	}
	for _, s := range []int{2, 4, 6} {
		if seen[s] {
			t.Fatalf("suspect %d sampled before expiry", s)
		}
	}
	if want := n - 3; len(full) != want {
		t.Fatalf("large sample has %d peers, want %d", len(full), want)
	}

	// After the TTL the suspects are re-admitted.
	ep.now = 101
	e.Sweep()
	full = e.SamplePeers(n)
	if len(full) != n {
		t.Fatalf("after expiry sample has %d peers, want %d", len(full), n)
	}
}

// TestSampleExcludingOmitsPeer pins the exclude-one fast path used by pull
// responses: the requester must never be gossiped back to itself, whichever
// segment it occupies.
func TestSampleExcludingOmitsPeer(t *testing.T) {
	cfg := Config[int]{Fanout: 4, Acks: true, AckTimeout: 1 << 40, SuspectTTL: 1 << 40}
	e, _ := newTestEngine(t, 0, cfg, nil)
	for i := 1; i <= 10; i++ {
		e.Learn(i)
	}
	e.Handle(5, Message[int]{Kind: KindAck}) // excluded peer in the preferred segment
	for trial := 0; trial < 500; trial++ {
		out := e.sampleExcluding(10, 5)
		if len(out) != 9 {
			t.Fatalf("sample = %v, want all but 5", out)
		}
		for _, id := range out {
			if id == 5 {
				t.Fatalf("excluded peer sampled: %v", out)
			}
		}
		e.releaseScratch(out)
	}
}

// TestAckBookkeepingStableOrder pins the insertion-ordered accessors: map
// iteration used to make Suspects/Acked/AwaitingAck orders random per run.
func TestAckBookkeepingStableOrder(t *testing.T) {
	cfg := Config[int]{Fanout: 3, Acks: true, AckTimeout: 10, SuspectTTL: 1 << 40}
	e, ep := newTestEngine(t, 0, cfg, nil)
	for i := 1; i <= 8; i++ {
		e.Learn(i)
	}
	for _, id := range []int{6, 2, 8} {
		e.Handle(id, Message[int]{Kind: KindAck})
	}
	if got := e.Acked(); len(got) != 3 || got[0] != 6 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("Acked = %v, want first-ack order [6 2 8]", got)
	}

	u := testUpdate(t, "peer-1", 1, "k", "v")
	e.Handle(1, Message[int]{Kind: KindPush, Update: u, T: 0})
	await := e.AwaitingAck()
	if len(await) == 0 {
		t.Fatal("no ack expectations after forwarding")
	}
	// Stable: repeated reads agree.
	for trial := 0; trial < 5; trial++ {
		again := e.AwaitingAck()
		if len(again) != len(await) {
			t.Fatalf("AwaitingAck changed: %v vs %v", again, await)
		}
		for i := range again {
			if again[i] != await[i] {
				t.Fatalf("AwaitingAck order unstable: %v vs %v", again, await)
			}
		}
	}

	ep.now = 20
	e.Sweep()
	suspects := e.Suspects()
	if len(suspects) != len(await) {
		t.Fatalf("suspects %v, want the %d timed-out peers %v", suspects, len(await), await)
	}
	// Suspicion order is the await-creation order.
	for i := range suspects {
		if suspects[i] != await[i] {
			t.Fatalf("Suspects = %v, want creation order %v", suspects, await)
		}
	}
}

// checkViewInvariants asserts the peerView partition is internally
// consistent: pos mirrors order, segment bounds are sane, and every peer is
// in the segment its engine state demands.
func checkViewInvariants(t *testing.T, e *Engine[int]) {
	t.Helper()
	v := e.view
	if v.nPref < 0 || v.nPref > v.nAvail || v.nAvail > len(v.order) {
		t.Fatalf("segment bounds broken: nPref=%d nAvail=%d len=%d", v.nPref, v.nAvail, len(v.order))
	}
	if len(v.pos) != len(v.order) {
		t.Fatalf("pos has %d entries, order %d", len(v.pos), len(v.order))
	}
	for i, id := range v.order {
		if v.pos[id] != i {
			t.Fatalf("pos[%d] = %d, order says %d", id, v.pos[id], i)
		}
		_, suspected := e.suspects[id]
		_, acked := e.ackedBy[id]
		switch {
		case i < v.nPref: // preferred: acked and not suspected
			if !acked || suspected {
				t.Fatalf("peer %d preferred but acked=%v suspected=%v", id, acked, suspected)
			}
		case i < v.nAvail: // available: not suspected
			if suspected {
				t.Fatalf("peer %d available but suspected", id)
			}
			if acked {
				t.Fatalf("peer %d available but acked (should be preferred)", id)
			}
		default: // suspended: suspected
			if !suspected {
				t.Fatalf("peer %d suspended but not suspected", id)
			}
		}
	}
}

// TestPeerViewInvariantsUnderRandomOps drives the engine's ack state machine
// with a random mix of learns, acks, suspicions, expiries, and samples, and
// checks the partition invariants after every step.
func TestPeerViewInvariantsUnderRandomOps(t *testing.T) {
	cfg := Config[int]{Fanout: 3, Acks: true, AckTimeout: 1 << 40, SuspectTTL: 50}
	e, ep := newTestEngine(t, 0, cfg, nil)
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 3000; step++ {
		peer := rng.Intn(40) + 1
		switch rng.Intn(5) {
		case 0:
			e.Learn(peer)
		case 1:
			e.Handle(peer, Message[int]{Kind: KindAck})
		case 2:
			if _, already := e.suspects[peer]; !already {
				e.suspect(peer, ep.now)
			}
		case 3:
			ep.now += int64(rng.Intn(30))
			e.Sweep()
		case 4:
			out := e.sampleExcluding(rng.Intn(8)+1, peer)
			for _, id := range out {
				if id == peer {
					t.Fatalf("step %d: excluded peer %d sampled", step, peer)
				}
				if _, suspected := e.suspects[id]; suspected {
					t.Fatalf("step %d: suspect %d sampled", step, id)
				}
			}
			e.releaseScratch(out)
		}
		checkViewInvariants(t, e)
	}
}
