package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// sentMsg records one outbound message.
type sentMsg struct {
	to  int
	msg Message[int]
}

// testNet wires engines together with synchronous delivery, standing in for
// an adapter's transport.
type testNet struct {
	engines map[int]*Engine[int]
}

// testEndpoint is a controllable Endpoint: time is a settable tick counter,
// sends are recorded and (when a net is attached) delivered synchronously.
type testEndpoint struct {
	id      int
	now     int64
	rng     *rand.Rand
	net     *testNet
	sent    []sentMsg
	discard bool
}

func (ep *testEndpoint) Self() int        { return ep.id }
func (ep *testEndpoint) Now() int64       { return ep.now }
func (ep *testEndpoint) Rand() *rand.Rand { return ep.rng }
func (ep *testEndpoint) Send(to int, m Message[int]) {
	if !ep.discard {
		ep.sent = append(ep.sent, sentMsg{to: to, msg: m})
	}
	if ep.net != nil {
		if target, ok := ep.net.engines[to]; ok {
			target.Handle(ep.id, m)
		}
	}
}

// newTestEngine builds an engine with a deterministic writer clock and RNG.
func newTestEngine(t testing.TB, id int, cfg Config[int], net *testNet) (*Engine[int], *testEndpoint) {
	t.Helper()
	ep := &testEndpoint{id: id, rng: rand.New(rand.NewSource(int64(id) + 1)), net: net}
	st := store.New()
	now := func() time.Time { return time.Unix(1_700_000_000+ep.now, 0) }
	w, err := store.NewWriter(fmt.Sprintf("peer-%d", id), st, now,
		rand.New(rand.NewSource(int64(id)+100)))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	e, err := New(cfg, ep, st, w)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if net != nil {
		net.engines[id] = e
	}
	return e, ep
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config[int])
	}{
		{"negative fanout", func(c *Config[int]) { c.Fanout = -1 }},
		{"negative list max", func(c *Config[int]) { c.ListMax = -1 }},
		{"negative population", func(c *Config[int]) { c.Population = -1 }},
		{"negative pull attempts", func(c *Config[int]) { c.PullAttempts = -1 }},
		{"negative pull timeout", func(c *Config[int]) { c.PullTimeout = -1 }},
		{"negative query timeout", func(c *Config[int]) { c.QueryTimeout = -1 }},
		{"acks without ack timeout", func(c *Config[int]) { c.Acks = true; c.SuspectTTL = 5 }},
		{"acks without suspect ttl", func(c *Config[int]) { c.Acks = true; c.AckTimeout = 5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Config[int]{Fanout: 3}
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	st := store.New()
	w, err := store.NewWriter("x", st, nil, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New[int](Config[int]{Fanout: -1}, &testEndpoint{}, st, w); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := New[int](Config[int]{}, nil, st, w); err == nil {
		t.Fatal("nil endpoint accepted")
	}
	if _, err := New[int](Config[int]{}, &testEndpoint{}, nil, w); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New[int](Config[int]{}, &testEndpoint{}, st, nil); err == nil {
		t.Fatal("nil writer accepted")
	}
}

// testUpdate builds a well-formed foreign update for push delivery.
func testUpdate(t testing.TB, origin string, seq uint64, key, value string) store.Update {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seq)))
	stamp := time.Unix(1_700_000_000, 0)
	return store.Update{
		Origin:  origin,
		Seq:     seq,
		Key:     key,
		Value:   []byte(value),
		Version: version.History{version.NewID(stamp, origin, rng)},
		Stamp:   stamp,
	}
}

// TestListFractionFeedsAdaptivePF is the regression test for the §6
// feed-forward signal: the flooding-list fraction carried on a push must
// reach the adaptive PF schedule. Both adapters share this code path, so
// the simulator's self-tuning now matches the live runtime's by
// construction (the two hand-rolled copies used to drift here).
func TestListFractionFeedsAdaptivePF(t *testing.T) {
	var captured []*pf.Adaptive
	cfg := Config[int]{
		Fanout:      0, // no forwarding: the list stays exactly RF ∪ {self}
		Population:  10,
		PartialList: true,
		NewPF: func() pf.Func {
			a := pf.NewAdaptive(1.0)
			captured = append(captured, a)
			return a
		},
	}
	e, _ := newTestEngine(t, 5, cfg, nil)
	for i := 0; i < 10; i++ {
		e.Learn(i)
	}

	u := testUpdate(t, "peer-0", 1, "k", "v")
	// First receipt carrying a 4-entry list: R_f = {1,2,3,4} ∪ {5}, so
	// L = 5/10 and PF = Base·(1−L) = 0.5.
	e.Handle(1, Message[int]{Kind: KindPush, Update: u, RF: []int{1, 2, 3, 4}, T: 1})
	if len(captured) != 1 {
		t.Fatalf("adaptive instances = %d, want 1", len(captured))
	}
	if got := captured[0].P(2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("PF after first receipt = %g, want 0.5", got)
	}

	// A duplicate merging three more ids: L = 8/10, one duplicate, so
	// PF = 0.7¹·(1−0.8) = 0.14.
	e.Handle(2, Message[int]{Kind: KindPush, Update: u, RF: []int{6, 7, 8}, T: 2})
	if got := e.Duplicates(u.ID()); got != 1 {
		t.Fatalf("duplicates = %d, want 1", got)
	}
	if got := captured[0].P(3); math.Abs(got-0.14) > 1e-9 {
		t.Fatalf("PF after duplicate = %g, want 0.14", got)
	}
}

// TestValidIDFiltersLearnedIdentities pins the wire-identity filter: an
// adapter-supplied ValidID predicate must keep rejected identities out of
// the membership view, whatever path tries to teach them.
func TestValidIDFiltersLearnedIdentities(t *testing.T) {
	cfg := Config[int]{
		Fanout:  2,
		ValidID: func(id int) bool { return id >= 0 },
	}
	e, _ := newTestEngine(t, 0, cfg, nil)
	if e.Learn(-1) {
		t.Fatal("rejected identity learned directly")
	}
	u := testUpdate(t, "peer-9", 1, "k", "v")
	e.Handle(-1, Message[int]{Kind: KindPush, Update: u, RF: []int{-2, 3}, T: 0})
	if !e.HasUpdate(u.ID()) {
		t.Fatal("push from rejected identity dropped entirely")
	}
	if got := e.KnownPeers(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("KnownPeers = %v, want [3]", got)
	}
}

func TestPushForwardsToSampledPeersOutsideList(t *testing.T) {
	cfg := Config[int]{Fanout: 9, Population: 10, PartialList: true}
	e, ep := newTestEngine(t, 0, cfg, nil)
	for i := 1; i <= 9; i++ {
		e.Learn(i)
	}
	u := testUpdate(t, "peer-1", 1, "k", "v")
	e.Handle(1, Message[int]{Kind: KindPush, Update: u, RF: []int{1, 2, 3}, T: 0})

	if !e.HasUpdate(u.ID()) {
		t.Fatal("first receipt not recorded")
	}
	targets := map[int]bool{}
	for _, s := range ep.sent {
		if s.msg.Kind != KindPush {
			continue
		}
		if s.msg.T != 1 {
			t.Fatalf("forwarded with T = %d, want 1", s.msg.T)
		}
		targets[s.to] = true
	}
	// PF = 1: the push must go to every known peer outside the carried
	// list (4..9) and to nobody on it.
	for peer := 4; peer <= 9; peer++ {
		if !targets[peer] {
			t.Fatalf("peer %d outside R_f not pushed to (targets %v)", peer, targets)
		}
	}
	for _, listed := range []int{1, 2, 3} {
		if targets[listed] {
			t.Fatalf("peer %d on R_f was pushed to", listed)
		}
	}
}

func TestSuspectExpiry(t *testing.T) {
	cfg := Config[int]{Fanout: 1, Acks: true, AckTimeout: 2, SuspectTTL: 3}
	e, ep := newTestEngine(t, 0, cfg, nil)
	e.suspect(7, 0)
	ep.now = 2
	e.Sweep()
	if len(e.Suspects()) != 1 {
		t.Fatal("suspect expired too early")
	}
	ep.now = 4
	e.Sweep()
	if len(e.Suspects()) != 0 {
		t.Fatal("suspect not expired after TTL")
	}
}

func TestAckLifecycle(t *testing.T) {
	var suspected []int
	cfg := Config[int]{
		Fanout: 2, Acks: true, AckTimeout: 2, SuspectTTL: 10,
		Hooks: Hooks[int]{OnSuspect: func(p int) { suspected = append(suspected, p) }},
	}
	e, ep := newTestEngine(t, 0, cfg, nil)
	e.Learn(1)
	e.Learn(2)

	e.Publish("k", []byte("v"))
	if got := len(e.AwaitingAck()); got != 2 {
		t.Fatalf("awaiting acks = %d, want 2", got)
	}

	// Peer 1 acks in time; peer 2 never does.
	ep.now = 1
	e.Handle(1, Message[int]{Kind: KindAck, UpdateRef: store.Ref{Origin: "peer-0", Seq: 1}})
	if got := e.Acked(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("acked = %v", got)
	}
	ep.now = 3
	e.Tick()
	if got := e.Suspects(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("suspects = %v, want [2]", got)
	}
	if len(suspected) != 1 || suspected[0] != 2 {
		t.Fatalf("OnSuspect calls = %v", suspected)
	}
	// Sampling skips the suspect and returns the acking peer.
	if got := e.SamplePeers(5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("sample = %v, want [1]", got)
	}
	// A late ack re-admits the suspect immediately.
	e.Handle(2, Message[int]{Kind: KindAck, UpdateRef: store.Ref{Origin: "peer-0", Seq: 1}})
	if len(e.Suspects()) != 0 {
		t.Fatal("ack did not clear suspicion")
	}
}

func TestAckPreferenceOrdersSample(t *testing.T) {
	cfg := Config[int]{Fanout: 2, Acks: true, AckTimeout: 100, SuspectTTL: 100}
	e, _ := newTestEngine(t, 0, cfg, nil)
	for i := 1; i <= 8; i++ {
		e.Learn(i)
	}
	e.Handle(3, Message[int]{Kind: KindAck})
	e.Handle(6, Message[int]{Kind: KindAck})
	// Acked peers must fill the sample before any silent peer.
	for trial := 0; trial < 10; trial++ {
		got := e.SamplePeers(2)
		if len(got) != 2 {
			t.Fatalf("sample = %v", got)
		}
		for _, id := range got {
			if id != 3 && id != 6 {
				t.Fatalf("sample %v ignored acked peers", got)
			}
		}
	}
}

func TestCarriedTruncationPolicies(t *testing.T) {
	list := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tt := range []struct {
		policy replicalist.TruncatePolicy
		check  func(t *testing.T, got []int)
	}{
		{replicalist.DropTail, func(t *testing.T, got []int) {
			for i, id := range []int{1, 2, 3} {
				if got[i] != id {
					t.Fatalf("drop-tail kept %v", got)
				}
			}
		}},
		{replicalist.DropHead, func(t *testing.T, got []int) {
			for i, id := range []int{8, 9, 10} {
				if got[i] != id {
					t.Fatalf("drop-head kept %v", got)
				}
			}
		}},
		{replicalist.DropRandom, func(t *testing.T, got []int) {
			seen := map[int]bool{}
			for _, id := range got {
				if id < 1 || id > 10 || seen[id] {
					t.Fatalf("drop-random kept %v", got)
				}
				seen[id] = true
			}
		}},
	} {
		t.Run(tt.policy.String(), func(t *testing.T) {
			cfg := Config[int]{PartialList: true, ListMax: 3, TruncatePolicy: tt.policy}
			e, _ := newTestEngine(t, 0, cfg, nil)
			got := e.Carried(list)
			if len(got) != 3 {
				t.Fatalf("carried %d entries, want 3", len(got))
			}
			tt.check(t, got)
		})
	}
}

func TestCarriedDisabledAndUnlimited(t *testing.T) {
	e, _ := newTestEngine(t, 0, Config[int]{}, nil)
	if got := e.Carried([]int{1, 2, 3}); got != nil {
		t.Fatalf("carried = %v with partial lists disabled", got)
	}
	e2, _ := newTestEngine(t, 0, Config[int]{PartialList: true}, nil)
	if got := e2.Carried([]int{1, 2, 3}); len(got) != 3 {
		t.Fatalf("carried = %v, want full list", got)
	}
}

func TestPullReconciliation(t *testing.T) {
	net := &testNet{engines: make(map[int]*Engine[int])}
	cfg := Config[int]{Fanout: 0, PullAttempts: 1}
	a, _ := newTestEngine(t, 0, cfg, net)
	b, _ := newTestEngine(t, 1, cfg, net)

	a.Publish("x", []byte("1"))
	a.Publish("y", []byte("2"))
	a.PublishDelete("x")

	b.Learn(0)
	b.PullNow()

	if !b.HasUpdate("peer-0/1") || !b.HasUpdate("peer-0/2") || !b.HasUpdate("peer-0/3") {
		t.Fatal("pull did not reconcile all updates")
	}
	if _, ok := b.Store().Get("x"); ok {
		t.Fatal("tombstone lost in reconciliation")
	}
	rev, ok := b.Store().Get("y")
	if !ok || string(rev.Value) != "2" {
		t.Fatalf("y = %v %v", rev, ok)
	}
	// Pulled updates must not be re-pushed (§4.3's optimism): b knows a,
	// so a forward would have been recorded as a push back to a.
	if got := a.Duplicates("peer-0/1"); got != 0 {
		t.Fatalf("pulled update was re-pushed (%d duplicates at origin)", got)
	}
}

func TestPullReqFromStalePeerTriggersCounterPull(t *testing.T) {
	net := &testNet{engines: make(map[int]*Engine[int])}
	cfg := Config[int]{Fanout: 0, PullAttempts: 1, PullTimeout: 5}
	a, epA := newTestEngine(t, 0, cfg, net)
	b, _ := newTestEngine(t, 1, cfg, net)
	a.Learn(1)
	b.Learn(0)

	b.Publish("k", []byte("fresh"))
	// a has been silent past its pull timeout; a pull request arriving now
	// must make it synchronise itself (§3: received_pull ∧ ¬confident).
	epA.now = 10
	b.PullNow()
	if !a.HasUpdate("peer-1/1") {
		t.Fatal("stale peer did not counter-pull on pull request")
	}
}

func TestLazyPullSyncsOnQuery(t *testing.T) {
	net := &testNet{engines: make(map[int]*Engine[int])}
	cfg := Config[int]{Fanout: 0, PullAttempts: 1, LazyPull: true}
	a, _ := newTestEngine(t, 0, cfg, net)
	b, _ := newTestEngine(t, 1, cfg, net)
	a.Learn(1)
	b.Learn(0)
	b.Publish("k", []byte("v"))

	a.CameOnline()
	if !a.NotConfident() {
		t.Fatal("lazy wake-up did not mark the peer unconfident")
	}
	if a.HasUpdate("peer-1/1") {
		t.Fatal("lazy peer pulled eagerly")
	}
	// An incoming query forces the sync; the answer is flagged unconfident.
	a.Handle(1, Message[int]{Kind: KindQuery, QID: 9, Key: "k"})
	if !a.HasUpdate("peer-1/1") {
		t.Fatal("query did not trigger the lazy peer's pull")
	}
	if a.NotConfident() {
		t.Fatal("peer still unconfident after syncing")
	}
}

func TestQueryLocalVoice(t *testing.T) {
	cfg := Config[int]{Fanout: 0, QueryLocalVoice: true}
	e, _ := newTestEngine(t, 0, cfg, nil)
	e.Publish("k", []byte("here"))
	notified := 0
	qid := e.QueryNotify("k", 3, func() { notified++ })
	res, ok := e.QueryResult(qid)
	if !ok || !res.Done || !res.Found || string(res.Value) != "here" {
		t.Fatalf("local-voice query = %+v ok=%v", res, ok)
	}
	if notified != 1 {
		t.Fatalf("notify calls = %d, want 1", notified)
	}
	e.EndQuery(qid)
	if _, ok := e.QueryResult(qid); ok {
		t.Fatal("ended query still known")
	}
}

func TestFresherThan(t *testing.T) {
	id := func(b byte) version.ID {
		var v version.ID
		v[0] = b
		return v
	}
	base := version.History{id(1)}
	longer := base.Append(id(2))
	concurrent := base.Append(id(3))

	tests := []struct {
		name      string
		candidate version.History
		best      version.History
		haveBest  bool
		want      bool
	}{
		{"no best yet", base, nil, false, true},
		{"causally newer", longer, base, true, true},
		{"causally older", base, longer, true, false},
		{"equal", base, base, true, false},
		{"concurrent longer wins", longer, version.History{id(9)}, true, true},
		{"concurrent head tiebreak", concurrent, longer, true, true},
		{"concurrent head tiebreak reverse", longer, concurrent, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := fresherThan(tt.candidate, tt.best, tt.haveBest); got != tt.want {
				t.Fatalf("fresherThan = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestKindAndSourceStrings(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindPush: "push", KindPullReq: "pull-req", KindPullResp: "pull-resp",
		KindAck: "ack", KindQuery: "query", KindQueryResp: "query-resp",
		Kind(42): "Kind(42)",
	} {
		if kind.String() != want {
			t.Fatalf("Kind %d = %q, want %q", int(kind), kind.String(), want)
		}
	}
	for src, want := range map[Source]string{
		SourceLocal: "local", SourcePush: "push", SourcePull: "pull",
		Source(9): "unknown",
	} {
		if src.String() != want {
			t.Fatalf("Source %d = %q, want %q", int(src), src.String(), want)
		}
	}
}
