package engine

import (
	"fmt"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// Kind discriminates protocol messages.
type Kind int

// Message kinds, mirroring the paper's protocol phases: push (§4.1–4.2),
// pull request/response (§4.3), acknowledgement (§6), and query (§4.4).
const (
	// KindPush carries an update push Push(U, V, R_f, t).
	KindPush Kind = iota + 1
	// KindPullReq asks for updates the sender is missing, summarised by its
	// vector clock.
	KindPullReq
	// KindPullResp ships the missing updates plus a membership sample.
	KindPullResp
	// KindAck acknowledges the first receipt of an update.
	KindAck
	// KindQuery asks a replica for its current revision of a key.
	KindQuery
	// KindQueryResp answers a query.
	KindQueryResp
	// KindSnapshot answers a pull request whose gap is compacted away (or
	// exceeds the snapshot threshold) with the responder's entire resident
	// state in one frame instead of an entry-by-entry delta.
	KindSnapshot
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPush:
		return "push"
	case KindPullReq:
		return "pull-req"
	case KindPullResp:
		return "pull-resp"
	case KindAck:
		return "ack"
	case KindQuery:
		return "query"
	case KindQueryResp:
		return "query-resp"
	case KindSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is the engine's transport-independent protocol message. Adapters
// convert it to and from their wire representation (typed simulator payloads
// with byte accounting, gob envelopes on TCP). Only the fields relevant to
// the Kind are set.
type Message[ID comparable] struct {
	// Kind selects which fields are meaningful.
	Kind Kind
	// Update carries the data item and its version for KindPush.
	Update store.Update
	// RF is the partial flooding list for KindPush; nil when the partial
	// list optimisation is disabled.
	RF []ID
	// T is the push round counter for KindPush; the initiator sends T = 0.
	T int
	// Clock is the requester's vector clock for KindPullReq.
	Clock version.Clock
	// Updates are the missing updates for KindPullResp.
	Updates []store.Update
	// Peers is a membership sample piggybacked on KindPullResp and
	// KindSnapshot — the name-dropper effect applied to the pull phase.
	Peers []ID
	// Snapshot is the responder's serialised resident state for
	// KindSnapshot, in the shared store snapshot encoding (resident log plus
	// compacted watermark).
	Snapshot []byte
	// UpdateRef identifies the acknowledged update for KindAck. The
	// comparable form keeps the ack path allocation-free; adapters render
	// the "origin/seq" string only at their wire boundary.
	UpdateRef store.Ref
	// QID correlates KindQuery/KindQueryResp pairs.
	QID int64
	// Key is the queried key for KindQuery/KindQueryResp.
	Key string
	// Found reports whether the responder holds a live revision
	// (KindQueryResp).
	Found bool
	// Value and Version carry the responder's winning revision
	// (KindQueryResp).
	Value   []byte
	Version version.History
	// Confident is false when the responder suspects it is stale (§6 lazy
	// pull).
	Confident bool
}

// Source identifies how an update reached a replica.
type Source int

// Update sources.
const (
	// SourceLocal marks updates created by this replica's own Publish or
	// Delete.
	SourceLocal Source = iota + 1
	// SourcePush marks updates received through the constrained-flooding
	// push phase.
	SourcePush
	// SourcePull marks updates obtained by anti-entropy pull
	// reconciliation.
	SourcePull
)

// String returns the source name.
func (s Source) String() string {
	switch s {
	case SourceLocal:
		return "local"
	case SourcePush:
		return "push"
	case SourcePull:
		return "pull"
	default:
		return "unknown"
	}
}
