package engine

// Benchmarks for the engine hot paths — the repo's first perf baseline for
// the protocol core now that simulator and live runtime share it. The three
// surfaces that dominate large runs: push handling (first receipts with
// carried lists, then the duplicate/merge path), pull reconciliation, and
// target sampling with the §6 ack preferences.

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// newBenchEngine builds an engine with n known peers and a discarding
// endpoint, so measurements cover the engine, not a transport.
func newBenchEngine(b *testing.B, n int, cfg Config[int]) (*Engine[int], *testEndpoint) {
	b.Helper()
	cfg.Population = n
	e, ep := newTestEngine(b, 0, cfg, nil)
	ep.discard = true
	for i := 1; i <= n; i++ {
		e.Learn(i)
	}
	return e, ep
}

// benchStamp and benchVersionID are shared by every benchmark update; the
// stores never compare versions across keys, so one id suffices and keeps
// id generation out of the measured loop.
var (
	benchStamp     = time.Unix(1_700_000_000, 0)
	benchVersionID = version.NewID(benchStamp, "writer", rand.New(rand.NewSource(1)))
)

// benchUpdate builds the i-th foreign update, each on its own key so store
// apply stays on the fresh-key fast path.
func benchUpdate(i int) store.Update {
	return store.Update{
		Origin:  "writer",
		Seq:     uint64(i + 1),
		Key:     "key-" + strconv.Itoa(i),
		Value:   []byte("value"),
		Version: version.History{benchVersionID},
		Stamp:   benchStamp,
	}
}

// benchRF builds a carried flooding list of k entries.
func benchRF(k int) []int {
	rf := make([]int, k)
	for i := range rf {
		rf[i] = i + 1
	}
	return rf
}

func BenchmarkHandlePushFirstReceipt(b *testing.B) {
	for _, listLen := range []int{0, 64, 512} {
		b.Run(fmt.Sprintf("carried=%d", listLen), func(b *testing.B) {
			e, _ := newBenchEngine(b, 1024, Config[int]{
				Fanout:      10,
				PartialList: true,
				ListMax:     64,
				NewPF:       func() pf.Func { return pf.NewAdaptive(0.9) },
			})
			rf := benchRF(listLen)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Handle(1, Message[int]{
					Kind: KindPush, Update: benchUpdate(i), RF: rf, T: 2,
				})
			}
		})
	}
}

func BenchmarkHandlePushDuplicate(b *testing.B) {
	e, _ := newBenchEngine(b, 1024, Config[int]{
		Fanout:      10,
		PartialList: true,
		NewPF:       func() pf.Func { return pf.NewAdaptive(0.9) },
	})
	u := benchUpdate(0)
	rf := benchRF(128)
	e.Handle(1, Message[int]{Kind: KindPush, Update: u, RF: rf, T: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Same update, same list: the pure duplicate/merge/observe path.
		e.Handle(2, Message[int]{Kind: KindPush, Update: u, RF: rf, T: 2})
	}
}

func BenchmarkPullReconciliation(b *testing.B) {
	// A replica holding updateCount updates serves a pull request from a
	// peer missing the newest `missing` of them.
	const updateCount, missing = 512, 32
	e, _ := newBenchEngine(b, 64, Config[int]{PullAttempts: 3})
	for i := 0; i < updateCount; i++ {
		e.Handle(1, Message[int]{Kind: KindPush, Update: benchUpdate(i), T: 1})
	}
	remote := version.NewClock()
	remote["writer"] = updateCount - missing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Handle(2, Message[int]{Kind: KindPullReq, Clock: remote})
	}
}

func BenchmarkSampleTargets(b *testing.B) {
	for _, tt := range []struct {
		name string
		acks bool
	}{
		{"plain", false},
		{"ack-preferences", true},
	} {
		b.Run(tt.name, func(b *testing.B) {
			cfg := Config[int]{Fanout: 10}
			if tt.acks {
				cfg.Acks = true
				cfg.AckTimeout = 1 << 40
				cfg.SuspectTTL = 1 << 40
			}
			e, _ := newBenchEngine(b, 1024, cfg)
			if tt.acks {
				// A quarter of the population has acked; a few suspects.
				for i := 1; i <= 256; i++ {
					e.Handle(i, Message[int]{Kind: KindAck})
				}
				for i := 900; i < 916; i++ {
					e.suspect(i, 0)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.SamplePeers(10)
			}
		})
	}
}

func BenchmarkCarriedTruncation(b *testing.B) {
	e, _ := newBenchEngine(b, 1024, Config[int]{PartialList: true, ListMax: 64})
	list := benchRF(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Carried(list)
	}
}
