package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/live"
	"github.com/p2pgossip/update/internal/simnet"
)

// These tests drive the same seeded workload through both engine adapters —
// the round-based simulator (internal/gossip over simnet) and the real-time
// runtime (internal/live over the in-memory Hub) — and require identical
// dissemination: the same delivered-update sets, the same per-node duplicate
// counts, and the same store contents. They are the proof obligation of the
// engine extraction: if either adapter deviated from the shared §4/§6 state
// machine (forgot to filter R_f, mangled the carried list, dropped the
// duplicate bookkeeping), the two runs would disagree.
//
// The workload is configured to be RNG-independent (full fanout, PF = 1, no
// churn), because the two adapters legitimately differ in randomness
// architecture: the simulator shares one engine-wide source, the live
// runtime seeds one per replica.

// crossPopulation is the cluster size; addresses/origins are "peer-<i>" on
// both sides so store contents are directly comparable.
const crossPopulation = 8

// crossWorkload publishes one key per writer, returning the update IDs.
var crossWriters = []int{0, 3, 5}

// dissemination is the adapter-independent outcome of a workload run.
type dissemination struct {
	// delivered[updateID][node] reports whether the node saw the update.
	delivered map[string]map[int]bool
	// dupes[updateID][node] is the node's duplicate-push count.
	dupes map[string]map[int]int
	// values[node][key] is the node's winning revision value.
	values map[int]map[string]string
	// clocks[node][origin] is the node's vector-clock entry.
	clocks map[int]map[string]uint64
}

func newDissemination() *dissemination {
	return &dissemination{
		delivered: make(map[string]map[int]bool),
		dupes:     make(map[string]map[int]int),
		values:    make(map[int]map[string]string),
		clocks:    make(map[int]map[string]uint64),
	}
}

func (d *dissemination) record(node int, ids []string, has func(string) bool,
	dupes func(string) int, get func(string) (string, bool), clock map[string]uint64) {
	d.values[node] = make(map[string]string)
	d.clocks[node] = clock
	for _, id := range ids {
		if d.delivered[id] == nil {
			d.delivered[id] = make(map[int]bool)
			d.dupes[id] = make(map[int]int)
		}
		d.delivered[id][node] = has(id)
		d.dupes[id][node] = dupes(id)
	}
	for _, w := range crossWriters {
		key := fmt.Sprintf("key-%d", w)
		if v, ok := get(key); ok {
			d.values[node][key] = v
		}
	}
}

func runSimWorkload(t *testing.T, partialList bool) *dissemination {
	t.Helper()
	cfg := gossip.DefaultConfig(crossPopulation)
	cfg.Fr = float64(crossPopulation-1) / float64(crossPopulation) // full fanout
	cfg.NewPF = nil                                                // PF(t) = 1
	cfg.PartialList = partialList
	cfg.PullAttempts = 0
	cfg.PullTimeout = 0
	net, err := gossip.BuildNetwork(crossPopulation, cfg, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: net.Nodes, InitialOnline: crossPopulation, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	var ids []string
	for _, w := range crossWriters {
		u := net.Peers[w].Publish(simnet.NewTestEnv(en, w),
			fmt.Sprintf("key-%d", w), []byte(fmt.Sprintf("value-%d", w)))
		ids = append(ids, u.ID())
		en.Run(20)
	}
	out := newDissemination()
	for i, p := range net.Peers {
		p := p
		out.record(i, ids, p.HasUpdate, p.Duplicates,
			func(key string) (string, bool) {
				rev, ok := p.Store().Get(key)
				return string(rev.Value), ok
			},
			clockMap(p.Store().Clock()))
	}
	return out
}

func runLiveWorkload(t *testing.T, partialList bool) *dissemination {
	t.Helper()
	hub := live.NewHub()
	replicas := make([]*live.Replica, crossPopulation)
	addrs := make([]string, crossPopulation)
	for i := range replicas {
		addrs[i] = fmt.Sprintf("peer-%d", i)
		tr, err := hub.Attach(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		r, err := live.NewReplica(live.Config{
			Fanout:       crossPopulation - 1, // full fanout
			PartialList:  partialList,
			PullAttempts: 0,
			Seed:         int64(i) + 1,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
	}
	for _, r := range replicas {
		r.AddPeers(addrs...)
	}
	// The replicas are never Started: with the pull phase disabled there is
	// no background activity, so every push cascade runs synchronously in
	// the publisher's goroutine and the run is deterministic.
	var ids []string
	for _, w := range crossWriters {
		u, _ := replicas[w].Publish(fmt.Sprintf("key-%d", w),
			[]byte(fmt.Sprintf("value-%d", w)))
		ids = append(ids, u.ID())
	}
	out := newDissemination()
	for i, r := range replicas {
		r := r
		out.record(i, ids, r.HasUpdate, r.Duplicates,
			func(key string) (string, bool) {
				rev, ok := r.Get(key)
				return string(rev.Value), ok
			},
			clockMap(r.Store().Clock()))
	}
	return out
}

func clockMap(c map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// TestCrossValidationSimVsLive pins the two adapters to identical
// dissemination for the same seeded workload.
func TestCrossValidationSimVsLive(t *testing.T) {
	for _, tt := range []struct {
		name        string
		partialList bool
		// wantDupes is the analytically expected duplicate count per node
		// (writerDupes for the writer of the update, otherDupes for
		// everyone else), making the comparison a three-way check:
		// simulator = live = theory.
		writerDupes, otherDupes int
	}{
		// Without partial lists every aware node forwards to everyone, so
		// each node receives n−1 copies: the writer sees n−1 duplicates,
		// everyone else one first receipt plus n−2 duplicates.
		{"flood-no-partial-list", false, crossPopulation - 1, crossPopulation - 2},
		// With carried lists the initiator's push already names the whole
		// population, so nobody forwards and nobody sees a duplicate.
		{"flood-partial-list", true, 0, 0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			sim := runSimWorkload(t, tt.partialList)
			lv := runLiveWorkload(t, tt.partialList)

			if !reflect.DeepEqual(sim.delivered, lv.delivered) {
				t.Fatalf("delivered sets differ:\nsim  %v\nlive %v", sim.delivered, lv.delivered)
			}
			if !reflect.DeepEqual(sim.dupes, lv.dupes) {
				t.Fatalf("duplicate counts differ:\nsim  %v\nlive %v", sim.dupes, lv.dupes)
			}
			if !reflect.DeepEqual(sim.values, lv.values) {
				t.Fatalf("store values differ:\nsim  %v\nlive %v", sim.values, lv.values)
			}
			if !reflect.DeepEqual(sim.clocks, lv.clocks) {
				t.Fatalf("vector clocks differ:\nsim  %v\nlive %v", sim.clocks, lv.clocks)
			}

			// Both must match the closed-form expectation, not just each
			// other.
			for _, w := range crossWriters {
				id := fmt.Sprintf("peer-%d/1", w)
				for node := 0; node < crossPopulation; node++ {
					if !sim.delivered[id][node] {
						t.Fatalf("update %s not delivered to node %d", id, node)
					}
					want := tt.otherDupes
					if node == w {
						want = tt.writerDupes
					}
					if got := sim.dupes[id][node]; got != want {
						t.Fatalf("node %d dupes for %s = %d, want %d", node, id, got, want)
					}
				}
			}
		})
	}
}
