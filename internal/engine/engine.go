// Package engine implements the paper's hybrid push/pull protocol state
// machine (§4.1–4.4, §6) exactly once, independent of transport and clock.
//
// The engine is generic over the peer identity type and talks to its host
// through the small Endpoint interface (identity, message delivery, time,
// randomness). Two adapters run the same state machine:
//
//   - internal/gossip drives it from the round-based simulator: int peer
//     indices, simnet delivery, one round = one tick;
//   - internal/live drives it in real time: string addresses, wire.Envelope
//     delivery over a Transport, UnixNano ticks.
//
// Because both layers share this code, every behavioural fix — and every
// §6 self-tuning signal, such as the flooding-list-fraction feedback into
// the adaptive PF schedule — lands on the simulated and the live path at
// once, and simulator scenarios exercise exactly the code that ships.
//
// The engine is deliberately single-threaded: it never locks, never spawns
// goroutines, and calls Endpoint.Send and hook callbacks synchronously.
// Concurrency is the adapter's concern (the simulator is synchronous by
// construction; the live runtime serialises calls behind a mutex and flushes
// queued sends after releasing it).
package engine

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// Endpoint is everything the engine needs from its host environment.
type Endpoint[ID comparable] interface {
	// Self returns the local peer's identity.
	Self() ID
	// Send delivers a protocol message to the given peer, best effort:
	// sends to offline peers are expected to vanish.
	Send(to ID, msg Message[ID])
	// Now returns the current time in ticks. The unit is the adapter's
	// choice (simulation rounds, nanoseconds); the Config timeouts use the
	// same unit.
	Now() int64
	// Rand returns the deterministic random source for protocol choices.
	Rand() *rand.Rand
}

// Hooks observes protocol-level events. All callbacks are optional and run
// synchronously inside engine calls; adapters that hold locks around the
// engine should queue the events and act after unlocking.
type Hooks[ID comparable] struct {
	// OnApply fires after an update is offered to the local store — created
	// locally, received by push, or reconciled by pull. branches is the
	// number of coexisting revisions of the key, counted atomically with
	// the apply.
	OnApply func(u store.Update, res store.ApplyResult, src Source, branches int)
	// OnDuplicate fires when a push arrives for an update already seen
	// (the §6 local tuning signal). branches is the key's current revision
	// count.
	OnDuplicate func(u store.Update, branches int)
	// OnLearned fires when a flooding list or membership sample taught the
	// engine count previously unknown replicas (the name-dropper effect).
	OnLearned func(count int)
	// OnAck fires when a peer acknowledges an update we pushed (§6).
	OnAck func(peer ID)
	// OnSuspect fires when a peer is suspected offline because its ack
	// never arrived (§6).
	OnSuspect func(peer ID)
}

// Config parameterises an engine. Timeouts are in Endpoint.Now ticks.
type Config[ID comparable] struct {
	// Fanout is the expected number of peers each push targets (the
	// paper's R·f_r). Fractional values are honoured by probabilistic
	// rounding.
	Fanout float64
	// NewPF builds the forwarding-probability schedule for one update. A
	// factory (rather than a shared instance) lets adaptive schedules keep
	// per-update state. Nil means PF(t) = 1.
	NewPF func() pf.Func
	// PartialList enables carrying the flooding list R_f on push messages.
	PartialList bool
	// ListMax caps the number of entries carried per push (the paper's
	// L_thr·R); 0 means unlimited.
	ListMax int
	// TruncatePolicy selects which entries to drop when truncating; the
	// zero value means replicalist.DropRandom.
	TruncatePolicy replicalist.TruncatePolicy
	// Population is the total replica count R used to normalise the
	// flooding-list length for the §6 adaptive-PF feedback. 0 means
	// dynamic: the membership view size plus one (the live runtime, where
	// R is not known a priori).
	Population int
	// PullAttempts is the number of peers contacted per pull batch. Zero
	// disables the pull phase entirely.
	PullAttempts int
	// LazyPull makes a waking peer wait for gossip instead of pulling
	// eagerly (§6); it then syncs when a pull request or query reveals it
	// may be stale.
	LazyPull bool
	// PullTimeout is the number of ticks without any received update after
	// which Tick triggers a pull ("no_updates_since(t)"). Zero disables
	// timeout-driven pulls.
	PullTimeout int64
	// PullGossipSample is the number of peer ids piggybacked on pull
	// responses; 0 means 16.
	PullGossipSample int
	// SnapshotCatchUp is the delta-size threshold of the snapshot catch-up
	// path: a pull request missing more than this many updates is answered
	// with a full snapshot frame instead of an entry-by-entry delta. 0
	// disables the size trigger; a gap below the compaction frontier is
	// always answered with a snapshot, since the delta no longer exists.
	SnapshotCatchUp int
	// FrontierTTL is how many ticks a peer's pull clock stays in the stable-
	// frontier bookkeeping. Expiring stale clocks lets the frontier advance
	// past long-gone peers — they are caught up by snapshot on return, which
	// is exactly what makes compacting their history safe. 0 keeps recorded
	// clocks forever.
	FrontierTTL int64
	// Acks enables the §6 acknowledgement optimisation: receivers ack the
	// first copy of each update; senders prefer acking peers and skip
	// suspected-offline ones.
	Acks bool
	// AckTimeout is how many ticks to wait for an ack before suspecting a
	// peer offline. Required (> 0) when Acks is set.
	AckTimeout int64
	// SuspectTTL is how many ticks suspected peers are skipped before
	// being re-admitted. Required (> 0) when Acks is set.
	SuspectTTL int64
	// LazySweep makes ack-deadline and suspect-expiry sweeps run during
	// peer sampling (the live runtime, which has no Tick). When false the
	// sweeps run only in Tick (the simulator's per-round model).
	LazySweep bool
	// QueryTimeout is the number of ticks after which an unanswered query
	// is finished with the responses at hand; 0 disables timeout expiry
	// (the live runtime bounds queries with contexts instead).
	QueryTimeout int64
	// QueryLocalVoice makes the local store participate in every query as
	// one more voice, so a fresh replica never answers worse than Get.
	QueryLocalVoice bool
	// DeferPullRender makes pull requests answered with an *unrendered*
	// intent: a KindPullResp message carrying only the requester's clock
	// (cloned into Message.Clock) and the gossiped peer sample, with no
	// updates. The adapter renders the actual delta — or snapshot — at
	// transmission time via RenderPullResp. This is the late-binding
	// contract of a coalescing sender: responses that wait behind a busy
	// link are merged by clock and re-rendered when the link frees, so the
	// requester receives the newest superset instead of a stale backlog.
	// Off (the default), responses are rendered eagerly inside handlePullReq
	// exactly as before.
	DeferPullRender bool
	// ValidID reports whether a peer identity learned from the wire is
	// usable as a protocol target. Nil accepts every non-self identity;
	// the live adapter rejects empty addresses, which a zero-valued gob
	// envelope would otherwise plant in the membership view and re-gossip
	// cluster-wide.
	ValidID func(ID) bool
	// Hooks observes protocol events.
	Hooks Hooks[ID]
}

// Validate reports whether the configuration is usable.
func (c Config[ID]) Validate() error {
	switch {
	case c.Fanout < 0:
		return fmt.Errorf("engine: fanout %g negative", c.Fanout)
	case c.ListMax < 0:
		return fmt.Errorf("engine: list max %d negative", c.ListMax)
	case c.Population < 0:
		return fmt.Errorf("engine: population %d negative", c.Population)
	case c.PullAttempts < 0:
		return fmt.Errorf("engine: pull attempts %d negative", c.PullAttempts)
	case c.PullTimeout < 0:
		return fmt.Errorf("engine: pull timeout %d negative", c.PullTimeout)
	case c.QueryTimeout < 0:
		return fmt.Errorf("engine: query timeout %d negative", c.QueryTimeout)
	case c.SnapshotCatchUp < 0:
		return fmt.Errorf("engine: snapshot catch-up threshold %d negative", c.SnapshotCatchUp)
	case c.FrontierTTL < 0:
		return fmt.Errorf("engine: frontier ttl %d negative", c.FrontierTTL)
	case c.Acks && c.AckTimeout <= 0:
		return fmt.Errorf("engine: acks enabled with ack timeout %d", c.AckTimeout)
	case c.Acks && c.SuspectTTL <= 0:
		return fmt.Errorf("engine: acks enabled with suspect ttl %d", c.SuspectTTL)
	default:
		return nil
	}
}

// updateState is the per-update bookkeeping: the accumulated flooding list,
// the duplicate count (the §6 local tuning metric), and the PF instance that
// decides forwarding.
type updateState[ID comparable] struct {
	rf    *orderedSet[ID]
	dupes int
	pfn   pf.Func
}

// pullClock is one entry of the stable-frontier bookkeeping: a peer's last
// pull-request clock and the tick it was recorded.
type pullClock struct {
	clock version.Clock
	at    int64
}

// deadline is one entry of a deadline queue: a peer and the tick the entry
// was created. Both the ack-await and the suspect bookkeeping push entries
// with monotone ticks, so each queue is processed strictly front to back.
type deadline[ID comparable] struct {
	peer ID
	at   int64
}

// deadlineQueue is a FIFO of (peer, tick) entries with amortised O(1) pop.
// It makes timeout sweeps proportional to the number of expired entries —
// not to the map size — and deterministic in order (insertion order, rather
// than map iteration luck).
type deadlineQueue[ID comparable] struct {
	items []deadline[ID]
	head  int
}

func (q *deadlineQueue[ID]) push(peer ID, at int64) {
	q.items = append(q.items, deadline[ID]{peer: peer, at: at})
}

func (q *deadlineQueue[ID]) peek() (deadline[ID], bool) {
	if q.head >= len(q.items) {
		return deadline[ID]{}, false
	}
	return q.items[q.head], true
}

func (q *deadlineQueue[ID]) pop() {
	q.head++
	if q.head == len(q.items) {
		// Fully drained: recycle the backing array.
		q.items = q.items[:0]
		q.head = 0
		return
	}
	// Reclaim the consumed prefix once it dominates the backing array, so a
	// queue that is never fully drained (a busy pusher always has a pending
	// ack deadline) still stays proportional to its live entries. The copy
	// is amortised O(1) per pop.
	if q.head >= 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
}

// Engine is one replica's instance of the protocol state machine. It is not
// safe for concurrent use; adapters serialise access.
type Engine[ID comparable] struct {
	cfg  Config[ID]
	ep   Endpoint[ID]
	self ID
	st   store.Backend
	w    *store.Writer

	view   *peerView[ID] // known replicas, never containing self
	states map[store.Ref]*updateState[ID]

	// scratch is the reusable peer-sampling buffer; sample takes it and
	// releaseScratch returns it, so the steady path allocates nothing.
	scratch []ID

	// lastReceived is the tick at which the engine last received any update
	// content (push or pull response), driving "no_updates_since(t)".
	lastReceived int64
	// pullClocks is the stable-frontier bookkeeping: the latest vector clock
	// each peer presented in a pull request, with the tick it arrived. Their
	// pointwise minimum is the compaction frontier — everything at or below
	// it is history every recently-heard peer already holds.
	pullClocks map[ID]pullClock
	// notConfident is set while a lazily-pulling peer has not yet synced
	// after coming online.
	notConfident bool

	// §6 ack optimisation state (only used when cfg.Acks). The maps are the
	// source of truth; the queues order the timeout sweeps and the acked
	// insertion list gives Acked a stable order.
	ackedBy     map[ID]int64      // peer → tick of their last ack to us
	ackedOrder  []ID              // peers in first-ack order
	suspects    map[ID]int64      // peer → tick we began suspecting them
	suspectQ    deadlineQueue[ID] // suspicion entries in creation order
	awaitingAck map[ID]int64      // peer → tick we first pushed to them unacked
	ackWaitQ    deadlineQueue[ID] // await entries in creation order

	// §4.4 query state.
	queries      map[int64]*queryState
	queryCounter int64
}

// New constructs an engine over the given endpoint, store, and writer. The
// adapter owns store and writer construction because identity, clocks, and
// seeding are adapter concerns.
func New[ID comparable](cfg Config[ID], ep Endpoint[ID], st store.Backend, w *store.Writer) (*Engine[ID], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ep == nil {
		return nil, fmt.Errorf("engine: nil endpoint")
	}
	if st == nil || w == nil {
		return nil, fmt.Errorf("engine: nil store or writer")
	}
	if cfg.TruncatePolicy == 0 {
		cfg.TruncatePolicy = replicalist.DropRandom
	}
	if cfg.PullGossipSample <= 0 {
		cfg.PullGossipSample = defaultPullGossipSample
	}
	return &Engine[ID]{
		cfg:         cfg,
		ep:          ep,
		self:        ep.Self(),
		st:          st,
		w:           w,
		view:        newPeerView[ID](16),
		states:      make(map[store.Ref]*updateState[ID]),
		pullClocks:  make(map[ID]pullClock),
		scratch:     make([]ID, 0, 16),
		ackedBy:     make(map[ID]int64),
		suspects:    make(map[ID]int64),
		awaitingAck: make(map[ID]int64),
		queries:     make(map[int64]*queryState),
	}, nil
}

// defaultPullGossipSample is the number of peer ids piggybacked on pull
// responses when the configuration does not say otherwise.
const defaultPullGossipSample = 16

// Store returns the engine's replica store.
func (e *Engine[ID]) Store() store.Backend { return e.st }

// Self returns the local peer identity.
func (e *Engine[ID]) Self() ID { return e.self }

// Restart resets the engine to what a freshly exec'd process attached to the
// same (restored) store would hold: membership view, per-update flooding
// lists and PF state, ack/suspect bookkeeping, and pending queries are all
// wiped; the store and writer — the durable state — are kept. Every update
// already in the store is re-registered so re-pushed copies count as
// duplicates instead of initiating a second flood, and the bootstrap peers
// are re-learned (the seed list a restarting replica reads from its config).
//
// Adapters restore the store from its snapshot *before* calling Restart, and
// resync their writer afterwards, so the re-registration sees the recovered
// log.
func (e *Engine[ID]) Restart(bootstrap []ID) {
	e.view = newPeerView[ID](16)
	e.states = make(map[store.Ref]*updateState[ID])
	e.ackedBy = make(map[ID]int64)
	e.ackedOrder = nil
	e.suspects = make(map[ID]int64)
	e.suspectQ = deadlineQueue[ID]{}
	e.awaitingAck = make(map[ID]int64)
	e.ackWaitQ = deadlineQueue[ID]{}
	e.queries = make(map[int64]*queryState)
	e.pullClocks = make(map[ID]pullClock)
	e.notConfident = false
	e.lastReceived = e.ep.Now()
	for _, u := range e.st.MissingFor(nil) {
		e.states[u.Ref()] = e.newState()
	}
	for _, id := range bootstrap {
		e.Learn(id)
	}
}

// --- Membership -------------------------------------------------------

// Learn adds id to the membership view (ignoring the peer itself and
// identities rejected by Config.ValidID) and reports whether it was new.
func (e *Engine[ID]) Learn(id ID) bool {
	if id == e.self || !e.validID(id) {
		return false
	}
	if !e.view.Add(id) {
		return false
	}
	if e.cfg.Acks {
		// Place the newcomer in the segment its ack history demands: a peer
		// can ack (or be suspected) before the membership view learns it.
		if _, suspected := e.suspects[id]; suspected {
			e.view.suspend(id)
		} else if _, acked := e.ackedBy[id]; acked {
			e.view.promote(id)
		}
	}
	return true
}

// validID applies the configured identity filter.
func (e *Engine[ID]) validID(id ID) bool {
	return e.cfg.ValidID == nil || e.cfg.ValidID(id)
}

// learnAll adds every id, firing the OnLearned hook with the number newly
// learned — the name-dropper effect materialising.
func (e *Engine[ID]) learnAll(ids []ID) {
	n := 0
	for _, id := range ids {
		if e.Learn(id) {
			n++
		}
	}
	if n > 0 && e.cfg.Hooks.OnLearned != nil {
		e.cfg.Hooks.OnLearned(n)
	}
}

// Knows reports whether id is in the membership view.
func (e *Engine[ID]) Knows(id ID) bool { return e.view.Contains(id) }

// KnownPeers returns a copy of the membership view. The order is
// unspecified: the view is kept partitioned for O(k) sampling, not sorted.
func (e *Engine[ID]) KnownPeers() []ID { return e.view.Slice() }

// KnownCount returns the number of known replicas.
func (e *Engine[ID]) KnownCount() int { return e.view.Len() }

// --- Update bookkeeping ----------------------------------------------

// HasUpdate reports whether the engine has processed the update with the
// given ID (store.Update.ID()). Internally per-update state is keyed by the
// comparable store.Ref; the string form exists only on this public surface.
func (e *Engine[ID]) HasUpdate(updateID string) bool {
	ref, err := store.ParseRef(updateID)
	if err != nil {
		return false
	}
	return e.HasRef(ref)
}

// HasRef reports whether the engine has processed the update with the given
// reference.
func (e *Engine[ID]) HasRef(ref store.Ref) bool {
	_, ok := e.states[ref]
	return ok
}

// Duplicates returns the duplicate-push count observed for an update.
func (e *Engine[ID]) Duplicates(updateID string) int {
	ref, err := store.ParseRef(updateID)
	if err != nil {
		return 0
	}
	if s, ok := e.states[ref]; ok {
		return s.dupes
	}
	return 0
}

// FloodingList returns the accumulated flooding list for an update, in
// insertion order, or nil if the update is unknown.
func (e *Engine[ID]) FloodingList(updateID string) []ID {
	ref, err := store.ParseRef(updateID)
	if err != nil {
		return nil
	}
	if s, ok := e.states[ref]; ok {
		return s.rf.Slice()
	}
	return nil
}

// NotConfident reports whether the engine is waiting to be synchronised
// after a lazy wake-up (§6).
func (e *Engine[ID]) NotConfident() bool { return e.notConfident }

func (e *Engine[ID]) newState() *updateState[ID] {
	s := &updateState[ID]{rf: newOrderedSet[ID](8)}
	if e.cfg.NewPF != nil {
		s.pfn = e.cfg.NewPF()
	} else {
		s.pfn = pf.Always()
	}
	return s
}

// --- Lifecycle callbacks ---------------------------------------------

// CameOnline is the pull-phase trigger: an eagerly-pulling peer contacts
// PullAttempts replicas at once; a lazy one (§6) waits for gossip and marks
// itself not confident.
func (e *Engine[ID]) CameOnline() {
	if e.cfg.PullAttempts <= 0 {
		return
	}
	if e.cfg.LazyPull {
		e.notConfident = true
		return
	}
	e.sendPull()
}

// Tick runs the periodic sweeps: suspect expiry, ack-deadline detection,
// query expiry, and the "no_updates_since(t)" timeout pull. Round-driven
// adapters call it once per round; the live runtime relies on LazySweep and
// wall-clock schedulers instead.
func (e *Engine[ID]) Tick() {
	now := e.ep.Now()
	e.expireSuspects(now)
	e.detectMissingAcks(now)
	e.expireQueries(now)
	if e.cfg.PullTimeout > 0 && e.cfg.PullAttempts > 0 &&
		now-e.lastReceived > e.cfg.PullTimeout {
		e.sendPull()
		e.lastReceived = now // rate-limit timeout pulls
	}
}

// Handle dispatches one inbound protocol message.
func (e *Engine[ID]) Handle(from ID, m Message[ID]) {
	switch m.Kind {
	case KindPush:
		e.handlePush(from, m)
	case KindPullReq:
		e.handlePullReq(from, m)
	case KindPullResp:
		e.handlePullResp(from, m)
	case KindAck:
		e.handleAck(from)
	case KindQuery:
		e.handleQuery(from, m)
	case KindQueryResp:
		e.handleQueryResp(m)
	case KindSnapshot:
		e.handleSnapshot(from, m)
	}
}

// --- Push phase (§4.1–4.2) -------------------------------------------

// Publish creates an update for key/value and initiates its push phase (the
// paper's round 0).
func (e *Engine[ID]) Publish(key string, value []byte) store.Update {
	u, branches := e.w.PutObserved(key, value)
	e.PublishApplied(u, branches)
	return u
}

// PublishDelete creates a tombstone update and initiates its push phase.
func (e *Engine[ID]) PublishDelete(key string) store.Update {
	u, branches := e.w.DeleteObserved(key)
	e.PublishApplied(u, branches)
	return u
}

// PublishApplied initiates the push phase for an update the adapter already
// created through the engine's shared Writer and applied to the store.
// branches is the revision count from the apply. It is the parallel-ingest
// half of Publish: the live runtime runs the writer outside its engine lock
// (the Writer serialises itself, and the sharded store stripes the apply) and
// enters the engine only for the protocol bookkeeping.
func (e *Engine[ID]) PublishApplied(u store.Update, branches int) {
	e.fireApply(u, store.Applied, SourceLocal, branches)
	e.initiate(u)
}

func (e *Engine[ID]) initiate(u store.Update) {
	state := e.newState()
	e.states[u.Ref()] = state
	e.lastReceived = e.ep.Now()

	targets := e.sample(e.fanout())
	state.rf.AddAll(targets)
	state.rf.Add(e.self)
	e.sendPushes(u, targets, state, 0)
	e.releaseScratch(targets)
}

// Applied carries the outcome of a store apply the adapter performed before
// entering the engine — the parallel-ingest contract: connection readers
// apply to the (sharded, lock-striped) store concurrently, then enter the
// engine's small critical section with only the result.
type Applied struct {
	// Res classifies the store outcome.
	Res store.ApplyResult
	// Branches is the key's revision count, counted atomically with the
	// apply.
	Branches int
}

// HandlePushApplied is Handle for a KindPush message whose update the
// adapter already applied to the store. The engine performs only protocol
// bookkeeping: membership, duplicate tuning, ack, and the forwarding
// decision.
//
// A racing twin of the same update may have entered the engine first; the
// message is then treated as a duplicate exactly as if the store had been
// consulted under the engine's serialisation.
func (e *Engine[ID]) HandlePushApplied(from ID, m Message[ID], pre Applied) {
	e.pushReceived(from, m, &pre)
}

func (e *Engine[ID]) handlePush(from ID, m Message[ID]) {
	e.pushReceived(from, m, nil)
}

func (e *Engine[ID]) pushReceived(from ID, m Message[ID], pre *Applied) {
	// Name-dropper: every push teaches us replicas we did not know.
	e.learnAll(m.RF)
	e.Learn(from)

	ref := m.Update.Ref()
	if state, ok := e.states[ref]; ok {
		// Duplicate: feed the local tuning metrics (§6) and merge the
		// incoming list — "it can use the list of 'updated replicas' in
		// each of those messages" (§4.2).
		state.dupes++
		state.rf.AddAll(m.RF)
		if ad, ok := state.pfn.(*pf.Adaptive); ok {
			ad.ObserveDuplicate()
			ad.ObserveListFraction(e.listFraction(state))
		}
		if e.cfg.Hooks.OnDuplicate != nil {
			e.cfg.Hooks.OnDuplicate(m.Update, e.st.BranchCount(m.Update.Key))
		}
		return
	}

	// First receipt: process the update.
	var applied store.ApplyResult
	var branches int
	if pre != nil {
		applied, branches = pre.Res, pre.Branches
	} else {
		applied, branches = e.st.ApplyObserved(m.Update)
	}
	e.lastReceived = e.ep.Now()
	e.notConfident = false
	state := e.newState()
	state.rf.AddAll(m.RF)
	state.rf.Add(e.self)
	e.states[ref] = state

	if e.cfg.Acks && e.validID(from) {
		e.ep.Send(from, Message[ID]{Kind: KindAck, UpdateRef: ref})
	}

	if ad, ok := state.pfn.(*pf.Adaptive); ok {
		// §6 speculation: the flooding list on the incoming push estimates
		// how far the update has already been sent, and unlike duplicate
		// counts it is available before the forwarding decision below.
		ad.ObserveListFraction(e.listFraction(state))
	}
	e.fireApply(m.Update, applied, SourcePush, branches)

	// Forward with probability PF(t+1). Per the paper, R_p is a *uniform*
	// random subset of known replicas; the message goes to R_p \ R_f only,
	// which is where the partial list saves messages (the (1−f_r)^t factor
	// of the analysis), and the new list is R_f ∪ R_p.
	t := m.T + 1
	if e.ep.Rand().Float64() >= state.pfn.P(t) {
		return
	}
	rp := e.sample(e.fanout())
	// Merge R_p into R_f and keep R_p \ R_f(old) in one pass: Add reports
	// exactly "was not in R_f", and a sample has no repeats, so the kept
	// prefix is the old filter-then-union without a second buffer.
	targets := rp[:0]
	for _, candidate := range rp {
		if state.rf.Add(candidate) {
			targets = append(targets, candidate)
		}
	}
	e.sendPushes(m.Update, targets, state, t)
	e.releaseScratch(rp)
}

func (e *Engine[ID]) sendPushes(u store.Update, targets []ID, state *updateState[ID], t int) {
	if len(targets) == 0 {
		return
	}
	// Render the carried list once per push batch; every target gets the
	// same copy.
	carried := e.carried(state.rf)
	now := e.ep.Now()
	for _, target := range targets {
		if e.cfg.Acks {
			if _, pending := e.awaitingAck[target]; !pending {
				e.awaitingAck[target] = now
				e.ackWaitQ.push(target, now)
			}
		}
		e.ep.Send(target, Message[ID]{Kind: KindPush, Update: u, RF: carried, T: t})
	}
}

// carried renders a flooding list for the wire, applying the ListMax
// truncation (§4.2). The local accumulated list is never truncated — only
// the transmitted copy. When no truncation applies the backing slice is
// shared rather than copied: an orderedSet only ever appends, so an aliased
// prefix stays valid even as the set keeps growing.
func (e *Engine[ID]) carried(rf *orderedSet[ID]) []ID {
	if !e.cfg.PartialList {
		return nil
	}
	if e.cfg.ListMax > 0 && rf.Len() > e.cfg.ListMax {
		return rf.Truncated(e.cfg.ListMax, e.cfg.TruncatePolicy, e.ep.Rand())
	}
	return rf.View()
}

// Carried renders an arbitrary accumulated list for the wire per the
// engine's partial-list configuration, for tests and benchmarks. The input
// stands in for an accumulated flooding list, so it is assumed free of
// duplicates.
func (e *Engine[ID]) Carried(list []ID) []ID {
	if !e.cfg.PartialList {
		return nil
	}
	if e.cfg.ListMax > 0 && len(list) > e.cfg.ListMax {
		return replicalist.TruncatedCopy(list, e.cfg.ListMax, e.cfg.TruncatePolicy, e.ep.Rand())
	}
	return list
}

// listFraction estimates the fraction of the replica population an update
// has already been sent to, from its flooding-list length — the paper's
// normalised list length L(t), the feed-forward signal of the §6 adaptive
// PF. With a configured Population it is len/R (the simulator's model);
// otherwise the known population stands in for R (the live runtime).
func (e *Engine[ID]) listFraction(state *updateState[ID]) float64 {
	population := e.cfg.Population
	if population <= 0 {
		population = e.view.Len() + 1
	}
	return float64(state.rf.Len()) / float64(population)
}

// fanout draws the per-push target count: Fanout with probabilistic rounding
// so that fractional expected fanouts are honoured. Integer fanouts draw no
// randomness, keeping adapter streams aligned.
func (e *Engine[ID]) fanout() int {
	exact := e.cfg.Fanout
	k := int(exact)
	if frac := exact - float64(k); frac > 0 && e.ep.Rand().Float64() < frac {
		k++
	}
	return k
}

// fireApply reports one apply outcome to the OnApply hook.
func (e *Engine[ID]) fireApply(u store.Update, res store.ApplyResult, src Source, branches int) {
	if e.cfg.Hooks.OnApply != nil {
		e.cfg.Hooks.OnApply(u, res, src, branches)
	}
}

// --- Pull phase (§4.3) -----------------------------------------------

// PullNow sends one pull batch immediately: PullAttempts random known
// replicas receive our vector clock. "it is preferable to contact multiple
// peers and choose the most up to date peer(s) among them" (§3) — with
// clock-based diffs, applying all responses is equivalent to choosing the
// freshest.
func (e *Engine[ID]) PullNow() { e.sendPull() }

func (e *Engine[ID]) sendPull() {
	targets := e.sample(e.cfg.PullAttempts)
	if len(targets) == 0 {
		e.releaseScratch(targets)
		return
	}
	clock := e.st.Clock()
	for _, target := range targets {
		e.ep.Send(target, Message[ID]{Kind: KindPullReq, Clock: clock})
	}
	e.releaseScratch(targets)
}

func (e *Engine[ID]) handlePullReq(from ID, m Message[ID]) {
	e.Learn(from)
	e.recordPullClock(from, m.Clock)
	sample := e.sampleExcluding(e.cfg.PullGossipSample, from)
	// The sample aliases the engine's scratch buffer; the message escapes to
	// the adapter, so it gets its own copy.
	var peers []ID
	if len(sample) > 0 {
		peers = append([]ID(nil), sample...)
	}
	e.releaseScratch(sample)

	if e.cfg.DeferPullRender {
		// Late-binding: ship only the intent (requester clock + peer
		// gossip); the adapter calls RenderPullResp when the message
		// actually leaves, so a response that waited behind a slow link
		// serves the newest state, not the state at enqueue time. The clock
		// is cloned because inbound messages may alias decoder scratch.
		e.ep.Send(from, Message[ID]{Kind: KindPullResp, Clock: m.Clock.Clone(), Peers: peers})
	} else if updates, snapshot, ok := e.RenderPullResp(m.Clock); ok {
		if snapshot != nil {
			e.ep.Send(from, Message[ID]{Kind: KindSnapshot, Snapshot: snapshot, Peers: peers})
		} else {
			e.ep.Send(from, Message[ID]{Kind: KindPullResp, Updates: updates, Peers: peers})
		}
	}

	// "receives a pull request, but is not sure to have the latest update"
	// (§3): a stale or lazily-woken peer answers and synchronises itself.
	now := e.ep.Now()
	stale := e.cfg.PullTimeout > 0 && now-e.lastReceived > e.cfg.PullTimeout
	if (e.notConfident || stale) && e.cfg.PullAttempts > 0 {
		e.sendPull()
		e.lastReceived = now
	}
}

// RenderPullResp renders the reply to a pull request that presented the
// given clock, at whatever moment the adapter transmits it. It is the
// snapshot-vs-delta decision of the pull phase: a gap that compaction has
// dropped can only be served as a snapshot, a gap above SnapshotCatchUp is
// cheaper as one, and everything else ships the exact missing run. A non-nil
// snapshot means one KindSnapshot frame; otherwise updates (possibly empty)
// go out as a KindPullResp. ok is false only when the delta is gone and the
// snapshot failed to encode — nothing useful to send.
//
// With Config.DeferPullRender the adapter calls this at send time (it reads
// only the store and immutable configuration, so a live adapter may call it
// without holding its engine lock); without it, handlePullReq calls it
// eagerly.
func (e *Engine[ID]) RenderPullResp(clock version.Clock) (updates []store.Update, snapshot []byte, ok bool) {
	missing, complete := e.st.DeltaFor(clock)
	if !complete || (e.cfg.SnapshotCatchUp > 0 && len(missing) > e.cfg.SnapshotCatchUp) {
		var buf bytes.Buffer
		if err := e.st.WriteSnapshot(&buf); err == nil {
			return nil, buf.Bytes(), true
		}
		if !complete {
			// Encoding to memory failing is effectively unreachable; with the
			// delta also compacted away there is nothing left to serve.
			return nil, nil, false
		}
		// Keep the peer live on the delta when we still have one.
	}
	return missing, nil, true
}

// RenderPush renders the carried flooding list for a pending push of ref at
// transmission time — the second late-binding hook of the coalescing sender.
// A push that waited behind a busy link leaves with the list accumulated up
// to the moment of transmission (every duplicate heard in between merged
// in), not the copy frozen when the forward was decided, so slow links
// propagate strictly better dedup information. ok is false when the engine
// no longer tracks the update (a restart wiped volatile state); such a push
// still travels, with an empty list. Must be called under the adapter's
// engine serialisation: it reads per-update state and may draw randomness
// for the ListMax truncation.
func (e *Engine[ID]) RenderPush(ref store.Ref) (rf []ID, ok bool) {
	state, ok := e.states[ref]
	if !ok {
		return nil, false
	}
	return e.carried(state.rf), true
}

// recordPullClock files the requester's clock into the stable-frontier
// bookkeeping. The clock is cloned: inbound messages may alias decoder
// scratch that the adapter reuses for the next frame.
func (e *Engine[ID]) recordPullClock(from ID, clock version.Clock) {
	if from == e.self || !e.validID(from) {
		return
	}
	e.pullClocks[from] = pullClock{clock: clock.Clone(), at: e.ep.Now()}
}

// StableFrontier returns the pointwise minimum clock across every peer whose
// pull request was heard within FrontierTTL ticks, or nil when none is
// known. Everything at or below the frontier has been seen by every
// recently-heard peer, so the store may compact it away; anyone further
// behind — including peers whose stale clocks FrontierTTL just expired — is
// caught up by snapshot instead. Expired entries are pruned as a side
// effect.
func (e *Engine[ID]) StableFrontier() version.Clock {
	now := e.ep.Now()
	var frontier version.Clock
	for id, pc := range e.pullClocks {
		if e.cfg.FrontierTTL > 0 && now-pc.at > e.cfg.FrontierTTL {
			delete(e.pullClocks, id)
			continue
		}
		if frontier == nil {
			frontier = pc.clock.Clone()
			continue
		}
		for origin := range frontier {
			if c := pc.clock.Get(origin); c < frontier[origin] {
				if c == 0 {
					delete(frontier, origin)
				} else {
					frontier[origin] = c
				}
			}
		}
	}
	return frontier
}

// handleSnapshot ingests a snapshot catch-up frame: apply every update it
// carries (registering engine state so re-pushed copies count as
// duplicates), then adopt the sender's compacted watermark so our clock
// jumps the holes its compaction left. The updates count as pull traffic for
// the hooks — a snapshot is anti-entropy in one frame.
func (e *Engine[ID]) handleSnapshot(from ID, m Message[ID]) {
	e.Learn(from)
	e.learnAll(m.Peers)
	updates, wm, err := store.DecodeSnapshot(bytes.NewReader(m.Snapshot))
	if err != nil {
		return
	}
	for _, u := range updates {
		applied, branches := e.st.ApplyObserved(u)
		if _, ok := e.states[u.Ref()]; !ok {
			e.states[u.Ref()] = e.newState()
		}
		e.fireApply(u, applied, SourcePull, branches)
	}
	e.st.AdoptFrontier(wm)
	e.notConfident = false
	e.lastReceived = e.ep.Now()
}

// HandleSnapshotApplied is Handle for a KindSnapshot message whose payload
// the adapter already decoded, applied to the store, and adopted; refs
// identifies every update the snapshot carried. See HandlePushApplied.
func (e *Engine[ID]) HandleSnapshotApplied(from ID, m Message[ID], refs []store.Ref) {
	e.Learn(from)
	e.learnAll(m.Peers)
	for _, ref := range refs {
		if _, ok := e.states[ref]; !ok {
			e.states[ref] = e.newState()
		}
	}
	e.notConfident = false
	e.lastReceived = e.ep.Now()
}

// HandlePullRespApplied is Handle for a KindPullResp message whose updates
// the adapter already applied to the store, in order; pre[i] is the outcome
// of m.Updates[i]. See HandlePushApplied.
func (e *Engine[ID]) HandlePullRespApplied(from ID, m Message[ID], pre []Applied) {
	e.pullRespReceived(from, m, pre)
}

func (e *Engine[ID]) handlePullResp(from ID, m Message[ID]) {
	e.pullRespReceived(from, m, nil)
}

func (e *Engine[ID]) pullRespReceived(from ID, m Message[ID], pre []Applied) {
	e.Learn(from)
	e.learnAll(m.Peers)
	gotNew := false
	for i, u := range m.Updates {
		var applied store.ApplyResult
		var branches int
		if pre != nil {
			applied, branches = pre[i].Res, pre[i].Branches
		} else {
			applied, branches = e.st.ApplyObserved(u)
		}
		if applied == store.Applied {
			gotNew = true
		}
		if _, ok := e.states[u.Ref()]; !ok {
			// Updates learned by pull are not re-pushed: the push phase has
			// already saturated the online population (§4.3's optimism).
			e.states[u.Ref()] = e.newState()
		}
		e.fireApply(u, applied, SourcePull, branches)
	}
	if gotNew || len(m.Updates) == 0 {
		// Either fresh data, or confirmation that we were current.
		e.notConfident = false
		e.lastReceived = e.ep.Now()
	}
}

// --- Acknowledgements (§6) -------------------------------------------

func (e *Engine[ID]) handleAck(from ID) {
	if _, seen := e.ackedBy[from]; !seen {
		e.ackedOrder = append(e.ackedOrder, from)
	}
	e.ackedBy[from] = e.ep.Now()
	delete(e.suspects, from)
	delete(e.awaitingAck, from)
	if e.cfg.Acks {
		e.view.promote(from)
	}
	if e.cfg.Hooks.OnAck != nil {
		e.cfg.Hooks.OnAck(from)
	}
}

// suspect marks a peer as suspected offline: recorded in the suspect map and
// expiry queue, and moved to the view's suspended segment so sampling skips
// it without scanning.
func (e *Engine[ID]) suspect(peer ID, now int64) {
	e.suspects[peer] = now
	e.suspectQ.push(peer, now)
	e.view.suspend(peer)
	if e.cfg.Hooks.OnSuspect != nil {
		e.cfg.Hooks.OnSuspect(peer)
	}
}

// detectMissingAcks moves peers whose ack is overdue onto the suspect list
// (§6: the pusher assumes they are offline and skips them for a while). The
// await queue is in creation order with monotone ticks, so the sweep pops
// expired entries from the front and stops at the first live one — O(1) per
// call plus O(1) amortised per expiry, instead of a full map scan.
func (e *Engine[ID]) detectMissingAcks(now int64) {
	if !e.cfg.Acks {
		return
	}
	for {
		head, ok := e.ackWaitQ.peek()
		if !ok || now-head.at < e.cfg.AckTimeout {
			return
		}
		e.ackWaitQ.pop()
		// Stale entries — the peer acked, or was re-pushed after an earlier
		// resolution — no longer match the map and are skipped.
		if sentAt, pending := e.awaitingAck[head.peer]; pending && sentAt == head.at {
			delete(e.awaitingAck, head.peer)
			e.suspect(head.peer, now)
		}
	}
}

// expireSuspects re-admits suspects after SuspectTTL ticks — "it is
// desirable that [the pusher] again forwards updates to [the peer] in remote
// future" (§6). Like the ack sweep it pops the queue front instead of
// scanning the map.
func (e *Engine[ID]) expireSuspects(now int64) {
	if !e.cfg.Acks {
		return
	}
	for {
		head, ok := e.suspectQ.peek()
		if !ok || now-head.at <= e.cfg.SuspectTTL {
			return
		}
		e.suspectQ.pop()
		if since, suspected := e.suspects[head.peer]; suspected && since == head.at {
			delete(e.suspects, head.peer)
			_, acked := e.ackedBy[head.peer]
			e.view.release(head.peer, acked)
		}
	}
}

// Sweep runs the ack-deadline and suspect-expiry sweeps immediately, for
// adapters and tests that need them outside Tick and sampling.
func (e *Engine[ID]) Sweep() {
	now := e.ep.Now()
	e.detectMissingAcks(now)
	e.expireSuspects(now)
}

// Suspects returns the peers currently suspected offline, in the order the
// suspicions were raised.
func (e *Engine[ID]) Suspects() []ID {
	return liveQueueEntries(&e.suspectQ, e.suspects)
}

// AwaitingAck returns the peers with an outstanding ack expectation, in the
// order the expectations were created.
func (e *Engine[ID]) AwaitingAck() []ID {
	return liveQueueEntries(&e.ackWaitQ, e.awaitingAck)
}

// liveQueueEntries walks a deadline queue in insertion order and keeps each
// peer whose live map entry matches the queued tick, once. The dedup
// matters when an entry is resolved and recreated within the same tick
// (synchronous adapters, coarse clocks): both queue entries then match the
// map, but the peer has only one live expectation.
func liveQueueEntries[ID comparable](q *deadlineQueue[ID], live map[ID]int64) []ID {
	out := make([]ID, 0, len(live))
	seen := make(map[ID]struct{}, len(live))
	for _, entry := range q.items[q.head:] {
		if at, ok := live[entry.peer]; !ok || at != entry.at {
			continue
		}
		if _, dup := seen[entry.peer]; dup {
			continue
		}
		seen[entry.peer] = struct{}{}
		out = append(out, entry.peer)
	}
	return out
}

// Acked returns the peers that have acknowledged a push, in first-ack order.
func (e *Engine[ID]) Acked() []ID {
	return append([]ID(nil), e.ackedOrder...)
}

// --- Target selection ------------------------------------------------

// SamplePeers draws up to k distinct known peers with the §6 ack
// preferences applied, for adapters and tests; it is the same choice the
// push and pull phases use.
func (e *Engine[ID]) SamplePeers(k int) []ID {
	out := e.sample(k)
	if out == nil {
		return nil
	}
	// The internal sample aliases the engine's scratch buffer; public
	// callers get a copy they may keep.
	kept := append([]ID(nil), out...)
	e.releaseScratch(out)
	return kept
}

// takeScratch claims the engine's reusable sampling buffer. A reentrant
// engine call (a synchronous adapter delivering a reply mid-send-loop) finds
// the buffer already claimed and falls back to a fresh allocation, which the
// matching releaseScratch then adopts for future calls.
func (e *Engine[ID]) takeScratch() []ID {
	buf := e.scratch
	e.scratch = nil
	if buf == nil {
		buf = make([]ID, 0, 16)
	}
	return buf[:0]
}

// releaseScratch returns a buffer obtained from sample/sampleExcluding.
func (e *Engine[ID]) releaseScratch(buf []ID) {
	if buf != nil {
		e.scratch = buf
	}
}

// sample draws up to k distinct known peers. With acks enabled,
// suspected-offline peers are skipped and recently-acking peers are
// preferred (§6). It is the "random subset R_p" choice of the push phase and
// the random peer choice of the pull phase.
//
// The result aliases the engine's scratch buffer: callers use it and hand it
// back with releaseScratch, copying first if it escapes the engine. The view
// keeps preferred/available/suspended peers in contiguous segments, so a
// draw is a partial Fisher–Yates costing O(k) — independent of the view size
// — and allocation-free on the steady path.
func (e *Engine[ID]) sample(k int) []ID {
	var zero ID
	return e.sampleFrom(k, zero, false)
}

// sampleExcluding is sample with one peer excluded — the pull-response path,
// which must not gossip the requester back to itself. The exclusion is a
// constant-time segment shrink, not a per-candidate filter.
func (e *Engine[ID]) sampleExcluding(k int, exclude ID) []ID {
	return e.sampleFrom(k, exclude, true)
}

func (e *Engine[ID]) sampleFrom(k int, exclude ID, haveExclude bool) []ID {
	if k <= 0 || e.view.Len() == 0 {
		return nil
	}
	if e.cfg.Acks && e.cfg.LazySweep {
		now := e.ep.Now()
		e.detectMissingAcks(now)
		e.expireSuspects(now)
	}
	out := e.takeScratch()
	return e.view.sampleInto(out, k, e.ep.Rand(), exclude, haveExclude)
}
