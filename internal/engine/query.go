package engine

import (
	"bytes"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// This file implements §4.4 of the paper: servicing requests under updates.
// A query is sent to several replicas in parallel ("we may define some
// majority logic, or use a version scheme for identifying latest updates, or
// a hybrid of the two"); the requester keeps the response with the freshest
// version. A replica that is not confident of its own freshness (lazy pull,
// §6) answers with what it has, flags the answer as unconfident, and
// initiates its own pull.

// QueryResult is the requester-side aggregation of one query.
type QueryResult struct {
	// Key is the queried item.
	Key string
	// Found reports whether any response carried a live revision.
	Found bool
	// Value and Version are the freshest revision seen.
	Value   []byte
	Version version.History
	// Stamp is the freshest revision's timestamp when known (local voice).
	Stamp time.Time
	// Responses is the number of answers received so far.
	Responses int
	// Unconfident counts answers flagged as possibly stale.
	Unconfident int
	// Done is set once the expected number of responses arrived or the
	// query timed out.
	Done bool
}

// queryState is the in-flight bookkeeping for one query.
type queryState struct {
	result  QueryResult
	want    int
	started int64
	notify  func()
}

// Query sends the key to k known replicas and returns a query id to poll
// with QueryResult. k is capped by the view size; k ≤ 0 defaults to the
// configured PullAttempts (or 3).
func (e *Engine[ID]) Query(key string, k int) int64 {
	return e.QueryNotify(key, k, nil)
}

// QueryNotify is Query with a callback invoked after every response is
// aggregated (and immediately when the query resolves locally), so blocking
// adapters can wait for progress instead of polling.
func (e *Engine[ID]) QueryNotify(key string, k int, notify func()) int64 {
	if k <= 0 {
		k = e.cfg.PullAttempts
		if k <= 0 {
			k = 3
		}
	}
	e.queryCounter++
	qid := e.queryCounter
	targets := e.sample(k)
	state := &queryState{
		result:  QueryResult{Key: key},
		want:    len(targets),
		started: e.ep.Now(),
		notify:  notify,
	}
	e.queries[qid] = state
	if e.cfg.QueryLocalVoice {
		// The local store participates as one more voice, so a query on a
		// fresh replica never returns worse data than a plain read.
		if rev, ok := e.st.Get(key); ok {
			state.result.Found = true
			state.result.Value = rev.Value
			state.result.Version = rev.Version
			state.result.Stamp = rev.Stamp
		}
	}
	if len(targets) == 0 {
		e.releaseScratch(targets)
		// Nobody to ask: answer from local state immediately.
		if !e.cfg.QueryLocalVoice {
			e.resolveQueryLocal(state)
		}
		state.result.Done = true
		if notify != nil {
			notify()
		}
		return qid
	}
	for _, target := range targets {
		e.ep.Send(target, Message[ID]{Kind: KindQuery, QID: qid, Key: key})
	}
	e.releaseScratch(targets)
	return qid
}

// QueryResult returns the current aggregation for a query id. The boolean
// reports whether the id is known.
func (e *Engine[ID]) QueryResult(qid int64) (QueryResult, bool) {
	state, ok := e.queries[qid]
	if !ok {
		return QueryResult{}, false
	}
	return state.result, true
}

// EndQuery discards the bookkeeping for a query id; late answers are then
// ignored.
func (e *Engine[ID]) EndQuery(qid int64) { delete(e.queries, qid) }

func (e *Engine[ID]) handleQuery(from ID, m Message[ID]) {
	e.Learn(from)
	resp := Message[ID]{
		Kind: KindQueryResp, QID: m.QID, Key: m.Key, Confident: !e.notConfident,
	}
	if rev, ok := e.st.Get(m.Key); ok {
		resp.Found = true
		resp.Value = rev.Value
		resp.Version = rev.Version
	}
	e.ep.Send(from, resp)

	// §6: a lazily-woken replica cannot trust its answer; the query forces
	// it to synchronise.
	if e.notConfident && e.cfg.PullAttempts > 0 {
		e.sendPull()
	}
}

func (e *Engine[ID]) handleQueryResp(m Message[ID]) {
	state, ok := e.queries[m.QID]
	if !ok || state.result.Done {
		return
	}
	res := &state.result
	res.Responses++
	if !m.Confident {
		res.Unconfident++
	}
	if m.Found && fresherThan(m.Version, res.Version, res.Found) {
		res.Found = true
		res.Value = m.Value
		res.Version = m.Version
		res.Stamp = time.Time{} // remote answers carry no stamp
	}
	if res.Responses >= state.want {
		res.Done = true
	}
	if state.notify != nil {
		state.notify()
	}
}

// expireQueries finishes queries whose responses did not all arrive within
// the timeout (responders offline).
func (e *Engine[ID]) expireQueries(now int64) {
	if e.cfg.QueryTimeout <= 0 {
		return
	}
	for _, state := range e.queries {
		if !state.result.Done && now-state.started > e.cfg.QueryTimeout {
			state.result.Done = true
			if state.notify != nil {
				state.notify()
			}
		}
	}
}

// resolveQueryLocal resolves a query against only the local store.
func (e *Engine[ID]) resolveQueryLocal(state *queryState) {
	if rev, ok := e.st.Get(state.result.Key); ok {
		state.result.Found = true
		state.result.Value = rev.Value
		state.result.Version = rev.Version
		state.result.Stamp = rev.Stamp
	}
}

// fresherThan reports whether candidate is strictly fresher than the current
// best (absent best counts as stale). Causally newer wins; concurrent
// versions fall back to the deterministic rule used by the store: longer
// history, then larger head identifier.
func fresherThan(candidate, best version.History, haveBest bool) bool {
	if !haveBest {
		return true
	}
	switch candidate.Compare(best) {
	case version.After:
		return true
	case version.Before, version.Equal:
		return false
	default: // Concurrent
		if len(candidate) != len(best) {
			return len(candidate) > len(best)
		}
		ch, errC := candidate.Head()
		bh, errB := best.Head()
		if errC != nil || errB != nil {
			return errB != nil && errC == nil
		}
		return bytes.Compare(ch[:], bh[:]) > 0
	}
}
