package engine

import (
	"math/rand"

	"github.com/p2pgossip/update/internal/replicalist"
)

// orderedSet is an insertion-ordered set of peer IDs. It backs both the
// per-update flooding list R_f and the engine's membership view, generic
// over the adapter's peer identity (int indices in the simulator, string
// addresses in the live runtime).
type orderedSet[ID comparable] struct {
	order []ID
	seen  map[ID]struct{}
}

func newOrderedSet[ID comparable](capacity int) *orderedSet[ID] {
	return &orderedSet[ID]{
		order: make([]ID, 0, capacity),
		seen:  make(map[ID]struct{}, capacity),
	}
}

func (s *orderedSet[ID]) Len() int { return len(s.order) }

func (s *orderedSet[ID]) Contains(id ID) bool {
	_, ok := s.seen[id]
	return ok
}

// Add inserts id if absent and reports whether it was inserted.
func (s *orderedSet[ID]) Add(id ID) bool {
	if _, ok := s.seen[id]; ok {
		return false
	}
	s.seen[id] = struct{}{}
	s.order = append(s.order, id)
	return true
}

// AddAll inserts every id in ids, returning the number inserted.
func (s *orderedSet[ID]) AddAll(ids []ID) int {
	n := 0
	for _, id := range ids {
		if s.Add(id) {
			n++
		}
	}
	return n
}

// Slice returns a copy of the entries in insertion order.
func (s *orderedSet[ID]) Slice() []ID {
	return append([]ID(nil), s.order...)
}

// View returns the entries in insertion order without copying. The returned
// slice is capacity-clamped and the set only ever appends — existing entries
// are never reordered or rewritten — so the view stays valid (and stays at
// its length) while the set keeps growing. Callers must not mutate it.
func (s *orderedSet[ID]) View() []ID {
	return s.order[:len(s.order):len(s.order)]
}

// Truncated returns a copy of at most maxLen entries, dropping the excess
// per the given policy (§4.2: "discarding either random entries or the head
// or tail of the partial list"). The set itself is never modified — only the
// transmitted copy is truncated, so "the nodes which push the update in the
// next round pay the penalty". The policy semantics live in replicalist so
// simulator lists and engine lists cannot drift.
func (s *orderedSet[ID]) Truncated(maxLen int, policy replicalist.TruncatePolicy, rng *rand.Rand) []ID {
	return replicalist.TruncatedCopy(s.order, maxLen, policy, rng)
}
