package engine

import "math/rand"

// peerView is the engine's membership view, organised for O(k) peer
// sampling. The backing slice is partitioned into three contiguous segments
// maintained incrementally as the §6 ack bookkeeping changes:
//
//	[0, nPref)      preferred — peers that have acked a push and are not
//	                currently suspected offline
//	[nPref, nAvail) available — everyone else the engine may push to
//	[nAvail, len)   suspended — peers suspected offline, skipped entirely
//
// A draw is a partial Fisher–Yates over a segment: k swaps and k random
// numbers, independent of the view size, yielding a uniform k-subset. Swaps
// stay within a segment, so the partition survives sampling; the order
// within a segment is arbitrary by construction.
//
// Without the ack optimisation every peer lives in the available segment and
// the view degenerates to a flat uniform sampler.
type peerView[ID comparable] struct {
	order  []ID
	pos    map[ID]int
	nPref  int
	nAvail int
}

func newPeerView[ID comparable](capacity int) *peerView[ID] {
	return &peerView[ID]{
		order: make([]ID, 0, capacity),
		pos:   make(map[ID]int, capacity),
	}
}

// Len returns the number of known peers across all segments.
func (v *peerView[ID]) Len() int { return len(v.order) }

// Contains reports whether id is in the view.
func (v *peerView[ID]) Contains(id ID) bool {
	_, ok := v.pos[id]
	return ok
}

// Slice returns a copy of the view. The order is the current partition
// order, not insertion order.
func (v *peerView[ID]) Slice() []ID {
	return append([]ID(nil), v.order...)
}

func (v *peerView[ID]) swap(i, j int) {
	if i == j {
		return
	}
	v.order[i], v.order[j] = v.order[j], v.order[i]
	v.pos[v.order[i]] = i
	v.pos[v.order[j]] = j
}

// Add inserts id into the available segment and reports whether it was new.
func (v *peerView[ID]) Add(id ID) bool {
	if _, ok := v.pos[id]; ok {
		return false
	}
	v.order = append(v.order, id)
	v.pos[id] = len(v.order) - 1
	// The append landed in the suspended segment; rotate it in.
	v.swap(len(v.order)-1, v.nAvail)
	v.nAvail++
	return true
}

// promote moves id into the preferred segment, from whichever segment it
// currently occupies. Unknown ids are ignored.
func (v *peerView[ID]) promote(id ID) {
	i, ok := v.pos[id]
	if !ok {
		return
	}
	if i >= v.nAvail { // suspended → available
		v.swap(i, v.nAvail)
		v.nAvail++
		i = v.pos[id]
	}
	if i >= v.nPref { // available → preferred
		v.swap(i, v.nPref)
		v.nPref++
	}
}

// suspend moves id into the suspended segment. Unknown ids are ignored.
func (v *peerView[ID]) suspend(id ID) {
	i, ok := v.pos[id]
	if !ok || i >= v.nAvail {
		return
	}
	if i < v.nPref { // preferred → available
		v.swap(i, v.nPref-1)
		v.nPref--
		i = v.pos[id]
	}
	// available → suspended
	v.swap(i, v.nAvail-1)
	v.nAvail--
}

// release moves a suspended id back to the available segment (or straight to
// preferred when it had acked before the suspicion). Non-suspended or
// unknown ids are ignored.
func (v *peerView[ID]) release(id ID, preferred bool) {
	i, ok := v.pos[id]
	if !ok || i < v.nAvail {
		return
	}
	v.swap(i, v.nAvail)
	v.nAvail++
	if preferred {
		v.promote(id)
	}
}

// drawFrom appends up to need uniformly drawn entries of order[lo:hi) to
// out, skipping the excluded id if it lies in the segment. It reorders the
// segment in place (a partial Fisher–Yates), which is harmless: segment
// membership, not order, is the invariant.
func (v *peerView[ID]) drawFrom(out []ID, need, lo, hi int, rng *rand.Rand, exclude ID, haveExclude bool) []ID {
	if haveExclude {
		if e, ok := v.pos[exclude]; ok && e >= lo && e < hi {
			v.swap(e, hi-1)
			hi--
		}
	}
	n := hi - lo
	if need > n {
		need = n
	}
	for i := 0; i < need; i++ {
		v.swap(lo+i, lo+i+rng.Intn(n-i))
		out = append(out, v.order[lo+i])
	}
	return out
}

// sampleInto appends up to k distinct peers to out: preferred peers first,
// then available ones, never suspended ones — the §6 selection rule. Each
// segment's contribution is a uniform subset of that segment.
func (v *peerView[ID]) sampleInto(out []ID, k int, rng *rand.Rand, exclude ID, haveExclude bool) []ID {
	out = v.drawFrom(out, k, 0, v.nPref, rng, exclude, haveExclude)
	if len(out) < k {
		out = v.drawFrom(out, k-len(out), v.nPref, v.nAvail, rng, exclude, haveExclude)
	}
	return out
}
