package engine

import (
	"testing"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// The tests below cover the two late-binding render hooks the coalescing
// senders rely on (RenderPush, RenderPullResp) and the DeferPullRender
// contract: an unrendered pull-response intent must, when rendered later,
// serve exactly what the eager path would have.

func TestRenderPushLateBoundList(t *testing.T) {
	cfg := Config[int]{Fanout: 1, PartialList: true}
	e, _ := newTestEngine(t, 1, cfg, nil)
	e.Learn(2)
	u := e.Publish("k", []byte("v"))

	rf, ok := e.RenderPush(u.Ref())
	if !ok {
		t.Fatal("RenderPush did not recognise a freshly published update")
	}
	before := len(rf)

	// A duplicate heard from peer 3 carrying peers 4 and 5 merges into the
	// update's flooding list; a later render must ship the grown list, not
	// the one frozen at publish time.
	e.Handle(3, Message[int]{Kind: KindPush, Update: u, RF: []int{4, 5}})
	rf, ok = e.RenderPush(u.Ref())
	if !ok {
		t.Fatal("RenderPush lost the update after a duplicate")
	}
	if len(rf) <= before {
		t.Fatalf("list did not grow after duplicate: %d -> %d entries", before, len(rf))
	}
	seen := make(map[int]bool, len(rf))
	for _, id := range rf {
		seen[id] = true
	}
	for _, want := range []int{4, 5} {
		if !seen[want] {
			t.Fatalf("rendered list %v misses %d learned from the duplicate", rf, want)
		}
	}

	// An update the engine no longer tracks still ships, with no list.
	if rf, ok := e.RenderPush(store.Ref{Origin: "nobody", Seq: 9}); ok || rf != nil {
		t.Fatalf("RenderPush of an untracked ref = %v, %v; want nil, false", rf, ok)
	}
}

func TestRenderPullRespSnapshotDecision(t *testing.T) {
	cfg := Config[int]{Fanout: 0, PullAttempts: 1, SnapshotCatchUp: 2}
	e, _ := newTestEngine(t, 1, cfg, nil)
	for _, kv := range []string{"a", "b", "c", "d", "e"} {
		e.Publish(kv, []byte(kv))
	}

	// A peer missing all five updates is over the SnapshotCatchUp threshold:
	// one snapshot frame, no delta.
	updates, snapshot, ok := e.RenderPullResp(version.Clock{})
	if !ok || snapshot == nil || updates != nil {
		t.Fatalf("far-behind render = %d updates, snapshot %t, ok %t; want snapshot",
			len(updates), snapshot != nil, ok)
	}

	// A nearly caught-up peer gets the exact missing run.
	updates, snapshot, ok = e.RenderPullResp(version.Clock{"peer-1": 4})
	if !ok || snapshot != nil || len(updates) != 1 {
		t.Fatalf("near-tip render = %d updates, snapshot %t, ok %t; want 1 update",
			len(updates), snapshot != nil, ok)
	}
	if updates[0].Key != "e" {
		t.Fatalf("missing run served %q, want the fifth publish", updates[0].Key)
	}

	// A fully caught-up peer gets an empty (but ok) delta.
	updates, snapshot, ok = e.RenderPullResp(e.Store().Clock())
	if !ok || snapshot != nil || len(updates) != 0 {
		t.Fatalf("caught-up render = %d updates, snapshot %t, ok %t; want empty delta",
			len(updates), snapshot != nil, ok)
	}
}

// TestDeferPullRenderIntentMatchesEagerPath: with DeferPullRender the engine
// answers a pull request with an intent (clock + peer gossip, no updates);
// rendering that intent later must produce the same delta the eager
// configuration would have sent immediately.
func TestDeferPullRenderIntentMatchesEagerPath(t *testing.T) {
	seed := func(e *Engine[int]) {
		e.Publish("x", []byte("1"))
		e.Publish("y", []byte("2"))
		e.PublishDelete("x")
	}
	reqClock := version.Clock{"peer-1": 1}

	eager, epEager := newTestEngine(t, 1, Config[int]{Fanout: 0, PullAttempts: 1}, nil)
	seed(eager)
	epEager.sent = nil
	eager.Handle(2, Message[int]{Kind: KindPullReq, Clock: reqClock})
	if len(epEager.sent) != 1 || epEager.sent[0].msg.Kind != KindPullResp {
		t.Fatalf("eager path sent %+v, want one rendered pull response", epEager.sent)
	}
	want := epEager.sent[0].msg.Updates
	if len(want) == 0 {
		t.Fatal("eager response carried no updates; the fixture is broken")
	}

	deferred, epDef := newTestEngine(t, 1, Config[int]{
		Fanout: 0, PullAttempts: 1, DeferPullRender: true,
	}, nil)
	seed(deferred)
	epDef.sent = nil
	deferred.Handle(2, Message[int]{Kind: KindPullReq, Clock: reqClock})
	if len(epDef.sent) != 1 {
		t.Fatalf("deferred path sent %d messages, want one intent", len(epDef.sent))
	}
	intent := epDef.sent[0].msg
	if intent.Kind != KindPullResp || intent.Updates != nil || intent.Clock == nil {
		t.Fatalf("deferred path sent %+v, want an unrendered intent (clock, no updates)", intent)
	}

	got, snapshot, ok := deferred.RenderPullResp(intent.Clock)
	if !ok || snapshot != nil {
		t.Fatalf("rendering the intent gave snapshot %t, ok %t; want a delta", snapshot != nil, ok)
	}
	if len(got) != len(want) {
		t.Fatalf("deferred render served %d updates, eager served %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Ref() != want[i].Ref() {
			t.Fatalf("update %d: deferred %v, eager %v", i, got[i].Ref(), want[i].Ref())
		}
	}
}
