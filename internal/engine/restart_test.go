package engine

import (
	"testing"

	"github.com/p2pgossip/update/internal/store"
)

// TestRestartWipesVolatileState checks that Restart clears membership, ack
// and suspect bookkeeping, and per-update state, while keeping the store.
func TestRestartWipesVolatileState(t *testing.T) {
	e, ep := newTestEngine(t, 0, Config[int]{
		Fanout: 2, Acks: true, AckTimeout: 5, SuspectTTL: 10,
	}, nil)
	for id := 1; id <= 5; id++ {
		e.Learn(id)
	}
	u := e.Publish("k", []byte("v"))
	e.Handle(2, Message[int]{Kind: KindAck, UpdateRef: u.Ref()})
	ep.now = 100
	e.Sweep() // unacked pushes become suspects
	if len(e.Suspects()) == 0 {
		t.Fatal("expected suspects before restart")
	}

	e.Restart([]int{1, 2})

	if got := e.KnownCount(); got != 2 {
		t.Fatalf("KnownCount = %d after restart, want 2 bootstrap peers", got)
	}
	if len(e.Suspects()) != 0 || len(e.AwaitingAck()) != 0 || len(e.Acked()) != 0 {
		t.Fatal("ack/suspect state survived restart")
	}
	if _, ok := e.Store().Get("k"); !ok {
		t.Fatal("durable store lost on restart")
	}
}

// TestRestartReRegistersStoredUpdates checks that updates present in the
// (restored) store are treated as duplicates after a restart — re-pushed
// copies must not trigger a second flood or a second apply.
func TestRestartReRegistersStoredUpdates(t *testing.T) {
	e, ep := newTestEngine(t, 0, Config[int]{Fanout: 2}, nil)
	for id := 1; id <= 5; id++ {
		e.Learn(id)
	}
	u := e.Publish("k", []byte("v"))

	e.Restart([]int{1, 2, 3})

	if !e.HasRef(u.Ref()) {
		t.Fatal("stored update not re-registered after restart")
	}
	ep.sent = nil
	applies := 0
	e.Store().SetApplyHook(func(_ store.Update, res store.ApplyResult, _ int) {
		if res == store.Applied {
			applies++
		}
	})
	e.Handle(4, Message[int]{Kind: KindPush, Update: u, T: 1})
	if applies != 0 {
		t.Fatalf("re-pushed update applied %d times after restart", applies)
	}
	if len(ep.sent) != 0 {
		t.Fatalf("re-pushed known update forwarded %d messages", len(ep.sent))
	}
	if got := e.Duplicates(u.ID()); got != 1 {
		t.Fatalf("duplicate count = %d, want 1", got)
	}
}

// TestRestartKeepsWriterSequence checks the full adapter restart recipe:
// snapshot → wipe → restore → writer resync → Restart. New updates must not
// reuse sequence numbers.
func TestRestartKeepsWriterSequence(t *testing.T) {
	e, _ := newTestEngine(t, 0, Config[int]{Fanout: 1}, nil)
	e.Learn(1)
	e.Publish("a", []byte("1"))
	u2 := e.Publish("b", []byte("2"))
	if u2.Seq != 2 {
		t.Fatalf("pre-crash seq = %d", u2.Seq)
	}

	e.Restart([]int{1})
	u3 := e.Publish("c", []byte("3"))
	if u3.Seq != 3 {
		t.Fatalf("post-restart seq = %d, want 3 (no reuse)", u3.Seq)
	}
}
