// Package serve exposes a pushpull.Node over HTTP: a key-value edge
// (PUT/GET/DELETE /v1/kv/{key}), k-replica queries (POST /v1/query), a
// server-sent-event stream over Node.Watch (GET /v1/watch), peer and
// snapshot management, Prometheus metrics, and the scrape surface the
// multi-process soak harness checks its invariants against (GET /v1/state).
//
// The package is the process boundary between protocol replicas and real
// clients: cmd/pushpulld mounts a Server on a listener, internal/cluster
// drives fleets of those daemons through this API, and an operator points
// Prometheus at /metrics. Handlers only call the public Node API, so
// everything observable here is observable to any embedder too.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/metrics"
)

// HTTP counter-name prefixes reported into the node's metrics registry.
// Full names append a route tag, e.g. "http.requests.kv.get"; they ride the
// same registry as the live.* protocol counters and reach Prometheus
// through the same exporter.
const (
	// MetricHTTPRequests counts requests per route ("http.requests.<route>").
	MetricHTTPRequests = "http.requests"
	// MetricHTTPErrors counts 5xx responses per route ("http.errors.<route>").
	MetricHTTPErrors = "http.errors"
	// MetricHTTPLatencyMS accumulates handler wall time in milliseconds per
	// route ("http.latency_ms.<route>"); divide by the request counter for
	// the mean.
	MetricHTTPLatencyMS = "http.latency_ms"
)

// maxBodyBytes caps PUT /v1/kv values and POST bodies. Snapshot uploads are
// exempt (they carry whole logs).
const maxBodyBytes = 4 << 20

// Config assembles a Server.
type Config struct {
	// Node is the replica being served. Required.
	Node *pushpull.Node
	// Metrics is the registry the node was opened with (WithMetrics); the
	// server adds its HTTP counters to it and /metrics exports it. Optional:
	// when nil, /metrics serves gauges only.
	Metrics *pushpull.Metrics
	// Restored is the number of updates the process restored from a
	// snapshot before serving; /v1/state republishes it so the soak
	// harness can reconcile apply counters across restarts.
	Restored int
	// StartUnready makes /readyz fail until SetReady(true); the daemon
	// uses it to gate readiness on peer wiring.
	StartUnready bool
}

// Server is the HTTP edge over one Node. Create with New, mount via
// Handler (it is an http.Handler itself), and flip availability with
// SetReady during shutdown.
type Server struct {
	node     *pushpull.Node
	reg      *pushpull.Metrics
	exporter *metrics.Exporter
	mux      *http.ServeMux
	ready    atomic.Bool
	restored atomic.Int64
	started  time.Time
}

// New builds a Server over cfg.Node. Every counter name the node can ever
// report is pre-registered at zero so /metrics exposes the full protocol
// surface from the first scrape, not only the counters that happen to have
// fired.
func New(cfg Config) (*Server, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("serve: Config.Node is required")
	}
	s := &Server{
		node:    cfg.Node,
		reg:     cfg.Metrics,
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.restored.Store(int64(cfg.Restored))
	s.ready.Store(!cfg.StartUnready)
	if s.reg != nil {
		for _, name := range pushpull.MetricNames() {
			s.reg.Add(name, 0)
		}
	}
	s.exporter = metrics.NewExporter(s.reg, "pushpull")
	s.exporter.AddGauge("store.updates", "Resident update-log entries (post-compaction).",
		func() float64 { return float64(s.node.Store().UpdateCount()) })
	s.exporter.AddGauge("store.live_keys", "Keys with a live winning revision.",
		func() float64 { return float64(len(s.node.Keys())) })
	s.exporter.AddGauge("peers", "Known peer addresses.",
		func() float64 { return float64(len(s.node.Peers())) })
	s.exporter.AddGauge("ready", "1 when /readyz would succeed.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	s.exporter.AddGauge("uptime_seconds", "Seconds since the server was built.",
		func() float64 { return time.Since(s.started).Seconds() })

	s.mux.HandleFunc("/v1/kv/", s.route("kv", s.handleKV))
	s.mux.HandleFunc("/v1/query", s.route("query", s.handleQuery))
	s.mux.HandleFunc("/v1/watch", s.route("watch", s.handleWatch))
	s.mux.HandleFunc("/v1/peers", s.route("peers", s.handlePeers))
	s.mux.HandleFunc("/v1/snapshot", s.route("snapshot", s.handleSnapshot))
	s.mux.HandleFunc("/v1/pull", s.route("pull", s.handlePull))
	s.mux.HandleFunc("/v1/state", s.route("state", s.handleState))
	s.mux.HandleFunc("/healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.route("readyz", s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.route("metrics", s.handleMetrics))
	return s, nil
}

// Handler returns the server's HTTP handler (the server itself).
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetReady flips the /readyz probe; the daemon marks itself unready while
// draining so load balancers stop routing before the listener closes.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetRestored records the snapshot-restored update count served by
// /v1/state.
func (s *Server) SetRestored(n int) { s.restored.Store(int64(n)) }

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through the
// instrumentation layer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route wraps a handler with the per-route request, error, and latency
// counters. The method tag is appended for the kv route only, where one
// path serves three verbs.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	if s.reg == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tag := name
		if name == "kv" {
			tag = name + "." + strings.ToLower(r.Method)
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.reg.Inc(MetricHTTPRequests + "." + tag)
		s.reg.Add(MetricHTTPLatencyMS+"."+tag, float64(time.Since(start))/float64(time.Millisecond))
		if sw.status >= 500 {
			s.reg.Inc(MetricHTTPErrors + "." + tag)
		}
	}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// PutResult identifies the update a PUT or DELETE created: the (origin,
// seq) ref is the cluster-wide identity the soak harness tracks deliveries
// by.
type PutResult struct {
	Origin string `json:"origin"`
	Seq    uint64 `json:"seq"`
	Key    string `json:"key"`
	Delete bool   `json:"delete,omitempty"`
}

// handleKV dispatches /v1/kv/{key}. Keys may contain slashes; everything
// after the prefix is the key, so the paper's path-style keys ("users/a/x")
// work without escaping.
func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/kv/")
	if key == "" {
		writeError(w, http.StatusBadRequest, "empty key")
		return
	}
	switch r.Method {
	case http.MethodGet:
		rev, ok := s.node.Get(key)
		if !ok {
			writeError(w, http.StatusNotFound, "key %q not found", key)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Pushpull-Stamp", rev.Stamp.UTC().Format(time.RFC3339Nano))
		w.Header().Set("X-Pushpull-Branches", strconv.Itoa(s.node.Store().BranchCount(key)))
		_, _ = w.Write(rev.Value)
	case http.MethodPut, http.MethodPost:
		value, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "read value: %v", err)
			return
		}
		u, err := s.node.Publish(r.Context(), key, value)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "publish: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, PutResult{Origin: u.Origin, Seq: u.Seq, Key: u.Key})
	case http.MethodDelete:
		u, err := s.node.Delete(r.Context(), key)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "delete: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, PutResult{Origin: u.Origin, Seq: u.Seq, Key: u.Key, Delete: true})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/kv/", r.Method)
	}
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Key string `json:"key"`
	// K is the number of replicas consulted (§4.4); 0 means 3.
	K int `json:"k,omitempty"`
}

// QueryResponse mirrors pushpull.QueryOutcome. Value is base64 in JSON (Go
// []byte encoding).
type QueryResponse struct {
	Found       bool   `json:"found"`
	Value       []byte `json:"value,omitempty"`
	Responses   int    `json:"responses"`
	Unconfident int    `json:"unconfident"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST /v1/query")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Key == "" {
		writeError(w, http.StatusBadRequest, "empty key")
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	out, err := s.node.Query(r.Context(), req.Key, req.K)
	if err != nil && !out.Found {
		writeError(w, http.StatusNotFound, "query: %v", err)
		return
	}
	resp := QueryResponse{
		Found:       out.Found,
		Responses:   out.Responses,
		Unconfident: out.Unconfident,
	}
	if out.Found {
		resp.Value = out.Revision.Value
	}
	writeJSON(w, http.StatusOK, resp)
}

// PeersResponse is the GET /v1/peers body.
type PeersResponse struct {
	Self  string   `json:"self"`
	Peers []string `json:"peers"`
}

// PeersRequest is the POST /v1/peers body; listed addresses are added to
// the membership view (peer-list churn is additive — the protocol retires
// dead peers through the §6 suspicion machinery, not an API).
type PeersRequest struct {
	Peers []string `json:"peers"`
}

func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, PeersResponse{Self: s.node.Addr(), Peers: s.node.Peers()})
	case http.MethodPost:
		var req PeersRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decode request: %v", err)
			return
		}
		s.node.AddPeers(req.Peers...)
		writeJSON(w, http.StatusOK, PeersResponse{Self: s.node.Addr(), Peers: s.node.Peers()})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST /v1/peers")
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := s.node.WriteSnapshot(w); err != nil {
			// Headers are gone; all we can do is abort the stream.
			writeError(w, http.StatusInternalServerError, "write snapshot: %v", err)
		}
	case http.MethodPut, http.MethodPost:
		if err := s.node.RestoreSnapshot(r.Body); err != nil {
			writeError(w, http.StatusBadRequest, "restore snapshot: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"updates": s.node.Store().UpdateCount()})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or PUT /v1/snapshot")
	}
}

// handlePull triggers one anti-entropy pull batch immediately, on top of
// the periodic schedule — the operator's (and soak harness's) catch-up
// lever.
func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST /v1/pull")
		return
	}
	if err := s.node.Pull(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "pull: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"pulled": true})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.exporter.WritePrometheus(w)
}

// State is the scrape surface the soak harness checks cluster invariants
// against: the vector clock and log digest decide convergence, the ref
// frontier decides delivery, and update/apply accounting decides the
// no-duplicate-application check — all without in-process pointers.
type State struct {
	// Addr is the gossip (origin) address of the replica.
	Addr string `json:"addr"`
	// Clock is the replica's vector clock: contiguous per-origin frontiers.
	Clock map[string]uint64 `json:"clock"`
	// UpdateCount is the number of updates in the local log.
	UpdateCount int `json:"update_count"`
	// Restored is how many of those were restored from a snapshot at
	// process start (their applies predate this process's counters).
	Restored int `json:"restored"`
	// LiveKeys is the number of keys with a live winning revision.
	LiveKeys int `json:"live_keys"`
	// Digest is a SHA-256 over the full update log in (origin, seq) order —
	// equal digests mean byte-identical replica state.
	Digest string `json:"digest"`
	// Counters is a snapshot of the metrics registry (empty when the node
	// runs uninstrumented).
	Counters map[string]float64 `json:"counters"`
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/state")
		return
	}
	st := s.node.Store()
	state := State{
		Addr:        s.node.Addr(),
		Clock:       st.Clock(),
		UpdateCount: st.UpdateCount(),
		Restored:    int(s.restored.Load()),
		LiveKeys:    len(s.node.Keys()),
		Digest:      digest(st),
	}
	if s.reg != nil {
		state.Counters = s.reg.Counters()
	}
	writeJSON(w, http.StatusOK, state)
}

// digest hashes the full update log in its canonical (origin, seq) order:
// converged replicas produce identical digests, diverged ones cannot
// collide short of SHA-256 breaking. Stamps are included — they are set
// once by the origin and travel with the update, so replicas agree on
// them.
func digest(st pushpull.Store) string {
	h := sha256.New()
	var num [8]byte
	writeBytes := func(b []byte) {
		binary.BigEndian.PutUint64(num[:], uint64(len(b)))
		h.Write(num[:])
		h.Write(b)
	}
	for _, u := range st.MissingFor(nil) {
		writeBytes([]byte(u.Origin))
		binary.BigEndian.PutUint64(num[:], u.Seq)
		h.Write(num[:])
		writeBytes([]byte(u.Key))
		writeBytes(u.Value)
		if u.Delete {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
		binary.BigEndian.PutUint64(num[:], uint64(u.Stamp.UnixNano()))
		h.Write(num[:])
		for _, id := range u.Version {
			h.Write(id[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
