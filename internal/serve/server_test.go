package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/metrics"
)

// testEdge is one node with its HTTP edge mounted on an httptest server.
type testEdge struct {
	node *pushpull.Node
	reg  *pushpull.Metrics
	srv  *Server
	http *httptest.Server
}

// newEdges builds n hub-connected nodes, each behind its own HTTP server.
func newEdges(t *testing.T, n int) []*testEdge {
	t.Helper()
	hub := pushpull.NewHub()
	edges := make([]*testEdge, n)
	addrs := make([]string, n)
	for i := range edges {
		reg := pushpull.NewMetrics()
		addrs[i] = fmt.Sprintf("node-%d", i)
		node, err := pushpull.Open(
			pushpull.WithHub(hub, addrs[i]),
			pushpull.WithMetrics(reg),
			pushpull.WithSeed(int64(i)+1),
			pushpull.WithPullInterval(10*time.Millisecond),
		)
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		srv, err := New(Config{Node: node, Metrics: reg})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		edges[i] = &testEdge{node: node, reg: reg, srv: srv, http: httptest.NewServer(srv.Handler())}
		t.Cleanup(edges[i].http.Close)
		t.Cleanup(func() { _ = node.Close(context.Background()) })
	}
	for _, e := range edges {
		e.node.AddPeers(addrs...)
	}
	return edges
}

func (e *testEdge) url(path string) string { return e.http.URL + path }

func (e *testEdge) do(t *testing.T, method, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, e.url(path), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	return resp, raw
}

func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestKVRoundTrip(t *testing.T) {
	edges := newEdges(t, 2)

	// PUT on node 0; keys with slashes must survive the path.
	resp, raw := edges[0].do(t, http.MethodPut, "/v1/kv/users/alice/email", []byte("a@example.org"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: %d %s", resp.StatusCode, raw)
	}
	var put PutResult
	if err := json.Unmarshal(raw, &put); err != nil {
		t.Fatalf("put result: %v", err)
	}
	if put.Origin != "node-0" || put.Seq != 1 || put.Key != "users/alice/email" {
		t.Fatalf("put result = %+v", put)
	}

	// GET from node 1 once gossip delivers it.
	eventually(t, 2*time.Second, func() bool {
		resp, _ := edges[1].do(t, http.MethodGet, "/v1/kv/users/alice/email", nil)
		return resp.StatusCode == http.StatusOK
	}, "update did not reach node 1 over gossip")
	resp, raw = edges[1].do(t, http.MethodGet, "/v1/kv/users/alice/email", nil)
	if string(raw) != "a@example.org" {
		t.Fatalf("get body = %q", raw)
	}
	if b := resp.Header.Get("X-Pushpull-Branches"); b != "1" {
		t.Fatalf("branches header = %q", b)
	}

	// DELETE on node 1 tombstones everywhere.
	resp, raw = edges[1].do(t, http.MethodDelete, "/v1/kv/users/alice/email", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, raw)
	}
	eventually(t, 2*time.Second, func() bool {
		resp, _ := edges[0].do(t, http.MethodGet, "/v1/kv/users/alice/email", nil)
		return resp.StatusCode == http.StatusNotFound
	}, "tombstone did not reach node 0")

	// Errors: empty key, bad method.
	resp, _ = edges[0].do(t, http.MethodGet, "/v1/kv/", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty key: %d", resp.StatusCode)
	}
	resp, _ = edges[0].do(t, http.MethodPatch, "/v1/kv/x", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("patch: %d", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	edges := newEdges(t, 3)
	if _, err := edges[2].node.Publish(context.Background(), "quorum/key", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(QueryRequest{Key: "quorum/key", K: 2})
	resp, raw := edges[0].do(t, http.MethodPost, "/v1/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Found || string(out.Value) != "fresh" {
		t.Fatalf("query outcome = %+v", out)
	}

	resp, _ = edges[0].do(t, http.MethodPost, "/v1/query", []byte(`{"key":""}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-key query: %d", resp.StatusCode)
	}
}

func TestPeersEndpoint(t *testing.T) {
	edges := newEdges(t, 2)
	resp, raw := edges[0].do(t, http.MethodGet, "/v1/peers", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peers: %d", resp.StatusCode)
	}
	var peers PeersResponse
	if err := json.Unmarshal(raw, &peers); err != nil {
		t.Fatal(err)
	}
	if peers.Self != "node-0" || len(peers.Peers) != 1 || peers.Peers[0] != "node-1" {
		t.Fatalf("peers = %+v", peers)
	}

	body, _ := json.Marshal(PeersRequest{Peers: []string{"node-7", "node-8"}})
	_, raw = edges[0].do(t, http.MethodPost, "/v1/peers", body)
	if err := json.Unmarshal(raw, &peers); err != nil {
		t.Fatal(err)
	}
	if len(peers.Peers) != 3 {
		t.Fatalf("after churn peers = %+v", peers)
	}
}

func TestSnapshotDownloadRestore(t *testing.T) {
	edges := newEdges(t, 2)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := edges[0].node.Publish(ctx, fmt.Sprintf("snap/%d", i), []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	resp, snap := edges[0].do(t, http.MethodGet, "/v1/snapshot", nil)
	if resp.StatusCode != http.StatusOK || len(snap) == 0 {
		t.Fatalf("snapshot: %d (%d bytes)", resp.StatusCode, len(snap))
	}

	// Restore into a detached third node and compare digests via /v1/state.
	reg := pushpull.NewMetrics()
	solo, err := pushpull.Open(
		pushpull.WithHub(pushpull.NewHub(), "solo"),
		pushpull.WithMetrics(reg),
		pushpull.WithSnapshot(bytes.NewReader(snap)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close(ctx)
	srv, err := New(Config{Node: solo, Metrics: reg, Restored: solo.Store().UpdateCount()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var want, got State
	_, raw := edges[0].do(t, http.MethodGet, "/v1/state", nil)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	r2, err := http.Get(ts.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if err := json.Unmarshal(raw2, &got); err != nil {
		t.Fatal(err)
	}
	if got.Digest != want.Digest {
		t.Fatalf("restored digest %s != source digest %s", got.Digest, want.Digest)
	}
	if got.UpdateCount != 5 || got.Restored != 5 {
		t.Fatalf("restored state = %+v", got)
	}

	// Garbage uploads are rejected without clobbering state.
	resp, _ = edges[1].do(t, http.MethodPut, "/v1/snapshot", []byte("not a snapshot"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore: %d", resp.StatusCode)
	}
}

func TestPullEndpoint(t *testing.T) {
	edges := newEdges(t, 2)
	resp, _ := edges[0].do(t, http.MethodPost, "/v1/pull", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pull: %d", resp.StatusCode)
	}
	// A peerless node reports ErrNoPeers as unavailability.
	reg := pushpull.NewMetrics()
	solo, err := pushpull.Open(pushpull.WithHub(pushpull.NewHub(), "alone"), pushpull.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close(context.Background())
	srv, err := New(Config{Node: solo, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	r2, err := http.Post(ts.URL+"/v1/pull", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("peerless pull: %d", r2.StatusCode)
	}
}

func TestHealthAndReady(t *testing.T) {
	edges := newEdges(t, 1)
	resp, _ := edges[0].do(t, http.MethodGet, "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	edges[0].srv.SetReady(false)
	resp, _ = edges[0].do(t, http.MethodGet, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	edges[0].srv.SetReady(true)
	resp, _ = edges[0].do(t, http.MethodGet, "/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint is the acceptance check: after a gossip round the
// Prometheus exposition parses and contains every registered live.Metric*
// counter plus the HTTP counters the requests themselves generated.
func TestMetricsEndpoint(t *testing.T) {
	edges := newEdges(t, 2)
	ctx := context.Background()
	if _, err := edges[0].node.Publish(ctx, "m/k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	eventually(t, 2*time.Second, func() bool {
		_, ok := edges[1].node.Get("m/k")
		return ok
	}, "gossip round did not complete")

	// A kv request so the http.* counters exist with a route tag.
	edges[1].do(t, http.MethodGet, "/v1/kv/m/k", nil)

	resp, raw := edges[1].do(t, http.MethodGet, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	samples := parseExposition(t, string(raw))

	for _, name := range pushpull.MetricNames() {
		exported := "pushpull_" + metrics.SanitizeMetricName(name) + "_total"
		if _, ok := samples[exported]; !ok {
			t.Errorf("metric %q (%s) missing from /metrics", name, exported)
		}
	}
	if samples["pushpull_live_push_received_total"] <= 0 {
		t.Error("push.received counter did not advance after a gossip round")
	}
	if samples["pushpull_http_requests_kv_get_total"] <= 0 {
		t.Error("http kv.get request counter missing")
	}
	if samples["pushpull_store_updates"] != 1 {
		t.Errorf("store updates gauge = %v, want 1", samples["pushpull_store_updates"])
	}
}

// parseExposition validates the Prometheus text format strictly enough to
// catch rendering bugs: TYPE-before-sample ordering, the metric-name
// alphabet, and float-parsable values.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		if !typed[fields[0]] {
			t.Fatalf("line %d: sample %q precedes its # TYPE", ln+1, fields[0])
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		samples[fields[0]] = v
	}
	return samples
}

func TestWatchSSE(t *testing.T) {
	edges := newEdges(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, edges[1].url("/v1/watch?prefix=sse/"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Publish on the *other* node: the event must arrive via gossip, then
	// stream out as SSE. A non-matching prefix must not appear.
	if _, err := edges[0].node.Publish(context.Background(), "other/key", []byte("hidden")); err != nil {
		t.Fatal(err)
	}
	if _, err := edges[0].node.Publish(context.Background(), "sse/key", []byte("shown")); err != nil {
		t.Fatal(err)
	}

	scanner := bufio.NewScanner(resp.Body)
	var event WatchEvent
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &event); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		break
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		t.Fatal(err)
	}
	if event.Key != "sse/key" || string(event.Value) != "shown" {
		t.Fatalf("first event = %+v, want sse/key", event)
	}
	if event.Kind != "applied" || event.Source != "push" {
		t.Fatalf("event classification = %+v", event)
	}
}

func TestServerRequiresNode(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a node succeeded")
	}
}
