package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// WatchEvent is the JSON payload of one /v1/watch server-sent event. Kind
// doubles as the SSE event name, so an EventSource can subscribe with
// addEventListener("applied", ...).
type WatchEvent struct {
	Kind      string `json:"kind"`
	Key       string `json:"key"`
	Value     []byte `json:"value,omitempty"`
	Origin    string `json:"origin"`
	Seq       uint64 `json:"seq"`
	Source    string `json:"source"`
	Tombstone bool   `json:"tombstone,omitempty"`
	Branches  int    `json:"branches"`
}

// watchHeartbeat is how often an idle stream emits a comment line so
// intermediaries cannot silently time the connection out.
const watchHeartbeat = 15 * time.Second

// handleWatch streams the node's apply events for an optional ?prefix= as
// server-sent events. The subscription lives exactly as long as the
// request context: client disconnect or node close ends the stream. Events
// the client cannot keep up with are dropped by the node's watch buffer
// (counted under node.watch.dropped), never buffered without bound here.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/watch")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	events, err := s.node.Watch(r.Context(), r.URL.Query().Get("prefix"))
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "watch: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment unblocks clients waiting for stream start.
	fmt.Fprint(w, ": watching\n\n")
	flusher.Flush()

	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return // context cancelled or node closed
			}
			payload, err := json.Marshal(WatchEvent{
				Kind:      ev.Kind.String(),
				Key:       ev.Update.Key,
				Value:     ev.Update.Value,
				Origin:    ev.Update.Origin,
				Seq:       ev.Update.Seq,
				Source:    ev.Source.String(),
				Tombstone: ev.Tombstone(),
				Branches:  ev.Branches,
			})
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, payload)
			flusher.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		}
	}
}
