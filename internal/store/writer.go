package store

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// CryptoSeed draws a PRNG seed from the system entropy source. Unlike the
// classic time.Now().UnixNano() fallback it cannot collide across writers
// or replicas created in the same instant (coarse clocks, VM snapshots,
// mass restarts).
func CryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable on supported
		// platforms; the timestamp keeps the caller functional.
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// Writer creates well-formed updates on behalf of one replica: it assigns
// per-origin sequence numbers, extends the item's current version history
// (taking the local winning branch as the parent, which is how optimistic
// replication earns its rare conflicts), and applies the update locally.
//
// A Writer is safe for concurrent use: its own mutex serialises sequence
// assignment and the parent-version read, so two concurrent Puts can never
// draw the same Seq or both branch from a version one of them supersedes.
type Writer struct {
	origin string
	store  Backend
	mu     sync.Mutex
	seq    uint64
	now    func() time.Time
	rng    *rand.Rand
}

// NewWriter returns a Writer for the given origin writing through st.
// now and rng may be nil, in which case wall-clock time and a
// crypto-seeded source are used; simulations inject deterministic ones.
func NewWriter(origin string, st Backend, now func() time.Time, rng *rand.Rand) (*Writer, error) {
	if origin == "" {
		return nil, fmt.Errorf("store: writer origin must be non-empty")
	}
	if st == nil {
		return nil, fmt.Errorf("store: writer needs a store")
	}
	if now == nil {
		now = time.Now
	}
	if rng == nil {
		// The same collision class as replica seeding: two writers created
		// in the same instant must not draw identical version-ID streams.
		rng = rand.New(rand.NewSource(CryptoSeed()))
	}
	w := &Writer{origin: origin, store: st, now: now, rng: rng}
	// Resume the sequence after a restart from the store's clock.
	w.seq = st.Clock().Get(origin)
	return w, nil
}

// Origin returns the writer's replica identity.
func (w *Writer) Origin() string { return w.origin }

// Put creates, applies, and returns an update setting key to value.
func (w *Writer) Put(key string, value []byte) Update {
	u, _ := w.mutate(key, value, false)
	return u
}

// Delete creates, applies, and returns a tombstone update for key.
func (w *Writer) Delete(key string) Update {
	u, _ := w.mutate(key, nil, true)
	return u
}

// PutObserved is Put returning also the key's revision count, counted
// atomically with the apply (see Store.ApplyObserved).
func (w *Writer) PutObserved(key string, value []byte) (Update, int) {
	return w.mutate(key, value, false)
}

// DeleteObserved is Delete returning also the key's revision count, counted
// atomically with the apply.
func (w *Writer) DeleteObserved(key string) (Update, int) {
	return w.mutate(key, nil, true)
}

func (w *Writer) mutate(key string, value []byte, del bool) (Update, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	parent := version.History(nil)
	if rev, ok := w.store.Get(key); ok {
		parent = rev.Version
	} else if revs := w.store.Versions(key); len(revs) > 0 {
		// All branches deleted: extend the winning tombstone so the write
		// supersedes the deletion.
		parent = revs[0].Version
	}
	w.seq++
	u := Update{
		Origin:  w.origin,
		Seq:     w.seq,
		Key:     key,
		Value:   append([]byte(nil), value...),
		Delete:  del,
		Version: parent.Append(version.NewID(now, w.origin, w.rng)),
		Stamp:   now,
	}
	_, branches := w.store.ApplyObserved(u)
	return u, branches
}

// Resync advances the writer's sequence counter to the store's clock for
// its origin. Call after restoring the store from a snapshot so that new
// writes do not reuse sequence numbers.
func (w *Writer) Resync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq := w.store.Clock().Get(w.origin); seq > w.seq {
		w.seq = seq
	}
}
