package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// snapshotUpdate is the serialised form of one logged update. Version ids
// travel as raw byte slices to keep the gob schema independent of the
// version.ID array length.
type snapshotUpdate struct {
	Origin  string
	Seq     uint64
	Key     string
	Value   []byte
	Delete  bool
	Version [][]byte
	Stamp   int64
}

// snapshot is the on-disk form of a store: the complete update log. Items,
// branches and the vector clock are derived state — replaying the log
// through Apply reconstructs them exactly (Apply is order-independent and
// idempotent, which the property tests assert).
type snapshot struct {
	FormatVersion int
	Updates       []snapshotUpdate
}

// snapshotFormatVersion guards against reading snapshots from incompatible
// future layouts.
const snapshotFormatVersion = 1

// encodeSnapshot serialises a complete, canonically ordered update log to w.
// Store and Sharded both feed it MissingFor(nil), whose (origin asc, seq
// asc) order is independent of internal layout — so the bytes a snapshot
// produces depend only on the logical contents, never on shard count.
func encodeSnapshot(w io.Writer, updates []Update) error {
	snap := snapshot{
		FormatVersion: snapshotFormatVersion,
		Updates:       make([]snapshotUpdate, len(updates)),
	}
	for i, u := range updates {
		versionBytes := make([][]byte, len(u.Version))
		for j, id := range u.Version {
			id := id
			versionBytes[j] = id[:]
		}
		snap.Updates[i] = snapshotUpdate{
			Origin: u.Origin, Seq: u.Seq, Key: u.Key, Value: u.Value,
			Delete: u.Delete, Version: versionBytes, Stamp: u.Stamp.UnixNano(),
		}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	return nil
}

// decodeSnapshot reads a snapshot stream back into its update log.
func decodeSnapshot(r io.Reader) ([]Update, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if snap.FormatVersion != snapshotFormatVersion {
		return nil, fmt.Errorf("store: snapshot format %d unsupported (want %d)",
			snap.FormatVersion, snapshotFormatVersion)
	}
	updates := make([]Update, len(snap.Updates))
	for i, su := range snap.Updates {
		u := Update{
			Origin: su.Origin, Seq: su.Seq, Key: su.Key, Value: su.Value,
			Delete: su.Delete, Stamp: time.Unix(0, su.Stamp),
		}
		for _, raw := range su.Version {
			if len(raw) != version.IDSize {
				return nil, fmt.Errorf("store: snapshot has version id of %d bytes", len(raw))
			}
			var id version.ID
			copy(id[:], raw)
			u.Version = append(u.Version, id)
		}
		updates[i] = u
	}
	return updates, nil
}

// WriteSnapshot serialises the store's full update log to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return encodeSnapshot(w, s.MissingFor(nil)) // everything, in (origin, seq) order
}

// ReadSnapshot reconstructs a store from a snapshot written by
// WriteSnapshot, with the given tombstone retention.
func ReadSnapshot(r io.Reader, retain time.Duration) (*Store, error) {
	updates, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	st := NewWithRetention(retain)
	for _, u := range updates {
		st.Apply(u)
	}
	return st, nil
}

// RestoreSnapshot replaces the store's contents with a snapshot previously
// produced by WriteSnapshot, keeping the store pointer — and any registered
// apply hook — stable for the engines and writers wired to it. The store's
// current tombstone retention is kept. It is the restart path: a recovering
// replica restores its durable log here, then resyncs its Writer so new
// updates never reuse sequence numbers.
func (s *Store) RestoreSnapshot(r io.Reader) error {
	s.mu.RLock()
	retain := s.tombRetain
	s.mu.RUnlock()
	restored, err := ReadSnapshot(r, retain)
	if err != nil {
		return err
	}
	s.Replace(restored)
	return nil
}

// Replace swaps the store's contents for those of other. It backs restores
// into an already-wired store (the live runtime hands its store to the
// writer and transport handlers at construction time, so the pointer must
// remain stable).
func (s *Store) Replace(other *Store) {
	other.mu.RLock()
	items := make(map[string][]Revision, len(other.items))
	for k, revs := range other.items {
		copied := make([]Revision, len(revs))
		for i, r := range revs {
			copied[i] = cloneRevision(r)
		}
		items[k] = copied
	}
	log := make(map[string][]Update, len(other.data.log))
	for origin, updates := range other.data.log {
		copied := make([]Update, len(updates))
		for i, u := range updates {
			copied[i] = cloneUpdate(u)
		}
		log[origin] = copied
	}
	clock := other.data.clock.Clone()
	retain := other.tombRetain
	other.mu.RUnlock()

	origins := make([]string, 0, len(log))
	for origin := range log {
		origins = append(origins, origin)
	}
	sort.Strings(origins)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = items
	s.data = originLog{log: log, origins: origins, clock: clock}
	s.tombRetain = retain
}
