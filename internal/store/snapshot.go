package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// snapshotUpdate is the serialised form of one logged update. Version ids
// travel as raw byte slices to keep the gob schema independent of the
// version.ID array length.
type snapshotUpdate struct {
	Origin  string
	Seq     uint64
	Key     string
	Value   []byte
	Delete  bool
	Version [][]byte
	Stamp   int64
}

// snapshotFrontier is one origin's compacted watermark in serialised form.
type snapshotFrontier struct {
	Origin string
	Seq    uint64
}

// snapshot is the on-disk form of a store: the complete resident update log
// plus the per-origin compacted watermark. Items, branches and the vector
// clock are derived state — replaying the log through Apply and adopting the
// watermark reconstructs them exactly (Apply is order-independent and
// idempotent, which the property tests assert). Compacted is nil for an
// uncompacted store, so its snapshot bytes are unchanged from format 1
// streams without the field.
type snapshot struct {
	FormatVersion int
	Updates       []snapshotUpdate
	Compacted     []snapshotFrontier
}

// snapshotFormatVersion guards against reading snapshots from incompatible
// future layouts.
const snapshotFormatVersion = 1

// encodeSnapshot serialises a complete, canonically ordered update log to w.
// Store and Sharded both feed it MissingFor(nil) and their compacted
// watermark, whose (origin asc) order is independent of internal layout — so
// the bytes a snapshot produces depend only on the logical contents, never
// on shard count.
func encodeSnapshot(w io.Writer, updates []Update, compacted version.Clock) error {
	snap := snapshot{
		FormatVersion: snapshotFormatVersion,
		Updates:       make([]snapshotUpdate, len(updates)),
	}
	for i, u := range updates {
		versionBytes := make([][]byte, len(u.Version))
		for j, id := range u.Version {
			id := id
			versionBytes[j] = id[:]
		}
		snap.Updates[i] = snapshotUpdate{
			Origin: u.Origin, Seq: u.Seq, Key: u.Key, Value: u.Value,
			Delete: u.Delete, Version: versionBytes, Stamp: u.Stamp.UnixNano(),
		}
	}
	if len(compacted) > 0 {
		snap.Compacted = make([]snapshotFrontier, 0, len(compacted))
		for origin, seq := range compacted {
			if seq > 0 {
				snap.Compacted = append(snap.Compacted, snapshotFrontier{Origin: origin, Seq: seq})
			}
		}
		sort.Slice(snap.Compacted, func(i, j int) bool {
			return snap.Compacted[i].Origin < snap.Compacted[j].Origin
		})
		if len(snap.Compacted) == 0 {
			snap.Compacted = nil
		}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	return nil
}

// decodeSnapshot reads a snapshot stream back into its update log and
// compacted watermark (nil when the snapshot was uncompacted).
func decodeSnapshot(r io.Reader) ([]Update, version.Clock, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if snap.FormatVersion != snapshotFormatVersion {
		return nil, nil, fmt.Errorf("store: snapshot format %d unsupported (want %d)",
			snap.FormatVersion, snapshotFormatVersion)
	}
	updates := make([]Update, len(snap.Updates))
	for i, su := range snap.Updates {
		u := Update{
			Origin: su.Origin, Seq: su.Seq, Key: su.Key, Value: su.Value,
			Delete: su.Delete, Stamp: time.Unix(0, su.Stamp),
		}
		for _, raw := range su.Version {
			if len(raw) != version.IDSize {
				return nil, nil, fmt.Errorf("store: snapshot has version id of %d bytes", len(raw))
			}
			var id version.ID
			copy(id[:], raw)
			u.Version = append(u.Version, id)
		}
		updates[i] = u
	}
	var compacted version.Clock
	if len(snap.Compacted) > 0 {
		compacted = version.NewClock()
		for _, f := range snap.Compacted {
			compacted[f.Origin] = f.Seq
		}
	}
	return updates, compacted, nil
}

// DecodeSnapshot reads a snapshot stream produced by any Backend's
// WriteSnapshot back into its resident update log and compacted watermark
// (nil when the snapshot was uncompacted). It is the shared decoder of every
// restore path, including the engine's snapshot catch-up frames: apply the
// updates, then AdoptFrontier the watermark.
func DecodeSnapshot(r io.Reader) ([]Update, version.Clock, error) {
	return decodeSnapshot(r)
}

// WriteSnapshot serialises the store's resident update log and compacted
// watermark to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	// One read lock for both halves: a compaction between reading the log
	// and the watermark could otherwise pair fresh entries with a stale
	// frontier.
	s.mu.RLock()
	var updates []Update
	if total := s.data.missingCount(nil); total > 0 {
		updates = s.data.appendMissing(make([]Update, 0, total), nil)
	}
	compacted := s.data.compacted.Clone()
	s.mu.RUnlock()
	return encodeSnapshot(w, updates, compacted)
}

// ReadSnapshot reconstructs a store from a snapshot written by
// WriteSnapshot, with the given tombstone retention.
func ReadSnapshot(r io.Reader, retain time.Duration) (*Store, error) {
	updates, compacted, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	st := NewWithRetention(retain)
	for _, u := range updates {
		st.Apply(u)
	}
	st.AdoptFrontier(compacted)
	return st, nil
}

// RestoreSnapshot replaces the store's contents with a snapshot previously
// produced by WriteSnapshot, keeping the store pointer — and any registered
// apply hook — stable for the engines and writers wired to it. The store's
// current tombstone retention is kept. It is the restart path: a recovering
// replica restores its durable log here, then resyncs its Writer so new
// updates never reuse sequence numbers.
func (s *Store) RestoreSnapshot(r io.Reader) error {
	s.mu.RLock()
	retain := s.tombRetain
	s.mu.RUnlock()
	restored, err := ReadSnapshot(r, retain)
	if err != nil {
		return err
	}
	s.Replace(restored)
	return nil
}

// Replace swaps the store's contents for those of other. It backs restores
// into an already-wired store (the live runtime hands its store to the
// writer and transport handlers at construction time, so the pointer must
// remain stable).
func (s *Store) Replace(other *Store) {
	other.mu.RLock()
	items := make(map[string][]Revision, len(other.items))
	for k, revs := range other.items {
		copied := make([]Revision, len(revs))
		for i, r := range revs {
			copied[i] = cloneRevision(r)
		}
		items[k] = copied
	}
	log := make(map[string][]Update, len(other.data.log))
	for origin, updates := range other.data.log {
		copied := make([]Update, len(updates))
		for i, u := range updates {
			copied[i] = cloneUpdate(u)
		}
		log[origin] = copied
	}
	clock := other.data.clock.Clone()
	compacted := other.data.compacted.Clone()
	retain := other.tombRetain
	other.mu.RUnlock()

	origins := make([]string, 0, len(log))
	for origin := range log {
		origins = append(origins, origin)
	}
	sort.Strings(origins)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = items
	s.data = originLog{log: log, origins: origins, clock: clock, compacted: compacted}
	s.tombRetain = retain
}
