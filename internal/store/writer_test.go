package store

import (
	"testing"
	"time"
)

// TestCryptoSeedDistinct guards the seeding fallback shared by writers and
// replicas: seeds drawn for instances created concurrently must not collide
// the way time-derived seeds can (coarse clocks hand identical UnixNano
// values to writers created in the same instant).
func TestCryptoSeedDistinct(t *testing.T) {
	seen := make(map[int64]struct{}, 256)
	for i := 0; i < 256; i++ {
		s := CryptoSeed()
		if _, dup := seen[s]; dup {
			t.Fatalf("seed %d repeated within 256 draws", s)
		}
		seen[s] = struct{}{}
	}
}

// TestNewWriterNilRNGDistinctStreams pins the fix for the time-seeded
// fallback: two writers built in the same instant without an injected RNG
// must still draw distinct version-ID streams.
func TestNewWriterNilRNGDistinctStreams(t *testing.T) {
	now := func() time.Time { return time.Unix(1_700_000_000, 0) }
	w1, err := NewWriter("same-origin", New(), now, nil)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWriter("same-origin", New(), now, nil)
	if err != nil {
		t.Fatal(err)
	}
	u1 := w1.Put("k", []byte("v"))
	u2 := w2.Put("k", []byte("v"))
	h1, err := u1.Version.Head()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := u2.Version.Head()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("writers with nil RNGs drew identical version ids")
	}
}
