package store

import (
	"bytes"
	"io"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// Backend is the store contract the protocol layers program against: the
// single-lock Store and the lock-striped Sharded both satisfy it. The
// semantics are fixed by the reference Store — Sharded's property tests hold
// it to Store outcome-for-outcome on random interleaved workloads — so
// engines, writers, and the serving surface can swap implementations without
// observable change.
type Backend interface {
	// Apply ingests one update and returns the outcome. Updates may arrive
	// in any order and repeatedly; Apply is idempotent per (origin, seq).
	Apply(u Update) ApplyResult
	// ApplyObserved is Apply returning also the number of coexisting
	// revisions of the key, counted atomically with the apply.
	ApplyObserved(u Update) (ApplyResult, int)
	// Seen reports whether the exact update identified by ref was already
	// applied. It is a cheap duplicate pre-check; a racing twin that slips
	// past it is still caught by Apply itself.
	Seen(ref Ref) bool
	// SetApplyHook registers a callback observing every subsequent Apply.
	SetApplyHook(h ApplyHook)
	// BranchCount returns the number of coexisting revisions of key,
	// including tombstoned branches.
	BranchCount(key string) int
	// Get returns the winning revision for key (see Store.Get).
	Get(key string) (Revision, bool)
	// Versions returns copies of all coexisting revisions of key, sorted
	// deterministically.
	Versions(key string) []Revision
	// Keys returns the sorted set of keys with at least one live revision.
	Keys() []string
	// Clock returns a copy of the store's vector clock.
	Clock() version.Clock
	// MissingFor returns every logged update the remote clock has not seen,
	// ordered by origin then sequence. Callers must treat the returned
	// updates as read-only.
	MissingFor(remote version.Clock) []Update
	// DeltaFor is MissingFor with compaction awareness: it returns the
	// remote's missing updates only when the log still holds the complete
	// run. ok == false reports that compaction has dropped part of the
	// remote's gap, so only a snapshot can catch it up — never a silent
	// partial delta.
	DeltaFor(remote version.Clock) (updates []Update, ok bool)
	// CompactLog drops log entries at or below the frontier that no longer
	// back a coexisting revision, advancing the per-origin compacted
	// watermark (bounded by the clock's contiguous prefix). It returns the
	// number of entries dropped.
	CompactLog(frontier version.Clock) int
	// CompactedThrough returns a copy of the per-origin compacted watermark.
	CompactedThrough() version.Clock
	// AdoptFrontier raises the compacted watermark (and the clock, over the
	// sender's compaction holes) to wm without dropping entries — the
	// receiving half of a snapshot catch-up, called after the snapshot's
	// updates have been applied.
	AdoptFrontier(wm version.Clock)
	// ExpireTTL tombstones live revisions whose Stamp is at least ttl old at
	// now, feeding the tombstone GC; ttl <= 0 is a no-op. It returns the
	// number of revisions expired.
	ExpireTTL(now time.Time, ttl time.Duration) int
	// UpdateCount returns the number of resident log entries (post-
	// compaction: live-state-backing entries plus the uncompacted tail).
	UpdateCount() int
	// GCTombstones drops tombstoned revisions whose retention expired at
	// now, returning the number collected.
	GCTombstones(now time.Time) int
	// WriteSnapshot serialises the full update log to w in canonical
	// (origin asc, seq asc) order — the bytes depend only on logical
	// contents, never on internal layout.
	WriteSnapshot(w io.Writer) error
	// RestoreSnapshot replaces the contents with a snapshot previously
	// produced by WriteSnapshot, keeping the receiver pointer stable.
	RestoreSnapshot(r io.Reader) error
	// Equal reports whether two stores hold identical live state.
	Equal(other Backend) bool
	// Reset clears the store to empty, keeping the pointer, retention, and
	// any registered hook stable. It models a crash with disk loss.
	Reset()
}

// Interface conformance — keep both implementations honest.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Sharded)(nil)
)

// backendEqual is the shared Equal implementation: identical live key sets
// with byte-equal winning values and Equal winning version histories.
func backendEqual(a, b Backend) bool {
	ak, bk := a.Keys(), b.Keys()
	if len(ak) != len(bk) {
		return false
	}
	for i := range ak {
		if ak[i] != bk[i] {
			return false
		}
	}
	for _, k := range ak {
		ra, okA := a.Get(k)
		rb, okB := b.Get(k)
		if okA != okB || !bytes.Equal(ra.Value, rb.Value) ||
			ra.Version.Compare(rb.Version) != version.Equal {
			return false
		}
	}
	return true
}
