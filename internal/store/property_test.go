package store

// Property tests pinning the indexed anti-entropy diff against a naive
// reference implementation, and the Ref round-trip.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// naiveMissingFor is the pre-index reference implementation: re-sort the
// origins and linearly scan every per-origin log.
func naiveMissingFor(s *Store, remote version.Clock) []Update {
	s.mu.RLock()
	defer s.mu.RUnlock()
	origins := make([]string, 0, len(s.data.log))
	for o := range s.data.log {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	var out []Update
	for _, o := range origins {
		have := remote.Get(o)
		for _, u := range s.data.log[o] {
			if u.Seq > have {
				out = append(out, u)
			}
		}
	}
	return out
}

// TestMissingForMatchesNaiveReference builds random logs — random origin
// sets, random sequence subsets applied in random order, so the logs have
// gaps — and compares the binary-searched MissingFor against the linear
// reference for random remote clocks.
func TestMissingForMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stamp := time.Unix(1_700_000_000, 0)
	vid := version.NewID(stamp, "w", rng)
	for trial := 0; trial < 200; trial++ {
		s := New()
		originCount := rng.Intn(6) // sometimes zero: the empty-store case
		for o := 0; o < originCount; o++ {
			origin := fmt.Sprintf("origin-%d", rng.Intn(8))
			// A random subset of sequence numbers, applied shuffled, so the
			// log is Seq-sorted but gapped.
			maxSeq := rng.Intn(30) + 1
			seqs := rng.Perm(maxSeq)
			keep := rng.Intn(len(seqs) + 1)
			for _, seq := range seqs[:keep] {
				s.Apply(Update{
					Origin:  origin,
					Seq:     uint64(seq + 1),
					Key:     fmt.Sprintf("key-%d", rng.Intn(10)),
					Value:   []byte{byte(seq)},
					Version: version.History{vid},
					Stamp:   stamp,
				})
			}
		}
		for probe := 0; probe < 5; probe++ {
			remote := version.NewClock()
			for o := 0; o < 8; o++ {
				if rng.Intn(2) == 0 {
					remote[fmt.Sprintf("origin-%d", o)] = uint64(rng.Intn(35))
				}
			}
			got := s.MissingFor(remote)
			want := naiveMissingFor(s, remote)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d updates, reference %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].Ref() != want[i].Ref() {
					t.Fatalf("trial %d: position %d is %v, reference %v",
						trial, i, got[i].Ref(), want[i].Ref())
				}
			}
		}
	}
}

// TestDeltaForCompactionProperty pins the compaction contract on random
// workloads and random compaction points, for both backends: a compacted
// store asked for a delta either serves exactly what the uncompacted
// reference would, or reports the gap as snapshot-only because an update the
// remote needs is genuinely no longer resident. It must never hand out a
// silent partial delta.
func TestDeltaForCompactionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		// Random workload with real causal histories: a few writers
		// overwriting (and sometimes deleting) a small key space through a
		// builder store, so domination and branch retention behave as in
		// production.
		builder := New()
		writers := make([]*Writer, rng.Intn(4)+1)
		for i := range writers {
			w, err := NewWriter(fmt.Sprintf("origin-%d", i), builder,
				func() time.Time { return time.Unix(1_700_000_000, 0) },
				rand.New(rand.NewSource(int64(trial*10+i))))
			if err != nil {
				t.Fatal(err)
			}
			writers[i] = w
		}
		var workload []Update
		for i, n := 0, rng.Intn(40); i < n; i++ {
			w := writers[rng.Intn(len(writers))]
			key := fmt.Sprintf("key-%d", rng.Intn(5))
			if rng.Intn(8) == 0 {
				workload = append(workload, w.Delete(key))
			} else {
				workload = append(workload, w.Put(key, []byte{byte(i)}))
			}
		}

		// Reference stays uncompacted; the subject (alternating backends)
		// receives the same updates in a shuffled order, then compacts at a
		// random frontier.
		reference := New()
		var subject Backend = New()
		if trial%2 == 1 {
			subject = NewSharded(4)
		}
		for _, u := range workload {
			reference.Apply(u)
		}
		for _, i := range rng.Perm(len(workload)) {
			subject.Apply(workload[i])
		}
		frontier := version.NewClock()
		for _, w := range writers {
			if max := subject.Clock().Get(w.Origin()); max > 0 {
				frontier[w.Origin()] = uint64(rng.Intn(int(max) + 1))
			}
		}
		subject.CompactLog(frontier)

		resident := make(map[Ref]bool)
		for _, u := range subject.MissingFor(nil) {
			resident[u.Ref()] = true
		}
		for probe := 0; probe < 6; probe++ {
			remote := version.NewClock()
			for i := range writers {
				if rng.Intn(3) > 0 {
					remote[fmt.Sprintf("origin-%d", i)] = uint64(rng.Intn(20))
				}
			}
			want := reference.MissingFor(remote)
			got, ok := subject.DeltaFor(remote)
			if ok {
				if len(got) != len(want) {
					t.Fatalf("trial %d: complete delta has %d updates, reference %d",
						trial, len(got), len(want))
				}
				for i := range got {
					if got[i].Ref() != want[i].Ref() {
						t.Fatalf("trial %d: delta position %d is %v, reference %v",
							trial, i, got[i].Ref(), want[i].Ref())
					}
				}
				continue
			}
			// Snapshot-only must mean a needed update was really compacted
			// away — anything weaker would degrade deltas for no reason.
			gapReal := false
			for _, u := range want {
				if !resident[u.Ref()] {
					gapReal = true
					break
				}
			}
			if !gapReal {
				t.Fatalf("trial %d: DeltaFor reported a gap but every update the remote needs is still resident", trial)
			}
		}
	}
}

func TestRefStringRoundTrip(t *testing.T) {
	for _, ref := range []Ref{
		{Origin: "peer-0", Seq: 1},
		{Origin: "127.0.0.1:9000", Seq: 18446744073709551615},
		{Origin: "with/slash", Seq: 7},
	} {
		back, err := ParseRef(ref.String())
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", ref.String(), err)
		}
		if back != ref {
			t.Fatalf("round trip %q → %+v, want %+v", ref.String(), back, ref)
		}
	}
	u := Update{Origin: "peer-3", Seq: 12}
	if u.ID() != "peer-3/12" || u.Ref().String() != u.ID() {
		t.Fatalf("ID/Ref disagree: %q vs %q", u.ID(), u.Ref().String())
	}
	for _, bad := range []string{"", "no-seq", "origin/", "origin/notanumber", "origin/-1"} {
		if _, err := ParseRef(bad); err == nil {
			t.Fatalf("ParseRef(%q) accepted", bad)
		}
	}
}
