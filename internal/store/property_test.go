package store

// Property tests pinning the indexed anti-entropy diff against a naive
// reference implementation, and the Ref round-trip.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// naiveMissingFor is the pre-index reference implementation: re-sort the
// origins and linearly scan every per-origin log.
func naiveMissingFor(s *Store, remote version.Clock) []Update {
	s.mu.RLock()
	defer s.mu.RUnlock()
	origins := make([]string, 0, len(s.data.log))
	for o := range s.data.log {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	var out []Update
	for _, o := range origins {
		have := remote.Get(o)
		for _, u := range s.data.log[o] {
			if u.Seq > have {
				out = append(out, u)
			}
		}
	}
	return out
}

// TestMissingForMatchesNaiveReference builds random logs — random origin
// sets, random sequence subsets applied in random order, so the logs have
// gaps — and compares the binary-searched MissingFor against the linear
// reference for random remote clocks.
func TestMissingForMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stamp := time.Unix(1_700_000_000, 0)
	vid := version.NewID(stamp, "w", rng)
	for trial := 0; trial < 200; trial++ {
		s := New()
		originCount := rng.Intn(6) // sometimes zero: the empty-store case
		for o := 0; o < originCount; o++ {
			origin := fmt.Sprintf("origin-%d", rng.Intn(8))
			// A random subset of sequence numbers, applied shuffled, so the
			// log is Seq-sorted but gapped.
			maxSeq := rng.Intn(30) + 1
			seqs := rng.Perm(maxSeq)
			keep := rng.Intn(len(seqs) + 1)
			for _, seq := range seqs[:keep] {
				s.Apply(Update{
					Origin:  origin,
					Seq:     uint64(seq + 1),
					Key:     fmt.Sprintf("key-%d", rng.Intn(10)),
					Value:   []byte{byte(seq)},
					Version: version.History{vid},
					Stamp:   stamp,
				})
			}
		}
		for probe := 0; probe < 5; probe++ {
			remote := version.NewClock()
			for o := 0; o < 8; o++ {
				if rng.Intn(2) == 0 {
					remote[fmt.Sprintf("origin-%d", o)] = uint64(rng.Intn(35))
				}
			}
			got := s.MissingFor(remote)
			want := naiveMissingFor(s, remote)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d updates, reference %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].Ref() != want[i].Ref() {
					t.Fatalf("trial %d: position %d is %v, reference %v",
						trial, i, got[i].Ref(), want[i].Ref())
				}
			}
		}
	}
}

func TestRefStringRoundTrip(t *testing.T) {
	for _, ref := range []Ref{
		{Origin: "peer-0", Seq: 1},
		{Origin: "127.0.0.1:9000", Seq: 18446744073709551615},
		{Origin: "with/slash", Seq: 7},
	} {
		back, err := ParseRef(ref.String())
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", ref.String(), err)
		}
		if back != ref {
			t.Fatalf("round trip %q → %+v, want %+v", ref.String(), back, ref)
		}
	}
	u := Update{Origin: "peer-3", Seq: 12}
	if u.ID() != "peer-3/12" || u.Ref().String() != u.ID() {
		t.Fatalf("ID/Ref disagree: %q vs %q", u.ID(), u.Ref().String())
	}
	for _, bad := range []string{"", "no-seq", "origin/", "origin/notanumber", "origin/-1"} {
		if _, err := ParseRef(bad); err == nil {
			t.Fatalf("ParseRef(%q) accepted", bad)
		}
	}
}
