package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

func testWriter(t *testing.T, origin string, st *Store, seed int64) *Writer {
	t.Helper()
	clock := time.Unix(1_000_000, 0)
	now := func() time.Time {
		clock = clock.Add(time.Second)
		return clock
	}
	w, err := NewWriter(origin, st, now, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	return w
}

func TestPutGet(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 1)
	w.Put("k", []byte("v1"))
	rev, ok := st.Get("k")
	if !ok || string(rev.Value) != "v1" {
		t.Fatalf("Get = %v %v", rev, ok)
	}
	w.Put("k", []byte("v2"))
	rev, ok = st.Get("k")
	if !ok || string(rev.Value) != "v2" {
		t.Fatalf("after second Put: %q", rev.Value)
	}
	if len(st.Versions("k")) != 1 {
		t.Fatalf("sequential writes should not branch: %d revisions", len(st.Versions("k")))
	}
}

func TestDeleteAndResurrect(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 2)
	w.Put("k", []byte("v1"))
	w.Delete("k")
	if _, ok := st.Get("k"); ok {
		t.Fatal("deleted key still visible")
	}
	if len(st.Keys()) != 0 {
		t.Fatalf("Keys after delete = %v", st.Keys())
	}
	// Tombstoned branch still exists for reconciliation.
	if got := len(st.Versions("k")); got != 1 {
		t.Fatalf("tombstone revisions = %d", got)
	}
	// A new write supersedes the tombstone.
	w.Put("k", []byte("v2"))
	rev, ok := st.Get("k")
	if !ok || string(rev.Value) != "v2" {
		t.Fatalf("resurrect failed: %v %v", rev, ok)
	}
	if got := len(st.Versions("k")); got != 1 {
		t.Fatalf("resurrection should supersede tombstone, got %d branches", got)
	}
}

func TestApplyIdempotent(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 3)
	u := w.Put("k", []byte("v"))
	if got := st.Apply(u); got != Duplicate {
		t.Fatalf("re-apply = %v, want Duplicate", got)
	}
	if st.UpdateCount() != 1 {
		t.Fatalf("UpdateCount = %d", st.UpdateCount())
	}
}

func TestApplyMalformed(t *testing.T) {
	st := New()
	if got := st.Apply(Update{Origin: "", Seq: 1, Key: "k"}); got != Obsolete {
		t.Fatalf("empty origin = %v", got)
	}
	if got := st.Apply(Update{Origin: "a", Seq: 0, Key: "k"}); got != Obsolete {
		t.Fatalf("zero seq = %v", got)
	}
	if st.UpdateCount() != 0 {
		t.Fatal("malformed updates were logged")
	}
}

func TestApplyObsolete(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 4)
	u1 := w.Put("k", []byte("v1"))
	w.Put("k", []byte("v2"))

	other := New()
	other.Apply(st.data.log["a"][1]) // apply v2 first
	if got := other.Apply(u1); got != Obsolete {
		t.Fatalf("ancestor update = %v, want Obsolete", got)
	}
	rev, _ := other.Get("k")
	if string(rev.Value) != "v2" {
		t.Fatalf("obsolete apply overwrote winner: %q", rev.Value)
	}
}

func TestConcurrentBranchesCoexist(t *testing.T) {
	stA, stB := New(), New()
	wA := testWriter(t, "a", stA, 5)
	wB := testWriter(t, "b", stB, 6)
	uA := wA.Put("k", []byte("from-a"))
	uB := wB.Put("k", []byte("from-b"))

	// Cross-apply: both stores now hold two concurrent branches.
	stA.Apply(uB)
	stB.Apply(uA)
	if got := len(stA.Versions("k")); got != 2 {
		t.Fatalf("A branches = %d, want 2", got)
	}
	if got := len(stB.Versions("k")); got != 2 {
		t.Fatalf("B branches = %d, want 2", got)
	}
	// Deterministic winner: both replicas agree.
	ra, _ := stA.Get("k")
	rb, _ := stB.Get("k")
	if !bytes.Equal(ra.Value, rb.Value) {
		t.Fatalf("winners disagree: %q vs %q", ra.Value, rb.Value)
	}
	if !stA.Equal(stB) {
		t.Fatal("stores should be Equal after cross-apply")
	}
}

func TestConflictResolutionByLongerHistory(t *testing.T) {
	stA, stB := New(), New()
	wA := testWriter(t, "a", stA, 7)
	wB := testWriter(t, "b", stB, 8)
	wA.Put("k", []byte("a1"))
	uA2 := wA.Put("k", []byte("a2")) // history length 2
	uB1 := wB.Put("k", []byte("b1")) // history length 1

	stB.Apply(uA2)
	rev, _ := stB.Get("k")
	if string(rev.Value) != "a2" {
		t.Fatalf("longer history should win: got %q", rev.Value)
	}
	stA.Apply(uB1)
	rev, _ = stA.Get("k")
	if string(rev.Value) != "a2" {
		t.Fatalf("longer history should win on A too: got %q", rev.Value)
	}
}

func TestClockAndMissingFor(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 9)
	u1 := w.Put("x", []byte("1"))
	u2 := w.Put("y", []byte("2"))

	empty := version.NewClock()
	missing := st.MissingFor(empty)
	if len(missing) != 2 {
		t.Fatalf("missing for empty clock = %d", len(missing))
	}
	if missing[0].ID() != u1.ID() || missing[1].ID() != u2.ID() {
		t.Fatalf("missing order wrong: %v %v", missing[0].ID(), missing[1].ID())
	}
	// A clock that has seen u1 gets only u2.
	partial := version.NewClock()
	partial["a"] = 1
	missing = st.MissingFor(partial)
	if len(missing) != 1 || missing[0].ID() != u2.ID() {
		t.Fatalf("missing for partial clock = %v", missing)
	}
	// Fully caught up: nothing.
	if got := st.MissingFor(st.Clock()); len(got) != 0 {
		t.Fatalf("missing for own clock = %v", got)
	}
}

func TestAntiEntropyConvergence(t *testing.T) {
	// Two replicas with disjoint writes converge by exchanging
	// MissingFor(other.Clock()) both ways — the pull-phase core.
	stA, stB := New(), New()
	wA := testWriter(t, "a", stA, 10)
	wB := testWriter(t, "b", stB, 11)
	for i := 0; i < 10; i++ {
		wA.Put(fmt.Sprintf("ka%d", i), []byte{byte(i)})
		wB.Put(fmt.Sprintf("kb%d", i), []byte{byte(i)})
	}
	wB.Delete("kb3")

	for _, u := range stA.MissingFor(stB.Clock()) {
		stB.Apply(u)
	}
	for _, u := range stB.MissingFor(stA.Clock()) {
		stA.Apply(u)
	}
	if !stA.Equal(stB) {
		t.Fatal("replicas did not converge")
	}
	if _, ok := stA.Get("kb3"); ok {
		t.Fatal("tombstone did not propagate")
	}
	if len(stA.Keys()) != 19 {
		t.Fatalf("Keys = %d, want 19", len(stA.Keys()))
	}
}

func TestAntiEntropyConvergencePropertyRandomSchedules(t *testing.T) {
	// Property: any interleaving of update deliveries converges to the same
	// state as long as every update eventually reaches every replica.
	cfg := &quick.Config{
		MaxCount: 40,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = r.Int63()
		}),
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const replicas = 4
		stores := make([]*Store, replicas)
		writers := make([]*Writer, replicas)
		clock := time.Unix(2_000_000, 0)
		now := func() time.Time {
			clock = clock.Add(time.Second)
			return clock
		}
		var all []Update
		for i := range stores {
			stores[i] = New()
			w, err := NewWriter(fmt.Sprintf("r%d", i), stores[i], now,
				rand.New(rand.NewSource(seed+int64(i))))
			if err != nil {
				return false
			}
			writers[i] = w
		}
		keys := []string{"k0", "k1", "k2"}
		for step := 0; step < 20; step++ {
			w := writers[rng.Intn(replicas)]
			key := keys[rng.Intn(len(keys))]
			if rng.Intn(5) == 0 {
				all = append(all, w.Delete(key))
			} else {
				all = append(all, w.Put(key, []byte{byte(step)}))
			}
		}
		// Deliver every update to every replica in a random order.
		for i := range stores {
			perm := rng.Perm(len(all))
			for _, idx := range perm {
				stores[i].Apply(all[idx])
			}
		}
		for i := 1; i < replicas; i++ {
			if !stores[0].Equal(stores[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("convergence property failed: %v", err)
	}
}

func TestGCTombstones(t *testing.T) {
	st := NewWithRetention(time.Hour)
	w := testWriter(t, "a", st, 12)
	w.Put("k", []byte("v"))
	del := w.Delete("k")
	if got := st.GCTombstones(del.Stamp.Add(30 * time.Minute)); got != 0 {
		t.Fatalf("early GC collected %d", got)
	}
	if got := st.GCTombstones(del.Stamp.Add(2 * time.Hour)); got != 1 {
		t.Fatalf("GC collected %d, want 1", got)
	}
	if got := len(st.Versions("k")); got != 0 {
		t.Fatalf("revisions after GC = %d", got)
	}
	// The clock still knows about the delete, so reconciliation with the
	// origin does not resurrect it from our side.
	if st.Clock().Get("a") != 2 {
		t.Fatalf("clock regressed: %v", st.Clock())
	}
}

func TestUpdateSizeBytes(t *testing.T) {
	st := New()
	w := testWriter(t, "origin", st, 13)
	u := w.Put("key", []byte("value"))
	want := 24 + len("key") + len("value") + 1*version.IDSize
	if got := u.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter("", New(), nil, nil); err == nil {
		t.Fatal("empty origin should error")
	}
	if _, err := NewWriter("a", nil, nil, nil); err == nil {
		t.Fatal("nil store should error")
	}
}

func TestWriterResumesSequence(t *testing.T) {
	st := New()
	w1 := testWriter(t, "a", st, 14)
	w1.Put("k", []byte("1"))
	w1.Put("k", []byte("2"))
	// A writer recreated over the same store must not reuse sequence
	// numbers.
	w2 := testWriter(t, "a", st, 15)
	u := w2.Put("k", []byte("3"))
	if u.Seq != 3 {
		t.Fatalf("resumed Seq = %d, want 3", u.Seq)
	}
}

func TestGetCopiesState(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 16)
	w.Put("k", []byte("abc"))
	rev, _ := st.Get("k")
	rev.Value[0] = 'X'
	again, _ := st.Get("k")
	if string(again.Value) != "abc" {
		t.Fatal("Get exposed internal state")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, b := New(), New()
	wa := testWriter(t, "a", a, 17)
	if !a.Equal(b) {
		t.Fatal("two empty stores should be equal")
	}
	u := wa.Put("k", []byte("v"))
	if a.Equal(b) {
		t.Fatal("different stores reported equal")
	}
	b.Apply(u)
	if !a.Equal(b) {
		t.Fatal("synced stores should be equal")
	}
	wb := testWriter(t, "b", b, 18)
	wb.Put("k2", []byte("w"))
	if a.Equal(b) {
		t.Fatal("stores with different keys reported equal")
	}
}

func TestApplyResultString(t *testing.T) {
	for r, want := range map[ApplyResult]string{
		Applied: "applied", Duplicate: "duplicate", Obsolete: "obsolete",
	} {
		if got := r.String(); got != want {
			t.Fatalf("String = %q", got)
		}
	}
	if got := ApplyResult(42).String(); got != "ApplyResult(42)" {
		t.Fatalf("unknown String = %q", got)
	}
}

func TestOutOfOrderDelivery(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 19)
	var updates []Update
	for i := 0; i < 5; i++ {
		updates = append(updates, w.Put("k", []byte{byte(i)}))
	}
	// Deliver to a fresh store in reverse: the newest (longest-history)
	// revision must win and obsolete ancestors must not branch.
	fresh := New()
	for i := len(updates) - 1; i >= 0; i-- {
		fresh.Apply(updates[i])
	}
	rev, ok := fresh.Get("k")
	if !ok || rev.Value[0] != 4 {
		t.Fatalf("winner after reverse delivery = %v %v", rev.Value, ok)
	}
	if got := len(fresh.Versions("k")); got != 1 {
		t.Fatalf("branches = %d, want 1", got)
	}
	if fresh.Clock().Get("a") != 5 {
		t.Fatalf("clock = %v", fresh.Clock())
	}
}

func quickValues(fill func(args []interface{}, r *rand.Rand)) func([]reflect.Value, *rand.Rand) {
	return func(vals []reflect.Value, r *rand.Rand) {
		args := make([]interface{}, len(vals))
		fill(args, r)
		for i := range vals {
			vals[i] = reflect.ValueOf(args[i])
		}
	}
}

func TestClockGapSemantics(t *testing.T) {
	// A lost update (sequence gap) must keep the clock low so that a later
	// pull re-fetches the hole.
	src := New()
	w := testWriter(t, "a", src, 20)
	u1 := w.Put("x", []byte("1"))
	u2 := w.Put("y", []byte("2"))
	u3 := w.Put("z", []byte("3"))

	dst := New()
	dst.Apply(u1)
	dst.Apply(u3) // u2 lost in flight
	if got := dst.Clock().Get("a"); got != 1 {
		t.Fatalf("clock with gap = %d, want 1 (contiguous prefix)", got)
	}
	// Anti-entropy from the source must close the gap (and may resend u3,
	// which is harmless).
	for _, u := range src.MissingFor(dst.Clock()) {
		dst.Apply(u)
	}
	if got := dst.Clock().Get("a"); got != 3 {
		t.Fatalf("clock after repair = %d, want 3", got)
	}
	if _, ok := dst.Get("y"); !ok {
		t.Fatal("gap update not recovered")
	}
	_ = u2
	if !src.Equal(dst) {
		t.Fatal("stores did not converge after gap repair")
	}
}
