package store

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 40)
	w.Put("x", []byte("1"))
	w.Put("y", []byte("2"))
	w.Put("x", []byte("3"))
	w.Delete("y")

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored, err := ReadSnapshot(&buf, DefaultTombstoneRetention)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !st.Equal(restored) {
		t.Fatal("restored store differs")
	}
	if restored.UpdateCount() != 4 {
		t.Fatalf("restored log = %d updates", restored.UpdateCount())
	}
	if got := restored.Clock().Get("a"); got != 4 {
		t.Fatalf("restored clock = %d", got)
	}
	// Tombstone survived the round trip.
	if _, ok := restored.Get("y"); ok {
		t.Fatal("delete lost in snapshot")
	}
	if len(restored.Versions("y")) != 1 {
		t.Fatal("tombstone branch lost")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if restored.UpdateCount() != 0 || len(restored.Keys()) != 0 {
		t.Fatal("empty snapshot restored non-empty store")
	}
}

func TestReadSnapshotGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot"), time.Hour); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestReplaceSwapsState(t *testing.T) {
	a := New()
	wa := testWriter(t, "a", a, 41)
	wa.Put("old", []byte("x"))

	b := New()
	wb := testWriter(t, "b", b, 42)
	wb.Put("new", []byte("y"))

	a.Replace(b)
	if _, ok := a.Get("old"); ok {
		t.Fatal("Replace kept old state")
	}
	rev, ok := a.Get("new")
	if !ok || string(rev.Value) != "y" {
		t.Fatal("Replace did not adopt new state")
	}
	// Deep copy: mutating b afterwards must not affect a.
	wb.Put("new", []byte("z"))
	rev, _ = a.Get("new")
	if string(rev.Value) != "y" {
		t.Fatal("Replace aliases the source store")
	}
}

func TestWriterResyncAfterRestore(t *testing.T) {
	st := New()
	w := testWriter(t, "a", st, 43)
	w.Put("k", []byte("1"))
	w.Put("k", []byte("2"))

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf, DefaultTombstoneRetention)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh writer over a fresh store pointed at restored state.
	fresh := New()
	fresh.Replace(restored)
	w2 := testWriter(t, "a", fresh, 44)
	w2.Resync()
	u := w2.Put("k", []byte("3"))
	if u.Seq != 3 {
		t.Fatalf("post-restore Seq = %d, want 3", u.Seq)
	}
}

// TestRestoreSnapshotInPlace checks the restart path: RestoreSnapshot swaps
// the contents of an already-wired store (pointer and apply hook stable) and
// keeps the store's own tombstone retention.
func TestRestoreSnapshotInPlace(t *testing.T) {
	src := New()
	w := testWriter(t, "a", src, 41)
	w.Put("x", []byte("1"))
	w.Delete("x")
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	dst := NewWithRetention(time.Hour)
	hooked := 0
	dst.SetApplyHook(func(Update, ApplyResult, int) { hooked++ })
	testWriter(t, "b", dst, 42).Put("old", []byte("gone"))
	preHooks := hooked
	if err := dst.RestoreSnapshot(&buf); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if !dst.Equal(src) {
		t.Fatal("restored store differs from source")
	}
	if _, ok := dst.Get("old"); ok {
		t.Fatal("pre-restore state survived")
	}
	if hooked != preHooks {
		t.Fatal("restore replay fired the apply hook")
	}
	// The hook must remain wired for post-restore traffic.
	testWriter(t, "c", dst, 43).Put("new", []byte("1"))
	if hooked != preHooks+1 {
		t.Fatal("apply hook lost across restore")
	}
	// Retention stays the destination's: an expired tombstone under the
	// 1-hour retention is collected even though the source used the default.
	if got := dst.GCTombstones(time.Unix(1_700_000_000, 0).Add(48 * time.Hour)); got != 1 {
		t.Fatalf("GC collected %d tombstones, want 1 (retention not kept)", got)
	}
}

func TestRestoreSnapshotGarbage(t *testing.T) {
	st := New()
	testWriter(t, "a", st, 44).Put("x", []byte("1"))
	if err := st.RestoreSnapshot(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, ok := st.Get("x"); !ok {
		t.Fatal("failed restore clobbered the store")
	}
}
