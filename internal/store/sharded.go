package store

import (
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pgossip/update/internal/pgrid"
	"github.com/p2pgossip/update/internal/version"
)

// Sharded is the lock-striped Backend for multi-core ingest. State is split
// two ways, because the store's two halves have different natural keys:
//
//   - log shards, routed by hash of the update's Origin, each own their
//     slice of the per-origin log, the frontier (origin) index, and the
//     vector-clock segment summarising it. An origin lives entirely in one
//     shard, so per-origin invariants (Seq ordering, contiguous-prefix clock
//     advance, duplicate detection) need no cross-shard coordination.
//   - item shards, routed by hash of the update's Key, each own their slice
//     of the key → revision-branches map. A key lives entirely in one shard,
//     so version domination between concurrent branches of the same key is
//     still decided under a single lock.
//
// Both routers use pgrid.PathBits — the same hash that addresses P-Grid's
// binary trie — taking the high bits, so a shard corresponds to a contiguous
// run of trie partitions and store sharding aligns with P-Grid partitioning.
//
// Lock ordering: Apply never holds a log-shard and an item-shard lock at the
// same time (log first, released, then item). Whole-store operations
// (MissingFor, Clock, Keys, Reset, RestoreSnapshot) lock shards in ascending
// index order, log shards strictly before item shards. No operation acquires
// two locks of the same kind out of order, so the store cannot deadlock
// against itself.
//
// The apply window between the log record and the revision merge means a
// reader can momentarily see an update in the log (clock, MissingFor) before
// it reaches the revision map. That is indistinguishable from the update
// having been applied just before the read, and snapshots serialise only the
// log, so snapshot bytes and anti-entropy stay exact.
type Sharded struct {
	logs  []logShard
	items []itemShard
	// shift converts pgrid.PathBits' high bits into a shard index:
	// 64 - log2(shards). A single shard shifts by 64, which Go defines as 0.
	shift uint
	// tombRetain is how long tombstones are kept before GC. Immutable after
	// construction.
	tombRetain time.Duration
	// hook observes every Apply outcome; stored atomically so ingest never
	// takes a store-wide lock to read it.
	hook atomic.Pointer[ApplyHook]
}

// logShard is one independently locked slice of the update log.
type logShard struct {
	mu   sync.RWMutex
	data originLog
}

// itemShard is one independently locked slice of the revision map.
type itemShard struct {
	mu    sync.RWMutex
	items map[string][]Revision
}

// DefaultShards is the shard count NewSharded(0) uses — enough stripes to
// keep a fanout of connection readers from colliding, small enough that
// whole-store operations stay cheap.
const DefaultShards = 8

// maxShards bounds the stripe count; beyond this, per-shard fixed costs
// dominate any contention win.
const maxShards = 256

// NewSharded returns an empty sharded store with the default tombstone
// retention. shards <= 0 selects DefaultShards; other values are rounded up
// to the next power of two and capped at maxShards.
func NewSharded(shards int) *Sharded {
	return NewShardedWithRetention(shards, DefaultTombstoneRetention)
}

// NewShardedWithRetention is NewSharded with an explicit tombstone
// retention.
func NewShardedWithRetention(shards int, retain time.Duration) *Sharded {
	n := normalizeShards(shards)
	s := &Sharded{
		logs:       make([]logShard, n),
		items:      make([]itemShard, n),
		shift:      uint(64 - bits.TrailingZeros(uint(n))),
		tombRetain: retain,
	}
	for i := range s.logs {
		s.logs[i].data = newOriginLog()
	}
	for i := range s.items {
		s.items[i].items = make(map[string][]Revision)
	}
	return s
}

// normalizeShards maps a requested shard count onto the supported range:
// a power of two in [1, maxShards], defaulting to DefaultShards.
func normalizeShards(shards int) int {
	if shards <= 0 {
		return DefaultShards
	}
	if shards > maxShards {
		return maxShards
	}
	return 1 << uint(bits.Len(uint(shards-1)))
}

// ShardCount returns the number of stripes (same for logs and items).
func (s *Sharded) ShardCount() int { return len(s.logs) }

// logFor routes an origin to its log shard.
func (s *Sharded) logFor(origin string) *logShard {
	return &s.logs[pgrid.PathBits(origin)>>s.shift]
}

// itemFor routes a key to its item shard.
func (s *Sharded) itemFor(key string) *itemShard {
	return &s.items[pgrid.PathBits(key)>>s.shift]
}

// SetApplyHook registers a callback observing every subsequent Apply. Pass
// nil to remove it.
func (s *Sharded) SetApplyHook(h ApplyHook) {
	if h == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&h)
}

// Apply ingests one update and returns the outcome. Updates may arrive in
// any order and repeatedly; Apply is idempotent per (origin, seq), and
// applies routed to different shards run without contending.
func (s *Sharded) Apply(u Update) ApplyResult {
	res, _ := s.ApplyObserved(u)
	return res
}

// ApplyObserved is Apply returning also the number of coexisting revisions
// of the key, counted atomically with the revision merge.
func (s *Sharded) ApplyObserved(u Update) (ApplyResult, int) {
	res, branches := s.apply(u)
	if h := s.hook.Load(); h != nil {
		(*h)(u, res, branches)
	}
	return res, branches
}

func (s *Sharded) apply(u Update) (ApplyResult, int) {
	if u.Seq == 0 || u.Origin == "" {
		// Malformed updates are treated as obsolete noise rather than
		// panicking; the transport layer validates before this point.
		return Obsolete, s.BranchCount(u.Key)
	}
	ls := s.logFor(u.Origin)
	ls.mu.Lock()
	if ls.data.have(u.Origin, u.Seq) {
		ls.mu.Unlock()
		return Duplicate, s.BranchCount(u.Key)
	}
	ls.data.record(u)
	ls.mu.Unlock()

	is := s.itemFor(u.Key)
	is.mu.Lock()
	res := applyRevision(is.items, u)
	branches := len(is.items[u.Key])
	is.mu.Unlock()
	return res, branches
}

// Seen reports whether the exact update identified by ref was already
// applied, touching only the origin's log shard.
func (s *Sharded) Seen(ref Ref) bool {
	ls := s.logFor(ref.Origin)
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.data.have(ref.Origin, ref.Seq)
}

// BranchCount returns the number of coexisting revisions of key, including
// tombstoned branches. Zero means the key is unknown.
func (s *Sharded) BranchCount(key string) int {
	is := s.itemFor(key)
	is.mu.RLock()
	defer is.mu.RUnlock()
	return len(is.items[key])
}

// Get returns the winning revision for key (see Store.Get).
func (s *Sharded) Get(key string) (Revision, bool) {
	is := s.itemFor(key)
	is.mu.RLock()
	defer is.mu.RUnlock()
	best, ok := winner(is.items[key])
	if !ok || best.Deleted {
		return Revision{}, false
	}
	return cloneRevision(best), true
}

// Versions returns copies of all coexisting revisions of key, including
// tombstoned branches, sorted deterministically.
func (s *Sharded) Versions(key string) []Revision {
	is := s.itemFor(key)
	is.mu.RLock()
	defer is.mu.RUnlock()
	revs := is.items[key]
	out := make([]Revision, len(revs))
	for i, r := range revs {
		out[i] = cloneRevision(r)
	}
	sortRevisions(out)
	return out
}

// Keys returns the sorted set of keys with at least one live revision,
// gathered under all item-shard read locks (ascending) for a consistent cut.
func (s *Sharded) Keys() []string {
	for i := range s.items {
		s.items[i].mu.RLock()
	}
	var keys []string
	for i := range s.items {
		for k, revs := range s.items[i].items {
			if w, ok := winner(revs); ok && !w.Deleted {
				keys = append(keys, k)
			}
		}
	}
	for i := len(s.items) - 1; i >= 0; i-- {
		s.items[i].mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Clock composes the per-shard vector-clock segments into the global clock.
// Origins are disjoint across shards, so composition is a union, taken under
// all log-shard read locks (ascending) for a consistent cut.
func (s *Sharded) Clock() version.Clock {
	for i := range s.logs {
		s.logs[i].mu.RLock()
	}
	out := version.NewClock()
	for i := range s.logs {
		for origin, seq := range s.logs[i].data.clock {
			out[origin] = seq
		}
	}
	for i := len(s.logs) - 1; i >= 0; i-- {
		s.logs[i].mu.RUnlock()
	}
	return out
}

// MissingFor returns every logged update the remote clock has not seen, in
// the same canonical (origin asc, seq asc) order as the single-lock Store —
// shard layout never leaks into the result. Taken under all log-shard read
// locks for a consistent cut; callers must treat the result as read-only.
func (s *Sharded) MissingFor(remote version.Clock) []Update {
	for i := range s.logs {
		s.logs[i].mu.RLock()
	}
	defer func() {
		for i := len(s.logs) - 1; i >= 0; i-- {
			s.logs[i].mu.RUnlock()
		}
	}()
	total, norigins := 0, 0
	for i := range s.logs {
		total += s.logs[i].data.missingCount(remote)
		norigins += len(s.logs[i].data.origins)
	}
	if total == 0 {
		return nil
	}
	// Origins are disjoint across shards and sorted within each, so a global
	// sort of the union restores the canonical order; each origin's run then
	// comes whole from its home shard.
	origins := make([]string, 0, norigins)
	for i := range s.logs {
		origins = append(origins, s.logs[i].data.origins...)
	}
	sort.Strings(origins)
	out := make([]Update, 0, total)
	for _, o := range origins {
		log := s.logFor(o).data.log[o]
		out = append(out, log[seqSearch(log, remote.Get(o)+1):]...)
	}
	return out
}

// DeltaFor is MissingFor with compaction awareness: ok == false reports that
// compaction has dropped part of the remote's gap, so only a snapshot can
// catch it up. Taken under all log-shard read locks for a consistent cut.
func (s *Sharded) DeltaFor(remote version.Clock) ([]Update, bool) {
	for i := range s.logs {
		s.logs[i].mu.RLock()
	}
	defer func() {
		for i := len(s.logs) - 1; i >= 0; i-- {
			s.logs[i].mu.RUnlock()
		}
	}()
	total, norigins := 0, 0
	for i := range s.logs {
		if s.logs[i].data.gapBefore(remote) {
			return nil, false
		}
		total += s.logs[i].data.missingCount(remote)
		norigins += len(s.logs[i].data.origins)
	}
	if total == 0 {
		return nil, true
	}
	origins := make([]string, 0, norigins)
	for i := range s.logs {
		origins = append(origins, s.logs[i].data.origins...)
	}
	sort.Strings(origins)
	out := make([]Update, 0, total)
	for _, o := range origins {
		log := s.logFor(o).data.log[o]
		out = append(out, log[seqSearch(log, remote.Get(o)+1):]...)
	}
	return out, true
}

// CompactLog drops log entries at or below the frontier that no longer back
// a coexisting revision, advancing the compacted watermark. It takes the
// whole-store lock order (all log shards ascending, then all item shards)
// because the retention predicate reads the revision maps while the logs are
// being rewritten.
func (s *Sharded) CompactLog(frontier version.Clock) int {
	for i := range s.logs {
		s.logs[i].mu.Lock()
	}
	for i := range s.items {
		s.items[i].mu.RLock()
	}
	retain := func(u Update) bool {
		return backsRevision(s.items[pgrid.PathBits(u.Key)>>s.shift].items, u)
	}
	dropped := 0
	for i := range s.logs {
		dropped += s.logs[i].data.compact(frontier, retain)
	}
	for i := len(s.items) - 1; i >= 0; i-- {
		s.items[i].mu.RUnlock()
	}
	for i := len(s.logs) - 1; i >= 0; i-- {
		s.logs[i].mu.Unlock()
	}
	return dropped
}

// CompactedThrough returns a copy of the per-origin compacted watermark,
// composed from the per-shard segments like Clock.
func (s *Sharded) CompactedThrough() version.Clock {
	for i := range s.logs {
		s.logs[i].mu.RLock()
	}
	out := version.NewClock()
	for i := range s.logs {
		for origin, seq := range s.logs[i].data.compacted {
			out[origin] = seq
		}
	}
	for i := len(s.logs) - 1; i >= 0; i-- {
		s.logs[i].mu.RUnlock()
	}
	return out
}

// AdoptFrontier raises the compacted watermark and clock to wm without
// dropping entries. Each origin lives entirely in one log shard, so adoption
// is per-shard with no cross-shard atomicity needed.
func (s *Sharded) AdoptFrontier(wm version.Clock) {
	for origin, through := range wm {
		ls := s.logFor(origin)
		ls.mu.Lock()
		ls.data.adoptCompacted(origin, through)
		ls.mu.Unlock()
	}
}

// ExpireTTL tombstones live revisions whose Stamp is at least ttl old at
// now; ttl <= 0 is a no-op. Shards are expired one at a time; expiry needs
// no cross-shard atomicity.
func (s *Sharded) ExpireTTL(now time.Time, ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	expired := 0
	for i := range s.items {
		s.items[i].mu.Lock()
		expired += expireRevisions(s.items[i].items, now, ttl)
		s.items[i].mu.Unlock()
	}
	return expired
}

// UpdateCount returns the number of resident log entries.
func (s *Sharded) UpdateCount() int {
	n := 0
	for i := range s.logs {
		s.logs[i].mu.RLock()
		n += s.logs[i].data.count()
		s.logs[i].mu.RUnlock()
	}
	return n
}

// GCTombstones drops tombstoned revisions whose retention expired at now,
// returning the number collected. Shards are collected one at a time; GC
// needs no cross-shard atomicity.
func (s *Sharded) GCTombstones(now time.Time) int {
	collected := 0
	for i := range s.items {
		s.items[i].mu.Lock()
		collected += gcRevisions(s.items[i].items, now, s.tombRetain)
		s.items[i].mu.Unlock()
	}
	return collected
}

// Equal reports whether the two stores hold identical live state.
func (s *Sharded) Equal(other Backend) bool {
	return backendEqual(s, other)
}

// WriteSnapshot serialises the resident update log and compacted watermark
// to w. The stream is byte-identical to the one the single-lock Store
// produces for the same logical contents, regardless of shard count: both
// serialise MissingFor(nil) and the watermark, whose orders are canonical.
func (s *Sharded) WriteSnapshot(w io.Writer) error {
	// One consistent cut across all log shards for both the entries and the
	// watermark, mirroring the single-lock Store's single read lock.
	for i := range s.logs {
		s.logs[i].mu.RLock()
	}
	total, norigins := 0, 0
	for i := range s.logs {
		total += s.logs[i].data.missingCount(nil)
		norigins += len(s.logs[i].data.origins)
	}
	origins := make([]string, 0, norigins)
	for i := range s.logs {
		origins = append(origins, s.logs[i].data.origins...)
	}
	sort.Strings(origins)
	updates := make([]Update, 0, total)
	compacted := version.NewClock()
	for _, o := range origins {
		updates = append(updates, s.logFor(o).data.log[o]...)
	}
	for i := range s.logs {
		for origin, seq := range s.logs[i].data.compacted {
			compacted[origin] = seq
		}
	}
	for i := len(s.logs) - 1; i >= 0; i-- {
		s.logs[i].mu.RUnlock()
	}
	return encodeSnapshot(w, updates, compacted)
}

// RestoreSnapshot replaces the store's contents with a snapshot previously
// produced by any Backend's WriteSnapshot, keeping the pointer — and any
// registered apply hook — stable. The current shard count and tombstone
// retention are kept.
func (s *Sharded) RestoreSnapshot(r io.Reader) error {
	updates, compacted, err := decodeSnapshot(r)
	if err != nil {
		return err
	}
	// Build the replacement off to the side with the same shape, then swap
	// shard contents under the standard whole-store lock order.
	fresh := NewShardedWithRetention(len(s.logs), s.tombRetain)
	for _, u := range updates {
		fresh.Apply(u)
	}
	fresh.AdoptFrontier(compacted)
	s.replaceFrom(fresh)
	return nil
}

// Reset clears the store to empty, keeping shard count, retention, hook,
// and the pointer stable. It is the simulator's crash-with-disk-loss path.
func (s *Sharded) Reset() {
	s.replaceFrom(NewShardedWithRetention(len(s.logs), s.tombRetain))
}

// replaceFrom adopts the shard contents of fresh, which must have the same
// shard count and must not be shared with any other goroutine. Locks follow
// the whole-store order: all log shards ascending, then all item shards
// ascending.
func (s *Sharded) replaceFrom(fresh *Sharded) {
	for i := range s.logs {
		s.logs[i].mu.Lock()
	}
	for i := range s.items {
		s.items[i].mu.Lock()
	}
	for i := range s.logs {
		s.logs[i].data = fresh.logs[i].data
	}
	for i := range s.items {
		s.items[i].items = fresh.items[i].items
	}
	for i := len(s.items) - 1; i >= 0; i-- {
		s.items[i].mu.Unlock()
	}
	for i := len(s.logs) - 1; i >= 0; i-- {
		s.logs[i].mu.Unlock()
	}
}
