package store

import (
	"sort"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// originLog is the per-origin update log with its sorted origin index and
// the vector-clock segment summarising it. It is the unit of state a
// Sharded shard owns exclusively — and that the single-lock Store owns once
// — so both implementations share the frontier, ordering, and clock-advance
// semantics exactly. originLog does no locking; the owner serialises access.
type originLog struct {
	// log holds every applied update per origin, ordered by Seq, backing
	// anti-entropy diffs. Logged updates are immutable once appended.
	log map[string][]Update
	// origins is the sorted list of log keys, maintained incrementally so
	// missingFor does not re-sort on every pull request.
	origins []string
	// clock summarises the applied updates of this log's origins.
	clock version.Clock
	// compacted is the per-origin compaction watermark: every sequence at or
	// below it is covered — either retained because it still backs a
	// coexisting revision, or dropped as superseded history. A remote clock
	// below the watermark cannot be served an entry-by-entry delta any more;
	// it needs a snapshot.
	compacted version.Clock
}

func newOriginLog() originLog {
	return originLog{
		log:       make(map[string][]Update),
		clock:     version.NewClock(),
		compacted: version.NewClock(),
	}
}

// have reports whether the (origin, seq) update is already logged. Sequences
// at or below the compaction watermark count as logged: the update was seen
// and either retained or dropped as superseded, so a straggling copy must be
// a duplicate, not a fresh apply that would resurrect compacted history.
func (l *originLog) have(origin string, seq uint64) bool {
	if seq <= l.compacted.Get(origin) {
		return true
	}
	log := l.log[origin]
	idx := seqSearch(log, seq)
	return idx < len(log) && log[idx].Seq == seq
}

// record logs one update (idempotently) and advances the origin's clock
// segment over the contiguous prefix of received sequence numbers. A gap
// (update lost in flight) keeps the clock low so that a later pull
// re-fetches the hole. The log is Seq-sorted, so the walk starts at the
// binary-searched frontier and covers only the newly contiguous run —
// in-order delivery advances in O(log n) + O(1) instead of rescanning the
// whole log.
func (l *originLog) record(u Update) {
	if u.Seq <= l.compacted.Get(u.Origin) {
		// Covered by the compaction watermark: a straggling copy of history
		// that was already retained or dropped; re-inserting it would undo
		// the compaction.
		return
	}
	log, known := l.log[u.Origin]
	if !known {
		l.insertOrigin(u.Origin)
	}
	idx := seqSearch(log, u.Seq)
	if idx < len(log) && log[idx].Seq == u.Seq {
		return
	}
	log = append(log, Update{})
	copy(log[idx+1:], log[idx:])
	log[idx] = u
	l.log[u.Origin] = log

	cur := l.clock.Get(u.Origin)
	for i := seqSearch(log, cur+1); i < len(log) && log[i].Seq == cur+1; i++ {
		cur++
	}
	if cur > l.clock.Get(u.Origin) {
		l.clock[u.Origin] = cur
	}
}

// insertOrigin adds a newly seen origin to the sorted origin index.
func (l *originLog) insertOrigin(origin string) {
	idx := sort.SearchStrings(l.origins, origin)
	l.origins = append(l.origins, "")
	copy(l.origins[idx+1:], l.origins[idx:])
	l.origins[idx] = origin
}

// compact drops log entries at or below the frontier that no longer back a
// coexisting revision (retain reports whether an entry still does) and
// advances the per-origin compacted watermark. The watermark never passes the
// clock's contiguous prefix: a hole in the log is an in-flight update, not
// history, and must stay pullable. Returns the number of entries dropped.
func (l *originLog) compact(frontier version.Clock, retain func(Update) bool) int {
	dropped := 0
	for _, o := range l.origins {
		limit := frontier.Get(o)
		if c := l.clock.Get(o); c < limit {
			limit = c
		}
		if limit <= l.compacted.Get(o) {
			continue
		}
		log := l.log[o]
		end := seqSearch(log, limit+1)
		kept := log[:0]
		for _, u := range log[:end] {
			if retain(u) {
				kept = append(kept, u)
			} else {
				dropped++
			}
		}
		kept = append(kept, log[end:]...)
		// Zero the tail so dropped entries' values do not pin memory.
		for i := len(kept); i < len(log); i++ {
			log[i] = Update{}
		}
		l.log[o] = kept
		l.compacted[o] = limit
	}
	return dropped
}

// gapBefore reports whether compaction has dropped entries the remote clock
// still needs. A remote below some origin's watermark is not by itself a
// gap: compaction retains entries that still back coexisting revisions, so
// when the full run (remote, watermark] happens to have survived — a peer
// that merely missed a recent, still-live write — the entry-by-entry delta
// is still exact. Only a hole in that run forces a snapshot.
func (l *originLog) gapBefore(remote version.Clock) bool {
	for o, c := range l.compacted {
		r := remote.Get(o)
		if r >= c {
			continue
		}
		log := l.log[o]
		i := seqSearch(log, r+1)
		for seq := r + 1; seq <= c; seq++ {
			if i >= len(log) || log[i].Seq != seq {
				return true
			}
			i++
		}
	}
	return false
}

// adoptCompacted raises the compacted watermark — and the clock — for one
// origin to at least `through`, without dropping entries. It is the receiving
// half of a snapshot catch-up: the snapshot's updates have already been
// applied, and its watermark certifies that everything at or below it that
// still matters was among them, so the clock may jump the holes left by the
// sender's compaction and then resume its contiguous walk.
func (l *originLog) adoptCompacted(origin string, through uint64) {
	if through <= l.compacted.Get(origin) {
		return
	}
	if _, known := l.log[origin]; !known {
		if idx := sort.SearchStrings(l.origins, origin); idx >= len(l.origins) || l.origins[idx] != origin {
			l.insertOrigin(origin)
		}
		l.log[origin] = nil
	}
	l.compacted[origin] = through
	cur := l.clock.Get(origin)
	if cur < through {
		cur = through
		log := l.log[origin]
		for i := seqSearch(log, cur+1); i < len(log) && log[i].Seq == cur+1; i++ {
			cur++
		}
		l.clock[origin] = cur
	}
}

// missingCount returns the number of logged updates the remote clock has
// not seen.
func (l *originLog) missingCount(remote version.Clock) int {
	total := 0
	for _, o := range l.origins {
		total += len(l.log[o]) - seqSearch(l.log[o], remote.Get(o)+1)
	}
	return total
}

// appendMissing appends every logged update the remote clock has not seen,
// ordered by origin then sequence. The result shares Value and Version
// backing with the log (logged updates are immutable).
func (l *originLog) appendMissing(out []Update, remote version.Clock) []Update {
	for _, o := range l.origins {
		log := l.log[o]
		out = append(out, log[seqSearch(log, remote.Get(o)+1):]...)
	}
	return out
}

// count returns the number of logged updates.
func (l *originLog) count() int {
	n := 0
	for _, log := range l.log {
		n += len(log)
	}
	return n
}

// seqSearch returns the index of the first entry with Seq >= seq. Logs are
// Seq-ordered, so this is the binary-searched frontier of an anti-entropy
// diff when called with seq = remote+1.
func seqSearch(log []Update, seq uint64) int {
	return sort.Search(len(log), func(i int) bool { return log[i].Seq >= seq })
}

// applyRevision merges one update into a key → revisions map: branches the
// update causally dominates are dropped, concurrent branches coexist, and an
// update already covered by an existing branch is Obsolete. This is the
// item-level half of an apply, shared between Store and Sharded so the
// domination semantics cannot diverge.
func applyRevision(items map[string][]Revision, u Update) ApplyResult {
	revs := items[u.Key]
	newRev := Revision{Version: u.Version, Value: u.Value, Deleted: u.Delete, Stamp: u.Stamp}
	kept := revs[:0]
	dominated := false
	for _, r := range revs {
		switch r.Version.Compare(u.Version) {
		case version.Before:
			// Existing branch is an ancestor: superseded, drop it.
		case version.Equal, version.After:
			// The incoming update is already covered.
			dominated = true
			kept = append(kept, r)
		case version.Concurrent:
			kept = append(kept, r)
		}
	}
	if dominated {
		items[u.Key] = kept
		return Obsolete
	}
	items[u.Key] = append(kept, newRev)
	return Applied
}

// backsRevision reports whether u's version still heads a coexisting branch
// of its key — the retention predicate of log compaction. Snapshots replay
// the log, so entries backing current branches (live or tombstoned) must
// survive compaction; everything else below the frontier is superseded
// history nothing can ask for any more.
func backsRevision(items map[string][]Revision, u Update) bool {
	for _, r := range items[u.Key] {
		if r.Version.Compare(u.Version) == version.Equal {
			return true
		}
	}
	return false
}

// expireRevisions tombstones live revisions whose Stamp is at least ttl old
// at now, in one key → revisions map. Expiry keeps Version and Stamp, so the
// resulting tombstone flows through the ordinary retention GC; because the
// decision depends only on replicated fields (Stamp) and shared policy (ttl),
// replicas running the same janitor converge on the same expiries without
// exchanging a single message.
func expireRevisions(items map[string][]Revision, now time.Time, ttl time.Duration) int {
	expired := 0
	for _, revs := range items {
		for i, r := range revs {
			if !r.Deleted && now.Sub(r.Stamp) >= ttl {
				revs[i].Deleted = true
				expired++
			}
		}
	}
	return expired
}

// gcRevisions drops tombstoned revisions whose retention expired, per the
// GCTombstones contract, from one key → revisions map.
func gcRevisions(items map[string][]Revision, now time.Time, retain time.Duration) int {
	collected := 0
	for key, revs := range items {
		kept := revs[:0]
		for _, r := range revs {
			ts := version.Tombstone{Deleted: r.Version, At: r.Stamp, Retain: retain}
			if r.Deleted && ts.Expired(now) {
				collected++
				continue
			}
			kept = append(kept, r)
		}
		if len(kept) == 0 {
			delete(items, key)
		} else {
			items[key] = kept
		}
	}
	return collected
}
