package store

import (
	"sort"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// originLog is the per-origin update log with its sorted origin index and
// the vector-clock segment summarising it. It is the unit of state a
// Sharded shard owns exclusively — and that the single-lock Store owns once
// — so both implementations share the frontier, ordering, and clock-advance
// semantics exactly. originLog does no locking; the owner serialises access.
type originLog struct {
	// log holds every applied update per origin, ordered by Seq, backing
	// anti-entropy diffs. Logged updates are immutable once appended.
	log map[string][]Update
	// origins is the sorted list of log keys, maintained incrementally so
	// missingFor does not re-sort on every pull request.
	origins []string
	// clock summarises the applied updates of this log's origins.
	clock version.Clock
}

func newOriginLog() originLog {
	return originLog{
		log:   make(map[string][]Update),
		clock: version.NewClock(),
	}
}

// have reports whether the (origin, seq) update is already logged.
func (l *originLog) have(origin string, seq uint64) bool {
	log := l.log[origin]
	idx := seqSearch(log, seq)
	return idx < len(log) && log[idx].Seq == seq
}

// record logs one update (idempotently) and advances the origin's clock
// segment over the contiguous prefix of received sequence numbers. A gap
// (update lost in flight) keeps the clock low so that a later pull
// re-fetches the hole. The log is Seq-sorted, so the walk starts at the
// binary-searched frontier and covers only the newly contiguous run —
// in-order delivery advances in O(log n) + O(1) instead of rescanning the
// whole log.
func (l *originLog) record(u Update) {
	log, known := l.log[u.Origin]
	if !known {
		l.insertOrigin(u.Origin)
	}
	idx := seqSearch(log, u.Seq)
	if idx < len(log) && log[idx].Seq == u.Seq {
		return
	}
	log = append(log, Update{})
	copy(log[idx+1:], log[idx:])
	log[idx] = u
	l.log[u.Origin] = log

	cur := l.clock.Get(u.Origin)
	for i := seqSearch(log, cur+1); i < len(log) && log[i].Seq == cur+1; i++ {
		cur++
	}
	if cur > l.clock.Get(u.Origin) {
		l.clock[u.Origin] = cur
	}
}

// insertOrigin adds a newly seen origin to the sorted origin index.
func (l *originLog) insertOrigin(origin string) {
	idx := sort.SearchStrings(l.origins, origin)
	l.origins = append(l.origins, "")
	copy(l.origins[idx+1:], l.origins[idx:])
	l.origins[idx] = origin
}

// missingCount returns the number of logged updates the remote clock has
// not seen.
func (l *originLog) missingCount(remote version.Clock) int {
	total := 0
	for _, o := range l.origins {
		total += len(l.log[o]) - seqSearch(l.log[o], remote.Get(o)+1)
	}
	return total
}

// appendMissing appends every logged update the remote clock has not seen,
// ordered by origin then sequence. The result shares Value and Version
// backing with the log (logged updates are immutable).
func (l *originLog) appendMissing(out []Update, remote version.Clock) []Update {
	for _, o := range l.origins {
		log := l.log[o]
		out = append(out, log[seqSearch(log, remote.Get(o)+1):]...)
	}
	return out
}

// count returns the number of logged updates.
func (l *originLog) count() int {
	n := 0
	for _, log := range l.log {
		n += len(log)
	}
	return n
}

// seqSearch returns the index of the first entry with Seq >= seq. Logs are
// Seq-ordered, so this is the binary-searched frontier of an anti-entropy
// diff when called with seq = remote+1.
func seqSearch(log []Update, seq uint64) int {
	return sort.Search(len(log), func(i int) bool { return log[i].Seq >= seq })
}

// applyRevision merges one update into a key → revisions map: branches the
// update causally dominates are dropped, concurrent branches coexist, and an
// update already covered by an existing branch is Obsolete. This is the
// item-level half of an apply, shared between Store and Sharded so the
// domination semantics cannot diverge.
func applyRevision(items map[string][]Revision, u Update) ApplyResult {
	revs := items[u.Key]
	newRev := Revision{Version: u.Version, Value: u.Value, Deleted: u.Delete, Stamp: u.Stamp}
	kept := revs[:0]
	dominated := false
	for _, r := range revs {
		switch r.Version.Compare(u.Version) {
		case version.Before:
			// Existing branch is an ancestor: superseded, drop it.
		case version.Equal, version.After:
			// The incoming update is already covered.
			dominated = true
			kept = append(kept, r)
		case version.Concurrent:
			kept = append(kept, r)
		}
	}
	if dominated {
		items[u.Key] = kept
		return Obsolete
	}
	items[u.Key] = append(kept, newRev)
	return Applied
}

// gcRevisions drops tombstoned revisions whose retention expired, per the
// GCTombstones contract, from one key → revisions map.
func gcRevisions(items map[string][]Revision, now time.Time, retain time.Duration) int {
	collected := 0
	for key, revs := range items {
		kept := revs[:0]
		for _, r := range revs {
			ts := version.Tombstone{Deleted: r.Version, At: r.Stamp, Retain: retain}
			if r.Deleted && ts.Expired(now) {
				collected++
				continue
			}
			kept = append(kept, r)
		}
		if len(kept) == 0 {
			delete(items, key)
		} else {
			items[key] = kept
		}
	}
	return collected
}
