// Package store implements the replicated, versioned data store that the
// update protocol synchronises.
//
// The paper's data model (§3) is deliberately weak: update conflicts are
// rare, and when concurrent versions of an item arise "it may be treated as
// distinct and coexists as different versions". Deletions use tombstones /
// death certificates. Queries want "correct and most recent" results under
// eventual consistency (§4.4).
//
// The store therefore keeps, per key, a set of version *branches*: applying
// an update discards branches that the update causally dominates (prefix
// order on version histories) and otherwise lets branches coexist. Every
// update carries an (origin, sequence) pair so that a vector clock over
// origins summarises exactly which updates a replica holds; the pull phase
// exchanges these clocks and ships the missing updates ("inquire for missed
// updates based on version vectors", §3).
package store

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// Update is the unit of propagation: one mutation of one key, stamped by its
// origin replica.
type Update struct {
	// Origin identifies the replica that created the update.
	Origin string
	// Seq is the origin's sequence number, starting at 1. The pair
	// (Origin, Seq) is unique and drives vector-clock reconciliation.
	Seq uint64
	// Key is the item being updated.
	Key string
	// Value is the new content (ignored for deletes).
	Value []byte
	// Delete marks a tombstone update.
	Delete bool
	// Version is the item's version history after this update.
	Version version.History
	// Stamp is the creation time (simulated or wall clock), used for
	// tombstone retention.
	Stamp time.Time
}

// Ref is the comparable identity of an update: the (origin, seq) pair. It is
// the map key the protocol engine uses for per-update state, so building one
// must not allocate — unlike the string form, which exists for hooks, logs,
// and the public API.
type Ref struct {
	// Origin identifies the replica that created the update.
	Origin string
	// Seq is the origin's sequence number.
	Seq uint64
}

// String renders the canonical "origin/seq" form.
func (r Ref) String() string {
	return r.Origin + "/" + strconv.FormatUint(r.Seq, 10)
}

// ParseRef parses the canonical "origin/seq" form produced by Ref.String and
// Update.ID. The split is on the last slash, so origins containing slashes
// round-trip.
func ParseRef(id string) (Ref, error) {
	i := strings.LastIndexByte(id, '/')
	if i < 0 {
		return Ref{}, fmt.Errorf("store: update id %q has no sequence", id)
	}
	seq, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return Ref{}, fmt.Errorf("store: update id %q: %w", id, err)
	}
	return Ref{Origin: id[:i], Seq: seq}, nil
}

// Ref returns the update's comparable identity without allocating.
func (u Update) Ref() Ref { return Ref{Origin: u.Origin, Seq: u.Seq} }

// ID returns the unique update identifier "origin/seq".
func (u Update) ID() string { return u.Ref().String() }

// SizeBytes estimates the wire size of the update: key, value, and the
// version history (IDSize bytes per entry), plus a small fixed header.
func (u Update) SizeBytes() int {
	const header = 24 // origin/seq/flags framing
	return header + len(u.Key) + len(u.Value) + len(u.Version)*version.IDSize
}

// Revision is one coexisting branch of an item's history.
type Revision struct {
	// Version is the branch's version history.
	Version version.History
	// Value is the branch content.
	Value []byte
	// Deleted marks a tombstoned branch.
	Deleted bool
	// Stamp is when the branch head was written.
	Stamp time.Time
}

// ApplyResult classifies the outcome of applying an update.
type ApplyResult int

// Apply outcomes.
const (
	// Applied means the update was new and changed the store.
	Applied ApplyResult = iota + 1
	// Duplicate means the exact update (origin, seq) was already known.
	Duplicate
	// Obsolete means the update's version was already dominated by an
	// existing branch; it is recorded in the clock but changes nothing.
	Obsolete
)

// String returns the outcome name.
func (r ApplyResult) String() string {
	switch r {
	case Applied:
		return "applied"
	case Duplicate:
		return "duplicate"
	case Obsolete:
		return "obsolete"
	default:
		return fmt.Sprintf("ApplyResult(%d)", int(r))
	}
}

// Store is a replica's local state under one lock. It is safe for concurrent
// use; Sharded offers the same contract with lock striping for multi-core
// ingest. Both satisfy Backend.
type Store struct {
	mu sync.RWMutex
	// items maps key → coexisting revisions.
	items map[string][]Revision
	// data is the per-origin update log, origin index, and vector clock.
	data originLog
	// tombRetain is how long tombstones are kept before GC.
	tombRetain time.Duration
	// hook, when set, observes every Apply outcome.
	hook ApplyHook
}

// ApplyHook observes apply outcomes: the update, its classification, and the
// number of coexisting revisions of the key after the apply (>1 signals
// concurrent branches). Hooks run synchronously on the applying goroutine
// after the store's lock is released; they must not block.
type ApplyHook func(u Update, res ApplyResult, branches int)

// DefaultTombstoneRetention keeps death certificates for 30 days, a
// conventional choice that comfortably exceeds expected offline periods.
const DefaultTombstoneRetention = 30 * 24 * time.Hour

// New returns an empty store with the default tombstone retention.
func New() *Store { return NewWithRetention(DefaultTombstoneRetention) }

// NewWithRetention returns an empty store keeping tombstones for the given
// duration.
func NewWithRetention(retain time.Duration) *Store {
	return &Store{
		items:      make(map[string][]Revision),
		data:       newOriginLog(),
		tombRetain: retain,
	}
}

// SetApplyHook registers a callback observing every subsequent Apply. Pass
// nil to remove it. Set the hook before the store starts receiving
// concurrent traffic.
func (s *Store) SetApplyHook(h ApplyHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// BranchCount returns the number of coexisting revisions of key, including
// tombstoned branches. Zero means the key is unknown.
func (s *Store) BranchCount(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items[key])
}

// Apply ingests one update and returns the outcome. Updates may arrive in
// any order and repeatedly; Apply is idempotent per (origin, seq).
func (s *Store) Apply(u Update) ApplyResult {
	res, _ := s.ApplyObserved(u)
	return res
}

// ApplyObserved is Apply returning also the number of coexisting revisions
// of the key, counted atomically with the apply — unlike a subsequent
// BranchCount it cannot be skewed by concurrent applies to the same key.
func (s *Store) ApplyObserved(u Update) (ApplyResult, int) {
	s.mu.Lock()
	res := s.applyLocked(u)
	hook := s.hook
	branches := len(s.items[u.Key])
	s.mu.Unlock()
	if hook != nil {
		hook(u, res, branches)
	}
	return res, branches
}

func (s *Store) applyLocked(u Update) ApplyResult {
	if u.Seq == 0 || u.Origin == "" {
		// Malformed updates are treated as obsolete noise rather than
		// panicking; the transport layer validates before this point.
		return Obsolete
	}
	if s.data.have(u.Origin, u.Seq) {
		return Duplicate
	}
	s.data.record(u)
	return applyRevision(s.items, u)
}

// Seen reports whether the exact update identified by ref was already
// applied. It is the cheap duplicate pre-check of the live ingest path:
// a racing twin that slips past it is still caught by Apply itself.
func (s *Store) Seen(ref Ref) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.have(ref.Origin, ref.Seq)
}

// Get returns the winning revision for key. When concurrent branches
// coexist, the winner is the branch with the longest history, ties broken by
// comparing head identifiers — a deterministic "most recent version" rule in
// the spirit of §4.4. The boolean is false if the key is absent or every
// branch is deleted.
func (s *Store) Get(key string) (Revision, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	best, ok := winner(s.items[key])
	if !ok || best.Deleted {
		return Revision{}, false
	}
	return cloneRevision(best), true
}

// Versions returns copies of all coexisting revisions of key, including
// tombstoned branches, sorted deterministically.
func (s *Store) Versions(key string) []Revision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	revs := s.items[key]
	out := make([]Revision, len(revs))
	for i, r := range revs {
		out[i] = cloneRevision(r)
	}
	sortRevisions(out)
	return out
}

// Keys returns the sorted set of keys with at least one live revision.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.items))
	for k, revs := range s.items {
		if w, ok := winner(revs); ok && !w.Deleted {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Clock returns a copy of the store's vector clock.
func (s *Store) Clock() version.Clock {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.clock.Clone()
}

// MissingFor returns every logged update the remote clock has not seen,
// ordered by origin then sequence. It is the payload of a pull response.
//
// Logged updates are immutable, so the result shares their Value and Version
// backing with the log instead of deep-copying; callers must treat the
// returned updates as read-only. Each per-origin log is Seq-ordered, so the
// remote's frontier is found by binary search and the result is allocated at
// its exact final size.
func (s *Store) MissingFor(remote version.Clock) []Update {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.data.missingCount(remote)
	if total == 0 {
		return nil
	}
	return s.data.appendMissing(make([]Update, 0, total), remote)
}

// DeltaFor is MissingFor with compaction awareness: ok == false reports that
// compaction has dropped part of the remote's gap, so only a snapshot can
// catch it up. See Backend.DeltaFor.
func (s *Store) DeltaFor(remote version.Clock) ([]Update, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.data.gapBefore(remote) {
		return nil, false
	}
	total := s.data.missingCount(remote)
	if total == 0 {
		return nil, true
	}
	return s.data.appendMissing(make([]Update, 0, total), remote), true
}

// CompactLog drops log entries at or below the frontier that no longer back
// a coexisting revision, advancing the compacted watermark. The frontier is
// the minimum clock across known peers (the engine's pull bookkeeping);
// peers further behind than that are caught up by snapshot, which is what
// makes dropping their history safe.
func (s *Store) CompactLog(frontier version.Clock) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data.compact(frontier, func(u Update) bool {
		return backsRevision(s.items, u)
	})
}

// CompactedThrough returns a copy of the per-origin compacted watermark.
func (s *Store) CompactedThrough() version.Clock {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.compacted.Clone()
}

// AdoptFrontier raises the compacted watermark and clock to wm without
// dropping entries. See Backend.AdoptFrontier.
func (s *Store) AdoptFrontier(wm version.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for origin, through := range wm {
		s.data.adoptCompacted(origin, through)
	}
}

// ExpireTTL tombstones live revisions whose Stamp is at least ttl old at
// now; ttl <= 0 is a no-op. Expired keys feed the ordinary tombstone GC.
func (s *Store) ExpireTTL(now time.Time, ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return expireRevisions(s.items, now, ttl)
}

// UpdateCount returns the number of resident log entries.
func (s *Store) UpdateCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.count()
}

// GCTombstones drops tombstoned revisions (and their log entries' values)
// whose retention expired at `now`, returning the number collected. Live
// branches and the vector clock are untouched, so reconciliation stays
// correct for peers that return within the retention window.
func (s *Store) GCTombstones(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gcRevisions(s.items, now, s.tombRetain)
}

// Equal reports whether two stores hold identical live state (same keys,
// same winning values). It backs the convergence assertions in the
// integration tests. other may be any Backend implementation.
func (s *Store) Equal(other Backend) bool {
	return backendEqual(s, other)
}

// Reset clears the store to empty, keeping the pointer, retention, and any
// registered hook stable. It models a crash with disk loss.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[string][]Revision)
	s.data = newOriginLog()
}

func winner(revs []Revision) (Revision, bool) {
	if len(revs) == 0 {
		return Revision{}, false
	}
	sorted := make([]Revision, len(revs))
	copy(sorted, revs)
	sortRevisions(sorted)
	return sorted[0], true
}

// sortRevisions orders branches best-first: longer history wins, then the
// lexicographically larger head id (arbitrary but deterministic across
// replicas), so every replica picks the same winner among concurrent
// branches.
func sortRevisions(revs []Revision) {
	sort.Slice(revs, func(i, j int) bool {
		a, b := revs[i], revs[j]
		if len(a.Version) != len(b.Version) {
			return len(a.Version) > len(b.Version)
		}
		ah, errA := a.Version.Head()
		bh, errB := b.Version.Head()
		if errA != nil || errB != nil {
			return errA == nil
		}
		return bytes.Compare(ah[:], bh[:]) > 0
	})
}

func cloneRevision(r Revision) Revision {
	out := r
	out.Version = r.Version.Clone()
	out.Value = append([]byte(nil), r.Value...)
	return out
}

func cloneUpdate(u Update) Update {
	out := u
	out.Version = u.Version.Clone()
	out.Value = append([]byte(nil), u.Value...)
	return out
}
