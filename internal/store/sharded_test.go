package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

// genWorkload produces a realistic update stream: several writers extending
// winning revisions on a scratch store (so version histories dominate and
// branch the way real replicas produce them), plus malformed noise. The
// returned slice is in creation order; callers shuffle it.
func genWorkload(t *testing.T, rng *rand.Rand, writers, updates int) []Update {
	t.Helper()
	scratch := New()
	now := func() time.Time { return time.Unix(1_700_000_000+int64(rng.Intn(1000)), 0) }
	ws := make([]*Writer, writers)
	for i := range ws {
		w, err := NewWriter(fmt.Sprintf("origin-%d", i), scratch, now,
			rand.New(rand.NewSource(int64(i)+100)))
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		ws[i] = w
	}
	out := make([]Update, 0, updates)
	for len(out) < updates {
		w := ws[rng.Intn(len(ws))]
		key := fmt.Sprintf("key-%d", rng.Intn(12))
		switch rng.Intn(10) {
		case 0:
			out = append(out, w.Delete(key))
		case 1:
			// Malformed noise: both implementations must ignore it.
			out = append(out, Update{Origin: "", Seq: 9, Key: key})
		case 2:
			out = append(out, Update{Origin: "origin-0", Seq: 0, Key: key})
		default:
			out = append(out, w.Put(key, []byte(fmt.Sprintf("v-%d", rng.Int()))))
		}
	}
	return out
}

// TestShardedMatchesReference holds Sharded to the single-lock Store on
// random interleaved workloads: identical per-apply outcomes (including
// duplicates from re-applied updates), clocks, logs, live state, and
// derived queries, across shard counts.
func TestShardedMatchesReference(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 41))
		workload := genWorkload(t, rng, 1+rng.Intn(5), 80)
		// Interleave re-deliveries so Duplicate outcomes are exercised.
		stream := append([]Update(nil), workload...)
		for i := 0; i < len(workload)/3; i++ {
			stream = append(stream, workload[rng.Intn(len(workload))])
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

		ref := New()
		shards := []int{1, 4, 16}[trial%3]
		sh := NewSharded(shards)
		for i, u := range stream {
			wantRes, wantBranches := ref.ApplyObserved(u)
			gotRes, gotBranches := sh.ApplyObserved(u)
			if gotRes != wantRes || gotBranches != wantBranches {
				t.Fatalf("trial %d shards %d: apply %d (%s): sharded (%v,%d), reference (%v,%d)",
					trial, shards, i, u.ID(), gotRes, gotBranches, wantRes, wantBranches)
			}
		}
		if !sh.Equal(ref) || !ref.Equal(sh) {
			t.Fatalf("trial %d: live state diverged", trial)
		}
		if got, want := sh.UpdateCount(), ref.UpdateCount(); got != want {
			t.Fatalf("trial %d: update count %d, want %d", trial, got, want)
		}
		if got, want := sh.Clock(), ref.Clock(); got.Compare(want) != version.Equal {
			t.Fatalf("trial %d: clock %v, want %v", trial, got, want)
		}
		// MissingFor must agree for arbitrary remote clocks, including the
		// full-log nil clock, in exact canonical order.
		for probe := 0; probe < 10; probe++ {
			var remote version.Clock
			if probe > 0 {
				remote = version.NewClock()
				for o, seq := range ref.Clock() {
					remote[o] = uint64(rng.Int63n(int64(seq) + 1))
				}
			}
			got, want := sh.MissingFor(remote), ref.MissingFor(remote)
			if len(got) != len(want) {
				t.Fatalf("trial %d: missing len %d, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].Ref() != want[i].Ref() {
					t.Fatalf("trial %d: missing[%d] = %s, want %s (canonical order broken)",
						trial, i, got[i].ID(), want[i].ID())
				}
			}
		}
		for _, k := range ref.Keys() {
			if got, want := sh.BranchCount(k), ref.BranchCount(k); got != want {
				t.Fatalf("trial %d: branch count of %q: %d, want %d", trial, k, got, want)
			}
		}
	}
}

// TestShardedSnapshotByteIdentical asserts the satellite contract: the same
// logical contents snapshot to identical bytes regardless of shard count
// (including the single-lock reference), and the snapshot round-trips into
// any shard count.
func TestShardedSnapshotByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workload := genWorkload(t, rng, 4, 120)

	ref := New()
	for _, u := range workload {
		ref.Apply(u)
	}
	var want bytes.Buffer
	if err := ref.WriteSnapshot(&want); err != nil {
		t.Fatalf("reference snapshot: %v", err)
	}

	for _, shards := range []int{1, 4, 16} {
		sh := NewSharded(shards)
		// Apply in a per-count shuffled order: bytes must not depend on
		// arrival order either.
		stream := append([]Update(nil), workload...)
		rand.New(rand.NewSource(int64(shards))).Shuffle(len(stream),
			func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
		for _, u := range stream {
			sh.Apply(u)
		}
		var got bytes.Buffer
		if err := sh.WriteSnapshot(&got); err != nil {
			t.Fatalf("shards=%d: snapshot: %v", shards, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("shards=%d: snapshot bytes differ from reference (%d vs %d bytes)",
				shards, got.Len(), want.Len())
		}

		// Round-trip into a different shard count and back.
		restored := NewSharded(32 / normalizeShards(shards))
		if err := restored.RestoreSnapshot(bytes.NewReader(got.Bytes())); err != nil {
			t.Fatalf("shards=%d: restore: %v", shards, err)
		}
		if !restored.Equal(ref) {
			t.Fatalf("shards=%d: restored state diverged", shards)
		}
		var again bytes.Buffer
		if err := restored.WriteSnapshot(&again); err != nil {
			t.Fatalf("shards=%d: re-snapshot: %v", shards, err)
		}
		if !bytes.Equal(again.Bytes(), want.Bytes()) {
			t.Fatalf("shards=%d: round-tripped snapshot bytes differ", shards)
		}
	}
}

// TestShardedReset asserts Reset clears state while keeping the hook and
// accepting new writes, the simulator's crash-with-disk-loss path.
func TestShardedReset(t *testing.T) {
	sh := NewSharded(4)
	hooked := 0
	sh.SetApplyHook(func(Update, ApplyResult, int) { hooked++ })
	rng := rand.New(rand.NewSource(3))
	for _, u := range genWorkload(t, rng, 2, 20) {
		sh.Apply(u)
	}
	sh.Reset()
	if sh.UpdateCount() != 0 || len(sh.Keys()) != 0 || len(sh.Clock()) != 0 {
		t.Fatalf("reset left state: %d updates, %d keys", sh.UpdateCount(), len(sh.Keys()))
	}
	before := hooked
	stamp := time.Unix(1_700_000_000, 0)
	u := Update{Origin: "o", Seq: 1, Key: "k", Value: []byte("v"),
		Version: version.History{version.NewID(stamp, "o", rng)}, Stamp: stamp}
	if res := sh.Apply(u); res != Applied {
		t.Fatalf("post-reset apply = %v", res)
	}
	if hooked != before+1 {
		t.Fatalf("hook lost across reset: %d fires, want %d", hooked, before+1)
	}
}

// TestShardedConcurrentStress drives concurrent Apply / MissingFor /
// Snapshot / reads across shards. Run under -race (the CI race step covers
// this package) it is the data-race probe for the striped locking; the final
// assertions check no update was lost or duplicated.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		writers   = 8
		perWriter = 150
	)
	sh := NewSharded(4)
	stamp := time.Unix(1_700_000_000, 0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: anti-entropy diffs, snapshots, clock/key scans, point reads.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			remote := version.NewClock()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					for _, u := range sh.MissingFor(remote) {
						remote[u.Origin] = max(remote[u.Origin], u.Seq)
					}
				case 1:
					var buf bytes.Buffer
					if err := sh.WriteSnapshot(&buf); err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
				case 2:
					sh.Clock()
					sh.Keys()
					sh.Get("key-3")
					sh.GCTombstones(stamp)
				}
			}
		}(r)
	}
	// Writers: distinct origins, interleaved keys, occasional duplicate
	// re-applies — the live ingest shape (one goroutine per connection).
	var applyWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		applyWG.Add(1)
		go func(w int) {
			defer applyWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			origin := fmt.Sprintf("writer-%d", w)
			var history version.History
			for seq := 1; seq <= perWriter; seq++ {
				history = history.Append(version.NewID(stamp, origin, rng))
				u := Update{
					Origin: origin, Seq: uint64(seq),
					Key:   fmt.Sprintf("key-%d", rng.Intn(16)),
					Value: []byte{byte(seq)}, Version: history, Stamp: stamp,
				}
				if res := sh.Apply(u); res == Duplicate {
					t.Errorf("fresh update %s claimed duplicate", u.ID())
					return
				}
				if seq%7 == 0 {
					if res := sh.Apply(u); res != Duplicate {
						t.Errorf("re-applied %s = %v, want Duplicate", u.ID(), res)
						return
					}
				}
			}
		}(w)
	}
	applyWG.Wait()
	close(stop)
	wg.Wait()

	if got, want := sh.UpdateCount(), writers*perWriter; got != want {
		t.Fatalf("update count %d, want %d", got, want)
	}
	clock := sh.Clock()
	for w := 0; w < writers; w++ {
		if got := clock.Get(fmt.Sprintf("writer-%d", w)); got != perWriter {
			t.Fatalf("writer-%d clock %d, want %d", w, got, perWriter)
		}
	}
	// The full log must replay into an identical reference store.
	ref := New()
	for _, u := range sh.MissingFor(nil) {
		ref.Apply(u)
	}
	if !sh.Equal(ref) {
		t.Fatal("concurrent state does not replay into the reference store")
	}
}

// TestNormalizeShards pins the shard-count rounding rule.
func TestNormalizeShards(t *testing.T) {
	cases := map[int]int{
		-1: DefaultShards, 0: DefaultShards,
		1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 16: 16, 17: 32,
		maxShards: maxShards, maxShards + 1: maxShards,
	}
	for in, want := range cases {
		if got := normalizeShards(in); got != want {
			t.Errorf("normalizeShards(%d) = %d, want %d", in, got, want)
		}
	}
	if got := NewSharded(6).ShardCount(); got != 8 {
		t.Errorf("ShardCount = %d, want 8", got)
	}
}
