package store

// Benchmarks for the store hot paths: log apply (push ingest) and the
// anti-entropy diff that serves every pull request.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

func benchStore(b *testing.B, origins, perOrigin int) *Store {
	b.Helper()
	s := New()
	stamp := time.Unix(1_700_000_000, 0)
	vid := version.NewID(stamp, "w", rand.New(rand.NewSource(1)))
	for o := 0; o < origins; o++ {
		origin := fmt.Sprintf("origin-%02d", o)
		for i := 0; i < perOrigin; i++ {
			s.Apply(Update{
				Origin:  origin,
				Seq:     uint64(i + 1),
				Key:     fmt.Sprintf("key-%d-%d", o, i),
				Value:   []byte("value"),
				Version: version.History{vid},
				Stamp:   stamp,
			})
		}
	}
	return s
}

// BenchmarkMissingForTail is the steady-state pull: the requester is only a
// few updates behind on each of many origins.
func BenchmarkMissingForTail(b *testing.B) {
	const origins, perOrigin, behind = 16, 256, 4
	s := benchStore(b, origins, perOrigin)
	remote := version.NewClock()
	for o := 0; o < origins; o++ {
		remote[fmt.Sprintf("origin-%02d", o)] = perOrigin - behind
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.MissingFor(remote); len(got) != origins*behind {
			b.Fatalf("missing %d, want %d", len(got), origins*behind)
		}
	}
}

// BenchmarkMissingForCurrent is the no-op pull: the requester is already
// up to date and the response must be empty (and allocation-free).
func BenchmarkMissingForCurrent(b *testing.B) {
	const origins, perOrigin = 16, 256
	s := benchStore(b, origins, perOrigin)
	remote := s.Clock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.MissingFor(remote); got != nil {
			b.Fatalf("missing %d, want none", len(got))
		}
	}
}

// BenchmarkApplyFresh measures ingesting new updates on fresh keys — the
// first-receipt push path's store half.
func BenchmarkApplyFresh(b *testing.B) {
	s := New()
	stamp := time.Unix(1_700_000_000, 0)
	vid := version.NewID(stamp, "w", rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Apply(Update{
			Origin:  "writer",
			Seq:     uint64(i + 1),
			Key:     "key-" + fmt.Sprint(i),
			Value:   []byte("value"),
			Version: version.History{vid},
			Stamp:   stamp,
		})
		if res != Applied {
			b.Fatalf("apply = %v", res)
		}
	}
}

// BenchmarkApplyDuplicate measures re-ingesting a known update — the
// duplicate-push path's store half, pure log lookup.
func BenchmarkApplyDuplicate(b *testing.B) {
	s := benchStore(b, 1, 512)
	u := Update{
		Origin: "origin-00", Seq: 256, Key: "key-0-255", Value: []byte("value"),
		Version: version.History{version.NewID(time.Unix(1_700_000_000, 0), "w",
			rand.New(rand.NewSource(1)))},
		Stamp: time.Unix(1_700_000_000, 0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.Apply(u); res != Duplicate {
			b.Fatalf("apply = %v", res)
		}
	}
}
