package store

// Benchmarks for the store hot paths: log apply (push ingest) and the
// anti-entropy diff that serves every pull request.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/version"
)

func benchStore(b *testing.B, origins, perOrigin int) *Store {
	b.Helper()
	s := New()
	stamp := time.Unix(1_700_000_000, 0)
	vid := version.NewID(stamp, "w", rand.New(rand.NewSource(1)))
	for o := 0; o < origins; o++ {
		origin := fmt.Sprintf("origin-%02d", o)
		for i := 0; i < perOrigin; i++ {
			s.Apply(Update{
				Origin:  origin,
				Seq:     uint64(i + 1),
				Key:     fmt.Sprintf("key-%d-%d", o, i),
				Value:   []byte("value"),
				Version: version.History{vid},
				Stamp:   stamp,
			})
		}
	}
	return s
}

// BenchmarkMissingForTail is the steady-state pull: the requester is only a
// few updates behind on each of many origins.
func BenchmarkMissingForTail(b *testing.B) {
	const origins, perOrigin, behind = 16, 256, 4
	s := benchStore(b, origins, perOrigin)
	remote := version.NewClock()
	for o := 0; o < origins; o++ {
		remote[fmt.Sprintf("origin-%02d", o)] = perOrigin - behind
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.MissingFor(remote); len(got) != origins*behind {
			b.Fatalf("missing %d, want %d", len(got), origins*behind)
		}
	}
}

// BenchmarkMissingForCurrent is the no-op pull: the requester is already
// up to date and the response must be empty (and allocation-free).
func BenchmarkMissingForCurrent(b *testing.B) {
	const origins, perOrigin = 16, 256
	s := benchStore(b, origins, perOrigin)
	remote := s.Clock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.MissingFor(remote); got != nil {
			b.Fatalf("missing %d, want none", len(got))
		}
	}
}

// BenchmarkApplyFresh measures ingesting new updates on fresh keys — the
// first-receipt push path's store half.
func BenchmarkApplyFresh(b *testing.B) {
	s := New()
	stamp := time.Unix(1_700_000_000, 0)
	vid := version.NewID(stamp, "w", rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Apply(Update{
			Origin:  "writer",
			Seq:     uint64(i + 1),
			Key:     "key-" + fmt.Sprint(i),
			Value:   []byte("value"),
			Version: version.History{vid},
			Stamp:   stamp,
		})
		if res != Applied {
			b.Fatalf("apply = %v", res)
		}
	}
}

// countingWriter tallies bytes written; the snapshot catch-up benchmark uses
// it so encoding cost is measured without buffering the stream.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// catchUpHistory builds an overwrite-heavy history: `origins` × `perOrigin`
// updates over keys rewritten `depth` times each, with properly dominating
// version chains (prefix-sharing, so setup stays cheap). It returns the
// populated store and the update list in apply order.
func catchUpHistory(origins, perOrigin, depth int) (*Store, []Update) {
	s := New()
	stamp := time.Unix(1_700_000_000, 0)
	rng := rand.New(rand.NewSource(1))
	updates := make([]Update, 0, origins*perOrigin)
	for o := 0; o < origins; o++ {
		origin := fmt.Sprintf("origin-%02d", o)
		seq := uint64(0)
		for k := 0; k < perOrigin/depth; k++ {
			chain := make(version.History, depth)
			for d := range chain {
				chain[d] = version.NewID(stamp, origin, rng)
			}
			for d := 0; d < depth; d++ {
				seq++
				u := Update{
					Origin:  origin,
					Seq:     seq,
					Key:     fmt.Sprintf("key-%d-%d", o, k),
					Value:   []byte("value"),
					Version: chain[:d+1],
					Stamp:   stamp,
				}
				s.Apply(u)
				updates = append(updates, u)
			}
		}
	}
	return s, updates
}

// BenchmarkCatchUp measures serving a rejoiner that is 100k updates behind
// (empty clock), on a history where every key was overwritten ten times.
// The delta path ships the full history; the snapshot path, after frontier
// compaction, encodes only the resident live-state-backing entries. The
// updates/s metric is the history the rejoiner is caught up on per second
// of serving time — the figure the PR-8 retention work moves.
func BenchmarkCatchUp(b *testing.B) {
	const origins, perOrigin, depth = 10, 10_000, 10
	const history = origins * perOrigin

	b.Run("delta", func(b *testing.B) {
		s, _ := catchUpHistory(origins, perOrigin, depth)
		empty := version.NewClock()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, ok := s.DeltaFor(empty)
			if !ok || len(got) != history {
				b.Fatalf("delta %d complete=%v, want %d", len(got), ok, history)
			}
		}
		b.ReportMetric(float64(history)*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
		b.ReportMetric(float64(history), "shipped/op")
	})

	b.Run("snapshot", func(b *testing.B) {
		s, _ := catchUpHistory(origins, perOrigin, depth)
		if dropped := s.CompactLog(s.Clock()); dropped != history-history/depth {
			b.Fatalf("compacted %d entries, want %d", dropped, history-history/depth)
		}
		if _, ok := s.DeltaFor(version.NewClock()); ok {
			b.Fatal("rejoiner gap survived compaction; snapshot path not exercised")
		}
		b.ReportAllocs()
		b.ResetTimer()
		var bytes int64
		for i := 0; i < b.N; i++ {
			w := &countingWriter{}
			if err := s.WriteSnapshot(w); err != nil {
				b.Fatal(err)
			}
			bytes = w.n
		}
		b.ReportMetric(float64(history)*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
		b.ReportMetric(float64(history/depth), "shipped/op")
		b.ReportMetric(float64(bytes), "snapbytes/op")
	})
}

// BenchmarkApplyDuplicate measures re-ingesting a known update — the
// duplicate-push path's store half, pure log lookup.
func BenchmarkApplyDuplicate(b *testing.B) {
	s := benchStore(b, 1, 512)
	u := Update{
		Origin: "origin-00", Seq: 256, Key: "key-0-255", Value: []byte("value"),
		Version: version.History{version.NewID(time.Unix(1_700_000_000, 0), "w",
			rand.New(rand.NewSource(1)))},
		Stamp: time.Unix(1_700_000_000, 0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.Apply(u); res != Duplicate {
			b.Fatalf("apply = %v", res)
		}
	}
}
