package analytic

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/p2pgossip/update/internal/pf"
)

func mustPush(t *testing.T, p PushParams) PushResult {
	t.Helper()
	res, err := Push(p)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	return res
}

func TestPushValidation(t *testing.T) {
	tests := []struct {
		name string
		p    PushParams
	}{
		{"zero R", PushParams{R: 0, ROn0: 0, Sigma: 1, Fr: 0.1}},
		{"negative online", PushParams{R: 10, ROn0: -1, Sigma: 1, Fr: 0.1}},
		{"online > R", PushParams{R: 10, ROn0: 11, Sigma: 1, Fr: 0.1}},
		{"sigma > 1", PushParams{R: 10, ROn0: 5, Sigma: 1.5, Fr: 0.1}},
		{"sigma < 0", PushParams{R: 10, ROn0: 5, Sigma: -0.1, Fr: 0.1}},
		{"fr > 1", PushParams{R: 10, ROn0: 5, Sigma: 1, Fr: 1.5}},
		{"fr < 0", PushParams{R: 10, ROn0: 5, Sigma: 1, Fr: -0.5}},
		{"negative threshold", PushParams{R: 10, ROn0: 5, Sigma: 1, Fr: 0.5, ListThreshold: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Push(tt.p); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestPushDegenerate(t *testing.T) {
	// No online peers or zero fanout: nothing happens.
	for _, p := range []PushParams{
		{R: 100, ROn0: 0, Sigma: 1, Fr: 0.1},
		{R: 100, ROn0: 50, Sigma: 1, Fr: 0},
	} {
		res := mustPush(t, p)
		if res.NumRounds() != 0 || res.TotalMessages() != 0 {
			t.Fatalf("degenerate params produced rounds: %+v", res)
		}
	}
}

func TestPushRound0(t *testing.T) {
	p := PushParams{R: 10000, ROn0: 1000, Sigma: 0.95, Fr: 0.01, UpdateBytes: 100}
	res := mustPush(t, p)
	r0 := res.Rounds[0]
	if r0.Messages != 100 { // R·f_r
		t.Fatalf("M(0) = %g, want 100", r0.Messages)
	}
	if math.Abs(r0.Aware-0.01) > 1e-12 {
		t.Fatalf("F_aware after round 0 = %g, want 0.01", r0.Aware)
	}
	// S_M(0) = U + γ·R·f_r = 100 + 10·10000·0.01... list disabled ⇒ only U.
	if r0.MessageBytes != 100 {
		t.Fatalf("no-list message bytes = %g, want 100", r0.MessageBytes)
	}
	pl := p
	pl.PartialList = true
	res = mustPush(t, pl)
	want := 100 + 10.0*10000*ListLen(0, 0.01)
	if math.Abs(res.Rounds[0].MessageBytes-want) > 1e-9 {
		t.Fatalf("list message bytes = %g, want %g", res.Rounds[0].MessageBytes, want)
	}
}

func TestPushReachesFullAwareness(t *testing.T) {
	// The paper's default healthy scenario (Fig. 1(b) middle curve).
	p := PushParams{R: 10000, ROn0: 1000, Sigma: 0.95, Fr: 0.01}
	res := mustPush(t, p)
	if got := res.FinalAware(); got < 0.999 {
		t.Fatalf("final awareness = %g, want ≈ 1", got)
	}
	// The paper reports roughly 80 messages per online peer for plain
	// flooding; accept the 60–110 band (shape, not testbed-exact).
	mpp := res.MessagesPerOnlinePeer()
	if mpp < 60 || mpp > 110 {
		t.Fatalf("messages/online peer = %g, want ≈ 80", mpp)
	}
	// Latency is a handful of rounds.
	if n := res.NumRounds(); n < 3 || n > 20 {
		t.Fatalf("rounds = %d", n)
	}
}

func TestPushDiesOutWithTinyPopulation(t *testing.T) {
	// Fig. 1(a): 1% initial online population cannot sustain the rumor.
	p := PushParams{R: 10000, ROn0: 100, Sigma: 0.95, Fr: 0.01}
	res := mustPush(t, p)
	if got := res.FinalAware(); got > 0.9 {
		t.Fatalf("tiny population reached awareness %g; paper says it must struggle", got)
	}
}

func TestPushMonotoneInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = 100 + r.Intn(5000)      // R
			args[1] = r.Float64()             // online fraction
			args[2] = 0.3 + 0.7*r.Float64()   // sigma
			args[3] = 0.001 + 0.1*r.Float64() // f_r
			args[4] = r.Intn(2) == 0          // partial list
		}),
	}
	prop := func(r int, onFrac, sigma, fr float64, partial bool) bool {
		p := PushParams{
			R: r, ROn0: int(onFrac * float64(r)), Sigma: sigma, Fr: fr,
			PartialList: partial,
		}
		res, err := Push(p)
		if err != nil {
			return false
		}
		prevAware, prevCum := 0.0, 0.0
		for _, round := range res.Rounds {
			if round.Aware < prevAware-1e-12 || round.Aware > 1+1e-9 {
				return false
			}
			if round.Messages < 0 || round.CumMessages < prevCum-1e-9 {
				return false
			}
			if round.DeltaAware < -1e-12 {
				return false
			}
			prevAware, prevCum = round.Aware, round.CumMessages
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("push invariants violated: %v", err)
	}
}

func TestPartialListNeverIncreasesMessages(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = 500 + r.Intn(5000)
			args[1] = 0.05 + 0.9*r.Float64()
			args[2] = 0.5 + 0.5*r.Float64()
			args[3] = 0.001 + 0.05*r.Float64()
		}),
	}
	prop := func(r int, onFrac, sigma, fr float64) bool {
		base := PushParams{R: r, ROn0: int(onFrac * float64(r)), Sigma: sigma, Fr: fr}
		withList := base
		withList.PartialList = true
		a, err1 := Push(base)
		b, err2 := Push(withList)
		if err1 != nil || err2 != nil {
			return false
		}
		return b.TotalMessages() <= a.TotalMessages()+1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("partial list increased messages: %v", err)
	}
}

func TestDecayingPFReducesMessages(t *testing.T) {
	// Fig. 4: decaying PF(t) must beat PF=1 on message count while still
	// achieving near-full awareness for the paper's parameters.
	base := PushParams{R: 10000, ROn0: 1000, Sigma: 0.9, Fr: 0.01}
	plain := mustPush(t, base)

	decayed := base
	decayed.PF = pf.Geometric{Base: 0.9}
	dres := mustPush(t, decayed)

	if dres.TotalMessages() >= plain.TotalMessages() {
		t.Fatalf("PF=0.9^t used %g messages, plain %g", dres.TotalMessages(), plain.TotalMessages())
	}
	if dres.FinalAware() < 0.95 {
		t.Fatalf("PF=0.9^t awareness fell to %g", dres.FinalAware())
	}
	// Over-aggressive decay sacrifices coverage (the paper's warning).
	harsh := base
	harsh.PF = pf.Geometric{Base: 0.5}
	hres := mustPush(t, harsh)
	if hres.FinalAware() >= dres.FinalAware() {
		t.Fatalf("PF=0.5^t should cover less than 0.9^t: %g vs %g",
			hres.FinalAware(), dres.FinalAware())
	}
}

func TestLowSigmaReducesMessages(t *testing.T) {
	// Fig. 3's "curious" observation: message overhead decreases when peers
	// fail to forward, while awareness stays near-complete down to σ≈0.5.
	prev := math.Inf(1)
	for _, sigma := range []float64{1, 0.95, 0.8, 0.7, 0.5} {
		p := PushParams{R: 10000, ROn0: 1000, Sigma: sigma, Fr: 0.01}
		res := mustPush(t, p)
		if res.FinalAware() < 0.97 {
			t.Fatalf("sigma=%g: awareness %g too low", sigma, res.FinalAware())
		}
		if got := res.TotalMessages(); got >= prev {
			t.Fatalf("sigma=%g: messages %g did not decrease (prev %g)", sigma, got, prev)
		} else {
			prev = got
		}
	}
}

func TestLargerFanoutMoreDuplicates(t *testing.T) {
	// Fig. 2: message overhead grows with f_r; f_r=0.05 costs several times
	// f_r=0.005 without materially improving spread.
	small := mustPush(t, PushParams{R: 10000, ROn0: 1000, Sigma: 0.9, Fr: 0.005})
	large := mustPush(t, PushParams{R: 10000, ROn0: 1000, Sigma: 0.9, Fr: 0.05})
	if small.FinalAware() < 0.97 || large.FinalAware() < 0.97 {
		t.Fatalf("awareness: small %g large %g", small.FinalAware(), large.FinalAware())
	}
	ratio := large.MessagesPerOnlinePeer() / small.MessagesPerOnlinePeer()
	if ratio < 4 || ratio > 15 {
		t.Fatalf("f_r=0.05 vs 0.005 message ratio = %g, paper reports ≈ 8–10×", ratio)
	}
}

func TestScalabilityFig5(t *testing.T) {
	// Fig. 5: with R_on/R=0.1, σ=1, PF(t)=0.8·0.7^t+0.2 and fanout chosen so
	// that ten *online* peers are expected per push (R_on·f_r = 10 ⇒
	// R·f_r = 100), overhead stays below ~45 msgs per initial online peer
	// and decreases as the population grows.
	prev := math.Inf(1)
	for _, total := range []int{10_000, 100_000, 1_000_000, 10_000_000} {
		fr := 10.0 / (0.1 * float64(total)) // R_on·f_r = 10
		p := PushParams{
			R: total, ROn0: total / 10, Sigma: 1, Fr: fr,
			PF: pf.AffineGeometric{A: 0.8, B: 0.7, C: 0.2},
		}
		res := mustPush(t, p)
		// The PF floor of 0.2 sustains high but not total coverage at
		// extreme scale; the trailing fraction is recovered by pull.
		if res.FinalAware() < 0.85 {
			t.Fatalf("R=%d: awareness %g", total, res.FinalAware())
		}
		mpp := res.MessagesPerOnlinePeer()
		if mpp > 45 {
			t.Fatalf("R=%d: %g msgs/online peer, paper caps ≈ 45", total, mpp)
		}
		if mpp > prev+1e-9 {
			t.Fatalf("R=%d: overhead %g did not decrease (prev %g)", total, mpp, prev)
		}
		prev = mpp
	}
}

func TestListLenClosedFormEqualsRecursion(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = r.Intn(50)
			args[1] = r.Float64()
		}),
	}
	prop := func(t int, fr float64) bool {
		return math.Abs(ListLen(t, fr)-ListLenRecursive(t, fr)) < 1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("L(t) closed form ≠ recursion: %v", err)
	}
}

func TestListLenBasics(t *testing.T) {
	if got := ListLen(-1, 0.5); got != 0 {
		t.Fatalf("ListLen(-1) = %g", got)
	}
	if got := ListLen(0, 0.25); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("ListLen(0, 0.25) = %g, want 0.25", got)
	}
	if got := ListLenRecursive(-2, 0.3); got != 0 {
		t.Fatalf("ListLenRecursive(-2) = %g", got)
	}
	// Monotone, bounded by 1.
	prev := 0.0
	for i := 0; i < 100; i++ {
		l := ListLen(i, 0.05)
		if l < prev || l > 1 {
			t.Fatalf("L(%d) = %g not monotone in [0,1]", i, l)
		}
		prev = l
	}
}

func TestListThresholdCapsLength(t *testing.T) {
	p := PushParams{
		R: 10000, ROn0: 1000, Sigma: 0.95, Fr: 0.05,
		PartialList: true, ListThreshold: 0.1,
	}
	res := mustPush(t, p)
	for _, round := range res.Rounds {
		if round.ListLen > 0.1+1e-12 {
			t.Fatalf("round %d list length %g exceeds threshold", round.T, round.ListLen)
		}
	}
	// Thresholding costs extra duplicate messages versus the full list.
	full := p
	full.ListThreshold = 0
	fres := mustPush(t, full)
	if res.TotalMessages() < fres.TotalMessages()-1e-9 {
		t.Fatalf("thresholded list sent fewer messages (%g) than full list (%g)",
			res.TotalMessages(), fres.TotalMessages())
	}
}

func TestRoundsToAware(t *testing.T) {
	res := mustPush(t, PushParams{R: 10000, ROn0: 1000, Sigma: 0.95, Fr: 0.01})
	if got := res.RoundsToAware(0.5); got <= 0 {
		t.Fatalf("RoundsToAware(0.5) = %d", got)
	}
	if got := res.RoundsToAware(2.0); got != -1 {
		t.Fatalf("RoundsToAware(2.0) = %d, want -1", got)
	}
	if a, b := res.RoundsToAware(0.3), res.RoundsToAware(0.95); a > b {
		t.Fatalf("RoundsToAware not monotone: %d > %d", a, b)
	}
}

func TestMessagesPerOnlinePeerZeroPopulation(t *testing.T) {
	res := PushResult{Params: PushParams{ROn0: 0}}
	if got := res.MessagesPerOnlinePeer(); got != 0 {
		t.Fatalf("MessagesPerOnlinePeer = %g", got)
	}
	if got := res.FinalAware(); got != 0 {
		t.Fatalf("FinalAware on empty = %g", got)
	}
}

func TestFanout(t *testing.T) {
	p := PushParams{R: 10000, Fr: 0.01}
	if got := p.Fanout(); got != 100 {
		t.Fatalf("Fanout = %g", got)
	}
}

func quickValues(fill func(args []interface{}, r *rand.Rand)) func([]reflect.Value, *rand.Rand) {
	return func(vals []reflect.Value, r *rand.Rand) {
		args := make([]interface{}, len(vals))
		fill(args, r)
		for i := range vals {
			vals[i] = reflect.ValueOf(args[i])
		}
	}
}
