package analytic

import (
	"fmt"
	"math"

	"github.com/p2pgossip/update/internal/pf"
)

// This file implements §5.6 of the paper: the expected-cost analysis of
// simple flooding ("like in Gnutella") and its variants, plus the Table 2
// comparison of Gnutella, flooding with a partial list, Haas et al.'s
// G(p, k), and the paper's decaying-PF scheme.

// ExpectedReached returns the expected number of *online* replicas reached
// by `attempts` uniformly random contact attempts when `online` of the `r`
// replicas are online: E = online·attempts/r (§5.6).
//
// Each attempt targets a uniformly random replica, so it hits an online one
// with probability online/r.
func ExpectedReached(online, attempts, r int) float64 {
	if r <= 0 {
		return 0
	}
	return float64(online) * float64(attempts) / float64(r)
}

// ExpectedAttempts returns the expected number of uniformly random attempts
// needed to reach m distinct online replicas out of `online` online among r
// total. It is the coupon-collector partial sum r/online · H-style series
// Σ_{i=0}^{m−1} online/(online−i) scaled by r/online:
//
//	E = Σ_{i=0}^{m−1} r/(online−i)
//
// It returns +Inf when m > online.
func ExpectedAttempts(m, online, r int) float64 {
	if m <= 0 {
		return 0
	}
	if online <= 0 || m > online || r <= 0 {
		return math.Inf(1)
	}
	var e float64
	for i := 0; i < m; i++ {
		e += float64(r) / float64(online-i)
	}
	return e
}

// PoissonOnlineAttempts returns E_m(a) under the paper's Poisson online
// model: the number of online replicas K is Poisson with mean r·pOn, and the
// expected attempts to reach m online replicas is averaged over K:
//
//	E ≈ m/p_on · [1 − e^{−r·p_on} Σ_{K<m} (r·p_on)^K / K!]⁻¹-style bound;
//
// the paper's simplification (§5.6) gives
//
//	E_m(a) ≥ m/p_on · (1 − e^{−r·p_on} Σ_{K=0}^{m−1} (r·p_on)^K / K!)
//
// which we evaluate directly. For r·p_on ≫ m the correction term vanishes
// and the familiar m/p_on appears.
func PoissonOnlineAttempts(m int, pOn float64, r int) float64 {
	if m <= 0 {
		return 0
	}
	if pOn <= 0 || r <= 0 {
		return math.Inf(1)
	}
	lambda := float64(r) * pOn
	// P(K < m) via the Poisson CDF, computed in log space for stability.
	var cdf float64
	logTerm := -lambda // log of e^{−λ}·λ^0/0!
	for k := 0; k < m; k++ {
		if k > 0 {
			logTerm += math.Log(lambda) - math.Log(float64(k))
		}
		cdf += math.Exp(logTerm)
	}
	return float64(m) / pOn * (1 - cdf)
}

// PureFloodMessages returns the expected total message count of pure
// flooding *without* duplicate avoidance after `rounds` rounds with fanout
// R·f_r: the geometric sum 1 + (R·f_r) + (R·f_r)² + … (§5.6). The series is
// truncated at the point where it exceeds maxMessages (camped growth),
// mirroring the paper's observation that pure flooding is exponential.
func PureFloodMessages(r int, fr float64, rounds int, maxMessages float64) float64 {
	fanout := float64(r) * fr
	if rounds <= 0 {
		return 0
	}
	total := 0.0
	term := fanout
	for t := 0; t < rounds; t++ {
		total += term
		if maxMessages > 0 && total >= maxMessages {
			return maxMessages
		}
		term *= fanout
	}
	return total
}

// GnutellaMessagesPerOnlinePeer returns the paper's closed-form result for
// Gnutella-style flooding *with* duplicate avoidance: "the total number of
// messages created per update will be exactly the average fanout multiplied
// by number of peers online, that is to say, there will be on average f_r·R
// messages per online peer" (§5.6). Duplicate avoidance removes redundant
// sends without changing spread or latency.
func GnutellaMessagesPerOnlinePeer(r int, fr float64) float64 {
	return float64(r) * fr
}

// Scheme identifies one row of the paper's Table 2.
type Scheme int

// The four schemes compared in Table 2.
const (
	SchemeGnutella Scheme = iota + 1
	SchemePartialList
	SchemeHaas
	SchemeOurs
)

// String returns the scheme name as printed in Table 2.
func (s Scheme) String() string {
	switch s {
	case SchemeGnutella:
		return "Gnutella"
	case SchemePartialList:
		return "Using Partial List"
	case SchemeHaas:
		return "Haas et al. G(0.8,2)"
	case SchemeOurs:
		return "Our Scheme"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ComparisonRow is one row of Table 2: messages per initially-online peer
// and push-round latency for a scheme.
type ComparisonRow struct {
	Scheme          Scheme
	MessagesPerPeer float64
	Rounds          int
	FinalAware      float64
}

// CompareParams configures a Table 2 comparison scenario.
type CompareParams struct {
	// R, ROn0, Sigma, Fr as in PushParams.
	R, ROn0 int
	Sigma   float64
	Fr      float64
	// HaasP, HaasK parameterise the G(p,k) baseline (paper: 0.8, 2).
	HaasP float64
	HaasK int
	// OursPF is the decaying schedule for the paper's scheme (Table 2 uses
	// a geometric decay). Nil defaults to 0.9^t.
	OursPF pf.Func
	// AwareTarget is the awareness fraction used to measure latency
	// (rounds). Zero means 0.99.
	AwareTarget float64
}

// Compare evaluates all four Table 2 schemes under one scenario using the
// unified analytical model ("all these variations of limited flooding can be
// reduced to special cases of our model", §4.1).
func Compare(p CompareParams) ([]ComparisonRow, error) {
	ours := p.OursPF
	if ours == nil {
		ours = pf.Geometric{Base: 0.9}
	}
	target := p.AwareTarget
	if target <= 0 {
		target = 0.99
	}
	base := PushParams{R: p.R, ROn0: p.ROn0, Sigma: p.Sigma, Fr: p.Fr}

	type variant struct {
		scheme  Scheme
		pfn     pf.Func
		partial bool
	}
	variants := []variant{
		{SchemeGnutella, pf.Always(), false},
		{SchemePartialList, pf.Always(), true},
		{SchemeHaas, pf.Haas{P1: p.HaasP, K: p.HaasK}, false},
		{SchemeOurs, ours, true},
	}
	rows := make([]ComparisonRow, 0, len(variants))
	for _, v := range variants {
		params := base
		params.PF = v.pfn
		params.PartialList = v.partial
		res, err := Push(params)
		if err != nil {
			return nil, fmt.Errorf("compare %s: %w", v.scheme, err)
		}
		rounds := res.RoundsToAware(target)
		if rounds < 0 {
			rounds = res.NumRounds()
		}
		rows = append(rows, ComparisonRow{
			Scheme:          v.scheme,
			MessagesPerPeer: res.MessagesPerOnlinePeer(),
			Rounds:          rounds,
			FinalAware:      res.FinalAware(),
		})
	}
	return rows, nil
}
