// Package analytic implements the paper's analytical model of the push
// phase (§4.2), the pull phase (§4.3), and the flooding baselines (§5.6).
//
// The original authors evaluated the recursive functions with a C program;
// this package is that evaluator, reimplemented and documented. All of the
// paper's figures (1–5) and Table 2 derive from the recursion below, which
// uses the notation of Table 1 of the paper:
//
//	R           cardinality of the replica set
//	R_on(0)     number of replicas online when the update starts
//	σ (sigma)   probability an online peer stays online in the next round
//	f_r         fraction of R to which a peer forwards an update
//	PF(t)       probability that a peer which received the update in round
//	            t−1 forwards it in round t
//	L(t)        normalised length of the partial flooding list in round t
//	γ           bytes per replica-list entry
//
// Recursion (derivation in DESIGN.md §4; the σ of the shrinking uninformed
// pool cancels in the fraction-based formulation):
//
//	ΔF(0)   = f_r                     M(0) = R·f_r
//	push(t) = R_on(0)·ΔF(t−1)·σ·PF(t)
//	M(t)    = push(t)·R·f_r·(1−f_r)^t          (with partial list)
//	        = push(t)·R·f_r                    (without partial list)
//	ΔF(t)   = (1−F(t))·(1−(1−f_r)^push(t))
//	F(t+1)  = min(1, F(t)+ΔF(t))
//	L(t)    = 1−(1−f_r)^(t+1)
//
// F(t) — the paper's F_aware — is the fraction of the *initial* online
// population aware of the update at the beginning of round t; the paper
// normalises all message counts by R_on(0) and notes that ignoring peers
// going offline mid-push makes the analysis pessimistic (§5).
package analytic

import (
	"fmt"
	"math"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
)

// DefaultMaxRounds bounds the push recursion when the rumor dies out before
// full awareness (e.g. Fig. 1(a)'s tiny initial populations).
const DefaultMaxRounds = 200

// PushParams parameterises one analytical evaluation of the push phase.
type PushParams struct {
	// R is the total number of replicas.
	R int
	// ROn0 is the number of replicas online at round 0.
	ROn0 int
	// Sigma is the per-round probability of staying online.
	Sigma float64
	// Fr is the fanout fraction f_r; each push targets R·Fr replicas.
	Fr float64
	// PF is the forwarding-probability schedule. Nil means PF(t) = 1.
	PF pf.Func
	// PartialList enables the paper's flooding-list optimisation, which
	// reduces round-t messages by the factor (1−f_r)^t.
	PartialList bool
	// ListThreshold is the normalised cap L_thr on the partial-list length
	// (§4.2). Zero or ≥1 means "no threshold". With a threshold, rounds
	// whose untrimmed L(t) would exceed L_thr pay extra duplicate messages.
	ListThreshold float64
	// UpdateBytes is the payload size U used for message-size accounting.
	UpdateBytes int
	// MaxRounds bounds the recursion; 0 means DefaultMaxRounds.
	MaxRounds int
	// Epsilon terminates the recursion when the expected number of pushers
	// falls below it. Zero means 1e-6.
	Epsilon float64
}

// Validate reports whether the parameters are usable.
func (p PushParams) Validate() error {
	switch {
	case p.R <= 0:
		return fmt.Errorf("analytic: R = %d must be positive", p.R)
	case p.ROn0 < 0 || p.ROn0 > p.R:
		return fmt.Errorf("analytic: ROn0 = %d out of range [0,%d]", p.ROn0, p.R)
	case p.Sigma < 0 || p.Sigma > 1:
		return fmt.Errorf("analytic: sigma = %g out of [0,1]", p.Sigma)
	case p.Fr < 0 || p.Fr > 1:
		return fmt.Errorf("analytic: f_r = %g out of [0,1]", p.Fr)
	case p.ListThreshold < 0:
		return fmt.Errorf("analytic: L_thr = %g negative", p.ListThreshold)
	default:
		return nil
	}
}

// Fanout returns the per-push target count R·f_r.
func (p PushParams) Fanout() float64 { return float64(p.R) * p.Fr }

// PushRound is the state of the analytical recursion after one round.
type PushRound struct {
	// T is the round number (0 = the initiator's send).
	T int
	// Messages is M(t), the expected messages sent in this round (including
	// messages to offline replicas).
	Messages float64
	// CumMessages is the running total of messages through this round.
	CumMessages float64
	// Pushers is the expected number of peers that forwarded this round.
	Pushers float64
	// DeltaAware is ΔF_aware(t), the increment in the aware fraction.
	DeltaAware float64
	// Aware is F_aware(t+1), the aware fraction after this round.
	Aware float64
	// ListLen is L(t), the normalised partial-list length carried this
	// round (zero when the partial list is disabled).
	ListLen float64
	// MessageBytes is S_M(t), the size of one message in this round.
	MessageBytes float64
}

// PushResult is the full trajectory of one analytical push evaluation.
type PushResult struct {
	Params PushParams
	Rounds []PushRound
}

// TotalMessages returns the total expected message count of the push phase.
func (r PushResult) TotalMessages() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].CumMessages
}

// TotalBytes returns the total expected push-phase traffic in bytes: the
// per-round product of expected messages M(t) and message size S_M(t),
// summed over the recursion. It is linear in Params.UpdateBytes, so callers
// can evaluate once with UpdateBytes = 0 to isolate the flooding-list term
// (γ·R·L(t)) and add U·TotalMessages per payload size U.
func (r PushResult) TotalBytes() float64 {
	total := 0.0
	for _, round := range r.Rounds {
		total += round.Messages * round.MessageBytes
	}
	return total
}

// MessagesPerOnlinePeer is the paper's headline metric: total messages
// divided by the initial online population.
func (r PushResult) MessagesPerOnlinePeer() float64 {
	if r.Params.ROn0 == 0 {
		return 0
	}
	return r.TotalMessages() / float64(r.Params.ROn0)
}

// FinalAware returns the final F_aware.
func (r PushResult) FinalAware() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].Aware
}

// NumRounds returns the number of push rounds executed (the paper's latency
// metric).
func (r PushResult) NumRounds() int { return len(r.Rounds) }

// RoundsToAware returns the first round t at which F_aware reaches the given
// fraction, or −1 if it never does.
func (r PushResult) RoundsToAware(frac float64) int {
	for _, round := range r.Rounds {
		if round.Aware >= frac {
			return round.T
		}
	}
	return -1
}

// Push evaluates the analytical recursion.
func Push(p PushParams) (PushResult, error) {
	if err := p.Validate(); err != nil {
		return PushResult{}, err
	}
	forward := p.PF
	if forward == nil {
		forward = pf.Always()
	}
	maxRounds := p.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	eps := p.Epsilon
	if eps <= 0 {
		eps = 1e-6
	}

	res := PushResult{Params: p}
	if p.ROn0 == 0 || p.Fr == 0 {
		return res, nil
	}

	rOn0 := float64(p.ROn0)
	fanout := p.Fanout()
	gamma := float64(replicalist.EntryBytes)

	// Round 0: the initiator sends to R·f_r replicas.
	aware := math.Min(1, p.Fr)
	delta := aware
	listLen := listLenAt(0, p)
	round := PushRound{
		T:            0,
		Messages:     fanout,
		CumMessages:  fanout,
		Pushers:      1,
		DeltaAware:   delta,
		Aware:        aware,
		ListLen:      listLen,
		MessageBytes: float64(p.UpdateBytes) + gamma*float64(p.R)*listLen,
	}
	res.Rounds = append(res.Rounds, round)

	for t := 1; t < maxRounds; t++ {
		pushers := rOn0 * delta * p.Sigma * forward.P(t)
		if pushers < eps || aware >= 1-1e-12 {
			break
		}
		carriedList := 0.0
		dupFactor := 1.0
		if p.PartialList {
			carriedList = listLenAt(t-1, p)
			dupFactor = 1 - carriedList
		}
		messages := pushers * fanout * dupFactor
		newDelta := (1 - aware) * (1 - math.Pow(1-p.Fr, pushers))
		if aware+newDelta > 1 {
			newDelta = 1 - aware // the paper's ceiling adjustment
		}
		aware += newDelta
		listLen = listLenAt(t, p)
		round = PushRound{
			T:            t,
			Messages:     messages,
			CumMessages:  res.Rounds[len(res.Rounds)-1].CumMessages + messages,
			Pushers:      pushers,
			DeltaAware:   newDelta,
			Aware:        aware,
			ListLen:      listLen,
			MessageBytes: float64(p.UpdateBytes) + gamma*float64(p.R)*listLen,
		}
		res.Rounds = append(res.Rounds, round)
		delta = newDelta
	}
	return res, nil
}

// ListLen returns the closed-form normalised partial-list length
// L(t) = 1 − (1−f_r)^(t+1) for an unthresholded list (§4.2, proved by
// induction in the paper).
func ListLen(t int, fr float64) float64 {
	if t < 0 {
		return 0
	}
	return 1 - math.Pow(1-fr, float64(t+1))
}

// ListLenRecursive returns L(t) via the paper's recursion
// L(t+1) = f_r + L(t) − f_r·L(t); it must equal the closed form (property
// tested).
func ListLenRecursive(t int, fr float64) float64 {
	l := fr // L(0): the initiator's list holds the f_r·R targets
	for i := 0; i < t; i++ {
		l = fr + l - fr*l
	}
	if t < 0 {
		return 0
	}
	return l
}

// listLenAt applies the optional threshold L_thr to the closed form.
func listLenAt(t int, p PushParams) float64 {
	if !p.PartialList {
		return 0
	}
	l := ListLen(t, p.Fr)
	if p.ListThreshold > 0 && p.ListThreshold < 1 && l > p.ListThreshold {
		return p.ListThreshold
	}
	return l
}
