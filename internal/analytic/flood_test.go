package analytic

import (
	"math"
	"testing"

	"github.com/p2pgossip/update/internal/pf"
)

func TestExpectedReached(t *testing.T) {
	if got := ExpectedReached(100, 50, 1000); got != 5 {
		t.Fatalf("ExpectedReached = %g, want 5", got)
	}
	if got := ExpectedReached(100, 50, 0); got != 0 {
		t.Fatalf("ExpectedReached with R=0 = %g", got)
	}
}

func TestExpectedAttempts(t *testing.T) {
	if got := ExpectedAttempts(0, 100, 1000); got != 0 {
		t.Fatalf("m=0: %g", got)
	}
	if got := ExpectedAttempts(5, 0, 1000); !math.IsInf(got, 1) {
		t.Fatalf("no online: %g, want +Inf", got)
	}
	if got := ExpectedAttempts(101, 100, 1000); !math.IsInf(got, 1) {
		t.Fatalf("m > online: %g, want +Inf", got)
	}
	// One target among K=100 online of R=1000: E = 1000/100 = 10.
	if got := ExpectedAttempts(1, 100, 1000); got != 10 {
		t.Fatalf("E_1 = %g, want 10", got)
	}
	// Coupon-collector growth: attempts grow superlinearly in m.
	e10 := ExpectedAttempts(10, 100, 1000)
	e50 := ExpectedAttempts(50, 100, 1000)
	if !(e50 > 5*e10/2) {
		t.Fatalf("coupon-collector growth violated: E_10=%g E_50=%g", e10, e50)
	}
}

func TestPoissonOnlineAttempts(t *testing.T) {
	if got := PoissonOnlineAttempts(0, 0.1, 1000); got != 0 {
		t.Fatalf("m=0: %g", got)
	}
	if got := PoissonOnlineAttempts(5, 0, 1000); !math.IsInf(got, 1) {
		t.Fatalf("pOn=0: %g", got)
	}
	// λ = R·p_on = 100 ≫ m = 5: correction vanishes, E ≈ m/p_on = 50.
	got := PoissonOnlineAttempts(5, 0.1, 1000)
	if math.Abs(got-50) > 1 {
		t.Fatalf("E = %g, want ≈ 50", got)
	}
	// λ small relative to m: the correction must reduce the estimate.
	small := PoissonOnlineAttempts(10, 0.001, 1000) // λ = 1 < m
	naive := 10 / 0.001
	if small >= naive {
		t.Fatalf("correction missing: %g >= %g", small, naive)
	}
}

func TestPureFloodMessages(t *testing.T) {
	if got := PureFloodMessages(1000, 0.004, 0, 0); got != 0 {
		t.Fatalf("0 rounds: %g", got)
	}
	// Fanout 4, 3 rounds: 4 + 16 + 64 = 84.
	if got := PureFloodMessages(1000, 0.004, 3, 0); got != 84 {
		t.Fatalf("geometric sum = %g, want 84", got)
	}
	// Cap applies.
	if got := PureFloodMessages(1000, 0.004, 10, 100); got != 100 {
		t.Fatalf("capped = %g, want 100", got)
	}
}

func TestGnutellaClosedForm(t *testing.T) {
	// "there will be on average f_r·R messages per online peer" (§5.6).
	if got := GnutellaMessagesPerOnlinePeer(1000, 0.004); got != 4 {
		t.Fatalf("fanout-4 Gnutella = %g msgs/peer, want 4", got)
	}
	if got := GnutellaMessagesPerOnlinePeer(1000, 0.04); got != 40 {
		t.Fatalf("fanout-40 Gnutella = %g msgs/peer, want 40", got)
	}
}

// TestTable2Top reproduces the first block of Table 2: all 1000 replicas
// online, σ=1, fanout 4 (f_r = 0.004). Paper values (msgs/online peer):
// Gnutella 4, Partial List 3.92, Haas G(0.8,2) 3.136, Ours 2.215; latency
// 7/7/7/8 rounds. We assert the ordering, the closed-form Gnutella value,
// and that each scheme lands within a generous band of the paper's number.
func TestTable2Top(t *testing.T) {
	rows, err := Compare(CompareParams{
		R: 1000, ROn0: 1000, Sigma: 1, Fr: 0.004,
		HaasP: 0.8, HaasK: 2,
		OursPF:      pf.Geometric{Base: 0.9},
		AwareTarget: 0.9,
	})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	byScheme := map[Scheme]ComparisonRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	gnutella := byScheme[SchemeGnutella]
	partial := byScheme[SchemePartialList]
	haas := byScheme[SchemeHaas]
	ours := byScheme[SchemeOurs]

	// Strict ordering: ours < Haas < partial list < Gnutella.
	if !(ours.MessagesPerPeer < haas.MessagesPerPeer &&
		haas.MessagesPerPeer < partial.MessagesPerPeer &&
		partial.MessagesPerPeer < gnutella.MessagesPerPeer) {
		t.Fatalf("Table 2 ordering violated: %+v", rows)
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %g, paper %g (tol %g)", name, got, want, tol)
		}
	}
	within("Gnutella", gnutella.MessagesPerPeer, 4.0, 0.4)
	within("PartialList", partial.MessagesPerPeer, 3.92, 0.4)
	within("Haas", haas.MessagesPerPeer, 3.136, 0.5)
	within("Ours", ours.MessagesPerPeer, 2.215, 0.8)

	// Latency: ours pays about one extra round.
	if ours.Rounds < gnutella.Rounds {
		t.Fatalf("ours should not be faster than Gnutella: %d vs %d",
			ours.Rounds, gnutella.Rounds)
	}
	if gnutella.Rounds < 5 || gnutella.Rounds > 9 {
		t.Fatalf("Gnutella rounds = %d, paper 7", gnutella.Rounds)
	}
}

// TestTable2Bottom reproduces the second block: 100 of 1000 replicas online,
// σ=1, fanout 40 (f_r = 0.04, ≈4 online peers expected per push). Paper:
// Gnutella 40, Partial List 35.22, Haas 28.49, Ours 16.35; 5/5/5/6 rounds.
func TestTable2Bottom(t *testing.T) {
	rows, err := Compare(CompareParams{
		R: 1000, ROn0: 100, Sigma: 1, Fr: 0.04,
		HaasP: 0.8, HaasK: 2,
		OursPF:      pf.Geometric{Base: 0.8},
		AwareTarget: 0.9,
	})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	byScheme := map[Scheme]ComparisonRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	gnutella := byScheme[SchemeGnutella]
	partial := byScheme[SchemePartialList]
	haas := byScheme[SchemeHaas]
	ours := byScheme[SchemeOurs]

	if !(ours.MessagesPerPeer < haas.MessagesPerPeer &&
		haas.MessagesPerPeer < partial.MessagesPerPeer &&
		partial.MessagesPerPeer < gnutella.MessagesPerPeer) {
		t.Fatalf("Table 2 ordering violated: %+v", rows)
	}
	within := func(name string, got, want, tolFrac float64) {
		t.Helper()
		if math.Abs(got-want)/want > tolFrac {
			t.Errorf("%s = %g, paper %g (±%.0f%%)", name, got, want, tolFrac*100)
		}
	}
	within("Gnutella", gnutella.MessagesPerPeer, 40, 0.15)
	within("PartialList", partial.MessagesPerPeer, 35.22, 0.15)
	within("Haas", haas.MessagesPerPeer, 28.49, 0.25)
	within("Ours", ours.MessagesPerPeer, 16.35, 0.35)

	// Dramatic improvement claim: ours saves ≥50% versus Gnutella.
	if ours.MessagesPerPeer > 0.6*gnutella.MessagesPerPeer {
		t.Fatalf("ours = %g vs Gnutella %g: improvement not dramatic",
			ours.MessagesPerPeer, gnutella.MessagesPerPeer)
	}
}

func TestCompareErrorPropagation(t *testing.T) {
	if _, err := Compare(CompareParams{R: -1}); err == nil {
		t.Fatal("invalid params should error")
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeGnutella:    "Gnutella",
		SchemePartialList: "Using Partial List",
		SchemeHaas:        "Haas et al. G(0.8,2)",
		SchemeOurs:        "Our Scheme",
	} {
		if got := s.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
	if got := Scheme(9).String(); got != "Scheme(9)" {
		t.Fatalf("unknown = %q", got)
	}
}
