package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPullSuccessBasics(t *testing.T) {
	tests := []struct {
		name     string
		rOn      int
		fAware   float64
		r        int
		attempts int
		want     float64
	}{
		{"zero attempts", 100, 1, 1000, 0, 0},
		{"zero replicas", 100, 1, 0, 3, 0},
		{"no aware", 100, 0, 1000, 5, 0},
		{"all aware all online", 1000, 1, 1000, 1, 1},
		{"single attempt", 100, 1, 1000, 1, 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := PullSuccess(tt.rOn, tt.fAware, tt.r, tt.attempts)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("PullSuccess = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestPullSuccessPaperFormula(t *testing.T) {
	// P = 1 − (1 − R_on·F_aware/R)^a with the paper's typical numbers:
	// 10% online, fully aware, a attempts.
	for _, a := range []int{1, 5, 10, 65} {
		got := PullSuccess(100, 1, 1000, a)
		want := 1 - math.Pow(0.9, float64(a))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("a=%d: PullSuccess = %g, want %g", a, got, want)
		}
	}
	// The paper's §2 motivation: 99.9% success with 10% availability needs
	// about 65 serial attempts (0.9^65 ≈ 0.001; the exact minimum is 66).
	if got := PullSuccess(100, 1, 1000, 66); got < 0.999 {
		t.Fatalf("66 attempts at 10%% availability = %g, want ≥ 0.999", got)
	}
}

func TestPullSuccessMonotone(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = r.Intn(1000)
			args[1] = r.Float64()
			args[2] = 1 + r.Intn(20)
		}),
	}
	prop := func(rOn int, fAware float64, attempts int) bool {
		r := 1000
		if rOn > r {
			rOn = r
		}
		p1 := PullSuccess(rOn, fAware, r, attempts)
		p2 := PullSuccess(rOn, fAware, r, attempts+1)
		return p2 >= p1-1e-12 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("PullSuccess not monotone in attempts: %v", err)
	}
}

func TestPullAttemptsFor(t *testing.T) {
	tests := []struct {
		name   string
		rOn    int
		fAware float64
		r      int
		target float64
		want   int
	}{
		{"trivial target", 100, 1, 1000, 0, 0},
		{"unreachable no replicas", 100, 1, 0, 0.9, -1},
		{"unreachable no aware", 100, 0, 1000, 0.9, -1},
		{"certain hit", 1000, 1, 1000, 0.99, 1},
		{"target one", 100, 1, 1000, 1, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := PullAttemptsFor(tt.rOn, tt.fAware, tt.r, tt.target)
			if got != tt.want {
				t.Fatalf("PullAttemptsFor = %d, want %d", got, tt.want)
			}
		})
	}
	// The computed attempt count must actually achieve the target.
	a := PullAttemptsFor(100, 1, 1000, 0.999)
	if a <= 0 {
		t.Fatalf("attempts = %d", a)
	}
	if got := PullSuccess(100, 1, 1000, a); got < 0.999 {
		t.Fatalf("%d attempts give %g, want ≥ 0.999", a, got)
	}
	if a > 1 {
		if got := PullSuccess(100, 1, 1000, a-1); got >= 0.999 {
			t.Fatalf("attempts not minimal: %d−1 already gives %g", a, got)
		}
	}
	// ≈65 serial attempts for 99.9% at 10% availability (§2).
	if a < 60 || a > 70 {
		t.Fatalf("attempts = %d, paper estimates ≈ 65", a)
	}
}

func TestPushWhilePulling(t *testing.T) {
	// No pushers ⇒ no chance.
	if got := PushWhilePulling(1000, 0, 1, 1, 0.01, 0); got != 0 {
		t.Fatalf("no pushers: %g", got)
	}
	// Full list ⇒ pushes target nobody new.
	if got := PushWhilePulling(1000, 0.5, 1, 1, 0.01, 1); got != 0 {
		t.Fatalf("full list: %g", got)
	}
	// Reasonable mid-push scenario: nonzero, below 1, increasing in ΔF.
	lo := PushWhilePulling(1000, 0.01, 0.9, 1, 0.01, 0.1)
	hi := PushWhilePulling(1000, 0.2, 0.9, 1, 0.01, 0.1)
	if !(lo > 0 && hi < 1 && hi > lo) {
		t.Fatalf("mid-push probabilities implausible: lo=%g hi=%g", lo, hi)
	}
}

func TestLazyPullDelay(t *testing.T) {
	if got := LazyPullDelay(0); !math.IsInf(got, 1) {
		t.Fatalf("delay at p=0 = %g, want +Inf", got)
	}
	if got := LazyPullDelay(0.25); got != 4 {
		t.Fatalf("delay at p=0.25 = %g, want 4", got)
	}
	if got := LazyPullDelay(2); got != 1 {
		t.Fatalf("delay clamps p to 1, got %g", got)
	}
}

func TestPullCost(t *testing.T) {
	cost, err := Pull(PullParams{R: 1000, ROn: 100, Attempts: 5})
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	wantSuccess := 1 - math.Pow(0.9, 5)
	if math.Abs(cost.SuccessProb-wantSuccess) > 1e-12 {
		t.Fatalf("SuccessProb = %g, want %g", cost.SuccessProb, wantSuccess)
	}
	if math.Abs(cost.ExpectedBatches-1/wantSuccess) > 1e-9 {
		t.Fatalf("ExpectedBatches = %g", cost.ExpectedBatches)
	}
	if math.Abs(cost.ExpectedMessages-5/wantSuccess) > 1e-9 {
		t.Fatalf("ExpectedMessages = %g", cost.ExpectedMessages)
	}
}

func TestPullCostUnreachable(t *testing.T) {
	cost, err := Pull(PullParams{R: 1000, ROn: 0, Attempts: 5})
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	if !math.IsInf(cost.ExpectedBatches, 1) || !math.IsInf(cost.ExpectedMessages, 1) {
		t.Fatalf("unreachable pull should cost infinity: %+v", cost)
	}
}

func TestPullValidation(t *testing.T) {
	for _, p := range []PullParams{
		{R: 0, ROn: 0, Attempts: 1},
		{R: 10, ROn: -1, Attempts: 1},
		{R: 10, ROn: 11, Attempts: 1},
		{R: 10, ROn: 5, Attempts: 0},
	} {
		if _, err := Pull(p); err == nil {
			t.Fatalf("Pull(%+v) should error", p)
		}
	}
}
