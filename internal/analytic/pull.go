package analytic

import (
	"fmt"
	"math"
)

// PullSuccess returns the probability that a replica coming online obtains
// the update within `attempts` random pull attempts, when a fraction fAware
// of the rOn online replicas (out of R total) already hold it (§4.3):
//
//	P = 1 − (1 − R_on·F_aware / R)^a
//
// The pulling peer draws targets uniformly from the full replica set, so the
// per-attempt hit probability is the fraction of *all* replicas that are both
// online and aware.
func PullSuccess(rOn int, fAware float64, r int, attempts int) float64 {
	if r <= 0 || attempts <= 0 {
		return 0
	}
	hit := float64(rOn) * clamp01(fAware) / float64(r)
	if hit > 1 {
		hit = 1
	}
	return 1 - math.Pow(1-hit, float64(attempts))
}

// PullAttemptsFor returns the smallest number of pull attempts that achieves
// at least the target success probability, or −1 if the target is
// unreachable (per-attempt hit probability zero). This backs the paper's
// claim that "a constant number of pull attempts should give the update
// information with high probability".
func PullAttemptsFor(rOn int, fAware float64, r int, target float64) int {
	if target <= 0 {
		return 0
	}
	if r <= 0 {
		return -1
	}
	hit := float64(rOn) * clamp01(fAware) / float64(r)
	if hit <= 0 {
		return -1
	}
	if hit >= 1 {
		return 1
	}
	if target >= 1 {
		return -1
	}
	// 1 − (1−hit)^a ≥ target  ⇔  a ≥ ln(1−target)/ln(1−hit).
	a := math.Log(1-target) / math.Log(1-hit)
	return int(math.Ceil(a))
}

// PushWhilePulling returns the probability that a peer which is online
// during an ongoing push receives the update by push in the next round,
// given that a fraction deltaAware of the rOn online replicas received the
// update in the previous round and continue pushing (§4.3):
//
//	P = 1 − (1 − f_r·(1−L(t)))^{R_on·ΔF_aware·σ·PF(t)}
//
// It is the complement of being missed by every pusher, where each pusher
// reaches a random f_r·(1−L) fraction outside its flooding list.
func PushWhilePulling(rOn int, deltaAware, sigma, pfT, fr, listLen float64) float64 {
	pushers := float64(rOn) * clamp01(deltaAware) * clamp01(sigma) * clamp01(pfT)
	perPush := clamp01(fr * (1 - clamp01(listLen)))
	return 1 - math.Pow(1-perPush, pushers)
}

// LazyPullDelay estimates the expected number of rounds a lazily pulling peer
// (§6: "it can wait till it receives update from some replica") waits before
// hearing about an update, given a steady per-round contact probability p.
// It is the mean of the geometric distribution, 1/p, or +Inf for p ≤ 0.
func LazyPullDelay(perRoundContact float64) float64 {
	p := clamp01(perRoundContact)
	if p == 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// PullParams parameterises an expected-cost analysis of the pull phase for a
// population of peers coming online after a push completed.
type PullParams struct {
	// R is the total number of replicas; ROn the online population holding
	// the update (fAware is folded in by the caller if <1).
	R, ROn int
	// Attempts is the number of parallel pull requests each waking peer
	// issues ("it is preferable to contact multiple peers", §3).
	Attempts int
}

// PullCost is the outcome of a pull-phase cost analysis.
type PullCost struct {
	// SuccessProb is the probability one waking peer syncs in one batch.
	SuccessProb float64
	// ExpectedBatches is the expected number of attempt batches until sync.
	ExpectedBatches float64
	// ExpectedMessages is the expected number of pull requests sent until
	// success (batches × attempts).
	ExpectedMessages float64
}

// Pull computes the expected cost of the pull phase.
func Pull(p PullParams) (PullCost, error) {
	if p.R <= 0 {
		return PullCost{}, fmt.Errorf("analytic: R = %d must be positive", p.R)
	}
	if p.ROn < 0 || p.ROn > p.R {
		return PullCost{}, fmt.Errorf("analytic: ROn = %d out of range [0,%d]", p.ROn, p.R)
	}
	if p.Attempts <= 0 {
		return PullCost{}, fmt.Errorf("analytic: attempts = %d must be positive", p.Attempts)
	}
	success := PullSuccess(p.ROn, 1, p.R, p.Attempts)
	cost := PullCost{SuccessProb: success}
	if success == 0 {
		cost.ExpectedBatches = math.Inf(1)
		cost.ExpectedMessages = math.Inf(1)
		return cost, nil
	}
	cost.ExpectedBatches = 1 / success
	cost.ExpectedMessages = cost.ExpectedBatches * float64(p.Attempts)
	return cost, nil
}

func clamp01(v float64) float64 {
	switch {
	case v < 0 || math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
