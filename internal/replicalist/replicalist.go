// Package replicalist implements the partial flooding list R_f that the push
// phase attaches to every update message, plus the peer-side replica
// membership view it feeds.
//
// The list serves three purposes in the paper:
//
//  1. Duplicate suppression — a forwarding peer sends only to R_p \ R_f
//     (§3, push pseudocode).
//  2. Membership gossip — a receiving peer "possibly discovers replicas
//     unknown to her" (§3), the name-dropper effect [Harchol-Balter et al.].
//  3. Feed-forward estimation — the normalised list length
//     L(t) = 1 − (1−f_r)^{t+1} estimates how far the update has already
//     spread, and is used to tune PF(t) and f_r locally (§4.2, §6).
//
// Because L(t) grows with every hop, §4.2 introduces a normalised threshold
// L_thr: lists longer than L_thr·R are truncated — by dropping the head, the
// tail, or random entries — trading extra duplicate messages for bounded
// message size.
package replicalist

import (
	"fmt"
	"math/rand"
	"sort"
)

// EntryBytes is γ, the size in bytes to describe one replica in a message
// (the paper suggests ~10 bytes: address + port).
const EntryBytes = 10

// TruncatePolicy selects which entries are dropped when a list exceeds its
// threshold length (§4.2: "discarding either random entries or the head or
// tail of the partial list").
type TruncatePolicy int

// Truncation policies.
const (
	// DropTail keeps the oldest entries (head of the list).
	DropTail TruncatePolicy = iota + 1
	// DropHead keeps the newest entries (tail of the list).
	DropHead
	// DropRandom drops uniformly random entries.
	DropRandom
)

// String returns the policy name.
func (p TruncatePolicy) String() string {
	switch p {
	case DropTail:
		return "drop-tail"
	case DropHead:
		return "drop-head"
	case DropRandom:
		return "drop-random"
	default:
		return fmt.Sprintf("TruncatePolicy(%d)", int(p))
	}
}

// List is a partial flooding list: an insertion-ordered set of peer IDs the
// update has already been sent to. The zero value is an empty list.
type List struct {
	order []int
	seen  map[int]struct{}
}

// New returns an empty list with capacity for n entries.
func New(n int) *List {
	return &List{
		order: make([]int, 0, n),
		seen:  make(map[int]struct{}, n),
	}
}

// FromSlice builds a list from ids, preserving order and dropping duplicates.
func FromSlice(ids []int) *List {
	l := New(len(ids))
	for _, id := range ids {
		l.Add(id)
	}
	return l
}

// Len returns the number of entries.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	return len(l.order)
}

// Contains reports whether id is in the list.
func (l *List) Contains(id int) bool {
	if l == nil {
		return false
	}
	_, ok := l.seen[id]
	return ok
}

// Add inserts id if absent and reports whether it was inserted.
func (l *List) Add(id int) bool {
	if l.seen == nil {
		l.seen = make(map[int]struct{})
	}
	if _, ok := l.seen[id]; ok {
		return false
	}
	l.seen[id] = struct{}{}
	l.order = append(l.order, id)
	return true
}

// AddAll inserts every id in ids, returning the number inserted.
func (l *List) AddAll(ids []int) int {
	n := 0
	for _, id := range ids {
		if l.Add(id) {
			n++
		}
	}
	return n
}

// Union returns a new list containing l's entries followed by other's new
// entries. Neither input is modified.
func (l *List) Union(other *List) *List {
	out := New(l.Len() + other.Len())
	if l != nil {
		out.AddAll(l.order)
	}
	if other != nil {
		out.AddAll(other.order)
	}
	return out
}

// Clone returns a deep copy.
func (l *List) Clone() *List {
	out := New(l.Len())
	if l != nil {
		out.AddAll(l.order)
	}
	return out
}

// Slice returns a copy of the entries in insertion order.
func (l *List) Slice() []int {
	if l == nil {
		return nil
	}
	return append([]int(nil), l.order...)
}

// Sorted returns a sorted copy of the entries.
func (l *List) Sorted() []int {
	s := l.Slice()
	sort.Ints(s)
	return s
}

// SizeBytes returns the wire size contribution of the list (γ per entry).
func (l *List) SizeBytes() int { return l.Len() * EntryBytes }

// NormalizedLen returns L = len/R, the paper's normalised list length, the
// local estimator of global spread. R must be positive.
func (l *List) NormalizedLen(totalReplicas int) float64 {
	if totalReplicas <= 0 {
		return 0
	}
	return float64(l.Len()) / float64(totalReplicas)
}

// TruncatedCopy returns a copy of list with at most maxLen entries, dropping
// the excess per the given policy. It is the single implementation of the
// §4.2 truncation semantics, shared by List and by the protocol engine's
// generic flooding lists. rng is required only for DropRandom (nil falls
// back to DropTail); an unknown policy keeps everything. The input is never
// modified.
func TruncatedCopy[T any](list []T, maxLen int, policy TruncatePolicy, rng *rand.Rand) []T {
	if maxLen < 0 || len(list) <= maxLen {
		return append([]T(nil), list...)
	}
	switch policy {
	case DropTail:
		return append([]T(nil), list[:maxLen]...)
	case DropHead:
		return append([]T(nil), list[len(list)-maxLen:]...)
	case DropRandom:
		if rng == nil {
			// Deterministic fallback keeps behaviour defined without a
			// random source.
			return append([]T(nil), list[:maxLen]...)
		}
		// Partial Fisher–Yates: maxLen draws instead of a full shuffle of
		// the (much longer) input. The kept subset is still uniform.
		out := append([]T(nil), list...)
		for i := 0; i < maxLen; i++ {
			j := i + rng.Intn(len(out)-i)
			out[i], out[j] = out[j], out[i]
		}
		return out[:maxLen]
	default:
		return append([]T(nil), list...)
	}
}

// Truncate drops entries until the list has at most maxLen entries, using the
// given policy. rng is required only for DropRandom. It returns the number of
// entries dropped.
func (l *List) Truncate(maxLen int, policy TruncatePolicy, rng *rand.Rand) int {
	if l == nil || maxLen < 0 || l.Len() <= maxLen {
		return 0
	}
	kept := TruncatedCopy(l.order, maxLen, policy, rng)
	dropped := l.Len() - len(kept)
	if dropped == 0 {
		return 0 // unknown policy keeps everything
	}
	l.order = kept
	l.seen = make(map[int]struct{}, len(kept))
	for _, id := range kept {
		l.seen[id] = struct{}{}
	}
	return dropped
}

// View is a peer's local membership view: the set of replicas it knows for
// the data partition. The paper assumes "each replica knows a minimal
// fraction of the complete set of replicas" (§2) and that views grow through
// the update mechanism itself.
type View struct {
	list *List
	self int
}

// NewView creates a view for peer self. The peer itself is never a member of
// its own view.
func NewView(self int) *View {
	return &View{list: New(16), self: self}
}

// Self returns the owning peer's id.
func (v *View) Self() int { return v.self }

// Len returns the number of known replicas.
func (v *View) Len() int { return v.list.Len() }

// Known reports whether id is in the view.
func (v *View) Known(id int) bool { return v.list.Contains(id) }

// Learn adds id to the view (ignoring the peer itself) and reports whether it
// was new.
func (v *View) Learn(id int) bool {
	if id == v.self {
		return false
	}
	return v.list.Add(id)
}

// LearnAll adds every id, returning the number newly learned. This is how the
// name-dropper effect materialises: partial lists piggybacked on updates
// expand the receiver's view.
func (v *View) LearnAll(ids []int) int {
	n := 0
	for _, id := range ids {
		if v.Learn(id) {
			n++
		}
	}
	return n
}

// Members returns a copy of the view in insertion order.
func (v *View) Members() []int { return v.list.Slice() }

// SampleExcluding returns up to k distinct members drawn uniformly at random,
// excluding any id in the exclude list. It is the "random subset R_p" choice
// of the push phase and the random peer choice of the pull phase.
func (v *View) SampleExcluding(k int, exclude *List, rng *rand.Rand) []int {
	if k <= 0 || v.list.Len() == 0 {
		return nil
	}
	// Reservoir-free approach: shuffle a copy of the candidate set. The view
	// is small (hundreds), so this is cheap and exact.
	candidates := make([]int, 0, v.list.Len())
	for _, id := range v.list.order {
		if exclude.Contains(id) {
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		return nil
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	return candidates[:k]
}

// Sample returns up to k distinct members drawn uniformly at random.
func (v *View) Sample(k int, rng *rand.Rand) []int {
	return v.SampleExcluding(k, nil, rng)
}
