package replicalist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContains(t *testing.T) {
	l := New(4)
	if l.Len() != 0 {
		t.Fatalf("new list Len = %d", l.Len())
	}
	if !l.Add(7) {
		t.Fatal("first Add returned false")
	}
	if l.Add(7) {
		t.Fatal("duplicate Add returned true")
	}
	if !l.Contains(7) || l.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestZeroValueList(t *testing.T) {
	var l List
	if !l.Add(1) {
		t.Fatal("Add on zero value failed")
	}
	if !l.Contains(1) {
		t.Fatal("Contains on zero value failed")
	}
}

func TestNilListSafeReads(t *testing.T) {
	var l *List
	if l.Len() != 0 || l.Contains(3) || l.Slice() != nil {
		t.Fatal("nil list reads should be zero values")
	}
	if l.NormalizedLen(10) != 0 {
		t.Fatal("nil NormalizedLen should be 0")
	}
	if got := l.Union(FromSlice([]int{1, 2})); got.Len() != 2 {
		t.Fatalf("nil Union = %v", got.Slice())
	}
}

func TestFromSliceDedup(t *testing.T) {
	l := FromSlice([]int{3, 1, 3, 2, 1})
	want := []int{3, 1, 2}
	got := l.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v (order preserved)", got, want)
		}
	}
}

func TestUnionPreservesBoth(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := FromSlice([]int{3, 4})
	u := a.Union(b)
	if u.Len() != 4 {
		t.Fatalf("union Len = %d, want 4", u.Len())
	}
	for _, id := range []int{1, 2, 3, 4} {
		if !u.Contains(id) {
			t.Fatalf("union missing %d", id)
		}
	}
	// Inputs untouched.
	if a.Len() != 3 || b.Len() != 2 {
		t.Fatal("Union modified an input")
	}
}

func TestUnionPropertyIsSetUnion(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			mk := func() []int {
				n := r.Intn(20)
				out := make([]int, n)
				for i := range out {
					out[i] = r.Intn(15)
				}
				return out
			}
			args[0] = mk()
			args[1] = mk()
		}),
	}
	prop := func(xs, ys []int) bool {
		u := FromSlice(xs).Union(FromSlice(ys))
		want := map[int]struct{}{}
		for _, x := range xs {
			want[x] = struct{}{}
		}
		for _, y := range ys {
			want[y] = struct{}{}
		}
		if u.Len() != len(want) {
			return false
		}
		for x := range want {
			if !u.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("union is not set union: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{1, 2})
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Fatal("Clone aliases original")
	}
}

func TestSizeBytesAndNormalized(t *testing.T) {
	l := FromSlice([]int{1, 2, 3})
	if got := l.SizeBytes(); got != 3*EntryBytes {
		t.Fatalf("SizeBytes = %d", got)
	}
	if got := l.NormalizedLen(30); got != 0.1 {
		t.Fatalf("NormalizedLen = %g", got)
	}
	if got := l.NormalizedLen(0); got != 0 {
		t.Fatalf("NormalizedLen with R=0 = %g", got)
	}
}

func TestTruncatePolicies(t *testing.T) {
	base := []int{10, 11, 12, 13, 14}
	t.Run("drop-tail keeps head", func(t *testing.T) {
		l := FromSlice(base)
		dropped := l.Truncate(2, DropTail, nil)
		if dropped != 3 {
			t.Fatalf("dropped = %d", dropped)
		}
		got := l.Slice()
		if len(got) != 2 || got[0] != 10 || got[1] != 11 {
			t.Fatalf("Slice = %v", got)
		}
		if l.Contains(14) {
			t.Fatal("seen map not pruned")
		}
	})
	t.Run("drop-head keeps tail", func(t *testing.T) {
		l := FromSlice(base)
		l.Truncate(2, DropHead, nil)
		got := l.Slice()
		if len(got) != 2 || got[0] != 13 || got[1] != 14 {
			t.Fatalf("Slice = %v", got)
		}
		if l.Contains(10) {
			t.Fatal("seen map not pruned")
		}
	})
	t.Run("drop-random keeps count", func(t *testing.T) {
		l := FromSlice(base)
		rng := rand.New(rand.NewSource(1))
		l.Truncate(3, DropRandom, rng)
		if l.Len() != 3 {
			t.Fatalf("Len = %d", l.Len())
		}
		for _, id := range l.Slice() {
			if !l.Contains(id) {
				t.Fatalf("map/order inconsistent for %d", id)
			}
		}
	})
	t.Run("drop-random nil rng falls back", func(t *testing.T) {
		l := FromSlice(base)
		l.Truncate(2, DropRandom, nil)
		if l.Len() != 2 {
			t.Fatalf("Len = %d", l.Len())
		}
	})
	t.Run("no-op when short", func(t *testing.T) {
		l := FromSlice(base)
		if got := l.Truncate(10, DropTail, nil); got != 0 {
			t.Fatalf("dropped = %d", got)
		}
	})
	t.Run("unknown policy no-op", func(t *testing.T) {
		l := FromSlice(base)
		if got := l.Truncate(1, TruncatePolicy(99), nil); got != 0 {
			t.Fatalf("dropped = %d", got)
		}
	})
}

func TestTruncateConsistencyProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			n := r.Intn(30)
			ids := make([]int, n)
			for i := range ids {
				ids[i] = r.Intn(40)
			}
			args[0] = ids
			args[1] = r.Intn(30)
			args[2] = int(DropTail) + r.Intn(3)
			args[3] = r.Int63()
		}),
	}
	prop := func(ids []int, maxLen, policy int, seed int64) bool {
		l := FromSlice(ids)
		rng := rand.New(rand.NewSource(seed))
		l.Truncate(maxLen, TruncatePolicy(policy), rng)
		if l.Len() > maxLen {
			return false
		}
		// order and seen map stay consistent
		for _, id := range l.Slice() {
			if !l.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("truncate inconsistency: %v", err)
	}
}

func TestViewLearn(t *testing.T) {
	v := NewView(5)
	if v.Self() != 5 {
		t.Fatalf("Self = %d", v.Self())
	}
	if v.Learn(5) {
		t.Fatal("view learned itself")
	}
	if !v.Learn(1) || v.Learn(1) {
		t.Fatal("Learn dedup broken")
	}
	if n := v.LearnAll([]int{1, 2, 3, 5}); n != 2 {
		t.Fatalf("LearnAll = %d, want 2", n)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	members := v.Members()
	sort.Ints(members)
	for i, want := range []int{1, 2, 3} {
		if members[i] != want {
			t.Fatalf("Members = %v", members)
		}
	}
}

func TestViewSampleExcluding(t *testing.T) {
	v := NewView(0)
	for i := 1; i <= 10; i++ {
		v.Learn(i)
	}
	rng := rand.New(rand.NewSource(2))
	exclude := FromSlice([]int{1, 2, 3, 4, 5})
	got := v.SampleExcluding(10, exclude, rng)
	if len(got) != 5 {
		t.Fatalf("sample size = %d, want 5", len(got))
	}
	for _, id := range got {
		if exclude.Contains(id) {
			t.Fatalf("sample contains excluded id %d", id)
		}
	}
	// k smaller than candidates: distinct entries.
	got = v.Sample(4, rng)
	if len(got) != 4 {
		t.Fatalf("Sample size = %d", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("Sample has duplicate %d", id)
		}
		seen[id] = true
	}
}

func TestViewSampleEdgeCases(t *testing.T) {
	v := NewView(0)
	rng := rand.New(rand.NewSource(3))
	if got := v.Sample(3, rng); got != nil {
		t.Fatalf("Sample on empty view = %v", got)
	}
	v.Learn(1)
	if got := v.Sample(0, rng); got != nil {
		t.Fatalf("Sample k=0 = %v", got)
	}
	if got := v.SampleExcluding(3, FromSlice([]int{1}), rng); got != nil {
		t.Fatalf("fully excluded sample = %v", got)
	}
}

func TestViewSampleUniformity(t *testing.T) {
	// Loose sanity check: each of 5 members appears roughly equally often in
	// 1-element samples.
	v := NewView(0)
	for i := 1; i <= 5; i++ {
		v.Learn(i)
	}
	rng := rand.New(rand.NewSource(4))
	counts := map[int]int{}
	const trials = 5000
	for i := 0; i < trials; i++ {
		got := v.Sample(1, rng)
		counts[got[0]]++
	}
	for id, c := range counts {
		frac := float64(c) / trials
		if frac < 0.15 || frac > 0.25 {
			t.Fatalf("member %d sampled with frequency %.3f, want ≈ 0.2", id, frac)
		}
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[TruncatePolicy]string{
		DropTail: "drop-tail", DropHead: "drop-head", DropRandom: "drop-random",
	} {
		if got := p.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
	if got := TruncatePolicy(42).String(); got != "TruncatePolicy(42)" {
		t.Fatalf("unknown String = %q", got)
	}
}

func TestSorted(t *testing.T) {
	l := FromSlice([]int{5, 1, 3})
	got := l.Sorted()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v", got)
		}
	}
}

func quickValues(fill func(args []interface{}, r *rand.Rand)) func([]reflect.Value, *rand.Rand) {
	return func(vals []reflect.Value, r *rand.Rand) {
		args := make([]interface{}, len(vals))
		fill(args, r)
		for i := range vals {
			vals[i] = reflect.ValueOf(args[i])
		}
	}
}
