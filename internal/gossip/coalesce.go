package gossip

import (
	"sort"

	"github.com/p2pgossip/update/internal/engine"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// This file is the simulator's mirror of the live runtime's coalescing
// per-peer senders (internal/live/sender.go). With Config.LinkBudget > 0 a
// peer may emit at most that many messages per destination per round;
// overflow merges into a per-destination pending delta with the same rules
// the live sender applies — pushes dedup by store.Ref and newer versions
// displace dominated pending ones, outstanding pull responses collapse to
// the pointwise-minimum requester clock, pull requests and acks are
// idempotent — and drains (budget-bounded, in sorted destination order for
// determinism) on subsequent ticks with everything late-bound: flooding
// lists re-rendered from engine state, pull-request clocks from the store,
// pull responses from the coalesced clock. Scenarios can therefore assert
// the coalescing design's two load-bearing properties — bounded pending
// state and eventual delivery through a throttled link — deterministically,
// which no wall-clock test of the TCP path can.

// simPendingPush is one coalesced outbound push: the update and its round
// counter; the flooding list is re-rendered at drain time.
type simPendingPush struct {
	u store.Update
	t int
}

// simPending is everything owed to one destination, in mergeable form.
type simPending struct {
	pushes map[store.Ref]simPendingPush
	order  []store.Ref
	byKey  map[string][]store.Ref

	acks   []store.Ref
	ackSet map[store.Ref]struct{}

	pullReq bool

	pullResp  bool
	pullClock version.Clock
	pullPeers []int

	// aux holds query traffic, which cannot merge, in arrival order.
	aux []engine.Message[int]
}

func newSimPending() *simPending {
	return &simPending{
		pushes: make(map[store.Ref]simPendingPush),
		byKey:  make(map[string][]store.Ref),
		ackSet: make(map[store.Ref]struct{}),
	}
}

// size counts the distinct pending items — the quantity the bounded-sender
// invariant constrains.
func (sp *simPending) size() int {
	n := len(sp.pushes) + len(sp.acks) + len(sp.aux)
	if sp.pullReq {
		n++
	}
	if sp.pullResp {
		n++
	}
	return n
}

func (sp *simPending) empty() bool { return sp.size() == 0 }

// add merges one engine message into the pending delta, mirroring the live
// sender's deposit rules.
func (sp *simPending) add(m engine.Message[int]) {
	switch m.Kind {
	case engine.KindPush:
		ref := m.Update.Ref()
		if e, ok := sp.pushes[ref]; ok {
			e.t = m.T
			sp.pushes[ref] = e
			return
		}
		refs := sp.byKey[m.Update.Key]
		for _, other := range refs {
			if e, ok := sp.pushes[other]; ok && e.u.Version.Dominates(m.Update.Version) {
				return // already carrying this key at or past this version
			}
		}
		kept := refs[:0]
		for _, other := range refs {
			e, ok := sp.pushes[other]
			if !ok {
				continue
			}
			if m.Update.Version.Dominates(e.u.Version) {
				delete(sp.pushes, other)
				continue
			}
			kept = append(kept, other)
		}
		sp.pushes[ref] = simPendingPush{u: m.Update, t: m.T}
		sp.order = append(sp.order, ref)
		sp.byKey[m.Update.Key] = append(kept, ref)
	case engine.KindAck:
		if _, ok := sp.ackSet[m.UpdateRef]; ok {
			return
		}
		sp.ackSet[m.UpdateRef] = struct{}{}
		sp.acks = append(sp.acks, m.UpdateRef)
	case engine.KindPullReq:
		sp.pullReq = true
	case engine.KindPullResp:
		if m.Clock == nil || m.Updates != nil {
			sp.aux = append(sp.aux, m) // already rendered; cannot merge
			return
		}
		if !sp.pullResp {
			sp.pullResp = true
			sp.pullClock = m.Clock
			sp.pullPeers = m.Peers
			return
		}
		for origin, have := range sp.pullClock {
			if nv, ok := m.Clock[origin]; !ok {
				delete(sp.pullClock, origin)
			} else if nv < have {
				sp.pullClock[origin] = nv
			}
		}
		sp.pullPeers = m.Peers
	default:
		sp.aux = append(sp.aux, m)
	}
}

// deposit routes one over-budget message into the destination's pending
// delta and tracks the peak pending size for the scenario invariant.
func (p *Peer) deposit(to int, m engine.Message[int]) {
	if p.pendingOut == nil {
		p.pendingOut = make(map[int]*simPending)
	}
	sp := p.pendingOut[to]
	if sp == nil {
		sp = newSimPending()
		p.pendingOut[to] = sp
	}
	sp.add(m)
	if n := sp.size(); n > p.peakPending {
		p.peakPending = n
	}
}

// drainPending emits up to LinkBudget pending messages per destination, in
// sorted destination order so the deterministic message stream does not
// depend on map iteration. Pushes go first (they carry the new data), then
// acks, the pull request, the pull response, and finally aux traffic; the
// remainder stays pending for the next round.
func (p *Peer) drainPending() {
	if len(p.pendingOut) == 0 {
		return
	}
	dests := make([]int, 0, len(p.pendingOut))
	for to := range p.pendingOut {
		dests = append(dests, to)
	}
	sort.Ints(dests)
	for _, to := range dests {
		sp := p.pendingOut[to]
		budget := p.cfg.LinkBudget - p.spent[to]
		for budget > 0 && len(sp.order) > 0 {
			ref := sp.order[0]
			sp.order = sp.order[1:]
			e, ok := sp.pushes[ref]
			if !ok {
				continue // superseded while pending
			}
			delete(sp.pushes, ref)
			// Late-bound flooding list: the engine's current carried list,
			// not the one at deposit time.
			rf, _ := p.eng.RenderPush(ref)
			p.emit(to, engine.Message[int]{
				Kind: engine.KindPush, Update: e.u, RF: rf, T: e.t,
			})
			p.spent[to]++
			budget--
		}
		for budget > 0 && len(sp.acks) > 0 {
			ref := sp.acks[0]
			sp.acks = sp.acks[1:]
			delete(sp.ackSet, ref)
			p.emit(to, engine.Message[int]{Kind: engine.KindAck, UpdateRef: ref})
			p.spent[to]++
			budget--
		}
		if budget > 0 && sp.pullReq {
			sp.pullReq = false
			// Late-bound clock: request exactly what is missing now.
			p.emit(to, engine.Message[int]{
				Kind: engine.KindPullReq, Clock: p.st.Clock(),
			})
			p.spent[to]++
			budget--
		}
		if budget > 0 && sp.pullResp {
			sp.pullResp = false
			clock, peers := sp.pullClock, sp.pullPeers
			sp.pullClock, sp.pullPeers = nil, nil
			p.emit(to, engine.Message[int]{
				Kind: engine.KindPullResp, Clock: clock, Peers: peers,
			})
			p.spent[to]++
			budget--
		}
		for budget > 0 && len(sp.aux) > 0 {
			m := sp.aux[0]
			sp.aux = sp.aux[1:]
			p.emit(to, m)
			p.spent[to]++
			budget--
		}
		if sp.empty() {
			delete(p.pendingOut, to)
		}
	}
}

// PeakPendingPerDest reports the largest pending-delta size (distinct
// coalesced items) any single destination accumulated over the peer's
// lifetime. Zero unless LinkBudget is set. The slow-link scenarios assert
// this stays bounded by the live-state size rather than traffic volume.
func (p *Peer) PeakPendingPerDest() int { return p.peakPending }
