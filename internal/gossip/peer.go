package gossip

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"github.com/p2pgossip/update/internal/engine"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/store"
)

// Simulator time constants, in rounds (one round = one engine tick).
const (
	// ackTimeoutRounds is how long a pushed peer has to ack before being
	// suspected offline: one round for the push, one for the reply.
	ackTimeoutRounds = 2
	// queryTimeoutRounds is how long a query waits for responses before
	// finishing with what arrived.
	queryTimeoutRounds = 10
)

// Peer is one replica running the hybrid push/pull protocol in the
// round-based simulator. It is a thin adapter: the §4/§6 state machine
// lives in internal/engine, shared verbatim with the live runtime; this
// type only translates between simnet's message/round model (int peer
// indices, typed payloads with byte accounting) and the engine.
type Peer struct {
	id  int
	cfg Config
	eng *engine.Engine[int]
	st  store.Backend
	w   *store.Writer

	// env is the simulation environment of the callback currently running;
	// the engine reaches time, randomness, and delivery through it.
	env *simnet.Env
	// round mirrors the engine round, updated on every callback; the
	// writer's simulated clock derives from it.
	round int

	// snapshot is the durable image captured at crash time; Restart
	// recovers from it. bootstrap is the seed peer list a restarted
	// process re-learns (its config file); nil means the membership view
	// held at crash time (a persisted peer cache).
	snapshot  []byte
	bootstrap []int

	// Link-budget coalescing state (coalesce.go), active only with
	// cfg.LinkBudget > 0: per-destination pending deltas for over-budget
	// traffic, tokens spent per destination this round, and the lifetime
	// peak pending size the scenario invariants read.
	pendingOut  map[int]*simPending
	spent       map[int]int
	spentRound  int
	peakPending int
}

var (
	_ simnet.Node        = (*Peer)(nil)
	_ simnet.Restartable = (*Peer)(nil)
)

// simEndpoint adapts a Peer to the engine's Endpoint: simulated time is the
// round number, randomness is the engine-wide deterministic source, and
// sends become simnet messages charged with the byte size the live binary
// codec would put on the wire (payload plus the per-frame fixed costs; see
// messages.go).
type simEndpoint struct{ p *Peer }

func (s simEndpoint) Self() int        { return s.p.id }
func (s simEndpoint) Now() int64       { return int64(s.p.round) }
func (s simEndpoint) Rand() *rand.Rand { return s.p.env.RNG() }
func (s simEndpoint) Send(to int, m engine.Message[int]) {
	p := s.p
	if p.cfg.LinkBudget > 0 {
		p.refreshBudget()
		// Over budget — or behind earlier pending traffic, which must not
		// be overtaken — the message merges into the destination's pending
		// delta instead of going on the wire.
		if p.spent[to] >= p.cfg.LinkBudget || p.pendingOut[to] != nil {
			p.deposit(to, m)
			return
		}
		p.spent[to]++
	}
	p.emit(to, m)
}

// refreshBudget resets the per-destination token counts at the first send
// of each round.
func (p *Peer) refreshBudget() {
	if p.spent == nil {
		p.spent = make(map[int]int)
		p.spentRound = p.round
		return
	}
	if p.spentRound != p.round {
		clear(p.spent)
		p.spentRound = p.round
	}
}

// emit puts one engine message on the simulated wire, charging the byte
// size the live binary codec would. Deferred pull responses — an intent
// carrying only the requester's clock (Config.DeferPullRender, on exactly
// when LinkBudget is) — are rendered here, at transmission time, into a
// delta or a snapshot.
func (p *Peer) emit(to int, m engine.Message[int]) {
	if m.Kind == engine.KindPullResp && m.Updates == nil && m.Clock != nil {
		updates, snapshot, ok := p.eng.RenderPullResp(m.Clock)
		if !ok {
			return
		}
		if snapshot != nil {
			m = engine.Message[int]{Kind: engine.KindSnapshot, Snapshot: snapshot, Peers: m.Peers}
		} else {
			m = engine.Message[int]{Kind: engine.KindPullResp, Updates: updates, Peers: m.Peers}
		}
	}
	env := p.env
	reg := env.Metrics()
	frame := frameBytes(p.id)
	switch m.Kind {
	case engine.KindPush:
		msg := PushMsg{Update: m.Update, RF: m.RF, T: m.T}
		bytes := frame + msg.SizeBytes()
		env.Send(to, msg, bytes)
		reg.Inc(MetricPushes)
		reg.Add(MetricPushBytes, float64(bytes))
	case engine.KindPullReq:
		msg := PullReq{Clock: m.Clock}
		env.Send(to, msg, frame+msg.SizeBytes())
		reg.Inc(MetricPullRequests)
	case engine.KindPullResp:
		msg := PullResp{Updates: m.Updates, Peers: m.Peers}
		env.Send(to, msg, frame+msg.SizeBytes())
		reg.Inc(MetricPullResponses)
		reg.Add(MetricPullUpdates, float64(len(m.Updates)))
	case engine.KindAck:
		msg := AckMsg{Ref: m.UpdateRef}
		env.Send(to, msg, frame+msg.SizeBytes())
		reg.Inc(MetricAcks)
	case engine.KindQuery:
		msg := QueryMsg{QID: m.QID, Key: m.Key}
		env.Send(to, msg, frame+msg.SizeBytes())
		reg.Inc(MetricQueries)
	case engine.KindQueryResp:
		msg := QueryResp{
			QID: m.QID, Key: m.Key, Found: m.Found,
			Value: m.Value, Version: m.Version, Confident: m.Confident,
		}
		env.Send(to, msg, frame+msg.SizeBytes())
		reg.Inc(MetricQueryResponses)
	case engine.KindSnapshot:
		msg := SnapshotMsg{Data: m.Snapshot, Peers: m.Peers}
		bytes := frame + msg.SizeBytes()
		env.Send(to, msg, bytes)
		reg.Inc(MetricSnapshots)
		reg.Add(MetricSnapshotBytes, float64(bytes))
	}
}

// NewPeer constructs a peer with the given index and configuration. The view
// starts empty; populate it via Learn or the BuildNetwork helper.
func NewPeer(id int, cfg Config) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Peers run the same sharded store as the live runtime — the simulator
	// is single-threaded, but every deterministic scenario then exercises
	// the sharded code paths (routing, clock composition, canonical
	// ordering). The sharded store draws no randomness, so scenario streams
	// are unaffected.
	retain := time.Duration(cfg.TombstoneRetention) * time.Second
	if retain == 0 {
		retain = store.DefaultTombstoneRetention
	}
	st := store.NewShardedWithRetention(4, retain)
	p := &Peer{id: id, cfg: cfg, st: st}
	w, err := store.NewWriter(fmt.Sprintf("peer-%d", id), st, p.now,
		rand.New(rand.NewSource(int64(id)+1)))
	if err != nil {
		return nil, err
	}
	listMax := 0
	if cfg.ListThreshold > 0 {
		// L_thr is normalised over R; thresholds below one entry still
		// carry a single id so the wire list stays meaningful.
		if listMax = int(cfg.ListThreshold * float64(cfg.R)); listMax < 1 {
			listMax = 1
		}
	}
	eng, err := engine.New(engine.Config[int]{
		Fanout:           float64(cfg.R) * cfg.Fr,
		NewPF:            cfg.NewPF,
		PartialList:      cfg.PartialList,
		ListMax:          listMax,
		TruncatePolicy:   cfg.TruncatePolicy,
		Population:       cfg.R,
		PullAttempts:     cfg.PullAttempts,
		LazyPull:         cfg.LazyPull,
		PullTimeout:      int64(cfg.PullTimeout),
		PullGossipSample: pullGossipSample,
		Acks:             cfg.Ack == AckFirst,
		AckTimeout:       ackTimeoutRounds,
		SuspectTTL:       int64(cfg.suspectTTL()),
		SnapshotCatchUp:  cfg.SnapshotCatchUp,
		FrontierTTL:      int64(cfg.FrontierTTL),
		QueryTimeout:     queryTimeoutRounds,
		DeferPullRender:  cfg.LinkBudget > 0,
		Hooks: engine.Hooks[int]{
			OnLearned: func(n int) {
				p.env.Metrics().Add(MetricReplicasLearned, float64(n))
			},
			OnDuplicate: func(store.Update, int) {
				p.env.Metrics().Inc(MetricDuplicates)
			},
		},
	}, simEndpoint{p}, st, w)
	if err != nil {
		return nil, err
	}
	p.eng = eng
	p.w = w
	return p, nil
}

// SetBootstrap configures the peer list re-learned after a crash/restart —
// the static seed addresses a real deployment reads from its config. Without
// it, Restart falls back to the membership view held at crash time.
func (p *Peer) SetBootstrap(ids ...int) {
	p.bootstrap = append([]int(nil), ids...)
}

// Crash implements simnet.Restartable: the process dies. The update log —
// the durable state — is captured as a snapshot; everything volatile (the
// in-memory store image, flooding lists, PF state, ack/suspect bookkeeping,
// membership view) is wiped.
func (p *Peer) Crash(env *simnet.Env) {
	p.bind(env)
	if p.bootstrap == nil {
		// No configured seed list: model a persisted peer cache by
		// remembering the view held at crash time.
		p.bootstrap = p.eng.KnownPeers()
	}
	var buf bytes.Buffer
	if err := p.st.WriteSnapshot(&buf); err == nil {
		p.snapshot = buf.Bytes()
	} else {
		p.snapshot = nil // disk died with the process
	}
	p.st.Reset()
	p.eng.Restart(nil)
	// Pending deltas and budget tokens are process state, not durable: the
	// crash drops exactly this peer's undelivered coalesced traffic.
	p.pendingOut = nil
	p.spent = nil
}

// Restart implements simnet.Restartable: the process comes back, restores
// the store from the crash-time snapshot, resyncs the writer's sequence
// counter, and re-learns the bootstrap peers. Updates missed while down
// arrive through pull anti-entropy once the engine's CameOnline fires.
func (p *Peer) Restart(env *simnet.Env) {
	p.bind(env)
	if p.snapshot != nil {
		// Restore failures leave an empty store: the peer rejoins as a
		// fresh replica and recovers everything by pulling.
		_ = p.st.RestoreSnapshot(bytes.NewReader(p.snapshot))
	}
	p.w.Resync()
	p.eng.Restart(p.bootstrap)
}

// bind points the peer at the environment of the callback currently running.
func (p *Peer) bind(env *simnet.Env) {
	p.env = env
	p.round = env.Round()
}

// now is the peer's simulated wall clock: one round = one second, offset
// into a plausible epoch so tombstone retention arithmetic behaves. The
// writer stamps updates with it and the janitor measures TTLs against it.
func (p *Peer) now() time.Time {
	return time.Unix(1_700_000_000+int64(p.round), 0)
}

// ID returns the peer's index.
func (p *Peer) ID() int { return p.id }

// Store returns the peer's replica store.
func (p *Peer) Store() store.Backend { return p.st }

// Learn adds id to the peer's membership view (ignoring the peer itself)
// and reports whether it was new.
func (p *Peer) Learn(id int) bool { return p.eng.Learn(id) }

// Knows reports whether id is in the peer's membership view.
func (p *Peer) Knows(id int) bool { return p.eng.Knows(id) }

// KnownPeers returns a copy of the membership view in insertion order.
func (p *Peer) KnownPeers() []int { return p.eng.KnownPeers() }

// KnownCount returns the number of known replicas.
func (p *Peer) KnownCount() int { return p.eng.KnownCount() }

// HasUpdate reports whether the peer has applied the update with the given
// ID (store.Update.ID()).
func (p *Peer) HasUpdate(updateID string) bool { return p.eng.HasUpdate(updateID) }

// Duplicates returns the duplicate-push count observed for an update.
func (p *Peer) Duplicates(updateID string) int { return p.eng.Duplicates(updateID) }

// Init implements simnet.Node.
func (p *Peer) Init(*simnet.Env) {}

// CameOnline implements simnet.Node: the pull-phase trigger.
func (p *Peer) CameOnline(env *simnet.Env) {
	p.bind(env)
	p.eng.CameOnline()
}

// Tick implements simnet.Node. Beyond the engine tick it drives the two
// periodic maintenance cadences: anti-entropy pulls every PullEvery rounds
// and the janitor every CompactEvery rounds.
func (p *Peer) Tick(env *simnet.Env) {
	p.bind(env)
	if p.cfg.LinkBudget > 0 {
		// Fresh round, fresh tokens: drain what earlier rounds coalesced
		// before the engine generates new traffic.
		p.refreshBudget()
		p.drainPending()
	}
	p.eng.Tick()
	if every := p.cfg.PullEvery; every > 0 && p.round > 0 && p.round%every == 0 {
		p.eng.PullNow()
	}
	if every := p.cfg.CompactEvery; every > 0 && p.round > 0 && p.round%every == 0 {
		p.runJanitor()
	}
}

// runJanitor performs one maintenance pass: expire TTL'd keys into
// tombstones, collect tombstones past retention, and compact the update log
// up to the stable frontier (the pointwise-minimum clock across recently
// pulling peers).
func (p *Peer) runJanitor() {
	reg := p.env.Metrics()
	now := p.now()
	if p.cfg.KeyTTL > 0 {
		ttl := time.Duration(p.cfg.KeyTTL) * time.Second
		if n := p.st.ExpireTTL(now, ttl); n > 0 {
			reg.Add(MetricKeysExpired, float64(n))
		}
	}
	if n := p.st.GCTombstones(now); n > 0 {
		reg.Add(MetricTombstonesGC, float64(n))
	}
	if frontier := p.eng.StableFrontier(); frontier != nil {
		if n := p.st.CompactLog(frontier); n > 0 {
			reg.Add(MetricLogCompacted, float64(n))
		}
	}
}

// HandleMessage implements simnet.Node.
func (p *Peer) HandleMessage(env *simnet.Env, msg simnet.Message) {
	p.bind(env)
	switch m := msg.Payload.(type) {
	case PushMsg:
		p.eng.Handle(msg.From, engine.Message[int]{
			Kind: engine.KindPush, Update: m.Update, RF: m.RF, T: m.T,
		})
	case PullReq:
		p.eng.Handle(msg.From, engine.Message[int]{
			Kind: engine.KindPullReq, Clock: m.Clock,
		})
	case PullResp:
		p.eng.Handle(msg.From, engine.Message[int]{
			Kind: engine.KindPullResp, Updates: m.Updates, Peers: m.Peers,
		})
	case AckMsg:
		p.eng.Handle(msg.From, engine.Message[int]{
			Kind: engine.KindAck, UpdateRef: m.Ref,
		})
	case QueryMsg:
		p.eng.Handle(msg.From, engine.Message[int]{
			Kind: engine.KindQuery, QID: m.QID, Key: m.Key,
		})
	case QueryResp:
		p.eng.Handle(msg.From, engine.Message[int]{
			Kind: engine.KindQueryResp, QID: m.QID, Key: m.Key,
			Found: m.Found, Value: m.Value, Version: m.Version,
			Confident: m.Confident,
		})
	case SnapshotMsg:
		p.eng.Handle(msg.From, engine.Message[int]{
			Kind: engine.KindSnapshot, Snapshot: m.Data, Peers: m.Peers,
		})
		// The snapshot may carry this peer's own origin past the writer's
		// counter (rejoin after disk loss); never reuse sequence numbers.
		p.w.Resync()
		env.Metrics().Inc(MetricSnapshotCatchups)
	}
}

// Publish creates an update for key/value at this peer and initiates its
// push phase (the paper's round 0).
func (p *Peer) Publish(env *simnet.Env, key string, value []byte) store.Update {
	p.bind(env)
	return p.eng.Publish(key, value)
}

// PublishDelete creates a tombstone update and initiates its push phase.
func (p *Peer) PublishDelete(env *simnet.Env, key string) store.Update {
	p.bind(env)
	return p.eng.PublishDelete(key)
}

// pullGossipSample is the number of peer ids piggybacked on pull responses.
const pullGossipSample = 16
