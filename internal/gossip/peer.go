package gossip

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/store"
)

// updateState is a peer's per-update bookkeeping: the accumulated flooding
// list, the duplicate count (the §6 local tuning metric), and the PF
// instance that decides forwarding.
type updateState struct {
	rf     *replicalist.List
	dupes  int
	pfn    pf.Func
	pushed bool
}

// Peer is one replica running the hybrid push/pull protocol. It implements
// simnet.Node; the live runtime wraps the same logic behind goroutines.
type Peer struct {
	id     int
	cfg    Config
	view   *replicalist.View
	st     *store.Store
	writer *store.Writer

	states map[string]*updateState
	// lastReceived is the round in which the peer last received any update
	// content (push or pull response), driving "no_updates_since(t)".
	lastReceived int
	// notConfident is set while a lazily-pulling peer has not yet synced
	// after coming online.
	notConfident bool

	// Ack optimisation state (§6).
	ackedBy     map[int]int // peer → round of their last ack to us
	suspects    map[int]int // peer → round we began suspecting them
	awaitingAck map[int]int // peer → round we pushed to them

	// Query state (§4.4).
	queries      map[int64]*queryState
	queryCounter int64

	round int // mirror of the engine round, updated on every callback
}

var _ simnet.Node = (*Peer)(nil)

// NewPeer constructs a peer with the given index and configuration. The view
// starts empty; populate it via View().Learn or the BuildNetwork helper.
func NewPeer(id int, cfg Config) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := store.New()
	origin := fmt.Sprintf("peer-%d", id)
	p := &Peer{
		id:          id,
		cfg:         cfg,
		view:        replicalist.NewView(id),
		st:          st,
		states:      make(map[string]*updateState),
		ackedBy:     make(map[int]int),
		suspects:    make(map[int]int),
		awaitingAck: make(map[int]int),
		queries:     make(map[int64]*queryState),
	}
	now := func() time.Time {
		// Simulated time: one round = one second, offset into a plausible
		// epoch so tombstone retention arithmetic behaves.
		return time.Unix(1_700_000_000+int64(p.round), 0)
	}
	w, err := store.NewWriter(origin, st, now, rand.New(rand.NewSource(int64(id)+1)))
	if err != nil {
		return nil, err
	}
	p.writer = w
	return p, nil
}

// ID returns the peer's index.
func (p *Peer) ID() int { return p.id }

// View returns the peer's membership view.
func (p *Peer) View() *replicalist.View { return p.view }

// Store returns the peer's replica store.
func (p *Peer) Store() *store.Store { return p.st }

// HasUpdate reports whether the peer has applied the update with the given
// ID (store.Update.ID()).
func (p *Peer) HasUpdate(updateID string) bool {
	_, ok := p.states[updateID]
	return ok
}

// Duplicates returns the duplicate-push count observed for an update.
func (p *Peer) Duplicates(updateID string) int {
	if s, ok := p.states[updateID]; ok {
		return s.dupes
	}
	return 0
}

// Init implements simnet.Node.
func (p *Peer) Init(*simnet.Env) {}

// CameOnline implements simnet.Node: the pull-phase trigger.
func (p *Peer) CameOnline(env *simnet.Env) {
	p.round = env.Round()
	if p.cfg.PullAttempts <= 0 {
		return
	}
	if p.cfg.LazyPull {
		// §6: wait for gossip; remember we are not confident, so queries
		// and incoming pull requests trigger a real pull.
		p.notConfident = true
		return
	}
	p.sendPull(env)
}

// Tick implements simnet.Node.
func (p *Peer) Tick(env *simnet.Env) {
	p.round = env.Round()
	p.expireSuspects()
	p.detectMissingAcks(env)
	p.expireQueries(env.Round())
	if p.cfg.PullTimeout > 0 && p.cfg.PullAttempts > 0 &&
		env.Round()-p.lastReceived > p.cfg.PullTimeout {
		p.sendPull(env)
		p.lastReceived = env.Round() // rate-limit timeout pulls
	}
}

// HandleMessage implements simnet.Node.
func (p *Peer) HandleMessage(env *simnet.Env, msg simnet.Message) {
	p.round = env.Round()
	switch m := msg.Payload.(type) {
	case PushMsg:
		p.handlePush(env, msg.From, m)
	case PullReq:
		p.handlePullReq(env, msg.From, m)
	case PullResp:
		p.handlePullResp(env, m)
	case AckMsg:
		p.handleAck(msg.From)
	case QueryMsg:
		p.handleQuery(env, msg.From, m)
	case QueryResp:
		p.handleQueryResp(m)
	}
}

// Publish creates an update for key/value at this peer and initiates its
// push phase (the paper's round 0).
func (p *Peer) Publish(env *simnet.Env, key string, value []byte) store.Update {
	p.round = env.Round()
	u := p.writer.Put(key, value)
	p.initiate(env, u)
	return u
}

// PublishDelete creates a tombstone update and initiates its push phase.
func (p *Peer) PublishDelete(env *simnet.Env, key string) store.Update {
	p.round = env.Round()
	u := p.writer.Delete(key)
	p.initiate(env, u)
	return u
}

func (p *Peer) initiate(env *simnet.Env, u store.Update) {
	state := p.newState()
	state.pushed = true
	p.states[u.ID()] = state
	p.lastReceived = env.Round()

	targets := p.selectTargets(env, p.fanout(env), nil)
	rf := replicalist.FromSlice(targets)
	rf.Add(p.id)
	state.rf = state.rf.Union(rf)
	p.sendPushes(env, u, targets, rf, 0)
}

func (p *Peer) handlePush(env *simnet.Env, from int, m PushMsg) {
	// Name-dropper: every push teaches us replicas we did not know.
	if learned := p.view.LearnAll(m.RF); learned > 0 {
		env.Metrics().Add(MetricReplicasLearned, float64(learned))
	}
	p.view.Learn(from)

	id := m.Update.ID()
	if state, ok := p.states[id]; ok {
		// Duplicate: feed the local tuning metrics (§6) and merge the
		// incoming list — "it can use the list of 'updated replicas' in
		// each of those messages" (§4.2).
		state.dupes++
		env.Metrics().Inc(MetricDuplicates)
		state.rf = state.rf.Union(replicalist.FromSlice(m.RF))
		if ad, ok := state.pfn.(*pf.Adaptive); ok {
			ad.ObserveDuplicate()
			ad.ObserveListFraction(state.rf.NormalizedLen(p.cfg.R))
		}
		return
	}

	// First receipt: process the update.
	p.st.Apply(m.Update)
	p.lastReceived = env.Round()
	p.notConfident = false
	state := p.newState()
	state.rf = replicalist.FromSlice(m.RF)
	state.rf.Add(p.id)
	p.states[id] = state

	if p.cfg.Ack == AckFirst {
		ack := AckMsg{UpdateID: id}
		env.Send(from, ack, ack.SizeBytes())
		env.Metrics().Inc(MetricAcks)
	}

	if ad, ok := state.pfn.(*pf.Adaptive); ok {
		ad.ObserveListFraction(state.rf.NormalizedLen(p.cfg.R))
	}

	// Forward with probability PF(t+1). Per the paper, R_p is a *uniform*
	// random subset of known replicas; the message goes to R_p \ R_f only,
	// which is where the partial list saves messages (the (1−f_r)^t factor
	// of the analysis), and the new list is R_f ∪ R_p.
	t := m.T + 1
	if env.RNG().Float64() >= state.pfn.P(t) {
		return
	}
	rp := p.selectTargets(env, p.fanout(env), nil)
	targets := rp[:0:0]
	for _, candidate := range rp {
		if !state.rf.Contains(candidate) {
			targets = append(targets, candidate)
		}
	}
	state.pushed = true
	state.rf = state.rf.Union(replicalist.FromSlice(rp))
	if len(targets) == 0 {
		return
	}
	p.sendPushes(env, m.Update, targets, state.rf, t)
}

func (p *Peer) sendPushes(env *simnet.Env, u store.Update, targets []int, rf *replicalist.List, t int) {
	carried := p.carriedList(env, rf)
	for _, target := range targets {
		msg := PushMsg{Update: u, RF: carried, T: t}
		env.Send(target, msg, msg.SizeBytes())
		env.Metrics().Inc(MetricPushes)
		if p.cfg.Ack == AckFirst {
			p.awaitingAck[target] = env.Round()
		}
	}
}

// carriedList renders the flooding list for the wire, applying the L_thr
// truncation (§4.2). The local accumulated list is never truncated — only
// the transmitted copy — matching "the nodes which push the update in the
// next round pay the penalty".
func (p *Peer) carriedList(env *simnet.Env, rf *replicalist.List) []int {
	if !p.cfg.PartialList {
		return nil
	}
	if p.cfg.ListThreshold > 0 {
		maxLen := int(p.cfg.ListThreshold * float64(p.cfg.R))
		if rf.Len() > maxLen {
			clone := rf.Clone()
			clone.Truncate(maxLen, p.cfg.TruncatePolicy, env.RNG())
			return clone.Slice()
		}
	}
	return rf.Slice()
}

func (p *Peer) handlePullReq(env *simnet.Env, from int, m PullReq) {
	p.view.Learn(from)
	missing := p.st.MissingFor(m.Clock)
	resp := PullResp{
		Updates: missing,
		Peers:   p.view.Sample(pullGossipSample, env.RNG()),
	}
	env.Send(from, resp, resp.SizeBytes())
	env.Metrics().Inc(MetricPullResponses)
	env.Metrics().Add(MetricPullUpdates, float64(len(missing)))

	// "receives a pull request, but is not sure to have the latest update"
	// (§3): a stale or lazily-woken peer answers and synchronises itself.
	stale := p.cfg.PullTimeout > 0 && env.Round()-p.lastReceived > p.cfg.PullTimeout
	if (p.notConfident || stale) && p.cfg.PullAttempts > 0 {
		p.sendPull(env)
		p.lastReceived = env.Round()
	}
}

func (p *Peer) handlePullResp(env *simnet.Env, m PullResp) {
	if learned := p.view.LearnAll(m.Peers); learned > 0 {
		env.Metrics().Add(MetricReplicasLearned, float64(learned))
	}
	gotNew := false
	for _, u := range m.Updates {
		if p.st.Apply(u) == store.Applied {
			gotNew = true
		}
		id := u.ID()
		if _, ok := p.states[id]; !ok {
			// Updates learned by pull are not re-pushed: the push phase has
			// already saturated the online population (§4.3's optimism).
			s := p.newState()
			s.pushed = true
			p.states[id] = s
		}
	}
	if gotNew || len(m.Updates) == 0 {
		// Either fresh data, or confirmation that we were current.
		p.notConfident = false
		p.lastReceived = env.Round()
	}
}

func (p *Peer) handleAck(from int) {
	p.ackedBy[from] = p.round
	delete(p.suspects, from)
	delete(p.awaitingAck, from)
}

// pullGossipSample is the number of peer ids piggybacked on pull responses.
const pullGossipSample = 16

// sendPull contacts PullAttempts random known replicas with our clock. "it
// is preferable to contact multiple peers and choose the most up to date
// peer(s) among them" (§3) — with clock-based diffs, applying all responses
// is equivalent to choosing the freshest.
func (p *Peer) sendPull(env *simnet.Env) {
	targets := p.view.Sample(p.cfg.PullAttempts, env.RNG())
	clock := p.st.Clock()
	for _, target := range targets {
		req := PullReq{Clock: clock}
		env.Send(target, req, req.SizeBytes())
		env.Metrics().Inc(MetricPullRequests)
	}
}

// selectTargets draws k random known replicas excluding the flooding list,
// applying the §6 ack preferences: suspects are skipped, recently-acked
// peers are chosen first.
func (p *Peer) selectTargets(env *simnet.Env, k int, exclude *replicalist.List) []int {
	if k <= 0 {
		return nil
	}
	candidates := p.view.SampleExcluding(p.view.Len(), exclude, env.RNG())
	if p.cfg.Ack != AckFirst {
		if len(candidates) > k {
			candidates = candidates[:k]
		}
		return candidates
	}
	preferred := make([]int, 0, k)
	normal := make([]int, 0, len(candidates))
	for _, c := range candidates {
		if _, suspect := p.suspects[c]; suspect {
			continue
		}
		if _, acked := p.ackedBy[c]; acked {
			preferred = append(preferred, c)
		} else {
			normal = append(normal, c)
		}
	}
	out := preferred
	if len(out) > k {
		out = out[:k]
	} else {
		need := k - len(out)
		if need > len(normal) {
			need = len(normal)
		}
		out = append(out, normal[:need]...)
	}
	return out
}

// detectMissingAcks moves peers whose ack is overdue (two rounds: one for
// the push, one for the reply) onto the suspect list (§6: the pusher assumes
// they are offline and skips them for a while).
func (p *Peer) detectMissingAcks(env *simnet.Env) {
	if p.cfg.Ack != AckFirst {
		return
	}
	for peer, sentAt := range p.awaitingAck {
		if env.Round()-sentAt >= 2 {
			p.suspects[peer] = env.Round()
			delete(p.awaitingAck, peer)
		}
	}
}

// expireSuspects re-admits suspects after SuspectTTL rounds — "it is
// desirable that [the pusher] again forwards updates to [the peer] in remote
// future" (§6).
func (p *Peer) expireSuspects() {
	ttl := p.cfg.suspectTTL()
	for peer, since := range p.suspects {
		if p.round-since > ttl {
			delete(p.suspects, peer)
		}
	}
}

// fanout draws the per-push target count: R·f_r with probabilistic rounding
// so that fractional expected fanouts are honoured.
func (p *Peer) fanout(env *simnet.Env) int {
	exact := float64(p.cfg.R) * p.cfg.Fr
	k := int(exact)
	if env.RNG().Float64() < exact-float64(k) {
		k++
	}
	return k
}

func (p *Peer) newState() *updateState {
	s := &updateState{rf: replicalist.New(8)}
	if p.cfg.NewPF != nil {
		s.pfn = p.cfg.NewPF()
	} else {
		s.pfn = pf.Always()
	}
	return s
}
