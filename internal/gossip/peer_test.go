package gossip

import (
	"math"
	"testing"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/simnet"
)

// buildEngine wires a network and engine with the given parameters.
func buildEngine(t *testing.T, n int, cfg Config, initialOnline int, proc churn.Process, seed int64) (*Network, *simnet.Engine) {
	t.Helper()
	net, err := BuildNetwork(n, cfg, 0, seed)
	if err != nil {
		t.Fatalf("BuildNetwork: %v", err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: initialOnline,
		Churn:         proc,
		Seed:          seed,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return net, en
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero R", func(c *Config) { c.R = 0 }},
		{"bad fr", func(c *Config) { c.Fr = 1.5 }},
		{"bad threshold", func(c *Config) { c.ListThreshold = -0.1 }},
		{"bad attempts", func(c *Config) { c.PullAttempts = -1 }},
		{"bad timeout", func(c *Config) { c.PullTimeout = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(100)
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want error")
			}
		})
	}
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestNewPeerRejectsBadConfig(t *testing.T) {
	if _, err := NewPeer(0, Config{}); err == nil {
		t.Fatal("want error for zero config")
	}
}

func TestBuildNetworkValidation(t *testing.T) {
	if _, err := BuildNetwork(0, DefaultConfig(10), 0, 1); err == nil {
		t.Fatal("want error for empty network")
	}
	if _, err := BuildNetwork(5, Config{}, 0, 1); err == nil {
		t.Fatal("want error for invalid config")
	}
}

func TestBuildNetworkViews(t *testing.T) {
	// Full views.
	net, err := BuildNetwork(10, DefaultConfig(10), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Peers {
		if p.KnownCount() != 9 {
			t.Fatalf("peer %d full view size = %d", i, p.KnownCount())
		}
		if p.Knows(i) {
			t.Fatalf("peer %d knows itself", i)
		}
	}
	// Partial views.
	net, err = BuildNetwork(10, DefaultConfig(10), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Peers {
		if p.KnownCount() != 3 {
			t.Fatalf("peer %d partial view size = %d", i, p.KnownCount())
		}
	}
}

func TestPushReachesAllOnlinePeers(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Fr = 0.1 // fanout 10: coverage is certain up to ~1e-4 miss odds
	cfg.NewPF = nil
	cfg.PullAttempts = 0 // push only
	net, en := buildEngine(t, 100, cfg, 100, churn.Static{}, 7)

	var id string
	en.Step() // init
	id = net.Peers[0].Publish(envOf(t, en, 0), "key", []byte("v1")).ID()
	en.Run(30)

	if got := net.CountAware(id); got != 100 {
		t.Fatalf("aware = %d/100 after push-only flood", got)
	}
}

// envOf builds a temporary Env for direct peer calls in tests.
func envOf(t *testing.T, en *simnet.Engine, self int) *simnet.Env {
	t.Helper()
	return simnet.NewTestEnv(en, self)
}

func TestPushRespectsOfflinePeers(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Fr = 0.2 // fanout 20 so that all 50 online peers are hit w.h.p.
	cfg.NewPF = nil
	cfg.PullAttempts = 0
	net, en := buildEngine(t, 100, cfg, 50, churn.Static{}, 8)
	en.Step()
	id := net.Peers[0].Publish(envOf(t, en, 0), "key", []byte("v1")).ID()
	en.Run(30)
	// All 50 online peers aware; the 50 offline ones untouched.
	if got := net.CountAwareOnline(id, en); got != 50 {
		t.Fatalf("online aware = %d/50", got)
	}
	if got := net.CountAware(id); got != 50 {
		t.Fatalf("total aware = %d, offline peers should have nothing", got)
	}
}

func TestPullOnComingOnline(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.Fr = 0.4 // large fanout: the whole online population hears the push
	cfg.NewPF = nil
	cfg.PullAttempts = 5
	net, en := buildEngine(t, 20, cfg, 10, churn.Static{}, 9)
	en.Step()
	id := net.Peers[0].Publish(envOf(t, en, 0), "key", []byte("v1")).ID()
	en.Run(10)
	if got := net.CountAwareOnline(id, en); got < 9 {
		t.Fatalf("online aware = %d/10 after push", got)
	}
	// Bring an offline peer online: CameOnline must trigger an eager pull
	// that fetches the update within a few rounds.
	en.Population().SetOnline(15, true)
	net.Peers[15].CameOnline(envOf(t, en, 15))
	en.Run(6)
	if !net.Peers[15].HasUpdate(id) {
		t.Fatal("woken peer did not pull the update")
	}
	if en.Metrics().Counter(MetricPullRequests) == 0 {
		t.Fatal("no pull requests recorded")
	}
}

func TestLazyPullWaitsThenSyncsOnDemand(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.Fr = 0.2
	cfg.NewPF = nil
	cfg.LazyPull = true
	net, en := buildEngine(t, 20, cfg, 10, churn.Static{}, 10)
	en.Step()
	id := net.Peers[0].Publish(envOf(t, en, 0), "key", []byte("v1")).ID()
	en.Run(10)

	before := en.Metrics().Counter(MetricPullRequests)
	en.Population().SetOnline(15, true)
	net.Peers[15].CameOnline(envOf(t, en, 15))
	en.Run(3)
	if got := en.Metrics().Counter(MetricPullRequests); got != before {
		t.Fatalf("lazy peer pulled eagerly: %g → %g", before, got)
	}
	if net.Peers[15].HasUpdate(id) {
		t.Fatal("lazy peer has update without any contact")
	}
	// A pull request arriving at the lazy (not confident) peer forces it to
	// sync itself (§3: received_pull and not_confident).
	net.Peers[16].CameOnline(envOf(t, en, 16)) // also lazy: no traffic
	req := PullReq{Clock: net.Peers[16].Store().Clock()}
	net.Peers[15].HandleMessage(envOf(t, en, 15),
		simnet.Message{From: 16, To: 15, Payload: req})
	en.Run(6)
	if !net.Peers[15].HasUpdate(id) {
		t.Fatal("not-confident peer did not sync after receiving a pull")
	}
}

func TestPullTimeoutTriggersResync(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.NewPF = nil
	cfg.PullTimeout = 5
	cfg.PullAttempts = 2
	_, en := buildEngine(t, 10, cfg, 10, churn.Static{}, 11)
	for i := 0; i < 15; i++ {
		en.Step() // Run would stop on idle before the timeout fires
	}
	if got := en.Metrics().Counter(MetricPullRequests); got == 0 {
		t.Fatal("idle peers never pulled despite timeout")
	}
}

func TestDuplicateCountingAndListMerge(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.NewPF = nil
	cfg.PullAttempts = 0
	net, en := buildEngine(t, 10, cfg, 10, churn.Static{}, 12)
	en.Step()
	u := net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("v"))
	id := u.ID()

	// Deliver the same push twice to peer 5 from different senders with
	// different lists.
	env5 := envOf(t, en, 5)
	net.Peers[5].HandleMessage(env5, simnet.Message{
		From: 1, To: 5, Payload: PushMsg{Update: u, RF: []int{1, 2}, T: 1},
	})
	net.Peers[5].HandleMessage(env5, simnet.Message{
		From: 2, To: 5, Payload: PushMsg{Update: u, RF: []int{3, 4}, T: 1},
	})
	if got := net.Peers[5].Duplicates(id); got != 1 {
		t.Fatalf("duplicates = %d, want 1", got)
	}
	rf := net.Peers[5].eng.FloodingList(id)
	listed := make(map[int]bool, len(rf))
	for _, id := range rf {
		listed[id] = true
	}
	for _, want := range []int{1, 2, 3, 4, 5} {
		if !listed[want] {
			t.Fatalf("merged RF missing %d: %v", want, rf)
		}
	}
}

func TestNameDropperGrowsViews(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.Fr = 0.1
	cfg.NewPF = nil
	cfg.PullAttempts = 0
	// Small initial views; the partial lists must teach peers new replicas.
	net, err := BuildNetwork(50, cfg, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: net.Nodes, InitialOnline: 50, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v"))
	en.Run(30)
	if en.Metrics().Counter(MetricReplicasLearned) == 0 {
		t.Fatal("no replicas learned from partial lists")
	}
	grew := 0
	for _, p := range net.Peers {
		if p.KnownCount() > 5 {
			grew++
		}
	}
	if grew == 0 {
		t.Fatal("no view grew beyond its initial size")
	}
}

func TestPartialListDisabledSendsNoList(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Fr = 0.3 // fanout 3 (the default f_r rounds to zero at R=10)
	cfg.PartialList = false
	cfg.NewPF = nil
	cfg.PullAttempts = 0
	net, en := buildEngine(t, 10, cfg, 10, churn.Static{}, 14)
	en.Step()
	u := net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("v"))
	// Three steps: the publish lands in the outbox, rotates to the inbox,
	// and is delivered at the start of the following round.
	en.Step()
	en.Step()
	en.Step()
	// Peers that received it forward without lists; verify via state of a
	// receiving peer: its rf only contains itself.
	aware := 0
	for i, p := range net.Peers {
		if i != 0 && p.HasUpdate(u.ID()) {
			aware++
		}
	}
	if aware == 0 {
		t.Fatal("no peer received the push")
	}
	// The wire carried no list, so nothing can have been learned from it.
	if got := en.Metrics().Counter(MetricReplicasLearned); got != 0 {
		t.Fatalf("replicas learned = %g despite disabled partial list", got)
	}
}

func TestListThresholdTruncatesWire(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Fr = 0.2
	cfg.NewPF = nil
	cfg.PullAttempts = 0
	cfg.ListThreshold = 0.05 // ≤5 entries on the wire
	cfg.TruncatePolicy = replicalist.DropTail
	net, en := buildEngine(t, 100, cfg, 100, churn.Static{}, 15)
	en.Step()
	net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("v"))
	en.Run(20)
	// All accumulated rf lists came from wire messages capped at 5 entries
	// plus self and merge effects; the carried lists themselves were ≤5.
	// We verify indirectly: no received state has more entries than
	// duplicates could explain — simpler: re-run the wire rendering on a
	// large accumulated list.
	p := net.Peers[0]
	p.bind(envOf(t, en, 0))
	big := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	carried := p.eng.Carried(big)
	if len(carried) > 5 {
		t.Fatalf("carried list = %d entries, threshold 5", len(carried))
	}
	if len(big) != 10 {
		t.Fatal("truncation mutated the local list")
	}
}

func TestAckFirstPolicy(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Fr = 0.3
	cfg.NewPF = nil
	cfg.PullAttempts = 0
	cfg.Ack = AckFirst
	cfg.SuspectTTL = 5
	net, en := buildEngine(t, 10, cfg, 5, churn.Static{}, 16)
	en.Step()
	net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("v"))
	en.Run(10)
	if en.Metrics().Counter(MetricAcks) == 0 {
		t.Fatal("no acks sent under AckFirst")
	}
	// Pushes to offline peers never ack: they must be suspected.
	suspected := 0
	for _, p := range net.Peers {
		suspected += len(p.eng.Suspects())
	}
	_ = suspected // suspects may have expired; the ack counter is the core assertion
}

// TestSimPathFeedsListFractionIntoAdaptivePF is the simulator-side
// regression test for the §6 feed-forward signal: the carried-list fraction
// must reach the adaptive PF schedule on the sim path exactly as on the
// live path. Before the engine extraction the two copies of the state
// machine could — and did — drift on this.
func TestSimPathFeedsListFractionIntoAdaptivePF(t *testing.T) {
	var captured []*pf.Adaptive
	cfg := DefaultConfig(10)
	cfg.Fr = 0 // no forwarding fanout: R_f stays exactly list ∪ {self}
	cfg.PullAttempts = 0
	cfg.NewPF = func() pf.Func {
		a := pf.NewAdaptive(1.0)
		captured = append(captured, a)
		return a
	}
	net, en := buildEngine(t, 10, cfg, 10, churn.Static{}, 40)
	en.Step()
	u := net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("v"))

	// Deliver a push carrying a 4-entry list to peer 5: R_f = {1,2,3,4,5},
	// L = 5/10, so the adaptive schedule must report PF = 1·(1−0.5) = 0.5.
	net.Peers[5].HandleMessage(envOf(t, en, 5), simnet.Message{
		From: 1, To: 5, Payload: PushMsg{Update: u, RF: []int{1, 2, 3, 4}, T: 1},
	})
	ad := captured[len(captured)-1]
	if got := ad.P(2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("sim-path adaptive PF = %g, want 0.5 from list-fraction feedback", got)
	}
}

func TestAckPolicyString(t *testing.T) {
	if AckNone.String() != "ack-none" || AckFirst.String() != "ack-first" {
		t.Fatal("policy strings wrong")
	}
	if AckPolicy(9).String() != "AckPolicy(9)" {
		t.Fatal("unknown policy string wrong")
	}
}

func TestPublishDeletePropagatesTombstone(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.Fr = 0.25
	cfg.NewPF = nil
	net, en := buildEngine(t, 20, cfg, 20, churn.Static{}, 17)
	en.Step()
	net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("v"))
	en.Run(15)
	net.Peers[0].PublishDelete(envOf(t, en, 0), "k")
	en.Run(15)
	for i, p := range net.Peers {
		if _, ok := p.Store().Get("k"); ok {
			t.Fatalf("peer %d still sees deleted key", i)
		}
	}
}

func TestConvergedHelper(t *testing.T) {
	net, err := BuildNetwork(3, DefaultConfig(3), 0, 18)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Converged() {
		t.Fatal("empty stores should be converged")
	}
	empty := &Network{}
	if !empty.Converged() {
		t.Fatal("empty network should be converged")
	}
}
