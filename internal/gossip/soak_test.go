package gossip

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/version"
)

// TestSoakRandomWorkload drives a full system — churn, message loss,
// interleaved puts and deletes from random online writers, a mid-run
// catastrophe — for a long horizon and then asserts global invariants:
// every replica converges to identical state, vector clocks agree, and no
// update was lost or duplicated in any store.
func TestSoakRandomWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soakOnce(t, seed)
		})
	}
}

func soakOnce(t *testing.T, seed int64) {
	const (
		n          = 120
		writeSteps = 30
		horizon    = 2500
	)
	rng := rand.New(rand.NewSource(seed))
	cfg := DefaultConfig(n)
	cfg.Fr = 0.08
	cfg.NewPF = func() pf.Func { return pf.Geometric{Base: 0.9} }
	cfg.PullAttempts = 3
	cfg.PullTimeout = 15
	cfg.Ack = AckFirst

	net, err := BuildNetwork(n, cfg, 20, seed) // partial views: bootstrap via gossip
	if err != nil {
		t.Fatal(err)
	}
	proc := &churn.Catastrophe{
		Base:     churn.Bernoulli{Sigma: 0.93, POn: 0.07},
		At:       200,
		Fraction: 0.7,
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: n / 3,
		Churn:         proc,
		MessageLoss:   0.05,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()

	keys := []string{"a", "b", "c", "d", "e"}
	var published []string
	writesLeft := writeSteps
	for round := 1; round <= horizon; round++ {
		if writesLeft > 0 && round%13 == 0 {
			writer := rng.Intn(n)
			en.Population().SetOnline(writer, true)
			env := simnet.NewTestEnv(en, writer)
			key := keys[rng.Intn(len(keys))]
			var u string
			if rng.Intn(4) == 0 {
				u = net.Peers[writer].PublishDelete(env, key).ID()
			} else {
				u = net.Peers[writer].Publish(env, key, []byte{byte(round)}).ID()
			}
			published = append(published, u)
			writesLeft--
		}
		en.Step()
		if writesLeft == 0 && round%50 == 0 && fullyConverged(net, published) {
			break
		}
	}

	// Invariant 1: every update reached every replica.
	for _, id := range published {
		if got := net.CountAware(id); got != n {
			t.Fatalf("update %s reached %d/%d replicas", id, got, n)
		}
	}
	// Invariant 2: identical live state everywhere.
	if !net.Converged() {
		t.Fatal("stores diverged")
	}
	// Invariant 3: identical vector clocks (same update sets).
	base := net.Peers[0].Store().Clock()
	for i, p := range net.Peers[1:] {
		if base.Compare(p.Store().Clock()) != version.Equal {
			t.Fatalf("peer %d clock %s differs from %s", i+1, p.Store().Clock(), base)
		}
	}
	// Invariant 4: no store logged an update twice.
	want := len(published)
	for i, p := range net.Peers {
		if got := p.Store().UpdateCount(); got != want {
			t.Fatalf("peer %d logged %d updates, want %d", i, got, want)
		}
	}
	t.Logf("seed %d: converged %d updates across %d replicas in ≤%d rounds, %.0f messages",
		seed, want, n, en.Round(), en.Metrics().Counter(simnet.MetricMessages))
}

func fullyConverged(net *Network, ids []string) bool {
	for _, id := range ids {
		if net.CountAware(id) != len(net.Peers) {
			return false
		}
	}
	return true
}
