package gossip

import (
	"fmt"
	"testing"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
)

// runUntilConverged steps the engine until every peer holds every update or
// the round budget is exhausted, returning the rounds used.
func runUntilConverged(t *testing.T, net *Network, en *simnet.Engine, ids []string, maxRounds int) int {
	t.Helper()
	for r := 0; r < maxRounds; r++ {
		en.Step()
		all := true
		for _, id := range ids {
			if net.CountAware(id) != len(net.Peers) {
				all = false
				break
			}
		}
		if all {
			return r
		}
	}
	return maxRounds
}

func TestConvergenceUnderChurn(t *testing.T) {
	// The paper's target environment: ~30% online, peers cycling, multiple
	// writers. Push reaches the online population; pull catches up everyone
	// else as they come back. All replicas must converge.
	const n = 150
	cfg := DefaultConfig(n)
	cfg.Fr = 0.08
	cfg.NewPF = func() pf.Func { return pf.Geometric{Base: 0.9} }
	cfg.PullAttempts = 3
	cfg.PullTimeout = 20
	net, err := BuildNetwork(n, cfg, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: n * 3 / 10,
		Churn:         churn.Bernoulli{Sigma: 0.95, POn: 0.05},
		Seed:          21,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	var ids []string
	for w := 0; w < 5; w++ {
		writer := w * 7 % (n * 3 / 10) // online writers
		u := net.Peers[writer].Publish(simnet.NewTestEnv(en, writer),
			fmt.Sprintf("key-%d", w), []byte{byte(w)})
		ids = append(ids, u.ID())
		en.Step()
		en.Step()
	}
	rounds := runUntilConverged(t, net, en, ids, 2000)
	if rounds >= 2000 {
		missing := 0
		for _, id := range ids {
			missing += len(net.Peers) - net.CountAware(id)
		}
		t.Fatalf("did not converge in 2000 rounds; %d (peer,update) pairs missing", missing)
	}
	if !net.Converged() {
		t.Fatal("stores differ despite full update coverage")
	}
	t.Logf("converged in %d rounds, %g messages", rounds,
		en.Metrics().Counter(simnet.MetricMessages))
}

func TestCatastrophicFailureRecovery(t *testing.T) {
	// §4.1 warns the push analysis only breaks under "catastrophic
	// failure"; we inject one (80% of online peers vanish mid-push) and
	// require the pull phase to repair the damage once peers return.
	const n = 100
	cfg := DefaultConfig(n)
	cfg.Fr = 0.1
	cfg.NewPF = nil
	cfg.PullAttempts = 3
	cfg.PullTimeout = 15
	net, err := BuildNetwork(n, cfg, 0, 22)
	if err != nil {
		t.Fatal(err)
	}
	cat := &churn.Catastrophe{
		Base:     churn.Bernoulli{Sigma: 1, POn: 0.1},
		At:       2, // strike while the push is in flight
		Fraction: 0.8,
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: n,
		Churn:         cat,
		Seed:          22,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	u := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v"))
	rounds := runUntilConverged(t, net, en, []string{u.ID()}, 1500)
	if rounds >= 1500 {
		t.Fatalf("no recovery from catastrophe: %d/%d aware",
			net.CountAware(u.ID()), n)
	}
	t.Logf("recovered in %d rounds", rounds)
}

func TestConvergenceWithMessageLoss(t *testing.T) {
	// 20% of messages vanish. Push redundancy plus pull repair must still
	// converge every replica.
	const n = 80
	cfg := DefaultConfig(n)
	cfg.Fr = 0.1
	cfg.NewPF = nil
	cfg.PullAttempts = 3
	cfg.PullTimeout = 10
	net, err := BuildNetwork(n, cfg, 0, 23)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: n,
		MessageLoss:   0.2,
		Seed:          23,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	u := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v"))
	rounds := runUntilConverged(t, net, en, []string{u.ID()}, 1000)
	if rounds >= 1000 {
		t.Fatalf("no convergence under 20%% loss: %d/%d aware",
			net.CountAware(u.ID()), n)
	}
	if en.Metrics().Counter(simnet.MetricMessagesDropped) == 0 {
		t.Fatal("loss injection did not drop anything")
	}
}

func TestConcurrentWritersConvergeDeterministically(t *testing.T) {
	// Two writers update the same key concurrently while partitioned from
	// each other (both online, but the conflict arises from simultaneity).
	// All replicas must end with identical state: both branches visible,
	// same deterministic winner.
	const n = 40
	cfg := DefaultConfig(n)
	cfg.Fr = 0.15
	cfg.NewPF = nil
	cfg.PullAttempts = 2
	cfg.PullTimeout = 10
	net, err := BuildNetwork(n, cfg, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: net.Nodes, InitialOnline: n, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	u1 := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "shared", []byte("from-0"))
	u2 := net.Peers[1].Publish(simnet.NewTestEnv(en, 1), "shared", []byte("from-1"))
	rounds := runUntilConverged(t, net, en, []string{u1.ID(), u2.ID()}, 800)
	if rounds >= 800 {
		t.Fatalf("concurrent writes did not spread: %d/%d and %d/%d",
			net.CountAware(u1.ID()), n, net.CountAware(u2.ID()), n)
	}
	if !net.Converged() {
		t.Fatal("replicas disagree after concurrent writes")
	}
	// Both branches must be visible somewhere.
	if got := len(net.Peers[5].Store().Versions("shared")); got != 2 {
		t.Fatalf("expected 2 coexisting branches, got %d", got)
	}
}

func TestAdaptivePFReducesDuplicates(t *testing.T) {
	// Ablation of the §6 self-tuning: with many online peers and a large
	// fanout, the adaptive schedule must cut messages versus PF=1 while
	// keeping full coverage (pull disabled to isolate the push phase).
	run := func(newPF func() pf.Func) (messages float64, aware int) {
		const n = 200
		cfg := DefaultConfig(n)
		cfg.Fr = 0.05
		cfg.NewPF = newPF
		cfg.PullAttempts = 0
		net, err := BuildNetwork(n, cfg, 0, 25)
		if err != nil {
			t.Fatal(err)
		}
		en, err := simnet.NewEngine(simnet.Config{
			Nodes: net.Nodes, InitialOnline: n, Seed: 25,
		})
		if err != nil {
			t.Fatal(err)
		}
		en.Step()
		u := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v"))
		en.Run(60)
		return en.Metrics().Counter(simnet.MetricMessages), net.CountAware(u.ID())
	}
	plainMsgs, plainAware := run(nil)
	adaptMsgs, adaptAware := run(func() pf.Func { return pf.NewAdaptive(1.0) })
	if plainAware < 195 || adaptAware < 195 {
		t.Fatalf("coverage: plain %d adaptive %d", plainAware, adaptAware)
	}
	if adaptMsgs >= plainMsgs {
		t.Fatalf("adaptive PF did not reduce messages: %g vs %g", adaptMsgs, plainMsgs)
	}
	t.Logf("plain=%g adaptive=%g (%.0f%% saved)", plainMsgs, adaptMsgs,
		100*(1-adaptMsgs/plainMsgs))
}
