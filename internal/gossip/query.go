package gossip

import (
	"github.com/p2pgossip/update/internal/engine"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// §4.4 query servicing — the aggregation logic (freshest-version voting,
// unconfident flagging, lazy-pull triggering) lives in internal/engine; this
// file keeps the simulator's wire messages and the thin Peer entry points.

// Query metric names.
const (
	// MetricQueries counts query messages sent.
	MetricQueries = "gossip_queries"
	// MetricQueryResponses counts query responses sent.
	MetricQueryResponses = "gossip_query_responses"
)

// QueryMsg asks a replica for its current revision of a key.
type QueryMsg struct {
	// QID correlates responses with the originating query.
	QID int64
	// Key is the item queried.
	Key string
}

// SizeBytes is the payload's binary-encoded size: the query id plus the
// key.
func (m QueryMsg) SizeBytes() int { return 8 + wire.StringSize(m.Key) }

// QueryResp carries one replica's answer.
type QueryResp struct {
	// QID echoes the query id.
	QID int64
	// Key echoes the queried key.
	Key string
	// Found reports whether the replica holds a live revision.
	Found bool
	// Value and Version describe the replica's winning revision.
	Value   []byte
	Version version.History
	// Confident is false when the responder suspects it is stale (it was
	// lazily woken and has not synchronised yet, §6).
	Confident bool
}

// SizeBytes is the payload's binary-encoded size: query id, key, flags,
// value, and version history.
func (m QueryResp) SizeBytes() int {
	return 8 + wire.StringSize(m.Key) + 1 + wire.BlobSize(m.Value) +
		wire.HistorySize(len(m.Version))
}

// QueryResult is the requester-side aggregation of one query.
type QueryResult = engine.QueryResult

// Query sends the key to k known replicas and returns a query id to poll
// with QueryResult. k is capped by the view size; k ≤ 0 defaults to the
// configured PullAttempts (or 3).
func (p *Peer) Query(env *simnet.Env, key string, k int) int64 {
	p.bind(env)
	return p.eng.Query(key, k)
}

// QueryResult returns the current aggregation for a query id. The boolean
// reports whether the id is known.
func (p *Peer) QueryResult(qid int64) (QueryResult, bool) {
	return p.eng.QueryResult(qid)
}
