package gossip

import (
	"bytes"

	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/version"
)

// This file implements §4.4 of the paper: servicing requests under updates.
// A query is sent to several replicas in parallel ("we may define some
// majority logic, or use a version scheme for identifying latest updates, or
// a hybrid of the two"); the requester keeps the response with the freshest
// version. A replica that is not confident of its own freshness (lazy pull,
// §6) answers with what it has, flags the answer as unconfident, and
// initiates its own pull.

// Query metric names.
const (
	// MetricQueries counts query messages sent.
	MetricQueries = "gossip_queries"
	// MetricQueryResponses counts query responses sent.
	MetricQueryResponses = "gossip_query_responses"
)

// QueryMsg asks a replica for its current revision of a key.
type QueryMsg struct {
	// QID correlates responses with the originating query.
	QID int64
	// Key is the item queried.
	Key string
}

// SizeBytes is the key plus framing.
func (m QueryMsg) SizeBytes() int { return 16 + len(m.Key) }

// QueryResp carries one replica's answer.
type QueryResp struct {
	// QID echoes the query id.
	QID int64
	// Key echoes the queried key.
	Key string
	// Found reports whether the replica holds a live revision.
	Found bool
	// Value and Version describe the replica's winning revision.
	Value   []byte
	Version version.History
	// Confident is false when the responder suspects it is stale (it was
	// lazily woken and has not synchronised yet, §6).
	Confident bool
}

// SizeBytes approximates the response's wire size.
func (m QueryResp) SizeBytes() int {
	return 24 + len(m.Key) + len(m.Value) + len(m.Version)*version.IDSize
}

// QueryResult is the requester-side aggregation of one query.
type QueryResult struct {
	// Key is the queried item.
	Key string
	// Found reports whether any response carried a live revision.
	Found bool
	// Value and Version are the freshest revision seen.
	Value   []byte
	Version version.History
	// Responses is the number of answers received so far.
	Responses int
	// Unconfident counts answers flagged as possibly stale.
	Unconfident int
	// Done is set once the expected number of responses arrived or the
	// query timed out.
	Done bool
}

// queryState is the in-flight bookkeeping for one query.
type queryState struct {
	result  QueryResult
	want    int
	started int
}

// Query sends the key to k known replicas and returns a query id to poll
// with QueryResult. k is capped by the view size; k ≤ 0 defaults to the
// configured PullAttempts (or 3).
func (p *Peer) Query(env *simnet.Env, key string, k int) int64 {
	p.round = env.Round()
	if k <= 0 {
		k = p.cfg.PullAttempts
		if k <= 0 {
			k = 3
		}
	}
	p.queryCounter++
	qid := p.queryCounter
	targets := p.view.Sample(k, env.RNG())
	state := &queryState{
		result:  QueryResult{Key: key},
		want:    len(targets),
		started: env.Round(),
	}
	p.queries[qid] = state
	if len(targets) == 0 {
		// Nobody to ask: answer from local state immediately.
		p.finishQueryLocal(state)
		return qid
	}
	for _, target := range targets {
		msg := QueryMsg{QID: qid, Key: key}
		env.Send(target, msg, msg.SizeBytes())
		env.Metrics().Inc(MetricQueries)
	}
	return qid
}

// QueryResult returns the current aggregation for a query id. The boolean
// reports whether the id is known.
func (p *Peer) QueryResult(qid int64) (QueryResult, bool) {
	state, ok := p.queries[qid]
	if !ok {
		return QueryResult{}, false
	}
	return state.result, true
}

func (p *Peer) handleQuery(env *simnet.Env, from int, m QueryMsg) {
	p.view.Learn(from)
	resp := QueryResp{QID: m.QID, Key: m.Key, Confident: !p.notConfident}
	if rev, ok := p.st.Get(m.Key); ok {
		resp.Found = true
		resp.Value = rev.Value
		resp.Version = rev.Version
	}
	env.Send(from, resp, resp.SizeBytes())
	env.Metrics().Inc(MetricQueryResponses)

	// §6: a lazily-woken replica cannot trust its answer; the query forces
	// it to synchronise.
	if p.notConfident && p.cfg.PullAttempts > 0 {
		p.sendPull(env)
	}
}

func (p *Peer) handleQueryResp(m QueryResp) {
	state, ok := p.queries[m.QID]
	if !ok || state.result.Done {
		return
	}
	res := &state.result
	res.Responses++
	if !m.Confident {
		res.Unconfident++
	}
	if m.Found && fresherThan(m.Version, res.Version, res.Found) {
		res.Found = true
		res.Value = m.Value
		res.Version = m.Version
	}
	if res.Responses >= state.want {
		res.Done = true
	}
}

// expireQueries finishes queries whose responses did not all arrive within
// the timeout (responders offline).
func (p *Peer) expireQueries(round int) {
	const queryTimeout = 10
	for _, state := range p.queries {
		if !state.result.Done && round-state.started > queryTimeout {
			state.result.Done = true
		}
	}
}

// finishQueryLocal resolves a query against only the local store.
func (p *Peer) finishQueryLocal(state *queryState) {
	if rev, ok := p.st.Get(state.result.Key); ok {
		state.result.Found = true
		state.result.Value = rev.Value
		state.result.Version = rev.Version
	}
	state.result.Done = true
}

// fresherThan reports whether candidate is strictly fresher than the current
// best (absent best counts as stale). Causally newer wins; concurrent
// versions fall back to the deterministic rule used by the store: longer
// history, then larger head identifier.
func fresherThan(candidate, best version.History, haveBest bool) bool {
	if !haveBest {
		return true
	}
	switch candidate.Compare(best) {
	case version.After:
		return true
	case version.Before, version.Equal:
		return false
	default: // Concurrent
		if len(candidate) != len(best) {
			return len(candidate) > len(best)
		}
		ch, errC := candidate.Head()
		bh, errB := best.Head()
		if errC != nil || errB != nil {
			return errB != nil && errC == nil
		}
		return bytes.Compare(ch[:], bh[:]) > 0
	}
}
