package gossip

import (
	"testing"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
)

// TestCrashRestartRecoversFromSnapshot crashes a peer mid-gossip, publishes
// more updates while it is down, restarts it, and asserts it holds the
// pre-crash state immediately (snapshot restore) and reconverges on the rest
// via pull anti-entropy.
func TestCrashRestartRecoversFromSnapshot(t *testing.T) {
	const n, victim = 40, 7
	cfg := DefaultConfig(n)
	cfg.Fr = 0.1
	cfg.NewPF = func() pf.Func { return pf.Geometric{Base: 0.9} }
	cfg.PullTimeout = 8
	net, err := BuildNetwork(n, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.Peers[victim].SetBootstrap(0, 1, 2)

	plane := simnet.NewFaultPlane().AddCrash(victim, 6, 20)
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: net.Nodes, InitialOnline: n, Seed: 1, Faults: plane,
	})
	if err != nil {
		t.Fatal(err)
	}

	en.Step() // round 0
	before := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "pre", []byte("1"))
	for en.Round() < 10 {
		en.Step()
	}
	if !en.Crashed(victim) {
		t.Fatal("victim not crashed at round 10")
	}
	during := net.Peers[1].Publish(simnet.NewTestEnv(en, 1), "mid", []byte("2"))
	for en.Round() < 20 {
		en.Step()
	}
	// Restart fired this round: the pre-crash update must already be back
	// from the snapshot, before any pull response can arrive.
	if !net.Peers[victim].HasUpdate(before.ID()) {
		t.Fatal("pre-crash update lost across restart")
	}
	for en.Round() < 60 && !net.Peers[victim].HasUpdate(during.ID()) {
		en.Step()
	}
	if !net.Peers[victim].HasUpdate(during.ID()) {
		t.Fatal("update published while down never recovered by pull")
	}
	if rev, ok := net.Peers[victim].Store().Get("mid"); !ok || string(rev.Value) != "2" {
		t.Fatalf("recovered value = %v %v", rev, ok)
	}
	// The restarted peer rejoined the membership fabric: its view regrew
	// beyond the bootstrap seeds via pull gossip and flooding lists.
	if got := net.Peers[victim].KnownCount(); got <= 3 {
		t.Fatalf("view size %d after recovery, want growth beyond 3 bootstrap seeds", got)
	}
}
