package gossip

import (
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// Byte accounting. Every message type's SizeBytes returns the number of
// payload bytes the live runtime's binary codec (internal/wire) would
// produce for the equivalent envelope — computed with the codec's own
// exported size functions, so simulated traffic totals cannot drift from
// the real wire format. Peer indices stand in for the canonical simulator
// address "peer-<index>" (the same identity the store writers use), and the
// per-frame fixed costs (length prefix, format version, kind, sender
// address) are added at the send site, which knows the sender.

// peerAddrSize returns the encoded size of the canonical simulator address
// "peer-<id>" without formatting it: the 5-byte prefix plus the decimal
// digits, behind a string-length varint.
func peerAddrSize(id int) int {
	digits := 1
	for v := id; v >= 10; v /= 10 {
		digits++
	}
	return wire.UvarintSize(uint64(5+digits)) + 5 + digits
}

// peerListSize returns the encoded size of a peer-index list (count varint
// plus one address per entry).
func peerListSize(ids []int) int {
	n := wire.UvarintSize(uint64(len(ids)))
	for _, id := range ids {
		n += peerAddrSize(id)
	}
	return n
}

// frameBytes is the fixed per-message cost: the frame overhead (length
// prefix, format version, kind) plus the sender's address.
func frameBytes(from int) int {
	return wire.FrameOverhead + peerAddrSize(from)
}

// PushBaseBytes returns the binary-encoded size of a push message carrying
// u with an empty flooding list, as sent by peer index `from` — the U term
// of the §4.2 message-size model S_M(t) = U + γ·R·L(t). The flooding-list
// term is charged separately (γ per carried entry).
func PushBaseBytes(u store.Update, from int) int {
	msg := PushMsg{Update: u, T: 3} // a typical 1-byte round counter
	return frameBytes(from) + msg.SizeBytes()
}

// PushMsg is the paper's Push(U, V, R_f, t): one update, the partial
// flooding list of peers the update has already been sent to, and the push
// round counter.
type PushMsg struct {
	// Update carries the data item and its version (the paper's U and V).
	Update store.Update
	// RF is the partial flooding list (peer indices). Nil when the partial
	// list optimisation is disabled.
	RF []int
	// T is the push round counter; the initiator sends with T = 0.
	T int
}

// SizeBytes is the payload's binary-encoded size: the update record, the
// flooding list, and the round counter.
func (m PushMsg) SizeBytes() int {
	return wire.StoreUpdateSize(m.Update) + peerListSize(m.RF) +
		wire.UvarintSize(uint64(m.T))
}

// PullReq asks a peer for updates the sender is missing, summarised by the
// sender's vector clock ("inquire for missed updates based on version
// vectors", §3).
type PullReq struct {
	// Clock is the requester's vector clock.
	Clock version.Clock
}

// SizeBytes is the clock's binary-encoded size. Clock origins are the
// writers' "peer-<id>" strings, so no index translation is needed.
func (m PullReq) SizeBytes() int { return wire.ClockSize(m.Clock) }

// PullResp ships the updates the requester was missing, plus a membership
// sample (the name-dropper effect applied to the pull phase).
type PullResp struct {
	// Updates are the missing updates in (origin, seq) order.
	Updates []store.Update
	// Peers is a sample of the responder's membership view.
	Peers []int
}

// SizeBytes sums the encoded update records and the peer sample.
func (m PullResp) SizeBytes() int {
	n := wire.UvarintSize(uint64(len(m.Updates)))
	for _, u := range m.Updates {
		n += wire.StoreUpdateSize(u)
	}
	return n + peerListSize(m.Peers)
}

// SnapshotMsg answers a pull request whose gap is compacted away (or exceeds
// the snapshot threshold) with the responder's entire resident state in one
// frame, plus the membership sample piggybacked on every pull answer.
type SnapshotMsg struct {
	// Data is the serialised resident state (the shared store snapshot
	// encoding: resident log plus compacted watermark).
	Data []byte
	// Peers is a sample of the responder's membership view.
	Peers []int
}

// SizeBytes sums the encoded snapshot blob and the peer sample.
func (m SnapshotMsg) SizeBytes() int {
	return wire.BlobSize(m.Data) + peerListSize(m.Peers)
}

// AckMsg acknowledges the receipt of an update (§6): the sender gains
// preference as a future push target. It carries the comparable (origin,
// seq) reference — like the live wire format, no "origin/seq" string is
// formatted or parsed on the ack path.
type AckMsg struct {
	// Ref identifies the acknowledged update.
	Ref store.Ref
}

// SizeBytes is the reference's binary-encoded size.
func (m AckMsg) SizeBytes() int {
	return wire.StringSize(m.Ref.Origin) + wire.UvarintSize(m.Ref.Seq)
}
