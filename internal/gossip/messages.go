package gossip

import (
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// PushMsg is the paper's Push(U, V, R_f, t): one update, the partial
// flooding list of peers the update has already been sent to, and the push
// round counter.
type PushMsg struct {
	// Update carries the data item and its version (the paper's U and V).
	Update store.Update
	// RF is the partial flooding list (peer indices). Nil when the partial
	// list optimisation is disabled.
	RF []int
	// T is the push round counter; the initiator sends with T = 0.
	T int
}

// SizeBytes accounts the wire size: update payload plus γ per list entry
// plus the round counter.
func (m PushMsg) SizeBytes() int {
	return m.Update.SizeBytes() + len(m.RF)*replicalist.EntryBytes + 4
}

// PullReq asks a peer for updates the sender is missing, summarised by the
// sender's vector clock ("inquire for missed updates based on version
// vectors", §3).
type PullReq struct {
	// Clock is the requester's vector clock.
	Clock version.Clock
}

// SizeBytes estimates the wire size of the clock (origin string + counter
// per component, ≈ 16 bytes each) plus framing.
func (m PullReq) SizeBytes() int { return 8 + 16*len(m.Clock) }

// PullResp ships the updates the requester was missing, plus a membership
// sample (the name-dropper effect applied to the pull phase).
type PullResp struct {
	// Updates are the missing updates in (origin, seq) order.
	Updates []store.Update
	// Peers is a sample of the responder's membership view.
	Peers []int
}

// SizeBytes sums the update sizes plus the peer sample plus framing.
func (m PullResp) SizeBytes() int {
	n := 8 + len(m.Peers)*replicalist.EntryBytes
	for _, u := range m.Updates {
		n += u.SizeBytes()
	}
	return n
}

// AckMsg acknowledges the receipt of an update (§6): the sender gains
// preference as a future push target.
type AckMsg struct {
	// UpdateID identifies the acknowledged update.
	UpdateID string
}

// SizeBytes is the id plus framing.
func (m AckMsg) SizeBytes() int { return 8 + len(m.UpdateID) }
