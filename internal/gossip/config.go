// Package gossip implements the paper's primary contribution: the hybrid
// push/pull rumor-spreading protocol for update propagation among replicas
// with very low online probability.
//
// Push phase (§3): a peer that first receives Push(U, V, R_f, t) applies the
// update, selects a random subset R_p of its known replicas with
// |R_p| = R·f_r, and — with probability PF(t) — forwards
// Push(U, V, R_f ∪ R_p, t+1) to R_p \ R_f. The partial list R_f suppresses
// duplicates, spreads membership knowledge (name-dropper), and its length
// feeds the self-tuning of PF (§6).
//
// Pull phase (§3): a peer that comes online, has seen no updates for a
// while, or receives a pull request while unsure of its own freshness,
// contacts several known replicas and reconciles via version vectors
// (anti-entropy).
//
// Optimisations (§6): acknowledgement-based peer preference, suspect lists
// for peers that never ack, lazy pulling, and duplicate-count-driven
// adaptive forwarding probabilities. Every optimisation is independently
// switchable so the ablation benchmarks can quantify each one.
package gossip

import (
	"fmt"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
)

// AckPolicy selects the acknowledgement optimisation of §6.
type AckPolicy int

// Acknowledgement policies.
const (
	// AckNone disables acknowledgements.
	AckNone AckPolicy = iota + 1
	// AckFirst replies to the first replica an update was received from.
	// Ack senders are preferred as future push targets; peers that never
	// ack are suspected offline and skipped for SuspectTTL rounds.
	AckFirst
)

// String returns the policy name.
func (a AckPolicy) String() string {
	switch a {
	case AckNone:
		return "ack-none"
	case AckFirst:
		return "ack-first"
	default:
		return fmt.Sprintf("AckPolicy(%d)", int(a))
	}
}

// Config parameterises a gossip peer. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// R is the total number of replicas in the partition (the paper's R).
	R int
	// Fr is the fanout fraction f_r: each push targets ≈ R·Fr replicas.
	Fr float64
	// NewPF builds the forwarding-probability function for one update at
	// one peer. A factory (rather than a shared instance) lets adaptive
	// schedules keep per-peer, per-update state. Nil means PF(t) = 1.
	NewPF func() pf.Func
	// PartialList enables carrying the flooding list R_f on push messages.
	PartialList bool
	// ListThreshold is the normalised cap L_thr on the carried list (§4.2);
	// 0 disables truncation.
	ListThreshold float64
	// TruncatePolicy selects which entries to drop when truncating.
	TruncatePolicy replicalist.TruncatePolicy
	// PullAttempts is the number of known replicas contacted per pull
	// batch. Zero disables the pull phase entirely (push-only experiments).
	PullAttempts int
	// LazyPull makes a waking peer wait for gossip instead of pulling
	// eagerly (§6); it then answers queries only after it has synced.
	LazyPull bool
	// PullTimeout is the number of rounds without any received update after
	// which an online peer proactively pulls ("no_updates_since(t)"). Zero
	// disables timeout-driven pulls.
	PullTimeout int
	// Ack selects the acknowledgement optimisation.
	Ack AckPolicy
	// SuspectTTL is how many rounds a non-acking peer is skipped as a push
	// target under AckFirst. Zero defaults to 10.
	SuspectTTL int
	// PullEvery makes every peer pull each time the round number is a
	// multiple of it — the simulator's analogue of the live runtime's
	// periodic anti-entropy ticker. Zero disables periodic pulls.
	PullEvery int
	// CompactEvery is the janitor cadence in rounds: every multiple, each
	// peer expires TTL'd keys, collects tombstones past retention, and
	// compacts its update log up to the stable frontier. Zero disables the
	// janitor.
	CompactEvery int
	// SnapshotCatchUp is the delta-size threshold above which a pull request
	// is answered with one snapshot frame instead of an entry-by-entry
	// delta; 0 disables the size trigger (compaction gaps still force
	// snapshots).
	SnapshotCatchUp int
	// KeyTTL expires live revisions older than this many rounds (one round
	// is one simulated second), converting them to tombstones on the
	// janitor's schedule. Zero disables expiry.
	KeyTTL int
	// TombstoneRetention is how many rounds tombstones outlive their delete
	// before the janitor collects them. Zero selects the store default.
	TombstoneRetention int
	// FrontierTTL bounds how many rounds a peer's last pull clock
	// participates in the stable compaction frontier. Zero keeps clocks
	// forever (no expiry).
	FrontierTTL int
	// LinkBudget caps the messages a peer emits to any one destination per
	// round; traffic beyond the budget coalesces into a per-destination
	// pending delta (dedup by update ref, newest version wins, requester
	// clocks merged pointwise-minimum) drained in later rounds — the
	// simulator equivalent of the live runtime's coalescing senders, for
	// cross-validating their bounded-memory behavior in deterministic
	// scenarios. Zero disables the budget: every send goes out the round it
	// is made, exactly as before.
	LinkBudget int
}

// DefaultConfig returns the configuration used by the paper's headline
// experiments: fanout f_r over R replicas, decaying PF, partial lists on,
// eager pull with three attempts.
func DefaultConfig(r int) Config {
	return Config{
		R:              r,
		Fr:             0.01,
		NewPF:          func() pf.Func { return pf.Geometric{Base: 0.9} },
		PartialList:    true,
		TruncatePolicy: replicalist.DropRandom,
		PullAttempts:   3,
		PullTimeout:    50,
		Ack:            AckNone,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.R <= 0:
		return fmt.Errorf("gossip: R = %d must be positive", c.R)
	case c.Fr < 0 || c.Fr > 1:
		return fmt.Errorf("gossip: f_r = %g out of [0,1]", c.Fr)
	case c.ListThreshold < 0 || c.ListThreshold > 1:
		return fmt.Errorf("gossip: L_thr = %g out of [0,1]", c.ListThreshold)
	case c.PullAttempts < 0:
		return fmt.Errorf("gossip: pull attempts = %d negative", c.PullAttempts)
	case c.PullTimeout < 0:
		return fmt.Errorf("gossip: pull timeout = %d negative", c.PullTimeout)
	case c.PullEvery < 0:
		return fmt.Errorf("gossip: pull every = %d negative", c.PullEvery)
	case c.CompactEvery < 0:
		return fmt.Errorf("gossip: compact every = %d negative", c.CompactEvery)
	case c.SnapshotCatchUp < 0:
		return fmt.Errorf("gossip: snapshot catch-up = %d negative", c.SnapshotCatchUp)
	case c.KeyTTL < 0:
		return fmt.Errorf("gossip: key ttl = %d negative", c.KeyTTL)
	case c.TombstoneRetention < 0:
		return fmt.Errorf("gossip: tombstone retention = %d negative", c.TombstoneRetention)
	case c.FrontierTTL < 0:
		return fmt.Errorf("gossip: frontier ttl = %d negative", c.FrontierTTL)
	case c.LinkBudget < 0:
		return fmt.Errorf("gossip: link budget = %d negative", c.LinkBudget)
	default:
		return nil
	}
}

// suspectTTL returns the effective suspect duration.
func (c Config) suspectTTL() int {
	if c.SuspectTTL <= 0 {
		return 10
	}
	return c.SuspectTTL
}

// Metric names emitted by gossip peers on top of the engine's counters.
const (
	// MetricPushes counts push messages sent.
	MetricPushes = "gossip_push_sent"
	// MetricPushBytes accumulates the binary-encoded bytes of push messages
	// sent — the §4.2 traffic metric the scenario byte-overhead invariant
	// checks.
	MetricPushBytes = "gossip_push_bytes"
	// MetricDuplicates counts duplicate pushes received.
	MetricDuplicates = "gossip_duplicates"
	// MetricPullRequests counts pull requests sent.
	MetricPullRequests = "gossip_pull_requests"
	// MetricPullResponses counts pull responses sent.
	MetricPullResponses = "gossip_pull_responses"
	// MetricPullUpdates counts updates shipped in pull responses.
	MetricPullUpdates = "gossip_pull_updates"
	// MetricAcks counts acknowledgement messages.
	MetricAcks = "gossip_acks"
	// MetricReplicasLearned counts replicas discovered via partial lists.
	MetricReplicasLearned = "gossip_replicas_learned"
	// MetricSnapshots counts snapshot catch-up frames sent to peers whose
	// pull gap was compacted away or exceeded the snapshot threshold.
	MetricSnapshots = "gossip_snapshots"
	// MetricSnapshotBytes accumulates the binary-encoded bytes of snapshot
	// frames sent — the rejoin-cost metric the scenario rejoin-bytes
	// invariant checks.
	MetricSnapshotBytes = "gossip_snapshot_bytes"
	// MetricSnapshotCatchups counts snapshot catch-up frames ingested.
	MetricSnapshotCatchups = "gossip_snapshot_catchups"
	// MetricTombstonesGC counts tombstoned revisions collected by the
	// janitor after their retention expired.
	MetricTombstonesGC = "gossip_tombstones_gc"
	// MetricLogCompacted counts update-log entries dropped by frontier
	// compaction.
	MetricLogCompacted = "gossip_log_compacted"
	// MetricKeysExpired counts live revisions the janitor tombstoned because
	// their TTL lapsed.
	MetricKeysExpired = "gossip_keys_expired"
)
