package gossip

import (
	"fmt"
	"math/rand"

	"github.com/p2pgossip/update/internal/simnet"
)

// Network bundles a population of gossip peers with its simulation nodes.
type Network struct {
	// Peers are the protocol instances, indexed by peer id.
	Peers []*Peer
	// Nodes is the same population typed for simnet.Config.
	Nodes []simnet.Node
}

// BuildNetwork constructs n peers sharing one configuration and wires their
// membership views.
//
// viewSize controls how much of the replica set each peer knows initially:
// ≤0 or ≥n−1 gives complete knowledge (the analytical model's assumption
// that push targets are uniform over all R replicas); smaller values give
// each peer a uniform random sample, with the partial lists growing views
// over time (name-dropper).
func BuildNetwork(n int, cfg Config, viewSize int, seed int64) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gossip: network size %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(seed))
	peers := make([]*Peer, n)
	nodes := make([]simnet.Node, n)
	for i := 0; i < n; i++ {
		p, err := NewPeer(i, cfg)
		if err != nil {
			return nil, fmt.Errorf("gossip: peer %d: %w", i, err)
		}
		peers[i] = p
		nodes[i] = p
	}
	full := viewSize <= 0 || viewSize >= n-1
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i, p := range peers {
		if full {
			for j := 0; j < n; j++ {
				if j != i {
					p.Learn(j)
				}
			}
			continue
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		learned := 0
		for _, j := range perm {
			if j == i {
				continue
			}
			p.Learn(j)
			learned++
			if learned == viewSize {
				break
			}
		}
	}
	return &Network{Peers: peers, Nodes: nodes}, nil
}

// CountAware returns how many peers have applied the given update.
func (n *Network) CountAware(updateID string) int {
	count := 0
	for _, p := range n.Peers {
		if p.HasUpdate(updateID) {
			count++
		}
	}
	return count
}

// CountAwareOnline returns how many currently online peers have applied the
// update — the paper's F_aware numerator.
func (n *Network) CountAwareOnline(updateID string, en *simnet.Engine) int {
	count := 0
	for i, p := range n.Peers {
		if en.Population().Online(i) && p.HasUpdate(updateID) {
			count++
		}
	}
	return count
}

// Converged reports whether every peer's store equals peer 0's store.
func (n *Network) Converged() bool {
	if len(n.Peers) == 0 {
		return true
	}
	first := n.Peers[0].Store()
	for _, p := range n.Peers[1:] {
		if !first.Equal(p.Store()) {
			return false
		}
	}
	return true
}
