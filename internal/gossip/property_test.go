package gossip

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/simnet"
)

// TestPushOnceInvariant: a replica forwards a given update at most once
// (§3: "any replica pushes the update at most once"), so the total push
// count is bounded by (aware peers)·max-fanout for random parameter draws.
func TestPushOnceInvariant(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(50 + r.Intn(200))       // population
			vals[1] = reflect.ValueOf(0.02 + 0.2*r.Float64()) // f_r
			vals[2] = reflect.ValueOf(0.5 + 0.5*r.Float64())  // sigma
			vals[3] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(n int, fr, sigma float64, seed int64) bool {
		c := DefaultConfig(n)
		c.Fr = fr
		c.NewPF = nil
		c.PullAttempts = 0
		c.PullTimeout = 0
		net, err := BuildNetwork(n, c, 0, seed)
		if err != nil {
			return false
		}
		en, err := simnet.NewEngine(simnet.Config{
			Nodes: net.Nodes, InitialOnline: n,
			Churn: churn.Bernoulli{Sigma: sigma}, Seed: seed,
		})
		if err != nil {
			return false
		}
		en.Step()
		id := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v")).ID()
		en.Run(50)

		aware := net.CountAware(id)
		maxFanout := float64(int(float64(n)*fr) + 1)
		pushes := en.Metrics().Counter(MetricPushes)
		return pushes <= float64(aware)*maxFanout
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("push-once invariant failed: %v", err)
	}
}

// TestAwarenessMonotoneAndConsistent: a peer that knows an update never
// un-knows it, and aware peers hold the update in their store.
func TestAwarenessMonotoneAndConsistent(t *testing.T) {
	const n = 80
	cfg := DefaultConfig(n)
	cfg.Fr = 0.05
	cfg.NewPF = nil
	cfg.PullAttempts = 2
	cfg.PullTimeout = 10
	net, err := BuildNetwork(n, cfg, 0, 61)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: net.Nodes, InitialOnline: n / 2,
		Churn: churn.Bernoulli{Sigma: 0.9, POn: 0.1}, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	u := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v"))
	id := u.ID()

	prevAware := map[int]bool{}
	for round := 0; round < 60; round++ {
		en.Step()
		for i, p := range net.Peers {
			has := p.HasUpdate(id)
			if prevAware[i] && !has {
				t.Fatalf("round %d: peer %d forgot the update", round, i)
			}
			if has {
				if _, ok := p.Store().Get("k"); !ok {
					t.Fatalf("round %d: peer %d aware but store empty", round, i)
				}
				prevAware[i] = true
			}
		}
	}
}

// TestSimulationDeterminismProperty: identical seeds yield identical
// trajectories for random parameters.
func TestSimulationDeterminismProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 15,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(30 + r.Intn(100))
			vals[1] = reflect.ValueOf(r.Int63())
		},
	}
	run := func(n int, seed int64) (float64, int) {
		c := DefaultConfig(n)
		c.Fr = 0.1
		net, err := BuildNetwork(n, c, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		en, err := simnet.NewEngine(simnet.Config{
			Nodes: net.Nodes, InitialOnline: n / 2,
			Churn: churn.Bernoulli{Sigma: 0.9, POn: 0.1}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		en.Step()
		id := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v")).ID()
		en.Run(40)
		return en.Metrics().Counter(simnet.MetricMessages), net.CountAware(id)
	}
	prop := func(n int, seed int64) bool {
		m1, a1 := run(n, seed)
		m2, a2 := run(n, seed)
		return m1 == m2 && a1 == a2
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("determinism property failed: %v", err)
	}
}
