package gossip

import (
	"testing"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/simnet"
)

func TestQueryReturnsValue(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.Fr = 0.3
	cfg.NewPF = nil
	net, en := buildEngine(t, 20, cfg, 20, churn.Static{}, 30)
	en.Step()
	net.Peers[0].Publish(envOf(t, en, 0), "price", []byte("42"))
	en.Run(15)

	qid := net.Peers[7].Query(envOf(t, en, 7), "price", 3)
	en.Run(8)
	res, ok := net.Peers[7].QueryResult(qid)
	if !ok {
		t.Fatal("query id unknown")
	}
	if !res.Done {
		t.Fatalf("query not done: %+v", res)
	}
	if !res.Found || string(res.Value) != "42" {
		t.Fatalf("result = %+v", res)
	}
	if res.Responses != 3 {
		t.Fatalf("responses = %d, want 3", res.Responses)
	}
	if en.Metrics().Counter(MetricQueries) != 3 {
		t.Fatalf("queries metric = %g", en.Metrics().Counter(MetricQueries))
	}
}

func TestQueryPicksFreshestVersion(t *testing.T) {
	// Two sequential updates: replicas answering with the older version must
	// lose to the newer one.
	cfg := DefaultConfig(10)
	cfg.Fr = 0.5
	cfg.NewPF = nil
	net, en := buildEngine(t, 10, cfg, 10, churn.Static{}, 31)
	en.Step()
	net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("old"))
	en.Run(10)
	// Second update applied only at a subset: publish with tiny fanout.
	u2 := net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("new"))
	// Deliver directly to peer 1 only (simulating partial spread).
	net.Peers[1].HandleMessage(envOf(t, en, 1), simnet.Message{
		From: 0, To: 1, Payload: PushMsg{Update: u2, T: 0},
	})

	// Query everyone: at least one responder (0 or 1) has "new"; it must
	// win by version dominance over the stale answers.
	qid := net.Peers[5].Query(envOf(t, en, 5), "k", 9)
	en.Run(8)
	res, _ := net.Peers[5].QueryResult(qid)
	if !res.Done || !res.Found {
		t.Fatalf("result = %+v", res)
	}
	if string(res.Value) != "new" {
		t.Fatalf("query returned stale value %q", res.Value)
	}
}

func TestQueryMissingKey(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Fr = 0.4
	cfg.NewPF = nil
	net, en := buildEngine(t, 5, cfg, 5, churn.Static{}, 32)
	en.Step()
	qid := net.Peers[0].Query(envOf(t, en, 0), "ghost", 2)
	en.Run(6)
	res, _ := net.Peers[0].QueryResult(qid)
	if !res.Done || res.Found {
		t.Fatalf("result = %+v", res)
	}
	if res.Responses != 2 {
		t.Fatalf("responses = %d", res.Responses)
	}
}

func TestQueryTimesOutWithOfflineResponders(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Fr = 0.3
	cfg.NewPF = nil
	// 1 online peer (the querier); every target is offline.
	net, en := buildEngine(t, 10, cfg, 1, churn.Static{}, 33)
	en.Step()
	qid := net.Peers[0].Query(envOf(t, en, 0), "k", 3)
	for i := 0; i < 15; i++ {
		en.Step()
	}
	res, _ := net.Peers[0].QueryResult(qid)
	if !res.Done {
		t.Fatal("query never timed out")
	}
	if res.Responses != 0 || res.Found {
		t.Fatalf("result = %+v", res)
	}
}

func TestQueryEmptyViewResolvesLocally(t *testing.T) {
	cfg := DefaultConfig(5)
	p, err := NewPeer(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: []simnet.Node{p}, InitialOnline: 1, Seed: 34,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	env := simnet.NewTestEnv(en, 0)
	p.Publish(env, "local", []byte("here"))
	qid := p.Query(env, "local", 3)
	res, ok := p.QueryResult(qid)
	if !ok || !res.Done || !res.Found || string(res.Value) != "here" {
		t.Fatalf("local resolution failed: %+v ok=%v", res, ok)
	}
}

func TestQueryTriggersLazyPull(t *testing.T) {
	// §6: a query hitting a not-confident (lazily woken) replica makes it
	// pull. The response is flagged unconfident.
	cfg := DefaultConfig(10)
	cfg.Fr = 0.3
	cfg.NewPF = nil
	cfg.LazyPull = true
	net, en := buildEngine(t, 10, cfg, 9, churn.Static{}, 35)
	en.Step()
	net.Peers[0].Publish(envOf(t, en, 0), "k", []byte("v"))
	en.Run(10)

	// Peer 9 wakes lazily: no eager pull, not confident.
	en.Population().SetOnline(9, true)
	net.Peers[9].CameOnline(envOf(t, en, 9))
	pullsBefore := en.Metrics().Counter(MetricPullRequests)

	// Query peer 9 directly.
	net.Peers[9].HandleMessage(envOf(t, en, 9), simnet.Message{
		From: 3, To: 9, Payload: QueryMsg{QID: 77, Key: "k"},
	})
	en.Run(6)
	if got := en.Metrics().Counter(MetricPullRequests); got <= pullsBefore {
		t.Fatal("query did not trigger the lazy peer's pull")
	}
	// And the lazy peer is now synced.
	if !net.Peers[9].HasUpdate("peer-0/1") {
		t.Fatal("lazy peer still stale after query-triggered pull")
	}
}

func TestQueryUnknownID(t *testing.T) {
	cfg := DefaultConfig(5)
	p, err := NewPeer(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.QueryResult(999); ok {
		t.Fatal("unknown query id reported present")
	}
}
