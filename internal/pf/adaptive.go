package pf

import (
	"fmt"
	"math"
	"sync"
)

// Adaptive is the paper's self-tuning forwarding probability (§6). Instead of
// a fixed schedule it exploits two locally observable signals:
//
//   - the number of duplicate push messages a peer has received for the
//     current update: many duplicates mean the rumor has already spread
//     widely, so forwarding further is mostly wasted; and
//   - the normalised length L(t) of the partial flooding list carried by the
//     message, which estimates the global fraction of replicas the update has
//     already been *sent* to (feed-forward / speculation).
//
// The resulting probability is
//
//	PF = Base · DupDecay^duplicates · (1 − L)^ListExponent
//
// clamped to [Floor, 1]. With DupDecay = 1 and ListExponent = 0 it degrades
// to a constant function, so all of the paper's static schedules remain
// expressible.
//
// Adaptive is safe for concurrent use: the live runtime updates duplicate
// counts from transport goroutines.
type Adaptive struct {
	// Base is the probability before any evidence of spread is observed.
	Base float64
	// DupDecay multiplies the probability per observed duplicate (0 < d ≤ 1).
	DupDecay float64
	// ListExponent controls sensitivity to the partial-list estimate.
	ListExponent float64
	// Floor is a lower bound keeping the rumor alive (like Fig. 5's +0.2).
	Floor float64

	mu         sync.Mutex
	duplicates int
	listFrac   float64
}

var _ Func = (*Adaptive)(nil)

// NewAdaptive returns an Adaptive function with the given base probability
// and sensible default sensitivities (halve per two duplicates, linear list
// sensitivity, floor 0.05).
func NewAdaptive(base float64) *Adaptive {
	return &Adaptive{
		Base:         base,
		DupDecay:     0.7,
		ListExponent: 1,
		Floor:        0.05,
	}
}

// ObserveDuplicate records one duplicate push received for the update.
func (a *Adaptive) ObserveDuplicate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.duplicates++
}

// ObserveListFraction records the normalised partial-list length L ∈ [0,1]
// seen on the most recent push message (monotone: keeps the maximum).
func (a *Adaptive) ObserveListFraction(l float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if l > a.listFrac {
		a.listFrac = clamp01(l)
	}
}

// Reset clears the observations, for reuse across updates.
func (a *Adaptive) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.duplicates = 0
	a.listFrac = 0
}

// Duplicates returns the number of duplicates observed so far.
func (a *Adaptive) Duplicates() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.duplicates
}

// P implements Func. The round number is unused: the evidence, not the
// clock, drives the decay.
func (a *Adaptive) P(int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.Base
	if a.DupDecay > 0 && a.DupDecay < 1 {
		p *= math.Pow(a.DupDecay, float64(a.duplicates))
	}
	if a.ListExponent > 0 {
		p *= math.Pow(1-a.listFrac, a.ListExponent)
	}
	if p < a.Floor {
		p = a.Floor
	}
	return clamp01(p)
}

// String implements Func.
func (a *Adaptive) String() string {
	return fmt.Sprintf("adaptive(base=%g,dup=%g,list=%g,floor=%g)",
		a.Base, a.DupDecay, a.ListExponent, a.Floor)
}
