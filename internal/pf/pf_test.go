package pf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	tests := []struct {
		c    float64
		want float64
	}{
		{1, 1}, {0.8, 0.8}, {0, 0}, {-0.5, 0}, {1.5, 1},
	}
	for _, tt := range tests {
		f := Constant{C: tt.c}
		for _, round := range []int{0, 1, 100} {
			if got := f.P(round); got != tt.want {
				t.Fatalf("Constant(%g).P(%d) = %g, want %g", tt.c, round, got, tt.want)
			}
		}
	}
	if Always().P(7) != 1 {
		t.Fatal("Always should return 1")
	}
}

func TestLinear(t *testing.T) {
	f := Linear{Start: 1, Slope: 0.1} // the paper's 1 − 0.1t
	tests := []struct {
		t    int
		want float64
	}{
		{0, 1}, {1, 0.9}, {5, 0.5}, {10, 0}, {20, 0},
	}
	for _, tt := range tests {
		if got := f.P(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Linear.P(%d) = %g, want %g", tt.t, got, tt.want)
		}
	}
}

func TestGeometric(t *testing.T) {
	f := Geometric{Base: 0.5}
	tests := []struct {
		t    int
		want float64
	}{
		{-1, 1}, {0, 1}, {1, 0.5}, {2, 0.25}, {3, 0.125},
	}
	for _, tt := range tests {
		if got := f.P(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Geometric.P(%d) = %g, want %g", tt.t, got, tt.want)
		}
	}
}

func TestAffineGeometric(t *testing.T) {
	// The Fig. 5 schedule: 0.8·0.7^t + 0.2.
	f := AffineGeometric{A: 0.8, B: 0.7, C: 0.2}
	if got := f.P(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("P(0) = %g, want 1", got)
	}
	if got := f.P(1); math.Abs(got-(0.8*0.7+0.2)) > 1e-12 {
		t.Fatalf("P(1) = %g", got)
	}
	// Approaches the floor 0.2 for large t.
	if got := f.P(50); math.Abs(got-0.2) > 1e-6 {
		t.Fatalf("P(50) = %g, want ≈ 0.2", got)
	}
	if got := f.P(-3); got != 1 {
		t.Fatalf("negative rounds clamp to t=0, got %g", got)
	}
}

func TestTTL(t *testing.T) {
	f := TTL{Rounds: 3}
	for _, tt := range []struct {
		t    int
		want float64
	}{{0, 1}, {2, 1}, {3, 0}, {10, 0}} {
		if got := f.P(tt.t); got != tt.want {
			t.Fatalf("TTL.P(%d) = %g, want %g", tt.t, got, tt.want)
		}
	}
}

func TestHaas(t *testing.T) {
	f := Haas{P1: 0.8, K: 2} // the paper's G(0.8, 2)
	for _, tt := range []struct {
		t    int
		want float64
	}{{0, 1}, {1, 1}, {2, 0.8}, {9, 0.8}} {
		if got := f.P(tt.t); got != tt.want {
			t.Fatalf("Haas.P(%d) = %g, want %g", tt.t, got, tt.want)
		}
	}
}

func TestAllFuncsInRange(t *testing.T) {
	funcs := []Func{
		Constant{C: 2}, Constant{C: -1},
		Linear{Start: 5, Slope: 3},
		Geometric{Base: 1.2},
		AffineGeometric{A: 3, B: 0.5, C: 0.5},
		TTL{Rounds: 4},
		Haas{P1: 1.7, K: 1},
		NewAdaptive(2.0),
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = r.Intn(200) - 10
		}),
	}
	for _, f := range funcs {
		f := f
		prop := func(round int) bool {
			p := f.P(round)
			return p >= 0 && p <= 1 && !math.IsNaN(p)
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s out of range: %v", f, err)
		}
	}
}

func TestMonotoneDecay(t *testing.T) {
	// All decaying schedules must be non-increasing in t.
	funcs := []Func{
		Linear{Start: 1, Slope: 0.1},
		Geometric{Base: 0.9},
		AffineGeometric{A: 0.8, B: 0.7, C: 0.2},
		TTL{Rounds: 5},
		Haas{P1: 0.8, K: 2},
	}
	for _, f := range funcs {
		prev := f.P(0)
		for r := 1; r < 30; r++ {
			cur := f.P(r)
			if cur > prev+1e-12 {
				t.Errorf("%s increased: P(%d)=%g > P(%d)=%g", f, r, cur, r-1, prev)
			}
			prev = cur
		}
	}
}

func TestAdaptiveDuplicateDecay(t *testing.T) {
	a := NewAdaptive(1.0)
	p0 := a.P(0)
	if p0 != 1 {
		t.Fatalf("initial P = %g, want 1", p0)
	}
	a.ObserveDuplicate()
	p1 := a.P(1)
	if p1 >= p0 {
		t.Fatalf("P did not decay after duplicate: %g >= %g", p1, p0)
	}
	for i := 0; i < 50; i++ {
		a.ObserveDuplicate()
	}
	if got := a.P(2); math.Abs(got-a.Floor) > 1e-12 {
		t.Fatalf("P should bottom out at floor %g, got %g", a.Floor, got)
	}
	if a.Duplicates() != 51 {
		t.Fatalf("Duplicates = %d, want 51", a.Duplicates())
	}
}

func TestAdaptiveListFraction(t *testing.T) {
	a := NewAdaptive(1.0)
	a.Floor = 0
	a.DupDecay = 1 // isolate list effect
	a.ObserveListFraction(0.5)
	if got := a.P(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("P with L=0.5 = %g, want 0.5", got)
	}
	// Monotone: observing a smaller fraction does not raise the estimate.
	a.ObserveListFraction(0.2)
	if got := a.P(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("list estimate regressed: P = %g", got)
	}
	a.ObserveListFraction(1.0)
	if got := a.P(0); got != 0 {
		t.Fatalf("P with L=1 = %g, want 0", got)
	}
	// Out-of-range observations clamp.
	a.Reset()
	a.ObserveListFraction(7)
	if got := a.P(0); got != 0 {
		t.Fatalf("clamped list fraction: P = %g, want 0", got)
	}
}

func TestAdaptiveReset(t *testing.T) {
	a := NewAdaptive(0.9)
	a.ObserveDuplicate()
	a.ObserveListFraction(0.9)
	a.Reset()
	if got := a.P(0); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("P after Reset = %g, want 0.9", got)
	}
	if a.Duplicates() != 0 {
		t.Fatalf("Duplicates after Reset = %d", a.Duplicates())
	}
}

func TestAdaptiveConcurrentSafety(t *testing.T) {
	a := NewAdaptive(1.0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			a.ObserveDuplicate()
			a.ObserveListFraction(float64(i) / 1000)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = a.P(i)
	}
	<-done
	if a.Duplicates() != 1000 {
		t.Fatalf("Duplicates = %d, want 1000", a.Duplicates())
	}
}

func TestStrings(t *testing.T) {
	funcs := []Func{
		Constant{C: 0.8}, Linear{Start: 1, Slope: 0.1}, Geometric{Base: 0.9},
		AffineGeometric{A: 0.8, B: 0.7, C: 0.2}, TTL{Rounds: 7},
		Haas{P1: 0.8, K: 2}, NewAdaptive(1),
	}
	for _, f := range funcs {
		if f.String() == "" {
			t.Fatalf("%T has empty String", f)
		}
	}
}

func quickValues(fill func(args []interface{}, r *rand.Rand)) func([]reflect.Value, *rand.Rand) {
	return func(vals []reflect.Value, r *rand.Rand) {
		args := make([]interface{}, len(vals))
		fill(args, r)
		for i := range vals {
			vals[i] = reflect.ValueOf(args[i])
		}
	}
}
