// Package pf provides the forwarding-probability functions PF(t) that govern
// the push phase of the update protocol.
//
// PF(t) is the probability that a peer which first received an update in
// round t−1 forwards it in round t (§4.1). The paper explores constant
// functions, linear and geometric decay (Fig. 4), the affine-geometric
// 0.8·0.7^t+0.2 used in the scalability study (Fig. 5), the TTL behaviour of
// Gnutella (PF=1 for TTL rounds then 0), Haas et al.'s GOSSIP1(p,k) (pure
// flood for k rounds then probability p), and — the paper's novel
// contribution (§6) — *self-tuning* functions driven by local observations:
// the number of duplicate messages received and the length of the partial
// flooding list.
package pf

import (
	"fmt"
	"math"
)

// Func maps a push-round number t (0-based; the initiator's send is round 0)
// to a forwarding probability in [0, 1].
type Func interface {
	// P returns the forwarding probability for round t.
	P(t int) float64
	// String names the function as it appears in the paper's figure legends.
	String() string
}

// Constant is PF(t) = C for all rounds.
type Constant struct {
	// C is the constant probability.
	C float64
}

var _ Func = Constant{}

// P implements Func.
func (c Constant) P(int) float64 { return clamp01(c.C) }

// String implements Func.
func (c Constant) String() string { return fmt.Sprintf("PF=%g", c.C) }

// Always is PF(t) = 1 — pure constrained flooding.
func Always() Func { return Constant{C: 1} }

// Linear is the paper's "PF(t) = 1 − 0.1·t assuming t < 10" (Fig. 4),
// generalised to PF(t) = Start − Slope·t, clamped to [0, 1].
type Linear struct {
	// Start is the probability at t = 0.
	Start float64
	// Slope is subtracted per round.
	Slope float64
}

var _ Func = Linear{}

// P implements Func.
func (l Linear) P(t int) float64 { return clamp01(l.Start - l.Slope*float64(t)) }

// String implements Func.
func (l Linear) String() string { return fmt.Sprintf("PF(t)=%g-%g*t", l.Start, l.Slope) }

// Geometric is PF(t) = Base^t (the paper's 0.9^t, 0.7^t, 0.5^t in Fig. 4 and
// 0.8^t in Table 2).
type Geometric struct {
	// Base is the per-round decay factor.
	Base float64
}

var _ Func = Geometric{}

// P implements Func.
func (g Geometric) P(t int) float64 {
	if t < 0 {
		t = 0
	}
	return clamp01(math.Pow(g.Base, float64(t)))
}

// String implements Func.
func (g Geometric) String() string { return fmt.Sprintf("PF(t)=%g^t", g.Base) }

// AffineGeometric is PF(t) = A·B^t + C, the paper's 0.8·0.7^t + 0.2 used in
// the scalability experiment (Fig. 5). The floor C keeps the rumor alive in
// very large populations while the geometric part eliminates the early
// duplicate burst.
type AffineGeometric struct {
	// A scales the geometric component.
	A float64
	// B is the per-round decay factor.
	B float64
	// C is the probability floor.
	C float64
}

var _ Func = AffineGeometric{}

// P implements Func.
func (a AffineGeometric) P(t int) float64 {
	if t < 0 {
		t = 0
	}
	return clamp01(a.A*math.Pow(a.B, float64(t)) + a.C)
}

// String implements Func.
func (a AffineGeometric) String() string {
	return fmt.Sprintf("PF(t)=%g*%g^t+%g", a.A, a.B, a.C)
}

// TTL models Gnutella's time-to-live flooding: PF = 1 for Rounds rounds and 0
// afterwards ("its use of TTL effectively means that PF is 1 for TTL rounds,
// and 0 after that", §4.1).
type TTL struct {
	// Rounds is the TTL.
	Rounds int
}

var _ Func = TTL{}

// P implements Func.
func (g TTL) P(t int) float64 {
	if t < g.Rounds {
		return 1
	}
	return 0
}

// String implements Func.
func (g TTL) String() string { return fmt.Sprintf("TTL(%d)", g.Rounds) }

// Haas is GOSSIP1(p, k) from Haas, Halpern, Li (INFOCOM 2002): pure flooding
// (probability 1) for the first K rounds, then probability P1. The paper
// compares against G(0.8, 2) in Table 2 and notes its own scheme is a strict
// generalisation.
type Haas struct {
	// P1 is the forwarding probability after the flood prefix.
	P1 float64
	// K is the number of initial pure-flood rounds.
	K int
}

var _ Func = Haas{}

// P implements Func.
func (h Haas) P(t int) float64 {
	if t < h.K {
		return 1
	}
	return clamp01(h.P1)
}

// String implements Func.
func (h Haas) String() string { return fmt.Sprintf("G(%g,%d)", h.P1, h.K) }

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	case math.IsNaN(v):
		return 0
	default:
		return v
	}
}
