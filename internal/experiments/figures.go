// Package experiments regenerates every figure and table of the paper's
// evaluation (§5): the analytical curves exactly as the authors' C program
// computed them, plus stochastic cross-checks on the discrete simulator.
//
// Identifiers follow the paper: Fig1a/Fig1b (initial online population),
// Fig2 (fanout f_r), Fig3 (σ), Fig4 (PF(t) schedules), Fig5 (scalability),
// Table2 (scheme comparison), and the §4.3 pull-phase analysis.
package experiments

import (
	"fmt"
	"math"

	"github.com/p2pgossip/update/internal/analytic"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/pf"
)

// Point is one (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// Curve is one labelled series of a figure.
type Curve struct {
	// Label matches the paper's legend entry.
	Label string
	// Points are ordered samples; for push-phase figures X is F_aware and
	// Y is cumulative messages per initially-online peer, one point per
	// round, exactly like the paper's plots.
	Points []Point
}

// Figure is one reproducible plot.
type Figure struct {
	// ID is the paper's figure number ("1a", "2", …).
	ID string
	// Title and axis labels mirror the paper.
	Title  string
	XLabel string
	YLabel string
	Curves []Curve
}

// pushCurve converts an analytical push trajectory into the paper's plot
// coordinates.
func pushCurve(label string, res analytic.PushResult) Curve {
	c := Curve{Label: label, Points: make([]Point, 0, len(res.Rounds))}
	rOn0 := float64(res.Params.ROn0)
	for _, round := range res.Rounds {
		c.Points = append(c.Points, Point{
			X: round.Aware,
			Y: round.CumMessages / rOn0,
		})
	}
	return c
}

func mustPush(p analytic.PushParams) analytic.PushResult {
	res, err := analytic.Push(p)
	if err != nil {
		// All experiment parameters are compile-time constants; an error
		// here is a programming bug, matching the guide's initialization
		// exception for panics.
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// Fig1a reproduces Figure 1(a): plain flooding with a tiny initial online
// population (1%) fails to spread. σ=0.95, PF=1, f_r=0.01, R_on[0]/R =
// 100/10000.
func Fig1a() Figure {
	res := mustPush(analytic.PushParams{
		R: 10_000, ROn0: 100, Sigma: 0.95, Fr: 0.01,
	})
	return Figure{
		ID:     "1a",
		Title:  "Impact of a small initial online population (plain flooding)",
		XLabel: "F_aware",
		YLabel: "Total messages / R_on[0]",
		Curves: []Curve{pushCurve("R_on[0]/R = 100/10000", res)},
	}
}

// Fig1b reproduces Figure 1(b): for a significant initial population the
// per-peer message overhead is nearly independent of the population size,
// but high (~80 messages/online peer) for plain flooding.
func Fig1b() Figure {
	fig := Figure{
		ID:     "1b",
		Title:  "Impact of the initial online population (plain flooding)",
		XLabel: "F_aware",
		YLabel: "Total messages / R_on[0]",
	}
	for _, rOn := range []int{100, 500, 1000, 3000, 10000} {
		res := mustPush(analytic.PushParams{
			R: 10_000, ROn0: rOn, Sigma: 0.95, Fr: 0.01,
		})
		fig.Curves = append(fig.Curves,
			pushCurve(fmt.Sprintf("R_on[0]/R = %d/10000", rOn), res))
	}
	return fig
}

// Fig2 reproduces Figure 2: varying the fanout fraction f_r. A small fanout
// suffices; larger fanouts multiply duplicate messages without materially
// faster spread. σ=0.9, PF=1, R_on[0]=1000.
func Fig2() Figure {
	fig := Figure{
		ID:     "2",
		Title:  "Varying f_r",
		XLabel: "F_aware",
		YLabel: "Total messages / R_on[0]",
	}
	for _, fr := range []float64{0.005, 0.01, 0.02, 0.05} {
		res := mustPush(analytic.PushParams{
			R: 10_000, ROn0: 1000, Sigma: 0.9, Fr: fr,
		})
		fig.Curves = append(fig.Curves,
			pushCurve(fmt.Sprintf("F_r = %g", fr), res))
	}
	return fig
}

// Fig3 reproduces Figure 3: varying σ. The push phase is robust to peers
// going offline after receiving — and the message overhead *decreases* with
// lower σ, the observation that motivated PF(t). PF=1, R_on[0]=1000,
// f_r=0.01.
func Fig3() Figure {
	fig := Figure{
		ID:     "3",
		Title:  "Varying sigma",
		XLabel: "F_aware",
		YLabel: "Total messages / R_on[0]",
	}
	for _, sigma := range []float64{1, 0.95, 0.8, 0.7, 0.5} {
		res := mustPush(analytic.PushParams{
			R: 10_000, ROn0: 1000, Sigma: sigma, Fr: 0.01,
		})
		fig.Curves = append(fig.Curves,
			pushCurve(fmt.Sprintf("Sigma = %g", sigma), res))
	}
	return fig
}

// Fig4 reproduces Figure 4: varying the forwarding probability schedule
// PF(t). Decaying schedules eliminate most duplicates; overly aggressive
// decay fails to reach the whole population. σ=0.9, R_on[0]=1000, f_r=0.01.
func Fig4() Figure {
	fig := Figure{
		ID:     "4",
		Title:  "Varying PF(t)",
		XLabel: "F_aware",
		YLabel: "Total messages / R_on[0]",
	}
	schedules := []pf.Func{
		pf.Constant{C: 1},
		pf.Constant{C: 0.8},
		pf.Linear{Start: 1, Slope: 0.1},
		pf.Geometric{Base: 0.9},
		pf.Geometric{Base: 0.7},
		pf.Geometric{Base: 0.5},
	}
	for _, schedule := range schedules {
		res := mustPush(analytic.PushParams{
			R: 10_000, ROn0: 1000, Sigma: 0.9, Fr: 0.01, PF: schedule,
		})
		fig.Curves = append(fig.Curves, pushCurve(schedule.String(), res))
	}
	return fig
}

// Fig5 reproduces Figure 5: scalability from 10^4 to 10^8 total replicas
// with R_on/R = 0.1, σ=1, PF(t) = 0.8·0.7^t + 0.2 and f_r chosen so that
// ten online peers are expected per push (R_on·f_r = 10).
func Fig5() Figure {
	fig := Figure{
		ID:     "5",
		Title:  "Scalability",
		XLabel: "F_aware",
		YLabel: "Total messages / initial online population",
	}
	for _, total := range []int{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000} {
		rOn := total / 10
		res := mustPush(analytic.PushParams{
			R: total, ROn0: rOn, Sigma: 1, Fr: 10.0 / float64(rOn),
			PF: pf.AffineGeometric{A: 0.8, B: 0.7, C: 0.2},
		})
		fig.Curves = append(fig.Curves,
			pushCurve(fmt.Sprintf("Total population: %d", total), res))
	}
	return fig
}

// FigPull reproduces the §4.3 pull analysis: success probability versus the
// number of pull attempts for the paper's typical availability levels.
func FigPull() Figure {
	fig := Figure{
		ID:     "pull",
		Title:  "Pull success probability vs attempts (post-push)",
		XLabel: "Pull attempts",
		YLabel: "P(update obtained)",
	}
	for _, online := range []float64{0.1, 0.2, 0.3} {
		curve := Curve{Label: fmt.Sprintf("R_on/R = %g", online)}
		for a := 1; a <= 40; a++ {
			p := analytic.PullSuccess(int(online*1000), 1, 1000, a)
			curve.Points = append(curve.Points, Point{X: float64(a), Y: p})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig
}

// AllFigures returns every analytic figure keyed by ID.
func AllFigures() []Figure {
	return []Figure{Fig1a(), Fig1b(), Fig2(), Fig3(), Fig4(), Fig5(), FigPull()}
}

// FigureByID returns the analytic figure with the given paper ID.
func FigureByID(id string) (Figure, error) {
	for _, f := range AllFigures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiments: unknown figure %q", id)
}

// Render prints a figure as aligned text tables, one block per curve.
func (f Figure) Render() string {
	tb := &metrics.Table{Header: []string{"curve", f.XLabel, f.YLabel}}
	for _, c := range f.Curves {
		for _, p := range c.Points {
			tb.AddRow(c.Label, trim(p.X), trim(p.Y))
		}
	}
	return fmt.Sprintf("Figure %s: %s\n%s", f.ID, f.Title, tb.String())
}

func trim(v float64) float64 {
	return math.Round(v*10000) / 10000
}
