package experiments

import (
	"strings"
	"testing"
)

func TestBimodalStudySupercritical(t *testing.T) {
	// Healthy parameters: essentially every run saturates — "almost all".
	res, err := BimodalStudy(BimodalParams{
		R: 1000, ROn0: 300, Sigma: 0.95, Fr: 0.05,
		Trials: 30, ViewSize: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HighMass < 0.9 {
		t.Fatalf("supercritical high mass = %g, want ≈ 1 (%v)", res.HighMass, res.Buckets)
	}
	if res.Bimodality() < 0.8 {
		t.Fatalf("bimodality index = %g", res.Bimodality())
	}
}

func TestBimodalStudySubcritical(t *testing.T) {
	// Starved parameters (Fig 1(a) regime): the rumor dies almost
	// immediately in every run — "almost none".
	res, err := BimodalStudy(BimodalParams{
		R: 2000, ROn0: 20, Sigma: 0.95, Fr: 0.005,
		Trials: 30, ViewSize: 200, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nearly all mass in the bottom two buckets, none at the top.
	if res.LowMass+float64(res.Buckets[1])/float64(res.Trials) < 0.9 {
		t.Fatalf("subcritical low mass = %g (%v)", res.LowMass, res.Buckets)
	}
	if res.HighMass != 0 {
		t.Fatalf("subcritical run saturated: %v", res.Buckets)
	}
}

func TestBimodalStudyCriticalRegimeIsStillBimodal(t *testing.T) {
	// Near the epidemic threshold the outcome is random — but per the
	// bimodal hypothesis, runs end near 0 or near 1, rarely in between.
	res, err := BimodalStudy(BimodalParams{
		R: 1000, ROn0: 50, Sigma: 0.8, Fr: 0.024,
		Trials: 40, ViewSize: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LowMass == 0 && res.HighMass == 0 {
		t.Fatalf("critical regime produced no extreme outcomes: %v", res.Buckets)
	}
	if res.MidMass > 0.5 {
		t.Fatalf("mid mass = %g, contradicting bimodality (%v)", res.MidMass, res.Buckets)
	}
	out := RenderBimodal(res)
	if !strings.Contains(out, "bimodality index") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestBimodalDefaults(t *testing.T) {
	res, err := BimodalStudy(BimodalParams{
		R: 200, ROn0: 60, Sigma: 0.95, Fr: 0.1, Trials: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) != 10 {
		t.Fatalf("default buckets = %d", len(res.Buckets))
	}
	if res.Trials != 5 {
		t.Fatalf("trials = %d", res.Trials)
	}
}

func TestBackboneStudy(t *testing.T) {
	rows, err := BackboneStudy(BackboneParams{
		R: 150, MeanOnline: 0.3, BackboneFrac: 0.1,
		Rounds: 1200, Trials: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.RoundsToAll <= 0 {
			t.Fatalf("%s did not converge", row.Scenario)
		}
		if row.Messages <= 0 {
			t.Fatalf("%s reported no messages", row.Scenario)
		}
	}
	// Finding (recorded in EXPERIMENTS.md): with the population *mean*
	// availability held fixed, the backbone does NOT speed up 99%-coverage —
	// the flaky edge peers' own online transitions are the bottleneck, and
	// they are rarer than in the uniform scenario. The backbone's value is
	// keeping fresh data reachable, which shows up as a bounded slowdown
	// despite the much flakier edge, not as a speedup.
	if rows[1].RoundsToAll > rows[0].RoundsToAll*2.5 {
		t.Fatalf("backbone (%g rounds) catastrophically slower than uniform (%g)",
			rows[1].RoundsToAll, rows[0].RoundsToAll)
	}
	out := RenderBackbone(rows)
	if !strings.Contains(out, "backbone") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestBackboneValidation(t *testing.T) {
	for _, p := range []BackboneParams{
		{R: 0, MeanOnline: 0.3},
		{R: 10, MeanOnline: 0},
		{R: 10, MeanOnline: 1},
	} {
		if _, err := BackboneStudy(p); err == nil {
			t.Fatalf("BackboneStudy(%+v) should error", p)
		}
	}
}

func TestLThrSweep(t *testing.T) {
	rows, err := LThrSweep(LThrParams{
		R: 10_000, ROn0: 1000, Sigma: 0.95, Fr: 0.01, UpdateBytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	unlimited := rows[0]
	for _, row := range rows[1:] {
		// Tighter caps never reduce messages and never hurt awareness.
		if row.TotalMessages < unlimited.TotalMessages-1e-6 {
			t.Fatalf("L_thr=%g sent fewer messages than the full list", row.Threshold)
		}
		if row.FinalAware < unlimited.FinalAware-1e-9 {
			t.Fatalf("L_thr=%g hurt awareness: %g", row.Threshold, row.FinalAware)
		}
	}
	// The tightest cap must show both effects: smaller messages, more
	// duplicates.
	tight := rows[len(rows)-1]
	if tight.MaxMessageBytes >= unlimited.MaxMessageBytes {
		t.Fatalf("cap did not bound message size: %g vs %g",
			tight.MaxMessageBytes, unlimited.MaxMessageBytes)
	}
	if tight.TotalMessages <= unlimited.TotalMessages {
		t.Fatalf("cap did not cost duplicates: %g vs %g",
			tight.TotalMessages, unlimited.TotalMessages)
	}
	if out := RenderLThr(rows); !strings.Contains(out, "unlimited") {
		t.Fatalf("render malformed:\n%s", out)
	}
}
