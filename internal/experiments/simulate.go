package experiments

import (
	"fmt"

	"github.com/p2pgossip/update/internal/analytic"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/trace"
)

// SimParams configures one stochastic push-phase simulation, mirroring the
// analytical PushParams so the two can be cross-validated.
type SimParams struct {
	// R, ROn0, Sigma, Fr as in the analysis.
	R     int
	ROn0  int
	Sigma float64
	Fr    float64
	// NewPF builds the forwarding schedule per peer/update; nil = PF(t)=1.
	NewPF func() pf.Func
	// PartialList toggles the flooding-list optimisation.
	PartialList bool
	// Rounds bounds the simulation; 0 means 60.
	Rounds int
	// ViewSize caps each peer's initial membership view; 0 gives complete
	// knowledge (the analytic assumption). Large populations should use a
	// sample (e.g. 500): target selection stays uniform in aggregate while
	// network construction drops from O(R²) to O(R·ViewSize).
	ViewSize int
	// TraceEvents, when positive, records the last N simulation events in
	// the result's Trace recorder.
	TraceEvents int
	// Seed drives all randomness.
	Seed int64
}

// SimResult is one simulated push trajectory.
type SimResult struct {
	// Curve holds (F_aware, cumulative messages / R_on0) per round, the
	// same coordinates as the analytic figures.
	Curve Curve
	// TotalMessages is the final message count.
	TotalMessages float64
	// MessagesPerOnlinePeer normalises by the initial online population.
	MessagesPerOnlinePeer float64
	// FinalAware is the fraction of the initial online population that
	// received the update.
	FinalAware float64
	// Rounds is the number of simulation rounds executed.
	Rounds int
	// Trace holds the recorded events when SimParams.TraceEvents was set.
	Trace *trace.Recorder
}

// SimulatePush floods one update through a gossip network under the given
// parameters (push phase only) and records the paper's plot coordinates.
//
// F_aware is measured against the initial online population R_on0: peers
// that received the update and later went offline still count, matching the
// analysis (§5: peers coming online mid-push do not participate).
func SimulatePush(p SimParams) (SimResult, error) {
	if p.R <= 0 || p.ROn0 <= 0 || p.ROn0 > p.R {
		return SimResult{}, fmt.Errorf("experiments: bad population R=%d ROn0=%d", p.R, p.ROn0)
	}
	rounds := p.Rounds
	if rounds <= 0 {
		rounds = 60
	}
	cfg := gossip.DefaultConfig(p.R)
	cfg.Fr = p.Fr
	cfg.NewPF = p.NewPF
	cfg.PartialList = p.PartialList
	cfg.PullAttempts = 0
	cfg.PullTimeout = 0
	net, err := gossip.BuildNetwork(p.R, cfg, p.ViewSize, p.Seed)
	if err != nil {
		return SimResult{}, err
	}
	var rec *trace.Recorder
	if p.TraceEvents > 0 {
		rec = trace.New(p.TraceEvents)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: p.ROn0,
		Churn:         churn.Bernoulli{Sigma: p.Sigma},
		Seed:          p.Seed,
		Trace:         rec,
	})
	if err != nil {
		return SimResult{}, err
	}

	en.Step()
	id := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "experiment", []byte("u")).ID()

	res := SimResult{Curve: Curve{Label: "simulation"}, Trace: rec}
	rOn0 := float64(p.ROn0)
	for r := 0; r < rounds; r++ {
		en.Step()
		// F_aware is relative to the *current* online population: "our
		// notion of consistent state is more related to the online
		// population R_on(τ) … than the whole set of replicas" (§4.1).
		aware := 0.0
		if online := en.Population().OnlineCount(); online > 0 {
			aware = float64(net.CountAwareOnline(id, en)) / float64(online)
		}
		msgs := en.Metrics().Counter(simnet.MetricMessages) / rOn0
		res.Curve.Points = append(res.Curve.Points, Point{X: aware, Y: msgs})
		res.Rounds = r + 1
		if en.InFlight() == 0 {
			break
		}
	}
	res.TotalMessages = en.Metrics().Counter(simnet.MetricMessages)
	res.MessagesPerOnlinePeer = res.TotalMessages / rOn0
	if pts := res.Curve.Points; len(pts) > 0 {
		res.FinalAware = pts[len(pts)-1].X
	}
	return res, nil
}

// CrossCheck runs the simulator against the analytical model for the same
// parameters and returns (analytic msgs/peer, simulated msgs/peer,
// analytic F_aware, simulated F_aware). The validation tests assert the
// relative gap.
func CrossCheck(p SimParams) (analyticMsgs, simMsgs, analyticAware, simAware float64, err error) {
	sim, err := SimulatePush(p)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var fn pf.Func
	if p.NewPF != nil {
		fn = p.NewPF()
	}
	ana, err := analyticPush(p, fn)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return ana.MessagesPerOnlinePeer(), sim.MessagesPerOnlinePeer,
		ana.FinalAware(), sim.FinalAware, nil
}

func analyticPush(p SimParams, fn pf.Func) (analytic.PushResult, error) {
	return analytic.Push(analytic.PushParams{
		R: p.R, ROn0: p.ROn0, Sigma: p.Sigma, Fr: p.Fr,
		PF: fn, PartialList: p.PartialList,
	})
}
