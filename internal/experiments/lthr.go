package experiments

import (
	"fmt"

	"github.com/p2pgossip/update/internal/analytic"
	"github.com/p2pgossip/update/internal/metrics"
)

// LThrRow is one point of the §4.2 list-threshold trade-off: capping the
// partial flooding list at L_thr·R entries bounds message size at the cost
// of extra duplicate messages.
type LThrRow struct {
	// Threshold is L_thr (0 = unthresholded full list).
	Threshold float64
	// TotalMessages is the push phase's expected message count.
	TotalMessages float64
	// MaxMessageBytes is the largest per-message size over all rounds.
	MaxMessageBytes float64
	// FinalAware is the achieved awareness.
	FinalAware float64
}

// LThrParams configures the threshold sweep.
type LThrParams struct {
	// R, ROn0, Sigma, Fr as in the push analysis.
	R     int
	ROn0  int
	Sigma float64
	Fr    float64
	// UpdateBytes is the payload size U.
	UpdateBytes int
	// Thresholds are the L_thr values to sweep; empty means the default
	// {0, 0.05, 0.02, 0.01, 0.005} (the unthresholded list for the default
	// scenario peaks below 0.08, so larger caps never bind).
	Thresholds []float64
}

// LThrSweep evaluates the trade-off analytically. The paper proves that
// thresholding leaves F_aware unchanged while "the nodes which push the
// update in the next round pay the penalty of forwarding extra messages"
// (§4.2); the sweep quantifies that penalty against the bandwidth saved.
func LThrSweep(p LThrParams) ([]LThrRow, error) {
	thresholds := p.Thresholds
	if len(thresholds) == 0 {
		thresholds = []float64{0, 0.05, 0.02, 0.01, 0.005}
	}
	rows := make([]LThrRow, 0, len(thresholds))
	for _, thr := range thresholds {
		res, err := analytic.Push(analytic.PushParams{
			R: p.R, ROn0: p.ROn0, Sigma: p.Sigma, Fr: p.Fr,
			PartialList: true, ListThreshold: thr, UpdateBytes: p.UpdateBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("lthr sweep at %g: %w", thr, err)
		}
		row := LThrRow{Threshold: thr, TotalMessages: res.TotalMessages(),
			FinalAware: res.FinalAware()}
		for _, round := range res.Rounds {
			if round.MessageBytes > row.MaxMessageBytes {
				row.MaxMessageBytes = round.MessageBytes
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderLThr prints the sweep.
func RenderLThr(rows []LThrRow) string {
	tb := &metrics.Table{Header: []string{
		"L_thr", "total messages", "max message bytes", "F_aware",
	}}
	for _, r := range rows {
		label := fmt.Sprintf("%g", r.Threshold)
		if r.Threshold == 0 {
			label = "unlimited"
		}
		tb.AddRow(label, r.TotalMessages, r.MaxMessageBytes, r.FinalAware)
	}
	return tb.String()
}
