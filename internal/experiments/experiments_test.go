package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/p2pgossip/update/internal/pf"
)

func lastY(c Curve) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Y
}

func lastX(c Curve) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].X
}

func TestFig1aRumorDies(t *testing.T) {
	fig := Fig1a()
	if len(fig.Curves) != 1 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	if aware := lastX(fig.Curves[0]); aware > 0.9 {
		t.Fatalf("1%% population reached F_aware %g; paper: it must struggle", aware)
	}
}

func TestFig1bOverheadIndependentOfPopulation(t *testing.T) {
	fig := Fig1b()
	if len(fig.Curves) != 5 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	// Curves with ≥5% initial population all reach ≈ full awareness at
	// roughly the same per-peer cost (the paper reports ~80).
	var costs []float64
	for _, c := range fig.Curves[1:] { // skip the 100-peer curve
		if lastX(c) < 0.99 {
			t.Fatalf("%s stalled at %g", c.Label, lastX(c))
		}
		costs = append(costs, lastY(c))
	}
	for _, cost := range costs {
		if cost < 55 || cost > 115 {
			t.Fatalf("plain-flooding cost %g outside the ~80 band", cost)
		}
	}
	lo, hi := costs[0], costs[0]
	for _, c := range costs {
		lo, hi = math.Min(lo, c), math.Max(hi, c)
	}
	// "Relatively independent" (paper's wording): a 20× population range
	// moves the per-peer cost by well under 2×.
	if hi/lo > 2.0 {
		t.Fatalf("overhead should be nearly population-independent: %g vs %g", lo, hi)
	}
}

func TestFig2FanoutDuplicates(t *testing.T) {
	fig := Fig2()
	if len(fig.Curves) != 4 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	// Costs grow with f_r; f_r=0.05 versus f_r=0.005 is ≈ 8–10×.
	first, last := lastY(fig.Curves[0]), lastY(fig.Curves[3])
	if ratio := last / first; ratio < 4 || ratio > 15 {
		t.Fatalf("Fig2 ratio = %g, paper ≈ 8–10", ratio)
	}
	// The paper's y-ceiling: ~350–400 msgs/peer for f_r=0.05.
	if last < 200 || last > 450 {
		t.Fatalf("f_r=0.05 cost = %g, paper plots ≈ 350", last)
	}
}

func TestFig3SigmaMonotone(t *testing.T) {
	fig := Fig3()
	prev := math.Inf(1)
	for _, c := range fig.Curves {
		cost := lastY(c)
		if cost >= prev {
			t.Fatalf("cost did not decrease with sigma: %s has %g (prev %g)",
				c.Label, cost, prev)
		}
		prev = cost
		if lastX(c) < 0.97 {
			t.Fatalf("%s awareness %g", c.Label, lastX(c))
		}
	}
}

func TestFig4DecayingPF(t *testing.T) {
	fig := Fig4()
	byLabel := map[string]Curve{}
	for _, c := range fig.Curves {
		byLabel[c.Label] = c
	}
	plain := byLabel[pf.Constant{C: 1}.String()]
	gentle := byLabel[pf.Geometric{Base: 0.9}.String()]
	harsh := byLabel[pf.Geometric{Base: 0.5}.String()]
	if lastY(gentle) >= lastY(plain) {
		t.Fatalf("0.9^t (%g) not cheaper than PF=1 (%g)", lastY(gentle), lastY(plain))
	}
	if lastX(harsh) >= lastX(gentle) {
		t.Fatalf("0.5^t should under-cover: %g vs %g", lastX(harsh), lastX(gentle))
	}
}

func TestFig5Scalability(t *testing.T) {
	fig := Fig5()
	if len(fig.Curves) != 5 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	prev := math.Inf(1)
	for _, c := range fig.Curves {
		cost := lastY(c)
		if cost > 45 {
			t.Fatalf("%s cost %g exceeds the paper's ~45 ceiling", c.Label, cost)
		}
		if cost > prev+1e-9 {
			t.Fatalf("cost per peer should decrease with population: %s", c.Label)
		}
		prev = cost
	}
}

func TestFigPull(t *testing.T) {
	fig := FigPull()
	for _, c := range fig.Curves {
		prev := 0.0
		for _, p := range c.Points {
			if p.Y < prev || p.Y > 1 {
				t.Fatalf("%s not monotone in attempts", c.Label)
			}
			prev = p.Y
		}
		if lastY(c) < 0.9 {
			t.Fatalf("%s: 40 attempts give only %g", c.Label, lastY(c))
		}
	}
}

func TestFigureByID(t *testing.T) {
	for _, id := range []string{"1a", "1b", "2", "3", "4", "5", "pull"} {
		fig, err := FigureByID(id)
		if err != nil {
			t.Fatalf("FigureByID(%q): %v", id, err)
		}
		if fig.ID != id || len(fig.Curves) == 0 {
			t.Fatalf("figure %q malformed", id)
		}
	}
	if _, err := FigureByID("nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRender(t *testing.T) {
	out := Fig1a().Render()
	if !strings.Contains(out, "Figure 1a") || !strings.Contains(out, "F_aware") {
		t.Fatalf("render output malformed:\n%s", out)
	}
}

func TestTable2MatchesPaperShape(t *testing.T) {
	blocks, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for _, block := range blocks {
		if len(block.Rows) != 4 {
			t.Fatalf("rows = %d", len(block.Rows))
		}
		// Same ordering as the paper and within 35% of each reported value.
		for i := 1; i < len(block.Rows); i++ {
			if block.Rows[i].Ours >= block.Rows[i-1].Ours+1e-9 {
				t.Fatalf("%s: ordering violated at %s", block.Caption, block.Rows[i].Scheme)
			}
		}
		for _, row := range block.Rows {
			gap := math.Abs(row.Ours-row.Paper) / row.Paper
			if gap > 0.35 {
				t.Errorf("%s / %s: ours %g vs paper %g (%.0f%% off)",
					block.Caption, row.Scheme, row.Ours, row.Paper, gap*100)
			}
		}
	}
	if out := RenderTable2(blocks); !strings.Contains(out, "Gnutella") {
		t.Fatal("render missing schemes")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulatePush(SimParams{R: 0}); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := SimulatePush(SimParams{R: 10, ROn0: 20}); err == nil {
		t.Fatal("ROn0 > R accepted")
	}
}

func TestSimulationMatchesAnalyticModel(t *testing.T) {
	// The core validation: the stochastic simulator and the recursion agree
	// on message cost and coverage for the paper's parameter regime
	// (scaled to R=2000 to keep the test fast).
	//
	// Single trajectories are noisy — under a decaying PF the push phase's
	// extinction time varies by several messages per peer from seed to seed
	// — so each case averages three independent seeds and the tolerance is
	// on the mean, keeping the assertion about the model rather than about
	// one seed's luck.
	cases := []struct {
		name string
		p    SimParams
		tol  float64
	}{
		{"plain sigma=0.95", SimParams{
			R: 2000, ROn0: 200, Sigma: 0.95, Fr: 0.05, Seed: 1,
		}, 0.30},
		{"partial list", SimParams{
			R: 2000, ROn0: 200, Sigma: 0.95, Fr: 0.05, PartialList: true, Seed: 2,
		}, 0.30},
		// The decaying-PF regime sits furthest from the analytic recursion
		// (the recursion keeps spending messages long after the stochastic
		// cascade has died out), so it gets the same headroom the Table 2
		// comparisons use.
		{"decaying pf", SimParams{
			R: 2000, ROn0: 200, Sigma: 0.9, Fr: 0.05, PartialList: true,
			NewPF: func() pf.Func { return pf.Geometric{Base: 0.9} }, Seed: 3,
		}, 0.35},
	}
	const seedRuns = 3
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var anaMsgs, anaAware, simMsgs, simAware float64
			for i := 0; i < seedRuns; i++ {
				p := tc.p
				p.Seed = tc.p.Seed + int64(i*100)
				ana, sim, anaAw, simAw, err := CrossCheck(p)
				if err != nil {
					t.Fatal(err)
				}
				anaMsgs, anaAware = ana, anaAw // analytic: seed-independent
				simMsgs += sim / seedRuns
				simAware += simAw / seedRuns
			}
			msgGap := math.Abs(anaMsgs-simMsgs) / anaMsgs
			if msgGap > tc.tol {
				t.Errorf("message gap %0.f%%: analytic %g vs sim mean %g",
					msgGap*100, anaMsgs, simMsgs)
			}
			if math.Abs(anaAware-simAware) > 0.15 {
				t.Errorf("awareness gap: analytic %g vs sim mean %g", anaAware, simAware)
			}
		})
	}
}
