package experiments

import (
	"fmt"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
)

// This file implements the two studies the paper lists as future work (§8):
//
//   - Bimodal behaviour: "we plan to use simulations … to investigate
//     whether there is bimodal behaviour [Birman et al.] even in the assumed
//     environment of very low peer presence". Bimodal means the final
//     coverage distribution concentrates near 0 ("almost none") and near 1
//     ("almost all"), with little mass in between.
//   - Non-uniform online probability: "a relatively reliable network
//     backbone would exist and thus would make possible further performance
//     improvements".

// BimodalParams configures the bimodality study.
type BimodalParams struct {
	// R, ROn0, Sigma, Fr, PartialList as in SimParams.
	R           int
	ROn0        int
	Sigma       float64
	Fr          float64
	PartialList bool
	// NewPF as in SimParams (nil = PF(t)=1).
	NewPF func() pf.Func
	// Trials is the number of independent seeds; 0 means 100.
	Trials int
	// Buckets is the histogram resolution; 0 means 10.
	Buckets int
	// ViewSize caps initial membership views (see SimParams.ViewSize).
	ViewSize int
	// Seed offsets the per-trial seeds.
	Seed int64
}

// BimodalResult is a histogram of final F_aware over independent runs.
type BimodalResult struct {
	// Buckets[i] counts runs whose final awareness fell into
	// [i/len, (i+1)/len).
	Buckets []int
	// Trials is the total number of runs.
	Trials int
	// LowMass, HighMass, MidMass are the fractions of runs ending in the
	// bottom bucket, the top bucket, and everything in between.
	LowMass, HighMass, MidMass float64
}

// Bimodality returns HighMass + LowMass − MidMass, a crude index in
// [−1, 1]: values near 1 mean "almost all or almost none".
func (r BimodalResult) Bimodality() float64 {
	return r.LowMass + r.HighMass - r.MidMass
}

// BimodalStudy runs many independent pushes and histograms the final
// awareness.
func BimodalStudy(p BimodalParams) (BimodalResult, error) {
	trials := p.Trials
	if trials <= 0 {
		trials = 100
	}
	buckets := p.Buckets
	if buckets <= 0 {
		buckets = 10
	}
	res := BimodalResult{Buckets: make([]int, buckets), Trials: trials}
	for trial := 0; trial < trials; trial++ {
		sim, err := SimulatePush(SimParams{
			R: p.R, ROn0: p.ROn0, Sigma: p.Sigma, Fr: p.Fr,
			PartialList: p.PartialList, NewPF: p.NewPF, ViewSize: p.ViewSize,
			Seed: p.Seed + int64(trial)*7919,
		})
		if err != nil {
			return BimodalResult{}, err
		}
		idx := int(sim.FinalAware * float64(buckets))
		if idx >= buckets {
			idx = buckets - 1
		}
		res.Buckets[idx]++
	}
	res.LowMass = float64(res.Buckets[0]) / float64(trials)
	res.HighMass = float64(res.Buckets[buckets-1]) / float64(trials)
	res.MidMass = 1 - res.LowMass - res.HighMass
	return res, nil
}

// RenderBimodal prints the histogram.
func RenderBimodal(r BimodalResult) string {
	tb := &metrics.Table{Header: []string{"F_aware bucket", "runs"}}
	n := len(r.Buckets)
	for i, c := range r.Buckets {
		tb.AddRow(fmt.Sprintf("[%.1f,%.1f)", float64(i)/float64(n), float64(i+1)/float64(n)), c)
	}
	return fmt.Sprintf("%sbimodality index: %.2f (low %.2f / mid %.2f / high %.2f)\n",
		tb.String(), r.Bimodality(), r.LowMass, r.MidMass, r.HighMass)
}

// BackboneParams configures the non-uniform availability study.
type BackboneParams struct {
	// R is the population size.
	R int
	// MeanOnline is the long-run online fraction both scenarios share.
	MeanOnline float64
	// BackboneFrac is the fraction of peers forming the reliable backbone.
	BackboneFrac float64
	// Rounds bounds each simulation; 0 means 400.
	Rounds int
	// Trials averages over seeds; 0 means 5.
	Trials int
	// Seed offsets the per-trial seeds.
	Seed int64
}

// backboneCoverage is the convergence target: 99% of all replicas. Full
// coverage is the wrong yardstick under memoryless churn — a peer has a
// small but positive probability of staying offline for the whole horizon.
const backboneCoverage = 0.99

// BackboneRow summarises one availability scenario.
type BackboneRow struct {
	Scenario string
	// RoundsToAll is the mean round by which 99% of all replicas (online or
	// not) held the update; −1 if some run never got there.
	RoundsToAll float64
	// Messages is the mean total message count.
	Messages float64
}

// BackboneStudy compares uniform availability against a
// backbone-plus-flaky-edge population with the same mean availability,
// measuring full-population convergence time (push + pull).
func BackboneStudy(p BackboneParams) ([]BackboneRow, error) {
	if p.R <= 0 || p.MeanOnline <= 0 || p.MeanOnline >= 1 {
		return nil, fmt.Errorf("experiments: bad backbone params %+v", p)
	}
	rounds := p.Rounds
	if rounds <= 0 {
		rounds = 400
	}
	trials := p.Trials
	if trials <= 0 {
		trials = 5
	}

	// Uniform: every peer has the same Bernoulli availability.
	pOff := 0.05
	uniform := churn.Bernoulli{Sigma: 1 - pOff, POn: pOff * p.MeanOnline / (1 - p.MeanOnline)}

	// Backbone: BackboneFrac of peers are (nearly) always online; the rest
	// are flakier, tuned so the population mean matches.
	edgeMean := (p.MeanOnline - p.BackboneFrac) / (1 - p.BackboneFrac)
	if edgeMean < 0.01 {
		edgeMean = 0.01
	}
	backbone := churn.NewBackbone(p.R, p.BackboneFrac,
		0.999, 0.9, // backbone: sticks online
		1-pOff, pOff*edgeMean/(1-edgeMean)) // edge: same form as uniform

	scenarios := []struct {
		name string
		proc churn.Process
	}{
		{"uniform availability", uniform},
		{fmt.Sprintf("%.0f%% reliable backbone", p.BackboneFrac*100), backbone},
	}
	rows := make([]BackboneRow, 0, len(scenarios))
	for _, sc := range scenarios {
		var sumRounds, sumMsgs float64
		converged := true
		for trial := 0; trial < trials; trial++ {
			r, msgs, ok, err := backboneTrial(p.R, p.MeanOnline, sc.proc, rounds,
				p.Seed+int64(trial)*104729)
			if err != nil {
				return nil, err
			}
			if !ok {
				converged = false
			}
			sumRounds += float64(r)
			sumMsgs += msgs
		}
		row := BackboneRow{
			Scenario: sc.name,
			Messages: sumMsgs / float64(trials),
		}
		if converged {
			row.RoundsToAll = sumRounds / float64(trials)
		} else {
			row.RoundsToAll = -1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func backboneTrial(r int, meanOnline float64, proc churn.Process, rounds int, seed int64) (int, float64, bool, error) {
	cfg := gossip.DefaultConfig(r)
	cfg.Fr = 0.05
	cfg.NewPF = func() pf.Func { return pf.Geometric{Base: 0.9} }
	cfg.PullAttempts = 3
	cfg.PullTimeout = 25
	net, err := gossip.BuildNetwork(r, cfg, 0, seed)
	if err != nil {
		return 0, 0, false, err
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: int(meanOnline * float64(r)),
		Churn:         proc,
		Seed:          seed,
	})
	if err != nil {
		return 0, 0, false, err
	}
	en.Step()
	id := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v")).ID()
	target := int(backboneCoverage * float64(r))
	for round := 1; round <= rounds; round++ {
		en.Step()
		if net.CountAware(id) >= target {
			return round, en.Metrics().Counter(simnet.MetricMessages), true, nil
		}
	}
	return rounds, en.Metrics().Counter(simnet.MetricMessages), false, nil
}

// RenderBackbone prints the study result.
func RenderBackbone(rows []BackboneRow) string {
	tb := &metrics.Table{Header: []string{"scenario", "rounds to full convergence", "messages"}}
	for _, r := range rows {
		roundsCell := fmt.Sprintf("%.1f", r.RoundsToAll)
		if r.RoundsToAll < 0 {
			roundsCell = "did not converge"
		}
		tb.AddRow(r.Scenario, roundsCell, r.Messages)
	}
	return tb.String()
}
