package experiments

import (
	"fmt"

	"github.com/p2pgossip/update/internal/analytic"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/pf"
)

// Table2Row is one row of the paper's Table 2 with both the paper's
// reported value and ours.
type Table2Row struct {
	Scheme     string
	Paper      float64
	PaperRound int
	Ours       float64
	OursRound  int
	FinalAware float64
}

// Table2Block is one of the two scenarios of Table 2.
type Table2Block struct {
	// Caption describes the scenario parameters.
	Caption string
	Rows    []Table2Row
}

// Table2 evaluates both Table 2 scenarios analytically and pairs each
// scheme with the paper's reported numbers.
//
// Scenario parameters (reconstructed from §5.6): top block — all 1000
// replicas online, σ=1, fanout 4 (f_r = 0.004), ours = PF(t)=0.9^t; bottom
// block — 100 of 1000 online, σ=1, fanout 40 (f_r = 0.04, four expected
// online targets), ours = PF(t)=0.8^t.
func Table2() ([]Table2Block, error) {
	type scenario struct {
		caption     string
		params      analytic.CompareParams
		paperValues map[analytic.Scheme]float64
		paperRounds map[analytic.Scheme]int
	}
	scenarios := []scenario{
		{
			caption: "R_on/R = 10^3/10^3, sigma = 1, fanout 4 (f_r = 0.004)",
			params: analytic.CompareParams{
				R: 1000, ROn0: 1000, Sigma: 1, Fr: 0.004,
				HaasP: 0.8, HaasK: 2,
				OursPF:      pf.Geometric{Base: 0.9},
				AwareTarget: 0.9,
			},
			paperValues: map[analytic.Scheme]float64{
				analytic.SchemeGnutella:    4,
				analytic.SchemePartialList: 3.92,
				analytic.SchemeHaas:        3.136,
				analytic.SchemeOurs:        2.215,
			},
			paperRounds: map[analytic.Scheme]int{
				analytic.SchemeGnutella:    7,
				analytic.SchemePartialList: 7,
				analytic.SchemeHaas:        7,
				analytic.SchemeOurs:        8,
			},
		},
		{
			caption: "R_on/R = 10^2/10^3, sigma = 1, fanout 40 (f_r = 0.04)",
			params: analytic.CompareParams{
				R: 1000, ROn0: 100, Sigma: 1, Fr: 0.04,
				HaasP: 0.8, HaasK: 2,
				OursPF:      pf.Geometric{Base: 0.8},
				AwareTarget: 0.9,
			},
			paperValues: map[analytic.Scheme]float64{
				analytic.SchemeGnutella:    40,
				analytic.SchemePartialList: 35.22,
				analytic.SchemeHaas:        28.49,
				analytic.SchemeOurs:        16.35,
			},
			paperRounds: map[analytic.Scheme]int{
				analytic.SchemeGnutella:    5,
				analytic.SchemePartialList: 5,
				analytic.SchemeHaas:        5,
				analytic.SchemeOurs:        6,
			},
		},
	}

	var blocks []Table2Block
	for _, sc := range scenarios {
		rows, err := analytic.Compare(sc.params)
		if err != nil {
			return nil, fmt.Errorf("table 2 (%s): %w", sc.caption, err)
		}
		block := Table2Block{Caption: sc.caption}
		for _, row := range rows {
			block.Rows = append(block.Rows, Table2Row{
				Scheme:     row.Scheme.String(),
				Paper:      sc.paperValues[row.Scheme],
				PaperRound: sc.paperRounds[row.Scheme],
				Ours:       row.MessagesPerPeer,
				OursRound:  row.Rounds,
				FinalAware: row.FinalAware,
			})
		}
		blocks = append(blocks, block)
	}
	return blocks, nil
}

// RenderTable2 prints the comparison as text tables.
func RenderTable2(blocks []Table2Block) string {
	out := ""
	for _, block := range blocks {
		tb := &metrics.Table{Header: []string{
			"Scheme", "paper msgs/peer", "ours msgs/peer",
			"paper rounds", "ours rounds", "final F_aware",
		}}
		for _, r := range block.Rows {
			tb.AddRow(r.Scheme, r.Paper, r.Ours, r.PaperRound, r.OursRound, r.FinalAware)
		}
		out += fmt.Sprintf("Table 2 — %s\n%s\n", block.Caption, tb.String())
	}
	return out
}
