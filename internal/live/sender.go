package live

import (
	"sync"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// This file implements the coalescing per-peer delta senders (the weave
// GossipSender shape): one goroutine and one pending delta per destination.
// Engine sends are deposited into the destination's pending delta and the
// sender goroutine drains it through the transport. While a link is busy —
// the transport write is synchronous, so a slow peer parks exactly its own
// sender — new deposits MERGE into the pending delta instead of queueing:
//
//   - pushes dedup by store.Ref and newer versions of a key supersede
//     pending dominated ones (the receiver's clock gap, if any, is repaired
//     by ordinary pull anti-entropy);
//   - pull responses collapse to the pointwise-minimum requester clock, so
//     one rendered response covers every outstanding request;
//   - pull requests and acks are idempotent flags/sets.
//
// Pending state therefore stays O(live state) per destination, not
// O(traffic), and nothing is rendered at deposit time: the partial-flooding
// list, the pull-response delta (or snapshot), and the pull-request clock
// are all produced at transmission time (engine.RenderPush /
// engine.RenderPullResp, store.Clock), so a slow consumer receives the
// newest superset rather than a replay of stale frames.

// senderIdleTimeout is how long a peer sender with nothing pending lingers
// before retiring its goroutine. Senders are recreated transparently on the
// next deposit; the timeout only bounds idle-goroutine count at the churn
// rate, not correctness.
const senderIdleTimeout = time.Minute

// maxPendingAux caps the non-mergeable envelope classes (queries, query
// responses) a pending delta will hold for a stalled destination. These
// carry request/response semantics and cannot coalesce; beyond the cap the
// oldest are dropped (counted as MetricSendFailed) — queries time out and
// retry at the protocol layer, so dropping is safe and keeps even the aux
// portion of pending state bounded.
const maxPendingAux = 1024

// pendingPush is one coalesced outbound push: the update plus the round
// counter it would have carried. The flooding list is deliberately absent —
// it is re-rendered from live engine state at send time.
type pendingPush struct {
	u store.Update
	t int
}

// pendingDelta is everything owed to one destination, in mergeable form.
// All methods require external synchronisation (peerSender.mu) and return
// the change in the estimated byte footprint plus how many deposits merged
// into existing state instead of growing it.
type pendingDelta struct {
	// entries holds the coalesced pushes keyed by update identity; order
	// preserves first-deposit order for rendering (stale refs — superseded
	// entries — are skipped at render). byKey indexes entries by key so a
	// newer version can displace dominated pending ones in O(branches).
	entries map[store.Ref]pendingPush
	order   []store.Ref
	byKey   map[string][]store.Ref

	// acks is the deduplicated set of update refs to acknowledge.
	acks   []store.Ref
	ackSet map[store.Ref]struct{}

	// pullReq records that at least one anti-entropy request is owed; the
	// clock is rendered from the store at send time, so later is only ever
	// better.
	pullReq bool

	// pullResp records an owed pull response as the pointwise-minimum of
	// every outstanding requester clock (an origin absent from either clock
	// counts as zero and drops out); rendering DeltaFor(min) at send time
	// yields a superset of every coalesced request's gap. pullRespPeers is
	// the latest membership sample to piggyback.
	pullResp      bool
	pullRespClock version.Clock
	pullRespPeers []string

	// aux holds rendered envelopes that cannot merge (query traffic),
	// bounded by maxPendingAux.
	aux []wire.Envelope

	// bytes is the estimated footprint of everything above, maintained
	// incrementally so the replica can expose a cheap pending-memory gauge.
	bytes int
}

func newPendingDelta() pendingDelta {
	return pendingDelta{
		entries: make(map[store.Ref]pendingPush),
		byKey:   make(map[string][]store.Ref),
		ackSet:  make(map[store.Ref]struct{}),
	}
}

func (p *pendingDelta) empty() bool {
	return len(p.entries) == 0 && len(p.acks) == 0 && !p.pullReq &&
		!p.pullResp && len(p.aux) == 0
}

// Fixed-size estimates for the non-payload pending classes.
const (
	pendingAckBytes  = 24
	pendingFlagBytes = 16
	pendingAuxBase   = 64
)

func pendingClockBytes(c version.Clock) int {
	n := pendingFlagBytes
	for origin := range c {
		n += len(origin) + 8
	}
	return n
}

// addPush merges one outbound push. Same ref: the round counter refreshes
// in place. New ref: any pending entry for the same key whose version is
// dominated by the newcomer is displaced, and the newcomer itself is
// dropped when a pending entry already dominates it — newest version wins
// in both directions. Concurrent branches coexist.
func (p *pendingDelta) addPush(u store.Update, t int) (coalesced, delta int) {
	ref := u.Ref()
	if e, ok := p.entries[ref]; ok {
		e.t = t
		p.entries[ref] = e
		return 1, 0
	}
	refs := p.byKey[u.Key]
	for _, other := range refs {
		if e, ok := p.entries[other]; ok && e.u.Version.Dominates(u.Version) {
			// A pending entry already carries this key at or past the
			// deposited version; the deposit is fully absorbed.
			return 1, 0
		}
	}
	kept := refs[:0]
	for _, other := range refs {
		e, ok := p.entries[other]
		if !ok {
			continue // stale index entry
		}
		if u.Version.Dominates(e.u.Version) {
			delete(p.entries, other)
			coalesced++
			delta -= e.u.SizeBytes()
			continue
		}
		kept = append(kept, other)
	}
	p.entries[ref] = pendingPush{u: u, t: t}
	p.order = append(p.order, ref)
	p.byKey[u.Key] = append(kept, ref)
	delta += u.SizeBytes()
	p.bytes += delta
	return coalesced, delta
}

// addAck records one acknowledgement, deduplicated by ref.
func (p *pendingDelta) addAck(ref store.Ref) (coalesced, delta int) {
	if _, ok := p.ackSet[ref]; ok {
		return 1, 0
	}
	p.ackSet[ref] = struct{}{}
	p.acks = append(p.acks, ref)
	p.bytes += pendingAckBytes
	return 0, pendingAckBytes
}

// addPullReq records that an anti-entropy request is owed.
func (p *pendingDelta) addPullReq() (coalesced, delta int) {
	if p.pullReq {
		return 1, 0
	}
	p.pullReq = true
	p.bytes += pendingFlagBytes
	return 0, pendingFlagBytes
}

// addPullResp merges an owed pull response: the pending clock becomes the
// pointwise minimum of itself and the new requester clock (missing origins
// count as zero and drop out), and the piggybacked peer sample is replaced
// by the newest one. The pending delta takes ownership of both arguments.
func (p *pendingDelta) addPullResp(clock version.Clock, peers []string) (coalesced, delta int) {
	if !p.pullResp {
		p.pullResp = true
		p.pullRespClock = clock
		p.pullRespPeers = peers
		delta = pendingClockBytes(clock)
		p.bytes += delta
		return 0, delta
	}
	old := p.bytes
	for origin, have := range p.pullRespClock {
		if nv, ok := clock[origin]; !ok {
			delete(p.pullRespClock, origin)
			p.bytes -= len(origin) + 8
		} else if nv < have {
			p.pullRespClock[origin] = nv
		}
	}
	p.pullRespPeers = peers
	return 1, p.bytes - old
}

// addAux appends a non-mergeable envelope, dropping the oldest beyond
// maxPendingAux. dropped counts envelopes discarded undelivered.
func (p *pendingDelta) addAux(env wire.Envelope) (dropped, delta int) {
	p.aux = append(p.aux, env)
	delta = pendingAuxBase + len(env.Key) + len(env.Value) + len(env.Snapshot)
	if len(p.aux) > maxPendingAux {
		victim := p.aux[0]
		delta -= pendingAuxBase + len(victim.Key) + len(victim.Value) + len(victim.Snapshot)
		copy(p.aux, p.aux[1:])
		p.aux = p.aux[:len(p.aux)-1]
		dropped = 1
	}
	p.bytes += delta
	return dropped, delta
}

// peerSender owns all outbound traffic to one destination: a pending delta
// deposits merge into, and a goroutine (run) that drains it through the
// transport. The transport write is synchronous, so a slow destination
// blocks only its own sender while the pending delta coalesces behind it.
type peerSender struct {
	r  *Replica
	to string

	// wake nudges the run loop after a deposit; 1-buffered so deposits
	// never block and redundant nudges collapse.
	wake chan struct{}

	mu      sync.Mutex
	p       pendingDelta
	closing bool
}

func newPeerSender(r *Replica, to string) *peerSender {
	return &peerSender{r: r, to: to, wake: make(chan struct{}, 1), p: newPendingDelta()}
}

// deposit applies one merge to the pending delta. It reports false when the
// sender is retiring — the caller must fetch a fresh sender and retry — and
// otherwise fires the coalescing/drop counters and the pending-bytes gauge
// outside the sender lock and nudges the run loop.
func (s *peerSender) deposit(f func(p *pendingDelta) (coalesced, dropped, delta int)) bool {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return false
	}
	coalesced, dropped, delta := f(&s.p)
	s.mu.Unlock()
	if coalesced > 0 {
		s.r.add(MetricSendCoalesced, coalesced)
	}
	if dropped > 0 {
		s.r.add(MetricSendFailed, dropped)
	}
	if delta != 0 {
		s.r.notePendingBytes(int64(delta))
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return true
}

// run is the sender goroutine: drain on every nudge, retire after an idle
// minute, discard pending state when the replica stops.
func (s *peerSender) run() {
	defer s.r.bg.Done()
	idle := time.NewTimer(senderIdleTimeout)
	defer idle.Stop()
	for {
		select {
		case <-s.wake:
			s.deliver()
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(senderIdleTimeout)
		case <-idle.C:
			if s.tryRetire() {
				return
			}
			idle.Reset(senderIdleTimeout)
		case <-s.r.stop:
			s.discard()
			return
		}
	}
}

// take swaps the pending delta out under the lock, leaving a fresh one for
// concurrent deposits.
func (s *peerSender) take() (pendingDelta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.p.empty() {
		return pendingDelta{}, false
	}
	p := s.p
	s.p = newPendingDelta()
	return p, true
}

// deliver renders and transmits pending deltas until none remain. Deposits
// made while a batch is on the wire merge into the next one.
func (s *peerSender) deliver() {
	for {
		p, ok := s.take()
		if !ok {
			return
		}
		s.r.notePendingBytes(int64(-p.bytes))
		s.send(s.render(&p))
	}
}

// render converts one taken pending delta into wire envelopes, late-binding
// everything that depends on current state: flooding lists from the engine,
// the pull-request clock from the store, and the pull response (delta or
// snapshot) from the coalesced minimum requester clock. Protocol counters
// fire here — at actual transmission — not at deposit.
func (s *peerSender) render(p *pendingDelta) []wire.Envelope {
	r := s.r
	envs := make([]wire.Envelope, 0, len(p.order)+len(p.acks)+len(p.aux)+2)
	// Acks first: they are cheap and unblock the peer's §6 retransmit state.
	for _, ref := range p.acks {
		envs = append(envs, wire.Envelope{From: r.addr, Kind: wire.KindAck, UpdateRef: ref})
	}
	if n := len(p.acks); n > 0 {
		r.add(MetricAckSent, n)
	}
	if len(p.order) > 0 {
		pushes := 0
		r.mu.Lock()
		for _, ref := range p.order {
			e, ok := p.entries[ref]
			if !ok {
				continue // superseded while pending
			}
			delete(p.entries, ref)
			// Late-bound flooding list: the engine's current carried list
			// for the update, not the one frozen at deposit. Updates the
			// engine no longer tracks still ship, with no list.
			rf, _ := r.eng.RenderPush(ref)
			envs = append(envs, wire.Envelope{
				From: r.addr, Kind: wire.KindPush,
				Update: wire.FromStore(e.u), RF: rf, T: e.t,
			})
			pushes++
		}
		r.mu.Unlock()
		if pushes > 0 {
			r.add(MetricPushSent, pushes)
		}
	}
	if p.pullReq {
		envs = append(envs, wire.Envelope{
			From: r.addr, Kind: wire.KindPullReq, Clock: r.st.Clock(),
		})
		r.inc(MetricPullRequests)
	}
	if p.pullResp {
		// RenderPullResp reads only the store and immutable config, so it
		// runs without the replica lock — snapshot encoding for a far-behind
		// peer never stalls the protocol.
		if updates, snapshot, ok := r.eng.RenderPullResp(p.pullRespClock); ok {
			if snapshot != nil {
				envs = append(envs, wire.Envelope{
					From: r.addr, Kind: wire.KindSnapshot,
					Snapshot: snapshot, KnownPeers: p.pullRespPeers,
				})
				r.inc(MetricSnapshotServed)
			} else {
				wus := make([]wire.Update, len(updates))
				for i, u := range updates {
					wus[i] = wire.FromStore(u)
				}
				envs = append(envs, wire.Envelope{
					From: r.addr, Kind: wire.KindPullResp,
					Updates: wus, KnownPeers: p.pullRespPeers,
				})
				r.inc(MetricPullServed)
			}
		}
	}
	for _, env := range p.aux {
		switch env.Kind {
		case wire.KindQuery:
			r.inc(MetricQuerySent)
		case wire.KindPullResp:
			r.inc(MetricPullServed)
		case wire.KindSnapshot:
			r.inc(MetricSnapshotServed)
		}
		envs = append(envs, env)
	}
	return envs
}

// send transmits one rendered batch: encoded once into frames and flushed
// through a single FrameBatchSender write when the transport offers it.
// Errors drop the batch — counted, never retried here; the protocol's own
// pull anti-entropy re-derives anything that mattered.
func (s *peerSender) send(envs []wire.Envelope) {
	if len(envs) == 0 {
		return
	}
	r := s.r
	if fbs, ok := r.transport.(FrameBatchSender); ok {
		frames := make([]*wire.Frame, 0, len(envs))
		for i := range envs {
			f, err := wire.NewFrame(&envs[i])
			if err != nil {
				r.inc(MetricSendFailed)
				continue
			}
			frames = append(frames, f)
		}
		if len(frames) == 0 {
			return
		}
		err := fbs.SendFrames(s.to, frames)
		for _, f := range frames {
			f.Release()
		}
		if err != nil {
			r.add(MetricSendFailed, len(frames))
		}
		return
	}
	for i := range envs {
		if err := r.transport.Send(s.to, envs[i]); err != nil {
			r.inc(MetricSendFailed)
		}
	}
}

// tryRetire ends an idle sender: under the registry lock, if nothing is
// pending the sender marks itself closing and deregisters, so a concurrent
// deposit observes either the registration gone or the closing flag and
// recreates a sender — pending state is never stranded.
func (s *peerSender) tryRetire() bool {
	r := s.r
	r.sendMu.Lock()
	s.mu.Lock()
	if !s.p.empty() {
		s.mu.Unlock()
		r.sendMu.Unlock()
		return false
	}
	s.closing = true
	if r.senders[s.to] == s {
		delete(r.senders, s.to)
	}
	s.mu.Unlock()
	r.sendMu.Unlock()
	return true
}

// discard drops pending state on replica stop, keeping the gauge honest.
func (s *peerSender) discard() {
	s.mu.Lock()
	s.closing = true
	n := s.p.bytes
	s.p = pendingDelta{}
	s.mu.Unlock()
	if n != 0 {
		s.r.notePendingBytes(int64(-n))
	}
}
