package live

// Benchmarks for the live wire path. The round-trip benchmark is the
// transport-level hot path: one envelope to a peer and the peer's reply —
// the shape of every push/ack and pull-request/pull-response exchange.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// BenchmarkTCPRoundTrip measures one request envelope sent to a peer plus the
// peer's response envelope, over real TCP on loopback. Both directions reuse
// an established connection, the binary codec, and the inline write path, so
// the cost is dominated by the loopback syscalls.
func BenchmarkTCPRoundTrip(b *testing.B) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()

	// The peer answers every pull request with a small pull response; the
	// requester signals each completed round trip.
	done := make(chan struct{}, 1)
	resp := wire.Envelope{
		Kind: wire.KindPullResp, From: peer.Addr(),
		Updates: []wire.Update{{
			Origin: "writer", Seq: 1, Key: "key", Value: []byte("value"),
		}},
	}
	peer.SetHandler(func(env wire.Envelope) {
		if env.Kind == wire.KindPullReq {
			_ = peer.Send(env.From, resp)
		}
	})
	a.SetHandler(func(env wire.Envelope) {
		if env.Kind == wire.KindPullResp {
			done <- struct{}{}
		}
	})

	req := wire.Envelope{
		Kind: wire.KindPullReq, From: a.Addr(),
		Clock: version.Clock{"writer": 0},
	}
	// One watchdog for the whole run, sized to b.N: a per-iteration
	// time.After would charge a timer allocation to every round trip.
	watchdog := time.NewTimer(time.Minute + time.Duration(b.N)*time.Millisecond)
	defer watchdog.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(peer.Addr(), req); err != nil {
			b.Fatalf("send: %v", err)
		}
		select {
		case <-done:
		case <-watchdog.C:
			b.Fatal("round trip timed out")
		}
	}
}

// BenchmarkLiveSustainedPublish is the throughput benchmark of the live
// path: parallel publishers drive replicas of a 5-node TCP loopback mesh,
// each Publish fanning its push out to the other four peers through the
// engine, the batched envelope encoding, and the per-connection writers.
// It reports sustained updates/sec alongside the usual ns/op and B/op.
func BenchmarkLiveSustainedPublish(b *testing.B) {
	const n = 5
	transports := make([]*TCPTransport, n)
	replicas := make([]*Replica, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
		r, err := NewReplica(Config{
			Fanout:      n - 1,
			PartialList: true,
			Seed:        int64(i) + 1,
			// No pull phase: the benchmark isolates the push fanout path.
			PullAttempts: 0,
		}, tr)
		if err != nil {
			b.Fatal(err)
		}
		replicas[i] = r
	}
	for i := range replicas {
		replicas[i].AddPeers(addrs...)
		replicas[i].Start()
		i := i
		defer func() {
			replicas[i].Stop()
			transports[i].Close()
		}()
	}

	value := []byte("sustained-throughput-payload")
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Spread publishers across the mesh so every replica both fans out
		// and ingests.
		r := replicas[int(seq.Add(1))%n]
		i := 0
		for pb.Next() {
			r.Publish(fmt.Sprintf("key-%d", i%64), value)
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkTCPSendBurst measures a one-way burst of push envelopes to a
// single peer, the shape of the push phase's fanout loop.
func BenchmarkTCPSendBurst(b *testing.B) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()

	received := make(chan struct{}, 1024)
	peer.SetHandler(func(wire.Envelope) { received <- struct{}{} })

	env := wire.Envelope{
		Kind: wire.KindPush, From: a.Addr(),
		Update: wire.Update{Origin: "writer", Seq: 1, Key: "key", Value: []byte("value")},
		RF:     []string{"peer-1", "peer-2", "peer-3"},
		T:      1,
	}
	watchdog := time.NewTimer(time.Minute + time.Duration(b.N)*time.Millisecond)
	defer watchdog.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(peer.Addr(), env); err != nil {
			b.Fatalf("send: %v", err)
		}
		select {
		case <-received:
		case <-watchdog.C:
			b.Fatal("delivery timed out")
		}
	}
}
