package live

// Benchmarks for the live wire path. The round-trip benchmark is the
// transport-level hot path: one envelope to a peer and the peer's reply —
// the shape of every push/ack and pull-request/pull-response exchange.

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// BenchmarkTCPRoundTrip measures one request envelope sent to a peer plus the
// peer's response envelope, over real TCP on loopback. Both directions reuse
// an established connection, the binary codec, and the inline write path, so
// the cost is dominated by the loopback syscalls.
func BenchmarkTCPRoundTrip(b *testing.B) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()

	// The peer answers every pull request with a small pull response; the
	// requester signals each completed round trip.
	done := make(chan struct{}, 1)
	resp := wire.Envelope{
		Kind: wire.KindPullResp, From: peer.Addr(),
		Updates: []wire.Update{{
			Origin: "writer", Seq: 1, Key: "key", Value: []byte("value"),
		}},
	}
	peer.SetHandler(func(env wire.Envelope) {
		if env.Kind == wire.KindPullReq {
			_ = peer.Send(env.From, resp)
		}
	})
	a.SetHandler(func(env wire.Envelope) {
		if env.Kind == wire.KindPullResp {
			done <- struct{}{}
		}
	})

	req := wire.Envelope{
		Kind: wire.KindPullReq, From: a.Addr(),
		Clock: version.Clock{"writer": 0},
	}
	// One watchdog for the whole run, sized to b.N: a per-iteration
	// time.After would charge a timer allocation to every round trip.
	watchdog := time.NewTimer(time.Minute + time.Duration(b.N)*time.Millisecond)
	defer watchdog.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(peer.Addr(), req); err != nil {
			b.Fatalf("send: %v", err)
		}
		select {
		case <-done:
		case <-watchdog.C:
			b.Fatal("round trip timed out")
		}
	}
}

// BenchmarkLiveSustainedPublish is the throughput benchmark of the live
// path: parallel publishers drive replicas of a 5-node TCP loopback mesh,
// each Publish fanning its push out to the other four peers through the
// engine, the batched envelope encoding, and the per-connection writers.
// It reports sustained updates/sec alongside the usual ns/op and B/op.
func BenchmarkLiveSustainedPublish(b *testing.B) {
	const n = 5
	transports := make([]*TCPTransport, n)
	replicas := make([]*Replica, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
		r, err := NewReplica(Config{
			Fanout:      n - 1,
			PartialList: true,
			Seed:        int64(i) + 1,
			// No pull phase: the benchmark isolates the push fanout path.
			PullAttempts: 0,
		}, tr)
		if err != nil {
			b.Fatal(err)
		}
		replicas[i] = r
	}
	for i := range replicas {
		replicas[i].AddPeers(addrs...)
		replicas[i].Start()
		i := i
		defer func() {
			replicas[i].Stop()
			transports[i].Close()
		}()
	}

	value := []byte("sustained-throughput-payload")
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Spread publishers across the mesh so every replica both fans out
		// and ingests.
		r := replicas[int(seq.Add(1))%n]
		i := 0
		for pb.Next() {
			r.Publish(fmt.Sprintf("key-%d", i%64), value)
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkLiveParallelIngest measures one replica absorbing pushes from
// several TCP peers at once — the multi-core ingest path the sharded store
// and the pre-apply pipeline exist for. Four senders blast unique pushes
// (distinct origins, so their applies stripe across log shards) at one
// target; each connection gets its own reader goroutine, which applies to
// the lock-striped store before entering the engine's critical section. The
// sub-benchmarks pin GOMAXPROCS to 1, 2, and 4, and each reports sustained
// updates/s at the receiver.
func BenchmarkLiveParallelIngest(b *testing.B) {
	for _, procs := range []int{1, 2, 4} {
		// "=" keeps the proc count out of benchjson's GOMAXPROCS-suffix
		// trimming, so the three sub-benchmarks stay distinct in BENCH_*.json.
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			benchParallelIngest(b, 4)
		})
	}
}

func benchParallelIngest(b *testing.B, senders int) {
	tr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	var applied atomic.Int64
	done := make(chan struct{})
	total := int64(b.N)
	target, err := NewReplica(Config{
		// Pure ingest: no forwarding, no pulls, no acks.
		Fanout:       0,
		PullAttempts: 0,
		Seed:         1,
		Hooks: Hooks{
			OnApply: func(store.Update, store.ApplyResult, Source, int) {
				if applied.Add(1) == total {
					close(done)
				}
			},
		},
	}, tr)
	if err != nil {
		b.Fatal(err)
	}
	target.Start()
	defer target.Stop()

	outs := make([]*TCPTransport, senders)
	for s := range outs {
		out, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		outs[s] = out
		defer out.Close()
	}

	stamp := time.Unix(1_700_000_000, 0)
	watchdog := time.NewTimer(time.Minute + time.Duration(b.N)*time.Millisecond)
	defer watchdog.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for s := 0; s < senders; s++ {
		count := b.N / senders
		if s < b.N%senders {
			count++
		}
		go func(s, count int) {
			out := outs[s]
			origin := fmt.Sprintf("ingest-%d", s)
			rng := rand.New(rand.NewSource(int64(s) + 1))
			env := wire.Envelope{Kind: wire.KindPush, From: out.Addr()}
			for seq := 1; seq <= count; seq++ {
				env.Update = wire.Update{
					Origin:  origin,
					Seq:     uint64(seq),
					Key:     fmt.Sprintf("k-%d-%d", s, seq),
					Value:   []byte("parallel-ingest-payload"),
					Version: version.History{version.NewID(stamp, origin, rng)},
					Stamp:   stamp.UnixNano(),
				}
				if err := out.Send(tr.Addr(), env); err != nil {
					b.Errorf("send: %v", err)
					return
				}
			}
		}(s, count)
	}
	select {
	case <-done:
	case <-watchdog.C:
		b.Fatalf("ingest stalled at %d/%d applies", applied.Load(), b.N)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkLiveThrottledPeer measures slow-consumer isolation: a publisher
// replica fans every update out to three fast TCP peers and one slow sink
// that drains its socket at ~128KB/s (the "throttled" variant) or at full
// speed ("unthrottled"). The coalescing per-peer senders must keep the fast
// peers unaffected — their apply rate ("updates/s", measured at a fast peer)
// should match across the two variants — while the slow link's backlog
// merges into one pending delta instead of queueing, so the throttled
// variant also reports the publisher's peak pending sender memory
// ("pendingB/peak"), which stays O(live keys) however many updates the sink
// refused.
func BenchmarkLiveThrottledPeer(b *testing.B) {
	b.Run("unthrottled", func(b *testing.B) { benchThrottledPeer(b, false) })
	b.Run("throttled", func(b *testing.B) { benchThrottledPeer(b, true) })
}

func benchThrottledPeer(b *testing.B, throttled bool) {
	// The slow peer is a raw TCP sink, not a replica: it accepts the
	// publisher's connection and reads it in small sips, which is exactly
	// the kernel-buffer backpressure a wedged consumer exerts, without a
	// second replica's timing in the measurement.
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	go func() {
		for {
			c, err := sink.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					if throttled {
						time.Sleep(2 * time.Millisecond)
					}
				}
			}(c)
		}
	}()

	// One fast peer counts what it absorbs. The publisher's sender may
	// legitimately coalesce dominated same-key pushes while a link is busy,
	// so the benchmark cannot wait for exactly b.N applies; instead a
	// unique marker key published last signals that everything the sender
	// kept has been delivered (per-destination pending drains in deposit
	// order).
	const markerKey = "flush-marker"
	var applied, delivered atomic.Int64
	done := make(chan struct{})
	const fastPeers = 3
	fast := make([]*TCPTransport, fastPeers)
	for i := 0; i < fastPeers; i++ {
		tr, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		fast[i] = tr
		cfg := Config{
			// Pure receivers: no forwarding, no pulls.
			Fanout:       0,
			PullAttempts: 0,
			Seed:         int64(i) + 2,
		}
		if i == 0 {
			cfg.Hooks.OnApply = func(u store.Update, _ store.ApplyResult, _ Source, _ int) {
				n := applied.Add(1)
				if u.Key == markerKey {
					delivered.Store(n)
					close(done)
				}
			}
		}
		r, err := NewReplica(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		i := i
		defer func() {
			r.Stop()
			fast[i].Close()
		}()
	}

	pubTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	pub, err := NewReplica(Config{
		// Fanout == peer count: every push deterministically targets all
		// three fast peers and the sink.
		Fanout:       fastPeers + 1,
		PartialList:  true,
		Seed:         1,
		PullAttempts: 0,
	}, pubTr)
	if err != nil {
		b.Fatal(err)
	}
	peers := []string{sink.Addr().String()}
	for _, tr := range fast {
		peers = append(peers, tr.Addr())
	}
	pub.AddPeers(peers...)
	pub.Start()
	defer func() {
		pub.Stop()
		pubTr.Close()
	}()

	value := []byte("throttled-peer-payload")
	watchdog := time.NewTimer(time.Minute + time.Duration(b.N)*time.Millisecond)
	defer watchdog.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub.Publish(fmt.Sprintf("key-%d", i%64), value)
	}
	pub.Publish(markerKey, value)
	select {
	case <-done:
	case <-watchdog.C:
		b.Fatalf("fast peer stalled at %d applies before the marker", applied.Load())
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds(), "updates/s")
	if throttled {
		_, peak := pub.PendingSendBytes()
		b.ReportMetric(float64(peak), "pendingB/peak")
	}
}

// BenchmarkTCPSendBurst measures a one-way burst of push envelopes to a
// single peer, the shape of the push phase's fanout loop.
func BenchmarkTCPSendBurst(b *testing.B) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()

	received := make(chan struct{}, 1024)
	peer.SetHandler(func(wire.Envelope) { received <- struct{}{} })

	env := wire.Envelope{
		Kind: wire.KindPush, From: a.Addr(),
		Update: wire.Update{Origin: "writer", Seq: 1, Key: "key", Value: []byte("value")},
		RF:     []string{"peer-1", "peer-2", "peer-3"},
		T:      1,
	}
	watchdog := time.NewTimer(time.Minute + time.Duration(b.N)*time.Millisecond)
	defer watchdog.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(peer.Addr(), env); err != nil {
			b.Fatalf("send: %v", err)
		}
		select {
		case <-received:
		case <-watchdog.C:
			b.Fatal("delivery timed out")
		}
	}
}
