package live

// Benchmarks for the live wire path. The round-trip benchmark is the
// transport-level hot path: one envelope to a peer and the peer's reply —
// the shape of every push/ack and pull-request/pull-response exchange.

import (
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/wire"
)

// BenchmarkTCPRoundTrip measures one request envelope sent to a peer plus the
// peer's response envelope, over real TCP on loopback. With the pooled
// streaming transport both directions reuse an established connection and a
// warm gob codec; the pre-pool transport paid a dial plus a cold encoder per
// envelope.
func BenchmarkTCPRoundTrip(b *testing.B) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()

	// The peer answers every pull request with a small pull response; the
	// requester signals each completed round trip.
	done := make(chan struct{}, 1)
	peer.SetHandler(func(env wire.Envelope) {
		if env.Kind == wire.KindPullReq {
			_ = peer.Send(env.From, wire.Envelope{
				Kind: wire.KindPullResp, From: peer.Addr(),
				Updates: []wire.Update{{
					Origin: "writer", Seq: 1, Key: "key", Value: []byte("value"),
				}},
			})
		}
	})
	a.SetHandler(func(env wire.Envelope) {
		if env.Kind == wire.KindPullResp {
			done <- struct{}{}
		}
	})

	req := wire.Envelope{
		Kind: wire.KindPullReq, From: a.Addr(),
		Clock: map[string]uint64{"writer": 0},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(peer.Addr(), req); err != nil {
			b.Fatalf("send: %v", err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			b.Fatal("round trip timed out")
		}
	}
}

// BenchmarkTCPSendBurst measures a one-way burst of push envelopes to a
// single peer, the shape of the push phase's fanout loop.
func BenchmarkTCPSendBurst(b *testing.B) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()

	received := make(chan struct{}, 1024)
	peer.SetHandler(func(wire.Envelope) { received <- struct{}{} })

	env := wire.Envelope{
		Kind: wire.KindPush, From: a.Addr(),
		Update: wire.Update{Origin: "writer", Seq: 1, Key: "key", Value: []byte("value")},
		RF:     []string{"peer-1", "peer-2", "peer-3"},
		T:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(peer.Addr(), env); err != nil {
			b.Fatalf("send: %v", err)
		}
		select {
		case <-received:
		case <-time.After(5 * time.Second):
			b.Fatal("delivery timed out")
		}
	}
}
