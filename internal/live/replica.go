package live

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pgossip/update/internal/engine"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/wal"
	"github.com/p2pgossip/update/internal/wire"
)

// cryptoSeed draws a PRNG seed from the system entropy source. Unlike the
// classic time.Now().UnixNano() fallback it cannot collide across replicas
// created in the same instant (coarse clocks, VM snapshots, mass restarts).
func cryptoSeed() int64 { return store.CryptoSeed() }

// Config parameterises a live replica.
type Config struct {
	// Fanout is the number of peers each push targets (the paper's R·f_r).
	Fanout int
	// NewPF builds the per-update forwarding-probability schedule. Nil
	// means PF(t) = 1.
	NewPF func() pf.Func
	// PartialList enables the flooding-list optimisation.
	PartialList bool
	// ListMax caps the number of addresses carried per push (the live
	// analogue of L_thr·R); 0 means unlimited.
	ListMax int
	// PullAttempts is the number of peers contacted per pull batch.
	PullAttempts int
	// PullInterval is the period of background anti-entropy pulls; 0
	// disables periodic pulling (the eager pull at Start still happens
	// unless PullAttempts is 0).
	PullInterval time.Duration
	// Acks enables the §6 acknowledgement optimisation: receivers ack the
	// first copy of each update; senders prefer acking peers and skip
	// suspected-offline ones.
	Acks bool
	// AckTimeout is how long to wait for an ack before suspecting a peer
	// offline; 0 means 3s.
	AckTimeout time.Duration
	// SuspectTTL is how long suspected peers are skipped; 0 means 1m.
	SuspectTTL time.Duration
	// SnapshotCatchUp is the delta-size threshold above which a pull request
	// is answered with one snapshot frame instead of an entry-by-entry delta;
	// 0 disables the size trigger (compaction gaps still force snapshots).
	SnapshotCatchUp int
	// FrontierTTL bounds how long a peer's last pull clock participates in
	// the stable compaction frontier; 0 means 10 minutes.
	FrontierTTL time.Duration
	// JanitorInterval is the period of the background janitor that GCs
	// expired tombstones, expires TTL'd keys, and compacts the update log up
	// to the stable frontier; 0 disables the janitor.
	JanitorInterval time.Duration
	// TombstoneRetention is how long tombstones outlive their delete before
	// the janitor collects them; 0 selects store.DefaultTombstoneRetention.
	TombstoneRetention time.Duration
	// KeyTTL expires live revisions whose write stamp is at least this old,
	// converting them to tombstones on the janitor's schedule; 0 disables
	// expiry. The decision depends only on the replicated stamp and the
	// shared policy, so replicas expire deterministically.
	KeyTTL time.Duration
	// Seed seeds the replica's random source; 0 draws a seed from
	// crypto/rand so concurrently created replicas cannot collide.
	Seed int64
	// Shards is the lock-stripe count of the replica's sharded store; 0
	// selects store.DefaultShards, other values round up to a power of two.
	// More shards let more connection readers apply updates concurrently.
	Shards int
	// Hooks observes protocol events (applies, acks, suspicions). All
	// callbacks are optional; see the Hooks type for the contract.
	Hooks Hooks
	// Metrics receives protocol counters; nil disables instrumentation.
	Metrics Metrics
	// WAL, when non-nil, makes applied state crash-consistent: every update
	// the store accepts (local publish and remote ingest) is appended to
	// the log before the apply is acknowledged, and RecoverWAL restores
	// checkpoint + surviving records on restart. The replica does not own
	// the log's lifecycle — the caller opens and closes it.
	WAL *wal.Log
	// WALCheckpointBytes is the resident log size beyond which the janitor
	// checkpoints (snapshot + prune); 0 means DefaultWALCheckpointBytes.
	WALCheckpointBytes int64
}

// DefaultReplicaConfig returns a production-ish configuration: fanout 5,
// PF(t)=0.9^t, partial lists, eager + periodic pull, and a minutely janitor
// keeping resident state bounded.
func DefaultReplicaConfig() Config {
	return Config{
		Fanout:          5,
		NewPF:           func() pf.Func { return pf.Geometric{Base: 0.9} },
		PartialList:     true,
		PullAttempts:    3,
		PullInterval:    30 * time.Second,
		JanitorInterval: time.Minute,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Fanout < 0:
		return fmt.Errorf("live: fanout %d negative", c.Fanout)
	case c.ListMax < 0:
		return fmt.Errorf("live: list max %d negative", c.ListMax)
	case c.PullAttempts < 0:
		return fmt.Errorf("live: pull attempts %d negative", c.PullAttempts)
	case c.PullInterval < 0:
		return fmt.Errorf("live: pull interval %v negative", c.PullInterval)
	case c.AckTimeout < 0:
		return fmt.Errorf("live: ack timeout %v negative", c.AckTimeout)
	case c.SuspectTTL < 0:
		return fmt.Errorf("live: suspect ttl %v negative", c.SuspectTTL)
	case c.SnapshotCatchUp < 0:
		return fmt.Errorf("live: snapshot catch-up threshold %d negative", c.SnapshotCatchUp)
	case c.FrontierTTL < 0:
		return fmt.Errorf("live: frontier ttl %v negative", c.FrontierTTL)
	case c.JanitorInterval < 0:
		return fmt.Errorf("live: janitor interval %v negative", c.JanitorInterval)
	case c.TombstoneRetention < 0:
		return fmt.Errorf("live: tombstone retention %v negative", c.TombstoneRetention)
	case c.KeyTTL < 0:
		return fmt.Errorf("live: key ttl %v negative", c.KeyTTL)
	case c.Shards < 0:
		return fmt.Errorf("live: shards %d negative", c.Shards)
	case c.WALCheckpointBytes < 0:
		return fmt.Errorf("live: wal checkpoint threshold %d negative", c.WALCheckpointBytes)
	default:
		return nil
	}
}

// Replica is a live protocol node. Create with NewReplica, then Start; Stop
// releases the background puller. All methods are safe for concurrent use.
//
// Replica is a thin adapter: the §4/§6 state machine lives in
// internal/engine, shared verbatim with the simulator. This type serialises
// engine access behind a mutex, converts engine messages to wire envelopes,
// and — because transports deliver synchronously — queues outbound sends and
// hook events during each engine call and flushes them after releasing the
// lock, so no transport or user callback ever runs under the mutex.
type Replica struct {
	cfg       Config
	transport Transport
	addr      string
	st        store.Backend
	writer    *store.Writer

	mu      sync.Mutex
	eng     *engine.Engine[string]
	rng     *rand.Rand
	outbox  []outboundBatch
	pending []protoEvent

	// coalesce selects the per-peer coalescing sender path (sender.go). It
	// is on exactly when the transport can accept pre-encoded frames —
	// i.e. on TCP — and off on the synchronous in-memory transports, whose
	// direct delivery the cross-validation tests depend on. The engine's
	// DeferPullRender follows it: with coalescing on, pull responses leave
	// the engine as unrendered intents and are rendered at send time.
	coalesce bool
	// sendMu guards the sender registry. sendStopped mirrors the replica
	// stopping so no sender goroutine can be registered after Stop begins
	// waiting on bg.
	sendMu      sync.Mutex
	senders     map[string]*peerSender
	sendStopped bool
	// pendingBytes is the estimated footprint of every destination's
	// pending delta; pendingPeak is its high-water mark.
	pendingBytes atomic.Int64
	pendingPeak  atomic.Int64

	stop chan struct{}
	bg   sync.WaitGroup
	once sync.Once
}

// outboundBatch is one queued transport send: one engine message bound for
// one or more destinations, converted to wire form after the replica lock
// is released. The engine's push fanout emits the same message to k peers
// back to back; the endpoint coalesces those into a single batch so the
// flush encodes the envelope once and reuses the bytes for every
// destination (via FrameSender when the transport offers it).
type outboundBatch struct {
	tos []string
	msg engine.Message[string]
}

// protoEvent is one queued observability event, fired after the engine call
// that produced it releases the replica lock.
type protoEvent struct {
	kind     protoEventKind
	u        store.Update
	res      store.ApplyResult
	src      Source
	branches int
	peer     string
}

type protoEventKind int

const (
	evApply protoEventKind = iota + 1
	evDuplicate
	evAck
	evSuspect
)

// liveEndpoint adapts a Replica to the engine's Endpoint: wall-clock
// nanoseconds are the tick unit, and sends are queued on the outbox for the
// post-unlock flush.
type liveEndpoint struct{ r *Replica }

func (ep liveEndpoint) Self() string     { return ep.r.addr }
func (ep liveEndpoint) Now() int64       { return time.Now().UnixNano() }
func (ep liveEndpoint) Rand() *rand.Rand { return ep.r.rng }
func (ep liveEndpoint) Send(to string, m engine.Message[string]) {
	r := ep.r
	if m.Kind == engine.KindPush && len(r.outbox) > 0 {
		// The engine's sendPushes loop emits one identical message per
		// target: same update, same round counter, and the same carried-list
		// slice (compared by identity — the engine renders it once per
		// batch). Fold consecutive targets into the previous batch.
		last := &r.outbox[len(r.outbox)-1]
		if last.msg.Kind == engine.KindPush && last.msg.T == m.T &&
			last.msg.Update.Origin == m.Update.Origin &&
			last.msg.Update.Seq == m.Update.Seq &&
			sameSlice(last.msg.RF, m.RF) {
			last.tos = append(last.tos, to)
			return
		}
	}
	r.outbox = append(r.outbox, outboundBatch{tos: []string{to}, msg: m})
}

// sameSlice reports whether two slices are the same view of the same
// backing array (identity, not element comparison).
func sameSlice(a, b []string) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// NewReplica builds a replica on the given transport. The transport's
// handler is claimed by the replica.
func NewReplica(cfg Config, transport Transport) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if transport == nil {
		return nil, fmt.Errorf("live: nil transport")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cryptoSeed()
	}
	retain := cfg.TombstoneRetention
	if retain == 0 {
		retain = store.DefaultTombstoneRetention
	}
	_, framed := transport.(FrameSender)
	r := &Replica{
		cfg:       cfg,
		transport: transport,
		addr:      transport.Addr(),
		st:        store.NewShardedWithRetention(cfg.Shards, retain),
		rng:       rand.New(rand.NewSource(seed)),
		coalesce:  framed,
		senders:   make(map[string]*peerSender),
		stop:      make(chan struct{}),
	}
	w, err := store.NewWriter(r.addr, r.st, time.Now,
		rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, err
	}
	r.writer = w
	eng, err := engine.New(engine.Config[string]{
		Fanout:          float64(cfg.Fanout),
		NewPF:           cfg.NewPF,
		PartialList:     cfg.PartialList,
		ListMax:         cfg.ListMax,
		TruncatePolicy:  replicalist.DropRandom,
		PullAttempts:    cfg.PullAttempts,
		Acks:            cfg.Acks,
		AckTimeout:      cfg.ackTimeout().Nanoseconds(),
		SuspectTTL:      cfg.suspectTTL().Nanoseconds(),
		SnapshotCatchUp: cfg.SnapshotCatchUp,
		FrontierTTL:     cfg.frontierTTL().Nanoseconds(),
		LazySweep:       true,
		QueryLocalVoice: true,
		DeferPullRender: r.coalesce,
		ValidID:         func(addr string) bool { return addr != "" },
		Hooks: engine.Hooks[string]{
			OnApply: func(u store.Update, res store.ApplyResult, src Source, branches int) {
				r.pending = append(r.pending, protoEvent{
					kind: evApply, u: u, res: res, src: src, branches: branches,
				})
			},
			OnDuplicate: func(u store.Update, branches int) {
				r.pending = append(r.pending, protoEvent{
					kind: evDuplicate, u: u, branches: branches,
				})
			},
			OnAck: func(peer string) {
				r.pending = append(r.pending, protoEvent{kind: evAck, peer: peer})
			},
			OnSuspect: func(peer string) {
				r.pending = append(r.pending, protoEvent{kind: evSuspect, peer: peer})
			},
		},
	}, liveEndpoint{r}, r.st, w)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	r.eng = eng
	transport.SetHandler(r.handle)
	return r, nil
}

// run serialises one engine call and then flushes the sends and events it
// queued, outside the lock.
func (r *Replica) run(f func(e *engine.Engine[string])) {
	r.mu.Lock()
	f(r.eng)
	events := r.pending
	r.pending = nil
	out := r.outbox
	r.outbox = nil
	r.mu.Unlock()
	r.flush(events, out)
}

func (r *Replica) flush(events []protoEvent, out []outboundBatch) {
	for _, ev := range events {
		switch ev.kind {
		case evApply:
			r.fireApply(ev.u, ev.res, ev.src, ev.branches)
		case evDuplicate:
			r.inc(MetricPushDuplicate)
			r.fireApply(ev.u, store.Duplicate, SourcePush, ev.branches)
		case evAck:
			if r.cfg.Hooks.OnAck != nil {
				r.cfg.Hooks.OnAck(ev.peer)
			}
		case evSuspect:
			r.inc(MetricSuspects)
			if r.cfg.Hooks.OnSuspect != nil {
				r.cfg.Hooks.OnSuspect(ev.peer)
			}
		}
	}
	if r.coalesce {
		r.depositOut(out)
		return
	}
	for i := range out {
		b := &out[i]
		env := envelopeFromEngine(r.addr, b.msg)
		if r.cfg.Metrics != nil {
			var name string
			switch env.Kind {
			case wire.KindPush:
				name = MetricPushSent
			case wire.KindPullReq:
				name = MetricPullRequests
			case wire.KindPullResp:
				name = MetricPullServed
			case wire.KindAck:
				name = MetricAckSent
			case wire.KindQuery:
				name = MetricQuerySent
			case wire.KindSnapshot:
				name = MetricSnapshotServed
			}
			if name != "" {
				r.cfg.Metrics.Add(name, float64(len(b.tos)))
			}
		}
		// Offline targets are the normal case; send errors are dropped.
		for _, to := range b.tos {
			_ = r.transport.Send(to, env)
		}
	}
}

// depositOut routes one flushed outbox into the per-peer coalescing
// senders: pushes, acks, pull requests, and pull-response intents merge by
// class (sender.go); query traffic, which cannot merge, rides along as
// rendered envelopes. Metrics for these sends fire at transmission time in
// the sender, not here — a coalesced-away push was never sent.
func (r *Replica) depositOut(out []outboundBatch) {
	for i := range out {
		b := &out[i]
		switch b.msg.Kind {
		case engine.KindPush:
			u, t := b.msg.Update, b.msg.T
			for _, to := range b.tos {
				r.depositTo(to, func(p *pendingDelta) (int, int, int) {
					c, d := p.addPush(u, t)
					return c, 0, d
				})
			}
		case engine.KindAck:
			ref := b.msg.UpdateRef
			for _, to := range b.tos {
				r.depositTo(to, func(p *pendingDelta) (int, int, int) {
					c, d := p.addAck(ref)
					return c, 0, d
				})
			}
		case engine.KindPullReq:
			for _, to := range b.tos {
				r.depositTo(to, func(p *pendingDelta) (int, int, int) {
					c, d := p.addPullReq()
					return c, 0, d
				})
			}
		case engine.KindPullResp:
			if b.msg.Clock != nil && b.msg.Updates == nil {
				// The engine's deferred intent: requester clock plus peer
				// sample, rendered at send time.
				clock, peers := b.msg.Clock, b.msg.Peers
				for _, to := range b.tos {
					r.depositTo(to, func(p *pendingDelta) (int, int, int) {
						c, d := p.addPullResp(clock, peers)
						return c, 0, d
					})
				}
				break
			}
			fallthrough
		default:
			env := envelopeFromEngine(r.addr, b.msg)
			for _, to := range b.tos {
				r.depositTo(to, func(p *pendingDelta) (int, int, int) {
					dropped, d := p.addAux(env)
					return 0, dropped, d
				})
			}
		}
	}
}

// depositTo merges one deposit into the destination's sender, creating it
// on demand. A sender caught mid-retire rejects the deposit; the loop then
// observes a fresh registry state and retries, so deposits are never lost
// to the idle-retire race. A nil sender means the replica is stopping and
// the deposit is intentionally dropped.
func (r *Replica) depositTo(to string, f func(*pendingDelta) (coalesced, dropped, delta int)) {
	for {
		s := r.senderFor(to)
		if s == nil {
			return
		}
		if s.deposit(f) {
			return
		}
	}
}

// senderFor returns the live sender for a destination, spawning one if
// needed. Returns nil once the replica is stopping — the registry is frozen
// so no goroutine joins bg after Stop starts waiting on it.
func (r *Replica) senderFor(to string) *peerSender {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	if r.sendStopped {
		return nil
	}
	s, ok := r.senders[to]
	if !ok {
		s = newPeerSender(r, to)
		r.senders[to] = s
		r.bg.Add(1)
		go s.run()
	}
	return s
}

// notePendingBytes moves the pending-memory gauge and maintains its
// high-water mark.
func (r *Replica) notePendingBytes(delta int64) {
	cur := r.pendingBytes.Add(delta)
	for {
		peak := r.pendingPeak.Load()
		if cur <= peak || r.pendingPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// PendingSendBytes reports the estimated bytes currently held in
// per-destination pending deltas and the high-water mark since the replica
// started. With coalescing senders this is bounded by O(live state) per
// destination regardless of traffic volume; the throttled-peer benchmark
// and the slow-consumer tests assert exactly that.
func (r *Replica) PendingSendBytes() (current, peak int64) {
	return r.pendingBytes.Load(), r.pendingPeak.Load()
}

// handle is the transport's inbound callback. The conversion from wire to
// engine form — and, for update-carrying messages, the store apply itself —
// runs here, on the connection-reader goroutine, outside the replica mutex;
// only the engine's protocol bookkeeping (r.run) is serialised. The sharded
// store stripes its locks by origin and key, so readers draining different
// peers apply concurrently and the critical section shrinks to membership,
// flooding lists, and the forwarding decision. The transport decodes frames
// into reused envelope structs, so container fields must be consumed before
// returning; everything handed to the engine that outlives this call (update
// values, version histories, strings) is decoder-fresh.
func (r *Replica) handle(env wire.Envelope) {
	switch env.Kind {
	case wire.KindPush:
		u := env.Update.ToStore()
		r.inc(MetricPushReceived)
		pre := r.preApply(u)
		r.run(func(e *engine.Engine[string]) {
			e.HandlePushApplied(env.From, engine.Message[string]{
				Kind: engine.KindPush, Update: u, RF: env.RF, T: env.T,
			}, pre)
		})
	case wire.KindPullReq:
		r.run(func(e *engine.Engine[string]) {
			e.Handle(env.From, engine.Message[string]{
				Kind: engine.KindPullReq, Clock: env.Clock,
			})
		})
	case wire.KindPullResp:
		updates := make([]store.Update, len(env.Updates))
		pre := make([]engine.Applied, len(env.Updates))
		for i := range env.Updates {
			updates[i] = env.Updates[i].ToStore()
			res, branches := r.st.ApplyObserved(updates[i])
			pre[i] = engine.Applied{Res: res, Branches: branches}
			if res != store.Duplicate {
				_ = r.walAppend(updates[i])
			}
		}
		r.run(func(e *engine.Engine[string]) {
			e.HandlePullRespApplied(env.From, engine.Message[string]{
				Kind: engine.KindPullResp, Updates: updates, Peers: env.KnownPeers,
			}, pre)
		})
	case wire.KindAck:
		r.inc(MetricAckReceived)
		r.run(func(e *engine.Engine[string]) {
			e.Handle(env.From, engine.Message[string]{
				Kind: engine.KindAck, UpdateRef: env.UpdateRef,
			})
		})
	case wire.KindQuery:
		r.inc(MetricQueryServed)
		r.run(func(e *engine.Engine[string]) {
			e.Handle(env.From, engine.Message[string]{
				Kind: engine.KindQuery, QID: env.QID, Key: env.Key,
			})
		})
	case wire.KindQueryResp:
		r.run(func(e *engine.Engine[string]) {
			e.Handle(env.From, engine.Message[string]{
				Kind: engine.KindQueryResp, QID: env.QID, Key: env.Key,
				Found: env.Found, Value: env.Value, Version: env.Version,
				Confident: env.Confident,
			})
		})
	case wire.KindSnapshot:
		// The whole catch-up — decode, apply, frontier adoption — runs on the
		// reader goroutine; only the engine bookkeeping is serialised. Apply
		// order: updates first, then the watermark, so entries the sender
		// retained below its watermark are not rejected as duplicates.
		updates, wm, err := store.DecodeSnapshot(bytes.NewReader(env.Snapshot))
		if err != nil {
			return
		}
		r.inc(MetricSnapshotCatchups)
		refs := make([]store.Ref, len(updates))
		for i, u := range updates {
			res, branches := r.st.ApplyObserved(u)
			refs[i] = u.Ref()
			r.fireApply(u, res, SourcePull, branches)
			if res != store.Duplicate {
				_ = r.walAppend(u)
			}
		}
		r.st.AdoptFrontier(wm)
		r.walAppendFrontier(wm)
		// The snapshot may carry our own origin past the writer's counter
		// (restart after disk loss); never reuse sequence numbers.
		r.writer.Resync()
		r.run(func(e *engine.Engine[string]) {
			e.HandleSnapshotApplied(env.From, engine.Message[string]{
				Kind: engine.KindSnapshot, Peers: env.KnownPeers,
			}, refs)
		})
	}
}

// envelopeFromEngine converts an engine message to its wire form.
func envelopeFromEngine(from string, m engine.Message[string]) wire.Envelope {
	env := wire.Envelope{From: from}
	switch m.Kind {
	case engine.KindPush:
		env.Kind = wire.KindPush
		env.Update = wire.FromStore(m.Update)
		env.RF = m.RF
		env.T = m.T
	case engine.KindPullReq:
		env.Kind = wire.KindPullReq
		env.Clock = m.Clock
	case engine.KindPullResp:
		env.Kind = wire.KindPullResp
		env.Updates = make([]wire.Update, len(m.Updates))
		for i, u := range m.Updates {
			env.Updates[i] = wire.FromStore(u)
		}
		env.KnownPeers = m.Peers
	case engine.KindAck:
		env.Kind = wire.KindAck
		env.UpdateRef = m.UpdateRef
	case engine.KindQuery:
		env.Kind = wire.KindQuery
		env.QID = m.QID
		env.Key = m.Key
	case engine.KindQueryResp:
		env.Kind = wire.KindQueryResp
		env.QID = m.QID
		env.Key = m.Key
		env.Found = m.Found
		env.Value = m.Value
		env.Confident = m.Confident
		env.Version = m.Version
	case engine.KindSnapshot:
		env.Kind = wire.KindSnapshot
		env.Snapshot = m.Snapshot
		env.KnownPeers = m.Peers
	}
	return env
}

// preApply offers one pushed update to the store on the calling (connection
// reader) goroutine, before the engine's critical section. Updates the store
// has already logged skip the write entirely — the same short-circuit the
// engine's duplicate path provides, done here against the origin's log shard
// so duplicate floods never contend on item shards.
func (r *Replica) preApply(u store.Update) engine.Applied {
	if r.st.Seen(u.Ref()) {
		return engine.Applied{Res: store.Duplicate, Branches: r.st.BranchCount(u.Key)}
	}
	res, branches := r.st.ApplyObserved(u)
	if res != store.Duplicate {
		// Log before the engine acknowledges the push. The store apply
		// precedes the log record, so a checkpoint snapshot taken later
		// always covers every record already in sealed segments.
		_ = r.walAppend(u)
	}
	return engine.Applied{Res: res, Branches: branches}
}

// Addr returns the replica's address.
func (r *Replica) Addr() string { return r.addr }

// Store returns the replica's data store.
func (r *Replica) Store() store.Backend { return r.st }

// AddPeers teaches the replica about other replica addresses. Empty
// addresses and the replica's own are ignored.
func (r *Replica) AddPeers(addrs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range addrs {
		r.eng.Learn(a)
	}
}

// Peers returns a copy of the known replica addresses.
func (r *Replica) Peers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng.KnownPeers()
}

// PeerCount returns the number of known replica addresses without copying
// the list.
func (r *Replica) PeerCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng.KnownCount()
}

// HasUpdate reports whether the replica has processed the update with the
// given ID (store.Update.ID()).
func (r *Replica) HasUpdate(updateID string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng.HasUpdate(updateID)
}

// Duplicates returns the duplicate-push count observed for an update.
func (r *Replica) Duplicates(updateID string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng.Duplicates(updateID)
}

// Start launches the background puller and janitor and performs the
// coming-online pull.
func (r *Replica) Start() {
	if r.cfg.PullInterval > 0 {
		r.bg.Add(1)
		go r.pullLoop()
	}
	if r.cfg.JanitorInterval > 0 {
		r.bg.Add(1)
		go r.janitorLoop()
	}
	if r.cfg.PullAttempts > 0 {
		r.PullNow()
	}
}

// Stop terminates the background goroutines — puller, janitor, and every
// per-peer sender, whose undelivered pending deltas are discarded — and
// waits for them to exit. It is idempotent.
func (r *Replica) Stop() {
	r.once.Do(func() {
		// Freeze the sender registry before signalling: nothing can call
		// bg.Add once sendStopped is set, so the Wait below is race-free.
		r.sendMu.Lock()
		r.sendStopped = true
		r.sendMu.Unlock()
		close(r.stop)
	})
	r.bg.Wait()
}

func (r *Replica) pullLoop() {
	defer r.bg.Done()
	ticker := time.NewTicker(r.cfg.PullInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if r.cfg.PullAttempts > 0 {
				r.PullNow()
			}
		case <-r.stop:
			return
		}
	}
}

func (r *Replica) janitorLoop() {
	defer r.bg.Done()
	ticker := time.NewTicker(r.cfg.JanitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.RunJanitor()
		case <-r.stop:
			return
		}
	}
}

// RunJanitor performs one maintenance pass: expire TTL'd keys into
// tombstones, collect tombstones past retention, and compact the update log
// up to the stable frontier (the pointwise-minimum clock across recently
// pulling peers). The janitor ticker calls it on JanitorInterval; tests and
// operators may call it directly.
func (r *Replica) RunJanitor() {
	now := time.Now()
	if r.cfg.KeyTTL > 0 {
		if n := r.st.ExpireTTL(now, r.cfg.KeyTTL); n > 0 {
			r.add(MetricKeysExpired, n)
		}
	}
	if n := r.st.GCTombstones(now); n > 0 {
		r.add(MetricTombstonesGC, n)
	}
	r.mu.Lock()
	frontier := r.eng.StableFrontier()
	r.mu.Unlock()
	if frontier != nil {
		if n := r.st.CompactLog(frontier); n > 0 {
			r.add(MetricLogCompacted, n)
		}
	}
	r.maybeCheckpointWAL()
}

// Publish creates and pushes an update for key. The write itself — sequence
// assignment, version extension, store apply — runs on the calling goroutine
// through the self-serialising Writer and the lock-striped store; only the
// push initiation enters the engine's critical section. With a WAL
// configured the update is logged (and, policy permitting, fsynced) before
// Publish returns; a logging failure returns the update with an error — the
// write is applied locally but not durable, and is not pushed.
func (r *Replica) Publish(key string, value []byte) (store.Update, error) {
	u, branches := r.writer.PutObserved(key, value)
	if err := r.walAppend(u); err != nil {
		return u, err
	}
	r.run(func(e *engine.Engine[string]) { e.PublishApplied(u, branches) })
	return u, nil
}

// Delete creates and pushes a tombstone for key. The durability contract
// matches Publish.
func (r *Replica) Delete(key string) (store.Update, error) {
	u, branches := r.writer.DeleteObserved(key)
	if err := r.walAppend(u); err != nil {
		return u, err
	}
	r.run(func(e *engine.Engine[string]) { e.PublishApplied(u, branches) })
	return u, nil
}

// Get reads the winning revision for key from the local store.
func (r *Replica) Get(key string) (store.Revision, bool) { return r.st.Get(key) }

// PullNow performs one pull batch immediately.
func (r *Replica) PullNow() {
	r.run(func(e *engine.Engine[string]) { e.PullNow() })
}

// WriteSnapshot serialises the replica's full update log to w, for restarts.
func (r *Replica) WriteSnapshot(w io.Writer) error {
	return r.st.WriteSnapshot(w)
}

// RestoreSnapshot replaces the replica's state with a snapshot previously
// produced by WriteSnapshot (on this or another replica). The writer's
// sequence counter advances so new updates never reuse sequence numbers.
// Call before Start.
func (r *Replica) RestoreSnapshot(rd io.Reader) error {
	if err := r.st.RestoreSnapshot(rd); err != nil {
		return err
	}
	r.writer.Resync()
	return nil
}
