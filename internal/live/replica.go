package live

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/wire"
)

// cryptoSeed draws a PRNG seed from the system entropy source. Unlike the
// classic time.Now().UnixNano() fallback it cannot collide across replicas
// created in the same instant (coarse clocks, VM snapshots, mass restarts).
func cryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable on supported
		// platforms; the timestamp keeps the replica functional.
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// Config parameterises a live replica.
type Config struct {
	// Fanout is the number of peers each push targets (the paper's R·f_r).
	Fanout int
	// NewPF builds the per-update forwarding-probability schedule. Nil
	// means PF(t) = 1.
	NewPF func() pf.Func
	// PartialList enables the flooding-list optimisation.
	PartialList bool
	// ListMax caps the number of addresses carried per push (the live
	// analogue of L_thr·R); 0 means unlimited.
	ListMax int
	// PullAttempts is the number of peers contacted per pull batch.
	PullAttempts int
	// PullInterval is the period of background anti-entropy pulls; 0
	// disables periodic pulling (the eager pull at Start still happens
	// unless PullAttempts is 0).
	PullInterval time.Duration
	// Acks enables the §6 acknowledgement optimisation: receivers ack the
	// first copy of each update; senders prefer acking peers and skip
	// suspected-offline ones.
	Acks bool
	// AckTimeout is how long to wait for an ack before suspecting a peer
	// offline; 0 means 3s.
	AckTimeout time.Duration
	// SuspectTTL is how long suspected peers are skipped; 0 means 1m.
	SuspectTTL time.Duration
	// Seed seeds the replica's random source; 0 draws a seed from
	// crypto/rand so concurrently created replicas cannot collide.
	Seed int64
	// Hooks observes protocol events (applies, acks, suspicions). All
	// callbacks are optional; see the Hooks type for the contract.
	Hooks Hooks
	// Metrics receives protocol counters; nil disables instrumentation.
	Metrics Metrics
}

// DefaultReplicaConfig returns a production-ish configuration: fanout 5,
// PF(t)=0.9^t, partial lists, eager + periodic pull.
func DefaultReplicaConfig() Config {
	return Config{
		Fanout:       5,
		NewPF:        func() pf.Func { return pf.Geometric{Base: 0.9} },
		PartialList:  true,
		PullAttempts: 3,
		PullInterval: 30 * time.Second,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Fanout < 0:
		return fmt.Errorf("live: fanout %d negative", c.Fanout)
	case c.ListMax < 0:
		return fmt.Errorf("live: list max %d negative", c.ListMax)
	case c.PullAttempts < 0:
		return fmt.Errorf("live: pull attempts %d negative", c.PullAttempts)
	case c.PullInterval < 0:
		return fmt.Errorf("live: pull interval %v negative", c.PullInterval)
	case c.AckTimeout < 0:
		return fmt.Errorf("live: ack timeout %v negative", c.AckTimeout)
	case c.SuspectTTL < 0:
		return fmt.Errorf("live: suspect ttl %v negative", c.SuspectTTL)
	default:
		return nil
	}
}

// replicaState is per-update bookkeeping (mirrors gossip.updateState with
// addresses instead of indices).
type replicaState struct {
	rf     map[string]struct{}
	rfList []string
	pfn    pf.Func
}

func (s *replicaState) add(addr string) {
	if _, ok := s.rf[addr]; ok {
		return
	}
	s.rf[addr] = struct{}{}
	s.rfList = append(s.rfList, addr)
}

// Replica is a live protocol node. Create with NewReplica, then Start; Stop
// releases the background puller. All methods are safe for concurrent use.
type Replica struct {
	cfg       Config
	transport Transport
	st        *store.Store
	writer    *store.Writer

	mu     sync.Mutex
	peers  map[string]struct{}
	order  []string
	states map[string]*replicaState
	rng    *rand.Rand

	// §6 ack optimisation state (only used when cfg.Acks).
	ackedBy     map[string]time.Time
	suspects    map[string]time.Time
	awaitingAck map[string]time.Time

	// §4.4 query state.
	queries      map[int64]*liveQuery
	queryCounter int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewReplica builds a replica on the given transport. The transport's
// handler is claimed by the replica.
func NewReplica(cfg Config, transport Transport) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if transport == nil {
		return nil, fmt.Errorf("live: nil transport")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cryptoSeed()
	}
	r := &Replica{
		cfg:         cfg,
		transport:   transport,
		st:          store.New(),
		peers:       make(map[string]struct{}),
		states:      make(map[string]*replicaState),
		rng:         rand.New(rand.NewSource(seed)),
		ackedBy:     make(map[string]time.Time),
		suspects:    make(map[string]time.Time),
		awaitingAck: make(map[string]time.Time),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	w, err := store.NewWriter(transport.Addr(), r.st, time.Now,
		rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, err
	}
	r.writer = w
	transport.SetHandler(r.handle)
	return r, nil
}

// Addr returns the replica's address.
func (r *Replica) Addr() string { return r.transport.Addr() }

// Store returns the replica's data store.
func (r *Replica) Store() *store.Store { return r.st }

// AddPeers teaches the replica about other replica addresses.
func (r *Replica) AddPeers(addrs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range addrs {
		r.learnLocked(a)
	}
}

func (r *Replica) learnLocked(addr string) {
	if addr == "" || addr == r.transport.Addr() {
		return
	}
	if _, ok := r.peers[addr]; ok {
		return
	}
	r.peers[addr] = struct{}{}
	r.order = append(r.order, addr)
}

// Peers returns a copy of the known replica addresses.
func (r *Replica) Peers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// PeerCount returns the number of known replica addresses without copying
// the list.
func (r *Replica) PeerCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Start launches the background puller and performs the coming-online pull.
func (r *Replica) Start() {
	go r.pullLoop()
	if r.cfg.PullAttempts > 0 {
		r.PullNow()
	}
}

// Stop terminates the background puller and waits for it to exit. It is
// idempotent.
func (r *Replica) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Replica) pullLoop() {
	defer close(r.done)
	if r.cfg.PullInterval <= 0 {
		<-r.stop
		return
	}
	ticker := time.NewTicker(r.cfg.PullInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if r.cfg.PullAttempts > 0 {
				r.PullNow()
			}
		case <-r.stop:
			return
		}
	}
}

// Publish creates and pushes an update for key.
func (r *Replica) Publish(key string, value []byte) store.Update {
	u, branches := r.writer.PutObserved(key, value)
	r.fireApply(u, store.Applied, SourceLocal, branches)
	r.initiate(u)
	return u
}

// Delete creates and pushes a tombstone for key.
func (r *Replica) Delete(key string) store.Update {
	u, branches := r.writer.DeleteObserved(key)
	r.fireApply(u, store.Applied, SourceLocal, branches)
	r.initiate(u)
	return u
}

// Get reads the winning revision for key from the local store.
func (r *Replica) Get(key string) (store.Revision, bool) { return r.st.Get(key) }

// PullNow performs one pull batch immediately.
func (r *Replica) PullNow() {
	r.mu.Lock()
	targets := r.sampleLocked(r.cfg.PullAttempts, nil)
	clock := wire.ClockToWire(r.st.Clock())
	r.mu.Unlock()
	for _, t := range targets {
		env := wire.Envelope{Kind: wire.KindPullReq, From: r.Addr(), Clock: clock}
		r.inc(MetricPullRequests)
		_ = r.transport.Send(t, env) // offline peers are expected; pull retries later
	}
}

func (r *Replica) initiate(u store.Update) {
	r.mu.Lock()
	state := r.newStateLocked()
	r.states[u.ID()] = state
	targets := r.sampleLocked(r.cfg.Fanout, nil)
	state.add(r.Addr())
	for _, t := range targets {
		state.add(t)
	}
	carried := r.carriedLocked(state)
	r.mu.Unlock()
	r.sendPushes(u, targets, carried, 0)
}

func (r *Replica) handle(env wire.Envelope) {
	switch env.Kind {
	case wire.KindPush:
		r.handlePush(env)
	case wire.KindPullReq:
		r.handlePullReq(env)
	case wire.KindPullResp:
		r.handlePullResp(env)
	case wire.KindAck:
		r.mu.Lock()
		r.noteAckLocked(env.From, time.Now())
		r.mu.Unlock()
		r.inc(MetricAckReceived)
		if r.cfg.Hooks.OnAck != nil {
			r.cfg.Hooks.OnAck(env.From)
		}
	case wire.KindQuery:
		r.handleQuery(env)
	case wire.KindQueryResp:
		r.handleQueryResp(env)
	}
}

func (r *Replica) handlePush(env wire.Envelope) {
	u, err := env.Update.ToStore()
	if err != nil {
		return // malformed update: drop
	}
	id := u.ID()
	r.inc(MetricPushReceived)

	r.mu.Lock()
	r.learnLocked(env.From)
	for _, a := range env.RF {
		r.learnLocked(a)
	}
	if state, seen := r.states[id]; seen {
		// Duplicate: merge lists, feed adaptive PF.
		for _, a := range env.RF {
			state.add(a)
		}
		if ad, ok := state.pfn.(*pf.Adaptive); ok {
			ad.ObserveDuplicate()
			ad.ObserveListFraction(r.listFractionLocked(state))
		}
		r.mu.Unlock()
		r.inc(MetricPushDuplicate)
		// Nothing was applied; a point-in-time branch count is the best
		// available description of the key's state.
		r.fireApply(u, store.Duplicate, SourcePush, r.st.BranchCount(u.Key))
		return
	}
	state := r.newStateLocked()
	for _, a := range env.RF {
		state.add(a)
	}
	state.add(r.Addr())
	r.states[id] = state
	if ad, ok := state.pfn.(*pf.Adaptive); ok {
		// §6 speculation: the flooding list on the incoming push estimates
		// how far the update has already been sent, and unlike duplicate
		// counts it is available before the forwarding decision below.
		ad.ObserveListFraction(r.listFractionLocked(state))
	}
	applied, branches := r.st.ApplyObserved(u)
	sendAck := r.cfg.Acks
	from := env.From

	t := env.T + 1
	forward := r.rng.Float64() < state.pfn.P(t)
	var targets []string
	var carried []string
	if forward && r.cfg.Fanout > 0 {
		rp := r.sampleLocked(r.cfg.Fanout, nil)
		for _, a := range rp {
			if _, listed := state.rf[a]; !listed {
				targets = append(targets, a)
			}
			state.add(a)
		}
		carried = r.carriedLocked(state)
	}
	r.mu.Unlock()

	r.fireApply(u, applied, SourcePush, branches)
	if sendAck && from != "" {
		r.sendAck(from, id)
	}
	if len(targets) > 0 {
		r.sendPushes(u, targets, carried, t)
	}
}

func (r *Replica) sendPushes(u store.Update, targets, carried []string, t int) {
	wu := wire.FromStore(u)
	now := time.Now()
	r.mu.Lock()
	for _, target := range targets {
		r.expectAckLocked(target, now)
	}
	r.mu.Unlock()
	for _, target := range targets {
		env := wire.Envelope{
			Kind: wire.KindPush, From: r.Addr(), Update: wu, RF: carried, T: t,
		}
		r.inc(MetricPushSent)
		_ = r.transport.Send(target, env) // offline targets are the normal case
	}
}

// pullGossipSample is the number of known peer addresses piggybacked on a
// pull response (membership gossip for bootstrap).
const pullGossipSample = 16

func (r *Replica) handlePullReq(env wire.Envelope) {
	r.mu.Lock()
	r.learnLocked(env.From)
	sample := r.sampleLocked(pullGossipSample, map[string]struct{}{env.From: {}})
	r.mu.Unlock()
	missing := r.st.MissingFor(wire.ClockFromWire(env.Clock))
	updates := make([]wire.Update, len(missing))
	for i, u := range missing {
		updates[i] = wire.FromStore(u)
	}
	resp := wire.Envelope{
		Kind: wire.KindPullResp, From: r.Addr(),
		Updates: updates, KnownPeers: sample,
	}
	r.inc(MetricPullServed)
	_ = r.transport.Send(env.From, resp)
}

func (r *Replica) handlePullResp(env wire.Envelope) {
	r.mu.Lock()
	r.learnLocked(env.From)
	for _, a := range env.KnownPeers {
		r.learnLocked(a)
	}
	r.mu.Unlock()
	for _, wu := range env.Updates {
		u, err := wu.ToStore()
		if err != nil {
			continue
		}
		applied, branches := r.st.ApplyObserved(u)
		r.mu.Lock()
		if _, ok := r.states[u.ID()]; !ok {
			// Pulled updates are not re-pushed (§4.3's optimism).
			r.states[u.ID()] = r.newStateLocked()
		}
		r.mu.Unlock()
		r.fireApply(u, applied, SourcePull, branches)
	}
}

// sampleLocked draws up to k distinct known peers, excluding those in skip.
// With acks enabled, suspected-offline peers are skipped and recently-acking
// peers are preferred (§6).
func (r *Replica) sampleLocked(k int, skip map[string]struct{}) []string {
	if k <= 0 || len(r.order) == 0 {
		return nil
	}
	r.sweepAcksLocked(time.Now())
	preferred := make([]string, 0, k)
	candidates := make([]string, 0, len(r.order))
	for _, a := range r.order {
		if skip != nil {
			if _, s := skip[a]; s {
				continue
			}
		}
		if r.cfg.Acks {
			if _, suspect := r.suspects[a]; suspect {
				continue
			}
			if _, acked := r.ackedBy[a]; acked {
				preferred = append(preferred, a)
				continue
			}
		}
		candidates = append(candidates, a)
	}
	r.rng.Shuffle(len(preferred), func(i, j int) {
		preferred[i], preferred[j] = preferred[j], preferred[i]
	})
	r.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	out := preferred
	if len(out) > k {
		out = out[:k]
	} else {
		need := k - len(out)
		if need > len(candidates) {
			need = len(candidates)
		}
		out = append(out, candidates[:need]...)
	}
	return out
}

// carriedLocked renders a state's flooding list for the wire, honouring
// ListMax by dropping random entries (the default truncation policy).
func (r *Replica) carriedLocked(state *replicaState) []string {
	if !r.cfg.PartialList {
		return nil
	}
	out := append([]string(nil), state.rfList...)
	if r.cfg.ListMax > 0 && len(out) > r.cfg.ListMax {
		r.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		out = out[:r.cfg.ListMax]
	}
	return out
}

// listFractionLocked estimates the fraction of the known population an
// update has already been sent to, from its flooding-list length (the live
// analogue of the simulator's NormalizedLen over R).
func (r *Replica) listFractionLocked(state *replicaState) float64 {
	population := len(r.peers) + 1
	if population == 0 {
		return 0
	}
	return float64(len(state.rf)) / float64(population)
}

func (r *Replica) newStateLocked() *replicaState {
	s := &replicaState{rf: make(map[string]struct{}, 8)}
	if r.cfg.NewPF != nil {
		s.pfn = r.cfg.NewPF()
	} else {
		s.pfn = pf.Always()
	}
	return s
}

// WriteSnapshot serialises the replica's full update log to w, for restarts.
func (r *Replica) WriteSnapshot(w io.Writer) error {
	return r.st.WriteSnapshot(w)
}

// RestoreSnapshot replaces the replica's state with a snapshot previously
// produced by WriteSnapshot (on this or another replica). The writer's
// sequence counter advances so new updates never reuse sequence numbers.
// Call before Start.
func (r *Replica) RestoreSnapshot(rd io.Reader) error {
	restored, err := store.ReadSnapshot(rd, store.DefaultTombstoneRetention)
	if err != nil {
		return err
	}
	r.st.Replace(restored)
	r.writer.Resync()
	return nil
}
