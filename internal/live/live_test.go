package live

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/wire"
)

// newCluster builds n replicas on a shared in-memory hub with full mutual
// knowledge and starts them.
func newCluster(t *testing.T, n int, cfg Config) (*Hub, []*Replica) {
	t.Helper()
	hub := NewHub()
	replicas := make([]*Replica, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("replica-%d", i)
		tr, err := hub.Attach(addrs[i])
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		c := cfg
		c.Seed = int64(i) + 1
		r, err := NewReplica(c, tr)
		if err != nil {
			t.Fatalf("new replica: %v", err)
		}
		replicas[i] = r
	}
	for _, r := range replicas {
		r.AddPeers(addrs...)
	}
	for _, r := range replicas {
		r.Start()
		t.Cleanup(r.Stop)
	}
	return hub, replicas
}

// eventually polls cond every millisecond up to the deadline.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Fanout: -1},
		{ListMax: -1},
		{PullAttempts: -1},
		{PullInterval: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Config %+v should be invalid", bad)
		}
	}
	if err := DefaultReplicaConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestNewReplicaValidation(t *testing.T) {
	if _, err := NewReplica(Config{Fanout: -1}, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewReplica(Config{}, nil); err == nil {
		t.Fatal("nil transport accepted")
	}
}

func TestPushPropagatesInMemory(t *testing.T) {
	cfg := Config{Fanout: 4, PartialList: true, PullAttempts: 0}
	_, replicas := newCluster(t, 10, cfg)
	replicas[0].Publish("greeting", []byte("hello"))
	eventually(t, 2*time.Second, func() bool {
		for _, r := range replicas {
			if _, ok := r.Get("greeting"); !ok {
				return false
			}
		}
		return true
	}, "push did not reach every replica")
}

func TestOfflineReplicaCatchesUpViaPull(t *testing.T) {
	cfg := Config{
		Fanout:       4,
		PartialList:  true,
		PullAttempts: 3,
		PullInterval: 10 * time.Millisecond,
	}
	hub, replicas := newCluster(t, 8, cfg)
	hub.SetOnline("replica-7", false)

	replicas[0].Publish("doc", []byte("v1"))
	eventually(t, 2*time.Second, func() bool {
		for _, r := range replicas[:7] {
			if _, ok := r.Get("doc"); !ok {
				return false
			}
		}
		return true
	}, "online replicas did not sync")
	if _, ok := replicas[7].Get("doc"); ok {
		t.Fatal("offline replica received the update")
	}

	hub.SetOnline("replica-7", true)
	eventually(t, 2*time.Second, func() bool {
		_, ok := replicas[7].Get("doc")
		return ok
	}, "returning replica did not pull the update")
}

func TestDeletePropagates(t *testing.T) {
	cfg := Config{Fanout: 4, PartialList: true, PullAttempts: 2, PullInterval: 10 * time.Millisecond}
	_, replicas := newCluster(t, 6, cfg)
	replicas[0].Publish("k", []byte("v"))
	eventually(t, 2*time.Second, func() bool {
		_, ok := replicas[5].Get("k")
		return ok
	}, "put did not propagate")
	replicas[0].Delete("k")
	eventually(t, 2*time.Second, func() bool {
		for _, r := range replicas {
			if _, ok := r.Get("k"); ok {
				return false
			}
		}
		return true
	}, "delete did not propagate")
}

func TestAdaptivePFInLiveRuntime(t *testing.T) {
	cfg := Config{
		Fanout:       5,
		NewPF:        func() pf.Func { return pf.NewAdaptive(1.0) },
		PartialList:  true,
		PullAttempts: 2,
		PullInterval: 10 * time.Millisecond,
	}
	_, replicas := newCluster(t, 12, cfg)
	replicas[3].Publish("adaptive", []byte("x"))
	eventually(t, 2*time.Second, func() bool {
		for _, r := range replicas {
			if _, ok := r.Get("adaptive"); !ok {
				return false
			}
		}
		return true
	}, "adaptive cluster did not converge")
}

func TestConcurrentPublishersConverge(t *testing.T) {
	cfg := Config{Fanout: 4, PartialList: true, PullAttempts: 3, PullInterval: 10 * time.Millisecond}
	_, replicas := newCluster(t, 8, cfg)
	for i, r := range replicas {
		go r.Publish(fmt.Sprintf("key-%d", i), []byte{byte(i)})
	}
	eventually(t, 3*time.Second, func() bool {
		for _, r := range replicas {
			for i := range replicas {
				if _, ok := r.Get(fmt.Sprintf("key-%d", i)); !ok {
					return false
				}
			}
		}
		return true
	}, "concurrent publishers did not converge")
	// Stores must be pairwise equal.
	for i := 1; i < len(replicas); i++ {
		if !replicas[0].Store().Equal(replicas[i].Store()) {
			t.Fatalf("replica %d diverged", i)
		}
	}
}

func TestHubSemantics(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Attach("a"); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	// No handler yet: delivery fails.
	if err := hub.deliver("a", wire.Envelope{}); err == nil {
		t.Fatal("delivery without handler succeeded")
	}
	got := 0
	tr.SetHandler(func(wire.Envelope) { got++ })
	tr2, err := hub.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	tr2.SetHandler(func(wire.Envelope) {})
	if err := tr2.Send("a", wire.Envelope{}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got != 1 {
		t.Fatalf("handler calls = %d", got)
	}
	// Unknown target.
	if err := tr2.Send("nobody", wire.Envelope{}); err == nil {
		t.Fatal("send to unknown address succeeded")
	}
	// Offline sender.
	hub.SetOnline("b", false)
	if err := tr2.Send("a", wire.Envelope{}); err == nil {
		t.Fatal("offline sender could send")
	}
	// Closed transport.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	hub.SetOnline("b", true)
	if err := tr2.Send("a", wire.Envelope{}); err == nil {
		t.Fatal("send to detached address succeeded")
	}
}

func TestReplicaPeersManagement(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("self")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	r.AddPeers("self", "", "p1", "p2", "p1")
	peers := r.Peers()
	if len(peers) != 2 {
		t.Fatalf("peers = %v", peers)
	}
}

// TestEmptyAddressNotLearned guards the inbound identity filter: a
// zero-valued gob envelope (From == "") or a flooding list carrying empty
// strings must not plant "" in the membership view, where it would waste a
// fanout slot forever and be re-gossiped cluster-wide via pull responses.
func TestEmptyAddressNotLearned(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("solo")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 2, Acks: true, Seed: 80}, tr)
	if err != nil {
		t.Fatal(err)
	}
	src := store.New()
	w, err := store.NewWriter("writer", src, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := w.Put("k", []byte("v"))
	r.handle(wire.Envelope{
		Kind: wire.KindPush, From: "", Update: wire.FromStore(u),
		RF: []string{"", "peer-ok"}, T: 0,
	})
	// The update itself is still accepted.
	if rev, ok := r.Get("k"); !ok || string(rev.Value) != "v" {
		t.Fatalf("push from empty sender dropped: %v %v", rev, ok)
	}
	// Only the valid address was learned.
	if got := r.Peers(); len(got) != 1 || got[0] != "peer-ok" {
		t.Fatalf("Peers = %v, want [peer-ok]", got)
	}
	// Same filter on pull-response membership samples.
	r.handle(wire.Envelope{
		Kind: wire.KindPullResp, From: "", KnownPeers: []string{"", "peer-2"},
	})
	if got := r.Peers(); len(got) != 2 {
		t.Fatalf("Peers = %v, want [peer-ok peer-2]", got)
	}
	for _, a := range r.Peers() {
		if a == "" {
			t.Fatal("empty address learned")
		}
	}
}

func TestStopIsIdempotent(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("x")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 1, PullInterval: time.Millisecond, PullAttempts: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Stop()
	r.Stop() // must not panic or deadlock
}

func TestReplicaSnapshotRestore(t *testing.T) {
	hub := NewHub()
	tr1, err := hub.Attach("snap-src")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewReplica(Config{Fanout: 0, Seed: 50}, tr1)
	if err != nil {
		t.Fatal(err)
	}
	r1.Publish("a", []byte("1"))
	r1.Publish("b", []byte("2"))
	r1.Delete("a")

	var buf bytes.Buffer
	if err := r1.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	// A "restarted" replica on the same address restores the snapshot and
	// must continue the sequence instead of reusing numbers.
	tr2, err := hub.Attach("snap-dst")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReplica(Config{Fanout: 0, Seed: 51}, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.RestoreSnapshot(&buf); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if _, ok := r2.Get("a"); ok {
		t.Fatal("tombstone lost in restore")
	}
	rev, ok := r2.Get("b")
	if !ok || string(rev.Value) != "2" {
		t.Fatalf("restored value = %v %v", rev, ok)
	}
	// Restored state came from origin "snap-src"; r2's own writes use its
	// own origin, starting at 1.
	u, _ := r2.Publish("c", []byte("3"))
	if u.Origin != "snap-dst" || u.Seq != 1 {
		t.Fatalf("post-restore update = %s", u.ID())
	}
}

func TestReplicaRestoreGarbage(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("snap-bad")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 0, Seed: 52}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreSnapshot(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestPullBootstrapsMembership(t *testing.T) {
	// A new replica knowing only one seed address learns the rest of the
	// population from the membership sample on pull responses.
	cfg := Config{
		Fanout:       3,
		PartialList:  true,
		PullAttempts: 2,
		PullInterval: 10 * time.Millisecond,
	}
	_, replicas := newCluster(t, 6, cfg)

	// Attach the newcomer to the same hub as the cluster.
	clusterHub := replicasHub(t, replicas)
	tr, err := clusterHub.Attach("newcomer")
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Seed = 77
	newcomer, err := NewReplica(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	newcomer.AddPeers("replica-0") // one seed only
	newcomer.Start()
	t.Cleanup(newcomer.Stop)

	eventually(t, 2*time.Second, func() bool {
		return len(newcomer.Peers()) >= 4
	}, "newcomer did not learn peers from pull responses")
}

// replicasHub digs the shared hub out of a cluster built by newCluster.
func replicasHub(t *testing.T, replicas []*Replica) *Hub {
	t.Helper()
	mt, ok := replicas[0].transport.(*MemTransport)
	if !ok {
		t.Fatal("cluster not on MemTransport")
	}
	return mt.hub
}
