package live

import (
	"errors"
	"fmt"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wal"
)

// DefaultWALCheckpointBytes is the resident-WAL size that triggers a
// checkpoint on the janitor's schedule when Config.WALCheckpointBytes is
// zero.
const DefaultWALCheckpointBytes = 16 << 20

// WALRecovery reports what RecoverWAL restored from disk.
type WALRecovery struct {
	// CheckpointRestored is the number of updates the checkpoint snapshot
	// carried.
	CheckpointRestored int
	// Replayed is the number of replayed WAL records that grew the store.
	Replayed int
	// Duplicates is the number of replayed records the store already
	// covered (a crash between apply and ack logs twice; Apply is
	// idempotent per (origin, seq), so these are expected and harmless).
	Duplicates int
	// Frontiers is the number of frontier-adoption records replayed.
	Frontiers int
	// TruncatedBytes is how many torn-tail bytes recovery dropped.
	TruncatedBytes int64
}

// Restored is the total number of updates recovery installed, the figure
// the daemon reports as its restored count.
func (rec WALRecovery) Restored() int {
	return rec.CheckpointRestored + rec.Replayed
}

// walAppend logs one applied update to the write-ahead log, if one is
// configured. Local writes propagate the error to the caller (the write is
// not durable); ingest paths proceed — the apply already happened and the
// failure is latched and counted by the log itself.
func (r *Replica) walAppend(u store.Update) error {
	if r.cfg.WAL == nil {
		return nil
	}
	return r.cfg.WAL.Append(u)
}

// walAppendFrontier logs a wholesale frontier adoption (snapshot catch-up).
func (r *Replica) walAppendFrontier(c version.Clock) {
	if r.cfg.WAL == nil || len(c) == 0 {
		return
	}
	_ = r.cfg.WAL.AppendFrontier(c)
}

// RecoverWAL restores the replica's state from the configured write-ahead
// log: the latest checkpoint snapshot first, then every surviving WAL
// record through the normal store apply path, so clocks, branch counts, and
// the writer's sequence counter end up exactly as a clean restart would
// leave them. Call before Start, and before registering store apply hooks
// that must not observe recovery traffic. Replay is idempotent — duplicated
// records (a crash between apply and ack) are absorbed by the store and
// counted, not errors.
func (r *Replica) RecoverWAL() (WALRecovery, error) {
	var rec WALRecovery
	l := r.cfg.WAL
	if l == nil {
		return rec, errors.New("live: no WAL configured")
	}
	if rd, ok, err := l.OpenCheckpoint(); err != nil {
		return rec, err
	} else if ok {
		err := r.st.RestoreSnapshot(rd)
		rd.Close()
		if err != nil {
			// A checkpoint that does not decode is not salvageable by
			// skipping it: segments behind it were pruned, so starting from
			// the log alone would silently lose acknowledged writes.
			return rec, fmt.Errorf("live: wal checkpoint unusable: %w", err)
		}
		rec.CheckpointRestored = r.st.UpdateCount()
	}
	_, err := l.Replay(func(record wal.Record) error {
		switch record.Kind {
		case wal.RecordUpdate:
			res, _ := r.st.ApplyObserved(record.Update)
			if res == store.Duplicate {
				rec.Duplicates++
			} else {
				rec.Replayed++
			}
		case wal.RecordFrontier:
			r.st.AdoptFrontier(record.Frontier)
			rec.Frontiers++
		}
		return nil
	})
	if err != nil {
		return rec, err
	}
	// The log may carry our own origin past the writer's counter; never
	// reuse sequence numbers after a restart.
	r.writer.Resync()
	rec.TruncatedBytes = l.Stats().TruncatedBytes
	r.add(wal.MetricReplayed, rec.Replayed)
	r.add(wal.MetricReplayDuplicates, rec.Duplicates)
	return rec, nil
}

// CheckpointWAL bounds the write-ahead log now: it seals the active
// segment, writes the store snapshot atomically into the WAL directory,
// and prunes the sealed segments the snapshot covers. The janitor calls
// this when the log outgrows Config.WALCheckpointBytes; tests and
// operators may call it directly.
func (r *Replica) CheckpointWAL() (int, error) {
	if r.cfg.WAL == nil {
		return 0, errors.New("live: no WAL configured")
	}
	return r.cfg.WAL.Checkpoint(r.st.WriteSnapshot)
}

// maybeCheckpointWAL runs a checkpoint when the log has outgrown the
// configured threshold. Failures are latched and counted by the log
// itself; the janitor retries on its next pass.
func (r *Replica) maybeCheckpointWAL() {
	l := r.cfg.WAL
	if l == nil {
		return
	}
	limit := r.cfg.WALCheckpointBytes
	if limit <= 0 {
		limit = DefaultWALCheckpointBytes
	}
	if l.Size() < limit {
		return
	}
	_, _ = r.CheckpointWAL()
}
