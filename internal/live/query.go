package live

import (
	"context"
	"fmt"

	"github.com/p2pgossip/update/internal/engine"
	"github.com/p2pgossip/update/internal/store"
)

// §4.4 query servicing in the live runtime: a blocking Query consults k
// random replicas in parallel, waits for their answers (or the context
// deadline), and returns the causally freshest revision. The aggregation —
// freshest-version voting, the local store as one more voice, unconfident
// flagging — lives in internal/engine; this file adds the blocking shell.

// QueryOutcome is the result of a remote query.
type QueryOutcome struct {
	// Found reports whether any replica returned a live revision.
	Found bool
	// Revision is the freshest revision seen (zero when !Found).
	Revision store.Revision
	// Responses is the number of replies received.
	Responses int
	// Unconfident counts replies flagged as possibly stale.
	Unconfident int
}

// Query consults k random known replicas for key and blocks until all
// responses arrive or ctx expires, returning the freshest answer. The local
// store participates as one more voice, so a query on a fresh replica never
// returns worse data than Get.
func (r *Replica) Query(ctx context.Context, key string, k int) (QueryOutcome, error) {
	signal := make(chan struct{}, 1)
	var qid int64
	r.run(func(e *engine.Engine[string]) {
		qid = e.QueryNotify(key, k, func() {
			select {
			case signal <- struct{}{}:
			default: // a pending signal already covers this progress
			}
		})
	})
	defer r.run(func(e *engine.Engine[string]) { e.EndQuery(qid) })

	for {
		r.mu.Lock()
		res, _ := r.eng.QueryResult(qid)
		r.mu.Unlock()
		if res.Done {
			return outcomeFromResult(res), nil
		}
		select {
		case <-signal:
		case <-ctx.Done():
			r.mu.Lock()
			res, _ = r.eng.QueryResult(qid)
			r.mu.Unlock()
			if res.Responses == 0 && !res.Found {
				return outcomeFromResult(res), fmt.Errorf("live: query %q: %w", key, ctx.Err())
			}
			return outcomeFromResult(res), nil
		}
	}
}

// outcomeFromResult converts the engine's aggregation to the public outcome.
func outcomeFromResult(res engine.QueryResult) QueryOutcome {
	out := QueryOutcome{
		Found:       res.Found,
		Responses:   res.Responses,
		Unconfident: res.Unconfident,
	}
	if res.Found {
		out.Revision = store.Revision{
			Value:   res.Value,
			Version: res.Version,
			Stamp:   res.Stamp,
		}
	}
	return out
}
