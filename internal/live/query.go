package live

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// This file implements §4.4 query servicing in the live runtime: a blocking
// Query consults k random replicas in parallel, waits for their answers (or
// the context deadline), and returns the causally freshest revision.
// Responders that are unsure of their own freshness flag their answers, and
// unconfident-only results are reported as such so callers can retry.

// QueryOutcome is the result of a remote query.
type QueryOutcome struct {
	// Found reports whether any replica returned a live revision.
	Found bool
	// Revision is the freshest revision seen (zero when !Found).
	Revision store.Revision
	// Responses is the number of replies received.
	Responses int
	// Unconfident counts replies flagged as possibly stale.
	Unconfident int
}

// liveQuery tracks one in-flight query.
type liveQuery struct {
	key  string
	resp chan wire.Envelope
}

// Query consults k random known replicas for key and blocks until all
// responses arrive or ctx expires, returning the freshest answer. The local
// store participates as one more voice, so a query on a fresh replica never
// returns worse data than Get.
func (r *Replica) Query(ctx context.Context, key string, k int) (QueryOutcome, error) {
	if k <= 0 {
		k = 3
	}
	qid := atomic.AddInt64(&r.queryCounter, 1)
	q := &liveQuery{key: key, resp: make(chan wire.Envelope, k)}

	r.mu.Lock()
	targets := r.sampleLocked(k, nil)
	if r.queries == nil {
		r.queries = make(map[int64]*liveQuery)
	}
	r.queries[qid] = q
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.queries, qid)
		r.mu.Unlock()
	}()

	for _, target := range targets {
		env := wire.Envelope{Kind: wire.KindQuery, From: r.Addr(), QID: qid, Key: key}
		r.inc(MetricQuerySent)
		_ = r.transport.Send(target, env) // offline targets simply never answer
	}

	out := QueryOutcome{}
	if rev, ok := r.st.Get(key); ok {
		out.Found = true
		out.Revision = rev
	}
	for received := 0; received < len(targets); received++ {
		select {
		case env := <-q.resp:
			out.Responses++
			if !env.Confident {
				out.Unconfident++
			}
			if !env.Found {
				continue
			}
			rev, err := revisionFromWire(env)
			if err != nil {
				continue // malformed response: skip
			}
			if !out.Found || fresher(rev.Version, out.Revision.Version) {
				out.Found = true
				out.Revision = rev
			}
		case <-ctx.Done():
			if out.Responses == 0 && !out.Found {
				return out, fmt.Errorf("live: query %q: %w", key, ctx.Err())
			}
			return out, nil
		}
	}
	return out, nil
}

func (r *Replica) handleQuery(env wire.Envelope) {
	r.mu.Lock()
	r.learnLocked(env.From)
	r.mu.Unlock()
	r.inc(MetricQueryServed)
	resp := wire.Envelope{
		Kind: wire.KindQueryResp, From: r.Addr(),
		QID: env.QID, Key: env.Key, Confident: true,
	}
	if rev, ok := r.st.Get(env.Key); ok {
		resp.Found = true
		resp.Value = rev.Value
		for _, id := range rev.Version {
			id := id
			resp.Version = append(resp.Version, id[:])
		}
	}
	_ = r.transport.Send(env.From, resp)
}

func (r *Replica) handleQueryResp(env wire.Envelope) {
	r.mu.Lock()
	q, ok := r.queries[env.QID]
	r.mu.Unlock()
	if !ok {
		return // late answer to a finished query
	}
	select {
	case q.resp <- env:
	default: // channel full: more answers than asked for; drop
	}
}

func revisionFromWire(env wire.Envelope) (store.Revision, error) {
	rev := store.Revision{
		Value: append([]byte(nil), env.Value...),
		Stamp: time.Time{},
	}
	for _, raw := range env.Version {
		if len(raw) != version.IDSize {
			return store.Revision{}, fmt.Errorf("live: bad version id length %d", len(raw))
		}
		var id version.ID
		copy(id[:], raw)
		rev.Version = append(rev.Version, id)
	}
	return rev, nil
}

// fresher reports whether candidate is strictly fresher than best, using the
// same deterministic rule as the store: causal dominance, then longer
// history, then larger head id.
func fresher(candidate, best version.History) bool {
	switch candidate.Compare(best) {
	case version.After:
		return true
	case version.Before, version.Equal:
		return false
	default:
		if len(candidate) != len(best) {
			return len(candidate) > len(best)
		}
		ch, errC := candidate.Head()
		bh, errB := best.Head()
		if errC != nil || errB != nil {
			return errB != nil && errC == nil
		}
		return bytes.Compare(ch[:], bh[:]) > 0
	}
}
