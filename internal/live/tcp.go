package live

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/p2pgossip/update/internal/wire"
)

// maxFrameBytes bounds a single envelope frame (16 MiB) so a corrupt or
// hostile peer cannot force unbounded allocation.
const maxFrameBytes = 16 << 20

// dialTimeout bounds connection establishment to an (often offline) peer.
const dialTimeout = 2 * time.Second

// TCPTransport sends and receives envelopes over TCP. Each envelope travels
// as a length-prefixed gob frame on a fresh connection: replicas in the
// target environment are mostly offline, so long-lived connections would
// mostly be dead weight; an update burst is a handful of messages.
type TCPTransport struct {
	listener net.Listener

	mu      sync.RWMutex
	handler Handler
	closed  bool
	wg      sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP starts a transport on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	t := &TCPTransport{listener: ln}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Send implements Transport.
func (t *TCPTransport) Send(to string, env wire.Envelope) error {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return fmt.Errorf("live: transport closed")
	}
	conn, err := net.DialTimeout("tcp", to, dialTimeout)
	if err != nil {
		return fmt.Errorf("live: dial %s: %w", to, err)
	}
	defer conn.Close()
	raw, err := wire.Encode(env)
	if err != nil {
		return err
	}
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(raw)))
	if _, err := conn.Write(lenbuf[:]); err != nil {
		return fmt.Errorf("live: write frame length to %s: %w", to, err)
	}
	if _, err := conn.Write(raw); err != nil {
		return fmt.Errorf("live: write frame to %s: %w", to, err)
	}
	return nil
}

// Close implements Transport: stops accepting and waits for in-flight
// deliveries.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
		}()
	}
}

func (t *TCPTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	var lenbuf [4]byte
	if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n == 0 || n > maxFrameBytes {
		return
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(conn, raw); err != nil {
		return
	}
	env, err := wire.Decode(raw)
	if err != nil {
		return
	}
	t.mu.RLock()
	handler := t.handler
	closed := t.closed
	t.mu.RUnlock()
	if handler != nil && !closed {
		handler(env)
	}
}
