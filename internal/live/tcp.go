package live

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pgossip/update/internal/wire"
)

// dialTimeout bounds connection establishment to an (often offline) peer.
const dialTimeout = 2 * time.Second

// writeTimeout bounds the delivery of one outbound batch. A peer that keeps
// the connection open but stops reading (stalled process, dead NAT entry)
// would otherwise let the queue and then the TCP window absorb traffic
// forever; the deadline turns the stall into a write error and the
// connection is evicted like any other dead one.
const writeTimeout = 10 * time.Second

// errConnDead marks a pooled connection whose writer has already failed.
var errConnDead = errors.New("live: pooled connection dead")

// maxPooledConns caps the outbound connection pool, and maxInboundConns the
// accepted-connection set, so a node that has exchanged traffic with a large
// population does not hold a socket (and a goroutine) per peer it ever met —
// replicas in the target environment are mostly offline, and file
// descriptors are the scarce resource. At the cap an arbitrary entry is
// evicted; the evicted peer simply pays one redial on its next exchange.
const (
	maxPooledConns  = 256
	maxInboundConns = 512
)

// outboundQueueLen is the per-connection frame queue. It only needs to
// absorb bursts between writer wakeups; a full queue applies backpressure
// to senders (bounded by writeTimeout).
const outboundQueueLen = 256

// connBufBytes sizes the per-connection read and write buffers.
const connBufBytes = 32 << 10

// TCPTransport sends and receives envelopes over TCP. Connections to each
// destination are pooled; each pooled connection runs a writer goroutine
// draining a queue of pre-encoded frames (wire.Frame), so a send is one
// encode — shared across an entire fanout via SendFrame — plus one queue
// hop, and consecutive frames to the same peer coalesce into a single
// buffered write and flush. Failed dials stay cheap (one timeout, reported
// synchronously); when a pooled connection turns out to be stale the writer
// redials once and replays the unflushed frames, so a single peer outage
// costs one redial rather than a lost batch.
type TCPTransport struct {
	listener net.Listener

	mu      sync.RWMutex
	handler Handler
	// handlerAtomic mirrors handler for the per-frame fast path in
	// serveConn (no read lock per inbound message).
	handlerAtomic atomic.Value // of Handler
	closed        bool
	closedAtomic  atomic.Bool
	wg            sync.WaitGroup
	// inbound tracks accepted connections so Close (and the cap) can
	// unblock their serve loops; they are long-lived, each carrying a frame
	// stream.
	inbound map[net.Conn]struct{}

	// poolMu guards pool and poolClosed. poolClosed mirrors closed so the
	// pool's own lifecycle decisions need no second lock (and no race
	// between a send pooling a fresh dial and Close draining the pool).
	poolMu     sync.Mutex
	pool       map[string]*pooledConn
	poolClosed bool
}

var (
	_ Transport   = (*TCPTransport)(nil)
	_ FrameSender = (*TCPTransport)(nil)
)

// pooledConn is one outbound connection: an inline fast path plus a frame
// queue drained by a writer goroutine. At any moment at most one goroutine
// owns the socket (writing == true): a sender that finds the connection
// idle writes its frame inline — no handoff, minimum latency — while
// senders arriving during a write queue their frames for the writer
// goroutine, which drains the whole backlog as one buffered write and a
// single flush. The queue is bounded; a full queue blocks senders up to
// writeTimeout (backpressure) before the connection is declared stalled.
type pooledConn struct {
	to string

	mu      sync.Mutex
	cond    sync.Cond
	buf     []*wire.Frame // queued frames, each retained by the queue
	writing bool          // some goroutine owns the socket right now
	dead    bool          // terminal: no further sends accepted
	stopped bool          // shutdown requested (Close, eviction)

	// conn and bw are used by the current owner; the mutex only guards the
	// pointer swaps (the owner's one redial, shutdown's unblocking Close).
	conn     net.Conn
	bw       *bufio.Writer
	redialed bool
	// lastArm is when the write deadline was last armed (UnixNano). Arming
	// costs a runtime timer update per call, so the owner re-arms only once
	// the previous arm has aged writeTimeout/2 — stall detection within
	// 1.5× writeTimeout instead of 1×, for one fewer fixed cost on the
	// per-batch hot path.
	lastArm int64
}

func newPooledConn(to string, conn net.Conn) *pooledConn {
	pc := &pooledConn{
		to:   to,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, connBufBytes),
	}
	pc.cond.L = &pc.mu
	return pc
}

// shutdown asks the writer to exit and unblocks any in-flight write;
// idempotent.
func (pc *pooledConn) shutdown() {
	pc.mu.Lock()
	pc.stopped = true
	pc.conn.Close()
	pc.cond.Broadcast()
	pc.mu.Unlock()
}

// send delivers one frame: inline when the connection is idle, queued for
// the writer goroutine otherwise.
func (pc *pooledConn) send(f *wire.Frame) error {
	pc.mu.Lock()
	if pc.dead || pc.stopped {
		pc.mu.Unlock()
		return errConnDead
	}
	if !pc.writing && len(pc.buf) == 0 {
		// Idle connection: own the socket and write without a handoff.
		pc.writing = true
		pc.mu.Unlock()
		one := [1]*wire.Frame{f}
		err := pc.writeOwned(one[:])
		pc.mu.Lock()
		pc.writing = false
		if err != nil {
			pc.dead = true
		}
		if len(pc.buf) > 0 || pc.dead {
			pc.cond.Broadcast() // hand queued frames (or cleanup) to the writer
		}
		pc.mu.Unlock()
		if err != nil {
			return err
		}
		return nil
	}
	// Busy connection: queue for the writer's next batch, blocking only
	// when the queue is full.
	if len(pc.buf) >= outboundQueueLen {
		var timedOut atomic.Bool
		timer := time.AfterFunc(writeTimeout, func() {
			timedOut.Store(true)
			pc.mu.Lock()
			pc.cond.Broadcast()
			pc.mu.Unlock()
		})
		for len(pc.buf) >= outboundQueueLen && !pc.dead && !pc.stopped && !timedOut.Load() {
			pc.cond.Wait()
		}
		timer.Stop()
		if len(pc.buf) >= outboundQueueLen && !pc.dead && !pc.stopped {
			// The peer absorbed nothing for a whole writeTimeout: stalled.
			pc.dead = true
			pc.cond.Broadcast()
			pc.mu.Unlock()
			return fmt.Errorf("live: send queue to %s stalled", pc.to)
		}
	}
	if pc.dead || pc.stopped {
		pc.mu.Unlock()
		return errConnDead
	}
	f.Retain()
	pc.buf = append(pc.buf, f)
	pc.cond.Broadcast()
	pc.mu.Unlock()
	return nil
}

// writeOwned writes one batch as the socket's current owner, redialling
// once on failure and replaying the batch on the fresh connection (the
// receiver dedups any envelope that did arrive before the failure). The
// redial allowance renews with every successful batch, so each distinct
// outage gets exactly one.
func (pc *pooledConn) writeOwned(batch []*wire.Frame) error {
	pc.mu.Lock()
	conn, bw := pc.conn, pc.bw
	stopped := pc.stopped
	pc.mu.Unlock()
	if stopped {
		return errConnDead
	}
	if err := pc.writeBatch(conn, bw, batch); err == nil {
		pc.mu.Lock()
		pc.redialed = false
		pc.mu.Unlock()
		return nil
	} else {
		pc.mu.Lock()
		// dead counts like stopped: a queue-stall verdict means writeLoop
		// has (or will have) torn the connection down — installing a fresh
		// socket into the evicted pooledConn would leak it.
		if pc.stopped || pc.dead || pc.redialed {
			pc.mu.Unlock()
			return err
		}
		pc.redialed = true
		pc.mu.Unlock()
	}
	fresh, derr := net.DialTimeout("tcp", pc.to, dialTimeout)
	if derr != nil {
		return derr
	}
	pc.mu.Lock()
	if pc.stopped || pc.dead {
		pc.mu.Unlock()
		fresh.Close()
		return errConnDead
	}
	old := pc.conn
	pc.conn = fresh
	fbw := bufio.NewWriterSize(fresh, connBufBytes)
	pc.bw = fbw
	pc.lastArm = 0
	pc.mu.Unlock()
	old.Close()
	return pc.writeBatch(fresh, fbw, batch)
}

// ListenTCP starts a transport on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		listener: ln,
		inbound:  make(map[net.Conn]struct{}),
		pool:     make(map[string]*pooledConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
	t.handlerAtomic.Store(h)
}

// Send implements Transport: encode once, queue on the destination's
// connection.
func (t *TCPTransport) Send(to string, env wire.Envelope) error {
	f, err := wire.NewFrame(&env)
	if err != nil {
		return fmt.Errorf("live: send to %s: %w", to, err)
	}
	defer f.Release()
	return t.SendFrame(to, f)
}

// SendFrame implements FrameSender: queue a pre-encoded frame on the pooled
// connection to the destination, dialling one if absent (dial failures are
// reported synchronously). The frame is retained for as long as the
// transport needs it; the caller keeps its own reference. A connection whose
// writer has already died is replaced by one guaranteed-fresh dial before
// the send is reported failed.
func (t *TCPTransport) SendFrame(to string, f *wire.Frame) error {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return fmt.Errorf("live: transport closed")
	}
	pc, err := t.conn(to)
	if err != nil {
		return err
	}
	if err := pc.send(f); err == nil {
		return nil
	}
	// The pooled connection died under us (its writer failed or a racing
	// sender stalled it): retry exactly once on a connection this call
	// dialled itself.
	pc, err = t.dialAndPool(to, true)
	if err != nil {
		return err
	}
	if err := pc.send(f); err != nil {
		return fmt.Errorf("live: send to %s: %w", to, err)
	}
	return nil
}

// conn returns the pooled connection to `to`, dialling one if absent.
func (t *TCPTransport) conn(to string) (*pooledConn, error) {
	t.poolMu.Lock()
	pc, ok := t.pool[to]
	t.poolMu.Unlock()
	if ok {
		return pc, nil
	}
	return t.dialAndPool(to, false)
}

// dialAndPool dials `to`, installs the connection in the pool, and starts
// its writer. With replace set an existing entry is displaced (the retry
// path, which must not reuse a possibly-dead pooled connection); without it
// a concurrently pooled connection wins and the fresh dial is discarded.
func (t *TCPTransport) dialAndPool(to string, replace bool) (*pooledConn, error) {
	raw, err := net.DialTimeout("tcp", to, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", to, err)
	}
	pc := newPooledConn(to, raw)
	t.poolMu.Lock()
	if t.poolClosed {
		t.poolMu.Unlock()
		raw.Close()
		return nil, fmt.Errorf("live: transport closed")
	}
	var displaced []*pooledConn
	if existing, ok := t.pool[to]; ok {
		if !replace {
			// A concurrent send won the race; keep its connection.
			t.poolMu.Unlock()
			raw.Close()
			return existing, nil
		}
		displaced = append(displaced, existing)
		delete(t.pool, to)
	}
	if len(t.pool) >= maxPooledConns {
		for victim, vc := range t.pool {
			delete(t.pool, victim)
			displaced = append(displaced, vc)
			break
		}
	}
	t.pool[to] = pc
	t.wg.Add(1)
	t.poolMu.Unlock()
	go t.writeLoop(pc)
	for _, vc := range displaced {
		vc.shutdown()
	}
	return pc, nil
}

// evictConn drops a connection from the pool if it is still the pooled one
// (a racing send may already have replaced it).
func (t *TCPTransport) evictConn(pc *pooledConn) {
	t.poolMu.Lock()
	if t.pool[pc.to] == pc {
		delete(t.pool, pc.to)
	}
	t.poolMu.Unlock()
}

// writeLoop drains one connection's backlog: each wakeup takes every queued
// frame, writes the whole batch through one buffered writer, and ends with
// a single flush — a fanout burst to the same peer is one syscall, not one
// per envelope. Idle-connection sends bypass the loop entirely (the inline
// path in pooledConn.send); the loop exists for what arrives while the
// socket is busy.
func (t *TCPTransport) writeLoop(pc *pooledConn) {
	defer t.wg.Done()
	for {
		pc.mu.Lock()
		for !pc.dead && !pc.stopped && (len(pc.buf) == 0 || pc.writing) {
			pc.cond.Wait()
		}
		if pc.dead || pc.stopped {
			// Terminal: mark dead under the lock so no sender queues behind
			// this drain, then release the backlog and the socket.
			pc.dead = true
			buf := pc.buf
			pc.buf = nil
			conn := pc.conn
			pc.cond.Broadcast()
			pc.mu.Unlock()
			for _, f := range buf {
				f.Release()
			}
			conn.Close()
			t.evictConn(pc)
			return
		}
		batch := pc.buf
		pc.buf = nil
		pc.writing = true
		pc.cond.Broadcast() // queue space freed: unblock backpressured senders
		pc.mu.Unlock()
		err := pc.writeOwned(batch)
		for _, f := range batch {
			f.Release()
		}
		pc.mu.Lock()
		pc.writing = false
		if err != nil {
			pc.dead = true
		}
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
}

// writeBatch writes the frames through bw and flushes once. The write
// deadline is re-armed whenever the current one has aged past half its
// span — checked per frame, so a large batch trickling over a slow but
// healthy link keeps extending its deadline with progress (only a link
// absorbing nothing for writeTimeout fails), while the fast path pays one
// clock read per frame and a timer update only every writeTimeout/2.
func (pc *pooledConn) writeBatch(conn net.Conn, bw *bufio.Writer, frames []*wire.Frame) error {
	for _, f := range frames {
		now := time.Now()
		if now.UnixNano()-pc.lastArm > int64(writeTimeout/2) {
			conn.SetWriteDeadline(now.Add(writeTimeout))
			pc.lastArm = now.UnixNano()
		}
		if _, err := bw.Write(f.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Close implements Transport: stops accepting, tears down pooled and
// inbound connections, and waits for the writer and serve goroutines.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.closedAtomic.Store(true)
	for conn := range t.inbound {
		conn.Close() // unblock the serve loops
	}
	t.mu.Unlock()

	t.poolMu.Lock()
	t.poolClosed = true
	conns := make([]*pooledConn, 0, len(t.pool))
	for to, pc := range t.pool {
		conns = append(conns, pc)
		delete(t.pool, to)
	}
	t.poolMu.Unlock()
	for _, pc := range conns {
		pc.shutdown() // also closes the socket: unblocks mid-batch writes
	}

	err := t.listener.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		if len(t.inbound) >= maxInboundConns {
			for victim := range t.inbound {
				victim.Close() // its serve loop exits and deregisters
				break
			}
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.inbound, conn)
			t.mu.Unlock()
		}()
	}
}

// serveConn decodes a stream of binary envelope frames from one inbound
// connection, dispatching each to the handler, until the peer closes or an
// error — a truncated frame, a bad length, a malformed body — makes the
// stream unsafe to continue. The envelope is decoded once into a reusable
// struct outside any replica lock; per the Handler contract its containers
// are valid only for the duration of the call.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	fr := wire.NewFrameReader(bufio.NewReaderSize(conn, connBufBytes))
	var env wire.Envelope
	for {
		if err := fr.ReadEnvelope(&env); err != nil {
			return // EOF, peer reset, or a corrupt stream: drop the connection
		}
		if t.closedAtomic.Load() {
			return
		}
		if handler, _ := t.handlerAtomic.Load().(Handler); handler != nil {
			handler(env)
		}
	}
}
