package live

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pgossip/update/internal/wire"
)

// dialTimeout bounds connection establishment to an (often offline) peer.
const dialTimeout = 2 * time.Second

// writeTimeout bounds the delivery of one outbound batch. A peer that keeps
// the connection open but stops reading (stalled process, dead NAT entry)
// would otherwise let the TCP window absorb traffic forever; the deadline
// turns the stall into a write error and the connection is evicted like any
// other dead one.
const writeTimeout = 10 * time.Second

// errConnDead marks a pooled connection that has already failed.
var errConnDead = errors.New("live: pooled connection dead")

// maxPooledConns caps the outbound connection pool, and maxInboundConns the
// accepted-connection set, so a node that has exchanged traffic with a large
// population does not hold a socket (and a goroutine) per peer it ever met —
// replicas in the target environment are mostly offline, and file
// descriptors are the scarce resource. At the cap an arbitrary entry is
// evicted; the evicted peer simply pays one redial on its next exchange.
const (
	maxPooledConns  = 256
	maxInboundConns = 512
)

// connBufBytes sizes the per-connection read and write buffers.
const connBufBytes = 32 << 10

// TCPTransport sends and receives envelopes over TCP. Connections to each
// destination are pooled; a send writes its pre-encoded frames (wire.Frame)
// straight through the pooled connection's buffered writer — one flush per
// batch — and blocks until the socket accepts them, bounded by writeTimeout.
// There is no per-connection queue: backpressure from a slow peer surfaces
// synchronously to the caller, which is exactly what the replica's
// per-peer coalescing senders (sender.go) absorb — each destination has one
// sending goroutine, so a stalled link parks that goroutine alone while its
// outbound state merges instead of queueing. Failed dials stay cheap (one
// timeout, reported synchronously); when a pooled connection turns out to
// be stale the sender redials once and replays the unflushed frames, so a
// single peer outage costs one redial rather than a lost batch.
type TCPTransport struct {
	listener net.Listener

	mu      sync.RWMutex
	handler Handler
	// handlerAtomic mirrors handler for the per-frame fast path in
	// serveConn (no read lock per inbound message).
	handlerAtomic atomic.Value // of Handler
	closed        bool
	closedAtomic  atomic.Bool
	wg            sync.WaitGroup
	// inbound tracks accepted connections so Close (and the cap) can
	// unblock their serve loops; they are long-lived, each carrying a frame
	// stream.
	inbound map[net.Conn]struct{}

	// poolMu guards pool and poolClosed. poolClosed mirrors closed so the
	// pool's own lifecycle decisions need no second lock (and no race
	// between a send pooling a fresh dial and Close draining the pool).
	poolMu     sync.Mutex
	pool       map[string]*pooledConn
	poolClosed bool
}

var (
	_ Transport        = (*TCPTransport)(nil)
	_ FrameSender      = (*TCPTransport)(nil)
	_ FrameBatchSender = (*TCPTransport)(nil)
)

// pooledConn is one outbound connection. Writers serialise on wmu and write
// their frames synchronously — the socket itself is the queue, and a slow
// peer blocks its (single, coalescing) sender goroutine rather than growing
// a frame backlog. The state mutex only guards the pointer swaps (the one
// redial, shutdown's unblocking Close) and the terminal flags.
type pooledConn struct {
	to string

	// wmu admits one writing goroutine at a time. Concurrent direct users
	// of the transport serialise here; the replica's per-peer senders never
	// contend (one goroutine per destination).
	wmu sync.Mutex

	mu      sync.Mutex
	dead    bool // terminal: no further sends accepted
	stopped bool // shutdown requested (Close, eviction)

	// conn and bw belong to the current wmu holder; the mutex above guards
	// the pointer swaps.
	conn     net.Conn
	bw       *bufio.Writer
	redialed bool
	// lastArm is when the write deadline was last armed (UnixNano). Arming
	// costs a runtime timer update per call, so the owner re-arms only once
	// the previous arm has aged writeTimeout/2 — stall detection within
	// 1.5× writeTimeout instead of 1×, for one fewer fixed cost on the
	// per-batch hot path.
	lastArm int64
}

func newPooledConn(to string, conn net.Conn) *pooledConn {
	return &pooledConn{
		to:   to,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, connBufBytes),
	}
}

// shutdown closes the socket, unblocking any in-flight write; idempotent.
func (pc *pooledConn) shutdown() {
	pc.mu.Lock()
	pc.stopped = true
	pc.conn.Close()
	pc.mu.Unlock()
}

// send writes one batch of frames, blocking until the socket has absorbed
// them (bounded by writeTimeout) — the transport's backpressure surface.
func (pc *pooledConn) send(frames []*wire.Frame) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	pc.mu.Lock()
	if pc.dead || pc.stopped {
		pc.mu.Unlock()
		return errConnDead
	}
	pc.mu.Unlock()
	err := pc.writeOwned(frames)
	if err != nil {
		pc.mu.Lock()
		pc.dead = true
		pc.mu.Unlock()
	}
	return err
}

// writeOwned writes one batch as the socket's current owner, redialling
// once on failure and replaying the batch on the fresh connection (the
// receiver dedups any envelope that did arrive before the failure). The
// redial allowance renews with every successful batch, so each distinct
// outage gets exactly one.
func (pc *pooledConn) writeOwned(batch []*wire.Frame) error {
	pc.mu.Lock()
	conn, bw := pc.conn, pc.bw
	stopped := pc.stopped
	pc.mu.Unlock()
	if stopped {
		return errConnDead
	}
	if err := pc.writeBatch(conn, bw, batch); err == nil {
		pc.mu.Lock()
		pc.redialed = false
		pc.mu.Unlock()
		return nil
	} else {
		pc.mu.Lock()
		if pc.stopped || pc.dead || pc.redialed {
			pc.mu.Unlock()
			return err
		}
		pc.redialed = true
		pc.mu.Unlock()
	}
	fresh, derr := net.DialTimeout("tcp", pc.to, dialTimeout)
	if derr != nil {
		return derr
	}
	pc.mu.Lock()
	if pc.stopped || pc.dead {
		pc.mu.Unlock()
		fresh.Close()
		return errConnDead
	}
	old := pc.conn
	pc.conn = fresh
	fbw := bufio.NewWriterSize(fresh, connBufBytes)
	pc.bw = fbw
	pc.lastArm = 0
	pc.mu.Unlock()
	old.Close()
	return pc.writeBatch(fresh, fbw, batch)
}

// ListenTCP starts a transport on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		listener: ln,
		inbound:  make(map[net.Conn]struct{}),
		pool:     make(map[string]*pooledConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
	t.handlerAtomic.Store(h)
}

// Send implements Transport: encode once, write on the destination's
// connection.
func (t *TCPTransport) Send(to string, env wire.Envelope) error {
	f, err := wire.NewFrame(&env)
	if err != nil {
		return fmt.Errorf("live: send to %s: %w", to, err)
	}
	defer f.Release()
	return t.SendFrame(to, f)
}

// SendFrame implements FrameSender: write one pre-encoded frame to the
// pooled connection to the destination, dialling one if absent (dial
// failures are reported synchronously). The call blocks until the socket
// absorbs the frame, bounded by writeTimeout. A connection that has already
// died is replaced by one guaranteed-fresh dial before the send is reported
// failed.
func (t *TCPTransport) SendFrame(to string, f *wire.Frame) error {
	one := [1]*wire.Frame{f}
	return t.SendFrames(to, one[:])
}

// SendFrames implements FrameBatchSender: write a batch of pre-encoded
// frames to one destination through a single buffered write and flush —
// a coalesced delta to one peer is one syscall, not one per envelope.
func (t *TCPTransport) SendFrames(to string, fs []*wire.Frame) error {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return fmt.Errorf("live: transport closed")
	}
	pc, err := t.conn(to)
	if err != nil {
		return err
	}
	if err := pc.send(fs); err == nil {
		return nil
	}
	// The pooled connection died under us (its owner's write failed, or it
	// was evicted): retry exactly once on a connection this call dialled
	// itself.
	t.evictConn(pc)
	pc, err = t.dialAndPool(to, true)
	if err != nil {
		return err
	}
	if err := pc.send(fs); err != nil {
		return fmt.Errorf("live: send to %s: %w", to, err)
	}
	return nil
}

// conn returns the pooled connection to `to`, dialling one if absent.
func (t *TCPTransport) conn(to string) (*pooledConn, error) {
	t.poolMu.Lock()
	pc, ok := t.pool[to]
	t.poolMu.Unlock()
	if ok {
		return pc, nil
	}
	return t.dialAndPool(to, false)
}

// dialAndPool dials `to` and installs the connection in the pool. With
// replace set an existing entry is displaced (the retry path, which must not
// reuse a possibly-dead pooled connection); without it a concurrently pooled
// connection wins and the fresh dial is discarded.
func (t *TCPTransport) dialAndPool(to string, replace bool) (*pooledConn, error) {
	raw, err := net.DialTimeout("tcp", to, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", to, err)
	}
	pc := newPooledConn(to, raw)
	t.poolMu.Lock()
	if t.poolClosed {
		t.poolMu.Unlock()
		raw.Close()
		return nil, fmt.Errorf("live: transport closed")
	}
	var displaced []*pooledConn
	if existing, ok := t.pool[to]; ok {
		if !replace {
			// A concurrent send won the race; keep its connection.
			t.poolMu.Unlock()
			raw.Close()
			return existing, nil
		}
		displaced = append(displaced, existing)
		delete(t.pool, to)
	}
	if len(t.pool) >= maxPooledConns {
		for victim, vc := range t.pool {
			delete(t.pool, victim)
			displaced = append(displaced, vc)
			break
		}
	}
	t.pool[to] = pc
	t.poolMu.Unlock()
	for _, vc := range displaced {
		vc.shutdown()
	}
	return pc, nil
}

// evictConn drops a connection from the pool if it is still the pooled one
// (a racing send may already have replaced it) and closes its socket.
func (t *TCPTransport) evictConn(pc *pooledConn) {
	t.poolMu.Lock()
	if t.pool[pc.to] == pc {
		delete(t.pool, pc.to)
	}
	t.poolMu.Unlock()
	pc.shutdown()
}

// writeBatch writes the frames through bw and flushes once. The write
// deadline is re-armed whenever the current one has aged past half its
// span — checked per frame, so a large batch trickling over a slow but
// healthy link keeps extending its deadline with progress (only a link
// absorbing nothing for writeTimeout fails), while the fast path pays one
// clock read per frame and a timer update only every writeTimeout/2.
func (pc *pooledConn) writeBatch(conn net.Conn, bw *bufio.Writer, frames []*wire.Frame) error {
	for _, f := range frames {
		now := time.Now()
		if now.UnixNano()-pc.lastArm > int64(writeTimeout/2) {
			conn.SetWriteDeadline(now.Add(writeTimeout))
			pc.lastArm = now.UnixNano()
		}
		if _, err := bw.Write(f.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Close implements Transport: stops accepting, tears down pooled and
// inbound connections, and waits for the serve goroutines.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.closedAtomic.Store(true)
	for conn := range t.inbound {
		conn.Close() // unblock the serve loops
	}
	t.mu.Unlock()

	t.poolMu.Lock()
	t.poolClosed = true
	conns := make([]*pooledConn, 0, len(t.pool))
	for to, pc := range t.pool {
		conns = append(conns, pc)
		delete(t.pool, to)
	}
	t.poolMu.Unlock()
	for _, pc := range conns {
		pc.shutdown() // closes the socket: unblocks mid-batch writes
	}

	err := t.listener.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		if len(t.inbound) >= maxInboundConns {
			for victim := range t.inbound {
				victim.Close() // its serve loop exits and deregisters
				break
			}
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.inbound, conn)
			t.mu.Unlock()
		}()
	}
}

// serveConn decodes a stream of binary envelope frames from one inbound
// connection, dispatching each to the handler, until the peer closes or an
// error — a truncated frame, a bad length, a malformed body — makes the
// stream unsafe to continue. The envelope is decoded once into a reusable
// struct outside any replica lock; per the Handler contract its containers
// are valid only for the duration of the call.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	fr := wire.NewFrameReader(bufio.NewReaderSize(conn, connBufBytes))
	var env wire.Envelope
	for {
		if err := fr.ReadEnvelope(&env); err != nil {
			return // EOF, peer reset, or a corrupt stream: drop the connection
		}
		if t.closedAtomic.Load() {
			return
		}
		if handler, _ := t.handlerAtomic.Load().(Handler); handler != nil {
			handler(env)
		}
	}
}
