package live

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/p2pgossip/update/internal/wire"
)

// dialTimeout bounds connection establishment to an (often offline) peer.
const dialTimeout = 2 * time.Second

// writeTimeout bounds one envelope write on a pooled connection. A peer that
// keeps the connection open but stops reading (stalled process, dead NAT
// entry) would otherwise block the sender forever once the TCP window fills
// — with the per-connection mutex held, wedging every goroutine sending to
// that peer. The deadline turns the stall into a write error, and the
// connection is then evicted like any other dead one.
const writeTimeout = 10 * time.Second

// errConnDead marks a pooled connection another sender already failed on.
var errConnDead = errors.New("live: pooled connection dead")

// maxPooledConns caps the outbound connection pool, and maxInboundConns the
// accepted-connection set, so a node that has exchanged traffic with a large
// population does not hold a socket (and, inbound, a goroutine) per peer it
// ever met — replicas in the target environment are mostly offline, and file
// descriptors are the scarce resource. At the cap an arbitrary entry is
// evicted; the evicted peer simply pays one redial on its next exchange.
const (
	maxPooledConns  = 256
	maxInboundConns = 512
)

// TCPTransport sends and receives envelopes over TCP. Connections to each
// destination are pooled and carry a stream of length-prefixed gob frames
// (the format lives in wire.FrameWriter/FrameReader): the dial, the TCP
// handshake, and the gob type dictionary are paid once per peer instead of
// once per envelope, which is what turns an update burst (a push plus its
// ack, a pull request plus its response) from four dials into writes on two
// warm connections. Failed dials stay cheap (one timeout), and a send to a
// peer whose pooled connection has died redials once before reporting the
// error.
type TCPTransport struct {
	listener net.Listener

	mu      sync.RWMutex
	handler Handler
	closed  bool
	wg      sync.WaitGroup
	// inbound tracks accepted connections so Close (and the cap) can
	// unblock their serve loops; they are long-lived now that each carries
	// a stream.
	inbound map[net.Conn]struct{}

	// poolMu guards pool and poolClosed. poolClosed mirrors closed so the
	// pool's own lifecycle decisions need no second lock (and no race
	// between a Send pooling a fresh dial and Close draining the pool).
	poolMu     sync.Mutex
	pool       map[string]*pooledConn
	poolClosed bool
}

var _ Transport = (*TCPTransport)(nil)

// pooledConn is one outbound connection with its persistent frame-writer
// (gob encoder) state.
type pooledConn struct {
	mu   sync.Mutex
	conn net.Conn
	fw   *wire.FrameWriter
	dead bool
}

func newPooledConn(conn net.Conn) *pooledConn {
	return &pooledConn{conn: conn, fw: wire.NewFrameWriter(conn)}
}

// writeEnvelope writes one frame under the connection's mutex and write
// deadline, marking the connection dead on any failure (the frame stream
// cannot be resynchronised after a partial write or a skipped frame).
func (pc *pooledConn) writeEnvelope(env wire.Envelope) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.dead {
		return errConnDead
	}
	pc.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	err := pc.fw.WriteEnvelope(env)
	if err != nil {
		pc.dead = true
	}
	return err
}

// ListenTCP starts a transport on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		listener: ln,
		inbound:  make(map[net.Conn]struct{}),
		pool:     make(map[string]*pooledConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Send implements Transport: one frame on the pooled connection to the
// destination. A stale pooled connection (peer restarted, idle reset,
// stalled past the write deadline) is detected by the write failing; the
// envelope is then retried once on a guaranteed-fresh dial, so a single
// peer outage costs one redial rather than a lost message. Envelope-level
// failures (an encoding above wire.MaxFrameBytes) still cost the connection
// — the persistent encoder state is no longer trustworthy — but are not
// retried: they would fail identically on any stream.
func (t *TCPTransport) Send(to string, env wire.Envelope) error {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return fmt.Errorf("live: transport closed")
	}
	pc, fresh, err := t.conn(to)
	if err != nil {
		return err
	}
	err = pc.writeEnvelope(env)
	if err == nil {
		return nil
	}
	t.evict(to, pc)
	if errors.Is(err, wire.ErrFrameTooLarge) || fresh {
		return fmt.Errorf("live: send to %s: %w", to, err)
	}
	// The pooled connection was stale (or a racing sender had already
	// broken it): retry exactly once on a connection this call dialled
	// itself, so the retry cannot land on another goroutine's corpse.
	pc, err = t.dialAndPool(to, true)
	if err != nil {
		return err
	}
	if err := pc.writeEnvelope(env); err != nil {
		t.evict(to, pc)
		return fmt.Errorf("live: send to %s: %w", to, err)
	}
	return nil
}

// conn returns the pooled connection to `to`, dialling one if absent. The
// boolean reports whether this call created it.
func (t *TCPTransport) conn(to string) (*pooledConn, bool, error) {
	t.poolMu.Lock()
	pc, ok := t.pool[to]
	t.poolMu.Unlock()
	if ok {
		return pc, false, nil
	}
	pc, err := t.dialAndPool(to, false)
	if err != nil {
		return nil, false, err
	}
	return pc, true, nil
}

// dialAndPool dials `to` and installs the connection in the pool. With
// replace set an existing entry is displaced (the retry path, which must
// not reuse a possibly-dead pooled connection); without it a concurrently
// pooled connection wins and the fresh dial is discarded.
func (t *TCPTransport) dialAndPool(to string, replace bool) (*pooledConn, error) {
	raw, err := net.DialTimeout("tcp", to, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", to, err)
	}
	pc := newPooledConn(raw)
	t.poolMu.Lock()
	if t.poolClosed {
		t.poolMu.Unlock()
		raw.Close()
		return nil, fmt.Errorf("live: transport closed")
	}
	var displaced []*pooledConn
	if existing, ok := t.pool[to]; ok {
		if !replace {
			// A concurrent Send won the race; keep its connection.
			t.poolMu.Unlock()
			raw.Close()
			return existing, nil
		}
		displaced = append(displaced, existing)
		delete(t.pool, to)
	}
	if len(t.pool) >= maxPooledConns {
		for victim, vc := range t.pool {
			delete(t.pool, victim)
			displaced = append(displaced, vc)
			break
		}
	}
	t.pool[to] = pc
	t.poolMu.Unlock()
	for _, vc := range displaced {
		vc.conn.Close()
	}
	return pc, nil
}

// evict drops a dead connection from the pool (only if it is still the one
// pooled — a racing Send may already have replaced it).
func (t *TCPTransport) evict(to string, pc *pooledConn) {
	t.poolMu.Lock()
	if t.pool[to] == pc {
		delete(t.pool, to)
	}
	t.poolMu.Unlock()
	pc.conn.Close()
}

// Close implements Transport: stops accepting, closes pooled and inbound
// connections, and waits for in-flight deliveries.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for conn := range t.inbound {
		conn.Close() // unblock the serve loops
	}
	t.mu.Unlock()

	t.poolMu.Lock()
	t.poolClosed = true
	for to, pc := range t.pool {
		pc.conn.Close()
		delete(t.pool, to)
	}
	t.poolMu.Unlock()

	err := t.listener.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		if len(t.inbound) >= maxInboundConns {
			for victim := range t.inbound {
				victim.Close() // its serve loop exits and deregisters
				break
			}
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.inbound, conn)
			t.mu.Unlock()
		}()
	}
}

// serveConn decodes a stream of envelope frames from one inbound
// connection, dispatching each to the handler, until the peer closes or an
// error makes the stream unsafe to continue. One decoder serves the whole
// connection, so gob type information is parsed once per peer rather than
// once per message.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	fr := wire.NewFrameReader(bufio.NewReader(conn))
	for {
		env, err := fr.ReadEnvelope()
		if err != nil {
			return // EOF, peer reset, or a corrupt stream: drop the connection
		}
		t.mu.RLock()
		handler := t.handler
		closed := t.closed
		t.mu.RUnlock()
		if closed {
			return
		}
		if handler != nil {
			handler(env)
		}
	}
}
