// Package live runs the hybrid push/pull protocol in real time: replicas
// are goroutine-driven, messages travel over a pluggable Transport, and the
// pull phase is scheduled by wall-clock timers instead of simulation rounds.
//
// Two transports ship with the package: an in-memory hub for tests and
// examples, and a TCP transport (length-prefixed binary framing, see
// internal/wire) for actual deployments — the paper's position that the
// physical layer is orthogonal (§1) made concrete.
package live

import (
	"fmt"
	"sync"

	"github.com/p2pgossip/update/internal/wire"
)

// Handler consumes inbound envelopes. Implementations must be safe for
// concurrent calls. The envelope's container fields (RF, Updates,
// KnownPeers, Clock) may be backed by per-connection storage the transport
// reuses for the next message: a handler must finish with them before
// returning. Strings, update values, and version histories are fresh per
// message and may be retained.
type Handler func(wire.Envelope)

// Transport moves envelopes between replica addresses.
type Transport interface {
	// Addr returns the local address other replicas use to reach this one.
	Addr() string
	// Send delivers an envelope to the given address, best effort: sends to
	// unknown or offline addresses report an error but must not block.
	Send(to string, env wire.Envelope) error
	// SetHandler registers the inbound callback; must be called before the
	// first Send to this transport.
	SetHandler(h Handler)
	// Close releases resources and stops inbound delivery.
	Close() error
}

// FrameSender is implemented by transports that accept pre-encoded binary
// frames. A push fanout encodes its envelope once (wire.NewFrame) and hands
// the same frame to every destination; the transport retains the frame for
// as long as its queues need it. Transports without this fast path receive
// the envelope through Send once per destination instead.
type FrameSender interface {
	SendFrame(to string, f *wire.Frame) error
}

// FrameBatchSender is implemented by transports that can deliver several
// pre-encoded frames to one destination as a single write+flush. The
// coalescing per-peer senders use it so that an entire merged delta — pushes,
// a pull response, acks — costs one syscall on the wire. The frames are only
// borrowed for the duration of the call.
type FrameBatchSender interface {
	SendFrames(to string, fs []*wire.Frame) error
}

// Hub is an in-memory message fabric connecting MemTransports. It supports
// taking endpoints "offline" — sends to them fail, mirroring the paper's
// unreliable peers — and is safe for concurrent use.
type Hub struct {
	mu      sync.RWMutex
	members map[string]*MemTransport
	offline map[string]bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{
		members: make(map[string]*MemTransport),
		offline: make(map[string]bool),
	}
}

// Attach creates a transport bound to addr on this hub.
func (h *Hub) Attach(addr string) (*MemTransport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.members[addr]; exists {
		return nil, fmt.Errorf("live: address %q already attached", addr)
	}
	tr := &MemTransport{hub: h, addr: addr}
	h.members[addr] = tr
	return tr, nil
}

// SetOnline toggles an endpoint's availability.
func (h *Hub) SetOnline(addr string, online bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.offline[addr] = !online
}

// Online reports whether an endpoint is attached and not marked offline.
func (h *Hub) Online(addr string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, attached := h.members[addr]
	return attached && !h.offline[addr]
}

func (h *Hub) deliver(to string, env wire.Envelope) error {
	h.mu.RLock()
	tr, ok := h.members[to]
	down := h.offline[to]
	h.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: unknown address %q", to)
	}
	if down {
		return fmt.Errorf("live: address %q offline", to)
	}
	tr.mu.RLock()
	handler := tr.handler
	closed := tr.closed
	tr.mu.RUnlock()
	if closed || handler == nil {
		return fmt.Errorf("live: address %q not receiving", to)
	}
	handler(env)
	return nil
}

func (h *Hub) detach(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.members, addr)
	delete(h.offline, addr)
}

// MemTransport is one endpoint on a Hub.
type MemTransport struct {
	hub  *Hub
	addr string

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Transport = (*MemTransport)(nil)

// Addr implements Transport.
func (t *MemTransport) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *MemTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Send implements Transport. Delivery is synchronous in the caller's
// goroutine; the replica's handler dispatches to its own loop.
func (t *MemTransport) Send(to string, env wire.Envelope) error {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return fmt.Errorf("live: transport %q closed", t.addr)
	}
	if !t.hub.Online(t.addr) {
		return fmt.Errorf("live: sender %q offline", t.addr)
	}
	return t.hub.deliver(to, env)
}

// Close implements Transport.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.hub.detach(t.addr)
	return nil
}
