package live

import (
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/engine"
	"github.com/p2pgossip/update/internal/wire"
)

// sweep forces the engine's ack-deadline and suspect-expiry sweeps, which
// normally run lazily during peer sampling.
func sweep(r *Replica) {
	r.run(func(e *engine.Engine[string]) { e.Sweep() })
}

func TestAcksPreferRespondingPeers(t *testing.T) {
	cfg := Config{
		Fanout:       3,
		PartialList:  true,
		Acks:         true,
		AckTimeout:   20 * time.Millisecond,
		SuspectTTL:   time.Minute,
		PullAttempts: 0,
	}
	hub, replicas := newCluster(t, 6, cfg)
	// Replica 5 is offline: pushes to it never ack.
	hub.SetOnline("replica-5", false)

	replicas[0].Publish("k1", []byte("v1"))
	replicas[0].Publish("k2", []byte("v2"))
	time.Sleep(60 * time.Millisecond) // let ack timeouts fire

	// Force a sweep and inspect: if replica 0 ever pushed to replica-5, the
	// ack expectation must have been promoted to a suspicion by now.
	var awaiting []string
	replicas[0].run(func(e *engine.Engine[string]) {
		e.Sweep()
		awaiting = e.AwaitingAck()
	})
	for _, a := range awaiting {
		if a == "replica-5" {
			t.Fatal("awaiting ack entry not swept")
		}
	}

	// Publish more updates; every one must reach the responsive replicas.
	replicas[0].Publish("k3", []byte("v3"))
	eventually(t, 2*time.Second, func() bool {
		for _, r := range replicas[:5] {
			if _, ok := r.Get("k3"); !ok {
				return false
			}
		}
		return true
	}, "responsive replicas did not receive the update")
}

func TestSuspectExpiryReadmitsPeer(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("acker")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Fanout: 1, Acks: true,
		AckTimeout: time.Millisecond,
		SuspectTTL: 50 * time.Millisecond,
		Seed:       60,
	}
	r, err := NewReplica(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r.AddPeers("ghost")
	// A push to the unreachable peer leaves an ack expectation that can
	// only become a suspicion.
	r.Publish("k", []byte("v"))
	time.Sleep(10 * time.Millisecond)
	sweep(r)
	if got := r.Suspects(); len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("Suspects = %v", got)
	}
	// While suspected, the peer is not sampled.
	var sample []string
	r.run(func(e *engine.Engine[string]) { sample = e.SamplePeers(5) })
	if len(sample) != 0 {
		t.Fatalf("suspect sampled: %v", sample)
	}
	// After the TTL it is re-admitted.
	time.Sleep(60 * time.Millisecond)
	r.run(func(e *engine.Engine[string]) { sample = e.SamplePeers(5) })
	if len(sample) != 1 {
		t.Fatalf("expired suspect not re-admitted: %v", sample)
	}
}

func TestAckRemovesSuspicion(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("fresh")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Fanout: 1, Acks: true,
		AckTimeout: time.Millisecond,
		SuspectTTL: time.Minute,
		Seed:       61,
	}
	r, err := NewReplica(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r.AddPeers("peer-x")
	r.Publish("k", []byte("v"))
	time.Sleep(5 * time.Millisecond)
	sweep(r)
	if got := r.Suspects(); len(got) != 1 {
		t.Fatalf("Suspects = %v, want peer-x suspected", got)
	}
	// A (late) ack clears the suspicion and records the acking peer. Even a
	// zero update reference works: the engine's ack handling is keyed by the
	// sender, not the update.
	r.handle(wire.Envelope{Kind: wire.KindAck, From: "peer-x"})
	var acked []string
	r.run(func(e *engine.Engine[string]) { acked = e.Acked() })
	if got := r.Suspects(); len(got) != 0 || len(acked) != 1 || acked[0] != "peer-x" {
		t.Fatalf("ack processing wrong: suspects=%v acked=%v", got, acked)
	}
}

func TestAckConfigValidation(t *testing.T) {
	if err := (Config{AckTimeout: -time.Second}).Validate(); err == nil {
		t.Fatal("negative ack timeout accepted")
	}
	if err := (Config{SuspectTTL: -time.Second}).Validate(); err == nil {
		t.Fatal("negative suspect ttl accepted")
	}
}

func TestAcksDisabledNoBookkeeping(t *testing.T) {
	cfg := Config{Fanout: 2, PullAttempts: 0}
	_, replicas := newCluster(t, 4, cfg)
	replicas[0].Publish("k", []byte("v"))
	eventually(t, time.Second, func() bool {
		_, ok := replicas[3].Get("k")
		return ok
	}, "push failed")
	var awaiting, acked []string
	replicas[0].run(func(e *engine.Engine[string]) {
		awaiting = e.AwaitingAck()
		acked = e.Acked()
	})
	if len(awaiting) != 0 || len(acked) != 0 {
		t.Fatal("ack bookkeeping active despite Acks=false")
	}
}
