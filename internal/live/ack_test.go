package live

import (
	"testing"
	"time"
)

func TestAcksPreferRespondingPeers(t *testing.T) {
	cfg := Config{
		Fanout:       3,
		PartialList:  true,
		Acks:         true,
		AckTimeout:   20 * time.Millisecond,
		SuspectTTL:   time.Minute,
		PullAttempts: 0,
	}
	hub, replicas := newCluster(t, 6, cfg)
	// Replica 5 is offline: pushes to it never ack.
	hub.SetOnline("replica-5", false)

	replicas[0].Publish("k1", []byte("v1"))
	replicas[0].Publish("k2", []byte("v2"))
	time.Sleep(60 * time.Millisecond) // let ack timeouts fire

	// Force a sweep and inspect: if replica 0 ever pushed to replica-5, it
	// must now be suspected (no ack possible).
	replicas[0].mu.Lock()
	replicas[0].sweepAcksLocked(time.Now())
	_, pushed := replicas[0].awaitingAck["replica-5"]
	replicas[0].mu.Unlock()
	if pushed {
		t.Fatal("awaiting ack entry not swept")
	}

	// Publish more updates; every one must reach the responsive replicas.
	replicas[0].Publish("k3", []byte("v3"))
	eventually(t, 2*time.Second, func() bool {
		for _, r := range replicas[:5] {
			if _, ok := r.Get("k3"); !ok {
				return false
			}
		}
		return true
	}, "responsive replicas did not receive the update")
}

func TestSuspectExpiryReadmitsPeer(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("acker")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Fanout: 1, Acks: true,
		AckTimeout: time.Millisecond,
		SuspectTTL: 10 * time.Millisecond,
		Seed:       60,
	}
	r, err := NewReplica(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r.AddPeers("ghost")
	r.mu.Lock()
	r.expectAckLocked("ghost", time.Now().Add(-time.Second))
	r.sweepAcksLocked(time.Now())
	_, suspected := r.suspects["ghost"]
	r.mu.Unlock()
	if !suspected {
		t.Fatal("overdue ack did not create a suspect")
	}
	if got := r.Suspects(); len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("Suspects = %v", got)
	}
	// While suspected, the peer is not sampled.
	r.mu.Lock()
	sample := r.sampleLocked(5, nil)
	r.mu.Unlock()
	if len(sample) != 0 {
		t.Fatalf("suspect sampled: %v", sample)
	}
	// After the TTL it is re-admitted.
	time.Sleep(15 * time.Millisecond)
	r.mu.Lock()
	r.sweepAcksLocked(time.Now())
	sample = r.sampleLocked(5, nil)
	r.mu.Unlock()
	if len(sample) != 1 {
		t.Fatalf("expired suspect not re-admitted: %v", sample)
	}
}

func TestAckRemovesSuspicion(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("fresh")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 1, Acks: true, Seed: 61}, tr)
	if err != nil {
		t.Fatal(err)
	}
	r.AddPeers("peer-x")
	now := time.Now()
	r.mu.Lock()
	r.suspects["peer-x"] = now
	r.noteAckLocked("peer-x", now)
	_, stillSuspect := r.suspects["peer-x"]
	_, acked := r.ackedBy["peer-x"]
	r.mu.Unlock()
	if stillSuspect || !acked {
		t.Fatalf("ack processing wrong: suspect=%v acked=%v", stillSuspect, acked)
	}
}

func TestAckConfigValidation(t *testing.T) {
	if err := (Config{AckTimeout: -time.Second}).Validate(); err == nil {
		t.Fatal("negative ack timeout accepted")
	}
	if err := (Config{SuspectTTL: -time.Second}).Validate(); err == nil {
		t.Fatal("negative suspect ttl accepted")
	}
}

func TestAcksDisabledNoBookkeeping(t *testing.T) {
	cfg := Config{Fanout: 2, PullAttempts: 0}
	_, replicas := newCluster(t, 4, cfg)
	replicas[0].Publish("k", []byte("v"))
	eventually(t, time.Second, func() bool {
		_, ok := replicas[3].Get("k")
		return ok
	}, "push failed")
	replicas[0].mu.Lock()
	defer replicas[0].mu.Unlock()
	if len(replicas[0].awaitingAck) != 0 || len(replicas[0].ackedBy) != 0 {
		t.Fatal("ack bookkeeping active despite Acks=false")
	}
}
