package live

import (
	"github.com/p2pgossip/update/internal/engine"
	"github.com/p2pgossip/update/internal/store"
)

// This file is the observability surface of the live runtime. A replica can
// be configured with a set of Hooks (structured protocol events: applies,
// acks, suspicions) and a Metrics sink (counters for every message class).
// Both are optional and add no overhead when unset; the public pushpull.Node
// wires them to its Watch streams and metrics registry.

// Source identifies how an update reached a replica.
type Source = engine.Source

// Update sources.
const (
	// SourceLocal marks updates created by this replica's own Publish or
	// Delete.
	SourceLocal = engine.SourceLocal
	// SourcePush marks updates received through the constrained-flooding
	// push phase.
	SourcePush = engine.SourcePush
	// SourcePull marks updates obtained by anti-entropy pull
	// reconciliation.
	SourcePull = engine.SourcePull
)

// Hooks observes protocol-level events. All callbacks are optional; set
// callbacks run synchronously on the replica's message paths, so they must
// be fast, must not block, and must not call back into the Replica.
type Hooks struct {
	// OnApply fires after an update is offered to the local store, whether
	// created locally, pushed, or pulled. res classifies the outcome and
	// branches is the number of coexisting revisions of the key afterwards
	// (>1 signals concurrent versions).
	OnApply func(u store.Update, res store.ApplyResult, src Source, branches int)
	// OnAck fires when a peer acknowledges an update we pushed (§6).
	OnAck func(peer string)
	// OnSuspect fires when a peer is suspected offline because its ack
	// never arrived (§6).
	OnSuspect func(peer string)
}

// Metrics is the counter sink the replica reports into. The project's
// metrics.Registry satisfies it; nil disables instrumentation.
type Metrics interface {
	// Inc increments the named counter by one.
	Inc(name string)
	// Add increments the named counter by delta.
	Add(name string, delta float64)
}

// Counter names reported by an instrumented replica.
const (
	// MetricPushSent counts push envelopes sent (including forwards).
	MetricPushSent = "live.push.sent"
	// MetricPushReceived counts push envelopes received.
	MetricPushReceived = "live.push.received"
	// MetricPushDuplicate counts received pushes already known locally.
	MetricPushDuplicate = "live.push.duplicate"
	// MetricApplied counts updates that changed the local store.
	MetricApplied = "live.apply.applied"
	// MetricObsolete counts updates dominated by existing branches.
	MetricObsolete = "live.apply.obsolete"
	// MetricPullRequests counts pull requests sent.
	MetricPullRequests = "live.pull.requests"
	// MetricPullServed counts pull requests answered for peers.
	MetricPullServed = "live.pull.served"
	// MetricPullUpdates counts updates received in pull responses.
	MetricPullUpdates = "live.pull.updates"
	// MetricAckSent counts acknowledgements sent (§6).
	MetricAckSent = "live.ack.sent"
	// MetricAckReceived counts acknowledgements received (§6).
	MetricAckReceived = "live.ack.received"
	// MetricSuspects counts peers promoted to suspected-offline (§6).
	MetricSuspects = "live.suspect"
	// MetricQuerySent counts query envelopes sent (§4.4).
	MetricQuerySent = "live.query.sent"
	// MetricQueryServed counts queries answered for peers (§4.4).
	MetricQueryServed = "live.query.served"
	// MetricSnapshotServed counts snapshot catch-up frames sent to peers
	// whose pull gap was compacted away or exceeded the snapshot threshold.
	MetricSnapshotServed = "live.snapshot.served"
	// MetricSnapshotCatchups counts snapshot catch-up frames ingested.
	MetricSnapshotCatchups = "live.snapshot.catchups"
	// MetricTombstonesGC counts tombstoned revisions collected by the
	// janitor after their retention expired.
	MetricTombstonesGC = "live.janitor.tombstones_gc"
	// MetricLogCompacted counts update-log entries dropped by frontier
	// compaction.
	MetricLogCompacted = "live.janitor.log_compacted"
	// MetricKeysExpired counts live revisions the janitor tombstoned because
	// their TTL lapsed.
	MetricKeysExpired = "live.janitor.keys_expired"
	// MetricSendCoalesced counts deposits absorbed by an already-pending
	// per-peer delta instead of growing it: superseded pushes, re-merged
	// pull requests/responses, duplicate acks. A high rate means slow links
	// are being shielded by coalescing rather than by queueing.
	MetricSendCoalesced = "live.send.coalesced"
	// MetricSendFailed counts outbound envelopes dropped undelivered —
	// transport errors after the redial retry, or non-mergeable pending
	// traffic evicted past its cap. The protocol self-heals via pull
	// anti-entropy; a sustained rate points at an unreachable peer.
	MetricSendFailed = "live.send.failed"
)

// CounterNames is the canonical list of every counter name an instrumented
// replica can report — exactly the "live." constants above, in declaration
// order. The /metrics exporter and the public pushpull.MetricNames are built
// from this slice, and TestReplicaCountersAreRegistered drives a replica
// through every protocol path asserting it never emits a name outside it, so
// the serving surface cannot silently drift from the protocol counters.
var CounterNames = []string{
	MetricPushSent,
	MetricPushReceived,
	MetricPushDuplicate,
	MetricApplied,
	MetricObsolete,
	MetricPullRequests,
	MetricPullServed,
	MetricPullUpdates,
	MetricAckSent,
	MetricAckReceived,
	MetricSuspects,
	MetricQuerySent,
	MetricQueryServed,
	MetricSnapshotServed,
	MetricSnapshotCatchups,
	MetricTombstonesGC,
	MetricLogCompacted,
	MetricKeysExpired,
	MetricSendCoalesced,
	MetricSendFailed,
}

// inc bumps a counter if a metrics sink is configured.
func (r *Replica) inc(name string) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Inc(name)
	}
}

// add bumps a counter by n if a metrics sink is configured.
func (r *Replica) add(name string, n int) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Add(name, float64(n))
	}
}

// fireApply reports one apply outcome to the metrics sink and the OnApply
// hook. branches must come from the apply itself (Store.ApplyObserved), not
// a later BranchCount, so concurrent applies to the key cannot skew it.
// Called from the post-unlock flush, never with r.mu held.
func (r *Replica) fireApply(u store.Update, res store.ApplyResult, src Source, branches int) {
	if r.cfg.Metrics != nil {
		switch res {
		case store.Applied:
			r.inc(MetricApplied)
		case store.Obsolete:
			r.inc(MetricObsolete)
		}
		if src == SourcePull {
			r.inc(MetricPullUpdates)
		}
	}
	if r.cfg.Hooks.OnApply != nil {
		r.cfg.Hooks.OnApply(u, res, src, branches)
	}
}
