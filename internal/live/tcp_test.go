package live

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := make(chan wire.Envelope, 1)
	b.SetHandler(func(env wire.Envelope) { got <- env })

	env := wire.Envelope{Kind: wire.KindAck, From: a.Addr(),
		UpdateRef: store.Ref{Origin: "origin", Seq: 7}}
	if err := a.Send(b.Addr(), env); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case received := <-got:
		if received.Kind != wire.KindAck || received.UpdateRef != env.UpdateRef {
			t.Fatalf("received %+v", received)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no envelope received")
	}
}

func TestTCPSendToDeadAddressFails(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// A port we just closed is very likely dead.
	dead, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close()
	if err := a.Send(deadAddr, wire.Envelope{Kind: wire.KindPush}); err == nil {
		t.Fatal("send to closed listener succeeded")
	}
}

func TestTCPCloseStopsDelivery(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := a.Send("127.0.0.1:1", wire.Envelope{}); err == nil {
		t.Fatal("send on closed transport succeeded")
	}
}

func TestReplicasOverTCPConverge(t *testing.T) {
	const n = 5
	transports := make([]*TCPTransport, n)
	replicas := make([]*Replica, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
		cfg := Config{
			Fanout:       3,
			PartialList:  true,
			PullAttempts: 2,
			PullInterval: 20 * time.Millisecond,
			Seed:         int64(i) + 1,
		}
		r, err := NewReplica(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
	}
	for i, r := range replicas {
		r.AddPeers(addrs...)
		r.Start()
		i := i
		t.Cleanup(func() {
			replicas[i].Stop()
			transports[i].Close()
		})
	}

	replicas[0].Publish("tcp-key", []byte("payload"))
	eventually(t, 5*time.Second, func() bool {
		for _, r := range replicas {
			rev, ok := r.Get("tcp-key")
			if !ok || string(rev.Value) != "payload" {
				return false
			}
		}
		return true
	}, "TCP replicas did not converge")
}

// TestTCPTruncatedFrameDropsConnCleanly simulates a peer crashing mid-frame:
// the victim's reader must drop that connection without wedging the
// transport — later, well-formed traffic (including from the same origin
// address) keeps flowing in both directions.
func TestTCPTruncatedFrameDropsConnCleanly(t *testing.T) {
	victim, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	got := make(chan wire.Envelope, 4)
	victim.SetHandler(func(env wire.Envelope) { got <- env })

	// A raw connection writes a frame header promising more bytes than ever
	// arrive, then dies — the crash-mid-frame shape.
	raw, err := net.Dial("tcp", victim.Addr())
	if err != nil {
		t.Fatal(err)
	}
	full, err := wire.AppendFrame(nil, &wire.Envelope{
		Kind: wire.KindPush, From: "liar",
		Update: wire.Update{Origin: "o", Seq: 1, Key: "k", Value: []byte("v")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	select {
	case env := <-got:
		t.Fatalf("truncated frame delivered an envelope: %+v", env)
	case <-time.After(50 * time.Millisecond):
	}

	// The transport still serves fresh connections and can still send.
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	echoed := make(chan wire.Envelope, 1)
	peer.SetHandler(func(env wire.Envelope) { echoed <- env })

	env := wire.Envelope{Kind: wire.KindQuery, From: peer.Addr(), QID: 42, Key: "k"}
	if err := peer.Send(victim.Addr(), env); err != nil {
		t.Fatalf("send to victim after truncated frame: %v", err)
	}
	select {
	case in := <-got:
		if in.Kind != wire.KindQuery || in.QID != 42 {
			t.Fatalf("victim received %+v", in)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("victim wedged: no delivery after truncated frame")
	}
	if err := victim.Send(peer.Addr(), wire.Envelope{
		Kind: wire.KindQueryResp, From: victim.Addr(), QID: 42, Key: "k",
	}); err != nil {
		t.Fatalf("victim send: %v", err)
	}
	select {
	case <-echoed:
	case <-time.After(2 * time.Second):
		t.Fatal("victim's outbound pool wedged after truncated inbound frame")
	}
}

func TestWireEncodeDecode(t *testing.T) {
	env := wire.Envelope{
		Kind: wire.KindPullReq,
		From: "a:1",
		Clock: version.Clock{
			"x": 3, "y": 9,
		},
	}
	raw, err := wire.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := wire.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != env.Kind || back.From != env.From || back.Clock["y"] != 9 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if _, err := wire.Decode([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestWireUpdateConversion(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach(fmt.Sprintf("w-%p", t))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 0, Seed: 9}, tr)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := r.Publish("k", []byte("v"))

	back := wire.FromStore(u).ToStore()
	if back.ID() != u.ID() || string(back.Value) != string(u.Value) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, u)
	}
	if len(back.Version) != len(u.Version) || back.Version[0] != u.Version[0] {
		t.Fatal("version history corrupted")
	}
}
