package live

import (
	"context"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/wire"
)

func TestLiveQueryReturnsFreshest(t *testing.T) {
	cfg := Config{Fanout: 0, PullAttempts: 0} // no gossip: stores diverge
	_, replicas := newCluster(t, 4, cfg)

	// Replica 1 has the old revision; replica 2 the newer one (same origin
	// history, longer).
	u1, _ := replicas[0].Publish("k", []byte("old"))
	u2, _ := replicas[0].Publish("k", []byte("new"))
	replicas[1].Store().Apply(u1)
	replicas[2].Store().Apply(u1)
	replicas[2].Store().Apply(u2)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := replicas[3].Query(ctx, "k", 3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !out.Found || string(out.Revision.Value) != "new" {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Responses != 3 {
		t.Fatalf("responses = %d", out.Responses)
	}
}

func TestLiveQueryLocalVoice(t *testing.T) {
	// A replica that already holds the freshest revision must not be
	// downgraded by stale peers.
	cfg := Config{Fanout: 0, PullAttempts: 0}
	_, replicas := newCluster(t, 3, cfg)
	u1, _ := replicas[0].Publish("k", []byte("old"))
	u2, _ := replicas[0].Publish("k", []byte("new"))
	replicas[1].Store().Apply(u1)
	replicas[2].Store().Apply(u1)
	replicas[2].Store().Apply(u2) // the querier itself is freshest

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := replicas[2].Query(ctx, "k", 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Revision.Value) != "new" {
		t.Fatalf("stale peer won: %+v", out)
	}
}

func TestLiveQueryMissingKey(t *testing.T) {
	cfg := Config{Fanout: 0, PullAttempts: 0}
	_, replicas := newCluster(t, 3, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := replicas[0].Query(ctx, "ghost", 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found || out.Responses != 2 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestLiveQueryTimeoutWithOfflinePeers(t *testing.T) {
	cfg := Config{Fanout: 0, PullAttempts: 0}
	hub, replicas := newCluster(t, 3, cfg)
	hub.SetOnline("replica-1", false)
	hub.SetOnline("replica-2", false)

	// No local copy, no responders: context error surfaces.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := replicas[0].Query(ctx, "k", 2); err == nil {
		t.Fatal("query with zero responses should error")
	}

	// With a local copy the query degrades gracefully to the local answer.
	replicas[0].Publish("k", []byte("local"))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	out, err := replicas[0].Query(ctx2, "k", 2)
	if err != nil {
		t.Fatalf("degraded query errored: %v", err)
	}
	if !out.Found || string(out.Revision.Value) != "local" {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestLiveQueryEmptyResponseStillCounts guards query termination: a
// responder with nothing to offer (not found, no history) cannot vote on
// freshness, but its answer must still count toward the response total —
// otherwise the query would block until the context deadline. (Responses
// with corrupt version histories no longer reach this layer at all: the
// binary decoder rejects the frame and the connection is dropped, which the
// wire and TCP tests pin.)
func TestLiveQueryEmptyResponseStillCounts(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("querier")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 0, PullAttempts: 0, Seed: 90}, tr)
	if err != nil {
		t.Fatal(err)
	}
	badTr, err := hub.Attach("bad")
	if err != nil {
		t.Fatal(err)
	}
	badTr.SetHandler(func(env wire.Envelope) {
		if env.Kind != wire.KindQuery {
			return
		}
		_ = badTr.Send(env.From, wire.Envelope{
			Kind: wire.KindQueryResp, From: "bad", QID: env.QID, Key: env.Key,
			Found: false, Confident: true,
		})
	})
	r.AddPeers("bad")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := r.Query(ctx, "k", 1)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.Responses != 1 || out.Found {
		t.Fatalf("outcome = %+v, want 1 counted response and no value", out)
	}
}

func TestLiveQueryNoPeers(t *testing.T) {
	hub := NewHub()
	tr, err := hub.Attach("loner")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(Config{Fanout: 0, Seed: 70}, tr)
	if err != nil {
		t.Fatal(err)
	}
	r.Publish("k", []byte("v"))
	ctx := context.Background()
	out, err := r.Query(ctx, "k", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || string(out.Revision.Value) != "v" {
		t.Fatalf("outcome = %+v", out)
	}
}
