package live

import (
	"fmt"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/wal"
)

// walConfig is the base protocol config the WAL tests run replicas with.
func walConfig() Config {
	return Config{
		Fanout:       2,
		NewPF:        func() pf.Func { return pf.Geometric{Base: 0.9} },
		PartialList:  true,
		PullAttempts: 2,
		PullInterval: 5 * time.Millisecond,
	}
}

// openWAL opens a log in dir with the never policy (a kill -9 in-process is
// an abandoned handle, not lost page cache) and fails the test on error.
func openWAL(t *testing.T, dir string, opts wal.Options) *wal.Log {
	t.Helper()
	opts.Dir = dir
	if opts.Policy == 0 {
		opts.Policy = wal.SyncNever
	}
	l, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	return l
}

// TestWALReplicaRecoversAfterKill is the live-level crash drill: a replica
// logging to a WAL applies local publishes, a delete, and remotely ingested
// updates, is killed without any snapshot, and a fresh replica recovering
// from the WAL directory alone converges to the exact pre-kill store.
func TestWALReplicaRecoversAfterKill(t *testing.T) {
	dir := t.TempDir()
	l := openWAL(t, dir, wal.Options{})

	hub := NewHub()
	addrs := []string{"wal-0", "plain-1"}
	tr0, err := hub.Attach(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := hub.Attach(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	c0 := walConfig()
	c0.Seed = 1
	c0.WAL = l
	r0, err := NewReplica(c0, tr0)
	if err != nil {
		t.Fatalf("new replica: %v", err)
	}
	c1 := walConfig()
	c1.Seed = 2
	r1, err := NewReplica(c1, tr1)
	if err != nil {
		t.Fatalf("new replica: %v", err)
	}
	r0.AddPeers(addrs...)
	r1.AddPeers(addrs...)
	r0.Start()
	r1.Start()
	defer r1.Stop()

	for i := 0; i < 3; i++ {
		if _, err := r0.Publish(fmt.Sprintf("local-%d", i), []byte("v")); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	del, err := r0.Delete("local-0")
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	remote, _ := r1.Publish("remote", []byte("r"))
	eventually(t, 2*time.Second, func() bool {
		return r0.HasUpdate(remote.ID()) && r1.HasUpdate(del.ID())
	}, "replicas never converged before the kill")
	want := r0.Store().UpdateCount()

	// kill -9: no snapshot, no graceful close — the WAL directory is all
	// that survives.
	r0.Stop()
	if err := tr0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openWAL(t, dir, wal.Options{})
	defer l2.Close()
	tr2, err := hub.Attach(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	c2 := walConfig()
	c2.Seed = 3
	c2.WAL = l2
	r2, err := NewReplica(c2, tr2)
	if err != nil {
		t.Fatalf("restart replica: %v", err)
	}
	rec, err := r2.RecoverWAL()
	if err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	if rec.Restored() != want {
		t.Fatalf("recovery restored %d updates (%+v), want %d", rec.Restored(), rec, want)
	}
	if !r2.Store().Equal(r1.Store()) {
		t.Fatal("recovered store diverges from the surviving replica")
	}
	if _, ok := r2.Get("local-0"); ok {
		t.Fatal("tombstoned key resurrected by recovery")
	}

	// The writer resynced past the replayed log: new publishes must not
	// collide with pre-kill sequence numbers.
	post, err := r2.Publish("post", []byte("p"))
	if err != nil {
		t.Fatalf("post-recovery publish: %v", err)
	}
	r2.AddPeers(addrs...)
	r2.Start()
	defer r2.Stop()
	eventually(t, 2*time.Second, func() bool {
		return r1.HasUpdate(post.ID())
	}, "post-recovery publish never propagated")
}

// TestWALDuplicateReplayAbsorbed simulates the crash window between apply
// and append ack: the same update is logged twice, and recovery applies it
// once, counting the second copy as a duplicate instead of failing.
func TestWALDuplicateReplayAbsorbed(t *testing.T) {
	dir := t.TempDir()
	l := openWAL(t, dir, wal.Options{})

	hub := NewHub()
	tr, err := hub.Attach("dup-0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := walConfig()
	cfg.Seed = 1
	cfg.WAL = l
	r, err := NewReplica(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	u, err := r.Publish("k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(u); err != nil { // the double-logged record
		t.Fatal(err)
	}
	r.Stop()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openWAL(t, dir, wal.Options{})
	defer l2.Close()
	tr2, err := hub.Attach("dup-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := walConfig()
	cfg2.Seed = 2
	cfg2.WAL = l2
	r2, err := NewReplica(cfg2, tr2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r2.RecoverWAL()
	if err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	if rec.Replayed != 1 || rec.Duplicates != 1 {
		t.Fatalf("recovery = %+v, want 1 replayed + 1 duplicate", rec)
	}
	if rev, ok := r2.Get("k"); !ok || string(rev.Value) != "v" {
		t.Fatalf("recovered value = %v %v", rev, ok)
	}
}

// TestWALJanitorCheckpointBoundsLogAndRecovers drives the janitor's
// checkpoint path: once the log outgrows the configured threshold a
// maintenance pass snapshots and prunes it, and recovery from the
// checkpointed directory still reproduces the full store.
func TestWALJanitorCheckpointBoundsLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l := openWAL(t, dir, wal.Options{SegmentBytes: 512})

	hub := NewHub()
	tr, err := hub.Attach("ckpt-0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := walConfig()
	cfg.Seed = 1
	cfg.WAL = l
	cfg.WALCheckpointBytes = 1 // every janitor pass checkpoints
	r, err := NewReplica(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 64
	for i := 0; i < writes; i++ {
		if _, err := r.Publish(fmt.Sprintf("k-%03d", i), []byte("vvvvvvvvvvvvvvvv")); err != nil {
			t.Fatal(err)
		}
	}
	grown := l.Size()
	r.RunJanitor()
	if l.Segments() != 1 {
		t.Fatalf("checkpoint left %d resident segments, want 1", l.Segments())
	}
	if l.Size() >= grown {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", grown, l.Size())
	}
	r.Stop()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openWAL(t, dir, wal.Options{SegmentBytes: 512})
	defer l2.Close()
	tr2, err := hub.Attach("ckpt-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := walConfig()
	cfg2.Seed = 2
	cfg2.WAL = l2
	r2, err := NewReplica(cfg2, tr2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r2.RecoverWAL()
	if err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	if rec.Restored() != writes {
		t.Fatalf("recovery restored %d (%+v), want %d", rec.Restored(), rec, writes)
	}
	if rec.CheckpointRestored == 0 {
		t.Fatalf("recovery never used the checkpoint: %+v", rec)
	}
	for i := 0; i < writes; i++ {
		if _, ok := r2.Get(fmt.Sprintf("k-%03d", i)); !ok {
			t.Fatalf("key k-%03d missing after checkpointed recovery", i)
		}
	}
}
