package live

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// Tests for the coalescing per-peer senders that replaced the bounded
// per-connection frame queue: the pending-delta merge rules in isolation,
// and the three behaviours the old writer queue could not give — bounded
// sender memory behind a wedged consumer, recovery with the newest merged
// state after a peer restarts on its address, and a disconnecting peer
// taking down only its own pending state.

func testWriter(t *testing.T, origin string) *store.Writer {
	t.Helper()
	w, err := store.NewWriter(origin, store.New(), time.Now, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	return w
}

func TestPendingDeltaPushCoalescing(t *testing.T) {
	w := testWriter(t, "w")
	v1 := w.Put("k", []byte("one"))
	v2 := w.Put("k", []byte("two")) // dominates v1
	other := w.Put("other", []byte("x"))

	p := newPendingDelta()
	if c, d := p.addPush(v1, 1); c != 0 || d != v1.SizeBytes() {
		t.Fatalf("first deposit coalesced %d, delta %d", c, d)
	}
	if c, _ := p.addPush(other, 1); c != 0 {
		t.Fatalf("unrelated key coalesced %d", c)
	}
	// The newer version displaces the pending dominated one.
	if c, d := p.addPush(v2, 2); c != 1 || d != v2.SizeBytes()-v1.SizeBytes() {
		t.Fatalf("displacing deposit coalesced %d, delta %d", c, d)
	}
	if _, ok := p.entries[v1.Ref()]; ok {
		t.Fatal("dominated push still pending after displacement")
	}
	// A dominated version arriving late is absorbed without growing state.
	if c, d := p.addPush(v1, 3); c != 1 || d != 0 {
		t.Fatalf("absorbed deposit coalesced %d, delta %d", c, d)
	}
	// Same ref again only refreshes the round counter.
	if c, d := p.addPush(v2, 9); c != 1 || d != 0 {
		t.Fatalf("same-ref deposit coalesced %d, delta %d", c, d)
	}
	if got := p.entries[v2.Ref()].t; got != 9 {
		t.Fatalf("round counter %d, want refreshed 9", got)
	}
	if len(p.entries) != 2 {
		t.Fatalf("%d entries pending, want v2 and other", len(p.entries))
	}
	if want := v2.SizeBytes() + other.SizeBytes(); p.bytes != want {
		t.Fatalf("tracked %dB, want %dB", p.bytes, want)
	}
}

func TestPendingDeltaPullRespMerge(t *testing.T) {
	p := newPendingDelta()
	if c, _ := p.addPullResp(version.Clock{"a": 5, "b": 3}, []string{"x"}); c != 0 {
		t.Fatalf("first pull response coalesced %d", c)
	}
	// Merging takes the pointwise minimum; an origin missing from either
	// side counts as zero and drops out. The peer sample is the newest one.
	if c, _ := p.addPullResp(version.Clock{"a": 2, "c": 9}, []string{"y"}); c != 1 {
		t.Fatalf("second pull response coalesced %d", c)
	}
	if len(p.pullRespClock) != 1 || p.pullRespClock["a"] != 2 {
		t.Fatalf("merged clock %v, want {a:2}", p.pullRespClock)
	}
	if len(p.pullRespPeers) != 1 || p.pullRespPeers[0] != "y" {
		t.Fatalf("merged peers %v, want the newest sample", p.pullRespPeers)
	}
	// Idempotent flag classes dedup too.
	if c, _ := p.addPullReq(); c != 0 {
		t.Fatalf("first pull request coalesced %d", c)
	}
	if c, d := p.addPullReq(); c != 1 || d != 0 {
		t.Fatalf("repeat pull request coalesced %d, delta %d", c, d)
	}
	ref := store.Ref{Origin: "o", Seq: 1}
	if c, _ := p.addAck(ref); c != 0 {
		t.Fatalf("first ack coalesced %d", c)
	}
	if c, d := p.addAck(ref); c != 1 || d != 0 {
		t.Fatalf("repeat ack coalesced %d, delta %d", c, d)
	}
}

func TestPendingDeltaAuxCap(t *testing.T) {
	p := newPendingDelta()
	dropped := 0
	for i := 0; i < maxPendingAux+7; i++ {
		env := wire.Envelope{Kind: wire.KindQuery, Key: fmt.Sprintf("q-%d", i)}
		d, _ := p.addAux(env)
		dropped += d
	}
	if dropped != 7 {
		t.Fatalf("%d aux envelopes dropped, want 7 beyond the cap", dropped)
	}
	if len(p.aux) != maxPendingAux {
		t.Fatalf("%d aux pending, want the cap %d", len(p.aux), maxPendingAux)
	}
	// Oldest dropped first: the survivors start at q-7.
	if p.aux[0].Key != "q-7" {
		t.Fatalf("oldest surviving aux %q, want q-7", p.aux[0].Key)
	}
}

// TestSlowConsumerBoundedPending wedges one consumer completely — it accepts
// the publisher's connection and never reads a byte — while the publisher
// overwrites a small hot key set far past what any bounded queue would hold.
// The fast peer must still converge (slow-consumer isolation), deposits must
// visibly coalesce, and the publisher's peak pending sender memory must stay
// within a small multiple of the final live state, not the published
// traffic.
func TestSlowConsumerBoundedPending(t *testing.T) {
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	var sinkMu sync.Mutex
	var sinkConns []net.Conn
	defer func() {
		sinkMu.Lock()
		defer sinkMu.Unlock()
		for _, c := range sinkConns {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := sink.Accept()
			if err != nil {
				return
			}
			sinkMu.Lock()
			sinkConns = append(sinkConns, c) // held open, never read
			sinkMu.Unlock()
		}
	}()

	fastTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fastTr.Close()
	fast, err := NewReplica(Config{Fanout: 0, PullAttempts: 0, Seed: 2}, fastTr)
	if err != nil {
		t.Fatal(err)
	}
	fast.Start()
	defer fast.Stop()

	rec := &recordingMetrics{}
	pubTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewReplica(Config{
		Fanout:       2,
		PartialList:  true,
		PullAttempts: 0,
		Seed:         1,
		Metrics:      rec,
	}, pubTr)
	if err != nil {
		t.Fatal(err)
	}
	pub.AddPeers(fastTr.Addr(), sink.Addr().String())
	pub.Start()
	// The sink never drains, so its sender can be parked in a write at
	// Stop time: close the transport first to error the write out, then
	// stop the replica.
	defer pub.Stop()
	defer pubTr.Close()

	const keys, rounds = 8, 500
	final := make([]store.Update, keys)
	var totalTraffic int64
	for i := 0; i < rounds; i++ {
		for k := 0; k < keys; k++ {
			u, _ := pub.Publish(fmt.Sprintf("hot-%d", k), []byte(fmt.Sprintf("v%d", i)))
			final[k] = u
			totalTraffic += int64(u.SizeBytes())
		}
	}

	want := fmt.Sprintf("v%d", rounds-1)
	eventually(t, 10*time.Second, func() bool {
		for k := 0; k < keys; k++ {
			rev, ok := fast.Get(fmt.Sprintf("hot-%d", k))
			if !ok || string(rev.Value) != want {
				return false
			}
		}
		return true
	}, "fast peer starved behind a wedged consumer")

	if rec.observed()[MetricSendCoalesced] == 0 {
		t.Fatal("no deposit ever coalesced; the wedged link exerted no backpressure")
	}
	var liveBytes int64
	for _, u := range final {
		liveBytes += int64(u.SizeBytes())
	}
	_, peak := pub.PendingSendBytes()
	// O(state), with slack for both destinations' transient pending and the
	// byte-estimate constants — and far below the published traffic.
	bound := 4*liveBytes + 64<<10
	if peak > bound {
		t.Fatalf("peak pending %dB exceeds live-state bound %dB (live %dB)", peak, bound, liveBytes)
	}
	if totalTraffic < 4*bound {
		t.Fatalf("fixture too small: %dB published vs bound %dB — bound proves nothing", totalTraffic, bound)
	}
}

// TestPeerRestartReceivesMergedNewestState kills a peer, keeps publishing
// into its absence (deposits merge, rendered sends fail), restarts it on the
// same address, and asserts it ends up with the newest state — late-bound
// rendering plus pull anti-entropy make the whole outage repairable, with no
// writer queue to replay stale frames from.
func TestPeerRestartReceivesMergedNewestState(t *testing.T) {
	cfg := Config{
		Fanout:       1,
		PartialList:  true,
		PullAttempts: 1,
		PullInterval: 10 * time.Millisecond,
	}

	aTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aTr.Close()
	ca := cfg
	ca.Seed = 1
	a, err := NewReplica(ca, aTr)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	defer a.Stop()

	bTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := bTr.Addr()
	cb := cfg
	cb.Seed = 2
	b1, err := NewReplica(cb, bTr)
	if err != nil {
		t.Fatal(err)
	}
	b1.AddPeers(aTr.Addr())
	b1.Start()

	a.AddPeers(addrB)
	a.Publish("k", []byte("v1"))
	eventually(t, 5*time.Second, func() bool {
		rev, ok := b1.Get("k")
		return ok && string(rev.Value) == "v1"
	}, "first revision never reached the peer")

	// Crash the peer. The publisher keeps overwriting: its pending delta
	// for addrB merges to the newest version and rendered sends fail
	// against the dead address.
	b1.Stop()
	bTr.Close()
	for i := 2; i <= 6; i++ {
		a.Publish("k", []byte(fmt.Sprintf("v%d", i)))
	}

	// Restart on the same address (retry the bind: the kernel may briefly
	// hold the port).
	var bTr2 *TCPTransport
	deadline := time.Now().Add(5 * time.Second)
	for {
		bTr2, err = ListenTCP(addrB)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addrB, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer bTr2.Close()
	cb2 := cfg
	cb2.Seed = 9
	b2, err := NewReplica(cb2, bTr2)
	if err != nil {
		t.Fatal(err)
	}
	b2.AddPeers(aTr.Addr())
	b2.Start()
	defer b2.Stop()

	a.Publish("k", []byte("v7"))
	eventually(t, 5*time.Second, func() bool {
		rev, ok := b2.Get("k")
		return ok && string(rev.Value) == "v7"
	}, "restarted peer never received the newest revision")
	eventually(t, 5*time.Second, func() bool {
		return b2.Store().Equal(a.Store())
	}, "restarted peer never reconciled the revisions it missed")
}

// TestDisconnectMidCoalesceDropsOnlyItsPending hammers a replica with
// concurrent publishers while one of its two peers churns connections —
// accepting and immediately closing, then disappearing entirely. The
// healthy peer must converge on every final value, and once the flood stops
// the publisher's pending gauge must return to zero: the dead peer's
// pending state is dropped with it, nobody else's. Run it under -race (make
// race) — the deposit/deliver/redial interleavings are the point.
func TestDisconnectMidCoalesceDropsOnlyItsPending(t *testing.T) {
	churn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer churn.Close()
	go func() {
		for {
			c, err := churn.Accept()
			if err != nil {
				return
			}
			// Read a little, then slam the connection shut mid-stream.
			buf := make([]byte, 64)
			c.Read(buf)
			c.Close()
		}
	}()

	healthyTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer healthyTr.Close()
	healthy, err := NewReplica(Config{Fanout: 0, PullAttempts: 0, Seed: 2}, healthyTr)
	if err != nil {
		t.Fatal(err)
	}
	healthy.Start()
	defer healthy.Stop()

	pubTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewReplica(Config{
		Fanout:       2,
		PartialList:  true,
		PullAttempts: 0,
		Seed:         1,
	}, pubTr)
	if err != nil {
		t.Fatal(err)
	}
	pub.AddPeers(healthyTr.Addr(), churn.Addr().String())
	pub.Start()
	defer pub.Stop()
	defer pubTr.Close()

	const publishers, perPublisher, keysPer = 3, 300, 8
	var wg sync.WaitGroup
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				pub.Publish(fmt.Sprintf("g%d-k%d", g, i%keysPer), []byte(fmt.Sprintf("v%d", i)))
			}
		}(g)
	}
	wg.Wait()
	// The churning peer disconnects for good mid-coalesce.
	churn.Close()

	eventually(t, 10*time.Second, func() bool {
		for g := 0; g < publishers; g++ {
			for k := 0; k < keysPer; k++ {
				// Final value of key k: the last i in [0,perPublisher) with
				// i % keysPer == k.
				last := (perPublisher-1-k)/keysPer*keysPer + k
				rev, ok := pub.Get(fmt.Sprintf("g%d-k%d", g, k))
				if !ok || string(rev.Value) != fmt.Sprintf("v%d", last) {
					return false
				}
				rev, ok = healthy.Get(fmt.Sprintf("g%d-k%d", g, k))
				if !ok || string(rev.Value) != fmt.Sprintf("v%d", last) {
					return false
				}
			}
		}
		return true
	}, "healthy peer missed final values behind a churning sibling")

	eventually(t, 10*time.Second, func() bool {
		current, _ := pub.PendingSendBytes()
		return current == 0
	}, "pending gauge never drained after the churning peer died")
}
