package live

import "testing"

// TestCryptoSeedDistinct guards the replica seeding path: seeds drawn for
// concurrently created replicas must not collide the way time-derived seeds
// can (coarse clocks hand identical UnixNano values to replicas created in
// the same instant).
func TestCryptoSeedDistinct(t *testing.T) {
	seen := make(map[int64]struct{}, 256)
	for i := 0; i < 256; i++ {
		s := cryptoSeed()
		if _, dup := seen[s]; dup {
			t.Fatalf("seed %d repeated within 256 draws", s)
		}
		seen[s] = struct{}{}
	}
}
