package live

import (
	"time"
)

// The §6 acknowledgement optimisation — receivers ack the first copy of an
// update; senders prefer recently-acking peers and temporarily suspect peers
// whose acks never arrive — is implemented once in internal/engine. This
// file keeps the live runtime's duration defaults and the operational
// introspection surface.

// defaultAckTimeout is how long a pushed peer has to ack before being
// suspected offline.
const defaultAckTimeout = 3 * time.Second

// defaultSuspectTTL is how long a suspect is skipped as a push target.
const defaultSuspectTTL = time.Minute

// defaultFrontierTTL is how long a peer's last pull clock participates in
// the stable compaction frontier.
const defaultFrontierTTL = 10 * time.Minute

// ackTimeout returns the effective ack deadline.
func (c Config) ackTimeout() time.Duration {
	if c.AckTimeout > 0 {
		return c.AckTimeout
	}
	return defaultAckTimeout
}

// suspectTTL returns the effective suspect duration.
func (c Config) suspectTTL() time.Duration {
	if c.SuspectTTL > 0 {
		return c.SuspectTTL
	}
	return defaultSuspectTTL
}

// frontierTTL returns the effective frontier participation window.
func (c Config) frontierTTL() time.Duration {
	if c.FrontierTTL > 0 {
		return c.FrontierTTL
	}
	return defaultFrontierTTL
}

// Suspects returns the addresses currently suspected offline (for tests and
// operational introspection).
func (r *Replica) Suspects() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng.Suspects()
}
