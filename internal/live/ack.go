package live

import (
	"time"

	"github.com/p2pgossip/update/internal/wire"
)

// This file implements the §6 acknowledgement optimisation in the live
// runtime: receivers ack the first copy of an update; senders prefer
// recently-acking peers as push targets and temporarily suspect peers whose
// acks never arrive ("they will assume from the lack of an ack that the
// peer is offline, and hence may decide not to send future updates").
// Suspects are re-admitted after SuspectTTL — over time every peer is
// expected online again.

// defaultAckTimeout is how long a pushed peer has to ack before being
// suspected offline.
const defaultAckTimeout = 3 * time.Second

// defaultSuspectTTL is how long a suspect is skipped as a push target.
const defaultSuspectTTL = time.Minute

// ackTimeout returns the effective ack deadline.
func (c Config) ackTimeout() time.Duration {
	if c.AckTimeout > 0 {
		return c.AckTimeout
	}
	return defaultAckTimeout
}

// suspectTTL returns the effective suspect duration.
func (c Config) suspectTTL() time.Duration {
	if c.SuspectTTL > 0 {
		return c.SuspectTTL
	}
	return defaultSuspectTTL
}

// noteAckLocked processes an inbound ack.
func (r *Replica) noteAckLocked(from string, now time.Time) {
	r.ackedBy[from] = now
	delete(r.suspects, from)
	delete(r.awaitingAck, from)
}

// expectAckLocked records that a push to addr awaits acknowledgement.
func (r *Replica) expectAckLocked(addr string, now time.Time) {
	if !r.cfg.Acks {
		return
	}
	if _, pending := r.awaitingAck[addr]; !pending {
		r.awaitingAck[addr] = now
	}
}

// sweepAcksLocked promotes overdue expectations to suspects and expires old
// suspects.
func (r *Replica) sweepAcksLocked(now time.Time) {
	if !r.cfg.Acks {
		return
	}
	deadline := r.cfg.ackTimeout()
	for addr, since := range r.awaitingAck {
		if now.Sub(since) >= deadline {
			r.suspects[addr] = now
			delete(r.awaitingAck, addr)
			r.inc(MetricSuspects)
			if r.cfg.Hooks.OnSuspect != nil {
				// Runs with r.mu held — the Hooks contract (no blocking, no
				// re-entry into the Replica) keeps this safe.
				r.cfg.Hooks.OnSuspect(addr)
			}
		}
	}
	ttl := r.cfg.suspectTTL()
	for addr, since := range r.suspects {
		if now.Sub(since) >= ttl {
			delete(r.suspects, addr)
		}
	}
}

// sendAck acknowledges an update to its sender.
func (r *Replica) sendAck(to, updateID string) {
	env := wire.Envelope{Kind: wire.KindAck, From: r.Addr(), UpdateID: updateID}
	r.inc(MetricAckSent)
	_ = r.transport.Send(to, env) // best effort; a lost ack only costs preference
}

// Suspects returns the addresses currently suspected offline (for tests and
// operational introspection).
func (r *Replica) Suspects() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.suspects))
	for addr := range r.suspects {
		out = append(out, addr)
	}
	return out
}
