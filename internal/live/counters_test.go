package live

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/wire"
)

// recordingMetrics captures every counter name a replica reports.
type recordingMetrics struct {
	mu    sync.Mutex
	names map[string]float64
}

func (m *recordingMetrics) Inc(name string) { m.Add(name, 1) }

func (m *recordingMetrics) Add(name string, delta float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.names == nil {
		m.names = make(map[string]float64)
	}
	m.names[name] += delta
}

func (m *recordingMetrics) observed() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.names))
	for k, v := range m.names {
		out[k] = v
	}
	return out
}

func TestCounterNamesHaveNoDuplicates(t *testing.T) {
	seen := make(map[string]bool, len(CounterNames))
	for _, name := range CounterNames {
		if seen[name] {
			t.Errorf("CounterNames lists %q twice", name)
		}
		seen[name] = true
		if len(name) < len("live.") || name[:len("live.")] != "live." {
			t.Errorf("counter %q lacks the live. prefix", name)
		}
	}
}

// TestReplicaCountersAreRegistered drives replicas through every protocol
// path — push, forward-duplicate, ack, suspect, pull, query, and an
// out-of-order (obsolete) delivery — and asserts the set of counter names
// reported is exactly live.CounterNames. A counter added to the replica but
// not to the registry (or vice versa) fails here, so the /metrics exporter
// can never silently drift from the protocol.
func TestReplicaCountersAreRegistered(t *testing.T) {
	rec := &recordingMetrics{}
	cfg := Config{
		Fanout:       3,
		PartialList:  true,
		Acks:         true,
		AckTimeout:   time.Millisecond,
		SuspectTTL:   time.Minute,
		PullAttempts: 2,
		// Janitor knobs: tiny retention and TTL so the manual RunJanitor
		// passes below observe expiry and collection without long sleeps. The
		// background janitor stays off (JanitorInterval 0) so maintenance
		// only happens when the test drives it.
		TombstoneRetention: time.Millisecond,
		KeyTTL:             time.Millisecond,
		Metrics:            rec,
	}
	hub, replicas := newCluster(t, 3, cfg)

	// Push + forwards: with fanout 3 over three replicas plus the ghost,
	// forwarded copies bounce back as duplicates and every first copy is
	// acked. The ghost never acks, so its entry must become a suspicion.
	replicas[0].AddPeers("ghost")
	replicas[0].Publish("k1", []byte("v1"))
	eventually(t, 2*time.Second, func() bool {
		for _, r := range replicas {
			if _, ok := r.Get("k1"); !ok {
				return false
			}
		}
		return true
	}, "push did not reach every replica")
	time.Sleep(5 * time.Millisecond) // let the ghost's ack deadline lapse
	sweep(replicas[0])

	// Query: replica 1 consults two peers for the key.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := replicas[1].Query(ctx, "k1", 2); err != nil {
		t.Fatalf("query: %v", err)
	}

	// Pull: a fresh replica reconciles the published state by anti-entropy.
	tr, err := hub.Attach("late")
	if err != nil {
		t.Fatal(err)
	}
	late, err := NewReplica(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	late.AddPeers("replica-0", "replica-1", "replica-2")
	late.Start()
	t.Cleanup(late.Stop)
	eventually(t, 2*time.Second, func() bool {
		_, ok := late.Get("k1")
		return ok
	}, "pull did not reconcile the late replica")

	// Obsolete: an external origin's second revision of a key delivered
	// before its first makes the first causally dominated on arrival.
	ext, err := hub.Attach("ext")
	if err != nil {
		t.Fatal(err)
	}
	scratch := store.New()
	w, err := store.NewWriter("ext", scratch, time.Now, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	u1 := w.Put("k2", []byte("old"))
	u2 := w.Put("k2", []byte("new"))
	// Delivering u2 twice makes the second copy a push duplicate.
	for _, u := range []store.Update{u2, u1, u2} {
		env := wire.Envelope{Kind: wire.KindPush, From: "ext", Update: wire.FromStore(u)}
		if err := ext.Send("replica-0", env); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	eventually(t, 2*time.Second, func() bool {
		return replicas[0].HasUpdate(u1.ID())
	}, "out-of-order push not processed")

	// Janitor: a delete past retention plus TTL'd live keys give the
	// maintenance pass tombstones to collect and revisions to expire; a pull
	// request carrying replica-0's own clock records a stable frontier, so
	// compaction can drop the log entries the GC orphaned.
	replicas[0].Delete("k1")
	time.Sleep(5 * time.Millisecond) // let retention and TTL lapse
	eventually(t, 4*time.Second, func() bool {
		// Refresh the frontier: every peer re-pulls so replica-0 records
		// caught-up clocks (the eager pulls at Start recorded empty ones,
		// pinning the pointwise minimum at zero), and ext files replica-0's
		// own clock directly.
		replicas[1].PullNow()
		replicas[2].PullNow()
		late.PullNow()
		_ = ext.Send("replica-0", wire.Envelope{
			Kind: wire.KindPullReq, From: "ext", Clock: replicas[0].Store().Clock(),
		})
		replicas[0].RunJanitor()
		o := rec.observed()
		return o[MetricTombstonesGC] > 0 && o[MetricKeysExpired] > 0 &&
			o[MetricLogCompacted] > 0
	}, "janitor pass never expired, collected, and compacted")

	// Snapshot catch-up: a replica joining with an empty clock pulls from
	// the now-compacted replica-0, whose delta is gone — the response must
	// be one snapshot frame.
	str, err := hub.Attach("snap")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewReplica(cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	snap.AddPeers("replica-0")
	snap.Start()
	t.Cleanup(snap.Stop)
	eventually(t, 2*time.Second, func() bool {
		o := rec.observed()
		return o[MetricSnapshotServed] > 0 && o[MetricSnapshotCatchups] > 0
	}, "compacted replica did not serve a snapshot catch-up")

	// Backpressure counters ride the coalescing TCP sender path. Drive one
	// sender state machine directly — no goroutine, no timing — so the
	// outcome is deterministic: two versions of one key merge in the
	// pending delta (send.coalesced), and delivering the rendered batch to
	// a port nobody listens on drops it (send.failed).
	ttr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ttr.Close() })
	trep, err := NewReplica(cfg, ttr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(trep.Stop)
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close() // nothing listens here any more: dials are refused
	sender := newPeerSender(trep, deadAddr)
	cw, err := store.NewWriter("coal", store.New(), time.Now, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	v1 := cw.Put("ck", []byte("one"))
	v2 := cw.Put("ck", []byte("two")) // dominates v1: supersedes it in the pending delta
	for _, u := range []store.Update{v1, v2} {
		u := u
		if !sender.deposit(func(p *pendingDelta) (int, int, int) {
			c, d := p.addPush(u, 0)
			return c, 0, d
		}) {
			t.Fatal("deposit rejected by a fresh sender")
		}
	}
	sender.deliver()

	registered := make(map[string]bool, len(CounterNames))
	for _, name := range CounterNames {
		registered[name] = true
	}
	observed := rec.observed()
	for name := range observed {
		if !registered[name] {
			t.Errorf("replica reported counter %q missing from live.CounterNames", name)
		}
	}
	for _, name := range CounterNames {
		if observed[name] <= 0 {
			t.Errorf("workload never exercised counter %q (is it still reported anywhere?)", name)
		}
	}
}
