package live

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/pf"
)

// TestCrashRestartReconvergesViaPull kills a replica mid-gossip, restarts it
// from a snapshot on the same address, and asserts it reconverges on the
// writes it missed through pull anti-entropy.
func TestCrashRestartReconvergesViaPull(t *testing.T) {
	cfg := Config{
		Fanout:       2,
		NewPF:        func() pf.Func { return pf.Geometric{Base: 0.9} },
		PartialList:  true,
		PullAttempts: 2,
		PullInterval: 5 * time.Millisecond,
	}
	hub := NewHub()
	const n = 3
	addrs := make([]string, n)
	transports := make([]*MemTransport, n)
	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("replica-%d", i)
		tr, err := hub.Attach(addrs[i])
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		transports[i] = tr
		c := cfg
		c.Seed = int64(i) + 1
		r, err := NewReplica(c, tr)
		if err != nil {
			t.Fatalf("new replica: %v", err)
		}
		replicas[i] = r
	}
	for _, r := range replicas {
		r.AddPeers(addrs...)
	}
	for _, r := range replicas {
		r.Start()
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	victim := replicas[2]
	pre, _ := replicas[0].Publish("pre", []byte("1"))
	eventually(t, 2*time.Second, func() bool {
		return victim.HasUpdate(pre.ID())
	}, "pre-crash update never reached the victim")

	// Crash: persist the durable log, then tear the process down — the
	// puller stops and the address detaches from the hub, so in-flight and
	// future traffic to it fails like a dead TCP endpoint.
	var snap bytes.Buffer
	if err := victim.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	victim.Stop()
	if err := transports[2].Close(); err != nil {
		t.Fatalf("close transport: %v", err)
	}

	// Life goes on without it.
	mid, _ := replicas[1].Publish("mid", []byte("2"))
	del, _ := replicas[0].Delete("pre")
	eventually(t, 2*time.Second, func() bool {
		return replicas[0].HasUpdate(mid.ID()) && replicas[1].HasUpdate(del.ID())
	}, "survivors did not converge while the victim was down")

	// Restart on the same address: fresh process, state recovered from the
	// snapshot, peers from the (static) seed list.
	tr, err := hub.Attach(addrs[2])
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	c := cfg
	c.Seed = 99
	restarted, err := NewReplica(c, tr)
	if err != nil {
		t.Fatalf("restart replica: %v", err)
	}
	if err := restarted.RestoreSnapshot(&snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	// The snapshot state is visible before any network traffic.
	if rev, ok := restarted.Get("pre"); !ok || string(rev.Value) != "1" {
		t.Fatalf("snapshot state missing after restore: %v %v", rev, ok)
	}
	restarted.AddPeers(addrs...)
	restarted.Start() // eager pull kicks off recovery
	defer restarted.Stop()

	eventually(t, 2*time.Second, func() bool {
		return restarted.HasUpdate(mid.ID()) && restarted.HasUpdate(del.ID())
	}, "restarted replica never recovered the missed writes by pull")
	if rev, ok := restarted.Get("mid"); !ok || string(rev.Value) != "2" {
		t.Fatalf("recovered value = %v %v", rev, ok)
	}
	if _, ok := restarted.Get("pre"); ok {
		t.Fatal("tombstone published while down not applied on recovery")
	}
	if !restarted.Store().Equal(replicas[0].Store()) {
		t.Fatal("restarted replica store diverges from a survivor")
	}
}
