package pgrid

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestRoutePropertyAlwaysReachesPartition: for random grid shapes, random
// keys and random origins, greedy prefix routing (everyone online) reaches a
// peer responsible for the key's partition in at most Depth hops.
func TestRoutePropertyAlwaysReachesPartition(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			depth := 1 + r.Intn(5)
			minPeers := 1 << uint(depth)
			vals[0] = reflect.ValueOf(depth)
			vals[1] = reflect.ValueOf(minPeers + r.Intn(4*minPeers))
			vals[2] = reflect.ValueOf(1 + r.Intn(3)) // refs per level
			vals[3] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(depth, n, refs int, seed int64) bool {
		g, err := Build(n, depth, refs, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 10; trial++ {
			key := fmt.Sprintf("key-%d-%d", seed, trial)
			from := rng.Intn(n)
			res, err := g.Route(from, key, nil, rng)
			if err != nil {
				return false
			}
			if res.Hops > depth {
				return false
			}
			if g.Peers[res.Target].Path != KeyPath(key, depth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("routing property failed: %v", err)
	}
}

// TestReplicaGroupsPartitionPopulation: every peer belongs to exactly one
// replica group, and the groups cover the population.
func TestReplicaGroupsPartitionPopulation(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			depth := r.Intn(5)
			minPeers := 1 << uint(depth)
			vals[0] = reflect.ValueOf(depth)
			vals[1] = reflect.ValueOf(minPeers + r.Intn(3*minPeers))
			vals[2] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(depth, n int, seed int64) bool {
		g, err := Build(n, depth, 2, seed)
		if err != nil {
			return false
		}
		seen := make(map[int]int, n)
		for part := 0; part < g.Partitions(); part++ {
			path := pathOfPartition(part, depth)
			for _, id := range g.ReplicaGroup(path) {
				seen[id]++
				if g.Peers[id].Path != path {
					return false
				}
			}
		}
		if len(seen) != n {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("partition property failed: %v", err)
	}
}
