package pgrid

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestKeyPath(t *testing.T) {
	if got := KeyPath("k", 0); got != "" {
		t.Fatalf("depth 0 path = %q", got)
	}
	a := KeyPath("alpha", 8)
	if len(a) != 8 {
		t.Fatalf("path length = %d", len(a))
	}
	if a != KeyPath("alpha", 8) {
		t.Fatal("KeyPath not deterministic")
	}
	for _, c := range a {
		if c != '0' && c != '1' {
			t.Fatalf("non-binary path %q", a)
		}
	}
	// Deeper paths extend shallower ones (prefix property).
	if !strings.HasPrefix(KeyPath("alpha", 12), a) {
		t.Fatal("deeper path does not extend shallower path")
	}
}

func TestKeyPathDistribution(t *testing.T) {
	// Hash-based partitioning should be roughly uniform.
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[KeyPath(fmt.Sprintf("key-%d", i), 3)]++
	}
	if len(counts) != 8 {
		t.Fatalf("only %d of 8 partitions used", len(counts))
	}
	for path, c := range counts {
		if c < keys/8/2 || c > keys/8*2 {
			t.Fatalf("partition %s has %d keys, expected ≈ %d", path, c, keys/8)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	for _, bad := range []struct {
		n, depth int
	}{{0, 2}, {10, -1}, {10, 21}, {3, 2}} {
		if _, err := Build(bad.n, bad.depth, 2, 1); err == nil {
			t.Fatalf("Build(%d,%d) should error", bad.n, bad.depth)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	g, err := Build(64, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Partitions() != 8 {
		t.Fatalf("partitions = %d", g.Partitions())
	}
	// Balanced assignment: 8 peers per partition.
	for path, ids := range g.groups {
		if len(ids) != 8 {
			t.Fatalf("partition %s has %d peers", path, len(ids))
		}
	}
	// Routing invariant: refs at level l agree on l bits and differ at bit l.
	for _, p := range g.Peers {
		for l, refs := range p.Routing {
			if len(refs) == 0 {
				t.Fatalf("peer %d has no refs at level %d", p.ID, l)
			}
			for _, ref := range refs {
				other := g.Peers[ref].Path
				if other[:l] != p.Path[:l] {
					t.Fatalf("ref prefix mismatch at level %d: %s vs %s", l, other, p.Path)
				}
				if other[l] == p.Path[l] {
					t.Fatalf("ref does not flip bit %d: %s vs %s", l, other, p.Path)
				}
			}
		}
	}
}

func TestReplicaGroupOfKey(t *testing.T) {
	g, err := Build(32, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	group := g.GroupOfKey("some-key")
	if len(group) != 8 {
		t.Fatalf("group size = %d", len(group))
	}
	path := KeyPath("some-key", 2)
	for _, id := range group {
		if g.Peers[id].Path != path {
			t.Fatalf("peer %d path %s not responsible for %s", id, g.Peers[id].Path, path)
		}
	}
	// Copy semantics.
	group[0] = -99
	if g.GroupOfKey("some-key")[0] == -99 {
		t.Fatal("ReplicaGroup exposed internal slice")
	}
}

func TestRouteReachesResponsiblePeer(t *testing.T) {
	g, err := Build(128, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		key := fmt.Sprintf("key-%d", trial)
		from := rng.Intn(128)
		res, err := g.Route(from, key, nil, rng)
		if err != nil {
			t.Fatalf("route %s from %d: %v", key, from, err)
		}
		want := KeyPath(key, 4)
		if g.Peers[res.Target].Path != want {
			t.Fatalf("routed to %s, want %s", g.Peers[res.Target].Path, want)
		}
		if res.Hops > 4 {
			t.Fatalf("route took %d hops, depth is 4", res.Hops)
		}
		if len(res.Visited) != res.Hops+1 {
			t.Fatalf("visited %d peers for %d hops", len(res.Visited), res.Hops)
		}
	}
}

func TestRouteZeroHopsWhenResponsible(t *testing.T) {
	g, err := Build(16, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	key := "k"
	group := g.GroupOfKey(key)
	res, err := g.Route(group[0], key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 0 || res.Target != group[0] {
		t.Fatalf("self-route = %+v", res)
	}
}

func TestRouteToleratesOfflineRefs(t *testing.T) {
	// With 3 refs per level and 30% of peers offline, most routes succeed
	// (the redundancy argument for multiple references).
	g, err := Build(256, 4, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	offline := map[int]bool{}
	for i := 0; i < 256; i++ {
		if rng.Float64() < 0.3 {
			offline[i] = true
		}
	}
	online := func(id int) bool { return !offline[id] }
	success := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		from := rng.Intn(256)
		if !online(from) {
			continue
		}
		if _, err := g.Route(from, fmt.Sprintf("k%d", trial), online, rng); err == nil {
			success++
		}
	}
	if success < trials/2 {
		t.Fatalf("only %d/%d routes succeeded with 30%% offline", success, trials)
	}
}

func TestRouteFailsWhenSubtreeDark(t *testing.T) {
	g, err := Build(16, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	key := "k"
	target := KeyPath(key, 2)
	// Knock the entire target subtree (first bit) offline.
	dark := target[:1]
	online := func(id int) bool {
		return !strings.HasPrefix(g.Peers[id].Path, dark)
	}
	var from int
	for i, p := range g.Peers {
		if !strings.HasPrefix(p.Path, dark) {
			from = i
			break
		}
	}
	if _, err := g.Route(from, key, online, nil); err == nil {
		t.Fatal("route should fail when the target subtree is offline")
	}
}

func TestRouteOriginValidation(t *testing.T) {
	g, err := Build(16, 2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Route(-1, "k", nil, nil); err == nil {
		t.Fatal("negative origin should error")
	}
	if _, err := g.Route(99, "k", nil, nil); err == nil {
		t.Fatal("out-of-range origin should error")
	}
}

func TestDepthZeroGrid(t *testing.T) {
	g, err := Build(4, 0, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.Partitions() != 1 {
		t.Fatalf("partitions = %d", g.Partitions())
	}
	res, err := g.Route(2, "anything", nil, nil)
	if err != nil || res.Hops != 0 {
		t.Fatalf("depth-0 route = %+v, %v", res, err)
	}
}
