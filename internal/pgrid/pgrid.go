// Package pgrid implements the P-Grid access structure [Aberer, CoopIS
// 2001] that motivated the paper: a binary-trie partitioning of the key
// space in which every peer is responsible for one partition (its *path*),
// maintains routing references to the complementary subtree at every level,
// and replicates its partition's data with all peers sharing the same path
// (the *replica group*).
//
// Updates within a replica group are *not* handled here — they are delegated
// to the gossip package, exactly as the paper proposes: "the 'data' may
// indeed be knowledge regarding the system's topology, for example the
// routing tables used in P-Grid" (§3). The pgrid and gossip packages
// compose in examples/pgridsearch and the integration tests.
package pgrid

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// PathBits hashes a key onto the trie's address space: the high bits of the
// result are the key's partition path (KeyPath renders them as a bit
// string). The store's shard router uses the same bits, so a shard holds a
// contiguous run of trie partitions — store sharding aligns with P-Grid
// partitioning by construction.
func PathBits(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // fnv hash writes never fail
	return mix64(h.Sum64())
}

// KeyPath maps a key to its binary partition path of the given depth, via a
// stable hash. Peers responsible for the returned path serve the key.
func KeyPath(key string, depth int) string {
	if depth <= 0 {
		return ""
	}
	v := PathBits(key)
	var b strings.Builder
	b.Grow(depth)
	for i := 0; i < depth; i++ {
		if v&(1<<uint(63-i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// mix64 is the splitmix64 finaliser; FNV alone distributes the high bits of
// short, similar keys poorly, and partition paths use the high bits.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// Peer is one P-Grid participant.
type Peer struct {
	// ID is the peer index.
	ID int
	// Path is the binary partition the peer is responsible for.
	Path string
	// Routing maps trie level l to peer IDs whose path agrees with Path on
	// the first l bits and differs at bit l — the standard P-Grid
	// references into the complementary subtree.
	Routing map[int][]int
}

// Grid is a constructed P-Grid network.
type Grid struct {
	// Peers indexed by ID.
	Peers []*Peer
	// Depth is the trie depth; there are 2^Depth partitions.
	Depth int

	groups map[string][]int
}

// Build constructs a balanced P-Grid of 2^depth partitions over n peers,
// assigning peers to partitions round-robin and wiring refsPerLevel random
// routing references per level. Multiple references per level are P-Grid's
// redundancy against offline peers.
func Build(n, depth, refsPerLevel int, seed int64) (*Grid, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pgrid: n = %d must be positive", n)
	}
	if depth < 0 || depth > 20 {
		return nil, fmt.Errorf("pgrid: depth = %d out of [0,20]", depth)
	}
	partitions := 1 << uint(depth)
	if n < partitions {
		return nil, fmt.Errorf("pgrid: %d peers cannot populate %d partitions", n, partitions)
	}
	if refsPerLevel <= 0 {
		refsPerLevel = 2
	}
	rng := rand.New(rand.NewSource(seed))

	g := &Grid{
		Peers:  make([]*Peer, n),
		Depth:  depth,
		groups: make(map[string][]int, partitions),
	}
	for i := 0; i < n; i++ {
		path := pathOfPartition(i%partitions, depth)
		g.Peers[i] = &Peer{ID: i, Path: path, Routing: make(map[int][]int, depth)}
		g.groups[path] = append(g.groups[path], i)
	}
	// Wire routing tables: for each level l, pick refsPerLevel random peers
	// from the complementary subtree at that level.
	for _, p := range g.Peers {
		for l := 0; l < depth; l++ {
			prefix := p.Path[:l] + flip(p.Path[l])
			candidates := g.peersWithPrefix(prefix)
			rng.Shuffle(len(candidates), func(a, b int) {
				candidates[a], candidates[b] = candidates[b], candidates[a]
			})
			k := refsPerLevel
			if k > len(candidates) {
				k = len(candidates)
			}
			p.Routing[l] = append([]int(nil), candidates[:k]...)
		}
	}
	return g, nil
}

func pathOfPartition(idx, depth int) string {
	var b strings.Builder
	b.Grow(depth)
	for i := depth - 1; i >= 0; i-- {
		if idx&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func flip(b byte) string {
	if b == '0' {
		return "1"
	}
	return "0"
}

func (g *Grid) peersWithPrefix(prefix string) []int {
	var out []int
	for path, ids := range g.groups {
		if strings.HasPrefix(path, prefix) {
			out = append(out, ids...)
		}
	}
	return out
}

// ReplicaGroup returns the peer IDs responsible for the given path (copy).
func (g *Grid) ReplicaGroup(path string) []int {
	return append([]int(nil), g.groups[path]...)
}

// GroupOfKey returns the replica group serving the key.
func (g *Grid) GroupOfKey(key string) []int {
	return g.ReplicaGroup(KeyPath(key, g.Depth))
}

// Partitions returns the number of partitions.
func (g *Grid) Partitions() int { return 1 << uint(g.Depth) }

// RouteResult describes one greedy prefix-routing run.
type RouteResult struct {
	// Target is the responsible peer the query reached.
	Target int
	// Hops is the number of forwarding steps taken.
	Hops int
	// Visited lists the peers on the route, starting with the origin.
	Visited []int
}

// ErrUnroutable is returned when every candidate reference for the required
// subtree is offline.
var ErrUnroutable = fmt.Errorf("pgrid: no online route to target partition")

// Route performs greedy prefix routing for key starting at peer `from`:
// at each step, the current peer forwards to one of its references at the
// first bit where its own path diverges from the key's path, preferring
// online references (availability is supplied by the caller — typically the
// simulation's churn state; nil means everyone is online). The route
// succeeds when it reaches any peer whose path prefixes the key's path.
func (g *Grid) Route(from int, key string, online func(int) bool, rng *rand.Rand) (RouteResult, error) {
	if from < 0 || from >= len(g.Peers) {
		return RouteResult{}, fmt.Errorf("pgrid: origin %d out of range", from)
	}
	if online == nil {
		online = func(int) bool { return true }
	}
	target := KeyPath(key, g.Depth)
	res := RouteResult{Visited: []int{from}}
	current := g.Peers[from]
	// Each hop extends the matched prefix by ≥1 bit, so Depth+1 hops bound
	// any successful route; the loop guard is defensive.
	for hop := 0; hop <= g.Depth; hop++ {
		l := commonPrefixLen(current.Path, target)
		if l == g.Depth || l == len(current.Path) {
			res.Target = current.ID
			res.Hops = hop
			return res, nil
		}
		refs := current.Routing[l]
		next := -1
		if rng != nil && len(refs) > 1 {
			perm := rng.Perm(len(refs))
			for _, idx := range perm {
				if online(refs[idx]) {
					next = refs[idx]
					break
				}
			}
		} else {
			for _, ref := range refs {
				if online(ref) {
					next = ref
					break
				}
			}
		}
		if next == -1 {
			return res, fmt.Errorf("%w: stuck at peer %d level %d", ErrUnroutable, current.ID, l)
		}
		current = g.Peers[next]
		res.Visited = append(res.Visited, next)
	}
	return res, fmt.Errorf("%w: exceeded depth bound", ErrUnroutable)
}

func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
