package version

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func mustID(t *testing.T, rng *rand.Rand) ID {
	t.Helper()
	return NewID(time.Unix(1_000_000, 0), "peer", rng)
}

func TestNewIDDeterministic(t *testing.T) {
	now := time.Unix(42, 7)
	a := NewID(now, "addr", rand.New(rand.NewSource(1)))
	b := NewID(now, "addr", rand.New(rand.NewSource(1)))
	if a != b {
		t.Fatalf("ids from identical inputs differ: %v vs %v", a, b)
	}
	c := NewID(now, "addr", rand.New(rand.NewSource(2)))
	if a == c {
		t.Fatalf("ids from different rng collide: %v", a)
	}
	d := NewID(now, "other", rand.New(rand.NewSource(1)))
	if a == d {
		t.Fatalf("ids from different addresses collide: %v", a)
	}
}

func TestIDZeroAndString(t *testing.T) {
	var zero ID
	if !zero.IsZero() {
		t.Fatal("zero ID not reported as zero")
	}
	id := mustID(t, rand.New(rand.NewSource(9)))
	if id.IsZero() {
		t.Fatal("fresh ID reported as zero")
	}
	if len(id.FullString()) != 2*IDSize {
		t.Fatalf("FullString length = %d, want %d", len(id.FullString()), 2*IDSize)
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	id := mustID(t, rand.New(rand.NewSource(3)))
	got, err := ParseID(id.FullString())
	if err != nil {
		t.Fatalf("ParseID: %v", err)
	}
	if got != id {
		t.Fatalf("round trip mismatch: %v vs %v", got, id)
	}
}

func TestParseIDErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"not hex", "zz"},
		{"short", "abcd"},
		{"long", "00112233445566778899aabbccddeeff00"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseID(tt.in); err == nil {
				t.Fatalf("ParseID(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestHistoryCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, c := mustID(t, rng), mustID(t, rng), mustID(t, rng)

	base := History{a}
	longer := base.Append(b)
	diverged := base.Append(c)

	tests := []struct {
		name string
		h, o History
		want Ordering
	}{
		{"equal empty", nil, nil, Equal},
		{"equal", longer, longer.Clone(), Equal},
		{"prefix before", base, longer, Before},
		{"prefix after", longer, base, After},
		{"empty before any", nil, base, Before},
		{"concurrent", longer, diverged, Concurrent},
		{"concurrent sym", diverged, longer, Concurrent},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.h.Compare(tt.o); got != tt.want {
				t.Fatalf("Compare = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHistoryCompareAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h History
	for i := 0; i < 4; i++ {
		h = h.Append(mustID(t, rng))
		prefix := h[:len(h)-1].Clone()
		if got := prefix.Compare(h); got != Before {
			t.Fatalf("prefix.Compare = %v, want Before", got)
		}
		if got := h.Compare(prefix); got != After {
			t.Fatalf("h.Compare(prefix) = %v, want After", got)
		}
	}
}

func TestHistoryAppendDoesNotAliasReceiver(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b, c := mustID(t, rng), mustID(t, rng), mustID(t, rng)
	base := History{a}
	h1 := base.Append(b)
	h2 := base.Append(c)
	if h1.Compare(h2) != Concurrent {
		t.Fatalf("branches from a shared base should be concurrent")
	}
	if base[0] != a {
		t.Fatalf("base mutated by Append")
	}
}

func TestHistoryHead(t *testing.T) {
	var empty History
	if _, err := empty.Head(); err == nil {
		t.Fatal("Head of empty history should error")
	}
	rng := rand.New(rand.NewSource(7))
	a, b := mustID(t, rng), mustID(t, rng)
	h := History{a, b}
	head, err := h.Head()
	if err != nil {
		t.Fatalf("Head: %v", err)
	}
	if head != b {
		t.Fatalf("Head = %v, want %v", head, b)
	}
}

func TestHistoryDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := mustID(t, rng), mustID(t, rng)
	h := History{a, b}
	if !h.Dominates(h) {
		t.Fatal("history should dominate itself")
	}
	if !h.Dominates(h[:1]) {
		t.Fatal("longer history should dominate its prefix")
	}
	if h[:1].Dominates(h) {
		t.Fatal("prefix should not dominate extension")
	}
}

func TestClockBasics(t *testing.T) {
	c := NewClock()
	if got := c.Get("a"); got != 0 {
		t.Fatalf("Get on empty = %d", got)
	}
	if got := c.Tick("a"); got != 1 {
		t.Fatalf("first Tick = %d, want 1", got)
	}
	if got := c.Tick("a"); got != 2 {
		t.Fatalf("second Tick = %d, want 2", got)
	}
	c.Tick("b")
	if got := c.String(); got != "{a:2,b:1}" {
		t.Fatalf("String = %q", got)
	}
}

func TestClockCompare(t *testing.T) {
	mk := func(pairs ...any) Clock {
		c := NewClock()
		for i := 0; i < len(pairs); i += 2 {
			c[pairs[i].(string)] = uint64(pairs[i+1].(int))
		}
		return c
	}
	tests := []struct {
		name string
		a, b Clock
		want Ordering
	}{
		{"both empty", mk(), mk(), Equal},
		{"equal", mk("x", 1), mk("x", 1), Equal},
		{"before", mk("x", 1), mk("x", 2), Before},
		{"after", mk("x", 3), mk("x", 2), After},
		{"missing key before", mk(), mk("y", 1), Before},
		{"missing key after", mk("y", 1), mk(), After},
		{"concurrent", mk("x", 1), mk("y", 1), Concurrent},
		{"zero component equal", mk("x", 0), mk(), Equal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Fatalf("Compare = %v, want %v", got, tt.want)
			}
		})
	}
}

func randClock(r *rand.Rand) Clock {
	keys := []string{"p", "q", "r", "s"}
	c := NewClock()
	for _, k := range keys {
		if r.Intn(2) == 0 {
			c[k] = uint64(r.Intn(5))
		}
	}
	return c
}

func TestClockMergeProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = randClock(r)
			args[1] = randClock(r)
			args[2] = randClock(r)
		}),
	}
	commutative := func(a, b, _ Clock) bool {
		return a.Merge(b).Compare(b.Merge(a)) == Equal
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("merge not commutative: %v", err)
	}
	associative := func(a, b, c Clock) bool {
		return a.Merge(b).Merge(c).Compare(a.Merge(b.Merge(c))) == Equal
	}
	if err := quick.Check(associative, cfg); err != nil {
		t.Errorf("merge not associative: %v", err)
	}
	idempotent := func(a, _, _ Clock) bool {
		return a.Merge(a).Compare(a) == Equal
	}
	if err := quick.Check(idempotent, cfg); err != nil {
		t.Errorf("merge not idempotent: %v", err)
	}
	dominates := func(a, b, _ Clock) bool {
		m := a.Merge(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(dominates, cfg); err != nil {
		t.Errorf("merge does not dominate inputs: %v", err)
	}
}

func TestClockCompareConsistentWithMerge(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = randClock(r)
			args[1] = randClock(r)
		}),
	}
	// If a ≤ b then merge(a,b) == b.
	prop := func(a, b Clock) bool {
		if a.Compare(b) == Before || a.Compare(b) == Equal {
			return a.Merge(b).Compare(b) == Equal
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("compare/merge inconsistent: %v", err)
	}
}

func TestClockCompareAntisymmetry(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: quickValues(func(args []interface{}, r *rand.Rand) {
			args[0] = randClock(r)
			args[1] = randClock(r)
		}),
	}
	flip := map[Ordering]Ordering{
		Equal: Equal, Before: After, After: Before, Concurrent: Concurrent,
	}
	prop := func(a, b Clock) bool {
		return flip[a.Compare(b)] == b.Compare(a)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("compare not antisymmetric: %v", err)
	}
}

func TestClockCloneIndependent(t *testing.T) {
	a := NewClock()
	a.Tick("x")
	b := a.Clone()
	b.Tick("x")
	if a.Get("x") != 1 || b.Get("x") != 2 {
		t.Fatalf("clone aliases original: a=%v b=%v", a, b)
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent",
	} {
		if got := o.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(o), got, want)
		}
	}
	if got := Ordering(99).String(); got != "Ordering(99)" {
		t.Fatalf("unknown ordering String = %q", got)
	}
}

func TestTombstoneExpiry(t *testing.T) {
	at := time.Unix(1000, 0)
	ts := Tombstone{At: at, Retain: time.Hour}
	if ts.Expired(at.Add(59 * time.Minute)) {
		t.Fatal("tombstone expired too early")
	}
	if !ts.Expired(at.Add(time.Hour)) {
		t.Fatal("tombstone did not expire at retention boundary")
	}
}

func TestHistoryString(t *testing.T) {
	var empty History
	if got := empty.String(); got == "" {
		t.Fatal("empty history should render a placeholder")
	}
	rng := rand.New(rand.NewSource(10))
	h := History{mustID(t, rng), mustID(t, rng)}
	if got := h.String(); len(got) == 0 {
		t.Fatal("history String empty")
	}
}

func quickValues(fill func(args []interface{}, r *rand.Rand)) func([]reflect.Value, *rand.Rand) {
	return func(vals []reflect.Value, r *rand.Rand) {
		args := make([]interface{}, len(vals))
		fill(args, r)
		for i := range vals {
			vals[i] = reflect.ValueOf(args[i])
		}
	}
}
