// Package version implements the versioning substrate of the update
// protocol: universally unique version identifiers, append-only version
// histories, vector clocks, and tombstones (death certificates).
//
// The paper (§3, footnote 1) models an item version as a vector of version
// identifiers ⟨Version_1, …, Version_k⟩ where each identifier is computed
// locally by hashing the current date/time, the peer's address, and a large
// random number. Two histories are ordered iff one is a prefix of the other;
// otherwise they are concurrent (a rare conflict, which the paper's target
// applications tolerate by letting versions coexist).
package version

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// IDSize is the byte length of a version identifier.
const IDSize = 16

// ID is a universally unique version identifier. Per the paper it is derived
// from a cryptographic hash of the local time, the peer's address, and a
// large random number.
type ID [IDSize]byte

// NewID computes a fresh identifier from the given instant, peer address and
// random source. Deterministic for a fixed (now, addr, rng) so that
// simulations are reproducible.
func NewID(now time.Time, addr string, rng *rand.Rand) ID {
	var buf [8 + 8]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(now.UnixNano()))
	binary.BigEndian.PutUint64(buf[8:16], rng.Uint64())
	h := sha256.New()
	h.Write(buf[:])
	h.Write([]byte(addr))
	var id ID
	copy(id[:], h.Sum(nil)[:IDSize])
	return id
}

// IsZero reports whether the identifier is the zero value.
func (id ID) IsZero() bool { return id == ID{} }

// String returns the hex form of the identifier, shortened for logs.
func (id ID) String() string { return hex.EncodeToString(id[:4]) }

// FullString returns the full hex form of the identifier.
func (id ID) FullString() string { return hex.EncodeToString(id[:]) }

// ParseID parses a full hex identifier produced by FullString.
func ParseID(s string) (ID, error) {
	var id ID
	raw, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("parse version id: %w", err)
	}
	if len(raw) != IDSize {
		return id, fmt.Errorf("parse version id: got %d bytes, want %d", len(raw), IDSize)
	}
	copy(id[:], raw)
	return id, nil
}

// Ordering is the result of comparing two version histories or clocks.
type Ordering int

// Possible comparison results. Equal means identical histories; Before and
// After are strict causal orderings; Concurrent means neither history is a
// prefix of the other (an update conflict).
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns a human-readable ordering name.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// History is an append-only chain of version identifiers, oldest first. It is
// the paper's ⟨Version_1, …, Version_k⟩ vector.
type History []ID

// ErrEmptyHistory is returned when an operation requires at least one entry.
var ErrEmptyHistory = errors.New("version: empty history")

// Append returns a new history extended by id. The receiver is not modified.
func (h History) Append(id ID) History {
	out := make(History, len(h)+1)
	copy(out, h)
	out[len(h)] = id
	return out
}

// Head returns the most recent identifier.
func (h History) Head() (ID, error) {
	if len(h) == 0 {
		return ID{}, ErrEmptyHistory
	}
	return h[len(h)-1], nil
}

// Clone returns a deep copy of the history.
func (h History) Clone() History {
	return append(History(nil), h...)
}

// Compare orders two histories by the prefix relation:
//
//   - Equal: same length, same entries.
//   - Before: h is a strict prefix of other (other is newer).
//   - After: other is a strict prefix of h (h is newer).
//   - Concurrent: the histories diverge — an update conflict.
func (h History) Compare(other History) Ordering {
	n := len(h)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if h[i] != other[i] {
			return Concurrent
		}
	}
	switch {
	case len(h) == len(other):
		return Equal
	case len(h) < len(other):
		return Before
	default:
		return After
	}
}

// Dominates reports whether h is at least as new as other (Equal or After).
func (h History) Dominates(other History) bool {
	o := h.Compare(other)
	return o == Equal || o == After
}

// String renders the history as a short arrow-chain, for logs and debugging.
func (h History) String() string {
	if len(h) == 0 {
		return "∅"
	}
	parts := make([]string, len(h))
	for i, id := range h {
		parts[i] = id.String()
	}
	return strings.Join(parts, "→")
}

// Clock is a vector clock mapping a replica identity to the count of updates
// it has originated. It is used by the pull phase to summarise "what I have"
// compactly ("inquire for missed updates based on version vectors", §3).
type Clock map[string]uint64

// NewClock returns an empty clock.
func NewClock() Clock { return make(Clock) }

// Tick increments the component for the given replica and returns the new
// count.
func (c Clock) Tick(replica string) uint64 {
	c[replica]++
	return c[replica]
}

// Get returns the component for the given replica (zero if absent).
func (c Clock) Get(replica string) uint64 { return c[replica] }

// Clone returns a deep copy of the clock.
func (c Clock) Clone() Clock {
	out := make(Clock, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Merge returns the component-wise maximum of c and other. Neither input is
// modified. Merge is commutative, associative and idempotent (it computes the
// join in the lattice of vector clocks); the property tests assert this.
func (c Clock) Merge(other Clock) Clock {
	out := c.Clone()
	for k, v := range other {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

// Compare orders two clocks pointwise:
//
//   - Equal: identical components.
//   - Before: every component of c ≤ other, at least one strictly less.
//   - After: every component of c ≥ other, at least one strictly greater.
//   - Concurrent: some component greater, some smaller.
func (c Clock) Compare(other Clock) Ordering {
	var less, greater bool
	for k, v := range c {
		ov := other[k]
		if v < ov {
			less = true
		} else if v > ov {
			greater = true
		}
	}
	for k, ov := range other {
		if _, seen := c[k]; seen {
			continue
		}
		if ov > 0 {
			less = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Dominates reports whether c is at least as advanced as other.
func (c Clock) Dominates(other Clock) bool {
	o := c.Compare(other)
	return o == Equal || o == After
}

// String renders the clock deterministically (sorted by key).
func (c Clock) String() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, c[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Tombstone is a death certificate recording the deletion of an item. The
// paper (§3) notes deletions "may use conventional tombstones and death
// certificates": the tombstone propagates like a normal update and expires
// after a retention period so that storage is eventually reclaimed.
type Tombstone struct {
	// Deleted is the version history at which the item was deleted.
	Deleted History
	// At is the (simulated or wall-clock) time of deletion.
	At time.Time
	// Retain is how long the certificate must be kept before it may be
	// garbage-collected.
	Retain time.Duration
}

// Expired reports whether the certificate may be dropped at time now.
func (t Tombstone) Expired(now time.Time) bool {
	return now.Sub(t.At) >= t.Retain
}
