package simnet

import (
	"testing"

	"github.com/p2pgossip/update/internal/churn"
)

// pingNode sends one message from peer 0 to every other peer each round, and
// records the order in which deliveries arrive.
type pingNode struct {
	id       int
	received []int // sender round of each delivery, in arrival order
	arrivals []int // round at which each delivery arrived
}

func (n *pingNode) Init(*Env) {}
func (n *pingNode) HandleMessage(env *Env, msg Message) {
	n.received = append(n.received, msg.SentAt)
	n.arrivals = append(n.arrivals, env.Round())
}
func (n *pingNode) Tick(env *Env) {
	if n.id == 0 {
		for to := 1; to < env.N(); to++ {
			env.Send(to, env.Round(), 8)
		}
	}
}
func (n *pingNode) CameOnline(*Env) {}

func newPingNet(t *testing.T, n int, plane *FaultPlane) (*Engine, []*pingNode) {
	t.Helper()
	raw := make([]*pingNode, n)
	nodes := make([]Node, n)
	for i := range nodes {
		raw[i] = &pingNode{id: i}
		nodes[i] = raw[i]
	}
	en, err := NewEngine(Config{
		Nodes: nodes, InitialOnline: n, Seed: 11, Faults: plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	return en, raw
}

func TestFaultPlaneValidation(t *testing.T) {
	cases := []*FaultPlane{
		NewFaultPlane().SetDefault(EdgeFault{Drop: 1.5}),
		NewFaultPlane().SetEdge(0, 9, EdgeFault{}),
		NewFaultPlane().SetEdge(0, 1, EdgeFault{Delay: -1}),
		NewFaultPlane().SetEdge(0, 1, EdgeFault{Jitter: -2}),
		NewFaultPlane().AddPartition(Partition{From: 10, Until: 5, A: []int{0}, B: []int{1}}),
		NewFaultPlane().AddPartition(Partition{A: []int{0}, B: []int{0, 1}}),
		NewFaultPlane().AddPartition(Partition{A: []int{7}, B: []int{1}}),
		NewFaultPlane().AddCrash(9, 1, 2),
		NewFaultPlane().AddCrash(0, -1, 2),
		NewFaultPlane().AddCrash(0, 5, 5),
	}
	for i, plane := range cases {
		nodes, _ := newChain(3)
		if _, err := NewEngine(Config{Nodes: nodes, InitialOnline: 3, Faults: plane}); err == nil {
			t.Fatalf("case %d: invalid plane accepted", i)
		}
	}
}

func TestFaultPlaneEdgeDrop(t *testing.T) {
	plane := NewFaultPlane().SetEdge(0, 1, EdgeFault{Drop: 1})
	en, raw := newPingNet(t, 3, plane)
	for i := 0; i < 5; i++ {
		en.Step()
	}
	if got := len(raw[1].received); got != 0 {
		t.Fatalf("peer 1 received %d messages over a fully lossy edge", got)
	}
	if got := len(raw[2].received); got == 0 {
		t.Fatal("peer 2 starved by an unrelated edge fault")
	}
	if got := en.Metrics().Counter(MetricMessagesDropped); got == 0 {
		t.Fatal("edge drops not counted")
	}
}

func TestFaultPlaneDefaultAppliesToAllEdges(t *testing.T) {
	plane := NewFaultPlane().SetDefault(EdgeFault{Drop: 1})
	en, raw := newPingNet(t, 3, plane)
	for i := 0; i < 5; i++ {
		en.Step()
	}
	if len(raw[1].received)+len(raw[2].received) != 0 {
		t.Fatal("default drop did not apply to every edge")
	}
}

func TestFaultPlaneDelay(t *testing.T) {
	plane := NewFaultPlane().SetEdge(0, 1, EdgeFault{Delay: 3})
	en, raw := newPingNet(t, 2, plane)
	en.Step() // round 0: send
	en.Step() // round 1: would arrive on a clean link
	if len(raw[1].received) != 0 {
		t.Fatal("delayed message arrived early")
	}
	en.Step()
	en.Step()
	en.Step() // round 4 = 0 + 1 + 3
	if len(raw[1].arrivals) == 0 || raw[1].arrivals[0] != 4 {
		t.Fatalf("arrivals = %v, want first at round 4", raw[1].arrivals)
	}
}

func TestFaultPlaneJitterBoundsAndDeterminism(t *testing.T) {
	run := func() []int {
		plane := NewFaultPlane().SetEdge(0, 1, EdgeFault{Delay: 1, Jitter: 2})
		en, raw := newPingNet(t, 2, plane)
		for i := 0; i < 12; i++ {
			en.Step()
		}
		return append([]int(nil), raw[1].arrivals...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	// Latency per message stays within [2, 4] rounds (1 base + 1 delay +
	// jitter in [0,2]).
	for i, arrived := range a {
		lat := arrived - i // message i was sent in round i
		if lat < 2 || lat > 4 {
			t.Fatalf("message %d latency %d out of [2,4]", i, lat)
		}
	}
}

func TestFaultPlaneReorderPermutesOnlyMarkedEdges(t *testing.T) {
	// All 0→1 messages are marked for reordering: a burst sent in one round
	// arrives permuted. Peer 2's edge is untouched and must stay in order.
	plane := NewFaultPlane().SetEdge(0, 1, EdgeFault{Reorder: true})
	raw := []*seqRecorder{nil, {}, {}}
	nodes := []Node{&burstSender{}, raw[1], raw[2]}
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 3, Seed: 3, Faults: plane})
	if err != nil {
		t.Fatal(err)
	}
	en.Run(5)
	if got := raw[2].seqs; !isSorted(got) {
		t.Fatalf("clean edge delivered out of order: %v", got)
	}
	if got := raw[1].seqs; isSorted(got) {
		t.Fatalf("reordering edge delivered in order %v (seed should permute)", got)
	}
}

// seqRecorder records the integer payloads it receives, in arrival order.
type seqRecorder struct{ seqs []int }

func (r *seqRecorder) Init(*Env)       {}
func (r *seqRecorder) Tick(*Env)       {}
func (r *seqRecorder) CameOnline(*Env) {}
func (r *seqRecorder) HandleMessage(_ *Env, msg Message) {
	r.seqs = append(r.seqs, msg.Payload.(int))
}

// burstSender sends sequence-numbered messages to peers 1 and 2 in round 0.
type burstSender struct{}

func (s *burstSender) Init(*Env)                   {}
func (s *burstSender) HandleMessage(*Env, Message) {}
func (s *burstSender) CameOnline(*Env)             {}
func (s *burstSender) Tick(env *Env) {
	if env.Round() == 0 {
		for seq := 0; seq < 6; seq++ {
			env.Send(1, seq, 4)
			env.Send(2, seq, 4)
		}
	}
}

func isSorted(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

func TestFaultPlanePartitionAndHeal(t *testing.T) {
	// Two-way cut between {0} and {1} for rounds 2..5; peer 2 is unaffected.
	plane := NewFaultPlane().AddPartition(Partition{
		From: 2, Until: 6, A: []int{0}, B: []int{1},
	})
	en, raw := newPingNet(t, 3, plane)
	for en.Round() < 10 {
		en.Step()
	}
	// Peer 1 misses exactly the messages sent in rounds 2..5.
	got := raw[1].received
	for _, sentAt := range got {
		if sentAt >= 2 && sentAt < 6 {
			t.Fatalf("message sent at %d crossed an active partition", sentAt)
		}
	}
	if len(got) != len(raw[2].received)-4 {
		t.Fatalf("peer 1 got %d, peer 2 got %d (want exactly 4 fewer)",
			len(got), len(raw[2].received))
	}
}

func TestFaultPlaneOneWayPartition(t *testing.T) {
	// One-way cut {1}→{0}: peer 0's pings still reach peer 1.
	plane := NewFaultPlane().AddPartition(Partition{
		From: 0, A: []int{1}, B: []int{0}, OneWay: true,
	})
	en, raw := newPingNet(t, 2, plane)
	for i := 0; i < 5; i++ {
		en.Step()
	}
	if len(raw[1].received) == 0 {
		t.Fatal("reverse direction of a one-way cut blocked")
	}
}

// crashNode tracks crash/restart callbacks and counts deliveries, carrying a
// volatile counter that a crash must reset.
type crashNode struct {
	pingNode
	volatile int
	crashes  int
	restarts int
}

func (n *crashNode) HandleMessage(env *Env, msg Message) {
	n.pingNode.HandleMessage(env, msg)
	n.volatile++
}
func (n *crashNode) Crash(*Env)   { n.crashes++; n.volatile = 0 }
func (n *crashNode) Restart(*Env) { n.restarts++ }

func TestFaultPlaneCrashRestart(t *testing.T) {
	plane := NewFaultPlane().AddCrash(1, 2, 6)
	sender := &pingNode{id: 0}
	victim := &crashNode{pingNode: pingNode{id: 1}}
	en, err := NewEngine(Config{
		Nodes: []Node{sender, victim}, InitialOnline: 2, Seed: 5, Faults: plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	for en.Round() < 9 {
		en.Step()
	}
	if victim.crashes != 1 || victim.restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1", victim.crashes, victim.restarts)
	}
	// Down for rounds 2..5: messages sent in rounds 1..4 are lost to the
	// offline window; everything after the restart flows again.
	for _, sentAt := range victim.received {
		if sentAt >= 1 && sentAt < 5 {
			t.Fatalf("message sent at round %d delivered to a crashed peer", sentAt)
		}
	}
	if len(victim.received) == 0 {
		t.Fatal("no deliveries after restart")
	}
	if en.Metrics().Counter(MetricMessagesOffline) == 0 {
		t.Fatal("down-window sends not counted as offline")
	}
}

func TestFaultPlaneCrashOverridesChurn(t *testing.T) {
	// Churn would keep everyone online; the crash forces peer 1 down with no
	// restart, and it must stay down.
	plane := NewFaultPlane().AddCrash(1, 1, 0)
	nodes, _ := newChain(2)
	en, err := NewEngine(Config{
		Nodes: nodes, InitialOnline: 2,
		Churn:  churn.Bernoulli{Sigma: 1, POn: 1},
		Faults: plane, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for en.Round() < 6 {
		en.Step()
	}
	if en.Population().Online(1) {
		t.Fatal("crashed peer revived by churn")
	}
	if !en.Crashed(1) {
		t.Fatal("Crashed(1) = false")
	}
}

func TestRunDoesNotIdleOutBeforeScheduledEvents(t *testing.T) {
	// Nothing is ever sent, but a restart is scheduled at round 8: Run must
	// not stop at the two-idle-round mark.
	plane := NewFaultPlane().AddCrash(0, 2, 8)
	nodes, _ := newChain(2)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 2, Faults: plane})
	if err != nil {
		t.Fatal(err)
	}
	if got := en.Run(20); got < 9 {
		t.Fatalf("run idled out after %d rounds with events pending at 8", got)
	}
}

func TestFaultPlaneRejectsOverlappingCrashWindows(t *testing.T) {
	cases := []*FaultPlane{
		// Second crash while still down.
		NewFaultPlane().AddCrash(0, 10, 30).AddCrash(0, 20, 25),
		// Crash after a crash the peer never restarts from.
		NewFaultPlane().AddCrash(0, 10, 0).AddCrash(0, 20, 25),
	}
	for i, plane := range cases {
		nodes, _ := newChain(2)
		if _, err := NewEngine(Config{Nodes: nodes, InitialOnline: 2, Faults: plane}); err == nil {
			t.Fatalf("case %d: overlapping crash windows accepted", i)
		}
	}
	// Back-to-back windows (restart and next crash on the same round) are a
	// legal restart-into-crash: both events execute.
	plane := NewFaultPlane().AddCrash(0, 2, 4).AddCrash(0, 4, 6)
	victim := &crashNode{pingNode: pingNode{id: 0}}
	en, err := NewEngine(Config{Nodes: []Node{victim, &pingNode{id: 1}},
		InitialOnline: 2, Faults: plane})
	if err != nil {
		t.Fatal(err)
	}
	for en.Round() < 8 {
		en.Step()
	}
	if victim.crashes != 2 || victim.restarts != 2 {
		t.Fatalf("crashes/restarts = %d/%d, want 2/2", victim.crashes, victim.restarts)
	}
}

func TestRunDoesNotIdleOutBeforeScheduleEvents(t *testing.T) {
	// No traffic at all, but the churn schedule revives everyone at round
	// 9: Run must keep stepping until the event has fired.
	sched, err := churn.NewSchedule(churn.Static{},
		churn.Event{Round: 9, Kind: churn.Revive, Fraction: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	nodes, raw := newChain(3)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 0, Churn: sched})
	if err != nil {
		t.Fatal(err)
	}
	if got := en.Run(20); got < 10 {
		t.Fatalf("run idled out after %d rounds with a revival scheduled at 9", got)
	}
	if raw[0].cameUp != 1 {
		t.Fatalf("scheduled revival never fired (cameUp = %d)", raw[0].cameUp)
	}
}
