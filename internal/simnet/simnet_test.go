package simnet

import (
	"testing"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/trace"
)

// echoNode counts its callbacks and forwards each received ping once to the
// next peer, building a deterministic chain.
type echoNode struct {
	id        int
	inits     int
	handled   int
	ticks     int
	cameUp    int
	forwarded bool
}

func (n *echoNode) Init(env *Env) {
	n.inits++
	if n.id != env.Self() {
		panic("env self mismatch")
	}
}

func (n *echoNode) HandleMessage(env *Env, msg Message) {
	n.handled++
	if !n.forwarded && n.id+1 < env.N() {
		env.Send(n.id+1, "ping", 10)
		n.forwarded = true
	}
}

func (n *echoNode) Tick(env *Env) {
	n.ticks++
	if n.id == 0 && env.Round() == 0 {
		env.Send(1, "ping", 10)
	}
}

func (n *echoNode) CameOnline(*Env) { n.cameUp++ }

func newChain(n int) ([]Node, []*echoNode) {
	nodes := make([]Node, n)
	raw := make([]*echoNode, n)
	for i := range nodes {
		raw[i] = &echoNode{id: i}
		nodes[i] = raw[i]
	}
	return nodes, raw
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
	nodes, _ := newChain(2)
	if _, err := NewEngine(Config{Nodes: nodes, InitialOnline: 5}); err == nil {
		t.Fatal("initial online > n should error")
	}
	if _, err := NewEngine(Config{Nodes: nodes, InitialOnline: 1, MessageLoss: 2}); err == nil {
		t.Fatal("loss > 1 should error")
	}
}

func TestChainPropagation(t *testing.T) {
	nodes, raw := newChain(5)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 5})
	if err != nil {
		t.Fatal(err)
	}
	rounds := en.Run(20)
	// Node 0 sends in round 0; node i receives in round i; last node (4)
	// receives in round 4; two idle rounds close the run.
	if rounds < 5 || rounds > 8 {
		t.Fatalf("rounds = %d", rounds)
	}
	for i := 1; i < 5; i++ {
		if raw[i].handled != 1 {
			t.Fatalf("node %d handled %d messages", i, raw[i].handled)
		}
	}
	if raw[0].inits != 1 {
		t.Fatalf("inits = %d", raw[0].inits)
	}
	if got := en.Metrics().Counter(MetricMessages); got != 4 {
		t.Fatalf("messages = %g, want 4", got)
	}
	if got := en.Metrics().Counter(MetricBytes); got != 40 {
		t.Fatalf("bytes = %g, want 40", got)
	}
}

func TestMessagesToOfflinePeersAreCountedNotDelivered(t *testing.T) {
	nodes, raw := newChain(3)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 2}) // node 2 offline
	if err != nil {
		t.Fatal(err)
	}
	en.Run(10)
	if raw[1].handled != 1 {
		t.Fatalf("online node handled %d", raw[1].handled)
	}
	if raw[2].handled != 0 {
		t.Fatalf("offline node handled %d", raw[2].handled)
	}
	m := en.Metrics()
	if m.Counter(MetricMessages) != 2 {
		t.Fatalf("messages = %g", m.Counter(MetricMessages))
	}
	if m.Counter(MetricMessagesOffline) != 1 {
		t.Fatalf("offline messages = %g", m.Counter(MetricMessagesOffline))
	}
}

func TestMessageLossDropsEverything(t *testing.T) {
	nodes, raw := newChain(3)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 3, MessageLoss: 1})
	if err != nil {
		t.Fatal(err)
	}
	en.Run(10)
	if raw[1].handled != 0 {
		t.Fatalf("handled %d despite full loss", raw[1].handled)
	}
	if got := en.Metrics().Counter(MetricMessagesDropped); got != 1 {
		t.Fatalf("dropped = %g", got)
	}
}

func TestCameOnlineCallback(t *testing.T) {
	nodes, raw := newChain(2)
	en, err := NewEngine(Config{
		Nodes:         nodes,
		InitialOnline: 0,
		Churn:         churn.Bernoulli{Sigma: 1, POn: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step() // round 0: everyone still offline (no churn before round 0)
	if raw[0].cameUp != 0 {
		t.Fatalf("cameUp before churn = %d", raw[0].cameUp)
	}
	en.Step() // round 1: churn brings everyone online
	if raw[0].cameUp != 1 || raw[1].cameUp != 1 {
		t.Fatalf("cameUp = %d/%d, want 1/1", raw[0].cameUp, raw[1].cameUp)
	}
}

func TestOfflineNodesDoNotTick(t *testing.T) {
	nodes, raw := newChain(2)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 1})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	en.Step()
	if raw[1].ticks != 0 {
		t.Fatalf("offline node ticked %d times", raw[1].ticks)
	}
	if raw[0].ticks != 2 {
		t.Fatalf("online node ticked %d times", raw[0].ticks)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() float64 {
		nodes, _ := newChain(50)
		en, err := NewEngine(Config{
			Nodes:         nodes,
			InitialOnline: 25,
			Churn:         churn.Bernoulli{Sigma: 0.9, POn: 0.1},
			Seed:          42,
		})
		if err != nil {
			t.Fatal(err)
		}
		en.Run(30)
		return en.Metrics().Counter(MetricMessages) +
			float64(en.Population().OnlineCount())*1000
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %g vs %g", a, b)
	}
}

func TestSharedMetricsRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Inc("preexisting")
	nodes, _ := newChain(2)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	en.Run(5)
	if reg.Counter("preexisting") != 1 {
		t.Fatal("registry was replaced")
	}
	if reg.Counter(MetricMessages) == 0 {
		t.Fatal("engine did not write to shared registry")
	}
}

func TestRunStopsAtMaxRounds(t *testing.T) {
	// A node that sends to itself forever never goes idle.
	nodes := []Node{&selfSpammer{}}
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := en.Run(7); got != 7 {
		t.Fatalf("rounds = %d, want 7", got)
	}
}

type selfSpammer struct{}

func (s *selfSpammer) Init(*Env)                   {}
func (s *selfSpammer) HandleMessage(*Env, Message) {}
func (s *selfSpammer) Tick(env *Env)               { env.Send(env.Self(), "x", 1) }
func (s *selfSpammer) CameOnline(*Env)             {}

func TestEngineTracing(t *testing.T) {
	rec := trace.New(0)
	nodes, _ := newChain(3)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 2, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	en.Run(10)
	// Chain: node 0 sends to 1 (delivered), node 1 sends to 2 (offline).
	if got := rec.CountKind(trace.KindSend); got != 2 {
		t.Fatalf("send events = %d, want 2", got)
	}
	if got := rec.CountKind(trace.KindDeliver); got != 1 {
		t.Fatalf("deliver events = %d, want 1", got)
	}
	if got := rec.CountKind(trace.KindOffline); got != 1 {
		t.Fatalf("offline events = %d, want 1", got)
	}
}

func TestEngineTracingChurnAndDrops(t *testing.T) {
	rec := trace.New(0)
	nodes, _ := newChain(2)
	en, err := NewEngine(Config{
		Nodes: nodes, InitialOnline: 0,
		Churn: churn.Bernoulli{Sigma: 1, POn: 1},
		Trace: rec, MessageLoss: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	en.Step() // everyone comes online
	en.Step() // node 0 tick fired at round... node 0 sends at round 0 only when online
	if got := rec.CountKind(trace.KindWentOnline); got != 2 {
		t.Fatalf("online events = %d, want 2", got)
	}
}

func TestEnvAccessorsAndEngineIntrospection(t *testing.T) {
	nodes, _ := newChain(4)
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	env := NewTestEnv(en, 2)
	if env.Self() != 2 {
		t.Fatalf("Self = %d", env.Self())
	}
	if env.N() != 4 {
		t.Fatalf("N = %d", env.N())
	}
	if env.RNG() == nil || env.Metrics() == nil {
		t.Fatal("RNG/Metrics nil")
	}
	if !env.Online(0) || env.Online(3) {
		t.Fatal("Online wrong")
	}
	if env.OnlineCount() != 3 {
		t.Fatalf("OnlineCount = %d", env.OnlineCount())
	}
	if env.Round() != 0 || en.Round() != 0 {
		t.Fatal("round not zero before steps")
	}
	en.Step()
	en.Step()
	if en.Round() != 1 {
		t.Fatalf("Round = %d after two steps", en.Round())
	}
	if en.Node(1) != nodes[1] {
		t.Fatal("Node accessor wrong")
	}
}

func TestSetMessageLossMidRun(t *testing.T) {
	nodes := []Node{&selfSpammer{}}
	en, err := NewEngine(Config{Nodes: nodes, InitialOnline: 1})
	if err != nil {
		t.Fatal(err)
	}
	en.Step() // sends one message, no loss
	en.SetMessageLoss(1)
	en.Step() // the next send is dropped
	en.Step()
	if got := en.Metrics().Counter(MetricMessagesDropped); got == 0 {
		t.Fatal("mid-run loss not applied")
	}
}
