package simnet

import (
	"fmt"
	"sort"
)

// EdgeFault describes the injected behaviour of one directed edge — or, as
// the plane's default, of every edge without a specific override. The zero
// value is a perfect link.
type EdgeFault struct {
	// Drop is an independent per-message loss probability.
	Drop float64
	// Delay is extra delivery latency in rounds on top of the engine's
	// one-round baseline.
	Delay int
	// Jitter adds a uniform extra latency in [0, Jitter] rounds per message.
	Jitter int
	// Reorder randomises the message's delivery position within its arrival
	// round, so a burst over this edge arrives permuted rather than in send
	// order.
	Reorder bool
}

// validate reports whether the fault is usable.
func (f EdgeFault) validate() error {
	switch {
	case f.Drop < 0 || f.Drop > 1:
		return fmt.Errorf("simnet: edge drop %g out of [0,1]", f.Drop)
	case f.Delay < 0:
		return fmt.Errorf("simnet: edge delay %d negative", f.Delay)
	case f.Jitter < 0:
		return fmt.Errorf("simnet: edge jitter %d negative", f.Jitter)
	default:
		return nil
	}
}

// Partition is a scheduled network cut between two peer sets. Messages
// crossing an active cut are dropped at send time (and counted under
// MetricMessagesDropped), so in-flight traffic sent before the cut still
// arrives — the cut severs links, it does not eat queues.
type Partition struct {
	// From is the first round the cut is active.
	From int
	// Until is the first round after the cut heals; 0 or negative means the
	// cut never heals.
	Until int
	// A and B are the two peer sets. Peers in neither set are unaffected.
	A, B []int
	// OneWay blocks only A→B traffic (an asymmetric partition, e.g. a
	// half-broken NAT); otherwise both directions are blocked.
	OneWay bool

	inA, inB map[int]bool
}

// active reports whether the cut is in force at the given round.
func (p *Partition) active(round int) bool {
	return round >= p.From && (p.Until <= 0 || round < p.Until)
}

// severs reports whether the cut blocks a message from → to.
func (p *Partition) severs(from, to int) bool {
	if p.inA[from] && p.inB[to] {
		return true
	}
	return !p.OneWay && p.inB[from] && p.inA[to]
}

// CrashEvent schedules a process crash: at round At the peer is forced
// offline (overriding the churn process) and, if it implements Restartable,
// loses its volatile state; at RestartAt it recovers from its durable
// snapshot and comes back online.
type CrashEvent struct {
	// Peer is the crashing peer index.
	Peer int
	// At is the crash round.
	At int
	// RestartAt is the restart round; 0 or negative means the peer never
	// returns.
	RestartAt int
}

// FaultPlane is a declarative schedule of injected faults for one simulation:
// per-edge loss, latency and reordering, scheduled (and healing) partitions,
// and crash/restart events. Attach one via Config.Faults; the engine consults
// it on every send and at every round boundary. All randomness is drawn from
// the engine's seeded source, so a faulted run is exactly as reproducible as
// a clean one.
type FaultPlane struct {
	def     EdgeFault
	hasDef  bool
	edges   map[[2]int]EdgeFault
	parts   []*Partition
	crashes []CrashEvent
	sealed  bool
}

// NewFaultPlane returns an empty fault plane.
func NewFaultPlane() *FaultPlane {
	return &FaultPlane{edges: make(map[[2]int]EdgeFault)}
}

// SetDefault applies f to every edge without a specific override. It returns
// the plane for chaining.
func (fp *FaultPlane) SetDefault(f EdgeFault) *FaultPlane {
	fp.def, fp.hasDef = f, true
	return fp
}

// SetEdge applies f to the directed edge from → to, overriding the default.
// It returns the plane for chaining.
func (fp *FaultPlane) SetEdge(from, to int, f EdgeFault) *FaultPlane {
	fp.edges[[2]int{from, to}] = f
	return fp
}

// AddPartition schedules a cut. It returns the plane for chaining.
func (fp *FaultPlane) AddPartition(p Partition) *FaultPlane {
	fp.parts = append(fp.parts, &p)
	return fp
}

// AddCrash schedules a crash at round `at` with a restart at `restartAt`
// (≤ 0: the peer never returns). It returns the plane for chaining.
func (fp *FaultPlane) AddCrash(peer, at, restartAt int) *FaultPlane {
	fp.crashes = append(fp.crashes, CrashEvent{Peer: peer, At: at, RestartAt: restartAt})
	return fp
}

// seal validates the plane against a population of n peers and builds the
// lookup structures. Engines call it once at construction; sealing twice is
// a no-op, so a plane must not be shared between engines.
func (fp *FaultPlane) seal(n int) error {
	if fp.sealed {
		return nil
	}
	if fp.hasDef {
		if err := fp.def.validate(); err != nil {
			return err
		}
	}
	for edge, f := range fp.edges {
		if err := f.validate(); err != nil {
			return err
		}
		for _, peer := range edge {
			if peer < 0 || peer >= n {
				return fmt.Errorf("simnet: edge fault peer %d out of range [0,%d)", peer, n)
			}
		}
	}
	for i, p := range fp.parts {
		if p.Until > 0 && p.Until <= p.From {
			return fmt.Errorf("simnet: partition %d heals at %d before starting at %d",
				i, p.Until, p.From)
		}
		p.inA = make(map[int]bool, len(p.A))
		p.inB = make(map[int]bool, len(p.B))
		for _, peer := range p.A {
			if peer < 0 || peer >= n {
				return fmt.Errorf("simnet: partition %d peer %d out of range [0,%d)", i, peer, n)
			}
			p.inA[peer] = true
		}
		for _, peer := range p.B {
			if peer < 0 || peer >= n {
				return fmt.Errorf("simnet: partition %d peer %d out of range [0,%d)", i, peer, n)
			}
			if p.inA[peer] {
				return fmt.Errorf("simnet: partition %d peer %d on both sides", i, peer)
			}
			p.inB[peer] = true
		}
	}
	for i, c := range fp.crashes {
		switch {
		case c.Peer < 0 || c.Peer >= n:
			return fmt.Errorf("simnet: crash %d peer %d out of range [0,%d)", i, c.Peer, n)
		case c.At < 0:
			return fmt.Errorf("simnet: crash %d at negative round %d", i, c.At)
		case c.RestartAt > 0 && c.RestartAt <= c.At:
			return fmt.Errorf("simnet: crash %d restarts at %d, not after crash at %d",
				i, c.RestartAt, c.At)
		}
	}
	sort.SliceStable(fp.crashes, func(i, j int) bool {
		return fp.crashes[i].At < fp.crashes[j].At
	})
	// A peer's crash windows must not overlap: a second crash while it is
	// already down, or after a crash it never restarts from, would execute a
	// schedule other than the declared one.
	lastWindow := make(map[int]CrashEvent, len(fp.crashes))
	for _, c := range fp.crashes {
		if prev, ok := lastWindow[c.Peer]; ok {
			if prev.RestartAt <= 0 {
				return fmt.Errorf("simnet: peer %d crashes at %d but never restarts from its crash at %d",
					c.Peer, c.At, prev.At)
			}
			if c.At < prev.RestartAt {
				return fmt.Errorf("simnet: peer %d crash windows overlap: [%d,%d) and crash at %d",
					c.Peer, prev.At, prev.RestartAt, c.At)
			}
		}
		lastWindow[c.Peer] = c
	}
	fp.sealed = true
	return nil
}

// edgeFault returns the fault configured for from → to, falling back to the
// plane default.
func (fp *FaultPlane) edgeFault(from, to int) (EdgeFault, bool) {
	if f, ok := fp.edges[[2]int{from, to}]; ok {
		return f, true
	}
	return fp.def, fp.hasDef
}

// severed reports whether an active partition blocks from → to at round.
func (fp *FaultPlane) severed(from, to, round int) bool {
	for _, p := range fp.parts {
		if p.active(round) && p.severs(from, to) {
			return true
		}
	}
	return false
}

// Crashes returns the crash schedule in crash order.
func (fp *FaultPlane) Crashes() []CrashEvent {
	return append([]CrashEvent(nil), fp.crashes...)
}

// LastEventRound returns the largest round at which a scheduled event
// (partition start or heal, crash, restart) fires; -1 for an event-free
// plane. Runners use it to avoid declaring a simulation finished while the
// plane still has scheduled interventions.
func (fp *FaultPlane) LastEventRound() int {
	last := -1
	for _, p := range fp.parts {
		if p.From > last {
			last = p.From
		}
		if p.Until > last {
			last = p.Until
		}
	}
	for _, c := range fp.crashes {
		if c.At > last {
			last = c.At
		}
		if c.RestartAt > last {
			last = c.RestartAt
		}
	}
	return last
}
