// Package simnet is a round-based discrete simulator for epidemic protocols
// under churn.
//
// The paper analyses the push phase in a synchronous model, "a standard
// model for analysing epidemic algorithms" (§3), and notes that the discrete
// time model is a round abstraction rather than a wall clock (§4.1). The
// engine mirrors that model:
//
//   - Each round, the churn process updates every peer's availability.
//   - Messages sent in round t are delivered at the beginning of round t+1
//     to recipients that are online then; sends to offline peers are counted
//     (the paper's message metric includes them, Table 1: "including
//     messages to offline replicas") but not delivered.
//   - Online nodes then take a Tick step (initiate pushes, pulls, …).
//
// Protocol behaviours plug in through the Node interface; the gossip core
// and all flooding baselines run on the same engine so that their message
// counts are directly comparable.
package simnet

import (
	"fmt"
	"math/rand"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/trace"
)

// Metric names used by the engine. Protocols add their own on top.
const (
	// MetricMessages counts every send, delivered or not.
	MetricMessages = "messages"
	// MetricMessagesOffline counts sends whose recipient was offline at
	// delivery time.
	MetricMessagesOffline = "messages_offline"
	// MetricMessagesDropped counts sends lost to injected message loss.
	MetricMessagesDropped = "messages_dropped"
	// MetricBytes accumulates the byte size of every send.
	MetricBytes = "bytes"
)

// Message is an in-flight simulation message.
type Message struct {
	// From and To are peer indices.
	From, To int
	// SentAt is the round in which the message was sent.
	SentAt int
	// DeliverAt is the round the message arrives: SentAt+1 on a clean link,
	// later when the fault plane injects delay.
	DeliverAt int
	// Payload is the protocol-defined content.
	Payload any
	// Bytes is the accounted wire size.
	Bytes int

	// reorder marks messages whose delivery position is randomised within
	// their arrival round (FaultPlane edge reordering).
	reorder bool
}

// Node is a protocol behaviour attached to one peer.
type Node interface {
	// Init is called once before the first round.
	Init(env *Env)
	// HandleMessage delivers one message; called only while online.
	HandleMessage(env *Env, msg Message)
	// Tick runs once per round while online, after message delivery.
	Tick(env *Env)
	// CameOnline is called when the peer transitions offline→online, before
	// message delivery in that round (this is where the pull phase starts).
	CameOnline(env *Env)
}

// Restartable is implemented by nodes that support crash/restart fault
// injection (FaultPlane.AddCrash). Crash is called when the process dies: the
// node must drop its volatile state, keeping only what its durable storage
// would preserve. Restart is called when the process returns, before the
// CameOnline callback of the same round. Crash events on nodes that do not
// implement Restartable degrade to a forced offline period (a network cut,
// not a process death).
type Restartable interface {
	Node
	// Crash drops the node's volatile state.
	Crash(env *Env)
	// Restart recovers the node from its durable state.
	Restart(env *Env)
}

// Env is the API surface protocols use to interact with the engine. An Env
// is only valid for the duration of the callback it is passed to.
type Env struct {
	engine *Engine
	self   int
}

// Self returns the peer index the callback runs on (−1 for engine-level
// contexts).
func (e *Env) Self() int { return e.self }

// Round returns the current round number.
func (e *Env) Round() int { return e.engine.round }

// N returns the population size.
func (e *Env) N() int { return len(e.engine.nodes) }

// RNG returns the engine's deterministic random source.
func (e *Env) RNG() *rand.Rand { return e.engine.rng }

// Online reports whether the given peer is currently online.
func (e *Env) Online(id int) bool { return e.engine.pop.Online(id) }

// OnlineCount returns the number of online peers.
func (e *Env) OnlineCount() int { return e.engine.pop.OnlineCount() }

// Metrics returns the engine's metric registry.
func (e *Env) Metrics() *metrics.Registry { return e.engine.reg }

// Send queues a message from the calling peer for delivery next round.
func (e *Env) Send(to int, payload any, bytes int) {
	e.engine.send(e.self, to, payload, bytes)
}

// Engine drives a population of nodes through synchronous rounds.
type Engine struct {
	nodes   []Node
	pop     *churn.Population
	rng     *rand.Rand
	reg     *metrics.Registry
	tracer  *trace.Recorder // nil Recorder records nothing
	round   int
	pending []Message // messages awaiting delivery at their DeliverAt round
	due     []Message // reusable per-round delivery buffer
	outbox  []Message // messages produced this round
	loss    float64
	faults  *FaultPlane
	crashed []bool        // peers currently down from a FaultPlane crash
	proc    churn.Process // the availability process, for event scheduling
	started bool
}

// Config parameterises an Engine.
type Config struct {
	// Nodes are the protocol behaviours, one per peer.
	Nodes []Node
	// InitialOnline is the number of peers online at round 0 (peers
	// 0..InitialOnline−1).
	InitialOnline int
	// Churn is the availability process. Nil means churn.Static.
	Churn churn.Process
	// Seed seeds the engine's random source.
	Seed int64
	// MessageLoss is an independent per-message drop probability, used by
	// the failure-injection tests. Zero disables loss. The FaultPlane
	// subsumes it with per-edge control; both compose when set.
	MessageLoss float64
	// Faults, if non-nil, injects per-edge loss, delay, reordering,
	// scheduled partitions, and crash/restart events. A plane belongs to
	// exactly one engine.
	Faults *FaultPlane
	// Metrics receives the engine counters. Nil allocates a fresh registry.
	Metrics *metrics.Registry
	// Trace, if non-nil, records per-event telemetry (sends, deliveries,
	// drops, availability transitions).
	Trace *trace.Recorder
}

// NewEngine constructs an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("simnet: no nodes")
	}
	if cfg.MessageLoss < 0 || cfg.MessageLoss > 1 {
		return nil, fmt.Errorf("simnet: message loss %g out of [0,1]", cfg.MessageLoss)
	}
	proc := cfg.Churn
	if proc == nil {
		proc = churn.Static{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.seal(len(cfg.Nodes)); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop, err := churn.NewPopulation(len(cfg.Nodes), cfg.InitialOnline, proc, rng)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	return &Engine{
		nodes:   cfg.Nodes,
		pop:     pop,
		rng:     rng,
		reg:     reg,
		tracer:  cfg.Trace,
		loss:    cfg.MessageLoss,
		faults:  cfg.Faults,
		crashed: make([]bool, len(cfg.Nodes)),
		proc:    proc,
	}, nil
}

// Round returns the current round number.
func (en *Engine) Round() int { return en.round }

// Metrics returns the engine's registry.
func (en *Engine) Metrics() *metrics.Registry { return en.reg }

// Population exposes the availability state (read-mostly; tests also force
// states through it).
func (en *Engine) Population() *churn.Population { return en.pop }

// Node returns the behaviour attached to peer id.
func (en *Engine) Node(id int) Node { return en.nodes[id] }

// InFlight returns the number of messages queued for future delivery.
func (en *Engine) InFlight() int { return len(en.pending) + len(en.outbox) }

// Crashed reports whether peer id is currently down from a FaultPlane crash.
func (en *Engine) Crashed(id int) bool { return en.crashed[id] }

func (en *Engine) send(from, to int, payload any, bytes int) {
	en.reg.Inc(MetricMessages)
	en.reg.Add(MetricBytes, float64(bytes))
	en.tracer.Record(trace.Event{
		Round: en.round, Kind: trace.KindSend, From: from, To: to,
		Note: fmt.Sprintf("%T %dB", payload, bytes),
	})
	if en.loss > 0 && en.rng.Float64() < en.loss {
		en.reg.Inc(MetricMessagesDropped)
		en.tracer.Record(trace.Event{
			Round: en.round, Kind: trace.KindDrop, From: from, To: to,
		})
		return
	}
	delay, reorder := 0, false
	if en.faults != nil {
		if en.faults.severed(from, to, en.round) {
			en.reg.Inc(MetricMessagesDropped)
			en.tracer.Record(trace.Event{
				Round: en.round, Kind: trace.KindDrop, From: from, To: to,
				Note: "partition",
			})
			return
		}
		if f, ok := en.faults.edgeFault(from, to); ok {
			if f.Drop > 0 && en.rng.Float64() < f.Drop {
				en.reg.Inc(MetricMessagesDropped)
				en.tracer.Record(trace.Event{
					Round: en.round, Kind: trace.KindDrop, From: from, To: to,
					Note: "edge",
				})
				return
			}
			delay = f.Delay
			if f.Jitter > 0 {
				delay += en.rng.Intn(f.Jitter + 1)
			}
			reorder = f.Reorder
		}
	}
	en.outbox = append(en.outbox, Message{
		From: from, To: to, SentAt: en.round, DeliverAt: en.round + 1 + delay,
		Payload: payload, Bytes: bytes, reorder: reorder,
	})
}

func (en *Engine) env(self int) *Env { return &Env{engine: en, self: self} }

// SetMessageLoss adjusts the loss probability mid-run (failure injection).
func (en *Engine) SetMessageLoss(p float64) { en.loss = p }

// Step executes one round and returns the number of messages delivered.
//
// Ordering within a round: churn (except before round 0) → fault-plane
// crash/restart events → CameOnline callbacks → message delivery → Tick for
// every online node. Messages sent during the round are delivered next round,
// or later when the fault plane injects delay.
func (en *Engine) Step() int {
	var came []int
	if !en.started {
		en.started = true
		for i, n := range en.nodes {
			n.Init(en.env(i))
		}
	} else {
		en.round++
		came = en.pop.Step(en.round)
	}
	came = en.applyFaultEvents(came)
	for _, id := range came {
		en.tracer.Record(trace.Event{
			Round: en.round, Kind: trace.KindWentOnline, From: id, To: -1,
		})
		en.nodes[id].CameOnline(en.env(id))
	}

	// Deliver the messages due this round, preserving send order except
	// where the fault plane reorders.
	due := en.due[:0]
	rest := en.pending[:0]
	for _, msg := range en.pending {
		if msg.DeliverAt <= en.round {
			due = append(due, msg)
		} else {
			rest = append(rest, msg)
		}
	}
	en.pending = rest
	en.reorderDue(due)
	delivered := 0
	for _, msg := range due {
		if !en.pop.Online(msg.To) {
			en.reg.Inc(MetricMessagesOffline)
			en.tracer.Record(trace.Event{
				Round: en.round, Kind: trace.KindOffline, From: msg.From, To: msg.To,
			})
			continue
		}
		en.tracer.Record(trace.Event{
			Round: en.round, Kind: trace.KindDeliver, From: msg.From, To: msg.To,
		})
		en.nodes[msg.To].HandleMessage(en.env(msg.To), msg)
		delivered++
	}
	en.due = due[:0]

	// Tick online nodes.
	for i, n := range en.nodes {
		if en.pop.Online(i) {
			n.Tick(en.env(i))
		}
	}

	// Queue this round's sends for future delivery.
	en.pending = append(en.pending, en.outbox...)
	en.outbox = en.outbox[:0]
	return delivered
}

// applyFaultEvents processes the fault plane's crash/restart schedule for the
// current round and enforces that crashed peers stay offline no matter what
// the churn process decided. It returns the came-online list with crashed
// peers removed and restarted peers added.
func (en *Engine) applyFaultEvents(came []int) []int {
	if en.faults == nil {
		return came
	}
	// Restarts first: a peer whose restart and (next) crash share a round
	// goes down, not up.
	for _, ev := range en.faults.crashes {
		if ev.RestartAt == en.round && en.crashed[ev.Peer] {
			en.crashed[ev.Peer] = false
			if rn, ok := en.nodes[ev.Peer].(Restartable); ok {
				rn.Restart(en.env(ev.Peer))
			}
			// The came-online loop records the KindWentOnline event; the
			// crash's KindWentOffline("crash") already marks the window.
			if !en.pop.Online(ev.Peer) {
				en.pop.SetOnline(ev.Peer, true)
				came = append(came, ev.Peer)
			}
		}
	}
	for _, ev := range en.faults.crashes {
		if ev.At == en.round && !en.crashed[ev.Peer] {
			en.crashed[ev.Peer] = true
			if rn, ok := en.nodes[ev.Peer].(Restartable); ok {
				rn.Crash(en.env(ev.Peer))
			}
			en.tracer.Record(trace.Event{
				Round: en.round, Kind: trace.KindWentOffline, From: ev.Peer, To: -1,
				Note: "crash",
			})
		}
	}
	// Crash wins over churn revival until the scheduled restart.
	kept := came[:0]
	for _, id := range came {
		if en.crashed[id] {
			continue
		}
		kept = append(kept, id)
	}
	for peer, down := range en.crashed {
		if down && en.pop.Online(peer) {
			en.pop.SetOnline(peer, false)
		}
	}
	return kept
}

// reorderDue shuffles the delivery positions of reorder-marked messages among
// themselves; unmarked messages keep their send order.
func (en *Engine) reorderDue(due []Message) {
	if en.faults == nil {
		return
	}
	marked := make([]int, 0, 8)
	for i, msg := range due {
		if msg.reorder {
			marked = append(marked, i)
		}
	}
	if len(marked) < 2 {
		return
	}
	en.rng.Shuffle(len(marked), func(a, b int) {
		due[marked[a]], due[marked[b]] = due[marked[b]], due[marked[a]]
	})
}

// Run executes up to maxRounds rounds, stopping early when the network goes
// idle (no messages in flight for two consecutive rounds) with no fault-plane
// or churn-schedule events still scheduled. It returns the number of rounds
// executed.
func (en *Engine) Run(maxRounds int) int {
	idle := 0
	executed := 0
	for executed < maxRounds {
		delivered := en.Step()
		executed++
		if delivered == 0 && en.InFlight() == 0 && !en.pendingFaultEvents() {
			idle++
			if idle >= 2 {
				break
			}
		} else {
			idle = 0
		}
	}
	return executed
}

// pendingFaultEvents reports whether the fault plane or the availability
// process still has scheduled interventions after the current round.
func (en *Engine) pendingFaultEvents() bool {
	if en.faults != nil && en.faults.LastEventRound() > en.round {
		return true
	}
	if es, ok := en.proc.(churn.EventSource); ok && es.LastEventRound() > en.round {
		return true
	}
	return false
}

// NewTestEnv returns an Env bound to the engine for out-of-band calls, such
// as injecting an update at a peer from a test or an experiment harness.
// Messages sent through it follow normal next-round delivery.
func NewTestEnv(en *Engine, self int) *Env { return en.env(self) }
