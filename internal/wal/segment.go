package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/p2pgossip/update/internal/wire"
)

// Segment file framing constants.
const (
	// headerSize is the length of the per-segment magic header.
	headerSize = 8
	// recordHeaderSize is the length + crc prefix of every record.
	recordHeaderSize = 8
	// minRecordBytes is the smallest useful record (header + 1-byte body);
	// Open rejects segment size limits that could not hold one.
	minRecordBytes = recordHeaderSize + 1
	// segmentVersion is the on-disk format version byte in the header.
	segmentVersion = 1
)

// segmentMagic identifies a pushpull WAL segment.
var segmentMagic = []byte{'P', 'P', 'W', 'A', 'L'}

// segmentHeader returns the 8-byte header every segment starts with:
// 5 magic bytes, a format version, two reserved zero bytes.
func segmentHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, segmentMagic)
	h[len(segmentMagic)] = segmentVersion
	return h
}

// segmentPath names segment idx inside dir.
func segmentPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", idx))
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var idxs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
		if err != nil || idx == 0 {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// putU32 writes x big-endian into b[:4].
func putU32(b []byte, x uint32) { binary.BigEndian.PutUint32(b, x) }

// scanResult is what scanSegment found.
type scanResult struct {
	// fileSize is the raw on-disk size.
	fileSize int64
	// validLen is the offset just past the last checksum-valid record (or
	// past the header when no record is valid; zero when the header itself
	// is damaged).
	validLen int64
	// records is the number of checksum-valid records.
	records int
	// damage describes why scanning stopped before fileSize; empty means
	// the segment is clean to the end.
	damage string
}

// scanSegment walks a segment's records, validating framing and checksums,
// and reports the last valid boundary. It never modifies the file.
func scanSegment(path string) (scanResult, error) {
	var res scanResult
	f, err := os.Open(path)
	if err != nil {
		return res, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return res, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	res.fileSize = fi.Size()
	br := bufio.NewReaderSize(f, 64<<10)
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			res.damage = "short header"
			return res, nil
		}
		return res, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	if !bytes.Equal(hdr, segmentHeader()) {
		res.damage = "bad header magic"
		return res, nil
	}
	res.validLen = headerSize
	var pre [recordHeaderSize]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			if err == io.EOF {
				return res, nil // clean end on a record boundary
			}
			if err == io.ErrUnexpectedEOF {
				res.damage = "torn record header"
				return res, nil
			}
			return res, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		n := binary.BigEndian.Uint32(pre[0:4])
		crc := binary.BigEndian.Uint32(pre[4:8])
		if n == 0 || n > MaxRecordBytes {
			res.damage = fmt.Sprintf("implausible record length %d", n)
			return res, nil
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.damage = "torn record body"
				return res, nil
			}
			return res, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if crc32.Checksum(body, crcTable) != crc {
			res.damage = "crc mismatch"
			return res, nil
		}
		res.validLen += recordHeaderSize + int64(n)
		res.records++
	}
}

// replaySegment streams the records of one segment up to limit (the replay
// horizon frozen at Open), decoding bodies and invoking fn. The records
// were checksum-validated by scanSegment; a framing or checksum failure
// here means the file changed under us and is an error, not salvage.
func replaySegment(path string, limit int64, st *ReplayStats, fn func(Record) error) error {
	if limit <= headerSize {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: replay opening %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(io.NewSectionReader(f, headerSize, limit-headerSize), 64<<10)
	var pre [recordHeaderSize]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: replay %s: %w", path, err)
		}
		n := binary.BigEndian.Uint32(pre[0:4])
		crc := binary.BigEndian.Uint32(pre[4:8])
		if n == 0 || n > MaxRecordBytes {
			return fmt.Errorf("wal: replay %s: implausible record length %d inside validated region", path, n)
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return fmt.Errorf("wal: replay %s: %w", path, err)
		}
		if crc32.Checksum(body, crcTable) != crc {
			return fmt.Errorf("wal: replay %s: checksum mismatch inside validated region", path)
		}
		rec, ok := decodeRecord(body)
		if !ok {
			st.Skipped++
			continue
		}
		st.Records++
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// decodeRecord parses a checksum-valid record body. ok is false when the
// kind is unknown or the payload does not decode — the record is skipped,
// never delivered half-parsed.
func decodeRecord(body []byte) (Record, bool) {
	kind := RecordKind(body[0])
	payload := body[1:]
	switch kind {
	case RecordUpdate:
		u, err := wire.DecodeStoreUpdate(payload)
		if err != nil {
			return Record{}, false
		}
		return Record{Kind: RecordUpdate, Update: u}, true
	case RecordFrontier:
		c, err := wire.DecodeClock(payload)
		if err != nil {
			return Record{}, false
		}
		return Record{Kind: RecordFrontier, Frontier: c}, true
	default:
		return Record{}, false
	}
}
