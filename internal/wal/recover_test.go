package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/p2pgossip/update/internal/wire"
)

// buildLog writes n records into a fresh single-segment log and returns the
// segment path. The log is closed cleanly; tests then damage the file.
func buildLog(t *testing.T, dir string, n int) string {
	t.Helper()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	appendN(t, l, 0, n)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return segmentPath(dir, 1)
}

// recordOffsets parses a clean segment and returns the starting offset of
// every record (and the end offset as the final element).
func recordOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	offs := []int64{headerSize}
	off := int64(headerSize)
	for off < int64(len(data)) {
		n := binary.BigEndian.Uint32(data[off : off+4])
		off += recordHeaderSize + int64(n)
		offs = append(offs, off)
	}
	return offs
}

// truncateAt shortens the file to size bytes.
func truncateAt(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatalf("Truncate(%d): %v", size, err)
	}
}

// flipByte XORs the byte at off.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

// appendRaw appends raw bytes to the file (crash garbage, duplicated
// records, hand-built frames).
func appendRaw(t *testing.T, path string, raw []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if _, err := f.Write(raw); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

// frameRecord builds a correctly framed record from a body.
func frameRecord(body []byte) []byte {
	out := make([]byte, recordHeaderSize+len(body))
	putU32(out[0:4], uint32(len(body)))
	putU32(out[4:8], crc32.Checksum(body, crcTable))
	copy(out[recordHeaderSize:], body)
	return out
}

// TestRecoverCrashPoints drives the torn-write/corruption matrix: each case
// damages a clean 5-record segment at a chosen byte and asserts how many
// records survive recovery. Recovery must never error on tail damage —
// that is the expected crash artifact — and must drop everything from the
// first bad record onward (fsync ordering means no later record was ever
// acknowledged durable).
func TestRecoverCrashPoints(t *testing.T) {
	const n = 5
	cases := []struct {
		name    string
		damage  func(t *testing.T, path string, offs []int64)
		want    int   // records recovered
		minTrim int64 // minimum TruncatedBytes reported
	}{
		{
			name:   "clean",
			damage: func(t *testing.T, path string, offs []int64) {},
			want:   n,
		},
		{
			name: "torn-record-body",
			damage: func(t *testing.T, path string, offs []int64) {
				truncateAt(t, path, offs[n]-3)
			},
			want:    n - 1,
			minTrim: 1,
		},
		{
			name: "torn-record-header",
			damage: func(t *testing.T, path string, offs []int64) {
				truncateAt(t, path, offs[n-1]+4)
			},
			want:    n - 1,
			minTrim: 1,
		},
		{
			name: "corrupt-last-crc",
			damage: func(t *testing.T, path string, offs []int64) {
				flipByte(t, path, offs[n-1]+recordHeaderSize) // first body byte
			},
			want:    n - 1,
			minTrim: 1,
		},
		{
			name: "corrupt-mid-record",
			damage: func(t *testing.T, path string, offs []int64) {
				flipByte(t, path, offs[1]+recordHeaderSize+2)
			},
			want:    1, // records after the bad one were never acked durable
			minTrim: 1,
		},
		{
			name: "implausible-length",
			damage: func(t *testing.T, path string, offs []int64) {
				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatalf("OpenFile: %v", err)
				}
				defer f.Close()
				var huge [4]byte
				binary.BigEndian.PutUint32(huge[:], 0xffffffff)
				if _, err := f.WriteAt(huge[:], offs[n-1]); err != nil {
					t.Fatalf("WriteAt: %v", err)
				}
			},
			want:    n - 1,
			minTrim: 1,
		},
		{
			name: "garbage-tail",
			damage: func(t *testing.T, path string, offs []int64) {
				appendRaw(t, path, []byte("\x00\x00\x00\x0bnot a frame"))
			},
			want:    n,
			minTrim: 1,
		},
		{
			name: "torn-segment-header",
			damage: func(t *testing.T, path string, offs []int64) {
				truncateAt(t, path, 3)
			},
			want:    0,
			minTrim: 1,
		},
		{
			name: "empty-file",
			damage: func(t *testing.T, path string, offs []int64) {
				truncateAt(t, path, 0)
			},
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := buildLog(t, dir, n)
			offs := recordOffsets(t, path)
			tc.damage(t, path, offs)

			l := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
			recs, st := replayAll(t, l)
			if len(recs) != tc.want {
				t.Fatalf("recovered %d records, want %d (stats %+v, open %+v)",
					len(recs), tc.want, st, l.Stats())
			}
			for i, r := range recs {
				if !reflect.DeepEqual(r.Update, testUpdate(i)) {
					t.Fatalf("recovered record %d = %+v, want testUpdate(%d)", i, r.Update, i)
				}
			}
			if got := l.Stats().TruncatedBytes; got < tc.minTrim {
				t.Fatalf("TruncatedBytes = %d, want >= %d", got, tc.minTrim)
			}
			// The log must accept appends after recovery, and a second
			// recovery must see old + new records: truncation repaired the
			// file, not just skipped the damage.
			if err := l.Append(testUpdate(100)); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l2 := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
			defer l2.Close()
			recs2, _ := replayAll(t, l2)
			if len(recs2) != tc.want+1 {
				t.Fatalf("second recovery saw %d records, want %d", len(recs2), tc.want+1)
			}
			if got := l2.Stats().TruncatedBytes; got != 0 {
				t.Fatalf("second recovery still truncating (%d bytes); repair was not persisted", got)
			}
		})
	}
}

// TestRecoverDuplicateRecords replays byte-identical duplicated records —
// a crash between apply and ack can legitimately log twice — and asserts
// both copies are delivered (dedup is the store's job; Apply is
// idempotent per (origin, seq)).
func TestRecoverDuplicateRecords(t *testing.T) {
	dir := t.TempDir()
	path := buildLog(t, dir, 3)
	offs := recordOffsets(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	appendRaw(t, path, data[offs[2]:offs[3]]) // duplicate the last record verbatim

	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	defer l.Close()
	recs, _ := replayAll(t, l)
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4 (duplicate included)", len(recs))
	}
	if !reflect.DeepEqual(recs[2].Update, recs[3].Update) {
		t.Fatalf("duplicate record diverged: %+v vs %+v", recs[2].Update, recs[3].Update)
	}
}

// TestRecoverUnknownKindSkipped: a checksum-valid record with an unknown
// kind (a future format, or checksum-colliding garbage) is skipped and
// counted, never delivered and never fatal.
func TestRecoverUnknownKindSkipped(t *testing.T) {
	dir := t.TempDir()
	path := buildLog(t, dir, 2)
	appendRaw(t, path, frameRecord([]byte{0x7f, 1, 2, 3}))

	cm := &countingMetrics{}
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever, Metrics: cm})
	defer l.Close()
	recs, st := replayAll(t, l)
	if len(recs) != 2 || st.Skipped != 1 {
		t.Fatalf("recovered %d records, skipped %d; want 2 and 1", len(recs), st.Skipped)
	}
	if cm.get(MetricRecoverSkippedRecords) != 1 {
		t.Fatalf("skipped-records counter = %v, want 1", cm.get(MetricRecoverSkippedRecords))
	}
}

// TestRecoverUndecodableBodySkipped: checksum-valid but semantically
// broken update bodies (stray trailing bytes) are skipped, not replayed.
func TestRecoverUndecodableBodySkipped(t *testing.T) {
	dir := t.TempDir()
	path := buildLog(t, dir, 2)
	body := append([]byte{byte(RecordUpdate)}, wire.AppendStoreUpdate(nil, testUpdate(9))...)
	body = append(body, 0xde, 0xad) // stray bytes after a valid update
	appendRaw(t, path, frameRecord(body))

	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	defer l.Close()
	recs, st := replayAll(t, l)
	if len(recs) != 2 || st.Skipped != 1 {
		t.Fatalf("recovered %d records, skipped %d; want 2 and 1", len(recs), st.Skipped)
	}
}

// TestRecoverEmptySegments: header-only segments anywhere in the sequence
// are valid and contribute nothing.
func TestRecoverEmptySegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	appendN(t, l, 0, 20)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	max := idxs[len(idxs)-1]
	// A sealed header-only segment (a rotation that never took appends).
	if err := os.WriteFile(segmentPath(dir, max+1), segmentHeader(), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// A zero-length trailing segment, as left by a crash inside segment
	// creation before the header hit disk.
	if err := os.WriteFile(segmentPath(dir, max+2), nil, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	appendN(t, l2, 20, 3) // new appends land past the empty segments
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l3 := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	defer l3.Close()
	recs, _ := replayAll(t, l3)
	if len(recs) != 23 {
		t.Fatalf("recovered %d records with empty segments present, want 23", len(recs))
	}
	for i, r := range recs {
		if !reflect.DeepEqual(r.Update, testUpdate(i)) {
			t.Fatalf("record %d out of order across empty segments", i)
		}
	}
}

// TestRecoverSealedDamageStrictVsSalvage: damage outside the tail segment
// is not a crash artifact (sealed segments are fsynced before a successor
// exists). Strict mode refuses to open; salvage mode keeps the valid
// prefix and counts the segment.
func TestRecoverSealedDamageStrictVsSalvage(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	appendN(t, l, 0, 40)
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("want multiple segments, got %d", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	firstOffs := recordOffsets(t, segmentPath(dir, 1))
	flipByte(t, segmentPath(dir, 1), firstOffs[1]+recordHeaderSize+1)

	if _, err := Open(Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256, Strict: true}); err == nil {
		t.Fatalf("Strict open accepted a damaged sealed segment")
	} else if !strings.Contains(err.Error(), "sealed segment") {
		t.Fatalf("Strict open error = %v, want sealed-segment mention", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	defer l2.Close()
	recs, _ := replayAll(t, l2)
	if len(recs) >= 40 || len(recs) < 1 {
		t.Fatalf("salvage recovered %d records, want a strict subset keeping the valid prefix", len(recs))
	}
	if !reflect.DeepEqual(recs[0].Update, testUpdate(0)) {
		t.Fatalf("salvaged prefix lost record 0: %+v", recs[0].Update)
	}
	if got := l2.Stats().SkippedSegments; got != 1 {
		t.Fatalf("SkippedSegments = %d, want 1", got)
	}
	// Ensure the damaged file itself was not modified: salvage is
	// read-only outside the tail.
	if _, err := os.Stat(filepath.Join(dir, "wal-00000001.seg")); err != nil {
		t.Fatalf("sealed segment removed by salvage: %v", err)
	}
}
