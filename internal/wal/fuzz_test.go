package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"reflect"
	"testing"

	"github.com/p2pgossip/update/internal/wire"
)

// oracleScan is an independent reimplementation of the recovery contract,
// used as the fuzz oracle: walk the segment bytes, stop at the first
// framing or checksum failure, decode what decodes, skip what does not.
// Replay must deliver exactly this sequence — in particular it must never
// deliver a record whose stored checksum does not match its body.
func oracleScan(data []byte) (recs []Record, skipped int) {
	want := segmentHeader()
	if len(data) < len(want) {
		return nil, 0
	}
	for i := range want {
		if data[i] != want[i] {
			return nil, 0
		}
	}
	off := headerSize
	for {
		if off+recordHeaderSize > len(data) {
			return recs, skipped
		}
		n := binary.BigEndian.Uint32(data[off : off+4])
		crc := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > MaxRecordBytes || off+recordHeaderSize+int(n) > len(data) {
			return recs, skipped
		}
		body := data[off+recordHeaderSize : off+recordHeaderSize+int(n)]
		if crc32.Checksum(body, crcTable) != crc {
			return recs, skipped
		}
		if rec, ok := decodeOracle(body); ok {
			recs = append(recs, rec)
		} else {
			skipped++
		}
		off += recordHeaderSize + int(n)
	}
}

// decodeOracle mirrors record decoding without sharing code with it.
func decodeOracle(body []byte) (Record, bool) {
	switch RecordKind(body[0]) {
	case RecordUpdate:
		u, err := wire.DecodeStoreUpdate(body[1:])
		if err != nil {
			return Record{}, false
		}
		return Record{Kind: RecordUpdate, Update: u}, true
	case RecordFrontier:
		c, err := wire.DecodeClock(body[1:])
		if err != nil {
			return Record{}, false
		}
		return Record{Kind: RecordFrontier, Frontier: c}, true
	default:
		return Record{}, false
	}
}

// FuzzWALRecover feeds arbitrary bytes to recovery as a lone tail segment.
// Recovery must never panic, must accept any tail damage (Open error is a
// bug for a single segment in salvage mode), must deliver exactly the
// oracle's record sequence — so no record failing its checksum is ever
// replayed — and must leave a log that accepts appends and recovers
// stably a second time.
func FuzzWALRecover(f *testing.F) {
	// Seed: a clean log, then truncations and bit flips at interesting
	// offsets.
	seedDir := f.TempDir()
	{
		l, err := Open(Options{Dir: seedDir, Policy: SyncNever})
		if err != nil {
			f.Fatalf("Open: %v", err)
		}
		for i := 0; i < 4; i++ {
			if err := l.Append(testUpdate(i)); err != nil {
				f.Fatalf("Append: %v", err)
			}
		}
		if err := l.AppendFrontier(map[string]uint64{"a": 3}); err != nil {
			f.Fatalf("AppendFrontier: %v", err)
		}
		if err := l.Close(); err != nil {
			f.Fatalf("Close: %v", err)
		}
	}
	clean, err := os.ReadFile(segmentPath(seedDir, 1))
	if err != nil {
		f.Fatalf("ReadFile: %v", err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add(clean[:headerSize+5])
	f.Add(clean[:3])
	f.Add([]byte{})
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), clean...), 0xff, 0x00, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		wantRecs, wantSkipped := oracleScan(data)

		l, err := Open(Options{Dir: dir, Policy: SyncNever})
		if err != nil {
			t.Fatalf("Open rejected tail damage: %v", err)
		}
		var got []Record
		st, err := l.Replay(func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if len(got) != len(wantRecs) || st.Skipped != wantSkipped {
			t.Fatalf("replayed %d records (skipped %d), oracle says %d (%d)",
				len(got), st.Skipped, len(wantRecs), wantSkipped)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], wantRecs[i]) {
				t.Fatalf("record %d = %+v, oracle %+v", i, got[i], wantRecs[i])
			}
		}

		// Recovery repaired the file: it must accept appends and recover
		// the same records plus the new one next time.
		if err := l.Append(testUpdate(999)); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, err := Open(Options{Dir: dir, Policy: SyncNever})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer l2.Close()
		n := 0
		st2, err := l2.Replay(func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if n != len(wantRecs)+1 || st2.Skipped != wantSkipped {
			t.Fatalf("second recovery saw %d records (skipped %d), want %d (%d)",
				n, st2.Skipped, len(wantRecs)+1, wantSkipped)
		}
		if l2.Stats().TruncatedBytes != 0 {
			t.Fatalf("second recovery truncated again (%d bytes): repair did not persist",
				l2.Stats().TruncatedBytes)
		}
	})
}
