// Package wal is the crash-consistency layer of the live runtime: a
// segmented, append-only write-ahead log for store updates and frontier
// adoptions.
//
// The paper's propagation guarantees assume replicas whose applied state
// survives failures; this package makes that true on real disks. Every
// record is framed as
//
//	len uint32 | crc uint32 | body
//
// with a CRC32-Castagnoli checksum over the body, and the body reuses the
// internal/wire binary codec (a logged update is the same bytes it
// travelled as). Records accumulate in numbered segment files
// (wal-00000001.seg, wal-00000002.seg, ...), each starting with an 8-byte
// magic header; a segment is sealed — fsynced, closed, never written again
// — before its successor is created, so only the newest segment can ever
// hold a torn tail.
//
// Durability is a policy, not a constant: SyncAlways fsyncs before every
// append acknowledges (group commit batches concurrent appenders under one
// fsync), SyncInterval fsyncs on a timer bounding the loss window, and
// SyncNever leaves flushing to the kernel. Whatever the policy, bytes are
// written to the kernel before an append returns, so state survives process
// kills under every policy; fsync only widens the crash types covered to
// power loss and kernel panics.
//
// Open scans existing segments, truncates a torn tail (short record, bad
// CRC, implausible length) at the last valid boundary, and freezes the
// replay horizon: Replay visits exactly the records that were valid at Open
// time, so appends racing recovery are never replayed into themselves.
// Checkpoint bounds the log: it seals the active segment, writes an
// application snapshot atomically next to the segments, and prunes every
// segment older than the seal — recovery is then snapshot + surviving
// segments.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

// The fsync policies, cheapest guarantee last.
const (
	// SyncAlways fsyncs before every Append returns. Concurrent appenders
	// are group-committed: one fsync covers every record written before it
	// started, so the per-append cost amortizes under load.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.Interval), bounding the
	// post-crash loss window to at most one interval of acknowledged
	// writes. Appends return as soon as the kernel has the bytes.
	SyncInterval
	// SyncNever never fsyncs during appends; sealing and Close still sync.
	// State survives process kills (the page cache persists) but not power
	// loss.
	SyncNever
)

// String names the policy the way the -fsync daemon flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the -fsync flag spellings to policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Metrics is the counter sink the log reports to; it matches the live
// adapter's metrics interface so one registry serves both.
type Metrics interface {
	// Inc adds one to the named counter.
	Inc(name string)
	// Add adds delta to the named counter.
	Add(name string, delta float64)
}

// The wal.* counter names. Everything is monotonic.
const (
	// MetricAppends counts records appended.
	MetricAppends = "wal.appends"
	// MetricAppendBytes counts bytes appended (framing included).
	MetricAppendBytes = "wal.append_bytes"
	// MetricAppendErrors counts appends that failed; after the first the
	// log is wedged and every later append fails fast.
	MetricAppendErrors = "wal.append_errors"
	// MetricFsyncs counts fsync calls; appends ÷ fsyncs is the group-commit
	// batching factor under SyncAlways.
	MetricFsyncs = "wal.fsyncs"
	// MetricRotations counts segment seals.
	MetricRotations = "wal.rotations"
	// MetricCheckpoints counts completed checkpoints.
	MetricCheckpoints = "wal.checkpoints"
	// MetricCheckpointErrors counts failed checkpoints.
	MetricCheckpointErrors = "wal.checkpoint_errors"
	// MetricSegmentsPruned counts segments deleted by checkpoints.
	MetricSegmentsPruned = "wal.segments_pruned"
	// MetricReplayed counts recovery records that grew the store
	// (reported by the live adapter during RecoverWAL).
	MetricReplayed = "wal.replayed"
	// MetricReplayDuplicates counts recovery records the store already
	// covered (reported by the live adapter during RecoverWAL).
	MetricReplayDuplicates = "wal.replay_duplicates"
	// MetricRecoverTruncatedBytes counts torn-tail bytes dropped at Open.
	MetricRecoverTruncatedBytes = "wal.recover_truncated_bytes"
	// MetricRecoverSkippedSegments counts damaged non-tail segments whose
	// suffix was skipped at Open (salvage mode; Strict refuses instead).
	MetricRecoverSkippedSegments = "wal.recover_skipped_segments"
	// MetricRecoverSkippedRecords counts checksum-valid records whose body
	// failed to decode during Replay and were skipped.
	MetricRecoverSkippedRecords = "wal.recover_skipped_records"
)

// CounterNames lists every counter the log reports, for registry
// preregistration and the documentation drift guard.
var CounterNames = []string{
	MetricAppends,
	MetricAppendBytes,
	MetricAppendErrors,
	MetricFsyncs,
	MetricRotations,
	MetricCheckpoints,
	MetricCheckpointErrors,
	MetricSegmentsPruned,
	MetricReplayed,
	MetricReplayDuplicates,
	MetricRecoverTruncatedBytes,
	MetricRecoverSkippedSegments,
	MetricRecoverSkippedRecords,
}

// Defaults for zero Options fields.
const (
	// DefaultSyncInterval is the SyncInterval flush cadence when
	// Options.Interval is zero.
	DefaultSyncInterval = 5 * time.Millisecond
	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 8 << 20
	// MaxRecordBytes bounds a single record body; a length prefix above it
	// is treated as tail damage, not an allocation request.
	MaxRecordBytes = 64 << 20
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// crcTable is the Castagnoli table shared by append and recovery.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Dir is the directory holding segments and the checkpoint snapshot.
	// It is created if missing. Required.
	Dir string
	// Policy selects the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval flush cadence; zero means
	// DefaultSyncInterval.
	Interval time.Duration
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one started; zero means DefaultSegmentBytes.
	SegmentBytes int64
	// Strict makes Open refuse a log with damage outside the tail of the
	// newest segment (which is always truncated — that is the expected
	// crash artifact). Without Strict such damage is salvaged: the valid
	// prefix of a damaged sealed segment replays, the rest is skipped and
	// counted.
	Strict bool
	// Metrics receives the wal.* counters; nil discards them.
	Metrics Metrics
}

// OpenStats reports what Open found on disk.
type OpenStats struct {
	// Segments is the number of segment files present after recovery.
	Segments int
	// Records is the number of checksum-valid records found.
	Records int
	// TruncatedBytes is how many torn-tail bytes were dropped.
	TruncatedBytes int64
	// SkippedSegments is how many damaged sealed segments were salvaged
	// (valid prefix kept, suffix skipped). Always zero under Strict.
	SkippedSegments int
}

// ReplayStats reports what Replay visited.
type ReplayStats struct {
	// Records is the number of records delivered to the callback.
	Records int
	// Skipped is the number of checksum-valid records whose body failed to
	// decode and were skipped.
	Skipped int
}

// RecordKind discriminates WAL record bodies.
type RecordKind byte

// The record kinds.
const (
	// RecordUpdate is a store update (wire.AppendStoreUpdate body).
	RecordUpdate RecordKind = 1
	// RecordFrontier is an adopted compaction frontier (wire.AppendClock
	// body), logged when a snapshot catch-up moves the clock wholesale.
	RecordFrontier RecordKind = 2
)

// Record is one replayed WAL entry. Kind selects which payload field is
// meaningful.
type Record struct {
	// Kind discriminates the payload.
	Kind RecordKind
	// Update is the logged update for RecordUpdate.
	Update store.Update
	// Frontier is the adopted clock for RecordFrontier.
	Frontier version.Clock
}

// replaySeg freezes a segment's replay horizon at Open time: Replay reads
// idx only up to limit, so records appended after Open are invisible to it.
type replaySeg struct {
	idx   uint64
	limit int64
}

// sealedSeg is a sealed segment and the byte size Size() accounts for it.
type sealedSeg struct {
	idx  uint64
	size int64
}

// Log is a write-ahead log over one directory. All methods are safe for
// concurrent use.
type Log struct {
	dir      string
	policy   SyncPolicy
	interval time.Duration
	segBytes int64
	metrics  Metrics
	stats    OpenStats

	replaySegs []replaySeg

	// failed latches the first unrecoverable I/O error; once set, every
	// append fails fast with it. Stored as error via atomic.Value.
	failed atomic.Value

	// closed flips once in Close; read lock-free by sync waiters.
	closed atomic.Bool

	// mu guards the append state: the active file, sizes, sequence
	// numbers, and the sealed-segment list.
	mu      sync.Mutex
	f       *os.File
	segIdx  uint64
	segSize int64
	total   int64
	sealed  []sealedSeg // ascending by index
	seq     uint64      // records appended this process
	scratch []byte

	// fsyncMu serializes fsync against sealing: a sealer syncs and closes
	// the outgoing file under it, so a group-commit syncer that loses the
	// race observes ErrClosed and knows its records are already durable.
	fsyncMu sync.Mutex

	// sm guards the group-commit state.
	sm        sync.Mutex
	syncCond  *sync.Cond
	syncedSeq uint64
	syncing   bool

	stopInterval chan struct{}
	intervalDone chan struct{}
}

// Open creates or recovers the log in o.Dir. Existing segments are scanned
// record by record; a torn tail on the newest segment is truncated at the
// last valid record boundary, and damage anywhere else either fails Open
// (Strict) or is salvaged with the damage counted. The returned log is
// ready for Append; call Replay first when recovering state.
func Open(o Options) (*Log, error) {
	if o.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if o.Interval <= 0 {
		o.Interval = DefaultSyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SegmentBytes < headerSize+minRecordBytes {
		return nil, fmt.Errorf("wal: SegmentBytes %d is below the %d-byte minimum", o.SegmentBytes, headerSize+minRecordBytes)
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", o.Dir, err)
	}
	l := &Log{
		dir:      o.Dir,
		policy:   o.Policy,
		interval: o.Interval,
		segBytes: o.SegmentBytes,
		metrics:  o.Metrics,
	}
	l.syncCond = sync.NewCond(&l.sm)
	idxs, err := listSegments(o.Dir)
	if err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		if err := l.startSegment(1); err != nil {
			return nil, err
		}
	} else if err := l.recoverSegments(idxs, o.Strict); err != nil {
		return nil, err
	}
	l.stats.Segments = len(l.sealed) + 1
	if l.stats.TruncatedBytes > 0 {
		l.count(MetricRecoverTruncatedBytes, float64(l.stats.TruncatedBytes))
	}
	if l.stats.SkippedSegments > 0 {
		l.count(MetricRecoverSkippedSegments, float64(l.stats.SkippedSegments))
	}
	if l.policy == SyncInterval {
		l.stopInterval = make(chan struct{})
		l.intervalDone = make(chan struct{})
		go l.intervalLoop()
	}
	return l, nil
}

// recoverSegments scans the existing segment files in index order,
// truncates tail damage on the newest, and reopens it for append.
func (l *Log) recoverSegments(idxs []uint64, strict bool) error {
	for i, idx := range idxs {
		path := segmentPath(l.dir, idx)
		res, err := scanSegment(path)
		if err != nil {
			return err
		}
		last := i == len(idxs)-1
		if res.damage != "" && !last {
			if strict {
				return fmt.Errorf("wal: sealed segment %s: %s at offset %d", path, res.damage, res.validLen)
			}
			l.stats.SkippedSegments++
		}
		limit := res.validLen
		l.stats.Records += res.records
		if !last {
			l.replaySegs = append(l.replaySegs, replaySeg{idx: idx, limit: limit})
			l.sealed = append(l.sealed, sealedSeg{idx: idx, size: limit})
			l.total += limit
			continue
		}
		if res.damage != "" {
			l.stats.TruncatedBytes += res.fileSize - limit
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("wal: reopening %s: %w", path, err)
		}
		if limit < headerSize {
			// The header itself is damaged: nothing in this segment is
			// recoverable, so rebuild it empty.
			limit = 0
		}
		if limit != res.fileSize {
			if err := f.Truncate(limit); err != nil {
				f.Close()
				return fmt.Errorf("wal: truncating %s to %d: %w", path, limit, err)
			}
		}
		if limit == 0 {
			if _, err := f.Write(segmentHeader()); err != nil {
				f.Close()
				return fmt.Errorf("wal: rewriting header of %s: %w", path, err)
			}
			limit = headerSize
		} else if _, err := f.Seek(limit, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("wal: seeking %s: %w", path, err)
		}
		if res.damage != "" && l.policy != SyncNever {
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("wal: syncing truncation of %s: %w", path, err)
			}
		}
		l.replaySegs = append(l.replaySegs, replaySeg{idx: idx, limit: limit})
		l.f = f
		l.segIdx = idx
		l.segSize = limit
		l.total += limit
	}
	return nil
}

// Append logs one store update. The record is written to the kernel before
// Append returns; under SyncAlways it is also fsynced (group-committed with
// concurrent appenders) first. An I/O error wedges the log: the error is
// latched and every subsequent append returns it.
func (l *Log) Append(u store.Update) error {
	return l.appendRecord(func(dst []byte) []byte {
		dst = append(dst, byte(RecordUpdate))
		return wire.AppendStoreUpdate(dst, u)
	})
}

// AppendFrontier logs a wholesale frontier adoption (snapshot catch-up), so
// recovery can restore the compaction watermark a snapshot installed.
func (l *Log) AppendFrontier(c version.Clock) error {
	return l.appendRecord(func(dst []byte) []byte {
		dst = append(dst, byte(RecordFrontier))
		return wire.AppendClock(dst, c)
	})
}

// appendRecord frames, writes, and (policy permitting) syncs one record
// whose body mk appends to dst.
func (l *Log) appendRecord(mk func(dst []byte) []byte) error {
	if err := l.loadFailed(); err != nil {
		l.inc(MetricAppendErrors)
		return err
	}
	l.mu.Lock()
	if l.closed.Load() {
		l.mu.Unlock()
		return ErrClosed
	}
	b := append(l.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	b = mk(b)
	body := b[recordHeaderSize:]
	l.scratch = b
	if len(body) > MaxRecordBytes {
		l.mu.Unlock()
		l.inc(MetricAppendErrors)
		return fmt.Errorf("wal: record body %d bytes exceeds MaxRecordBytes", len(body))
	}
	putU32(b[0:4], uint32(len(body)))
	putU32(b[4:8], crc32.Checksum(body, crcTable))
	if l.segSize+int64(len(b)) > l.segBytes && l.segSize > headerSize {
		if err := l.sealLocked(); err != nil {
			l.mu.Unlock()
			l.fail(err)
			l.inc(MetricAppendErrors)
			return err
		}
	}
	if _, err := l.f.Write(b); err != nil {
		l.mu.Unlock()
		l.fail(err)
		l.inc(MetricAppendErrors)
		return fmt.Errorf("wal: append: %w", err)
	}
	n := int64(len(b))
	l.segSize += n
	l.total += n
	l.seq++
	seq := l.seq
	l.mu.Unlock()
	l.inc(MetricAppends)
	l.count(MetricAppendBytes, float64(n))
	if l.policy == SyncAlways {
		return l.waitSynced(seq)
	}
	return nil
}

// Sync forces the active segment to stable storage, returning once every
// record appended before the call is durable. Under SyncNever, records in
// segments sealed earlier may still be unsynced.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return l.waitSynced(seq)
}

// waitSynced blocks until syncedSeq covers seq, electing itself the syncer
// when nobody else is mid-fsync. This is the group commit: one fsync
// covers every record appended before it started, and the waiters all
// observe the advanced syncedSeq.
func (l *Log) waitSynced(seq uint64) error {
	l.sm.Lock()
	for {
		if l.syncedSeq >= seq {
			l.sm.Unlock()
			return nil
		}
		if err := l.loadFailed(); err != nil {
			l.sm.Unlock()
			return err
		}
		if l.closed.Load() {
			// Close syncs everything; if we are here with closed set and
			// syncedSeq behind, Close's final sync failed.
			l.sm.Unlock()
			return ErrClosed
		}
		if !l.syncing {
			l.syncing = true
			l.sm.Unlock()
			err := l.syncOnce()
			l.sm.Lock()
			l.syncing = false
			l.syncCond.Broadcast()
			if err != nil {
				l.sm.Unlock()
				return err
			}
			continue
		}
		l.syncCond.Wait()
	}
}

// syncOnce fsyncs the active segment and advances syncedSeq to cover every
// record appended before it started. A sealer racing us closes the file
// under fsyncMu after syncing it, so ErrClosed here means the records are
// already durable.
func (l *Log) syncOnce() error {
	l.mu.Lock()
	f := l.f
	seq := l.seq
	closed := l.closed.Load()
	l.mu.Unlock()
	if closed || f == nil {
		return nil
	}
	l.fsyncMu.Lock()
	err := f.Sync()
	l.fsyncMu.Unlock()
	if err != nil {
		if errors.Is(err, os.ErrClosed) {
			l.advanceSynced(seq)
			return nil
		}
		l.fail(err)
		return err
	}
	l.inc(MetricFsyncs)
	l.advanceSynced(seq)
	return nil
}

// advanceSynced raises the durable sequence watermark and wakes waiters.
func (l *Log) advanceSynced(seq uint64) {
	l.sm.Lock()
	if seq > l.syncedSeq {
		l.syncedSeq = seq
	}
	l.syncCond.Broadcast()
	l.sm.Unlock()
}

// intervalLoop is the SyncInterval flusher.
func (l *Log) intervalLoop() {
	t := time.NewTicker(l.interval)
	defer t.Stop()
	defer close(l.intervalDone)
	for {
		select {
		case <-t.C:
			if err := l.Sync(); err != nil {
				// The error is latched; appenders see it. Keep ticking so a
				// Close can still drain us.
				continue
			}
		case <-l.stopInterval:
			return
		}
	}
}

// sealLocked makes the active segment durable, closes it, and starts its
// successor. Callers hold l.mu. On error the log has no active segment and
// must be wedged by the caller.
func (l *Log) sealLocked() error {
	l.fsyncMu.Lock()
	var err error
	if l.policy != SyncNever {
		err = l.f.Sync()
	}
	cerr := l.f.Close()
	l.fsyncMu.Unlock()
	if err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: sealing segment %d: %w", l.segIdx, err)
	}
	if l.policy != SyncNever {
		l.inc(MetricFsyncs)
		// Everything appended so far now sits in sealed, synced segments.
		l.advanceSynced(l.seq)
	}
	l.sealed = append(l.sealed, sealedSeg{idx: l.segIdx, size: l.segSize})
	l.inc(MetricRotations)
	return l.startSegment(l.segIdx + 1)
}

// startSegment creates segment idx and makes it active. Callers hold l.mu
// (or have exclusive access during Open).
func (l *Log) startSegment(idx uint64) error {
	path := segmentPath(l.dir, idx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", path, err)
	}
	if _, err := f.Write(segmentHeader()); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing header of %s: %w", path, err)
	}
	if l.policy != SyncNever {
		if err := SyncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f = f
	l.segIdx = idx
	l.segSize = headerSize
	l.total += headerSize
	return nil
}

// Checkpoint bounds the log: it seals the active segment, writes the
// application snapshot atomically to CheckpointPath via write, and prunes
// every segment older than the seal. The snapshot is taken after the seal,
// so it necessarily covers every record in the pruned segments (records are
// appended only after their store apply completed). Returns how many
// segments were pruned.
func (l *Log) Checkpoint(write func(io.Writer) error) (int, error) {
	pruned, err := l.checkpoint(write)
	if err != nil {
		l.inc(MetricCheckpointErrors)
		return pruned, err
	}
	l.inc(MetricCheckpoints)
	return pruned, nil
}

func (l *Log) checkpoint(write func(io.Writer) error) (int, error) {
	l.mu.Lock()
	if l.closed.Load() {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if err := l.sealLocked(); err != nil {
		l.mu.Unlock()
		l.fail(err)
		return 0, err
	}
	boundary := l.segIdx
	l.mu.Unlock()
	if err := WriteFileAtomic(l.CheckpointPath(), write); err != nil {
		return 0, fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	return l.pruneBefore(boundary)
}

// pruneBefore removes every sealed segment with index < boundary.
func (l *Log) pruneBefore(boundary uint64) (int, error) {
	l.mu.Lock()
	var drop []sealedSeg
	keep := l.sealed[:0]
	for _, s := range l.sealed {
		if s.idx < boundary {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	replayKeep := l.replaySegs[:0]
	for _, rs := range l.replaySegs {
		if rs.idx >= boundary {
			replayKeep = append(replayKeep, rs)
		}
	}
	l.replaySegs = replayKeep
	l.mu.Unlock()
	var firstErr error
	removed := 0
	var freed int64
	for _, s := range drop {
		path := segmentPath(l.dir, s.idx)
		if err := os.Remove(path); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: pruning %s: %w", path, err)
			}
			continue
		}
		freed += s.size
		removed++
	}
	if removed > 0 {
		if l.policy != SyncNever {
			if err := SyncDir(l.dir); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		l.count(MetricSegmentsPruned, float64(removed))
		l.mu.Lock()
		l.total -= freed
		l.mu.Unlock()
	}
	return removed, firstErr
}

// Replay streams every record that was valid on disk when Open ran, oldest
// first, stopping at the first callback error. Records appended after Open
// are not visited, so recovery can overlap live traffic without replaying
// it into itself. Checksum-valid bodies that fail to decode are skipped and
// counted, never delivered.
func (l *Log) Replay(fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	l.mu.Lock()
	segs := append([]replaySeg(nil), l.replaySegs...)
	l.mu.Unlock()
	for _, seg := range segs {
		if err := replaySegment(segmentPath(l.dir, seg.idx), seg.limit, &st, fn); err != nil {
			return st, err
		}
	}
	if st.Skipped > 0 {
		l.count(MetricRecoverSkippedRecords, float64(st.Skipped))
	}
	return st, nil
}

// CheckpointPath is where Checkpoint writes the application snapshot.
func (l *Log) CheckpointPath() string {
	return filepath.Join(l.dir, "checkpoint.snap")
}

// OpenCheckpoint opens the checkpoint snapshot for reading. ok is false
// when no checkpoint has ever been written.
func (l *Log) OpenCheckpoint() (rc io.ReadCloser, ok bool, err error) {
	f, err := os.Open(l.CheckpointPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("wal: opening checkpoint: %w", err)
	}
	return f, true, nil
}

// Size is the resident byte size of all segments (headers included). The
// live adapter compares it against its checkpoint threshold.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Segments is the number of on-disk segment files (sealed plus active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// Stats reports what Open found on disk.
func (l *Log) Stats() OpenStats { return l.stats }

// Dir is the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the active segment. Further appends return
// ErrClosed; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed.Load() {
		l.mu.Unlock()
		return nil
	}
	l.closed.Store(true)
	f := l.f
	l.f = nil
	seq := l.seq
	l.mu.Unlock()
	if l.stopInterval != nil {
		close(l.stopInterval)
		<-l.intervalDone
	}
	var err error
	if f != nil {
		l.fsyncMu.Lock()
		err = f.Sync()
		cerr := f.Close()
		l.fsyncMu.Unlock()
		if err == nil {
			err = cerr
		}
		if err == nil {
			l.inc(MetricFsyncs)
		}
	}
	if err == nil {
		l.advanceSynced(seq)
	} else {
		l.fail(err)
		// Wake waiters so they observe the latched error.
		l.sm.Lock()
		l.syncCond.Broadcast()
		l.sm.Unlock()
	}
	return err
}

// fail latches the first unrecoverable error and wakes sync waiters.
func (l *Log) fail(err error) {
	if err == nil {
		return
	}
	if l.failed.Load() == nil {
		l.failed.Store(err)
	}
	l.sm.Lock()
	l.syncCond.Broadcast()
	l.sm.Unlock()
}

// loadFailed returns the latched error, if any.
func (l *Log) loadFailed() error {
	err, _ := l.failed.Load().(error)
	return err
}

func (l *Log) inc(name string) {
	if l.metrics != nil {
		l.metrics.Inc(name)
	}
}

func (l *Log) count(name string, delta float64) {
	if l.metrics != nil {
		l.metrics.Add(name, delta)
	}
}
