package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// testUpdate builds a deterministic update; i seeds every field so records
// are distinguishable after a replay.
func testUpdate(i int) store.Update {
	var id version.ID
	id[0] = byte(i)
	id[1] = byte(i >> 8)
	return store.Update{
		Origin:  fmt.Sprintf("origin-%d", i%3),
		Seq:     uint64(i + 1),
		Key:     fmt.Sprintf("key-%d", i),
		Value:   []byte(fmt.Sprintf("value-%d", i)),
		Delete:  i%7 == 0,
		Version: version.History{id},
		Stamp:   time.Unix(0, int64(1000+i)),
	}
}

// mustOpen opens a log and fails the test on error.
func mustOpen(t *testing.T, o Options) *Log {
	t.Helper()
	l, err := Open(o)
	if err != nil {
		t.Fatalf("Open(%+v): %v", o, err)
	}
	return l
}

// appendN appends n test updates starting at base.
func appendN(t *testing.T, l *Log, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.Append(testUpdate(base + i)); err != nil {
			t.Fatalf("Append(%d): %v", base+i, err)
		}
	}
}

// replayAll collects every replayed record.
func replayAll(t *testing.T, l *Log) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	st, err := l.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	const n = 25
	appendN(t, l, 0, n)
	fr := version.Clock{"origin-0": 9, "origin-1": 4}
	if err := l.AppendFrontier(fr); err != nil {
		t.Fatalf("AppendFrontier: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	defer l2.Close()
	recs, st := replayAll(t, l2)
	if len(recs) != n+1 || st.Records != n+1 || st.Skipped != 0 {
		t.Fatalf("replayed %d records (stats %+v), want %d", len(recs), st, n+1)
	}
	for i := 0; i < n; i++ {
		if recs[i].Kind != RecordUpdate {
			t.Fatalf("record %d kind = %v, want update", i, recs[i].Kind)
		}
		if got, want := recs[i].Update, testUpdate(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	last := recs[n]
	if last.Kind != RecordFrontier || !reflect.DeepEqual(last.Frontier, fr) {
		t.Fatalf("frontier record = %+v, want clock %v", last, fr)
	}
	if got := l2.Stats(); got.Records != n+1 || got.TruncatedBytes != 0 {
		t.Fatalf("open stats = %+v, want %d clean records", got, n+1)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	const n = 50
	appendN(t, l, 0, n)
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("Segments() = %d, want several at 256-byte rotation", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	defer l2.Close()
	recs, _ := replayAll(t, l2)
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		if !reflect.DeepEqual(r.Update, testUpdate(i)) {
			t.Fatalf("record %d out of order after rotation", i)
		}
	}
}

func TestCheckpointPrunesAndBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	appendN(t, l, 0, 40)
	snapshot := []byte("pretend-application-snapshot")
	pruned, err := l.Checkpoint(func(w io.Writer) error {
		_, err := w.Write(snapshot)
		return err
	})
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if pruned < 2 {
		t.Fatalf("Checkpoint pruned %d segments, want several", pruned)
	}
	appendN(t, l, 40, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	defer l2.Close()
	rc, ok, err := l2.OpenCheckpoint()
	if err != nil || !ok {
		t.Fatalf("OpenCheckpoint: ok=%v err=%v", ok, err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, snapshot) {
		t.Fatalf("checkpoint content = %q, %v; want %q", got, err, snapshot)
	}
	recs, _ := replayAll(t, l2)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records after checkpoint, want only the 5 post-checkpoint ones", len(recs))
	}
	for i, r := range recs {
		if !reflect.DeepEqual(r.Update, testUpdate(40+i)) {
			t.Fatalf("post-checkpoint record %d = %+v", i, r.Update)
		}
	}
}

// countingMetrics is a test metrics sink.
type countingMetrics struct {
	mu sync.Mutex
	m  map[string]float64
}

func (c *countingMetrics) Inc(name string) { c.Add(name, 1) }
func (c *countingMetrics) Add(name string, delta float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]float64{}
	}
	c.m[name] += delta
}
func (c *countingMetrics) get(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	cm := &countingMetrics{}
	l := mustOpen(t, Options{Dir: dir, Policy: SyncAlways, Metrics: cm})
	const workers, each = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(testUpdate(w*each + i)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	appends := cm.get(MetricAppends)
	fsyncs := cm.get(MetricFsyncs)
	if appends != workers*each {
		t.Fatalf("appends counter = %v, want %d", appends, workers*each)
	}
	if fsyncs < 1 || fsyncs > appends+1 {
		t.Fatalf("fsyncs = %v with %v appends; group commit accounting is off", fsyncs, appends)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	recs, _ := replayAll(t, l2)
	if len(recs) != workers*each {
		t.Fatalf("recovered %d records, want %d", len(recs), workers*each)
	}
}

func TestSyncIntervalPolicyFlushes(t *testing.T) {
	dir := t.TempDir()
	cm := &countingMetrics{}
	l := mustOpen(t, Options{Dir: dir, Policy: SyncInterval, Interval: time.Millisecond, Metrics: cm})
	appendN(t, l, 0, 10)
	deadline := time.Now().Add(2 * time.Second)
	for cm.get(MetricFsyncs) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cm.get(MetricFsyncs) == 0 {
		t.Fatalf("interval policy never fsynced")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), Policy: SyncNever})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append(testUpdate(0)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestReplayHorizonExcludesPostOpenAppends(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Policy: SyncNever})
	defer l2.Close()
	appendN(t, l2, 10, 10) // live traffic racing recovery
	recs, _ := replayAll(t, l2)
	if len(recs) != 10 {
		t.Fatalf("replay visited %d records, want only the 10 present at Open", len(recs))
	}
}

func TestSizeShrinksAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Policy: SyncNever, SegmentBytes: 256})
	defer l.Close()
	appendN(t, l, 0, 40)
	before := l.Size()
	if _, err := l.Checkpoint(func(w io.Writer) error { return nil }); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after := l.Size()
	if after >= before {
		t.Fatalf("Size() %d -> %d across checkpoint; pruning did not shrink the log", before, after)
	}
	// On-disk segment count must match the bookkeeping.
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(idxs) != l.Segments() {
		t.Fatalf("on disk %d segments, bookkeeping says %d", len(idxs), l.Segments())
	}
}

func TestWriteFileAtomicReplacesContent(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/state.bin"
	for i, content := range []string{"first", "second-longer-content"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatalf("WriteFileAtomic #%d: %v", i, err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("after write #%d: %q, %v", i, got, err)
		}
	}
	// A failed write must leave the previous content and no temp litter.
	err := WriteFileAtomic(path, func(w io.Writer) error {
		return fmt.Errorf("synthetic failure")
	})
	if err == nil {
		t.Fatalf("WriteFileAtomic swallowed the writer error")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second-longer-content" {
		t.Fatalf("failed write clobbered the file: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
		{"", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("SyncPolicy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
}
