package wal

import (
	"fmt"
	"testing"
	"time"
)

// benchLog opens a log in a fresh temp dir for b.
func benchLog(b *testing.B, policy SyncPolicy) *Log {
	b.Helper()
	l, err := Open(Options{Dir: b.TempDir(), Policy: policy, Interval: time.Millisecond})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	b.Cleanup(func() { l.Close() })
	return l
}

// BenchmarkWALAppend measures the per-record append cost under each fsync
// policy — the price a replica pays on every acknowledged apply. The
// always/never gap is the measured cost of synchronous durability the
// OPERATIONS guide quotes.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			l := benchLog(b, policy)
			u := testUpdate(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(u); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
		})
	}
}

// BenchmarkWALAppendParallel measures group commit under contention: many
// goroutines appending with fsync=always should amortize fsyncs across
// batches rather than paying one disk flush each.
func BenchmarkWALAppendParallel(b *testing.B) {
	l := benchLog(b, SyncAlways)
	u := testUpdate(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Append(u); err != nil {
				b.Fatalf("Append: %v", err)
			}
		}
	})
}

// BenchmarkRecovery measures cold-start recovery: open a log holding n
// records and replay every one. The reported recovery-ms/op metric is the
// daemon's crash-restart budget at that log size.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(Options{Dir: dir, Policy: SyncNever})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			for i := 0; i < n; i++ {
				if err := l.Append(testUpdate(i)); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatalf("Close: %v", err)
			}
			// One untimed recovery warms the page cache and the allocator
			// so the timed iterations measure steady-state replay.
			warm, err := Open(Options{Dir: dir, Policy: SyncNever})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			if _, err := warm.Replay(func(Record) error { return nil }); err != nil {
				b.Fatalf("Replay: %v", err)
			}
			if err := warm.Close(); err != nil {
				b.Fatalf("Close: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				rl, err := Open(Options{Dir: dir, Policy: SyncNever})
				if err != nil {
					b.Fatalf("Open: %v", err)
				}
				got := 0
				if _, err := rl.Replay(func(Record) error { got++; return nil }); err != nil {
					b.Fatalf("Replay: %v", err)
				}
				if got != n {
					b.Fatalf("replayed %d records, want %d", got, n)
				}
				elapsed += time.Since(start)
				// Close fsyncs; keep its (noisy, unrelated) latency out of
				// the recovery measurement.
				b.StopTimer()
				if err := rl.Close(); err != nil {
					b.Fatalf("Close: %v", err)
				}
				b.StartTimer()
			}
			b.ReportMetric(elapsed.Seconds()*1e3/float64(b.N), "recovery-ms/op")
			b.ReportMetric(float64(n)*float64(b.N)/elapsed.Seconds(), "records/s")
		})
	}
}
