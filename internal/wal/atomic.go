package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file crash-safely: the content goes to a
// temporary file in the same directory, is fsynced, renamed over path, and
// the directory entry is fsynced. A crash at any point leaves either the
// old file or the new one, never a torn mix — rename alone does not give
// that, because the data pages and the directory entry can hit disk in
// either order.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: creating temp for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 256<<10)
	if err = write(bw); err != nil {
		return fmt.Errorf("wal: writing %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("wal: closing %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: renaming %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making its entries (renames, creations,
// removals) durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}
