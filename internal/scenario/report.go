package scenario

import "encoding/json"

// JSON renders the result as an indented JSON document with a trailing
// newline. Field order is fixed by the struct and no field depends on wall
// clock or map iteration, so the same scenario and seed yield byte-identical
// documents — the determinism contract cmd/scenarios and CI rely on.
func (r Result) JSON() ([]byte, error) {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}
